(* The nova command-line tool: encode the states of a KISS2 FSM with any
   of the paper's algorithms, report the resulting two-level
   implementation, and inspect constraints.

     nova stats machine.kiss2
     nova constraints machine.kiss2
     nova encode --algorithm ihybrid machine.kiss2
     nova encode --algorithm iohybrid --pla machine.kiss2
     nova encode --algorithm mustang-nt --bits 5 machine.kiss2
     nova bench dk16                 (run on a built-in benchmark machine)
*)

open Cmdliner

let read_machine path =
  try
    if Sys.file_exists path then begin
      let ic = open_in path in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      Kiss.parse ~name:(Filename.remove_extension (Filename.basename path)) text
    end
    else Benchmarks.Suite.find path
  with
  | Kiss.Parse_error msg ->
      Printf.eprintf "nova: cannot parse %s: %s\n" path msg;
      exit 2
  | Not_found ->
      Printf.eprintf "nova: no file and no built-in machine called %S (try `nova list`)\n" path;
      exit 2

let machine_arg =
  let doc = "KISS2 file, or the name of a built-in benchmark machine." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE" ~doc)

(* --- stats -------------------------------------------------------------- *)

let stats_cmd =
  let run path =
    let m = read_machine path in
    let s = Fsm.stats m in
    Printf.printf "%s: %d inputs, %d outputs, %d states, %d product terms\n" s.Fsm.stat_name
      s.Fsm.stat_inputs s.Fsm.stat_outputs s.Fsm.stat_states s.Fsm.stat_products;
    Printf.printf "minimum code length: %d bits; 1-hot: %d bits\n" (Fsm.min_code_length m)
      s.Fsm.stat_states
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the statistics of a machine (Table I columns).")
    Term.(const run $ machine_arg)

(* --- constraints --------------------------------------------------------- *)

let constraints_cmd =
  let run path =
    let m = read_machine path in
    let sym = Symbolic.of_fsm m in
    let ics = Constraints.of_symbolic sym in
    Printf.printf "input constraints of %s (from multiple-valued minimization):\n" m.Fsm.name;
    List.iter
      (fun (ic : Constraints.input_constraint) ->
        Printf.printf "  %s  weight %d  {%s}\n"
          (Bitvec.to_string ic.Constraints.states)
          ic.Constraints.weight
          (String.concat ","
             (List.map (fun s -> m.Fsm.states.(s)) (Bitvec.to_list ic.Constraints.states))))
      ics;
    let sm = Symbmin.run sym in
    Printf.printf "symbolic minimization: %d product terms, %d covering edges\n"
      (Symbmin.upper_bound sm) (List.length sm.Symbmin.graph);
    List.iter
      (fun (u, v, w) ->
        Printf.printf "  %s > %s (gain %d)\n" m.Fsm.states.(u) m.Fsm.states.(v) w)
      sm.Symbmin.graph
  in
  Cmd.v
    (Cmd.info "constraints"
       ~doc:"Print the input constraints and output covering constraints of a machine.")
    Term.(const run $ machine_arg)

(* --- encode -------------------------------------------------------------- *)

type algorithm =
  | A_ihybrid
  | A_igreedy
  | A_iohybrid
  | A_iovariant
  | A_iexact
  | A_kiss
  | A_onehot
  | A_random
  | A_mustang of Baselines.mustang_flavor * bool

let algorithms =
  [
    ("ihybrid", A_ihybrid); ("igreedy", A_igreedy); ("iohybrid", A_iohybrid);
    ("iovariant", A_iovariant); ("iexact", A_iexact); ("kiss", A_kiss);
    ("onehot", A_onehot); ("random", A_random);
    ("mustang-n", A_mustang (Baselines.Fanout, false));
    ("mustang-nt", A_mustang (Baselines.Fanout, true));
    ("mustang-p", A_mustang (Baselines.Fanin, false));
    ("mustang-pt", A_mustang (Baselines.Fanin, true));
  ]

let algo_arg =
  let doc =
    "Encoding algorithm: " ^ String.concat ", " (List.map fst algorithms) ^ "."
  in
  Arg.(
    value
    & opt (enum algorithms) A_ihybrid
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let bits_arg =
  let doc = "Code length in bits (defaults to the algorithm's choice)." in
  Arg.(value & opt (some int) None & info [ "b"; "bits" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for the random algorithm." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let pla_arg =
  let doc = "Also print the minimized encoded PLA personality." in
  Arg.(value & flag & info [ "pla" ] ~doc)

let instrument_arg =
  let doc =
    "Collect kernel counters, phase timers and recursion-depth histograms during encoding \
     and minimization, and print the report to stderr (same switch as NOVA_INSTRUMENT=1)."
  in
  Arg.(value & flag & info [ "instrument" ] ~doc)

let encode algo bits seed pla instrument path =
  if instrument then Instrument.enable ();
  let m = read_machine path in
  let n = Fsm.num_states ~m in
  let driver_algo =
    match algo with
    | A_ihybrid -> Harness.Driver.Ihybrid
    | A_igreedy -> Harness.Driver.Igreedy
    | A_iohybrid -> Harness.Driver.Iohybrid
    | A_iovariant -> Harness.Driver.Iovariant
    | A_iexact -> Harness.Driver.Iexact
    | A_kiss -> Harness.Driver.Kiss
    | A_onehot -> Harness.Driver.One_hot
    | A_random -> Harness.Driver.Random seed
    | A_mustang (flavor, include_outputs) -> Harness.Driver.Mustang (flavor, include_outputs)
  in
  let encoding, r =
    match bits with
    | Some b -> Harness.Driver.report ~bits:b m driver_algo
    | None -> Harness.Driver.report m driver_algo
  in
  Printf.printf "machine %s: %d states encoded in %d bits\n" m.Fsm.name n
    encoding.Encoding.nbits;
  Array.iteri
    (fun s name -> Printf.printf "  %-12s %s\n" name (Encoding.code_string encoding s))
    m.Fsm.states;
  Printf.printf "two-level implementation: %d product terms, PLA area %d\n" r.Encoded.num_cubes
    r.Encoded.area;
  if n <= 60 then begin
    let onehot = Encoded.implement m (Encoding.one_hot n) in
    Printf.printf "(1-hot reference: %d product terms, area %d)\n" onehot.Encoded.num_cubes
      onehot.Encoded.area
  end;
  if pla then
    Pla.print Format.std_formatter r.Encoded.cover
      ~num_binary_vars:(m.Fsm.num_inputs + encoding.Encoding.nbits);
  if instrument || Instrument.enabled () then Instrument.report Format.err_formatter ()

let encode_cmd =
  Cmd.v
    (Cmd.info "encode" ~doc:"Encode a machine's states and report the implementation.")
    Term.(const encode $ algo_arg $ bits_arg $ seed_arg $ pla_arg $ instrument_arg $ machine_arg)

(* --- minstates -------------------------------------------------------------- *)

let minstates_cmd =
  let run exact path =
    let m = read_machine path in
    let before = Fsm.num_states ~m in
    let reduced =
      if exact then Reduce_states.reduce m else Reduce_states.reduce_incompletely_specified m
    in
    let after = Fsm.num_states ~m:reduced in
    Printf.eprintf "%s: %d states -> %d states (%s)\n" m.Fsm.name before after
      (if exact then "partition refinement" else "compatibility merging");
    print_string (Kiss.to_string reduced)
  in
  let exact_arg =
    let doc =
      "Use exact partition refinement (completely specified machines) instead of the \
       incompletely-specified compatibility heuristic."
    in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  Cmd.v
    (Cmd.info "minstates"
       ~doc:"Minimize the number of states and print the reduced machine in KISS2 format.")
    Term.(const run $ exact_arg $ machine_arg)

(* --- dot / blif -------------------------------------------------------------- *)

let dot_cmd =
  let run path = Export.dot Format.std_formatter (read_machine path) in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the machine as a Graphviz digraph.")
    Term.(const run $ machine_arg)

let blif_cmd =
  let run algo bits seed path =
    let m = read_machine path in
    let n = Fsm.num_states ~m in
    let encoding =
      match algo with
      | A_onehot -> Encoding.one_hot n
      | A_random ->
          let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
          Encoding.random (Random.State.make [| seed |]) ~num_states:n ~nbits
      | A_mustang (flavor, include_outputs) ->
          let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
          Baselines.mustang_encode m ~flavor ~include_outputs ~nbits
      | A_ihybrid | A_igreedy | A_iohybrid | A_iovariant | A_iexact | A_kiss ->
          let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
          (Ihybrid.ihybrid_code ~num_states:n ?nbits:bits ics).Ihybrid.encoding
    in
    let r = Encoded.implement m encoding in
    let net =
      Multilevel.of_cover r.Encoded.cover
        ~num_binary_vars:(m.Fsm.num_inputs + encoding.Encoding.nbits)
    in
    let net = Multilevel.optimize net in
    Export.blif Format.std_formatter net ~name:m.Fsm.name
      ~num_inputs:(m.Fsm.num_inputs + encoding.Encoding.nbits)
  in
  Cmd.v
    (Cmd.info "blif"
       ~doc:
         "Encode the machine, optimize the encoded network multilevel, and print it in BLIF \
          (state bits appear as extra inputs/outputs).")
    Term.(const run $ algo_arg $ bits_arg $ seed_arg $ machine_arg)

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        let m = Lazy.force e.Benchmarks.Suite.machine in
        let s = Fsm.stats m in
        Printf.printf "%-10s %3d inputs %3d outputs %4d states %5d rows%s\n" e.Benchmarks.Suite.name
          s.Fsm.stat_inputs s.Fsm.stat_outputs s.Fsm.stat_states s.Fsm.stat_products
          (if e.Benchmarks.Suite.heavy then "  (heavy)" else ""))
      Benchmarks.Suite.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark machines.")
    Term.(const run $ const ())

let () =
  let doc = "NOVA: optimal state assignment for two-level implementations" in
  let info = Cmd.info "nova" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ stats_cmd; constraints_cmd; encode_cmd; minstates_cmd; dot_cmd; blif_cmd; list_cmd ]))
