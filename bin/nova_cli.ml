(* The nova command-line tool: encode the states of a KISS2 FSM with any
   of the paper's algorithms, report the resulting two-level
   implementation, and inspect constraints.

     nova stats machine.kiss2
     nova constraints machine.kiss2
     nova encode --algorithm ihybrid machine.kiss2
     nova encode --algorithm iexact --budget-ms 50 machine.kiss2
     nova encode --algorithm mustang-nt --bits 5 machine.kiss2
     nova bench dk16                 (run on a built-in benchmark machine)
     nova gen --states 80 --rows 400 (emit a synthetic stress machine)

   Exit codes (see Nova_error.exit_code): 0 success, 2 parse error,
   3 budget exhausted, 4 infeasible, 5 invalid request,
   6 certification failed, 7 job crashed (supervision exhausted). *)

open Cmdliner

let read_machine path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match
      Kiss.parse_result ~name:(Filename.remove_extension (Filename.basename path)) ~file:path
        text
    with
    | Ok m -> Ok m
    | Error { Kiss.file; line; col; msg } ->
        Error (Nova_error.Parse_error { file; line; col; msg })
  end
  else
    match Benchmarks.Suite.find path with
    | m -> Ok m
    | exception Not_found ->
        Error
          (Nova_error.Invalid_request
             (Printf.sprintf "no file and no built-in machine called %S (try `nova list`)" path))

(* Print the error the structured way and return its distinct exit
   code; every subcommand funnels failures through here. *)
let fail_with err =
  Printf.eprintf "nova: %s\n" (Nova_error.to_string err);
  Nova_error.exit_code err

let with_machine path f =
  match read_machine path with Ok m -> f m | Error err -> fail_with err

let machine_arg =
  let doc = "KISS2 file, or the name of a built-in benchmark machine." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MACHINE" ~doc)

(* --- stats -------------------------------------------------------------- *)

let stats_cmd =
  let run path =
    with_machine path @@ fun m ->
    let s = Fsm.stats m in
    Printf.printf "%s: %d inputs, %d outputs, %d states, %d product terms\n" s.Fsm.stat_name
      s.Fsm.stat_inputs s.Fsm.stat_outputs s.Fsm.stat_states s.Fsm.stat_products;
    Printf.printf "minimum code length: %d bits; 1-hot: %d bits\n" (Fsm.min_code_length m)
      s.Fsm.stat_states;
    0
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the statistics of a machine (Table I columns).")
    Term.(const run $ machine_arg)

(* --- constraints --------------------------------------------------------- *)

let constraints_cmd =
  let run path =
    with_machine path @@ fun m ->
    let sym = Symbolic.of_fsm m in
    let ics = Constraints.of_symbolic sym in
    Printf.printf "input constraints of %s (from multiple-valued minimization):\n" m.Fsm.name;
    List.iter
      (fun (ic : Constraints.input_constraint) ->
        Printf.printf "  %s  weight %d  {%s}\n"
          (Bitvec.to_string ic.Constraints.states)
          ic.Constraints.weight
          (String.concat ","
             (List.map (fun s -> m.Fsm.states.(s)) (Bitvec.to_list ic.Constraints.states))))
      ics;
    let sm = Symbmin.run sym in
    Printf.printf "symbolic minimization: %d product terms, %d covering edges\n"
      (Symbmin.upper_bound sm) (List.length sm.Symbmin.graph);
    List.iter
      (fun (u, v, w) ->
        Printf.printf "  %s > %s (gain %d)\n" m.Fsm.states.(u) m.Fsm.states.(v) w)
      sm.Symbmin.graph;
    0
  in
  Cmd.v
    (Cmd.info "constraints"
       ~doc:"Print the input constraints and output covering constraints of a machine.")
    Term.(const run $ machine_arg)

(* --- encode -------------------------------------------------------------- *)

type algorithm =
  | A_ihybrid
  | A_igreedy
  | A_iohybrid
  | A_iovariant
  | A_iexact
  | A_kiss
  | A_onehot
  | A_random
  | A_mustang of Baselines.mustang_flavor * bool

let algorithms =
  [
    ("ihybrid", A_ihybrid); ("igreedy", A_igreedy); ("iohybrid", A_iohybrid);
    ("iovariant", A_iovariant); ("iexact", A_iexact); ("kiss", A_kiss);
    ("onehot", A_onehot); ("random", A_random);
    ("mustang-n", A_mustang (Baselines.Fanout, false));
    ("mustang-nt", A_mustang (Baselines.Fanout, true));
    ("mustang-p", A_mustang (Baselines.Fanin, false));
    ("mustang-pt", A_mustang (Baselines.Fanin, true));
  ]

let algo_arg =
  let doc =
    "Encoding algorithm: " ^ String.concat ", " (List.map fst algorithms) ^ "."
  in
  Arg.(
    value
    & opt (enum algorithms) A_ihybrid
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let bits_arg =
  let doc = "Code length in bits (defaults to the algorithm's choice)." in
  Arg.(value & opt (some int) None & info [ "b"; "bits" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "Seed for the random algorithm." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let pla_arg =
  let doc = "Also print the minimized encoded PLA personality." in
  Arg.(value & flag & info [ "pla" ] ~doc)

let instrument_arg =
  let doc =
    "Collect kernel counters, phase timers and recursion-depth histograms during encoding \
     and minimization, and print the report to stderr (same switch as NOVA_INSTRUMENT=1)."
  in
  Arg.(value & flag & info [ "instrument" ] ~doc)

let budget_ms_arg =
  let doc =
    "Wall-clock deadline for the whole encode (milliseconds). When it passes, the encoder \
     degrades down the fallback ladder and the minimizer returns its best cover so far."
  in
  Arg.(value & opt (some float) None & info [ "budget-ms" ] ~docv:"MS" ~doc)

let max_work_arg =
  let doc =
    "Work budget for the whole encode (elementary search steps across all stages), on top \
     of each algorithm's intrinsic per-call caps."
  in
  Arg.(value & opt (some int) None & info [ "max-work" ] ~docv:"N" ~doc)

let fallback_arg =
  let doc =
    "Degrade to cheaper rungs of the algorithm's family when a stage fails or runs out of \
     budget (iexact > semiexact > project > igreedy; iohybrid > ihybrid > igreedy). \
     $(b,--no-fallback) turns the first failure into an error exit instead."
  in
  Arg.(value & opt ~vopt:true bool true & info [ "fallback" ] ~doc)

let no_fallback_arg =
  let doc = "Disable the fallback ladder (same as $(b,--fallback=false))." in
  Arg.(value & flag & info [ "no-fallback" ] ~doc)

let certify_arg =
  let doc =
    "Re-verify the result with the independent certificate layer (injectivity, code length, \
     face constraints, output covering, cover containment, trace equivalence) and print a \
     per-check report. A failed certificate exits with code 6."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let inject_arg =
  let doc =
    "Inject a fault of the given class into the artifacts before certifying (implies \
     $(b,--certify)): "
    ^ String.concat ", " (List.map Check.Inject.name Check.Inject.all)
    ^ ". For exercising the checker; a genuine injection must make certification fail."
  in
  Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"CLASS" ~doc)

let quiet_arg =
  let doc = "Suppress fallback-degradation warnings on stderr." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let trace_arg =
  let doc =
    "Record a structured trace of the run (span tree with per-domain tracks) and write it \
     to $(docv) on exit: $(b,.jsonl) gets the append-only event log, anything else the \
     Chrome trace-event JSON loadable in Perfetto. Tracing never touches stdout, so traced \
     and untraced runs are byte-identical there."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Run [f] under tracing when [--trace FILE] was given: enable, stamp
   the run manifest, run, stamp the totals, export. The only terminal
   output is a one-line note on stderr — stdout stays untouched. *)
let run_traced trace ~meta f =
  match trace with
  | None -> f ()
  | Some path ->
      Trace.enable ();
      Trace.set_meta
        (("code_version", Trace.String Exec.Job.code_version)
        :: ("nova_version", Trace.String "1.0.0")
        :: meta);
      let code = f () in
      Trace.set_meta [ ("events", Trace.Int (Trace.event_count ())) ];
      (match Trace.export ~path () with
      | () -> Printf.eprintf "trace: %d events written to %s\n" (Trace.event_count ()) path
      | exception Sys_error msg -> Printf.eprintf "nova: trace export failed: %s\n" msg);
      code

let budget_of budget_ms max_work =
  match (budget_ms, max_work) with
  | None, None -> Budget.unlimited
  | deadline_ms, max_work -> Budget.create ?max_work ?deadline_ms ()

let driver_algo_of algo seed =
  match algo with
  | A_ihybrid -> Harness.Driver.Ihybrid
  | A_igreedy -> Harness.Driver.Igreedy
  | A_iohybrid -> Harness.Driver.Iohybrid
  | A_iovariant -> Harness.Driver.Iovariant
  | A_iexact -> Harness.Driver.Iexact
  | A_kiss -> Harness.Driver.Kiss
  | A_onehot -> Harness.Driver.One_hot
  | A_random -> Harness.Driver.Random seed
  | A_mustang (flavor, include_outputs) -> Harness.Driver.Mustang (flavor, include_outputs)

(* Certify the report (optionally after injecting a fault), print the
   per-check lines, and return the process exit code. *)
let certify_and_report m outcome r inject =
  let artifacts = Harness.Certify.artifacts_of outcome r in
  let injected =
    match inject with
    | None -> Ok artifacts
    | Some cls -> (
        match Check.Inject.of_name cls with
        | None ->
            Error (Nova_error.Invalid_request (Printf.sprintf "unknown fault class %S" cls))
        | Some fault -> (
            match Check.Inject.apply m artifacts fault with
            | Some a -> Ok a
            | None ->
                Error
                  (Nova_error.Invalid_request
                     (Printf.sprintf "no genuine %s fault exists for machine %s" cls m.Fsm.name))))
  in
  match injected with
  | Error err -> fail_with err
  | Ok artifacts -> (
      let cert = Check.certify m artifacts in
      List.iter
        (fun (o : Check.outcome) ->
          Printf.printf "  [%s] %-16s %7.3fs%s\n"
            (if o.Check.pass then "PASS" else "FAIL")
            (Check.check_name o.Check.id) o.Check.span_s
            (if o.Check.detail = "" then "" else "  " ^ o.Check.detail))
        cert.Check.checks;
      Printf.printf "%s\n" (Check.summary cert);
      match Harness.Certify.error_of ~machine:m.Fsm.name cert with
      | None -> 0
      | Some err -> fail_with err)

let encode algo bits seed pla instrument budget_ms max_work fallback no_fallback certify inject
    quiet trace path =
  if instrument then Instrument.enable ();
  if quiet then Harness.Driver.quiet := true;
  with_machine path @@ fun m ->
  run_traced trace
    ~meta:
      [
        ("machine", Trace.String m.Fsm.name);
        ( "options",
          Trace.String
            (Printf.sprintf "bits=%s;budget_ms=%s;max_work=%s;fallback=%b;certify=%b"
               (match bits with Some b -> string_of_int b | None -> "-")
               (match budget_ms with Some ms -> Printf.sprintf "%g" ms | None -> "-")
               (match max_work with Some w -> string_of_int w | None -> "-")
               (fallback && not no_fallback) certify) );
        ("jobs", Trace.Int 1);
      ]
  @@ fun () ->
  (* The root span of the whole subcommand: the espresso phases of the
     1-hot reference and the certification checks run outside the
     driver's own spans, and inherit machine/algorithm from here. *)
  Trace.with_span "cli.encode"
    ~attrs:
      [
        ("machine", Trace.String m.Fsm.name);
        ("algorithm", Trace.String (Harness.Driver.name (driver_algo_of algo seed)));
      ]
  @@ fun () ->
  let budget = budget_of budget_ms max_work in
  let fallback = fallback && not no_fallback in
  match Harness.Driver.report ?bits ~budget ~fallback m (driver_algo_of algo seed) with
  | Error err -> fail_with err
  | Ok (outcome, r) ->
      let encoding = outcome.Harness.Driver.encoding in
      if not quiet then
        List.iter
          (fun (rung, err) ->
            Printf.eprintf "nova: %s rung degraded: %s\n"
              (Harness.Driver.rung_name rung)
              (Nova_error.to_string err))
          outcome.Harness.Driver.degradations;
      (* Rendered through the shared module the daemon serves from, so
         a served payload is byte-identical to this stdout by
         construction (the CI determinism pin diffs the two). *)
      print_string
        (Serve.Render.encode_text m encoding ~num_cubes:r.Encoded.num_cubes
           ~area:r.Encoded.area
           ~onehot:(Serve.Render.onehot_reference ~budget m));
      if pla then
        Pla.print Format.std_formatter r.Encoded.cover
          ~num_binary_vars:(m.Fsm.num_inputs + encoding.Encoding.nbits);
      let code =
        if certify || inject <> None then certify_and_report m outcome r inject else 0
      in
      if instrument || Instrument.enabled () then Instrument.report Format.err_formatter ();
      code

let encode_cmd =
  Cmd.v
    (Cmd.info "encode" ~doc:"Encode a machine's states and report the implementation.")
    Term.(
      const encode $ algo_arg $ bits_arg $ seed_arg $ pla_arg $ instrument_arg $ budget_ms_arg
      $ max_work_arg $ fallback_arg $ no_fallback_arg $ certify_arg $ inject_arg $ quiet_arg
      $ trace_arg $ machine_arg)

(* --- report: the parallel portfolio executor ----------------------------- *)

let jobs_arg =
  let doc =
    "Worker domains for the portfolio executor (1 = sequential; results are bit-identical \
     for every value)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let race_arg =
  let doc =
    "Race each machine's portfolio: members run concurrently, the first acceptable result \
     (primary rung, no degradation) wins and losing members are cancelled through the \
     budget tree. Reports one winning row per machine."
  in
  Arg.(value & flag & info [ "race" ] ~doc)

let cache_dir_arg =
  let doc =
    "Content-addressed result cache directory (default $(b,NOVA_CACHE_DIR) or \
     $(b,.nova-cache)). Cached entries are re-certified by the independent checker before \
     being trusted; tampered entries are dropped and recomputed."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let no_cache_arg =
  let doc = "Disable the result cache for this run." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let heavy_arg =
  let doc = "Include the heavy machines (scf, tbk, planet) when no machine is named." in
  Arg.(value & flag & info [ "heavy" ] ~doc)

let machines_arg =
  let doc =
    "KISS2 files or built-in machine names; defaults to the whole non-heavy benchmark \
     suite."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"MACHINE" ~doc)

let chaos_arg =
  let doc =
    "Seeded fault-injection schedule for the supervision tests: comma-separated \
     $(b,SITE:COUNT) pairs, e.g. $(b,rung:2,cache-read:1). Sites: rung, cache-read, \
     cache-write, recertify, pool, serve. Each site raises COUNT injected faults at \
     seed-deterministic invocations; absorbed faults leave stdout byte-identical to a \
     fault-free run."
  in
  Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

let chaos_seed_arg =
  let doc = "Seed selecting which invocations of each $(b,--chaos) site fault." in
  Arg.(value & opt int 0 & info [ "chaos-seed" ] ~docv:"N" ~doc)

let default_cache_dir () =
  match Sys.getenv_opt "NOVA_CACHE_DIR" with Some d -> d | None -> ".nova-cache"

let report_machines names heavy =
  match names with
  | [] ->
      Ok
        (List.filter_map
           (fun (e : Benchmarks.Suite.entry) ->
             if e.Benchmarks.Suite.heavy && not heavy then None
             else Some (Lazy.force e.Benchmarks.Suite.machine))
           Benchmarks.Suite.all)
  | names ->
      List.fold_left
        (fun acc name ->
          match acc with
          | Error _ -> acc
          | Ok ms -> ( match read_machine name with
              | Ok m -> Ok (m :: ms)
              | Error e -> Error e))
        (Ok []) names
      |> Result.map List.rev

(* stdout carries only deterministic data (the table); wall-clock and
   cache statistics go to stderr so output is byte-comparable across
   --jobs levels and cold/warm cache runs. *)
let report jobs race cache_dir no_cache heavy instrument quiet trace chaos chaos_seed
    machines =
  if instrument then Instrument.enable ();
  if quiet then begin
    Harness.Driver.quiet := true;
    Exec.Supervise.quiet := true
  end;
  match
    match chaos with
    | None -> Ok ()
    | Some spec -> (
        match Exec.Chaos.configure ~seed:chaos_seed spec with
        | Ok () -> Ok ()
        | Error msg -> Error (Nova_error.Invalid_request ("--chaos " ^ msg)))
  with
  | Error err -> fail_with err
  | Ok () -> (
  match report_machines machines heavy with
  | Error err -> fail_with err
  | Ok ms ->
      run_traced trace
        ~meta:
          [
            ("machines", Trace.Int (List.length ms));
            ( "options",
              Trace.String
                (Printf.sprintf "race=%b;cache=%b;heavy=%b" race (not no_cache) heavy) );
            ("jobs", Trace.Int jobs);
          ]
      @@ fun () ->
      let cache =
        if no_cache then None
        else Some (Exec.Cache.open_dir (Option.value cache_dir ~default:(default_cache_dir ())))
      in
      let t0 = Unix.gettimeofday () in
      (* [rows] feeds the table; [all_rows] (racing losers included)
         feeds the exit code, so a portfolio whose every member crashed
         fails loudly even when the race printed nothing. *)
      let rows, all_rows =
        if race then
          let per_machine =
            List.map (fun m -> Exec.Portfolio.race ~jobs ?cache (Exec.Portfolio.tasks_for m)) ms
          in
          ( List.concat_map
              (fun (rows, winner) ->
                match winner with None -> [] | Some w -> [ List.nth rows w ])
              per_machine,
            List.concat_map fst per_machine )
        else
          let tasks = List.concat_map Exec.Portfolio.tasks_for ms in
          let rows = Exec.Portfolio.run ~jobs ?cache tasks in
          (rows, rows)
      in
      let wall = Unix.gettimeofday () -. t0 in
      (* The shared renderer the daemon serves from: stdout here is
         byte-identical to a served report payload by construction. *)
      print_string (Serve.Render.report_table ~race ~num_machines:(List.length ms) rows);
      Printf.eprintf "report: %d rows in %.3fs (%d jobs%s)\n" (List.length rows) wall jobs
        (if race then ", racing" else "");
      (match cache with
      | None -> ()
      | Some c ->
          let s = Exec.Cache.stats c in
          Printf.eprintf "cache: %d hits, %d misses, %d stores, %d rejected (%s)\n"
            s.Exec.Cache.hits s.Exec.Cache.misses s.Exec.Cache.stores s.Exec.Cache.rejected
            (Exec.Cache.dir c));
      if instrument || Instrument.enabled () then Instrument.report Format.err_formatter ();
      (* Racing cancellations are the protocol working, not failures;
         any other error row (a crash that exhausted its retries, a
         quarantined rung, a budget trip outside racing) makes the
         process exit with that error's code, first row wins. *)
      match
        List.find_map
          (fun (r : Exec.Job.row) ->
            match (r.Exec.Job.result, r.Exec.Job.origin) with
            | Error _, Exec.Job.Cancelled_by_race -> None
            | Error e, _ -> Some e
            | Ok _, _ -> None)
          all_rows
      with
      | None -> 0
      | Some e ->
          Printf.eprintf "nova: %s\n" (Nova_error.to_string e);
          Nova_error.exit_code e)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the encoding portfolio (iexact, iohybrid, ihybrid, igreedy + baselines) over \
          machines on a parallel domain pool, with an on-disk certified result cache. \
          Results are bit-identical whatever $(b,--jobs) is. With $(b,--chaos), injects a \
          seeded fault schedule to exercise the supervision layer.")
    Term.(
      const report $ jobs_arg $ race_arg $ cache_dir_arg $ no_cache_arg $ heavy_arg
      $ instrument_arg $ quiet_arg $ trace_arg $ chaos_arg $ chaos_seed_arg $ machines_arg)

(* --- minstates -------------------------------------------------------------- *)

let minstates_cmd =
  let run exact path =
    with_machine path @@ fun m ->
    let before = Fsm.num_states ~m in
    let reduced =
      if exact then Reduce_states.reduce m else Reduce_states.reduce_incompletely_specified m
    in
    let after = Fsm.num_states ~m:reduced in
    Printf.eprintf "%s: %d states -> %d states (%s)\n" m.Fsm.name before after
      (if exact then "partition refinement" else "compatibility merging");
    print_string (Kiss.to_string reduced);
    0
  in
  let exact_arg =
    let doc =
      "Use exact partition refinement (completely specified machines) instead of the \
       incompletely-specified compatibility heuristic."
    in
    Arg.(value & flag & info [ "exact" ] ~doc)
  in
  Cmd.v
    (Cmd.info "minstates"
       ~doc:"Minimize the number of states and print the reduced machine in KISS2 format.")
    Term.(const run $ exact_arg $ machine_arg)

(* --- dot / blif -------------------------------------------------------------- *)

let dot_cmd =
  let run path =
    with_machine path @@ fun m ->
    Export.dot Format.std_formatter m;
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the machine as a Graphviz digraph.")
    Term.(const run $ machine_arg)

let blif_cmd =
  let run algo bits seed path =
    with_machine path @@ fun m ->
    let n = Fsm.num_states ~m in
    let encoding =
      match algo with
      | A_onehot -> Encoding.one_hot n
      | A_random ->
          let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
          Encoding.random (Random.State.make [| seed |]) ~num_states:n ~nbits
      | A_mustang (flavor, include_outputs) ->
          let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
          Baselines.mustang_encode m ~flavor ~include_outputs ~nbits
      | A_ihybrid | A_igreedy | A_iohybrid | A_iovariant | A_iexact | A_kiss ->
          let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
          (Ihybrid.ihybrid_code ~num_states:n ?nbits:bits ics).Ihybrid.encoding
    in
    let r = Encoded.implement m encoding in
    let net =
      Multilevel.of_cover r.Encoded.cover
        ~num_binary_vars:(m.Fsm.num_inputs + encoding.Encoding.nbits)
    in
    let net = Multilevel.optimize net in
    Export.blif Format.std_formatter net ~name:m.Fsm.name
      ~num_inputs:(m.Fsm.num_inputs + encoding.Encoding.nbits);
    0
  in
  Cmd.v
    (Cmd.info "blif"
       ~doc:
         "Encode the machine, optimize the encoded network multilevel, and print it in BLIF \
          (state bits appear as extra inputs/outputs).")
    Term.(const run $ algo_arg $ bits_arg $ seed_arg $ machine_arg)

(* --- gen ----------------------------------------------------------------- *)

let gen_cmd =
  let run name inputs outputs states rows seed =
    if states < 1 || rows < 1 || inputs < 1 || outputs < 0 then
      fail_with (Nova_error.Invalid_request "gen: counts must be positive")
    else begin
      let m =
        Benchmarks.Generator.generate ~name ~num_inputs:inputs ~num_outputs:outputs
          ~num_states:states ~num_rows:rows ~seed
      in
      print_string (Kiss.to_string m);
      0
    end
  in
  let int_opt long short doc default =
    Arg.(value & opt int default & info [ long; short ] ~docv:"N" ~doc)
  in
  let name_arg =
    Arg.(value & opt string "gen" & info [ "name" ] ~docv:"NAME" ~doc:"Machine name.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a deterministic synthetic benchmark machine in KISS2 format on stdout \
          (the suite's generator; used by the CI deadline-stress run).")
    Term.(
      const run $ name_arg
      $ int_opt "inputs" "i" "Number of primary inputs." 8
      $ int_opt "outputs" "o" "Number of primary outputs." 8
      $ int_opt "states" "s" "Number of states." 80
      $ int_opt "rows" "p" "Number of transition rows." 400
      $ int_opt "gen-seed" "g" "Generator seed." 4242)

(* --- bench: the statistical scaling harness ------------------------------- *)

let bench_scaling_cmd =
  let run quick reps out =
    match reps with
    | Some r when r < 1 ->
        fail_with (Nova_error.Invalid_request "bench scaling: --reps must be >= 1")
    | _ ->
        let cells = Scaling.Report.run ~quick ?reps ~progress:Format.err_formatter () in
        let reps = match reps with Some r -> r | None -> if quick then 3 else 5 in
        Scaling.Report.write ~path:out ~quick ~reps cells;
        Scaling.Report.summary Format.std_formatter cells;
        Printf.eprintf "wrote %s\n" out;
        0
  in
  let quick_arg =
    let doc =
      "CI grid: sizes 8-64 and the cheap algorithms only, 3 repetitions (the full grid runs \
       8-512 with 5 repetitions)."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let reps_arg =
    let doc = "Timed repetitions per grid cell (after one warmup run)." in
    Arg.(value & opt (some int) None & info [ "r"; "reps" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Output artifact path." in
    Arg.(value & opt string "BENCH_scaling.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:
         "Measure every scaling-grid cell (seeded machine family x encoding algorithm, \
          states 8-512), fit runtime vs size against linear / n log n / quadratic / cubic / \
          exponential models, and write the nova-bench-scaling/v1 artifact that \
          $(b,nova bench-diff) gates on (fitted model class and exponent, not single wall \
          numbers).")
    Term.(const run $ quick_arg $ reps_arg $ out_arg)

(* --- bench serve: daemon latency tiers ------------------------------------- *)

let bench_serve_cmd =
  let run machine clients out =
    if clients < 2 then
      fail_with (Nova_error.Invalid_request "bench serve: --clients must be >= 2")
    else begin
      (* A private socket and a fresh cache: the three tiers must be
         cold compute, certified hit, and coalesced share — a shared
         cache directory would turn "cold" into a hit. *)
      let socket = Filename.temp_file "nova-serve-bench" ".sock" in
      let cache_dir = Filename.temp_file "nova-serve-bench" ".cache" in
      Sys.remove cache_dir;
      let cfg =
        {
          (Serve.Server.default_config ~socket_path:socket) with
          Serve.Server.cache = Some (Exec.Cache.open_dir cache_dir);
          quiet = true;
        }
      in
      let server = Thread.create (fun () -> ignore (Serve.Server.run cfg)) () in
      let request_on sock line =
        match Serve.Client.connect sock with
        | Error m -> Error m
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Serve.Client.close c)
              (fun () -> Serve.Client.request c line)
      in
      let request line = request_on socket line in
      (* Wait for the daemon to accept; a ping also warms the code path
         so the cold sample measures encode, not module initialization. *)
      let await_on sock =
        let rec go tries =
          match request_on sock (Serve.Protocol.verb_line "ping") with
          | Ok _ -> true
          | Error _ when tries > 0 ->
              Thread.delay 0.02;
              go (tries - 1)
          | Error _ -> false
        in
        go 250
      in
      if not (await_on socket) then fail_with (Nova_error.Invalid_request "bench serve: daemon did not come up")
      else begin
        let timed f =
          let t0 = Unix.gettimeofday () in
          let r = f () in
          (r, Unix.gettimeofday () -. t0)
        in
        let must = function
          | Ok (r : Serve.Protocol.reply) when r.Serve.Protocol.ok -> r
          | Ok r ->
              failwith
                ("bench serve: server error: "
                ^ Option.value r.Serve.Protocol.error ~default:"?")
          | Error m -> failwith ("bench serve: " ^ m)
        in
        let mref = Serve.Protocol.Builtin machine in
        let cold_line = Serve.Protocol.encode_line ~algorithm:"ihybrid" mref in
        let _, cold_s = timed (fun () -> must (request cold_line)) in
        let warm, warm_s = timed (fun () -> must (request cold_line)) in
        (* Metered vs bare: the same warm (cache-hit) request hammered
           with the metrics registry on, then off. The daemon runs
           in-process on a thread, so [Metrics.Registry.set_enabled]
           reaches its hot paths directly; the ratio is what CI gates
           metrics overhead on. *)
        let warm_reps = 24 in
        let hammer () =
          for _ = 1 to warm_reps do
            ignore (must (request cold_line))
          done
        in
        let _, metered_wall_s = timed hammer in
        Metrics.Registry.set_enabled false;
        let _, bare_wall_s = timed hammer in
        Metrics.Registry.set_enabled true;
        let metrics_overhead =
          if bare_wall_s > 0. then metered_wall_s /. bare_wall_s else 1.
        in
        (* Coalesced tier: the very same machine and algorithm as the
           cold tier, but against a second, cache-less daemon — the key
           is fresh there, so one leader recomputes the cold work while
           the other clients coalesce onto it. Per-request wall is then
           directly comparable to [cold_s]: sharing is the only lever. *)
        let socket2 = Filename.temp_file "nova-serve-bench" ".sock2" in
        let cfg2 =
          { (Serve.Server.default_config ~socket_path:socket2) with Serve.Server.quiet = true }
        in
        let server2 = Thread.create (fun () -> ignore (Serve.Server.run cfg2)) () in
        if not (await_on socket2) then
          fail_with (Nova_error.Invalid_request "bench serve: second daemon did not come up")
        else begin
        let replies = Array.make clients None in
        let _, batch_s =
          timed (fun () ->
              let threads =
                List.init clients (fun i ->
                    Thread.create
                      (fun () -> replies.(i) <- Some (must (request_on socket2 cold_line)))
                      ())
              in
              List.iter Thread.join threads)
        in
        let origins =
          Array.to_list replies
          |> List.filter_map (fun r ->
                 Option.bind r (fun (r : Serve.Protocol.reply) -> r.Serve.Protocol.origin))
        in
        let coalesced_n =
          List.length (List.filter (fun o -> o = "coalesced") origins)
        in
        let coalesced_s = batch_s /. float_of_int clients in
        let rps = float_of_int clients /. batch_s in
        ignore (must (request_on socket2 (Serve.Protocol.verb_line "shutdown")));
        Thread.join server2;
        ignore (must (request (Serve.Protocol.verb_line "shutdown")));
        Thread.join server;
        let oc = open_out out in
        Printf.fprintf oc
          "{\"schema\":\"nova-bench-serve/v1\",\"mode\":\"default\",\"runs\":[{\"name\":\"%s\",\"mode\":\"encode\",\"algorithm\":\"ihybrid\",\"cold_wall_s\":%.6f,\"warm_wall_s\":%.6f,\"warm_origin\":\"%s\",\"coalesced_wall_s\":%.6f,\"rps\":%.2f,\"clients\":%d,\"coalesced\":%d,\"metered_wall_s\":%.6f,\"bare_wall_s\":%.6f,\"metrics_overhead\":%.4f}]}\n"
          machine cold_s warm_s
          (Option.value warm.Serve.Protocol.origin ~default:"?")
          coalesced_s rps clients coalesced_n metered_wall_s bare_wall_s
          metrics_overhead;
        close_out oc;
        Printf.printf
          "serve bench %s: cold %.4fs, warm %.4fs (%.1fx), coalesced %.4fs/req over %d \
           clients (%.1fx, %d shared), %.1f req/s, metrics overhead %.2fx over %d warm \
           requests\n"
          machine cold_s warm_s (cold_s /. warm_s) coalesced_s clients
          (cold_s /. coalesced_s) coalesced_n rps metrics_overhead warm_reps;
        Printf.eprintf "wrote %s\n" out;
        0
        end
      end
    end
  in
  let machine_name_arg =
    let doc = "Built-in machine to serve (the compute must dwarf the protocol overhead)." in
    Arg.(value & opt string "dk16" & info [ "m"; "machine" ] ~docv:"NAME" ~doc)
  in
  let clients_arg =
    let doc = "Concurrent identical clients for the coalesced tier." in
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc)
  in
  let out_arg =
    let doc = "Output artifact path." in
    Arg.(value & opt string "BENCH_serve.json" & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Measure the daemon's three latency tiers — cold compute, certified cache hit, \
          coalesced share — against an in-process server on a private socket, and write \
          the nova-bench-serve/v1 artifact that $(b,nova bench-diff) gates on.")
    Term.(const run $ machine_name_arg $ clients_arg $ out_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Statistical benchmarks (see also bench/main.exe for the point-sample modes).")
    [ bench_scaling_cmd; bench_serve_cmd ]

(* --- bench-diff ------------------------------------------------------------ *)

let bench_diff_cmd =
  let run threshold old_path new_path =
    if threshold < 0. then
      fail_with (Nova_error.Invalid_request "bench-diff: threshold must be non-negative")
    else
      let threshold = threshold /. 100. in
      match (Bench_diff.load old_path, Bench_diff.load new_path) with
      | exception Sys_error msg ->
          fail_with (Nova_error.Invalid_request (Printf.sprintf "bench-diff: %s" msg))
      | exception Json_min.Parse_error msg ->
          fail_with (Nova_error.Invalid_request (Printf.sprintf "bench-diff: %s" msg))
      | old_a, new_a -> (
          match Bench_diff.diff ~threshold old_a new_a with
          | exception Bench_diff.Schema_mismatch (a, b) ->
              fail_with
                (Nova_error.Invalid_request
                   (Printf.sprintf "bench-diff: schema mismatch (%s vs %s)" a b))
          | r ->
              let n =
                Bench_diff.report ~threshold Format.std_formatter ~old_path ~new_path r
              in
              if n = 0 then 0 else 1)
  in
  let threshold_arg =
    let doc =
      "Regression threshold in percent: a wall metric (keys ending in $(b,_s)) or size \
       metric (num_cubes, literal_cost, area, nbits) that worsens by more than this much \
       is a regression."
    in
    Arg.(value & opt float 25.0 & info [ "t"; "threshold" ] ~docv:"PCT" ~doc)
  in
  let old_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json" ~doc:"Baseline artifact.")
  in
  let new_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json" ~doc:"Candidate artifact.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_*.json artifacts row by row and metric by metric; exit 1 when \
          any wall or size metric regressed past the threshold (or a row disappeared), \
          0 otherwise.")
    Term.(const run $ threshold_arg $ old_arg $ new_arg)

(* --- cache ----------------------------------------------------------------- *)

let cache_fsck_cmd =
  let run dir =
    let dir = Option.value dir ~default:(default_cache_dir ()) in
    if not (Sys.file_exists dir) then begin
      Printf.eprintf "nova: cache fsck: no cache directory at %s\n" dir;
      0 (* an absent cache is a healthy (empty) cache *)
    end
    else
      match Exec.Cache.open_dir dir with
      | exception Sys_error msg -> fail_with (Nova_error.Invalid_request msg)
      | c ->
          let r = Exec.Cache.fsck c in
          Printf.printf
            "cache fsck %s: %d entries scanned, %d valid, %d broken removed, %d stale tmp \
             removed\n"
            dir r.Exec.Cache.scanned r.Exec.Cache.valid r.Exec.Cache.removed
            r.Exec.Cache.tmp_removed;
          0
  in
  let dir_arg =
    let doc =
      "Cache directory to check (default $(b,NOVA_CACHE_DIR) or $(b,.nova-cache))."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Verify the structural integrity (magic + checksum) of every cache entry, delete \
          broken entries and stale temp files left by writers that died mid-store. Semantic \
          certification still happens on every lookup; fsck only reclaims junk early.")
    Term.(const run $ dir_arg)

let cache_cmd =
  Cmd.group
    (Cmd.info "cache" ~doc:"Maintain the content-addressed result cache.")
    [ cache_fsck_cmd ]

(* --- serve: the batching encode daemon ------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path (created at startup, removed at shutdown)." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let max_inflight_arg =
    let doc =
      "Concurrent compute slots: how many requests may be computing at once (coalesced \
       requests share a slot; connections are unbounded). The default of 1 serializes \
       compute, which also keeps a $(b,--trace) artifact's span stacks valid."
    in
    Arg.(value & opt int 1 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let request_budget_ms_arg =
    let doc =
      "Admission ceiling: the most wall-clock any single request's compute may consume \
       (milliseconds). A request asking for less keeps its own deadline; one asking for \
       more is clamped — one huge FSM cannot starve the queue."
    in
    Arg.(value & opt (some float) None & info [ "request-budget-ms" ] ~docv:"MS" ~doc)
  in
  let request_max_work_arg =
    let doc = "Admission ceiling on the work budget of a single request's compute." in
    Arg.(value & opt (some int) None & info [ "request-max-work" ] ~docv:"N" ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one JSON line per request to $(docv): id, verb, machine, algorithm, serving \
       tier, wall time, outcome/exit code and budget spend. Append-only; safe to tail."
    in
    Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)
  in
  let flight_record_arg =
    let doc =
      "Dump the flight recorder (the last $(b,--flight-capacity) request summaries) to \
       $(docv) as JSON on crash, on shutdown, and on each $(b,flightrec) request — the \
       forensic record a wedged daemon leaves behind."
    in
    Arg.(value & opt (some string) None & info [ "flight-record" ] ~docv:"FILE" ~doc)
  in
  let flight_capacity_arg =
    let doc = "Flight-recorder ring size (last N request summaries)." in
    Arg.(
      value
      & opt int Serve.Server.default_flight_capacity
      & info [ "flight-capacity" ] ~docv:"N" ~doc)
  in
  let run socket jobs max_inflight cap_ms cap_work cache_dir no_cache quiet trace chaos
      chaos_seed access_log flight_record flight_capacity =
    if quiet then begin
      Harness.Driver.quiet := true;
      Exec.Supervise.quiet := true
    end;
    match
      match chaos with
      | None -> Ok ()
      | Some spec -> (
          match Exec.Chaos.configure ~seed:chaos_seed spec with
          | Ok () -> Ok ()
          | Error msg -> Error (Nova_error.Invalid_request ("--chaos " ^ msg)))
    with
    | Error err -> fail_with err
    | Ok () -> (
        run_traced trace
          ~meta:[ ("socket", Trace.String socket); ("jobs", Trace.Int jobs) ]
        @@ fun () ->
        let cache =
          if no_cache then None
          else
            Some (Exec.Cache.open_dir (Option.value cache_dir ~default:(default_cache_dir ())))
        in
        let cfg =
          {
            Serve.Server.socket_path = socket; jobs; max_inflight;
            cap_deadline_ms = cap_ms; cap_work; cache; quiet;
            access_log; flight_record; flight_capacity;
          }
        in
        match Serve.Server.run cfg with Ok () -> 0 | Error e -> fail_with e)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the encode daemon: a long-running server on a Unix-domain socket speaking \
          newline-delimited JSON, coalescing concurrent identical jobs, serving certified \
          cache hits without touching the pool and routing misses through the supervised \
          portfolio. SIGINT/SIGTERM (or the shutdown verb) drain in-flight requests, sweep \
          the cache of stale temp files and remove the socket.")
    Term.(
      const run $ socket_arg $ jobs_arg $ max_inflight_arg $ request_budget_ms_arg
      $ request_max_work_arg $ cache_dir_arg $ no_cache_arg $ quiet_arg $ trace_arg
      $ chaos_arg $ chaos_seed_arg $ access_log_arg $ flight_record_arg $ flight_capacity_arg)

(* --- client ---------------------------------------------------------------- *)

(* Print the payload (the daemon serves the exact one-shot stdout, so
   this is what `nova encode`/`nova report` would have printed), relay
   a typed error to stderr, and exit with the server-reported code —
   the daemon's equivalent of the one-shot exit-code contract. *)
let client_finish (reply : Serve.Protocol.reply) =
  (match reply.Serve.Protocol.payload with
  | Some p ->
      print_string p;
      if p <> "" && p.[String.length p - 1] <> '\n' then print_newline ()
  | None -> ());
  if reply.Serve.Protocol.ok then 0
  else begin
    (match reply.Serve.Protocol.error with
    | Some e -> Printf.eprintf "nova: %s\n" e
    | None -> Printf.eprintf "nova: server error\n");
    max 1 reply.Serve.Protocol.code
  end

let client_roundtrip socket line =
  match Serve.Client.connect socket with
  | Error m -> fail_with (Nova_error.Invalid_request m)
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          match Serve.Client.request c line with
          | Error m -> fail_with (Nova_error.Invalid_request ("client: " ^ m))
          | Ok reply -> client_finish reply)

(* Same resolution order as [read_machine], but a file travels as its
   KISS2 text (the server never reads client-side paths) and a non-file
   as a built-in suite name the server resolves. *)
let machine_ref_of path =
  if Sys.file_exists path then begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    Serve.Protocol.Kiss2
      { name = Some (Filename.remove_extension (Filename.basename path)); text }
  end
  else Serve.Protocol.Builtin path

let client_cmd =
  let verb_cmd name doc =
    let run socket = client_roundtrip socket (Serve.Protocol.verb_line name) in
    Cmd.v (Cmd.info name ~doc) Term.(const run $ socket_arg)
  in
  let algo_name_arg =
    let doc = "Encoding algorithm, by driver name (e.g. ihybrid, iexact, mustang-nt)." in
    Arg.(value & opt string "ihybrid" & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)
  in
  let encode_cmd =
    let run socket algo bits max_work fallback no_fallback budget_ms path =
      let fallback = fallback && not no_fallback in
      client_roundtrip socket
        (Serve.Protocol.encode_line ~algorithm:algo ?bits ?max_work ~fallback ?budget_ms
           (machine_ref_of path))
    in
    Cmd.v
      (Cmd.info "encode"
         ~doc:
           "Request an encode from the daemon. The printed payload is byte-identical to \
            the one-shot $(b,nova encode) stdout; the exit code matches too.")
      Term.(
        const run $ socket_arg $ algo_name_arg $ bits_arg $ max_work_arg $ fallback_arg
        $ no_fallback_arg $ budget_ms_arg $ machine_arg)
  in
  let report_cmd =
    let run socket budget_ms path =
      client_roundtrip socket (Serve.Protocol.report_line ?budget_ms (machine_ref_of path))
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Request a full portfolio report for one machine from the daemon (byte-identical \
            payload and exit code to one-shot $(b,nova report MACHINE)).")
      Term.(const run $ socket_arg $ budget_ms_arg $ machine_arg)
  in
  let watch_cmd =
    let run socket interval_ms count =
      if interval_ms <= 0 then
        fail_with (Nova_error.Invalid_request "client watch: --interval must be positive")
      else begin
        (* Counter deltas are against the previous tick, keyed by the
           rendered series (name plus sorted labels). *)
        let prev : (string, float) Hashtbl.t = Hashtbl.create 64 in
        let num field o = Option.bind (Json_min.member field o) Json_min.to_float in
        let str field o = Option.bind (Json_min.member field o) Json_min.to_string in
        let series_key o =
          let name = Option.value (str "name" o) ~default:"?" in
          match Json_min.member "labels" o with
          | Some (Json_min.Obj ((_ :: _) as kvs)) ->
              let pair (k, v) =
                Printf.sprintf "%s=%S" k (Option.value (Json_min.to_string v) ~default:"?")
              in
              Printf.sprintf "%s{%s}" name (String.concat "," (List.map pair kvs))
          | _ -> name
        in
        let rows field doc =
          Option.value (Option.bind (Json_min.member field doc) Json_min.to_list) ~default:[]
        in
        let print_counter row =
          let key = series_key row in
          let v = Option.value (num "value" row) ~default:0. in
          let delta =
            match Hashtbl.find_opt prev key with
            | Some p when v > p -> Printf.sprintf "  (+%g)" (v -. p)
            | _ -> ""
          in
          Hashtbl.replace prev key v;
          Printf.printf "  %-60s %10g%s\n" key v delta
        in
        let print_gauge row =
          Printf.printf "  %-60s %10g\n" (series_key row)
            (Option.value (num "value" row) ~default:0.)
        in
        let print_histogram row =
          Printf.printf "  %-60s n=%g p50=%.4gs p90=%.4gs p99=%.4gs\n" (series_key row)
            (Option.value (num "count" row) ~default:0.)
            (Option.value (num "p50" row) ~default:0.)
            (Option.value (num "p90" row) ~default:0.)
            (Option.value (num "p99" row) ~default:0.)
        in
        let tick n =
          match Serve.Client.connect socket with
          | Error m -> Error m
          | Ok c -> (
              Fun.protect
                ~finally:(fun () -> Serve.Client.close c)
                (fun () -> Serve.Client.request c (Serve.Protocol.verb_line "metrics"))
              |> function
              | Error m -> Error m
              | Ok r when not r.Serve.Protocol.ok ->
                  Error (Option.value r.Serve.Protocol.error ~default:"server error")
              | Ok r ->
                  let doc =
                    Option.value
                      (Json_min.member "metrics" r.Serve.Protocol.raw)
                      ~default:(Json_min.Obj [])
                  in
                  let tm = Unix.localtime (Unix.gettimeofday ()) in
                  Printf.printf "--- %02d:%02d:%02d tick %d ---\n" tm.Unix.tm_hour
                    tm.Unix.tm_min tm.Unix.tm_sec n;
                  let section title render =
                    match rows title doc with
                    | [] -> ()
                    | l ->
                        Printf.printf "%s:\n" title;
                        List.iter render l
                  in
                  section "counters" print_counter;
                  section "gauges" print_gauge;
                  section "histograms" print_histogram;
                  flush stdout;
                  Ok ())
        in
        let rec go n =
          match tick n with
          | Error m -> fail_with (Nova_error.Invalid_request ("client watch: " ^ m))
          | Ok () ->
              if count > 0 && n >= count then 0
              else begin
                Thread.delay (float_of_int interval_ms /. 1000.);
                go (n + 1)
              end
        in
        go 1
      end
    in
    let interval_arg =
      let doc = "Polling interval in milliseconds." in
      Arg.(value & opt int 1000 & info [ "interval" ] ~docv:"MS" ~doc)
    in
    let count_arg =
      let doc = "Stop after N polls (0 = poll until interrupted)." in
      Arg.(value & opt int 0 & info [ "n"; "count" ] ~docv:"N" ~doc)
    in
    Cmd.v
      (Cmd.info "watch"
         ~doc:
           "Poll the daemon's metrics and render a live view (a minimal top for \
            $(b,nova serve)): counters with per-tick deltas, gauges, and per-series \
            p50/p90/p99 latency quantiles.")
      Term.(const run $ socket_arg $ interval_arg $ count_arg)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running nova serve daemon.")
    [
      verb_cmd "ping" "Check the daemon is alive (prints pong).";
      verb_cmd "stats" "Print the daemon's served/coalesced/cache counters.";
      verb_cmd "metrics"
        "Print the daemon's Prometheus exposition (counters, gauges, latency summaries).";
      verb_cmd "flightrec"
        "Dump the daemon's flight recorder: the last N request summaries, as one JSON \
         document.";
      verb_cmd "shutdown" "Ask the daemon to drain, clean up and exit.";
      encode_cmd; report_cmd; watch_cmd;
    ]

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        let m = Lazy.force e.Benchmarks.Suite.machine in
        let s = Fsm.stats m in
        Printf.printf "%-10s %3d inputs %3d outputs %4d states %5d rows%s\n" e.Benchmarks.Suite.name
          s.Fsm.stat_inputs s.Fsm.stat_outputs s.Fsm.stat_states s.Fsm.stat_products
          (if e.Benchmarks.Suite.heavy then "  (heavy)" else ""))
      Benchmarks.Suite.all;
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in benchmark machines.")
    Term.(const run $ const ())

let () =
  let doc = "NOVA: optimal state assignment for two-level implementations" in
  let info = Cmd.info "nova" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            stats_cmd; constraints_cmd; encode_cmd; report_cmd; serve_cmd; client_cmd;
            minstates_cmd; dot_cmd; blif_cmd; gen_cmd; list_cmd; bench_cmd; bench_diff_cmd;
            cache_cmd;
          ]))
