(* Regression pins for the minimizer's product-term counts.

   The fast unate-aware kernels must not change what the minimizer
   produces — only how fast it produces it. These pins were measured on
   the seed implementation under two deterministic encodings (1-hot and
   ihybrid, both encoding paths are deterministic for these machines)
   and are asserted as upper bounds, so a future genuinely-better
   minimizer passes while a silent quality regression fails. *)

let pins =
  (* (machine, 1-hot product terms, ihybrid product terms) *)
  [
    ("lion", 8, 5);
    ("bbtas", 19, 14);
    ("shiftreg", 16, 4);
    ("modulo12", 24, 17);
    ("dk15", 14, 11);
    ("beecount", 11, 8);
    ("dk27", 6, 6);
    ("dol", 6, 7);
    ("train11", 7, 7);
    ("lion9", 5, 5);
  ]

let check_le name bound actual =
  if actual > bound then
    Alcotest.failf "%s: %d product terms, regression over the pinned %d" name actual bound

let test_onehot_counts () =
  List.iter
    (fun (nm, onehot_pin, _) ->
      let m = Benchmarks.Suite.find nm in
      let r = Encoded.implement m (Encoding.one_hot (Fsm.num_states ~m)) in
      check_le (nm ^ "/onehot") onehot_pin r.Encoded.num_cubes)
    pins

let test_ihybrid_counts () =
  List.iter
    (fun (nm, _, ihybrid_pin) ->
      let m = Benchmarks.Suite.find nm in
      match Harness.Driver.report m Harness.Driver.Ihybrid with
      | Error e -> Alcotest.failf "%s: %s" nm (Nova_error.to_string e)
      | Ok (_, r) -> check_le (nm ^ "/ihybrid") ihybrid_pin r.Encoded.num_cubes)
    pins

let suite =
  [
    Alcotest.test_case "1-hot product terms stay at or below the seed pins" `Quick
      test_onehot_counts;
    Alcotest.test_case "ihybrid product terms stay at or below the seed pins" `Quick
      test_ihybrid_counts;
  ]
