(* Helper process for the two-process serve test: run a second encode
   daemon against a shared cache directory while the test binary runs
   its own. OCaml 5 forbids [Unix.fork] once domains exist, and the
   test binary's pool suites spawn domains before the serve suite runs
   — so the second daemon lives in a real executable, like
   cache_racer.exe before it.

   Usage: serve_racer.exe SOCKET CACHE_DIR MACHINE
   Prints the MD5 of the served encode payload; exit 0 = clean. *)

let () =
  match Sys.argv with
  | [| _; socket_path; cache_dir; machine |] -> (
      Harness.Driver.quiet := true;
      Exec.Supervise.quiet := true;
      let config =
        {
          (Serve.Server.default_config ~socket_path) with
          Serve.Server.cache = Some (Exec.Cache.open_dir cache_dir);
          quiet = true;
        }
      in
      let result = ref (Error (Nova_error.Invalid_request "server never ran")) in
      let th = Thread.create (fun () -> result := Serve.Server.run config) () in
      let rec await n =
        if n = 0 then exit 3
        else
          match Serve.Client.connect socket_path with
          | Error _ ->
              Thread.delay 0.02;
              await (n - 1)
          | Ok c -> (
              match Serve.Client.request c (Serve.Protocol.verb_line "ping") with
              | Ok r when r.Serve.Protocol.ok -> Serve.Client.close c
              | _ ->
                  Serve.Client.close c;
                  Thread.delay 0.02;
                  await (n - 1))
      in
      await 250;
      let c = match Serve.Client.connect socket_path with Ok c -> c | Error _ -> exit 4 in
      let line =
        Serve.Protocol.encode_line ~algorithm:"ihybrid" (Serve.Protocol.Builtin machine)
      in
      (match Serve.Client.request c line with
      | Ok r when r.Serve.Protocol.ok ->
          print_endline
            (Digest.to_hex
               (Digest.string (Option.value r.Serve.Protocol.payload ~default:"")))
      | Ok _ | Error _ -> exit 5);
      ignore (Serve.Client.request c (Serve.Protocol.verb_line "shutdown"));
      Serve.Client.close c;
      Thread.join th;
      match !result with Ok () -> exit 0 | Error _ -> exit 6)
  | _ ->
      prerr_endline "usage: serve_racer.exe SOCKET CACHE_DIR MACHINE";
      exit 2
