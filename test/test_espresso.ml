(* Tests for the ESPRESSO-style minimizer. *)

open Logic

let dom_bb = Domain.create [| 2; 2 |]

let cube dom fields =
  List.fold_left
    (fun c (v, parts) -> if parts = [] then c else Cube.set_var dom c v parts)
    (Cube.full dom)
    (List.mapi (fun v parts -> (v, parts)) fields)

let check = Alcotest.(check bool)

let test_minimize_or () =
  (* a + b given as the four minterms asserting it: should collapse to two
     cubes (or fewer literals). *)
  let dom = dom_bb in
  let on =
    Cover.make dom
      [
        cube dom [ [ 1 ]; [ 0 ] ];
        cube dom [ [ 0 ]; [ 1 ] ];
        cube dom [ [ 1 ]; [ 1 ] ];
      ]
  in
  let m = Espresso.minimize ~dc:(Cover.empty dom) on in
  check "equivalent" true (Cover.equivalent m on);
  check "at most 2 cubes" true (Cover.size m <= 2)

let test_minimize_tautology () =
  let dom = dom_bb in
  let on =
    Cover.make dom
      [
        cube dom [ [ 0 ]; [ 0 ] ];
        cube dom [ [ 0 ]; [ 1 ] ];
        cube dom [ [ 1 ]; [ 0 ] ];
        cube dom [ [ 1 ]; [ 1 ] ];
      ]
  in
  let m = Espresso.minimize ~dc:(Cover.empty dom) on in
  Alcotest.(check int) "single full cube" 1 (Cover.size m);
  check "it is the full cube" true (Cube.is_full dom (List.hd m.Cover.cubes))

let test_minimize_with_dc () =
  (* xor with one minterm as don't-care minimizes to at most 2 cubes and
     covers the on-set. *)
  let dom = dom_bb in
  let on = Cover.make dom [ cube dom [ [ 0 ]; [ 1 ] ]; cube dom [ [ 1 ]; [ 0 ] ] ] in
  let dc = Cover.make dom [ cube dom [ [ 1 ]; [ 1 ] ] ] in
  let m = Espresso.minimize ~dc on in
  check "covers on-set" true (Cover.covers m on);
  check "within on+dc" true (Cover.covers (Cover.union on dc) m);
  check "no more cubes than before" true (Cover.size m <= 2)

let test_minimize_empty () =
  let dom = dom_bb in
  let m = Espresso.minimize ~dc:(Cover.empty dom) (Cover.empty dom) in
  Alcotest.(check int) "empty stays empty" 0 (Cover.size m)

let test_expand_primality () =
  let dom = dom_bb in
  let on = Cover.make dom [ cube dom [ [ 0 ]; [ 0 ] ] ] in
  let dc = Cover.empty dom in
  let off = Espresso.off_set ~on ~dc in
  let e = Espresso.expand on ~off in
  (* The single minterm of a'b' against its own off-set is already prime:
     raising any bit hits the off-set. *)
  Alcotest.(check int) "one cube" 1 (Cover.size e);
  check "unchanged" true (Cube.equal (List.hd e.Cover.cubes) (List.hd on.Cover.cubes))

let test_irredundant () =
  let dom = dom_bb in
  let f =
    Cover.make dom
      [ cube dom [ [ 0 ]; [] ]; cube dom [ [ 0 ]; [ 1 ] ] (* redundant *) ]
  in
  let r = Espresso.irredundant f ~dc:(Cover.empty dom) in
  Alcotest.(check int) "redundant cube removed" 1 (Cover.size r);
  check "still equivalent" true (Cover.equivalent r f)

(* Property: minimization preserves the function on the care set. *)

let gen_problem =
  QCheck.make
    ~print:(fun (sizes, non, ndc) ->
      Printf.sprintf "dom=[%s] on=%d dc=%d"
        (String.concat ";" (List.map string_of_int sizes))
        (List.length non) (List.length ndc))
    QCheck.Gen.(
      list_size (int_range 1 3) (int_range 2 3) >>= fun sizes ->
      let dom = Domain.create (Array.of_list sizes) in
      let gen_cube =
        let n = Domain.num_vars dom in
        let rec fields v acc =
          if v = n then return (List.rev acc)
          else
            let sz = Domain.size dom v in
            list_size (int_range 1 sz) (int_bound (sz - 1)) >>= fun parts ->
            fields (v + 1) (List.sort_uniq compare parts :: acc)
        in
        fields 0 [] >>= fun fields ->
        return
          (List.fold_left
             (fun c (v, parts) -> Cube.set_var dom c v parts)
             (Cube.full dom)
             (List.mapi (fun v parts -> (v, parts)) fields))
      in
      list_size (int_bound 5) gen_cube >>= fun on ->
      list_size (int_bound 3) gen_cube >>= fun dc -> return (sizes, on, dc))

let prop_minimize_sound =
  QCheck.Test.make ~name:"minimize: on ⊆ result∪dc and result ⊆ on∪dc" ~count:60 gen_problem
    (fun (sizes, on_cubes, dc_cubes) ->
      let dom = Domain.create (Array.of_list sizes) in
      let on = Cover.make dom on_cubes and dc = Cover.make dom dc_cubes in
      let m = Espresso.minimize ~dc on in
      (* When on and dc overlap, the overlap may be dropped, so the lower
         bound is on ⊆ result ∪ dc. *)
      Cover.covers (Cover.union m dc) on && Cover.covers (Cover.union on dc) m)

let prop_minimize_no_growth =
  QCheck.Test.make ~name:"minimize never increases cube count" ~count:60 gen_problem
    (fun (sizes, on_cubes, dc_cubes) ->
      let dom = Domain.create (Array.of_list sizes) in
      let on = Cover.make dom on_cubes and dc = Cover.make dom dc_cubes in
      let m = Espresso.minimize ~dc on in
      Cover.size m <= Cover.size (Cover.single_cube_containment on))

let prop_expand_preserves =
  QCheck.Test.make ~name:"expand preserves function and yields primes" ~count:60 gen_problem
    (fun (sizes, on_cubes, dc_cubes) ->
      let dom = Domain.create (Array.of_list sizes) in
      let on = Cover.make dom on_cubes and dc = Cover.make dom dc_cubes in
      if Cover.size on = 0 then true
      else
        let off = Espresso.off_set ~on ~dc in
        let e = Espresso.expand on ~off in
        Cover.covers e on && List.for_all (fun c -> not (List.exists (fun o -> Cube.intersects dom c o) off.Cover.cubes)) e.Cover.cubes)

let test_essential_primes () =
  let dom = dom_bb in
  (* f = a'b' + ab: both cubes essential. *)
  let f = Cover.make dom [ cube dom [ [ 0 ]; [ 0 ] ]; cube dom [ [ 1 ]; [ 1 ] ] ] in
  let ess = Espresso.essential_primes f ~dc:(Cover.empty dom) in
  Alcotest.(check int) "both essential" 2 (Cover.size ess);
  (* f = a' + b' + (a'b'): the third is covered by either of the others. *)
  let g =
    Cover.make dom
      [ cube dom [ [ 0 ]; [] ]; cube dom [ []; [ 0 ] ]; cube dom [ [ 0 ]; [ 0 ] ] ]
  in
  let ess_g = Espresso.essential_primes g ~dc:(Cover.empty dom) in
  check "a'b' not essential" true
    (not (List.exists (fun c -> Cube.equal c (cube dom [ [ 0 ]; [ 0 ] ])) ess_g.Cover.cubes))

let test_pla_parse () =
  let p = Pla.parse ".i 2\n.o 2\n# comment\n01 1-\n1- 01\n.e\n" in
  Alcotest.(check int) "inputs" 2 p.Pla.num_inputs;
  Alcotest.(check int) "outputs" 2 p.Pla.num_outputs;
  Alcotest.(check int) "on cubes" 2 (Cover.size p.Pla.on);
  Alcotest.(check int) "dc cubes" 1 (Cover.size p.Pla.dc);
  (* joined form without a space *)
  let j = Pla.parse ".i 2\n.o 1\n011\n.e\n" in
  Alcotest.(check int) "joined on" 1 (Cover.size j.Pla.on)

let test_pla_parse_errors () =
  let bad s = try ignore (Pla.parse s); false with Pla.Parse_error _ -> true in
  check "missing .i" true (bad ".o 1\n0 1\n.e\n");
  check "bad char" true (bad ".i 1\n.o 1\nx 1\n.e\n");
  check "width" true (bad ".i 2\n.o 1\n0 1\n.e\n")

let test_pla_roundtrip_minimize () =
  (* parse → minimize → print → parse again → equivalent *)
  let p = Pla.parse ".i 3\n.o 1\n000 1\n001 1\n010 1\n011 1\n110 1\n.e\n" in
  let m = Espresso.minimize ~dc:p.Pla.dc p.Pla.on in
  let text = Pla.to_string m ~num_binary_vars:3 in
  let p2 = Pla.parse text in
  check "roundtrip equivalent" true (Cover.equivalent p2.Pla.on p.Pla.on)

(* minimize_care: explicit on/off, implicit dc. *)
let prop_minimize_care_sound =
  QCheck.Test.make ~name:"minimize_care: covers on, avoids off" ~count:60 gen_problem
    (fun (sizes, on_cubes, off_cubes) ->
      let dom = Domain.create (Array.of_list sizes) in
      let on0 = Cover.make dom on_cubes and off0 = Cover.make dom off_cubes in
      (* Make the instance consistent: remove the off-overlap from on. *)
      let on = Cover.make dom
          (List.concat_map
             (fun c -> (Cover.complement_within off0 ~space:c).Cover.cubes)
             on0.Cover.cubes)
      in
      let m = Espresso.minimize_care ~off:off0 on in
      Cover.covers m on
      && List.for_all
           (fun c -> not (List.exists (fun o -> Cube.intersects dom c o) off0.Cover.cubes))
           m.Cover.cubes)

let prop_minimize_care_no_growth =
  QCheck.Test.make ~name:"minimize_care never increases cube count" ~count:60 gen_problem
    (fun (sizes, on_cubes, off_cubes) ->
      let dom = Domain.create (Array.of_list sizes) in
      let off = Cover.make dom off_cubes in
      let on = Cover.make dom
          (List.concat_map
             (fun c -> (Cover.complement_within off ~space:c).Cover.cubes)
             on_cubes)
      in
      Cover.size (Espresso.minimize_care ~off on)
      <= Cover.size (Cover.single_cube_containment on))

let suite =
  [
    Alcotest.test_case "essential primes" `Quick test_essential_primes;
    QCheck_alcotest.to_alcotest prop_minimize_care_sound;
    QCheck_alcotest.to_alcotest prop_minimize_care_no_growth;
    Alcotest.test_case "pla parse" `Quick test_pla_parse;
    Alcotest.test_case "pla parse errors" `Quick test_pla_parse_errors;
    Alcotest.test_case "pla roundtrip minimize" `Quick test_pla_roundtrip_minimize;
    Alcotest.test_case "minimize a+b" `Quick test_minimize_or;
    Alcotest.test_case "minimize tautology" `Quick test_minimize_tautology;
    Alcotest.test_case "minimize with dc" `Quick test_minimize_with_dc;
    Alcotest.test_case "minimize empty" `Quick test_minimize_empty;
    Alcotest.test_case "expand keeps prime minterm" `Quick test_expand_primality;
    Alcotest.test_case "irredundant removal" `Quick test_irredundant;
    QCheck_alcotest.to_alcotest prop_minimize_sound;
    QCheck_alcotest.to_alcotest prop_minimize_no_growth;
    QCheck_alcotest.to_alcotest prop_expand_preserves;
  ]
