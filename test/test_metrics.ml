(* Tests for the metrics layer (lib/metrics): log-linear histogram
   quantile error bounds against exact order statistics on seeded
   streams, lossless merging under concurrent observation from two
   domains, registry interning/validation/gating, Prometheus exposition
   escaping (round-tripped through Json_min) and the lint grammar it
   shares with scripts/check_prom.exe, the flight-recorder ring, and
   the quarantine registry snapshot surfaced through serve stats. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Histogram: quantiles within one bucket of the exact order statistic *)

(* Seeded value streams with deliberately different shapes: the error
   bound must hold regardless of where the mass sits. *)
let streams =
  let st = Random.State.make [| 0xBEEF; 7 |] in
  let uniform = List.init 10_000 (fun _ -> 1e-4 +. Random.State.float st 1.0) in
  let exponential =
    List.init 10_000 (fun _ -> -0.01 *. log (1. -. Random.State.float st 0.999))
  in
  let bimodal =
    List.init 10_000 (fun _ ->
        if Random.State.bool st then 0.001 +. Random.State.float st 0.0005
        else 0.5 +. Random.State.float st 0.2)
  in
  [ ("uniform", uniform); ("exponential", exponential); ("bimodal", bimodal) ]

let test_histogram_quantile_error_bound () =
  List.iter
    (fun (name, values) ->
      let h = Metrics.Histogram.create () in
      List.iter (Metrics.Histogram.observe h) values;
      let sorted = List.sort compare values |> Array.of_list in
      let n = Array.length sorted in
      check_int (name ^ ": count") n (Metrics.Histogram.count h);
      List.iter
        (fun q ->
          let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
          let exact = sorted.(rank - 1) in
          let got_bucket = Metrics.Histogram.quantile_bucket h q in
          let exact_bucket = Metrics.Histogram.bucket_of exact in
          check
            (Printf.sprintf "%s p%g: bucket within one of exact" name (q *. 100.))
            true
            (abs (got_bucket - exact_bucket) <= 1);
          (* The reported midpoint is within the bucket's relative
             width (1/sub_buckets) of the exact order statistic. *)
          let reported = Metrics.Histogram.quantile h q in
          let rel = abs_float (reported -. exact) /. exact in
          check
            (Printf.sprintf "%s p%g: relative error %.4f within a bucket width" name
               (q *. 100.) rel)
            true
            (rel <= 1.0 /. float_of_int Metrics.Histogram.sub_buckets))
        [ 0.5; 0.9; 0.99 ])
    streams

let test_histogram_buckets_and_bounds () =
  (* Bounds tile the axis: each bucket's upper bound is the next one's
     lower bound, and a bound value files into its own bucket. *)
  for i = 40 to 80 do
    let lo = Metrics.Histogram.lower_bound i in
    let hi = Metrics.Histogram.upper_bound i in
    check "bounds ordered" true (lo < hi);
    check_str "upper meets next lower"
      (Printf.sprintf "%.17g" hi)
      (Printf.sprintf "%.17g" (Metrics.Histogram.lower_bound (i + 1)));
    check_int "lower bound files into its bucket" i (Metrics.Histogram.bucket_of lo)
  done;
  (* Out-of-range values clamp instead of raising or vanishing. *)
  check_int "zero clamps to bucket 0" 0 (Metrics.Histogram.bucket_of 0.);
  check_int "negative clamps to bucket 0" 0 (Metrics.Histogram.bucket_of (-3.));
  check_int "huge clamps to the top bucket"
    (Metrics.Histogram.num_buckets - 1)
    (Metrics.Histogram.bucket_of 1e12);
  let h = Metrics.Histogram.create () in
  check_int "empty quantile bucket" (-1) (Metrics.Histogram.quantile_bucket h 0.5);
  check "empty quantile is 0" true (Metrics.Histogram.quantile h 0.5 = 0.);
  Metrics.Histogram.observe h 0.001;
  Metrics.Histogram.observe h (-1.);
  check_int "non-positive observations still count" 2 (Metrics.Histogram.count h)

(* Two domains hammer one histogram: atomic bumps must merge exactly —
   the bucket totals sum to the observation count, nothing is lost. *)
let test_histogram_two_domain_merge () =
  let h = Metrics.Histogram.create () in
  let per_domain = 50_000 in
  let work seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to per_domain do
      Metrics.Histogram.observe h (1e-4 +. Random.State.float st 0.1)
    done
  in
  let d1 = Domain.spawn (work 1) and d2 = Domain.spawn (work 2) in
  Domain.join d1;
  Domain.join d2;
  check_int "no observation lost" (2 * per_domain) (Metrics.Histogram.count h);
  let buckets = Metrics.Histogram.snapshot h in
  check_int "bucket totals sum to the count" (2 * per_domain)
    (Array.fold_left ( + ) 0 buckets);
  check "sum is positive and bounded" true
    (Metrics.Histogram.sum h > 0. && Metrics.Histogram.sum h < float_of_int (2 * per_domain))

(* ------------------------------------------------------------------ *)
(* Registry: interning, validation, the enabled gate *)

let test_registry_interning_and_labels () =
  let a =
    Metrics.Registry.counter ~labels:[ ("b", "2"); ("a", "1") ] "test_intern_total"
  in
  let b =
    Metrics.Registry.counter ~labels:[ ("a", "1"); ("b", "2") ] "test_intern_total"
  in
  let before = Metrics.Registry.counter_value a in
  Metrics.Registry.inc a;
  Metrics.Registry.inc b;
  check_int "label order is canonicalized: one series" (before + 2)
    (Metrics.Registry.counter_value a);
  let other =
    Metrics.Registry.counter ~labels:[ ("a", "other"); ("b", "2") ] "test_intern_total"
  in
  check_int "distinct label values are distinct series" 0
    (Metrics.Registry.counter_value other);
  Metrics.Registry.add a 5;
  check_int "add" (before + 7) (Metrics.Registry.counter_value a);
  let g = Metrics.Registry.gauge "test_intern_gauge" in
  Metrics.Registry.set_gauge g 2.5;
  check "gauge set" true (Metrics.Registry.gauge_value g = 2.5)

let test_registry_validates_names () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "leading digit rejected" true
    (raises (fun () -> Metrics.Registry.counter "9bad"));
  check "dash rejected" true (raises (fun () -> Metrics.Registry.counter "bad-name"));
  check "empty rejected" true (raises (fun () -> Metrics.Registry.counter ""));
  check "colon legal in metric names" false
    (raises (fun () -> Metrics.Registry.counter "test_ns:alright_total"));
  check "bad label name rejected" true
    (raises (fun () ->
         Metrics.Registry.counter ~labels:[ ("bad-label", "v") ] "test_lbl_total"));
  check "colon illegal in label names" true
    (raises (fun () ->
         Metrics.Registry.counter ~labels:[ ("a:b", "v") ] "test_lbl2_total"))

let test_registry_enabled_gate () =
  let c = Metrics.Registry.counter "test_gate_total" in
  let h = Metrics.Registry.histogram "test_gate_seconds" in
  let was = Metrics.Registry.enabled () in
  Fun.protect ~finally:(fun () -> Metrics.Registry.set_enabled was) @@ fun () ->
  Metrics.Registry.set_enabled false;
  Metrics.Registry.inc c;
  Metrics.Registry.observe h 0.5;
  check_int "disabled counter does not move" 0 (Metrics.Registry.counter_value c);
  check_int "disabled histogram does not move" 0 (Metrics.Histogram.count h);
  Metrics.Registry.set_enabled true;
  Metrics.Registry.inc c;
  Metrics.Registry.observe h 0.5;
  check_int "re-enabled counter moves" 1 (Metrics.Registry.counter_value c);
  check_int "re-enabled histogram moves" 1 (Metrics.Histogram.count h)

(* ------------------------------------------------------------------ *)
(* Exposition: escaping, Json_min round-trips, and the lint grammar *)

let tricky = "path\\to \"thing\"\nline2"

let test_expose_escaping () =
  check_str "label escapes backslash, quote, newline"
    "path\\\\to \\\"thing\\\"\\nline2"
    (Metrics.Expose.escape_label tricky);
  check_str "help escapes backslash and newline only" "path\\\\to \"thing\"\\nline2"
    (Metrics.Expose.escape_help tricky);
  (* A tricky label value survives the JSON snapshot: render with
     Json_min, parse back, read the identical bytes. *)
  let c =
    Metrics.Registry.counter ~labels:[ ("detail", tricky) ] "test_escape_total"
  in
  Metrics.Registry.inc c;
  let doc = Json_min.of_string (Json_min.render (Metrics.Expose.json ())) in
  let counters =
    Option.get (Option.bind (Json_min.member "counters" doc) Json_min.to_list)
  in
  let row =
    List.find
      (fun r ->
        Option.bind (Json_min.member "name" r) Json_min.to_string
        = Some "test_escape_total")
      counters
  in
  let labels = Option.get (Json_min.member "labels" row) in
  check "tricky label round-trips through Json_min" true
    (Option.bind (Json_min.member "detail" labels) Json_min.to_string = Some tricky)

let test_expose_prometheus_lints_clean () =
  (* Make sure each instrument kind (and a tricky label) is present,
     then lint the full process-wide exposition. *)
  Metrics.Registry.inc
    (Metrics.Registry.counter ~help:"A test counter."
       ~labels:[ ("detail", tricky) ] "test_lint_total");
  Metrics.Registry.set_gauge (Metrics.Registry.gauge ~help:"A test gauge." "test_lint_gauge") 3.25;
  Metrics.Registry.observe
    (Metrics.Registry.histogram ~help:"A test histogram." "test_lint_seconds")
    0.002;
  let text = Metrics.Expose.prometheus () in
  (match Metrics.Expose.lint text with
  | Ok () -> ()
  | Error m -> Alcotest.failf "exposition does not lint: %s" m);
  let has_line prefix =
    String.split_on_char '\n' text
    |> List.exists (fun l -> String.length l >= String.length prefix
                             && String.sub l 0 (String.length prefix) = prefix)
  in
  check "counter TYPE line" true (has_line "# TYPE test_lint_total counter");
  check "gauge sample" true (has_line "test_lint_gauge 3.25");
  check "summary TYPE line" true (has_line "# TYPE test_lint_seconds summary");
  check "summary quantile series" true (has_line "test_lint_seconds{quantile=\"0.5\"}");
  check "summary count series" true (has_line "test_lint_seconds_count");
  check "newline-terminated" true (text.[String.length text - 1] = '\n')

let test_expose_lint_rejects_broken () =
  let rejects name text =
    match Metrics.Expose.lint text with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "lint accepted %s" name
  in
  rejects "missing trailing newline" "# TYPE a counter\na 1";
  rejects "sample without TYPE" "orphan_total 1\n";
  rejects "unknown metric type" "# TYPE a enum\na 1\n";
  rejects "duplicate TYPE" "# TYPE a counter\n# TYPE a counter\na 1\n";
  rejects "illegal escape in label" "# TYPE a counter\na{l=\"x\\t\"} 1\n";
  rejects "unterminated label value" "# TYPE a counter\na{l=\"x} 1\n";
  rejects "non-numeric value" "# TYPE a counter\na one\n";
  rejects "bad metric name" "# TYPE 9a counter\n9a 1\n";
  rejects "summary without _sum/_count" "# TYPE s summary\ns{quantile=\"0.5\"} 1\n";
  match
    Metrics.Expose.lint
      "# HELP s help text\n# TYPE s summary\ns{quantile=\"0.5\"} 0.1\ns_sum 0.1\ns_count 1\n"
  with
  | Ok () -> ()
  | Error m -> Alcotest.failf "lint rejected a well-formed summary: %s" m

(* ------------------------------------------------------------------ *)
(* Flight recorder: ring semantics and the dump artifact *)

let flight_entry i =
  {
    Metrics.Flight.seq = 0; at = 1000. +. float_of_int i; id = i; verb = "ping";
    machine = ""; algorithm = ""; tier = "none"; wall_ms = 0.1; ok = true; code = 0;
    error = "";
  }

let test_flight_ring_wraps () =
  let t = Metrics.Flight.create 4 in
  check_int "capacity" 4 (Metrics.Flight.capacity t);
  for i = 0 to 9 do
    Metrics.Flight.record t (flight_entry i)
  done;
  check_int "recorded counts every entry" 10 (Metrics.Flight.recorded t);
  let es = Metrics.Flight.entries t in
  check_int "ring keeps the last capacity entries" 4 (List.length es);
  check "oldest first, newest last" true
    (List.map (fun e -> e.Metrics.Flight.id) es = [ 6; 7; 8; 9 ]);
  check "ring assigns monotone seq" true
    (List.map (fun e -> e.Metrics.Flight.seq) es = [ 6; 7; 8; 9 ]);
  (* Under capacity: everything, in order. *)
  let small = Metrics.Flight.create 8 in
  Metrics.Flight.record small (flight_entry 0);
  Metrics.Flight.record small (flight_entry 1);
  check "partial ring in order" true
    (List.map (fun e -> e.Metrics.Flight.id) (Metrics.Flight.entries small) = [ 0; 1 ])

let test_flight_dump_artifact () =
  let t = Metrics.Flight.create 3 in
  for i = 0 to 4 do
    Metrics.Flight.record t (flight_entry i)
  done;
  let path = Filename.temp_file "nova-flight-test" ".json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  Metrics.Flight.dump ~reason:"crash" ~path t;
  let doc = Json_min.of_file path in
  let str k = Option.bind (Json_min.member k doc) Json_min.to_string in
  let num k = Option.bind (Json_min.member k doc) Json_min.to_float in
  check "schema" true (str "schema" = Some "nova-flightrec/v1");
  check "reason" true (str "reason" = Some "crash");
  check "capacity" true (num "capacity" = Some 3.);
  check "recorded" true (num "recorded" = Some 5.);
  let entries =
    Option.get (Option.bind (Json_min.member "entries" doc) Json_min.to_list)
  in
  check_int "dumped entries" 3 (List.length entries);
  check "entry ids survive" true
    (List.map
       (fun e -> Option.bind (Json_min.member "id" e) Json_min.to_float)
       entries
    = [ Some 2.; Some 3.; Some 4. ])

(* ------------------------------------------------------------------ *)
(* Quarantine registry: the per-pair snapshot serve surfaces *)

let test_quarantine_snapshot () =
  Exec.Supervise.reset_quarantine ();
  Fun.protect ~finally:Exec.Supervise.reset_quarantine @@ fun () ->
  let policy =
    { Exec.Supervise.default_policy with Exec.Supervise.base_backoff_ms = 0.01 }
  in
  let crash () =
    Exec.Supervise.run policy ~machine:"qm" ~algorithm:"qa" (fun () -> failwith "always")
  in
  ignore (crash ());
  ignore (crash ());
  (* Two exhausted cycles: quarantined. Two further calls are skips. *)
  ignore (crash ());
  ignore (crash ());
  match Exec.Supervise.quarantine_snapshot () with
  | [ e ] ->
      check_str "machine" "qm" e.Exec.Supervise.q_machine;
      check_str "algorithm" "qa" e.Exec.Supervise.q_algorithm;
      check_int "exhausted cycles" 2 e.Exec.Supervise.q_cycles;
      check_int "skips counted" 2 e.Exec.Supervise.q_skips;
      check "detail mentions the crash" true (e.Exec.Supervise.q_detail <> "")
  | rows -> Alcotest.failf "expected one quarantine row, got %d" (List.length rows)

let suite =
  [
    Alcotest.test_case "histogram: quantiles within one bucket of exact" `Quick
      test_histogram_quantile_error_bound;
    Alcotest.test_case "histogram: bucket bounds tile the axis" `Quick
      test_histogram_buckets_and_bounds;
    Alcotest.test_case "histogram: two domains merge exactly" `Quick
      test_histogram_two_domain_merge;
    Alcotest.test_case "registry: interning and labels" `Quick
      test_registry_interning_and_labels;
    Alcotest.test_case "registry: name validation" `Quick test_registry_validates_names;
    Alcotest.test_case "registry: enabled gate" `Quick test_registry_enabled_gate;
    Alcotest.test_case "expose: escaping round-trips" `Quick test_expose_escaping;
    Alcotest.test_case "expose: exposition passes lint" `Quick
      test_expose_prometheus_lints_clean;
    Alcotest.test_case "expose: lint rejects broken exposition" `Quick
      test_expose_lint_rejects_broken;
    Alcotest.test_case "flight: ring wraps oldest-first" `Quick test_flight_ring_wraps;
    Alcotest.test_case "flight: dump artifact parses" `Quick test_flight_dump_artifact;
    Alcotest.test_case "supervise: quarantine snapshot" `Quick test_quarantine_snapshot;
  ]
