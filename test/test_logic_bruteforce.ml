(* Brute-force cross-checks of the unate-recursive kernel: on small
   domains, compare every operation against explicit minterm-set
   semantics. These tests are slow per case but small domains keep them
   fast overall; they pin down the exact meaning of cofactor, tautology,
   containment and complement. *)

open Logic

(* Enumerate every minterm of a domain as a value array. *)
let all_minterms dom =
  let n = Domain.num_vars dom in
  let rec go v acc =
    if v = n then [ List.rev acc ]
    else
      List.concat_map (fun p -> go (v + 1) (p :: acc)) (List.init (Domain.size dom v) (fun p -> p))
  in
  List.map Array.of_list (go 0 [])

let minterm_in_cube dom c values = Cube.contains c (Cube.of_minterm dom values)

let minterm_set dom (cover : Cover.t) =
  List.filter (fun m -> List.exists (fun c -> minterm_in_cube dom c m) cover.Cover.cubes)
    (all_minterms dom)

let gen_cover =
  QCheck.make
    ~print:(fun (sizes, seed, ncubes) ->
      Printf.sprintf "sizes=[%s] seed=%d n=%d"
        (String.concat ";" (List.map string_of_int sizes))
        seed ncubes)
    QCheck.Gen.(
      list_size (int_range 1 3) (int_range 2 3) >>= fun sizes ->
      int_bound 1_000_000 >>= fun seed ->
      int_range 0 5 >>= fun ncubes -> return (sizes, seed, ncubes))

let build (sizes, seed, ncubes) =
  let dom = Domain.create (Array.of_list sizes) in
  let rng = Random.State.make [| seed |] in
  let cube () =
    let c = Cube.full dom in
    List.fold_left
      (fun c v ->
        let sz = Domain.size dom v in
        let parts =
          List.filter (fun _ -> Random.State.bool rng) (List.init sz (fun p -> p))
        in
        let parts = if parts = [] then [ Random.State.int rng sz ] else parts in
        Cube.set_var dom c v parts)
      c
      (List.init (Domain.num_vars dom) (fun v -> v))
  in
  (dom, Cover.make dom (List.init ncubes (fun _ -> cube ())))

let prop_tautology_bruteforce =
  QCheck.Test.make ~name:"tautology = covers every minterm (brute force)" ~count:150 gen_cover
    (fun input ->
      let dom, f = build input in
      Cover.tautology f = (List.length (minterm_set dom f) = List.length (all_minterms dom)))

let prop_complement_bruteforce =
  QCheck.Test.make ~name:"complement = set difference (brute force)" ~count:150 gen_cover
    (fun input ->
      let dom, f = build input in
      let nf = Cover.complement f in
      let inside = minterm_set dom f and outside = minterm_set dom nf in
      let all = all_minterms dom in
      List.length inside + List.length outside = List.length all
      && List.for_all (fun m -> not (List.mem m outside)) inside)

let prop_covers_cube_bruteforce =
  QCheck.Test.make ~name:"covers_cube = minterm subset (brute force)" ~count:150 gen_cover
    (fun input ->
      let dom, f = build input in
      match f.Cover.cubes with
      | [] -> true
      | c :: _ ->
          let cube_minterms = List.filter (fun m -> minterm_in_cube dom c m) (all_minterms dom) in
          let covered = minterm_set dom f in
          Cover.covers_cube f c = List.for_all (fun m -> List.mem m covered) cube_minterms)

let prop_cofactor_bruteforce =
  QCheck.Test.make ~name:"cofactor semantics (brute force)" ~count:150 gen_cover
    (fun input ->
      let dom, f = build input in
      match f.Cover.cubes with
      | [] -> true
      | wrt :: _ ->
          (* Minterms of wrt covered by f = minterms of wrt covered by
             the cofactor of f against wrt. *)
          let cf = Cover.cofactor f ~wrt in
          List.for_all
            (fun m ->
              if minterm_in_cube dom wrt m then
                List.exists (fun c -> minterm_in_cube dom c m) f.Cover.cubes
                = List.exists (fun c -> minterm_in_cube dom c m) cf.Cover.cubes
              else true)
            (all_minterms dom))

let prop_minimize_bruteforce =
  QCheck.Test.make ~name:"espresso preserves minterm set (brute force)" ~count:100 gen_cover
    (fun input ->
      let dom, f = build input in
      let m = Espresso.minimize ~dc:(Cover.empty dom) f in
      minterm_set dom m = minterm_set dom f)

let prop_num_minterms_bruteforce =
  QCheck.Test.make ~name:"num_minterms matches enumeration" ~count:150 gen_cover
    (fun input ->
      let dom, f = build input in
      Cover.num_minterms f = List.length (minterm_set dom f))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tautology_bruteforce;
    QCheck_alcotest.to_alcotest prop_complement_bruteforce;
    QCheck_alcotest.to_alcotest prop_covers_cube_bruteforce;
    QCheck_alcotest.to_alcotest prop_cofactor_bruteforce;
    QCheck_alcotest.to_alcotest prop_minimize_bruteforce;
    QCheck_alcotest.to_alcotest prop_num_minterms_bruteforce;
  ]
