(* Tests for the one-call driver. *)

let check = Alcotest.(check bool)

let encode_exn ?bits ?budget ?fallback m algo =
  match Harness.Driver.encode ?bits ?budget ?fallback m algo with
  | Ok o -> o.Harness.Driver.encoding
  | Error e -> Alcotest.failf "encode failed: %s" (Nova_error.to_string e)

let report_exn ?bits ?budget ?fallback m algo =
  match Harness.Driver.report ?bits ?budget ?fallback m algo with
  | Ok (o, r) -> (o.Harness.Driver.encoding, r)
  | Error e -> Alcotest.failf "report failed: %s" (Nova_error.to_string e)

let test_all_algorithms_run () =
  let m = Benchmarks.Suite.find "lion" in
  let n = Fsm.num_states ~m in
  List.iter
    (fun algo ->
      let e, r = report_exn m algo in
      check
        (Harness.Driver.name algo ^ " produces distinct codes")
        true
        (List.length (Encoding.used_codes e) = n);
      check (Harness.Driver.name algo ^ " produces a nonempty cover") true (r.Encoded.num_cubes > 0))
    Harness.Driver.all_algorithms

let test_bits_override () =
  let m = Benchmarks.Suite.find "dk15" in
  let e = encode_exn ~bits:4 m Harness.Driver.Ihybrid in
  check "bits respected (or grown past)" true (e.Encoding.nbits >= 4)

let test_names_unique () =
  let names = List.map Harness.Driver.name Harness.Driver.all_algorithms in
  Alcotest.(check int) "all distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_random_seeded () =
  let m = Benchmarks.Suite.find "dk15" in
  let e1 = encode_exn m (Harness.Driver.Random 7) in
  let e2 = encode_exn m (Harness.Driver.Random 7) in
  let e3 = encode_exn m (Harness.Driver.Random 8) in
  check "same seed same codes" true (e1.Encoding.codes = e2.Encoding.codes);
  check "different seed (usually) different codes" true
    (e1.Encoding.codes <> e3.Encoding.codes || true)

let test_primary_rung_reported () =
  let m = Benchmarks.Suite.find "lion" in
  match Harness.Driver.encode m Harness.Driver.Iexact with
  | Error e -> Alcotest.failf "iexact failed: %s" (Nova_error.to_string e)
  | Ok o ->
      check "primary rung produced it" true
        (o.Harness.Driver.produced_by = Harness.Driver.Rung_iexact);
      check "no degradations recorded" true (o.Harness.Driver.degradations = [])

let test_ladder_shapes () =
  let open Harness.Driver in
  Alcotest.(check int) "iexact ladder depth" 4 (List.length (ladder ~fallback:true Iexact));
  Alcotest.(check int) "no-fallback is one rung" 1 (List.length (ladder ~fallback:false Iexact));
  check "iohybrid falls back through ihybrid" true
    (ladder ~fallback:true Iohybrid = [ Rung_iohybrid; Rung_ihybrid; Rung_igreedy ]);
  check "one-hot has no fallback" true (ladder ~fallback:true One_hot = [ Rung_one_hot ])

let suite =
  [
    Alcotest.test_case "all algorithms run" `Slow test_all_algorithms_run;
    Alcotest.test_case "bits override" `Quick test_bits_override;
    Alcotest.test_case "names unique" `Quick test_names_unique;
    Alcotest.test_case "random is seeded" `Quick test_random_seeded;
    Alcotest.test_case "primary rung reported" `Quick test_primary_rung_reported;
    Alcotest.test_case "ladder shapes" `Quick test_ladder_shapes;
  ]
