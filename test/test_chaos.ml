(* Tests for the supervision layer and the seeded chaos harness: spec
   parsing, deterministic backoff, quarantine, pool crash isolation,
   cache checksums / fsck / concurrent-process safety, and the central
   invariant — under any fault schedule the executor returns either
   rows byte-identical to the fault-free run or typed errors, never an
   uncaught exception, and the cache never serves a damaged entry. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_temp_dir f =
  let dir = Filename.temp_file "nova-chaos-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* Every chaos test must leave the global schedule off, crashing or
   not, or it poisons whatever suite runs after it. *)
let with_chaos ?seed spec f =
  (match Exec.Chaos.configure ?seed spec with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("chaos spec rejected: " ^ msg));
  Fun.protect ~finally:(fun () -> Exec.Chaos.disable ()) f

let with_quarantine_reset f =
  Exec.Supervise.reset_quarantine ();
  Fun.protect ~finally:(fun () -> Exec.Supervise.reset_quarantine ()) f

let sample_task name = Exec.Job.task (Benchmarks.Suite.find name) Harness.Driver.Igreedy

let has_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Chaos spec parsing and schedule determinism *)

let test_spec_parsing () =
  (match Exec.Chaos.parse_spec "rung:2,cache-read:1" with
  | Ok [ (Exec.Chaos.Rung, 2); (Exec.Chaos.Cache_read, 1) ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  let rejects s =
    check (Printf.sprintf "spec %S rejected" s) true
      (match Exec.Chaos.parse_spec s with Error _ -> true | Ok _ -> false)
  in
  rejects "";
  rejects "rung";
  rejects "rung:0";
  rejects "rung:-1";
  rejects "rung:2,rung:1";
  rejects "flux-capacitor:1";
  rejects "rung:two";
  List.iter
    (fun site ->
      check "site name round-trips" true
        (Exec.Chaos.site_of_name (Exec.Chaos.site_name site) = Some site))
    Exec.Chaos.all_sites

let fired_indices ~seed spec ~site ~probes =
  with_chaos ~seed spec @@ fun () ->
  let fired = ref [] in
  for i = 0 to probes - 1 do
    if Exec.Chaos.should_fire site then fired := i :: !fired
  done;
  List.rev !fired

let test_schedule_deterministic_and_exhaustible () =
  let a = fired_indices ~seed:42 "rung:3" ~site:Exec.Chaos.Rung ~probes:50 in
  let b = fired_indices ~seed:42 "rung:3" ~site:Exec.Chaos.Rung ~probes:50 in
  check "same seed, same schedule" true (a = b);
  check_int "exactly COUNT faults fire" 3 (List.length a);
  check "all within the 2*COUNT window" true (List.for_all (fun i -> i < 6) a);
  let c = fired_indices ~seed:43 "rung:3" ~site:Exec.Chaos.Rung ~probes:50 in
  (* Not guaranteed for every pair of seeds, but stable for this one —
     and the point (seed moves the schedule) needs some witness. *)
  check "different seed moves the schedule" true (a <> c);
  let other = fired_indices ~seed:42 "rung:3" ~site:Exec.Chaos.Cache_read ~probes:50 in
  check_int "unlisted site never fires" 0 (List.length other)

let test_rewind_replays_schedule () =
  with_chaos ~seed:9 "pool:2" @@ fun () ->
  let draw () =
    let fired = ref [] in
    for i = 0 to 19 do
      if Exec.Chaos.should_fire Exec.Chaos.Pool_worker then fired := i :: !fired
    done;
    List.rev !fired
  in
  let first = draw () in
  let exhausted = draw () in
  check_int "schedule exhausted after the window" 0 (List.length exhausted);
  Exec.Chaos.rewind ();
  check "rewind replays the identical schedule" true (draw () = first)

(* ------------------------------------------------------------------ *)
(* Supervision: backoff, retry, quarantine *)

let test_backoff_deterministic_and_bounded () =
  let p = Exec.Supervise.default_policy in
  for attempt = 1 to 4 do
    let b1 = Exec.Supervise.backoff_ms p ~key:"lion/igreedy" ~attempt in
    let b2 = Exec.Supervise.backoff_ms p ~key:"lion/igreedy" ~attempt in
    check "backoff is deterministic" true (b1 = b2);
    let base = p.Exec.Supervise.base_backoff_ms *. (p.Exec.Supervise.multiplier ** float (attempt - 1)) in
    check "within jitter envelope" true
      (b1 >= base *. (1. -. p.Exec.Supervise.jitter) -. 1e-9
      && b1 <= base *. (1. +. p.Exec.Supervise.jitter) +. 1e-9)
  done;
  let b_other = Exec.Supervise.backoff_ms p ~key:"dk15/igreedy" ~attempt:1 in
  let b_lion = Exec.Supervise.backoff_ms p ~key:"lion/igreedy" ~attempt:1 in
  check "distinct keys, distinct jitter" true (b_other <> b_lion)

let test_supervise_retries_then_succeeds () =
  with_quarantine_reset @@ fun () ->
  let calls = ref 0 in
  let result =
    Exec.Supervise.run
      { Exec.Supervise.default_policy with Exec.Supervise.base_backoff_ms = 0.01 }
      ~machine:"m" ~algorithm:"a"
      (fun () ->
        incr calls;
        if !calls < 3 then failwith "flaky" else Ok "done")
  in
  check "third attempt succeeds" true (result = Ok "done");
  check_int "exactly three attempts" 3 !calls

let test_supervise_exhausts_to_job_crashed () =
  with_quarantine_reset @@ fun () ->
  let calls = ref 0 in
  let result =
    Exec.Supervise.run
      { Exec.Supervise.default_policy with Exec.Supervise.base_backoff_ms = 0.01 }
      ~machine:"m" ~algorithm:"a"
      (fun () ->
        incr calls;
        failwith "always")
  in
  check_int "attempt budget consumed" 3 !calls;
  match result with
  | Error (Nova_error.Job_crashed { attempts = 3; _ }) -> ()
  | _ -> Alcotest.fail "expected Job_crashed with attempts = 3"

let test_supervise_never_retries_typed_errors () =
  with_quarantine_reset @@ fun () ->
  let calls = ref 0 in
  let err = Nova_error.Invalid_request "no" in
  let result =
    Exec.Supervise.run Exec.Supervise.default_policy ~machine:"m" ~algorithm:"a"
      (fun () ->
        incr calls;
        Error err)
  in
  check "typed error passes through" true (result = Error err);
  check_int "typed errors are verdicts, not crashes: one attempt" 1 !calls;
  check "permanent per taxonomy" false (Nova_error.is_transient err);
  check "crashes are transient per taxonomy" true
    (Nova_error.is_transient
       (Nova_error.Job_crashed { job = "j"; attempts = 1; detail = "d" }))

let test_quarantine_after_two_exhausted_cycles () =
  with_quarantine_reset @@ fun () ->
  let policy =
    { Exec.Supervise.default_policy with Exec.Supervise.base_backoff_ms = 0.01 }
  in
  let calls = ref 0 in
  let crash () =
    Exec.Supervise.run policy ~machine:"m" ~algorithm:"a"
      (fun () ->
        incr calls;
        failwith "always")
  in
  ignore (crash ());
  check "not yet quarantined after one cycle" true
    (Exec.Supervise.quarantined ~machine:"m" ~algorithm:"a" = None);
  ignore (crash ());
  check "quarantined after two cycles" true
    (Exec.Supervise.quarantined ~machine:"m" ~algorithm:"a" <> None);
  let before = !calls in
  (match crash () with
  | Error (Nova_error.Job_crashed { attempts = 0; _ }) -> ()
  | _ -> Alcotest.fail "expected a quarantine skip (attempts = 0)");
  check_int "quarantine skip runs nothing" before !calls;
  check "other pairs unaffected" true
    (Exec.Supervise.quarantined ~machine:"m2" ~algorithm:"a" = None);
  Exec.Supervise.reset_quarantine ();
  check "reset re-admits" true
    (Exec.Supervise.quarantined ~machine:"m" ~algorithm:"a" = None)

(* ------------------------------------------------------------------ *)
(* Pool crash isolation *)

let test_pool_isolates_crashes_per_slot () =
  let tasks = Array.init 16 (fun i -> i) in
  let slots =
    Exec.Pool.mapi_isolated ~jobs:4 tasks ~f:(fun i x ->
        if i mod 5 = 2 then failwith (Printf.sprintf "boom %d" i) else x * x)
  in
  Array.iteri
    (fun i slot ->
      match slot with
      | Ok v -> check_int "healthy slot value" (i * i) v
      | Error (Failure msg, _) ->
          check "crash lands in its own slot" true (msg = Printf.sprintf "boom %d" i);
          check "only scheduled slots crash" true (i mod 5 = 2)
      | Error _ -> Alcotest.fail "unexpected exception type")
    slots;
  check_int "all slots settled" 16 (Array.length slots)

let test_pool_fatal_exceptions_not_isolated () =
  let tasks = Array.init 8 (fun i -> i) in
  match
    Exec.Pool.mapi_isolated ~jobs:2 tasks ~f:(fun i x ->
        if i = 3 then raise Out_of_memory else x)
  with
  | _ -> Alcotest.fail "Out_of_memory must escape isolation"
  | exception Out_of_memory -> ()

let test_pool_injected_fault_isolated_and_restarted () =
  with_quarantine_reset @@ fun () ->
  with_chaos ~seed:5 "pool:2" @@ fun () ->
  let task = sample_task "lion" in
  let rows = Exec.Portfolio.run ~jobs:2 [ task; task; task; task ] in
  check_int "every row settled" 4 (List.length rows);
  List.iter
    (fun (r : Exec.Job.row) ->
      check "pool faults absorbed by inline restart" true
        (match r.Exec.Job.result with Ok _ -> true | Error _ -> false))
    rows

(* ------------------------------------------------------------------ *)
(* Cache: checksums, fsck, concurrent processes *)

let entry_of dir task = Filename.concat dir (Exec.Job.key task ^ ".nova-cache")

let populate dir task =
  let c = Exec.Cache.open_dir dir in
  ignore (Exec.Portfolio.run ~cache:c [ task ]);
  check "entry written" true (Sys.file_exists (entry_of dir task))

let test_cache_truncated_entry_recovered () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  populate dir task;
  let path = entry_of dir task in
  let text = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      output_string oc (String.sub text 0 (String.length text / 2)));
  let c = Exec.Cache.open_dir dir in
  let rows = Exec.Portfolio.run ~cache:c [ task ] in
  let st = Exec.Cache.stats c in
  check_int "torn entry rejected, not served" 1 st.Exec.Cache.rejected;
  check_int "no hit from a torn entry" 0 st.Exec.Cache.hits;
  check "recomputed fine" true
    (match (List.hd rows).Exec.Job.result with Ok _ -> true | Error _ -> false);
  check "fresh entry structurally valid again" true
    (let r = Exec.Cache.fsck (Exec.Cache.open_dir dir) in
     r.Exec.Cache.valid = r.Exec.Cache.scanned && r.Exec.Cache.removed = 0)

let test_cache_fsck_sweeps_junk () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  populate dir task;
  let path = entry_of dir task in
  (* A second, torn entry; a stale writer temp file; an orphan lock. *)
  let torn = Filename.concat dir (String.make 32 'f' ^ ".nova-cache") in
  Out_channel.with_open_bin torn (fun oc -> output_string oc "nova-cache/v2\nchecksum ");
  Out_channel.with_open_bin (path ^ ".tmp.999.0") (fun oc -> output_string oc "partial");
  Out_channel.with_open_bin
    (Filename.concat dir (String.make 32 'e' ^ ".nova-cache.lock"))
    (fun oc -> ignore oc);
  let r = Exec.Cache.fsck (Exec.Cache.open_dir dir) in
  check_int "scanned both entries" 2 r.Exec.Cache.scanned;
  check_int "one valid" 1 r.Exec.Cache.valid;
  check_int "torn entry removed" 1 r.Exec.Cache.removed;
  check_int "stale tmp removed" 1 r.Exec.Cache.tmp_removed;
  check "good entry survives" true (Sys.file_exists path);
  check "torn entry gone" false (Sys.file_exists torn);
  let r2 = Exec.Cache.fsck (Exec.Cache.open_dir dir) in
  check "fsck is idempotent" true
    (r2.Exec.Cache.scanned = 1 && r2.Exec.Cache.removed = 0 && r2.Exec.Cache.tmp_removed = 0)

(* A schedule draws COUNT faulting invocations out of the site's first
   2*COUNT, so no fixed seed is guaranteed to hit specific indices —
   search for one that does (deterministic: same search, same seed). *)
let find_seed spec ~site ~must_fire =
  let rec go seed =
    if seed > 500 then Alcotest.fail ("no seed fires wanted indices for " ^ spec)
    else begin
      (match Exec.Chaos.configure ~seed spec with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      let top = List.fold_left max 0 must_fire in
      let fired = ref [] in
      for i = 0 to top do
        if Exec.Chaos.should_fire site then fired := i :: !fired
      done;
      Exec.Chaos.disable ();
      if List.for_all (fun i -> List.mem i !fired) must_fire then seed else go (seed + 1)
    end
  in
  go 0

let test_cache_write_fault_skips_store () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  (* A seed that faults the store's write attempt and its one retry
     (Cache_write invocations 0 and 1): the store is skipped, the
     result still returned, and no torn file is left behind. *)
  let seed = find_seed "cache-write:4" ~site:Exec.Chaos.Cache_write ~must_fire:[ 0; 1 ] in
  ( with_chaos ~seed "cache-write:4" @@ fun () ->
    let c = Exec.Cache.open_dir dir in
    let rows = Exec.Portfolio.run ~cache:c [ task ] in
    check "result unaffected by write faults" true
      (match (List.hd rows).Exec.Job.result with Ok _ -> true | Error _ -> false) );
  check "no entry file left" false (Sys.file_exists (entry_of dir task));
  Array.iter
    (fun e -> check "no temp junk left" false (String.length e > 4 && Filename.check_suffix e ".tmp"))
    (Sys.readdir dir);
  (* With chaos off the same cache works again. *)
  populate dir task

(* Two processes hammering one cache directory: a helper executable
   (test/cache_racer.ml — OCaml 5 forbids [Unix.fork] once the pool
   tests have spawned domains) loops store/fsck cycles while this
   process loops find/store; neither may ever observe a torn entry (a
   served entry re-certifies) or crash. *)
let test_cache_two_process_race () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  let success =
    match Exec.Job.run task with Ok s -> s | Error _ -> Alcotest.fail "igreedy failed"
  in
  let rounds = 25 in
  let racer = Filename.concat (Filename.dirname Sys.executable_name) "cache_racer.exe" in
  check "racer helper built" true (Sys.file_exists racer);
  let pid =
    Unix.create_process racer
      [| racer; dir; string_of_int rounds |]
      Unix.stdin Unix.stdout Unix.stderr
  in
  let c = Exec.Cache.open_dir dir in
  let served_bad = ref false in
  for _ = 1 to rounds do
    (match Exec.Cache.find c task with
    | None -> () (* raced a reject/fsck delete: a miss, never a tear *)
    | Some s -> if not (Exec.Job.success_equal s success) then served_bad := true);
    Exec.Cache.store c task success
  done;
  let _, status = Unix.waitpid [] pid in
  check "racer process exited cleanly" true (status = Unix.WEXITED 0);
  check "no damaged entry ever served" false !served_bad;
  let r = Exec.Cache.fsck (Exec.Cache.open_dir dir) in
  check "directory structurally clean after the race" true
    (r.Exec.Cache.valid = r.Exec.Cache.scanned)

(* ------------------------------------------------------------------ *)
(* The chaos invariant matrix *)

(* Fault-free reference rows, computed once per matrix run. *)
let reference_rows tasks = Exec.Portfolio.run ~jobs:1 tasks

let rows_equivalent (a : Exec.Job.row list) (b : Exec.Job.row list) =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Exec.Job.row) (y : Exec.Job.row) ->
         match (x.Exec.Job.result, y.Exec.Job.result) with
         | Ok u, Ok v -> Exec.Job.success_equal u v
         | Error u, Error v -> u = v
         | _ -> false)
       a b

(* One cell: configure the schedule, run supervised, and demand the
   invariant — every row is either bit-identical to the fault-free row
   or a typed Job_crashed; nothing raises; the cache never serves a
   bad entry (every hit re-certifies, so serving one would surface as
   a wrong row). *)
let run_cell ~spec ~seed ~jobs ~tasks ~reference dir =
  with_quarantine_reset @@ fun () ->
  with_chaos ~seed spec @@ fun () ->
  let cache = Exec.Cache.open_dir dir in
  let rows =
    try Exec.Portfolio.run ~jobs ~cache tasks
    with e ->
      Alcotest.failf "uncaught exception under %s seed %d jobs %d: %s" spec seed jobs
        (Printexc.to_string e)
  in
  List.iter2
    (fun (r : Exec.Job.row) (ref_r : Exec.Job.row) ->
      match (r.Exec.Job.result, ref_r.Exec.Job.result) with
      | Ok s, Ok ref_s ->
          check "surviving row identical to fault-free" true
            (Exec.Job.success_equal s ref_s)
      | Error (Nova_error.Job_crashed _), _ -> ()
      | Error e, _ ->
          Alcotest.failf "non-crash error under %s seed %d: %s" spec seed
            (Nova_error.to_string e)
      | Ok _, Error _ -> Alcotest.fail "chaos healed a fault-free failure?")
    rows reference;
  rows

(* The absorbed matrix: schedules whose crash-site budgets stay within
   the supervisor's retries (rung:2 = max_attempts - 1) or touch only
   always-absorbed cache sites. Every cell must reproduce the
   fault-free rows exactly, at jobs=1 and jobs=2 over the same
   schedule (Chaos.rewind). *)
let test_chaos_matrix_absorbed () =
  let tasks = [ sample_task "lion"; sample_task "dk15"; sample_task "bbara" ] in
  let reference = reference_rows tasks in
  let specs =
    [ "rung:2"; "pool:1"; "cache-read:2"; "cache-write:2"; "recertify:2";
      "rung:1,pool:1"; "cache-read:1,cache-write:1,recertify:1" ]
  in
  List.iter
    (fun spec ->
      for seed = 0 to 9 do
        with_temp_dir @@ fun dir ->
        (* Warm the cache so the read/recertify sites actually probe. *)
        ignore (Exec.Portfolio.run ~cache:(Exec.Cache.open_dir dir) tasks);
        let rows1 = run_cell ~spec ~seed ~jobs:1 ~tasks ~reference dir in
        check "absorbed: jobs=1 rows equal fault-free" true
          (rows_equivalent rows1 reference);
        ( with_chaos ~seed spec @@ fun () ->
          Exec.Chaos.rewind ();
          () );
        let rows2 = run_cell ~spec ~seed ~jobs:2 ~tasks ~reference dir in
        check "absorbed: jobs=2 rows equal fault-free" true
          (rows_equivalent rows2 reference)
      done)
    specs

(* The overwhelmed matrix: more rung faults than the retry budget can
   be sure to absorb. Rows may settle as Job_crashed (typed, attempts
   recorded) — but never anything worse, and surviving rows still
   match fault-free. Whether a particular seed concentrates three
   consecutive faults on one task is schedule luck, so the crash
   witness is asserted across the seed sweep, not per cell. *)
let test_chaos_matrix_overwhelmed () =
  let tasks = [ sample_task "lion"; sample_task "dk15"; sample_task "bbara" ] in
  let reference = reference_rows tasks in
  for seed = 0 to 9 do
    with_temp_dir @@ fun dir ->
    let rows = run_cell ~spec:"rung:9,pool:2" ~seed ~jobs:2 ~tasks ~reference dir in
    check_int "every row settled" (List.length tasks) (List.length rows)
  done;
  (* A seed that forces three consecutive rung faults onto one task
     (found by schedule inspection, deterministically): that task MUST
     settle as Job_crashed. *)
  let seed = find_seed "rung:9" ~site:Exec.Chaos.Rung ~must_fire:[ 0; 1; 2 ] in
  with_temp_dir @@ fun dir ->
  let rows = run_cell ~spec:"rung:9" ~seed ~jobs:1 ~tasks ~reference dir in
  match (List.hd rows).Exec.Job.result with
  | Error (Nova_error.Job_crashed { attempts = 3; _ }) -> ()
  | _ -> Alcotest.fail "first task must exhaust its attempts and crash"

(* ------------------------------------------------------------------ *)
(* Satellites: sequential fallback, racing under chaos, taxonomy *)

let test_effective_jobs_fallback () =
  check_int "no cores, no pool" 1 (Exec.Portfolio.effective_jobs ~available:1 ~requested:8);
  check_int "requested 1 stays 1" 1 (Exec.Portfolio.effective_jobs ~available:16 ~requested:1);
  check_int "cores available, requested honored" 4
    (Exec.Portfolio.effective_jobs ~available:16 ~requested:4);
  check_int "degenerate available" 1 (Exec.Portfolio.effective_jobs ~available:0 ~requested:3)

let test_job_crashed_error_surface () =
  let e = Nova_error.Job_crashed { job = "igreedy on lion"; attempts = 3; detail = "boom" } in
  check_int "Job_crashed exit code" 7 (Nova_error.exit_code e);
  let s = Nova_error.to_string e in
  check "to_string names the job" true
    (has_infix ~affix:"igreedy on lion" s);
  check "to_string counts attempts" true (has_infix ~affix:"3 attempts" s)

let test_supervise_protect_one_shot () =
  (match Exec.Supervise.protect ~what:"ok-path" (fun () -> 42) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "protect must pass the value through");
  let calls = ref 0 in
  (match
     Exec.Supervise.protect ~what:"crash-path" (fun () ->
         incr calls;
         failwith "infra")
   with
  | Error detail -> check "detail names the exception" true
      (has_infix ~affix:"infra" detail)
  | Ok _ -> Alcotest.fail "crash must map to Error");
  check_int "protect never retries" 1 !calls;
  match Exec.Supervise.protect ~what:"fatal" (fun () -> raise Out_of_memory) with
  | _ -> Alcotest.fail "fatal exceptions must escape protect"
  | exception Out_of_memory -> ()

let test_off_policy_single_attempt () =
  with_quarantine_reset @@ fun () ->
  let calls = ref 0 in
  let r =
    Exec.Supervise.run Exec.Supervise.off ~machine:"m" ~algorithm:"a"
      (fun () ->
        incr calls;
        failwith "once")
  in
  check_int "off policy tries exactly once" 1 !calls;
  match r with
  | Error (Nova_error.Job_crashed { attempts = 1; _ }) -> ()
  | _ -> Alcotest.fail "expected a single-attempt Job_crashed"

let test_race_falls_through_crashed_rung () =
  with_quarantine_reset @@ fun () ->
  (* Fault the first racer's whole attempt budget: the race must fall
     through to the next-preferred rung, exactly like a degradation. *)
  let seed = find_seed "rung:9" ~site:Exec.Chaos.Rung ~must_fire:[ 0; 1; 2 ] in
  with_chaos ~seed "rung:9" @@ fun () ->
  let m = Benchmarks.Suite.find "lion" in
  let rows, winner = Exec.Portfolio.race ~jobs:1 (Exec.Portfolio.tasks_for m) in
  match winner with
  | None -> Alcotest.fail "race must still produce a winner"
  | Some w ->
      check "crashed primary is not the winner" true (w > 0);
      (match (List.hd rows).Exec.Job.result with
      | Error (Nova_error.Job_crashed _) -> ()
      | _ -> Alcotest.fail "first racer must settle as Job_crashed");
      check "winning row is a success" true
        (match (List.nth rows w).Exec.Job.result with Ok _ -> true | Error _ -> false)

let test_quarantine_skips_repeat_offender_in_run () =
  with_quarantine_reset @@ fun () ->
  let seed = find_seed "rung:30" ~site:Exec.Chaos.Rung ~must_fire:[ 0; 1; 2; 3; 4; 5 ] in
  with_chaos ~seed "rung:30" @@ fun () ->
  let task = sample_task "lion" in
  (* Two exhausted cycles on the same (machine, algorithm) pair... *)
  let rows = Exec.Portfolio.run ~jobs:1 [ task; task ] in
  List.iter
    (fun (r : Exec.Job.row) ->
      match r.Exec.Job.result with
      | Error (Nova_error.Job_crashed _) -> ()
      | _ -> Alcotest.fail "both runs should exhaust their attempts")
    rows;
  (* ...and the third is skipped without running anything: attempts = 0
     and the detail says quarantined. *)
  match Exec.Portfolio.run ~jobs:1 [ task ] with
  | [ { Exec.Job.result = Error (Nova_error.Job_crashed { attempts = 0; detail; _ }); _ } ] ->
      check "detail says quarantined" true (has_infix ~affix:"quarantin" detail)
  | _ -> Alcotest.fail "expected a quarantine skip row"

let test_degradation_warning_counts_attempts () =
  let m = Benchmarks.Suite.find "dk16" in
  let budget = Budget.create ~max_work:10 () in
  match Harness.Driver.encode ~budget m Harness.Driver.Iexact with
  | Error _ -> Alcotest.fail "fallback ladder must land on igreedy"
  | Ok o -> (
      match Harness.Driver.degradation_warning o with
      | None -> Alcotest.fail "a degraded outcome must warn"
      | Some w ->
          check "warning keeps the pinned phrase" true
            (has_infix ~affix:"degraded to" w);
          check "warning counts rung attempts" true
            (has_infix ~affix:"rung attempt" w))

let test_cache_read_fault_on_warm_cache_recovers () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  populate dir task;
  let seed = find_seed "cache-read:1" ~site:Exec.Chaos.Cache_read ~must_fire:[ 0 ] in
  ( with_chaos ~seed "cache-read:1" @@ fun () ->
    let c = Exec.Cache.open_dir dir in
    let rows = Exec.Portfolio.run ~cache:c [ task ] in
    let st = Exec.Cache.stats c in
    check "read fault converges on recompute" true
      (match (List.hd rows).Exec.Job.result with Ok _ -> true | Error _ -> false);
    check_int "read fault is a miss, not a hit" 0 st.Exec.Cache.hits;
    check_int "faulted entry rejected" 1 st.Exec.Cache.rejected );
  (* The delete-and-recompute recovery re-stored a pristine entry. *)
  let c = Exec.Cache.open_dir dir in
  check "entry serves again after recovery" true (Exec.Cache.find c task <> None)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  [
    t "chaos: spec parsing accepts/rejects" test_spec_parsing;
    t "chaos: schedule deterministic, windowed, exhaustible"
      test_schedule_deterministic_and_exhaustible;
    t "chaos: rewind replays the identical schedule" test_rewind_replays_schedule;
    t "supervise: backoff deterministic and within envelope"
      test_backoff_deterministic_and_bounded;
    t "supervise: transient crash retries then succeeds" test_supervise_retries_then_succeeds;
    t "supervise: exhausted retries settle as Job_crashed"
      test_supervise_exhausts_to_job_crashed;
    t "supervise: typed errors are never retried" test_supervise_never_retries_typed_errors;
    t "supervise: quarantine after two exhausted cycles"
      test_quarantine_after_two_exhausted_cycles;
    t "pool: crashes isolate per slot" test_pool_isolates_crashes_per_slot;
    t "pool: fatal exceptions escape isolation" test_pool_fatal_exceptions_not_isolated;
    t "pool: injected domain death restarts supervised"
      test_pool_injected_fault_isolated_and_restarted;
    t "cache: truncated entry rejected and recomputed" test_cache_truncated_entry_recovered;
    t "cache: fsck sweeps torn entries, temps, orphan locks" test_cache_fsck_sweeps_junk;
    t "cache: write faults skip the store, leave no junk" test_cache_write_fault_skips_store;
    t "cache: two processes race without serving torn entries" test_cache_two_process_race;
    t "invariant: absorbed schedules reproduce fault-free rows (7 specs x 10 seeds x 2 jobs)"
      test_chaos_matrix_absorbed;
    t "invariant: overwhelming schedules settle as typed crashes (10 seeds)"
      test_chaos_matrix_overwhelmed;
    t "portfolio: effective_jobs falls back to sequential" test_effective_jobs_fallback;
    t "nova-error: Job_crashed exit code and message" test_job_crashed_error_surface;
    t "supervise: protect is one-shot and fatal-transparent" test_supervise_protect_one_shot;
    t "supervise: off policy is single-attempt" test_off_policy_single_attempt;
    t "race: crashed primary falls through to next rung" test_race_falls_through_crashed_rung;
    t "portfolio: quarantined pair skipped with typed row"
      test_quarantine_skips_repeat_offender_in_run;
    t "driver: degradation warning counts rung attempts"
      test_degradation_warning_counts_attempts;
    t "cache: warm-cache read fault recovers by recompute"
      test_cache_read_fault_on_warm_cache_recovers;
  ]
