(* Helper process for the two-process cache race test: hammer one
   cache directory with store/fsck cycles. OCaml 5 forbids Unix.fork
   once domains exist, and the test binary's pool tests spawn domains
   before the race test runs — so the second process is a real
   executable, not a fork.

   Usage: cache_racer.exe DIR ROUNDS   (exit 0 = clean, 1 = crashed) *)

let () =
  match Sys.argv with
  | [| _; dir; rounds |] -> (
      let rounds = int_of_string rounds in
      let task =
        Exec.Job.task (Benchmarks.Suite.find "lion") Harness.Driver.Igreedy
      in
      match Exec.Job.run task with
      | Error _ -> exit 2
      | Ok success -> (
          try
            let c = Exec.Cache.open_dir dir in
            for _ = 1 to rounds do
              Exec.Cache.store c task success;
              ignore (Exec.Cache.fsck c)
            done;
            exit 0
          with _ -> exit 1))
  | _ ->
      prerr_endline "usage: cache_racer.exe DIR ROUNDS";
      exit 2
