(* Tests for the encode daemon (lib/serve): protocol parsing and its
   fuzz resistance, byte-exact payload parity with the one-shot CLI,
   in-flight coalescing (K concurrent clients, one computation), the
   serve chaos site, and shutdown hygiene (socket unlinked, own cache
   temp files swept). The daemon runs in-process on a thread; the
   two-process cache sharing test spawns test/serve_racer.exe (OCaml 5
   forbids [Unix.fork] once other suites have spawned domains). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let with_temp_dir f =
  let dir = Filename.temp_file "nova-serve-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Protocol: parsing, rendering, and fuzz resistance *)

let parse_ok line =
  match Serve.Protocol.parse_request line with
  | Ok p -> p
  | Error (_, e) -> Alcotest.failf "unexpected parse failure: %s" (Nova_error.to_string e)

let parse_err line =
  match Serve.Protocol.parse_request line with
  | Ok _ -> Alcotest.failf "expected a parse failure for %S" line
  | Error (id, e) -> (id, e)

let test_protocol_verbs () =
  List.iter
    (fun (verb, expect) ->
      let { Serve.Protocol.id; request } = parse_ok (Serve.Protocol.verb_line verb) in
      check ("verb " ^ verb) true (request = expect);
      check "no id by default" true (id = None))
    [
      ("ping", Serve.Protocol.Ping); ("stats", Serve.Protocol.Stats);
      ("shutdown", Serve.Protocol.Shutdown);
    ];
  let { Serve.Protocol.id; _ } =
    parse_ok (Serve.Protocol.verb_line ~id:(Json_min.Str "req-7") "ping")
  in
  check "id round-trips" true (id = Some (Json_min.Str "req-7"))

let test_protocol_encode_roundtrip () =
  let line =
    Serve.Protocol.encode_line ~id:(Json_min.Num 3.) ~bits:5 ~max_work:1000 ~fallback:false
      ~budget_ms:250. ~algorithm:"igreedy"
      (Serve.Protocol.Builtin "lion")
  in
  match (parse_ok line).Serve.Protocol.request with
  | Serve.Protocol.Encode r ->
      check "machine" true (r.Serve.Protocol.machine = Serve.Protocol.Builtin "lion");
      check "algorithm" true (r.Serve.Protocol.algorithm = Harness.Driver.Igreedy);
      check "bits" true (r.Serve.Protocol.bits = Some 5);
      check "max_work" true (r.Serve.Protocol.max_work = Some 1000);
      check "fallback" false r.Serve.Protocol.fallback;
      check "budget_ms" true (r.Serve.Protocol.budget_ms = Some 250.)
  | _ -> Alcotest.fail "expected an encode request"

let test_protocol_kiss2_and_report () =
  let text = ".i 1\n.o 1\n.p 2\n0 a a 0\n1 a a 1\n.e\n" in
  let line =
    Serve.Protocol.report_line (Serve.Protocol.Kiss2 { name = Some "tiny"; text })
  in
  match (parse_ok line).Serve.Protocol.request with
  | Serve.Protocol.Report { machine = Serve.Protocol.Kiss2 { name; text = t }; budget_ms } ->
      check "kiss2 name" true (name = Some "tiny");
      check_str "kiss2 text" text t;
      check "no budget" true (budget_ms = None)
  | _ -> Alcotest.fail "expected a kiss2 report request"

let test_protocol_errors_typed () =
  (* Malformed JSON: a parse error (exit code 2). *)
  let _, e = parse_err "{garbage" in
  check "malformed is Parse_error" true
    (match e with Nova_error.Parse_error _ -> true | _ -> false);
  (* Structurally valid JSON, wrong shape: invalid request (code 5),
     and the id still comes back for the response to echo. *)
  List.iter
    (fun line ->
      let _, e = parse_err line in
      check ("invalid: " ^ line) true
        (match e with Nova_error.Invalid_request _ -> true | _ -> false))
    [
      "{}"; "{\"verb\":\"nope\"}"; "{\"verb\":42}"; "[1,2,3]"; "null"; "\"ping\"";
      "{\"verb\":\"encode\"}"; "{\"verb\":\"encode\",\"machine\":7}";
      "{\"verb\":\"encode\",\"machine\":\"lion\",\"algorithm\":\"bogus\"}";
      "{\"verb\":\"encode\",\"machine\":\"lion\",\"bits\":\"five\"}";
      "{\"verb\":\"report\"}";
    ];
  let id, _ = parse_err "{\"id\":99,\"verb\":\"nope\"}" in
  check "id survives a bad verb" true (id = Some (Json_min.Num 99.))

(* Deterministic garbage: [parse_request] must never raise, whatever
   bytes arrive on the wire. *)
let fuzz_lines =
  let st = Random.State.make [| 0xC0FFEE |] in
  List.init 500 (fun _ ->
      let len = Random.State.int st 120 in
      String.init len (fun _ ->
          (* any byte but the line terminator (framing strips it) *)
          let c = Random.State.int st 255 in
          Char.chr (if c >= Char.code '\n' then c + 1 else c)))

let test_protocol_fuzz_never_raises () =
  List.iter
    (fun line ->
      match Serve.Protocol.parse_request line with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "parse_request raised on %S: %s" line (Printexc.to_string e))
    fuzz_lines

let test_protocol_reply_roundtrip () =
  let ok =
    Serve.Protocol.ok_response ~id:(Json_min.Str "a") ~origin:"cached" ~payload:"hello\n" ()
  in
  (match Serve.Protocol.parse_reply ok with
  | Ok r ->
      check "ok" true r.Serve.Protocol.ok;
      check_int "ok code" 0 r.Serve.Protocol.code;
      check "origin" true (r.Serve.Protocol.origin = Some "cached");
      check "payload" true (r.Serve.Protocol.payload = Some "hello\n");
      check "id" true (r.Serve.Protocol.reply_id = Some (Json_min.Str "a"))
  | Error m -> Alcotest.failf "reply did not parse: %s" m);
  let err = Serve.Protocol.error_response (Nova_error.Invalid_request "nope") in
  match Serve.Protocol.parse_reply err with
  | Ok r ->
      check "error not ok" false r.Serve.Protocol.ok;
      check_int "error code" 5 r.Serve.Protocol.code;
      check "error text" true (r.Serve.Protocol.error <> None)
  | Error m -> Alcotest.failf "error reply did not parse: %s" m

(* ------------------------------------------------------------------ *)
(* In-process server harness *)

let request_line ?budget_ms ?max_work ~algorithm machine =
  Serve.Protocol.encode_line ?budget_ms ?max_work ~algorithm (Serve.Protocol.Builtin machine)

let must_connect path =
  match Serve.Client.connect path with
  | Ok c -> c
  | Error m -> Alcotest.failf "connect: %s" m

let must_request c line =
  match Serve.Client.request c line with
  | Ok r -> r
  | Error m -> Alcotest.failf "request: %s" m

(* Start a server on a thread, await readiness over the real socket,
   run [f], then shut down through the protocol and demand a clean
   exit with the socket file gone. *)
let with_server ?(tweak = fun c -> c) f =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "s.sock" in
  let config =
    tweak { (Serve.Server.default_config ~socket_path:path) with Serve.Server.quiet = true }
  in
  let result = ref (Error (Nova_error.Invalid_request "server never ran")) in
  let th = Thread.create (fun () -> result := Serve.Server.run config) () in
  let rec await n =
    if n = 0 then Alcotest.fail "server did not come up"
    else
      match Serve.Client.connect path with
      | Error _ ->
          Thread.delay 0.02;
          await (n - 1)
      | Ok c -> (
          match Serve.Client.request c (Serve.Protocol.verb_line "ping") with
          | Ok r when r.Serve.Protocol.ok -> Serve.Client.close c
          | _ ->
              Serve.Client.close c;
              Thread.delay 0.02;
              await (n - 1))
  in
  await 250;
  Fun.protect
    ~finally:(fun () ->
      (match Serve.Client.connect path with
      | Ok c ->
          ignore (Serve.Client.request c (Serve.Protocol.verb_line "shutdown"));
          Serve.Client.close c
      | Error _ -> ());
      Thread.join th;
      check "clean shutdown" true (!result = Ok ());
      check "socket removed" false (Sys.file_exists path))
    (fun () -> f path)

(* The byte-exact expectation: what the one-shot CLI prints for this
   encode, built from the same renderer the CLI and daemon share. *)
let oneshot_stdout machine algorithm =
  let m = Benchmarks.Suite.find machine in
  let task = Exec.Job.task m algorithm in
  match Exec.Job.run task with
  | Error e -> Alcotest.failf "one-shot reference failed: %s" (Nova_error.to_string e)
  | Ok s ->
      Serve.Render.encode_text m s.Exec.Job.encoding ~num_cubes:s.Exec.Job.num_cubes
        ~area:s.Exec.Job.area
        ~onehot:(Serve.Render.onehot_reference ~budget:(Budget.create ()) m)

let test_serve_ping_and_stats () =
  with_server @@ fun path ->
  let c = must_connect path in
  let r = must_request c (Serve.Protocol.verb_line "ping") in
  check "pong" true (r.Serve.Protocol.payload = Some "pong");
  let r = must_request c (Serve.Protocol.verb_line "stats") in
  check "stats ok" true r.Serve.Protocol.ok;
  (match r.Serve.Protocol.raw with
  | Json_min.Obj fields ->
      check "stats carries proto" true
        (List.assoc_opt "proto" fields = Some (Json_min.Str Serve.Protocol.proto));
      check "stats counts requests" true
        (match List.assoc_opt "requests" fields with
        | Some (Json_min.Num n) -> n >= 2.
        | _ -> false)
  | _ -> Alcotest.fail "stats reply is not an object");
  Serve.Client.close c

let test_serve_payload_byte_identical () =
  with_server @@ fun path ->
  let c = must_connect path in
  let r = must_request c (request_line ~algorithm:"igreedy" "lion") in
  check "encode ok" true r.Serve.Protocol.ok;
  check "origin computed" true (r.Serve.Protocol.origin = Some "computed");
  check_str "payload equals one-shot stdout"
    (oneshot_stdout "lion" Harness.Driver.Igreedy)
    (Option.value r.Serve.Protocol.payload ~default:"");
  Serve.Client.close c

let test_serve_warm_hits_cache () =
  with_temp_dir @@ fun cache_dir ->
  with_server ~tweak:(fun c ->
      { c with Serve.Server.cache = Some (Exec.Cache.open_dir cache_dir) })
  @@ fun path ->
  let c = must_connect path in
  let line = request_line ~algorithm:"igreedy" "dk15" in
  let cold = must_request c line in
  let warm = must_request c line in
  check "cold computed" true (cold.Serve.Protocol.origin = Some "computed");
  check "warm cached" true (warm.Serve.Protocol.origin = Some "cached");
  check "warm payload identical" true
    (cold.Serve.Protocol.payload = warm.Serve.Protocol.payload);
  let s = Serve.Server.last_stats () in
  check_int "one computation" 1 s.Serve.Server.computed;
  check_int "one cache hit" 1 s.Serve.Server.cache_hits;
  Serve.Client.close c

(* A constrained request (an explicit ask) bypasses cache and
   coalescing: a work-starved ask must degrade exactly like the
   one-shot CLI would, and its degraded result must not poison the
   cache for plain requests. *)
let test_serve_constrained_is_individual () =
  with_temp_dir @@ fun cache_dir ->
  with_server ~tweak:(fun c ->
      { c with Serve.Server.cache = Some (Exec.Cache.open_dir cache_dir) })
  @@ fun path ->
  let c = must_connect path in
  let starved = must_request c (request_line ~max_work:1 ~algorithm:"ihybrid" "dk15") in
  let s = Serve.Server.last_stats () in
  check_int "constrained never reads the cache" 0 s.Serve.Server.cache_hits;
  let plain = must_request c (request_line ~algorithm:"ihybrid" "dk15") in
  check "plain after starved is computed fresh" true
    (plain.Serve.Protocol.origin = Some "computed");
  (* Whatever the starved ask produced (degraded success or budget
     error), the plain result must be the full-quality one. *)
  check "plain payload is the one-shot payload" true
    (plain.Serve.Protocol.payload = Some (oneshot_stdout "dk15" Harness.Driver.Ihybrid));
  ignore starved;
  Serve.Client.close c

let test_serve_report_parity () =
  with_server @@ fun path ->
  let c = must_connect path in
  let r =
    must_request c (Serve.Protocol.report_line (Serve.Protocol.Builtin "lion"))
  in
  check "report ok" true r.Serve.Protocol.ok;
  let expected =
    let tasks = Exec.Portfolio.tasks_for (Benchmarks.Suite.find "lion") in
    let rows = List.map (fun t -> Exec.Portfolio.run_task t) tasks in
    Serve.Render.report_table ~race:false ~num_machines:1 rows
  in
  check_str "report payload equals one-shot stdout" expected
    (Option.value r.Serve.Protocol.payload ~default:"");
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* Fuzzing the live wire: garbage, truncation, oversized lines,
   mid-request disconnects — typed errors or a clean close, never a
   crash or a hang. *)

let test_serve_wire_garbage () =
  with_server @@ fun path ->
  let c = must_connect path in
  List.iteri
    (fun i line ->
      match Serve.Client.request c line with
      | Ok r ->
          check (Printf.sprintf "garbage %d is a typed error" i) false r.Serve.Protocol.ok;
          check (Printf.sprintf "garbage %d has an exit code" i) true
            (r.Serve.Protocol.code > 0)
      | Error m -> Alcotest.failf "transport failure on garbage %d: %s" i m)
    [ ""; "{"; "[1,2"; "null"; "\"ping\""; "{\"verb\":\"nope\"}"; "\x00\x01\x02"; "}{" ];
  (* A slice of the random corpus, newline-stripped for framing. *)
  List.iteri
    (fun i line ->
      let line = String.map (fun ch -> if ch = '\n' then ' ' else ch) line in
      match Serve.Client.request c line with
      | Ok r -> check (Printf.sprintf "fuzz %d typed" i) false r.Serve.Protocol.ok
      | Error m -> Alcotest.failf "transport failure on fuzz line %d: %s" i m)
    (List.filteri (fun i _ -> i < 40) fuzz_lines);
  (* The server is still fully alive. *)
  let r = must_request c (Serve.Protocol.verb_line "ping") in
  check "ping after garbage" true r.Serve.Protocol.ok;
  Serve.Client.close c

let test_serve_wire_truncation_reassembly () =
  with_server @@ fun path ->
  let c = must_connect path in
  (* A request split across writes arrives intact... *)
  (match Serve.Client.send c "{\"verb\":\"pi" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "send: %s" m);
  Thread.delay 0.05;
  (match Serve.Client.request c "ng\"}" with
  | Ok r -> check "split request served" true r.Serve.Protocol.ok
  | Error m -> Alcotest.failf "split request: %s" m);
  Serve.Client.close c;
  (* ...and a connection dropped mid-request neither crashes nor wedges
     the server. *)
  let c = must_connect path in
  (match Serve.Client.send c "{\"verb\":\"encode\",\"machine\":\"li" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "send: %s" m);
  Serve.Client.close c;
  Thread.delay 0.05;
  let c = must_connect path in
  let r = must_request c (Serve.Protocol.verb_line "ping") in
  check "ping after mid-request disconnect" true r.Serve.Protocol.ok;
  Serve.Client.close c

let test_serve_wire_oversized_line () =
  with_server @@ fun path ->
  let c = must_connect path in
  let giant = String.make (Serve.Protocol.max_line_bytes + 16) 'a' in
  (match Serve.Client.request_raw c giant with
  | Ok line -> (
      match Serve.Protocol.parse_reply line with
      | Ok r ->
          check "oversized answered with a typed error" false r.Serve.Protocol.ok;
          check_int "oversized is an invalid request" 5 r.Serve.Protocol.code
      | Error m -> Alcotest.failf "oversized reply did not parse: %s" m)
  | Error m -> Alcotest.failf "oversized request transport failure: %s" m);
  (* Past an unframeable line the stream cannot resync: the server
     closes this connection — and keeps serving new ones. *)
  check "connection closed after oversized" true
    (match Serve.Client.request c (Serve.Protocol.verb_line "ping") with
    | Error _ -> true
    | Ok _ -> false);
  Serve.Client.close c;
  let c = must_connect path in
  let r = must_request c (Serve.Protocol.verb_line "ping") in
  check "fresh connection after oversized" true r.Serve.Protocol.ok;
  Serve.Client.close c

(* The serve chaos site: a seeded fault between parse and dispatch must
   surface as a typed code-7 response on exactly the scheduled request,
   with the daemon fully alive afterwards. *)
let test_serve_chaos_typed_crash () =
  with_server @@ fun path ->
  Fun.protect ~finally:Exec.Chaos.disable @@ fun () ->
  (match Exec.Chaos.configure ~seed:11 "serve:1" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "chaos spec: %s" m);
  let c = must_connect path in
  (* One fault among the site's first two invocations: exactly one of
     these two pings draws it. *)
  let r1 = must_request c (Serve.Protocol.verb_line "ping") in
  let r2 = must_request c (Serve.Protocol.verb_line "ping") in
  let crashed =
    List.filter (fun (r : Serve.Protocol.reply) -> not r.Serve.Protocol.ok) [ r1; r2 ]
  in
  check_int "exactly one injected crash" 1 (List.length crashed);
  check_int "crash is the typed exit-7 response" 7 (List.hd crashed).Serve.Protocol.code;
  Exec.Chaos.disable ();
  let r = must_request c (Serve.Protocol.verb_line "ping") in
  check "alive after the injected crash" true r.Serve.Protocol.ok;
  Serve.Client.close c

(* ------------------------------------------------------------------ *)
(* Coalescing: K concurrent identical requests, one computation *)

let instrument_counter name =
  match List.assoc_opt name (Instrument.counters ()) with Some n -> n | None -> 0

let test_inflight_unit () =
  let table = Exec.Inflight.create () in
  let gate = Mutex.create () in
  let k = 6 in
  let roles = Array.make k `Leader in
  let values = Array.make k 0 in
  Mutex.lock gate;
  let started = Atomic.make 0 in
  let ths =
    List.init k (fun i ->
        Thread.create
          (fun () ->
            Atomic.incr started;
            let v, role =
              Exec.Inflight.run table ~key:"shared" (fun () ->
                  (* Leader blocks until the main thread opens the gate,
                     so every other thread provably arrives in time. *)
                  Mutex.lock gate;
                  Mutex.unlock gate;
                  42)
            in
            roles.(i) <- role;
            values.(i) <- v)
          ())
  in
  while Atomic.get started < k || Exec.Inflight.inflight table = 0 do
    Thread.delay 0.005
  done;
  Thread.delay 0.05;
  Mutex.unlock gate;
  List.iter Thread.join ths;
  let leaders = Array.to_list roles |> List.filter (( = ) `Leader) |> List.length in
  check_int "exactly one leader" 1 leaders;
  Array.iter (fun v -> check_int "shared value" 42 v) values;
  check_int "table drains" 0 (Exec.Inflight.inflight table);
  (* A leader crash wakes every follower with the same exception and
     clears the slot for the next request. *)
  let raised = ref 0 in
  let ths =
    List.init 3 (fun _ ->
        Thread.create
          (fun () ->
            match Exec.Inflight.run table ~key:"boom" (fun () -> failwith "injected") with
            | _ -> ()
            | exception Failure _ -> incr raised)
          ())
  in
  List.iter Thread.join ths;
  check_int "every joiner observes the crash" 3 !raised;
  let v, role = Exec.Inflight.run table ~key:"boom" (fun () -> 7) in
  check "crash is not sticky" true (v = 7 && role = `Leader)

let test_serve_coalescing () =
  with_temp_dir @@ fun cache_dir ->
  let was_on = Instrument.enabled () in
  Instrument.enable ();
  Fun.protect ~finally:(fun () -> if not was_on then Instrument.disable ()) @@ fun () ->
  with_server ~tweak:(fun c ->
      { c with Serve.Server.cache = Some (Exec.Cache.open_dir cache_dir) })
  @@ fun path ->
  let base = Serve.Server.last_stats () in
  let i_computed0 = instrument_counter "serve.computed" in
  let i_coalesced0 = instrument_counter "serve.coalesced" in
  (* A blocker occupies the single compute slot (~0.5 s of real work),
     so the K identical requests provably overlap: their leader queues
     on the slot while the followers pile into the in-flight table. *)
  let blocker = ref None in
  let blocker_th =
    Thread.create
      (fun () ->
        let c = must_connect path in
        blocker := Some (must_request c (request_line ~algorithm:"ihybrid" "dk16"));
        Serve.Client.close c)
      ()
  in
  let rec await_blocker n =
    if n = 0 then Alcotest.fail "blocker request never arrived"
    else if (Serve.Server.last_stats ()).Serve.Server.requests <= base.Serve.Server.requests
    then begin
      Thread.delay 0.01;
      await_blocker (n - 1)
    end
  in
  await_blocker 200;
  Thread.delay 0.05;
  let k = 4 in
  let replies = Array.make k None in
  let ths =
    List.init k (fun i ->
        Thread.create
          (fun () ->
            let c = must_connect path in
            replies.(i) <- Some (must_request c (request_line ~algorithm:"ihybrid" "keyb"));
            Serve.Client.close c)
          ())
  in
  List.iter Thread.join ths;
  Thread.join blocker_th;
  let replies =
    Array.to_list replies
    |> List.map (function Some r -> r | None -> Alcotest.fail "missing reply")
  in
  List.iter (fun (r : Serve.Protocol.reply) -> check "coalesced ok" true r.Serve.Protocol.ok) replies;
  (* K byte-identical payloads... *)
  let payloads =
    List.map (fun (r : Serve.Protocol.reply) ->
        Option.value r.Serve.Protocol.payload ~default:"")
      replies
  in
  List.iter (fun p -> check_str "payload identical across clients" (List.hd payloads) p) payloads;
  check_str "and identical to the one-shot stdout"
    (oneshot_stdout "keyb" Harness.Driver.Ihybrid)
    (List.hd payloads);
  (* ...from exactly one computation. *)
  let origin o =
    List.length
      (List.filter (fun (r : Serve.Protocol.reply) -> r.Serve.Protocol.origin = Some o) replies)
  in
  check_int "one leader computed" 1 (origin "computed");
  check_int "the rest coalesced" (k - 1) (origin "coalesced");
  let s = Serve.Server.last_stats () in
  check_int "computations: blocker + leader" 2
    (s.Serve.Server.computed - base.Serve.Server.computed);
  check_int "coalesced counter" (k - 1) (s.Serve.Server.coalesced - base.Serve.Server.coalesced);
  check_int "no cache hit involved" 0 (s.Serve.Server.cache_hits - base.Serve.Server.cache_hits);
  (* The same story through the Instrument fabric. *)
  check_int "instrument serve.computed" 2 (instrument_counter "serve.computed" - i_computed0);
  check_int "instrument serve.coalesced" (k - 1)
    (instrument_counter "serve.coalesced" - i_coalesced0);
  match !blocker with
  | Some r -> check "blocker served" true r.Serve.Protocol.ok
  | None -> Alcotest.fail "blocker reply missing"

(* ------------------------------------------------------------------ *)
(* Observability: stats byte-compat, the metrics verb, the access log,
   and the flight recorder *)

(* The stats response may only ever APPEND keys: every pre-metrics
   field — names, order, values — is pinned here against last_stats,
   so an existing client parsing the object sees identical bytes. *)
let test_serve_stats_byte_compat () =
  with_server @@ fun path ->
  let c = must_connect path in
  ignore (must_request c (Serve.Protocol.verb_line "ping"));
  let r = must_request c (Serve.Protocol.verb_line "stats") in
  Serve.Client.close c;
  let s = Serve.Server.last_stats () in
  let fields =
    match r.Serve.Protocol.raw with
    | Json_min.Obj fields -> fields
    | _ -> Alcotest.fail "stats reply is not an object"
  in
  (* Key order: the legacy keys exactly as before, new keys strictly
     after them (no cache configured here, so no cache_* fields). *)
  let legacy =
    [
      "status"; "payload"; "proto"; "requests"; "served"; "errors"; "coalesced";
      "computed"; "inflight_peak"; "uptime_s";
    ]
  in
  check "legacy keys first, in order, then only appended keys" true
    (List.filteri (fun i _ -> i < List.length legacy) (List.map fst fields) = legacy);
  check "metrics key appended" true (List.mem_assoc "metrics" fields);
  check "quarantine key appended" true (List.mem_assoc "quarantine" fields);
  (* Legacy values still mean what they meant. *)
  let num k =
    match List.assoc_opt k fields with Some (Json_min.Num n) -> int_of_float n | _ -> -1
  in
  check_int "requests" s.Serve.Server.requests (num "requests");
  (* The stats response counts itself as served only after its own
     snapshot was taken. *)
  check_int "served" (s.Serve.Server.served - 1) (num "served");
  check_int "errors" s.Serve.Server.errors (num "errors");
  check_int "coalesced" s.Serve.Server.coalesced (num "coalesced");
  check_int "computed" s.Serve.Server.computed (num "computed");
  check_int "inflight_peak" s.Serve.Server.inflight_peak (num "inflight_peak");
  (* The human payload is rebuilt byte-identically from the counters. *)
  let expected_payload =
    Printf.sprintf
      "serve stats: %d requests, %d served, %d errors\n\
       coalesced %d, computed %d, cache hits %d, peak in-flight %d\n\
       cache: off\n"
      s.Serve.Server.requests (s.Serve.Server.served - 1) s.Serve.Server.errors
      s.Serve.Server.coalesced s.Serve.Server.computed s.Serve.Server.cache_hits
      s.Serve.Server.inflight_peak
  in
  check_str "stats payload byte-compatible" expected_payload
    (Option.value r.Serve.Protocol.payload ~default:"")

let test_serve_metrics_verb () =
  with_server @@ fun path ->
  let c = must_connect path in
  ignore (must_request c (request_line ~algorithm:"igreedy" "lion"));
  let r = must_request c (Serve.Protocol.verb_line "metrics") in
  Serve.Client.close c;
  check "metrics ok" true r.Serve.Protocol.ok;
  let text = Option.value r.Serve.Protocol.payload ~default:"" in
  (match Metrics.Expose.lint text with
  | Ok () -> ()
  | Error m -> Alcotest.failf "served exposition does not lint: %s" m);
  let doc = Option.get (Json_min.member "metrics" r.Serve.Protocol.raw) in
  let rows field =
    Option.value (Option.bind (Json_min.member field doc) Json_min.to_list) ~default:[]
  in
  let series_with name field =
    List.filter
      (fun row -> Option.bind (Json_min.member "name" row) Json_min.to_string = Some name)
      (rows field)
  in
  check "request counter present" true
    (series_with "nova_serve_requests_total" "counters" <> []);
  (* The encode above produced a per-tier latency series with quantiles. *)
  (* The registry is process-global, so earlier suites may have grown
     this series already — presence and positive quantiles are the
     invariant, not an absolute count. *)
  let tiered =
    List.filter
      (fun row ->
        match Json_min.member "labels" row with
        | Some labels ->
            Option.bind (Json_min.member "tier" labels) Json_min.to_string
              = Some "computed"
            && Option.bind (Json_min.member "verb" labels) Json_min.to_string
               = Some "encode"
        | None -> false)
      (series_with "nova_serve_request_seconds" "histograms")
  in
  (match tiered with
  | [ row ] ->
      let n k = Option.bind (Json_min.member k row) Json_min.to_float in
      check "computed tier counted" true
        (match n "count" with Some v -> v >= 1. | None -> false);
      List.iter
        (fun k -> check (k ^ " positive") true (match n k with Some v -> v > 0. | None -> false))
        [ "p50"; "p90"; "p99"; "sum" ]
  | rows -> Alcotest.failf "expected one computed-encode series, got %d" (List.length rows))

(* Every request line answered — good, bad, bare — is one access-log
   line; the 1:1 invariant is against the server's own request
   counter. *)
let test_serve_access_log () =
  with_temp_dir @@ fun dir ->
  let log = Filename.concat dir "access.jsonl" in
  with_server ~tweak:(fun c -> { c with Serve.Server.access_log = Some log }) (fun path ->
      let c = must_connect path in
      ignore (must_request c (request_line ~algorithm:"igreedy" "lion"));
      ignore (must_request c "{\"verb\":\"nope\"}");
      ignore (must_request c (Serve.Protocol.verb_line "stats"));
      Serve.Client.close c);
  let s = Serve.Server.last_stats () in
  let ic = open_in log in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_int "one line per request, shutdown included" s.Serve.Server.requests
    (List.length lines);
  let docs = List.map Json_min.of_string lines in
  let str k d = Option.bind (Json_min.member k d) Json_min.to_string in
  let encode_line_doc = List.find (fun d -> str "verb" d = Some "encode") docs in
  check "encode logged with machine" true (str "machine" encode_line_doc = Some "lion");
  check "encode logged with algorithm" true
    (str "algorithm" encode_line_doc = Some "igreedy");
  check "encode logged with tier" true (str "tier" encode_line_doc = Some "computed");
  check "encode logged ok" true
    (Json_min.member "ok" encode_line_doc = Some (Json_min.Bool true));
  check "spent is a number" true
    (match Option.bind (Json_min.member "spent" encode_line_doc) Json_min.to_float with
    | Some v -> v >= 0.
    | None -> false);
  let invalid = List.find (fun d -> str "verb" d = Some "invalid") docs in
  check "bad request logged as invalid with its exit code" true
    (Option.bind (Json_min.member "code" invalid) Json_min.to_float = Some 5.);
  (* Request ids are unique and monotone. *)
  let ids =
    List.filter_map (fun d -> Option.bind (Json_min.member "id" d) Json_min.to_float) docs
  in
  check "ids monotone" true (List.sort_uniq compare ids = ids)

(* A chaos-crashed request must be recoverable from the flight
   recorder: the ring keeps its verb and exit code 7, through the
   flightrec verb and the shutdown dump alike. *)
let test_serve_flight_recorder () =
  with_temp_dir @@ fun dir ->
  let dump = Filename.concat dir "flight.json" in
  with_server ~tweak:(fun c ->
      { c with Serve.Server.flight_record = Some dump; flight_capacity = 8 })
    (fun path ->
      Fun.protect ~finally:Exec.Chaos.disable @@ fun () ->
      (match Exec.Chaos.configure ~seed:11 "serve:1" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "chaos spec: %s" m);
      let c = must_connect path in
      let r1 = must_request c (Serve.Protocol.verb_line "ping") in
      let r2 = must_request c (Serve.Protocol.verb_line "ping") in
      check_int "one injected crash" 1
        (List.length
           (List.filter (fun (r : Serve.Protocol.reply) -> not r.Serve.Protocol.ok) [ r1; r2 ]));
      Exec.Chaos.disable ();
      let r = must_request c (Serve.Protocol.verb_line "flightrec") in
      check "flightrec ok" true r.Serve.Protocol.ok;
      let doc = Json_min.of_string (Option.value r.Serve.Protocol.payload ~default:"null") in
      check "flightrec schema" true
        (Option.bind (Json_min.member "schema" doc) Json_min.to_string
        = Some "nova-flightrec/v1");
      let entries =
        Option.value (Option.bind (Json_min.member "entries" doc) Json_min.to_list)
          ~default:[]
      in
      let crashed =
        List.filter
          (fun e -> Option.bind (Json_min.member "code" e) Json_min.to_float = Some 7.)
          entries
      in
      check_int "the crashed ping is in the ring" 1 (List.length crashed);
      check "crash recorded as a ping" true
        (Option.bind (Json_min.member "verb" (List.hd crashed)) Json_min.to_string
        = Some "ping");
      (* The flightrec request refreshed the on-disk artifact too. *)
      check "flight-record artifact written" true (Sys.file_exists dump);
      Serve.Client.close c);
  (* Shutdown rewrote the artifact with its own reason, and the crash
     is still recoverable from disk. *)
  let doc = Json_min.of_file dump in
  check "shutdown dump reason" true
    (Option.bind (Json_min.member "reason" doc) Json_min.to_string = Some "shutdown");
  let entries =
    Option.value (Option.bind (Json_min.member "entries" doc) Json_min.to_list) ~default:[]
  in
  check "crash recoverable from the shutdown dump" true
    (List.exists
       (fun e -> Option.bind (Json_min.member "code" e) Json_min.to_float = Some 7.)
       entries)

(* ------------------------------------------------------------------ *)
(* Lifecycle: stale sockets, live refusal, shutdown sweep *)

let test_serve_stale_socket_replaced () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "s.sock" in
  (* A leftover socket file nothing listens on must not block startup —
     with_server's clean-shutdown checks prove the rebind worked. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.close fd;
  check "stale socket file present" true (Sys.file_exists path);
  let config =
    { (Serve.Server.default_config ~socket_path:path) with Serve.Server.quiet = true }
  in
  let result = ref (Error (Nova_error.Invalid_request "never ran")) in
  let th = Thread.create (fun () -> result := Serve.Server.run config) () in
  let rec await n =
    if n = 0 then Alcotest.fail "server did not replace the stale socket"
    else
      match Serve.Client.connect path with
      | Ok c -> c
      | Error _ ->
          Thread.delay 0.02;
          await (n - 1)
  in
  let c = await 250 in
  (* A second server pointed at the live socket must refuse. *)
  check "live socket refused" true
    (match Serve.Server.run config with
    | Error (Nova_error.Invalid_request _) -> true
    | Ok () | Error _ -> false);
  ignore (Serve.Client.request c (Serve.Protocol.verb_line "shutdown"));
  Serve.Client.close c;
  Thread.join th;
  check "clean shutdown" true (!result = Ok ());
  check "socket removed" false (Sys.file_exists path)

(* A stale writer temp file of this very process (the exact signature
   sweep_own_tmp hunts) planted before the run: shutdown must remove
   it without touching foreign processes' files. The check runs after
   [with_server] returns — shutdown has happened by then. *)
let test_serve_shutdown_sweep () =
  with_temp_dir @@ fun cache_dir ->
  let own =
    Filename.concat cache_dir
      (Printf.sprintf "deadbeef.nova-cache.tmp.%d.0" (Unix.getpid ()))
  in
  let foreign = Filename.concat cache_dir "cafe.nova-cache.tmp.999999.0" in
  List.iter
    (fun p ->
      let oc = open_out p in
      output_string oc "partial";
      close_out oc)
    [ own; foreign ];
  with_server ~tweak:(fun c ->
      { c with Serve.Server.cache = Some (Exec.Cache.open_dir cache_dir) })
    (fun _path -> ());
  check "own stale tmp swept at shutdown" false (Sys.file_exists own);
  check "foreign tmp untouched" true (Sys.file_exists foreign)

(* ------------------------------------------------------------------ *)
(* Two processes, one cache directory: serve_racer.exe runs a second
   daemon against the same cache while this one serves — the on-disk
   lock protocol must keep both payloads byte-identical and the
   directory structurally clean. *)

let test_serve_two_process_shared_cache () =
  with_temp_dir @@ fun cache_dir ->
  with_temp_dir @@ fun sock_dir ->
  let racer = Filename.concat (Filename.dirname Sys.executable_name) "serve_racer.exe" in
  check "racer helper built" true (Sys.file_exists racer);
  let spawn i =
    let out = Filename.concat sock_dir (Printf.sprintf "racer%d.out" i) in
    let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    let pid =
      Unix.create_process racer
        [|
          racer;
          Filename.concat sock_dir (Printf.sprintf "racer%d.sock" i);
          cache_dir; "keyb";
        |]
        Unix.stdin fd Unix.stderr
    in
    Unix.close fd;
    (pid, out)
  in
  let a = spawn 0 and b = spawn 1 in
  let digest_of (pid, out) =
    let _, status = Unix.waitpid [] pid in
    check "racer exited cleanly" true (status = Unix.WEXITED 0);
    let ic = open_in out in
    let d = input_line ic in
    close_in ic;
    d
  in
  let da = digest_of a and db = digest_of b in
  check_str "both daemons served the identical payload" da db;
  (* The shared directory survived the concurrent stores. *)
  let r = Exec.Cache.fsck (Exec.Cache.open_dir cache_dir) in
  check "cache structurally clean after the race" true
    (r.Exec.Cache.valid = r.Exec.Cache.scanned && r.Exec.Cache.scanned >= 1)

let suite =
  [
    Alcotest.test_case "protocol: verb lines" `Quick test_protocol_verbs;
    Alcotest.test_case "protocol: encode round-trip" `Quick test_protocol_encode_roundtrip;
    Alcotest.test_case "protocol: kiss2 report round-trip" `Quick test_protocol_kiss2_and_report;
    Alcotest.test_case "protocol: typed errors" `Quick test_protocol_errors_typed;
    Alcotest.test_case "protocol: fuzz never raises" `Quick test_protocol_fuzz_never_raises;
    Alcotest.test_case "protocol: reply round-trip" `Quick test_protocol_reply_roundtrip;
    Alcotest.test_case "serve: ping and stats" `Quick test_serve_ping_and_stats;
    Alcotest.test_case "serve: payload byte-identical to one-shot" `Quick
      test_serve_payload_byte_identical;
    Alcotest.test_case "serve: warm requests hit the cache" `Quick test_serve_warm_hits_cache;
    Alcotest.test_case "serve: constrained requests are individual" `Quick
      test_serve_constrained_is_individual;
    Alcotest.test_case "serve: report parity" `Slow test_serve_report_parity;
    Alcotest.test_case "serve: wire garbage" `Quick test_serve_wire_garbage;
    Alcotest.test_case "serve: truncation and disconnect" `Quick
      test_serve_wire_truncation_reassembly;
    Alcotest.test_case "serve: oversized line" `Quick test_serve_wire_oversized_line;
    Alcotest.test_case "serve: chaos site answers typed" `Quick test_serve_chaos_typed_crash;
    Alcotest.test_case "serve: stats keys byte-compatible" `Quick test_serve_stats_byte_compat;
    Alcotest.test_case "serve: metrics verb lints and carries tiers" `Quick
      test_serve_metrics_verb;
    Alcotest.test_case "serve: access log is 1:1 with requests" `Quick test_serve_access_log;
    Alcotest.test_case "serve: flight recorder keeps the crash" `Quick
      test_serve_flight_recorder;
    Alcotest.test_case "inflight: one leader, shared result" `Quick test_inflight_unit;
    Alcotest.test_case "serve: K clients coalesce to one computation" `Slow
      test_serve_coalescing;
    Alcotest.test_case "serve: stale socket replaced, live refused" `Quick
      test_serve_stale_socket_replaced;
    Alcotest.test_case "serve: shutdown sweeps own cache tmp" `Quick test_serve_shutdown_sweep;
    Alcotest.test_case "serve: two processes share one cache" `Slow
      test_serve_two_process_shared_cache;
  ]
