(* Tests for the staged encoding pipeline: the unified budget, the
   fallback ladder with its degradation records, the KISS2 parser's
   located errors, and a differential pin that an unlimited budget
   reproduces the pre-pipeline driver's encodings exactly. *)

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Budget *)

let test_tick_semantics () =
  (* [tick] charges first, then trips once the counter exceeds the cap
     (the historical Embed idiom): a cap of 5 admits exactly 5 ticks. *)
  let b = Budget.create ~max_work:5 () in
  for i = 1 to 5 do
    check (Printf.sprintf "tick %d admitted" i) true (Budget.tick b)
  done;
  check "tick 6 trips" false (Budget.tick b);
  check "reason is work" true (Budget.reason b = Some Budget.Work);
  check "spent counts every charge" true (Budget.spent b >= 5)

let test_exhausted_pre_checks () =
  (* [exhausted] trips as soon as the counter reaches the cap (the
     historical iexact loop-guard idiom), without charging work. *)
  let b = Budget.create ~max_work:2 () in
  check "fresh budget not exhausted" false (Budget.exhausted b);
  ignore (Budget.tick b);
  check "under cap" false (Budget.exhausted b);
  ignore (Budget.tick b);
  check "at cap" true (Budget.exhausted b);
  let spent = Budget.spent b in
  ignore (Budget.exhausted b);
  check "exhausted charges nothing" true (Budget.spent b = spent)

let test_sub_trips_on_parent () =
  let parent = Budget.create ~max_work:3 () in
  let child = Budget.sub parent in
  check "child tick 1" true (Budget.tick child);
  check "child tick 2" true (Budget.tick child);
  check "child tick 3" true (Budget.tick child);
  check "parent cap stops the child" false (Budget.tick child);
  check "parent spent includes child work" true (Budget.spent parent >= 3);
  let capped = Budget.sub ~max_work:1 (Budget.create ()) in
  check "own cap also applies" true (Budget.tick capped && not (Budget.tick capped))

let test_deadline_and_cancel () =
  let d = Budget.create ~deadline_ms:0.0 () in
  check "elapsed deadline exhausts" true (Budget.exhausted d);
  check "deadline reason" true (Budget.reason d = Some Budget.Deadline);
  let c = Budget.create ~cancel:(fun () -> true) () in
  check "cancellation exhausts" true (Budget.exhausted c);
  check "cancel reason" true (Budget.reason c = Some Budget.Cancelled);
  check "unlimited never exhausts" false (Budget.exhausted Budget.unlimited)

(* ------------------------------------------------------------------ *)
(* Fallback ladder *)

let test_ladder_degrades_and_records () =
  let m = Benchmarks.Suite.find "lion" in
  (* A 10-unit budget drains inside the constraint minimization, leaving
     real constraints that iexact cannot satisfy before its own guard
     trips — the ladder must descend and say where it landed. *)
  let budget = Budget.create ~max_work:10 () in
  match Harness.Driver.encode ~budget m Harness.Driver.Iexact with
  | Error e -> Alcotest.failf "ladder should not fail: %s" (Nova_error.to_string e)
  | Ok o ->
      check "fallback rung produced it" true
        (o.Harness.Driver.produced_by <> Harness.Driver.Rung_iexact);
      check "degradations recorded" true (o.Harness.Driver.degradations <> []);
      check "codes are still injective" true
        (List.length (Encoding.used_codes o.Harness.Driver.encoding)
        = Fsm.num_states ~m)

let test_no_fallback_reports_error () =
  (* The documented wart is fixed: an exhausted [Iexact] returns a typed
     error instead of raising [Failure]. *)
  let m = Benchmarks.Suite.find "lion" in
  let budget = Budget.create ~max_work:10 () in
  match Harness.Driver.encode ~budget ~fallback:false m Harness.Driver.Iexact with
  | Ok _ -> Alcotest.fail "a 10-unit budget must exhaust iexact"
  | Error (Nova_error.Budget_exhausted { stage = Nova_error.Iexact; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Nova_error.to_string e)

let test_igreedy_never_fails () =
  let m = Benchmarks.Suite.find "modulo12" in
  let budget = Budget.create ~max_work:0 () in
  match Harness.Driver.encode ~budget m Harness.Driver.Igreedy with
  | Error e -> Alcotest.failf "igreedy must not fail: %s" (Nova_error.to_string e)
  | Ok o ->
      check "igreedy injective under a drained budget" true
        (List.length (Encoding.used_codes o.Harness.Driver.encoding)
        = Fsm.num_states ~m)

let test_deadline_terminates_promptly () =
  let m =
    Benchmarks.Generator.generate ~name:"gen_deadline" ~num_inputs:6 ~num_outputs:6
      ~num_states:40 ~num_rows:200 ~seed:4242
  in
  let t0 = Unix.gettimeofday () in
  let budget = Budget.create ~deadline_ms:50.0 () in
  (match Harness.Driver.report ~budget m Harness.Driver.Iexact with
  | Error e -> Alcotest.failf "deadline run must still succeed: %s" (Nova_error.to_string e)
  | Ok (_, r) -> check "degraded run still yields a cover" true (r.Encoded.num_cubes > 0));
  let wall = Unix.gettimeofday () -. t0 in
  check (Printf.sprintf "terminates promptly (%.3fs)" wall) true (wall < 2.0)

(* ------------------------------------------------------------------ *)
(* Differential pin: under the default unlimited budget the pipeline
   reproduces the seed driver's encodings and areas bit for bit. *)

let pins =
  (* (machine, [(algorithm, nbits, codes, num_cubes, area)]) measured on
     the pre-pipeline seed driver. *)
  let open Harness.Driver in
  [
    ( "lion",
      [
        (Ihybrid, 2, [| 0; 1; 3; 2 |], 5, 55);
        (Igreedy, 2, [| 0; 1; 3; 2 |], 5, 55);
        (Iohybrid, 2, [| 0; 1; 3; 2 |], 5, 55);
        (Iovariant, 2, [| 0; 1; 3; 2 |], 5, 55);
        (Iexact, 3, [| 0; 2; 1; 4 |], 6, 84);
        (Kiss, 4, [| 12; 5; 15; 10 |], 7, 119);
        (Mustang (Baselines.Fanout, true), 2, [| 0; 1; 3; 2 |], 5, 55);
        (Mustang (Baselines.Fanin, true), 2, [| 3; 0; 1; 2 |], 7, 77);
        (One_hot, 4, [| 1; 2; 4; 8 |], 8, 136);
        (Random 0, 2, [| 2; 0; 3; 1 |], 7, 77);
      ] );
    ( "bbtas",
      [
        (Ihybrid, 3, [| 0; 1; 4; 5; 2; 3 |], 14, 210);
        (Igreedy, 3, [| 0; 1; 4; 5; 2; 3 |], 14, 210);
        (Iohybrid, 3, [| 0; 3; 1; 7; 5; 2 |], 14, 210);
        (Iovariant, 3, [| 0; 3; 1; 7; 5; 2 |], 14, 210);
        (Iexact, 3, [| 0; 1; 4; 5; 2; 3 |], 14, 210);
        (Kiss, 3, [| 0; 1; 4; 5; 2; 3 |], 14, 210);
        (Mustang (Baselines.Fanout, true), 3, [| 0; 1; 2; 3; 4; 5 |], 14, 210);
        (Mustang (Baselines.Fanin, true), 3, [| 0; 1; 2; 3; 4; 5 |], 14, 210);
        (One_hot, 6, [| 1; 2; 4; 8; 16; 32 |], 19, 456);
        (Random 0, 3, [| 6; 0; 7; 4; 2; 5 |], 14, 210);
      ] );
    ( "shiftreg",
      [
        (Ihybrid, 3, [| 0; 2; 4; 6; 1; 3; 5; 7 |], 4, 48);
        (Igreedy, 3, [| 0; 2; 4; 6; 1; 3; 5; 7 |], 4, 48);
        (Iohybrid, 3, [| 0; 2; 4; 6; 1; 3; 5; 7 |], 4, 48);
        (Iovariant, 3, [| 0; 2; 4; 6; 1; 3; 5; 7 |], 4, 48);
        (Iexact, 3, [| 0; 2; 4; 6; 1; 3; 5; 7 |], 4, 48);
        (Kiss, 3, [| 0; 2; 4; 6; 1; 3; 5; 7 |], 4, 48);
        (Mustang (Baselines.Fanout, true), 3, [| 1; 3; 5; 7; 0; 2; 4; 6 |], 4, 48);
        (Mustang (Baselines.Fanin, true), 3, [| 0; 1; 2; 3; 4; 5; 6; 7 |], 4, 48);
        (One_hot, 8, [| 1; 2; 4; 8; 16; 32; 64; 128 |], 16, 432);
        (Random 0, 3, [| 6; 0; 7; 4; 2; 5; 3; 1 |], 9, 108);
      ] );
    ( "modulo12",
      [
        (Ihybrid, 4, [| 8; 10; 7; 9; 3; 11; 6; 1; 12; 2; 15; 13 |], 17, 255);
        (Igreedy, 4, [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 |], 14, 210);
        (Iohybrid, 4, [| 4; 0; 5; 1; 11; 3; 6; 7; 8; 15; 9; 2 |], 16, 240);
        (Iovariant, 4, [| 4; 0; 5; 1; 11; 3; 6; 7; 8; 15; 9; 2 |], 16, 240);
        (Iexact, 4, [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 |], 14, 210);
        (Kiss, 4, [| 8; 10; 7; 9; 3; 11; 6; 1; 12; 2; 15; 13 |], 17, 255);
        (Mustang (Baselines.Fanout, true), 4, [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 |], 14, 210);
        (Mustang (Baselines.Fanin, true), 4, [| 0; 1; 3; 2; 6; 4; 5; 7; 15; 11; 9; 8 |], 14, 210);
        (One_hot, 12, [| 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048 |], 24, 936);
        (Random 0, 4, [| 14; 0; 7; 8; 4; 6; 10; 13; 2; 3; 5; 9 |], 17, 255);
      ] );
  ]

let test_unlimited_budget_matches_seed () =
  List.iter
    (fun (nm, rows) ->
      let m = Benchmarks.Suite.find nm in
      List.iter
        (fun (algo, nbits, codes, num_cubes, area) ->
          let label = nm ^ "/" ^ Harness.Driver.name algo in
          match Harness.Driver.report m algo with
          | Error e -> Alcotest.failf "%s: %s" label (Nova_error.to_string e)
          | Ok (o, r) ->
              let e = o.Harness.Driver.encoding in
              check (label ^ " primary rung") true (o.Harness.Driver.degradations = []);
              Alcotest.(check int) (label ^ " nbits") nbits e.Encoding.nbits;
              Alcotest.(check (array int)) (label ^ " codes") codes e.Encoding.codes;
              Alcotest.(check int) (label ^ " cubes") num_cubes r.Encoded.num_cubes;
              Alcotest.(check int) (label ^ " area") area r.Encoded.area)
        rows)
    pins

(* ------------------------------------------------------------------ *)
(* KISS2 parser: located, typed errors on malformed input *)

let lion_text = Kiss.to_string (Benchmarks.Suite.find "lion")

let expect_error ~what text pred =
  match Kiss.parse_result ~name:"t" ~file:"t.kiss2" text with
  | Ok _ -> Alcotest.failf "%s: parse unexpectedly succeeded" what
  | Error e ->
      if not (pred e) then
        Alcotest.failf "%s: wrong error %s" what (Kiss.error_to_string e)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec loop i = i + n <= h && (String.sub hay i n = needle || loop (i + 1)) in
  loop 0

let test_parse_roundtrip_ok () =
  match Kiss.parse_result ~name:"lion" lion_text with
  | Ok m -> Alcotest.(check int) "states survive" 4 (Array.length m.Fsm.states)
  | Error e -> Alcotest.failf "valid text rejected: %s" (Kiss.error_to_string e)

let test_truncated_directive () =
  expect_error ~what:"truncated header" ".i\n.o 1\n.p 1\n.s 1\n0 a a 0\n.e\n"
    (fun e ->
      e.Kiss.line = 1 && e.Kiss.col = 1 && contains e.Kiss.msg "truncated .i");
  expect_error ~what:"truncated .r" ".i 1\n.o 1\n  .r\n0 a a 0\n.e\n" (fun e ->
      e.Kiss.line = 3 && e.Kiss.col = 3 && contains e.Kiss.msg "truncated .r")

let test_bad_arity_row () =
  expect_error ~what:"three-field row" ".i 2\n.o 1\n01 st0 st1\n.e\n" (fun e ->
      e.Kiss.line = 3 && contains e.Kiss.msg "expected 4 fields" && contains e.Kiss.msg "got 3")

let test_duplicate_reset () =
  expect_error ~what:"duplicate .r" ".i 1\n.o 1\n.r a\n.r b\n0 a a 0\n.e\n" (fun e ->
      e.Kiss.line = 4 && contains e.Kiss.msg "duplicate .r")

let test_count_mismatches () =
  expect_error ~what:".p mismatch" ".i 1\n.o 1\n.p 2\n0 a a 0\n.e\n" (fun e ->
      contains e.Kiss.msg ".p declares 2");
  expect_error ~what:"unknown reset" ".i 1\n.o 1\n.r ghost\n0 a a 0\n.e\n" (fun e ->
      contains e.Kiss.msg "ghost");
  expect_error ~what:"missing .i" ".o 1\n0 a a 0\n.e\n" (fun e ->
      e.Kiss.line = 0 && contains e.Kiss.msg "missing .i");
  expect_error ~what:"error renders as file:line:col" ".i\n" (fun e ->
      contains (Kiss.error_to_string e) "t.kiss2:1:1:")

let suite =
  [
    Alcotest.test_case "budget tick semantics" `Quick test_tick_semantics;
    Alcotest.test_case "budget exhausted pre-checks" `Quick test_exhausted_pre_checks;
    Alcotest.test_case "sub-budget trips on parent" `Quick test_sub_trips_on_parent;
    Alcotest.test_case "deadline and cancellation" `Quick test_deadline_and_cancel;
    Alcotest.test_case "ladder degrades and records rungs" `Quick test_ladder_degrades_and_records;
    Alcotest.test_case "no-fallback returns a typed error" `Quick test_no_fallback_reports_error;
    Alcotest.test_case "igreedy never fails" `Quick test_igreedy_never_fails;
    Alcotest.test_case "deadline terminates promptly" `Slow test_deadline_terminates_promptly;
    Alcotest.test_case "unlimited budget matches the seed encodings" `Slow
      test_unlimited_budget_matches_seed;
    Alcotest.test_case "kiss roundtrip still parses" `Quick test_parse_roundtrip_ok;
    Alcotest.test_case "kiss truncated directive located" `Quick test_truncated_directive;
    Alcotest.test_case "kiss bad row arity located" `Quick test_bad_arity_row;
    Alcotest.test_case "kiss duplicate reset located" `Quick test_duplicate_reset;
    Alcotest.test_case "kiss count mismatches reported" `Quick test_count_mismatches;
  ]
