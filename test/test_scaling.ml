(* Tests for the scaling-curve bench harness (lib/scaling): the
   complexity fitter must recover known model classes and exponents from
   seeded noisy synthetic series and refuse degenerate ones with a typed
   inconclusive; the measurement layer's MAD filter must reject isolated
   outliers in either direction; the graded generator must be
   byte-deterministic per seed with distinct content addresses per grid
   size; and the emitted artifact must parse, self-diff clean, and carry
   the complexity-gate metrics exactly when a fit exists. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fit: recovery of known complexity classes under seeded noise *)

let shape_of model n =
  match model with
  | Scaling.Fit.Linear -> n
  | Scaling.Fit.N_log_n -> n *. (log n /. log 2.)
  | Scaling.Fit.Quadratic -> n ** 2.
  | Scaling.Fit.Cubic -> n ** 3.
  | Scaling.Fit.Exponential -> 2. ** n

let sizes = List.map float_of_int [ 8; 16; 32; 64; 128; 256; 512 ]

(* c * shape(n) with seeded multiplicative noise: t = c*f(n)*exp(eps),
   eps uniform in +-0.05 — the regime the log-space fitter is built for. *)
let noisy_series ~seed ~coeff model =
  let rng = Random.State.make [| seed; Scaling.Fit.model_order model |] in
  List.map
    (fun n ->
      let eps = (Random.State.float rng 0.1) -. 0.05 in
      (n, coeff *. shape_of model n *. exp eps))
    sizes

let fitted = function
  | Scaling.Fit.Fitted f -> f
  | Scaling.Fit.Inconclusive why ->
      Alcotest.failf "expected a fit, got inconclusive: %s"
        (Scaling.Fit.inconclusive_reason why)

let recover_case model expected_exponent () =
  List.iter
    (fun seed ->
      let f = fitted (Scaling.Fit.fit (noisy_series ~seed ~coeff:3.7e-6 model)) in
      if f.Scaling.Fit.model <> model then
        Alcotest.failf "seed %d: fitted %s, wanted %s" seed
          (Scaling.Fit.model_name f.Scaling.Fit.model)
          (Scaling.Fit.model_name model);
      let d = Float.abs (f.Scaling.Fit.exponent -. expected_exponent) in
      if d > 0.2 then
        Alcotest.failf "seed %d: exponent %.3f, wanted %.3f +- 0.2" seed
          f.Scaling.Fit.exponent expected_exponent;
      check (Printf.sprintf "seed %d: good fit" seed) true (f.Scaling.Fit.r2 > 0.95))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_fit_recovers_linear = recover_case Scaling.Fit.Linear 1.0
let test_fit_recovers_quadratic = recover_case Scaling.Fit.Quadratic 2.0
let test_fit_recovers_cubic = recover_case Scaling.Fit.Cubic 3.0

(* n log n sits between linear and quadratic; its free power-law slope
   on this grid is ~1.1-1.3, and the class must still be told apart from
   both neighbours. *)
let test_fit_recovers_nlogn () =
  List.iter
    (fun seed ->
      let f = fitted (Scaling.Fit.fit (noisy_series ~seed ~coeff:5e-7 Scaling.Fit.N_log_n)) in
      if f.Scaling.Fit.model <> Scaling.Fit.N_log_n then
        Alcotest.failf "seed %d: fitted %s, wanted nlogn" seed
          (Scaling.Fit.model_name f.Scaling.Fit.model);
      check "exponent between linear and quadratic" true
        (f.Scaling.Fit.exponent > 1.0 && f.Scaling.Fit.exponent < 1.5))
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

(* For the exponential winner the reported exponent is the base-2 rate:
   c * 2^n must come back as rate 1. *)
let test_fit_recovers_exponential () =
  List.iter
    (fun seed ->
      let f =
        fitted (Scaling.Fit.fit (noisy_series ~seed ~coeff:1e-9 Scaling.Fit.Exponential))
      in
      if f.Scaling.Fit.model <> Scaling.Fit.Exponential then
        Alcotest.failf "seed %d: fitted %s, wanted exponential" seed
          (Scaling.Fit.model_name f.Scaling.Fit.model);
      let d = Float.abs (f.Scaling.Fit.exponent -. 1.0) in
      if d > 0.05 then Alcotest.failf "seed %d: rate %.4f, wanted 1" seed f.Scaling.Fit.exponent)
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

(* Exact noiseless series: the true model has zero residual and a
   perfect R². *)
let test_fit_exact_series () =
  List.iter
    (fun model ->
      let pts = List.map (fun n -> (n, 2e-5 *. shape_of model n)) sizes in
      let f = fitted (Scaling.Fit.fit pts) in
      check_str "exact class" (Scaling.Fit.model_name model)
        (Scaling.Fit.model_name f.Scaling.Fit.model);
      checkf "zero residual" 0. f.Scaling.Fit.residual;
      checkf "perfect r2" 1. f.Scaling.Fit.r2;
      check "coefficient recovered" true
        (Float.abs ((f.Scaling.Fit.coeff /. 2e-5) -. 1.) < 1e-6))
    [ Scaling.Fit.Linear; Scaling.Fit.N_log_n; Scaling.Fit.Quadratic; Scaling.Fit.Cubic;
      Scaling.Fit.Exponential ]

(* ------------------------------------------------------------------ *)
(* Fit: degenerate inputs come back typed-inconclusive, never bogus *)

let inconclusive_of = function
  | Scaling.Fit.Inconclusive why -> why
  | Scaling.Fit.Fitted f ->
      Alcotest.failf "expected inconclusive, got a %s fit"
        (Scaling.Fit.model_name f.Scaling.Fit.model)

let test_fit_too_few_points () =
  match inconclusive_of (Scaling.Fit.fit [ (8., 1e-3); (16., 2e-3); (32., 4e-3) ]) with
  | Scaling.Fit.Too_few_points 3 -> ()
  | why -> Alcotest.failf "wrong reason: %s" (Scaling.Fit.inconclusive_reason why)

let test_fit_constant_series () =
  match
    inconclusive_of (Scaling.Fit.fit [ (8., 1e-3); (16., 1e-3); (32., 1e-3); (64., 1e-3) ])
  with
  | Scaling.Fit.Constant_series -> ()
  | why -> Alcotest.failf "wrong reason: %s" (Scaling.Fit.inconclusive_reason why)

let test_fit_non_positive_time () =
  match
    inconclusive_of (Scaling.Fit.fit [ (8., 1e-3); (16., 0.); (32., 4e-3); (64., 8e-3) ])
  with
  | Scaling.Fit.Non_positive_time -> ()
  | why -> Alcotest.failf "wrong reason: %s" (Scaling.Fit.inconclusive_reason why)

let test_fit_degenerate_sizes () =
  (match
     inconclusive_of (Scaling.Fit.fit [ (8., 1e-3); (8., 2e-3); (8., 3e-3); (8., 4e-3) ])
   with
  | Scaling.Fit.Degenerate_sizes -> ()
  | why -> Alcotest.failf "same-size grid: %s" (Scaling.Fit.inconclusive_reason why));
  match
    inconclusive_of (Scaling.Fit.fit [ (1., 1e-3); (16., 2e-3); (32., 4e-3); (64., 8e-3) ])
  with
  | Scaling.Fit.Degenerate_sizes -> ()
  | why -> Alcotest.failf "size below 2: %s" (Scaling.Fit.inconclusive_reason why)

(* ------------------------------------------------------------------ *)
(* Measure: MAD outlier rejection and min-of-kept *)

let test_measure_median_mad () =
  checkf "odd median" 2. (Scaling.Measure.median [ 3.; 1.; 2. ]);
  checkf "even median" 2.5 (Scaling.Measure.median [ 4.; 1.; 2.; 3. ]);
  checkf "mad of symmetric spread" 1. (Scaling.Measure.mad [ 1.; 2.; 3.; 4.; 5. ])

let test_measure_rejects_high_outlier () =
  let kept = Scaling.Measure.mad_filter [ 10.; 11.; 10.5; 9.5; 1000. ] in
  check "slow outlier dropped" false (List.mem 1000. kept);
  check_int "others kept" 4 (List.length kept)

(* An absurdly *fast* run (clock glitch) must not survive to become the
   min either. *)
let test_measure_rejects_low_outlier () =
  let kept = Scaling.Measure.mad_filter [ 0.1; 10.; 11.; 10.5; 9.5 ] in
  check "fast outlier dropped" false (List.mem 0.1 kept);
  checkf "min of kept is the honest minimum" 9.5 (List.fold_left Float.min infinity kept)

let test_measure_zero_mad_keeps_all () =
  (* At least half the runs identical: MAD is 0, nothing is
     distinguishable, everything survives. *)
  let runs = [ 10.; 10.; 10.; 10.; 1000. ] in
  check_int "all kept under zero MAD" 5 (List.length (Scaling.Measure.mad_filter runs))

let test_measure_sample () =
  let calls = ref 0 in
  let s = Scaling.Measure.sample ~warmup:2 ~reps:4 ~size:33 (fun () -> incr calls) in
  check_int "warmup + reps calls" 6 !calls;
  check_int "size recorded" 33 s.Scaling.Measure.size;
  check_int "all reps recorded" 4 (List.length s.Scaling.Measure.runs_s);
  check "kept is a subset" true
    (List.for_all (fun k -> List.mem k s.Scaling.Measure.runs_s) s.Scaling.Measure.kept_s);
  check "time is the min of kept" true
    (List.for_all (fun k -> s.Scaling.Measure.time_s <= k) s.Scaling.Measure.kept_s);
  (match Scaling.Measure.sample ~reps:0 ~size:1 ignore with
  | _ -> Alcotest.fail "reps=0 must raise"
  | exception Invalid_argument _ -> ());
  match Scaling.Measure.sample ~warmup:(-1) ~size:1 ignore with
  | _ -> Alcotest.fail "negative warmup must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Grid: determinism and content addressing *)

let test_grid_deterministic_text () =
  let f = Scaling.Grid.default in
  List.iter
    (fun size ->
      let a = Scaling.Grid.kiss_text f size and b = Scaling.Grid.kiss_text f size in
      check_str (Printf.sprintf "size %d byte-identical across calls" size) a b)
    (Scaling.Grid.sizes ~quick:true)

let test_grid_distinct_content_keys () =
  let f = Scaling.Grid.default in
  let keys = List.map (Scaling.Grid.content_key f) (Scaling.Grid.sizes ~quick:true) in
  check_int "every grid size has a distinct content address"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  (* And the key is stable: the cache can rely on it across runs. *)
  check_str "key stable across calls" (List.hd keys)
    (Scaling.Grid.content_key f (List.hd (Scaling.Grid.sizes ~quick:true)))

let test_grid_seed_sensitivity () =
  let f = Scaling.Grid.default in
  let g = { f with Scaling.Grid.seed = f.Scaling.Grid.seed + 1 } in
  check "different seed, different machine" false
    (Scaling.Grid.kiss_text f 32 = Scaling.Grid.kiss_text g 32)

let test_grid_machine_shape () =
  let f = Scaling.Grid.default in
  List.iter
    (fun size ->
      let m = Scaling.Grid.machine f size in
      check_int (Printf.sprintf "size %d: states" size) size (Fsm.num_states ~m);
      check_int
        (Printf.sprintf "size %d: rows" size)
        (f.Scaling.Grid.rows_per_state * size)
        (List.length m.Fsm.transitions))
    [ 8; 16; 32 ];
  match Scaling.Grid.machine f 0 with
  | _ -> Alcotest.fail "size 0 must raise"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Report: a real (tiny) cell measures, serializes, and self-diffs clean *)

let with_temp_dir f =
  let dir = Filename.temp_file "nova-scaling-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let tiny_cell () =
  Scaling.Report.run_cell ~warmup:0 ~reps:1 ~family:Scaling.Grid.default
    ~sizes:[ 8; 12; 16; 24 ]
    { Scaling.Report.algorithm = Harness.Driver.Igreedy; max_states = 64 }

let test_report_cell_and_artifact () =
  let cell = tiny_cell () in
  check_int "all four sizes measured" 4 (List.length cell.Scaling.Report.points);
  let json = Scaling.Report.to_json ~quick:true ~reps:1 [ cell ] in
  let j = Json_min.of_string json in
  (match Option.bind (Json_min.member "schema" j) Json_min.to_string with
  | Some s -> check_str "schema" "nova-bench-scaling/v1" s
  | None -> Alcotest.fail "no schema field");
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "BENCH_scaling.json" in
  Scaling.Report.write ~path ~quick:true ~reps:1 [ cell ];
  let a = Bench_diff.load path in
  check_str "differ reads the schema" "nova-bench-scaling/v1" a.Bench_diff.schema;
  check_int "self-diff is clean" 0 (Bench_diff.num_regressions (Bench_diff.diff a a));
  (* The complexity-gate metrics are exactly the flattened fit fields. *)
  let metrics = List.concat_map (fun (_, ms) -> List.map fst ms) a.Bench_diff.rows in
  check "fit.model_order flattened" true (List.mem "fit.model_order" metrics);
  check "fit.fitted_exponent flattened" true (List.mem "fit.fitted_exponent" metrics);
  check "raw samples are not diffable metrics" true
    (List.for_all (fun m -> not (String.length m >= 6 && String.sub m 0 6 = "points")) metrics)

let test_report_max_states_cap () =
  let cell =
    Scaling.Report.run_cell ~warmup:0 ~reps:1 ~family:Scaling.Grid.default
      ~sizes:[ 8; 12; 16; 24 ]
      { Scaling.Report.algorithm = Harness.Driver.Igreedy; max_states = 16 }
  in
  check_int "sizes above the cap skipped" 3 (List.length cell.Scaling.Report.points);
  (* 3 points cannot support a 5-way model selection: typed inconclusive,
     and the artifact omits the gate metrics for the cell. *)
  (match cell.Scaling.Report.fit with
  | Scaling.Fit.Inconclusive (Scaling.Fit.Too_few_points 3) -> ()
  | Scaling.Fit.Inconclusive why ->
      Alcotest.failf "wrong reason: %s" (Scaling.Fit.inconclusive_reason why)
  | Scaling.Fit.Fitted _ -> Alcotest.fail "3 points must be inconclusive");
  let j = Json_min.of_string (Scaling.Report.to_json ~quick:true ~reps:1 [ cell ]) in
  let row =
    match Option.bind (Json_min.member "benchmarks" j) Json_min.to_list with
    | Some [ r ] -> r
    | _ -> Alcotest.fail "expected exactly one row"
  in
  let fit = Option.get (Json_min.member "fit" row) in
  check "inconclusive cell has no model_order" true (Json_min.member "model_order" fit = None);
  match Option.bind (Json_min.member "model" fit) Json_min.to_string with
  | Some s -> check_str "inconclusive marker" "inconclusive" s
  | None -> Alcotest.fail "no model field"

(* An inconclusive NEW cell against a fitted OLD cell is a vanished-metric
   regression — the end-to-end shape of the CI gate. *)
let test_report_inconclusive_regresses_against_fitted () =
  with_temp_dir @@ fun dir ->
  let fitted_cell = tiny_cell () in
  let capped =
    Scaling.Report.run_cell ~warmup:0 ~reps:1 ~family:Scaling.Grid.default
      ~sizes:[ 8; 12; 16; 24 ]
      { Scaling.Report.algorithm = Harness.Driver.Igreedy; max_states = 16 }
  in
  let old_p = Filename.concat dir "old.json" and new_p = Filename.concat dir "new.json" in
  Scaling.Report.write ~path:old_p ~quick:true ~reps:1 [ fitted_cell ];
  Scaling.Report.write ~path:new_p ~quick:true ~reps:1 [ capped ];
  let r = Bench_diff.diff (Bench_diff.load old_p) (Bench_diff.load new_p) in
  check "going inconclusive is a regression" true (Bench_diff.num_regressions r > 0);
  check "the vanished gate metrics are named" true
    (List.exists (fun (_, m) -> m = "fit.model_order") r.Bench_diff.vanished
    && List.exists (fun (_, m) -> m = "fit.fitted_exponent") r.Bench_diff.vanished)

let suite =
  [
    Alcotest.test_case "fit: recovers c*n as linear, exponent ~1" `Quick test_fit_recovers_linear;
    Alcotest.test_case "fit: recovers c*n^2 as quadratic, exponent ~2" `Quick
      test_fit_recovers_quadratic;
    Alcotest.test_case "fit: recovers c*n^3 as cubic, exponent ~3" `Quick test_fit_recovers_cubic;
    Alcotest.test_case "fit: tells n log n apart from its neighbours" `Quick
      test_fit_recovers_nlogn;
    Alcotest.test_case "fit: recovers c*2^n as exponential, rate ~1" `Quick
      test_fit_recovers_exponential;
    Alcotest.test_case "fit: exact series fit perfectly, coefficient included" `Quick
      test_fit_exact_series;
    Alcotest.test_case "fit: under 4 points is typed inconclusive" `Quick test_fit_too_few_points;
    Alcotest.test_case "fit: constant series is typed inconclusive" `Quick
      test_fit_constant_series;
    Alcotest.test_case "fit: non-positive time is typed inconclusive" `Quick
      test_fit_non_positive_time;
    Alcotest.test_case "fit: degenerate sizes are typed inconclusive" `Quick
      test_fit_degenerate_sizes;
    Alcotest.test_case "measure: median and MAD" `Quick test_measure_median_mad;
    Alcotest.test_case "measure: slow outlier rejected" `Quick test_measure_rejects_high_outlier;
    Alcotest.test_case "measure: fast outlier cannot become the min" `Quick
      test_measure_rejects_low_outlier;
    Alcotest.test_case "measure: zero MAD keeps every run" `Quick test_measure_zero_mad_keeps_all;
    Alcotest.test_case "measure: sample counts warmup/reps and min-of-kept" `Quick
      test_measure_sample;
    Alcotest.test_case "grid: same seed, byte-identical KISS2 at every size" `Quick
      test_grid_deterministic_text;
    Alcotest.test_case "grid: distinct sizes, distinct content addresses" `Quick
      test_grid_distinct_content_keys;
    Alcotest.test_case "grid: seed changes the machine" `Quick test_grid_seed_sensitivity;
    Alcotest.test_case "grid: members have the requested shape" `Quick test_grid_machine_shape;
    Alcotest.test_case "report: tiny real cell serializes and self-diffs clean" `Quick
      test_report_cell_and_artifact;
    Alcotest.test_case "report: max_states cap and inconclusive cells omit gate metrics" `Quick
      test_report_max_states_cap;
    Alcotest.test_case "report: fitted -> inconclusive regresses via vanished metrics" `Quick
      test_report_inconclusive_regresses_against_fitted;
  ]
