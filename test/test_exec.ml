(* Tests for the parallel portfolio executor: the domain pool's
   deterministic reduction, domain-safe instrumentation and budget
   cancellation, racing, and the content-addressed result cache with
   its re-certification gate. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let quick_machines = [ "lion"; "dk15"; "bbara" ]

let with_temp_dir f =
  let dir = Filename.temp_file "nova-exec-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_map_deterministic () =
  let tasks = Array.init 64 (fun i -> i) in
  let f i x =
    (* Skewed per-task cost, so completion order differs from index
       order whenever more than one domain runs. *)
    let acc = ref 0 in
    for k = 1 to (x mod 7) * 10_000 do
      acc := !acc + k
    done;
    ignore !acc;
    (i, x * x)
  in
  let seq = Exec.Pool.mapi ~jobs:1 tasks ~f in
  let par = Exec.Pool.mapi ~jobs:4 tasks ~f in
  check "jobs=4 equals jobs=1" true (seq = par);
  Array.iteri (fun i (j, sq) -> check_int "slot index" i j; check_int "square" (i * i) sq) par

let test_pool_exception_propagates () =
  let tasks = Array.init 16 (fun i -> i) in
  let boom i _ = if i = 5 || i = 11 then failwith (Printf.sprintf "boom %d" i) else i in
  (* The lowest-indexed failure is the one re-raised, regardless of
     which domain hit its exception first. *)
  (match Exec.Pool.mapi ~jobs:4 tasks ~f:boom with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> check "lowest-index exception wins" true (msg = "boom 5"))

(* ------------------------------------------------------------------ *)
(* Satellite: domain-safe instrumentation *)

let test_instrument_two_domain_hammer () =
  let was_on = Instrument.enabled () in
  Instrument.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_on then Instrument.disable ())
    (fun () ->
      let c = Instrument.counter "test.exec.hammer" in
      let t = Instrument.timer "test.exec.hammer-timer" in
      let before =
        match List.assoc_opt "test.exec.hammer" (Instrument.counters ()) with
        | Some n -> n
        | None -> 0
      in
      let n = 100_000 in
      let hammer () =
        for _ = 1 to n do
          Instrument.bump c;
          (* find_or_create from two domains must never duplicate or
             corrupt the registry. *)
          ignore (Instrument.counter "test.exec.hammer");
          Instrument.time t ignore
        done
      in
      let d = Domain.spawn hammer in
      hammer ();
      Domain.join d;
      let after =
        match List.assoc_opt "test.exec.hammer" (Instrument.counters ()) with
        | Some v -> v
        | None -> Alcotest.fail "counter vanished"
      in
      check_int "no lost bumps across two domains" (2 * n) (after - before);
      let timer_calls =
        List.filter_map
          (fun (name, _, calls) -> if name = "test.exec.hammer-timer" then Some calls else None)
          (Instrument.timers ())
      in
      check "no lost timer calls" true (List.exists (fun calls -> calls >= 2 * n) timer_calls);
      check "registry holds one instance" true
        (List.length
           (List.filter (fun (name, _) -> name = "test.exec.hammer") (Instrument.counters ()))
        = 1))

(* ------------------------------------------------------------------ *)
(* Satellite: cross-domain budget cancellation *)

let test_budget_cross_domain_cancel () =
  let parent = Budget.create () in
  let child = Budget.sub parent in
  let ticks = Atomic.make 0 in
  let stopped = Atomic.make false in
  let ticker =
    Domain.spawn (fun () ->
        (* Tick the child until the budget trips; the cancel arrives
           from the other domain mid-loop. *)
        while Budget.tick child do
          Atomic.incr ticks
        done;
        Atomic.set stopped true)
  in
  (* Wait until the ticker is demonstrably inside its loop. *)
  while Atomic.get ticks < 1_000 do
    Domain.cpu_relax ()
  done;
  let at_cancel = Atomic.get ticks in
  Budget.cancel parent;
  Domain.join ticker;
  check "ticker observed the cancel and stopped" true (Atomic.get stopped);
  check "cancel reason propagated to the child" true
    (Budget.reason child = Some Budget.Cancelled);
  (* The tripped flag is atomic and checked on every tick, so the loop
     must die within one poll interval (256 ticks) of the cancel. *)
  check "stopped within one poll interval" true (Atomic.get ticks - at_cancel <= 256 + 1)

(* ------------------------------------------------------------------ *)
(* Cache: keys, round-trip, corruption, tampering *)

let sample_task name = Exec.Job.task (Benchmarks.Suite.find name) Harness.Driver.Igreedy

let test_cache_key_sensitivity () =
  let lion = Benchmarks.Suite.find "lion" in
  let base = Exec.Job.task lion Harness.Driver.Igreedy in
  let diff_algo = Exec.Job.task lion Harness.Driver.Kiss in
  let diff_bits = Exec.Job.task ~bits:4 lion Harness.Driver.Igreedy in
  let diff_work = Exec.Job.task ~max_work:7 lion Harness.Driver.Igreedy in
  let diff_machine = sample_task "dk15" in
  let keys =
    List.map Exec.Job.key [ base; diff_algo; diff_bits; diff_work; diff_machine ]
  in
  check_int "all five keys distinct" 5 (List.length (List.sort_uniq compare keys));
  check "key is stable" true (Exec.Job.key base = Exec.Job.key base)

let test_cache_roundtrip () =
  with_temp_dir @@ fun dir ->
  let tasks = List.map sample_task quick_machines in
  let cold = Exec.Cache.open_dir dir in
  let cold_rows = Exec.Portfolio.run ~cache:cold tasks in
  let st = Exec.Cache.stats cold in
  check_int "cold run misses everything" (List.length tasks) st.Exec.Cache.misses;
  check_int "cold run stores everything" (List.length tasks) st.Exec.Cache.stores;
  let warm = Exec.Cache.open_dir dir in
  let warm_rows = Exec.Portfolio.run ~cache:warm tasks in
  let st = Exec.Cache.stats warm in
  check_int "warm run hits everything" (List.length tasks) st.Exec.Cache.hits;
  check_int "warm run misses nothing" 0 st.Exec.Cache.misses;
  check_int "warm run rejects nothing" 0 st.Exec.Cache.rejected;
  List.iter2
    (fun (a : Exec.Job.row) (b : Exec.Job.row) ->
      (match (a.Exec.Job.result, b.Exec.Job.result) with
      | Ok x, Ok y -> check "cached result bit-identical" true (Exec.Job.success_equal x y)
      | _ -> Alcotest.fail "portfolio run failed");
      check "cold origin" true (a.Exec.Job.origin = Exec.Job.Computed);
      check "warm origin" true (b.Exec.Job.origin = Exec.Job.Cached))
    cold_rows warm_rows

let test_cache_corrupt_entry_recomputed () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  let c = Exec.Cache.open_dir dir in
  let fresh = Exec.Portfolio.run ~cache:c [ task ] in
  (* Overwrite the entry with garbage: the parser must reject it and
     the executor recompute, never crash. *)
  let path = Filename.concat dir (Exec.Job.key task ^ ".nova-cache") in
  check "entry exists after the store" true (Sys.file_exists path);
  let oc = open_out_bin path in
  output_string oc "\x00garbage\nnot a cache entry\n";
  close_out oc;
  let c2 = Exec.Cache.open_dir dir in
  let rows = Exec.Portfolio.run ~cache:c2 [ task ] in
  let st = Exec.Cache.stats c2 in
  check_int "corrupt entry rejected" 1 st.Exec.Cache.rejected;
  check_int "recomputed, not served" 0 st.Exec.Cache.hits;
  check "rejected entry deleted, fresh one stored" true (Sys.file_exists path);
  (match ((List.hd rows).Exec.Job.result, (List.hd fresh).Exec.Job.result) with
  | Ok a, Ok b -> check "recomputed result matches" true (Exec.Job.success_equal a b)
  | _ -> Alcotest.fail "run failed")

let test_cache_tampered_entry_fails_certification () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  let c = Exec.Cache.open_dir dir in
  ignore (Exec.Portfolio.run ~cache:c [ task ]);
  let path = Filename.concat dir (Exec.Job.key task ^ ".nova-cache") in
  (* Drop one cube, fix the count, and recompute the checksum header
     over the tampered payload: the entry is structurally pristine and
     still parses, but the cover no longer implements the machine, so
     only the independent re-certification gate can refuse to serve
     it. (A stale checksum would be caught earlier, by [fsck]-level
     structural verification — deliberately bypassed here.) *)
  let text = In_channel.with_open_bin path In_channel.input_all in
  let payload =
    (* strip "nova-cache/v2\nchecksum HEX\n" *)
    let first = String.index text '\n' in
    let second = String.index_from text (first + 1) '\n' in
    String.sub text (second + 1) (String.length text - second - 1)
  in
  let tampered_payload =
    let dropping = ref false in
    String.split_on_char '\n' payload
    |> List.filter_map (fun l ->
           if !dropping then begin
             dropping := false;
             None (* the first cube line after the header *)
           end
           else if String.length l > 6 && String.sub l 0 6 = "cubes " then begin
             dropping := true;
             let k = int_of_string (String.sub l 6 (String.length l - 6)) in
             Some (Printf.sprintf "cubes %d" (k - 1))
           end
           else Some l)
    |> String.concat "\n"
  in
  Out_channel.with_open_bin path (fun oc ->
      Printf.fprintf oc "nova-cache/v2\nchecksum %s\n%s"
        (Digest.to_hex (Digest.string tampered_payload))
        tampered_payload);
  let c2 = Exec.Cache.open_dir dir in
  let rows = Exec.Portfolio.run ~cache:c2 [ task ] in
  let st = Exec.Cache.stats c2 in
  check_int "tampered entry rejected by re-certification" 1 st.Exec.Cache.rejected;
  check_int "tampered entry never served" 0 st.Exec.Cache.hits;
  check "recomputed fine" true
    (match (List.hd rows).Exec.Job.result with Ok _ -> true | Error _ -> false)

let test_cache_refuses_uncertified_store () =
  with_temp_dir @@ fun dir ->
  let task = sample_task "lion" in
  match Exec.Job.run task with
  | Error _ -> Alcotest.fail "igreedy on lion failed"
  | Ok s ->
      (* Drop a cube: the cover no longer implements the machine, so
         the pre-store certification must refuse to persist it. *)
      let broken_cover =
        Logic.Cover.make s.Exec.Job.cover.Logic.Cover.dom
          (List.tl s.Exec.Job.cover.Logic.Cover.cubes)
      in
      let broken = { s with Exec.Job.cover = broken_cover } in
      let c = Exec.Cache.open_dir dir in
      Exec.Cache.store c task broken;
      let st = Exec.Cache.stats c in
      check_int "uncertified result not stored" 0 st.Exec.Cache.stores;
      check "no entry file written" false
        (Sys.file_exists (Exec.Cache.entry_path c task));
      Exec.Cache.store c task s;
      check_int "certified result stored" 1 (Exec.Cache.stats c).Exec.Cache.stores

(* ------------------------------------------------------------------ *)
(* Satellite: determinism of the parallel portfolio *)

let row_equal (a : Exec.Job.row) (b : Exec.Job.row) =
  a.Exec.Job.task == b.Exec.Job.task
  &&
  match (a.Exec.Job.result, b.Exec.Job.result) with
  | Ok x, Ok y -> Exec.Job.success_equal x y
  | Error x, Error y -> x = y
  | _ -> false

let portfolio_tasks () =
  List.concat_map
    (fun name -> Exec.Portfolio.tasks_for (Benchmarks.Suite.find name))
    quick_machines

let test_portfolio_jobs_deterministic () =
  let tasks = portfolio_tasks () in
  let seq = Exec.Portfolio.run ~jobs:1 tasks in
  let par = Exec.Portfolio.run ~jobs:4 tasks in
  check_int "same row count" (List.length seq) (List.length par);
  List.iter2
    (fun a b -> check "row identical across jobs levels" true (row_equal a b))
    seq par

let test_race_winner_deterministic () =
  let tasks = Exec.Portfolio.tasks_for (Benchmarks.Suite.find "lion") in
  let _, w1 = Exec.Portfolio.race ~jobs:1 tasks in
  let rows4, w4 = Exec.Portfolio.race ~jobs:4 tasks in
  check "race found a winner" true (w1 <> None);
  check "same winner index at jobs=1 and jobs=4" true (w1 = w4);
  match w4 with
  | None -> Alcotest.fail "no winner"
  | Some i ->
      let row = List.nth rows4 i in
      check "winner row is a success" true
        (match row.Exec.Job.result with Ok _ -> true | Error _ -> false);
      check "winner was computed or cached, not cancelled" true
        (row.Exec.Job.origin <> Exec.Job.Cancelled_by_race)

let test_race_warm_cache_same_winner () =
  with_temp_dir @@ fun dir ->
  let tasks = Exec.Portfolio.tasks_for (Benchmarks.Suite.find "dk15") in
  let cold = Exec.Cache.open_dir dir in
  let rows_cold, w_cold = Exec.Portfolio.race ~cache:cold tasks in
  let warm = Exec.Cache.open_dir dir in
  let rows_warm, w_warm = Exec.Portfolio.race ~cache:warm tasks in
  check "cold and warm race agree on the winner" true (w_cold = w_warm);
  match (w_cold, w_warm) with
  | Some i, Some j ->
      let a = List.nth rows_cold i and b = List.nth rows_warm j in
      (match (a.Exec.Job.result, b.Exec.Job.result) with
      | Ok x, Ok y -> check "winner row bit-identical" true (Exec.Job.success_equal x y)
      | _ -> Alcotest.fail "winner row not a success")
  | _ -> Alcotest.fail "race found no winner"

let suite =
  [
    Alcotest.test_case "pool: jobs=4 map equals jobs=1" `Quick test_pool_map_deterministic;
    Alcotest.test_case "pool: lowest-index exception re-raised" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "instrument: two-domain hammer loses no counts" `Quick
      test_instrument_two_domain_hammer;
    Alcotest.test_case "budget: cross-domain cancel trips within a poll interval" `Quick
      test_budget_cross_domain_cancel;
    Alcotest.test_case "cache: key sensitivity" `Quick test_cache_key_sensitivity;
    Alcotest.test_case "cache: cold/warm round-trip is bit-identical" `Quick
      test_cache_roundtrip;
    Alcotest.test_case "cache: corrupt entry rejected and recomputed" `Quick
      test_cache_corrupt_entry_recomputed;
    Alcotest.test_case "cache: tampered entry fails re-certification" `Quick
      test_cache_tampered_entry_fails_certification;
    Alcotest.test_case "cache: uncertified success never stored" `Quick
      test_cache_refuses_uncertified_store;
    Alcotest.test_case "portfolio: jobs=4 rows equal jobs=1" `Quick
      test_portfolio_jobs_deterministic;
    Alcotest.test_case "race: winner independent of jobs" `Quick
      test_race_winner_deterministic;
    Alcotest.test_case "race: warm cache picks the same winner" `Quick
      test_race_warm_cache_same_winner;
  ]
