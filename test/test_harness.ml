(* Tests for the experiment harness: report rendering and the cached
   per-machine flow (kept to small machines so the suite stays fast). *)

let check = Alcotest.(check bool)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_print_table () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Report.print_table ppf ~title:"T"
    ~header:[ "a"; "bb" ]
    [ [ "1"; "2" ]; [ "333"; "4" ] ];
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check "title present" true (String.length out > 0 && contains out "== T ==")

let test_print_table_ragged () =
  let ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  Alcotest.check_raises "ragged row" (Invalid_argument "Report.print_table: ragged row")
    (fun () ->
      Harness.Report.print_table ppf ~title:"T" ~header:[ "a"; "b" ] [ [ "1" ] ])

let test_opt_and_ratio () =
  Alcotest.(check string) "opt some" "7" (Harness.Report.opt_int (Some 7));
  Alcotest.(check string) "opt none" "-" (Harness.Report.opt_int None);
  Alcotest.(check string) "ratio" "0.50" (Harness.Report.ratio (Some 1) (Some 2));
  Alcotest.(check string) "ratio by zero" "-" (Harness.Report.ratio (Some 1) (Some 0));
  Alcotest.(check string) "ratio missing" "-" (Harness.Report.ratio None (Some 2))

let test_spark () =
  let s = Harness.Report.spark [ Some 1.0; Some 2.0; None; Some 1.5 ] in
  check "spark nonempty" true (String.length s > 0);
  Alcotest.(check string) "spark empty input" "" (Harness.Report.spark [ None; None ]);
  check "constant series renders" true (String.length (Harness.Report.spark [ Some 1.; Some 1. ]) > 0)

let test_flow_caching () =
  Harness.Flow.clear_cache ();
  let f1 = Harness.Flow.get "lion" in
  let f2 = Harness.Flow.get "lion" in
  check "same flow object" true (f1 == f2);
  let e = Stage.force f1.Harness.Flow.one_hot in
  let r1 = Harness.Flow.implement f1 e in
  let r2 = Harness.Flow.implement f1 e in
  check "implement cached" true (r1 == r2)

let test_flow_best_consistency () =
  let f = Harness.Flow.get "lion" in
  let best = Harness.Flow.nova_best f in
  let area_best = Harness.Flow.area_of f best in
  check "nova best no worse than ihybrid" true
    (area_best <= Harness.Flow.area_of f (Stage.force f.Harness.Flow.ihybrid).Ihybrid.encoding);
  check "nova best no worse than igreedy" true
    (area_best <= Harness.Flow.area_of f (Stage.force f.Harness.Flow.igreedy).Igreedy.encoding);
  let rb, ra = Harness.Flow.random_best_avg f in
  check "best <= avg" true (rb <= ra)

let test_names_quick () =
  let full = Harness.Tables.names ~quick:false in
  let quick = Harness.Tables.names ~quick:true in
  check "quick is a subset" true (List.for_all (fun n -> List.mem n full) quick);
  check "quick drops the heavy machines" true (not (List.mem "scf" quick));
  Alcotest.(check int) "full has all 30" 30 (List.length full)

let test_table1_smoke () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Tables.table1 ~quick:true ppf ();
  Format.pp_print_flush ppf ();
  check "mentions shiftreg" true (contains (Buffer.contents buf) "shiftreg")

let suite =
  [
    Alcotest.test_case "print_table" `Quick test_print_table;
    Alcotest.test_case "print_table ragged" `Quick test_print_table_ragged;
    Alcotest.test_case "opt_int and ratio" `Quick test_opt_and_ratio;
    Alcotest.test_case "spark" `Quick test_spark;
    Alcotest.test_case "flow caching" `Quick test_flow_caching;
    Alcotest.test_case "flow best consistency" `Quick test_flow_best_consistency;
    Alcotest.test_case "quick machine list" `Quick test_names_quick;
    Alcotest.test_case "table1 smoke" `Quick test_table1_smoke;
  ]
