(* Randomized differential tests for the fast unate-aware ESPRESSO
   kernels.

   The fast [Cover.tautology] / [Cover.complement] carry unate
   shortcuts, component reduction, minterm-count cutoffs and
   word-parallel cofactor paths; [Cover.Naive] retains the seed's
   straight-line recursion verbatim. Random small multiple-valued
   covers are thrown at both, and everything is additionally compared
   against the one oracle that cannot be wrong: exhaustive truth-table
   evaluation with [Cover.contains_minterm].

   Everything is driven by a fixed-seed [Random.State], so failures
   reproduce deterministically and the suite needs no extra
   dependencies. *)

open Logic

let check = Alcotest.(check bool)

(* --- random instances ---------------------------------------------------- *)

let random_domain rng =
  let nvars = 1 + Random.State.int rng 3 in
  Domain.create (Array.init nvars (fun _ -> 2 + Random.State.int rng 2))

(* A uniformly random non-empty subset of parts per variable. *)
let random_cube rng dom =
  let nvars = Domain.num_vars dom in
  let c = ref (Cube.full dom) in
  for v = 0 to nvars - 1 do
    let sz = Domain.size dom v in
    let parts = List.filter (fun _ -> Random.State.bool rng) (List.init sz Fun.id) in
    let parts = if parts = [] then [ Random.State.int rng sz ] else parts in
    c := Cube.set_var dom !c v parts
  done;
  !c

let random_cover rng dom ~max_cubes =
  let n = Random.State.int rng (max_cubes + 1) in
  Cover.make dom (List.init n (fun _ -> random_cube rng dom))

(* All minterms of a (small) domain, as value vectors. *)
let all_minterms dom =
  let nvars = Domain.num_vars dom in
  let rec go v =
    if v = nvars then [ [] ]
    else
      let rest = go (v + 1) in
      List.concat_map (fun p -> List.map (fun tl -> p :: tl) rest)
        (List.init (Domain.size dom v) Fun.id)
  in
  List.map Array.of_list (go 0)

(* --- tautology: fast = naive = truth table ------------------------------- *)

let test_tautology_agrees () =
  let rng = Random.State.make [| 20260806; 1 |] in
  for i = 1 to 200 do
    let dom = random_domain rng in
    let f = random_cover rng dom ~max_cubes:6 in
    let truth = List.for_all (Cover.contains_minterm f) (all_minterms dom) in
    let ctx = Printf.sprintf "case %d: %s" i (Format.asprintf "%a" Cover.pp f) in
    check (ctx ^ " fast=truth") truth (Cover.tautology f);
    check (ctx ^ " naive=truth") truth (Cover.Naive.tautology f)
  done

(* --- complement: fast and naive both match the truth table --------------- *)

let test_complement_agrees () =
  let rng = Random.State.make [| 20260806; 2 |] in
  for i = 1 to 200 do
    let dom = random_domain rng in
    let f = random_cover rng dom ~max_cubes:6 in
    let fast = Cover.complement f in
    let naive = Cover.Naive.complement f in
    List.iter
      (fun mt ->
        let inside = Cover.contains_minterm f mt in
        let ctx = Printf.sprintf "case %d" i in
        check (ctx ^ " fast complement") (not inside) (Cover.contains_minterm fast mt);
        check (ctx ^ " naive complement") (not inside) (Cover.contains_minterm naive mt))
      (all_minterms dom)
  done

(* --- covers_cube against minterm enumeration ----------------------------- *)

let test_covers_cube_agrees () =
  let rng = Random.State.make [| 20260806; 3 |] in
  for i = 1 to 200 do
    let dom = random_domain rng in
    let f = random_cover rng dom ~max_cubes:5 in
    let c = random_cube rng dom in
    let truth =
      List.for_all
        (fun mt ->
          (not (Cube.contains c (Cube.of_minterm dom mt))) || Cover.contains_minterm f mt)
        (all_minterms dom)
    in
    check (Printf.sprintf "case %d covers_cube" i) truth (Cover.covers_cube f c)
  done

(* --- minimize: on-dc <= result <= on OR dc, by truth table ---------------
   A minterm in both [on] and [dc] is a don't-care (the ESPRESSO
   convention: the result covers the care on-set [on - dc] and stays
   inside [on OR dc]). *)

let test_minimize_against_truth_table () =
  let rng = Random.State.make [| 20260806; 4 |] in
  for i = 1 to 200 do
    let dom = random_domain rng in
    let on = random_cover rng dom ~max_cubes:5 in
    let dc = random_cover rng dom ~max_cubes:2 in
    let m = Espresso.minimize ~dc on in
    List.iter
      (fun mt ->
        let in_on = Cover.contains_minterm on mt in
        let in_dc = Cover.contains_minterm dc mt in
        let in_m = Cover.contains_minterm m mt in
        let ctx = Printf.sprintf "case %d" i in
        if in_on && not in_dc then check (ctx ^ " minimize covers care on-set") true in_m;
        if in_m then check (ctx ^ " minimize within on+dc") true (in_on || in_dc))
      (all_minterms dom)
  done

(* --- minimize_care: avoids off, covers on -------------------------------- *)

let test_minimize_care_against_truth_table () =
  let rng = Random.State.make [| 20260806; 5 |] in
  for i = 1 to 100 do
    let dom = random_domain rng in
    let on = random_cover rng dom ~max_cubes:4 in
    (* Off-set: random cover minus the on-set, so the instance is
       consistent by construction. *)
    let off_raw = random_cover rng dom ~max_cubes:4 in
    let minterms = all_minterms dom in
    let off_minterms =
      List.filter
        (fun mt -> Cover.contains_minterm off_raw mt && not (Cover.contains_minterm on mt))
        minterms
    in
    let off = Cover.make dom (List.map (Cube.of_minterm dom) off_minterms) in
    let m = Espresso.minimize_care ~off on in
    List.iter
      (fun mt ->
        let ctx = Printf.sprintf "case %d" i in
        if Cover.contains_minterm on mt then
          check (ctx ^ " minimize_care covers on-set") true (Cover.contains_minterm m mt);
        if Cover.contains_minterm off mt then
          check (ctx ^ " minimize_care avoids off-set") false (Cover.contains_minterm m mt))
      minterms
  done

let suite =
  [
    Alcotest.test_case "tautology: fast = naive = truth table (200 random covers)" `Quick
      test_tautology_agrees;
    Alcotest.test_case "complement: fast & naive match truth table (200 random covers)" `Quick
      test_complement_agrees;
    Alcotest.test_case "covers_cube matches minterm enumeration (200 random cases)" `Quick
      test_covers_cube_agrees;
    Alcotest.test_case "minimize: on <= result <= on+dc by truth table (200 random cases)"
      `Quick test_minimize_against_truth_table;
    Alcotest.test_case "minimize_care: covers on, avoids off (100 random cases)" `Quick
      test_minimize_care_against_truth_table;
  ]
