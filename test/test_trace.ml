(* Tests for the tracing layer and its satellites: the taut_fast
   saturation fix behind the kiss certification failure, the timer
   reentrancy assertion, JSON escaping in both serializers (round-tripped
   through the in-repo parser), concurrent two-domain span emission, the
   trace validator, and the bench regression differ. *)

open Logic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let with_temp_dir f =
  let dir = Filename.temp_file "nova-trace-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

(* Run [f] with tracing on and a clean buffer, restoring the off state
   whatever happens, so trace tests cannot leak into other suites. *)
let with_trace f =
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Satellite: the cover-containment false negative (integer overflow) *)

(* 63 binary variables: the product space has 2^63 minterms, which
   overflows [Domain.num_minterms], so the tautology cutoff runs with
   space = max_int and its minterm accumulator must saturate instead of
   wrapping negative. x0=0 ∪ x0=1 is the whole space — before the fix
   this exact shape reported "not a tautology". *)
let test_overflow_tautology () =
  let dom = Domain.create (Array.make 63 2) in
  let cover = Cover.make dom [ Cube.literal dom 0 [ 0 ]; Cube.literal dom 0 [ 1 ] ] in
  check "x0=0 | x0=1 is a tautology over 63 vars" true (Cover.tautology cover);
  check "it covers the universe" true (Cover.covers cover (Cover.universe dom));
  check "it covers the full cube" true (Cover.covers_cube cover (Cube.full dom))

(* The end-to-end shape that exposed the bug: the kiss encoding of a
   40-state generated machine needs 51 state bits, whose encoded PLA
   domain overflows the minterm count, and before the fix the
   cover-containment certificate rejected a correct cover. Pinned. *)
let test_kiss_overflow_certification () =
  let m =
    Benchmarks.Generator.generate ~name:"gen-overflow" ~num_inputs:6 ~num_outputs:6
      ~num_states:40 ~num_rows:160 ~seed:4242
  in
  match Harness.Driver.report m Harness.Driver.Kiss with
  | Error e -> Alcotest.failf "kiss report failed: %s" (Nova_error.to_string e)
  | Ok (outcome, r) ->
      let cert = Check.certify m (Harness.Certify.artifacts_of outcome r) in
      if not cert.Check.ok then Alcotest.failf "kiss certification: %s" (Check.summary cert)

(* ------------------------------------------------------------------ *)
(* Satellite: timer reentrancy assertion *)

let test_timer_reentrancy_raises () =
  let was_on = Instrument.enabled () in
  Instrument.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_on then Instrument.disable ())
    (fun () ->
      let t = Instrument.timer "test.trace.reentrant" in
      (* Distinct timers nest fine. *)
      let u = Instrument.timer "test.trace.reentrant-other" in
      Instrument.time t (fun () -> Instrument.time u ignore);
      (match Instrument.time t (fun () -> Instrument.time t ignore) with
      | () -> Alcotest.fail "nested same-timer use must raise while instrumented"
      | exception Invalid_argument _ -> ());
      (* The assertion unwinds cleanly: the timer is reusable after. *)
      Instrument.time t ignore)

let test_timer_reentrancy_off_path () =
  check "instrumentation is off" false (Instrument.enabled ());
  let t = Instrument.timer "test.trace.reentrant-off" in
  (* Off path: no bookkeeping at all, so nesting is not even observed. *)
  check_int "nested off-path call runs" 7 (Instrument.time t (fun () -> Instrument.time t (fun () -> 7)));
  let calls =
    List.filter_map
      (fun (name, _, calls) -> if name = "test.trace.reentrant-off" then Some calls else None)
      (Instrument.timers ())
  in
  check_int "off path recorded nothing" 0 (List.fold_left ( + ) 0 calls)

(* ------------------------------------------------------------------ *)
(* Satellite: deterministic sorted registries *)

let test_instrument_sorted_output () =
  ignore (Instrument.counter "test.zzz.last");
  ignore (Instrument.counter "test.aaa.first");
  let names = List.map fst (Instrument.counters ()) in
  check "counters sorted by name" true (names = List.sort compare names);
  let tnames = List.map (fun (n, _, _) -> n) (Instrument.timers ()) in
  check "timers sorted by name" true (tnames = List.sort compare tnames)

(* ------------------------------------------------------------------ *)
(* Satellite: JSON escaping, round-tripped through the in-repo parser *)

let nasty = "quote\" back\\slash\nnewline\ttab \001ctl ünïcode π \127"

let test_trace_json_escape () =
  let quoted = "\"" ^ Trace.json_escape nasty ^ "\"" in
  match Json_min.of_string quoted with
  | Json_min.Str s -> check_str "escaped string round-trips" nasty s
  | _ -> Alcotest.fail "escaped string did not parse as a string"

let test_instrument_json_escaping () =
  let was_on = Instrument.enabled () in
  Instrument.enable ();
  Fun.protect
    ~finally:(fun () -> if not was_on then Instrument.disable ())
    (fun () ->
      let name = "test.trace.nasty " ^ nasty in
      Instrument.bump (Instrument.counter name);
      let j = Json_min.of_string (Instrument.to_json ()) in
      match Option.bind (Json_min.member "counters" j) (Json_min.member name) with
      | Some (Json_min.Num n) -> check "nasty counter serialized and found" true (n >= 1.)
      | _ -> Alcotest.fail "nasty counter name did not survive to_json")

let test_trace_export_attr_roundtrip () =
  with_temp_dir @@ fun dir ->
  with_trace @@ fun () ->
  Trace.set_meta [ ("code_version", Trace.String "test/1"); ("note", Trace.String nasty) ];
  Trace.with_span "outer"
    ~attrs:[ ("machine", Trace.String nasty); ("algorithm", Trace.String "kiss") ]
    (fun () ->
      Trace.instant "tick" ~attrs:[ ("n", Trace.Int 3); ("f", Trace.Float 1.5) ];
      Trace.with_span "inner" (fun () -> ()));
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      Trace.export ~path ();
      let events, meta = Validate.decode_file path in
      let r = Validate.check (events, meta) in
      if not (Validate.ok r) then
        Alcotest.failf "%s: %s" file (String.concat "; " r.Validate.errors);
      check_int (file ^ ": events") 5 r.Validate.num_events;
      check_int (file ^ ": spans") 2 r.Validate.num_spans;
      check_int (file ^ ": instants") 1 r.Validate.num_instants;
      (match List.assoc_opt "note" meta with
      | Some (Trace.String s) -> check_str (file ^ ": meta round-trips") nasty s
      | _ -> Alcotest.fail (file ^ ": meta note missing"));
      (* The inner span inherited the outer's attributes. *)
      match List.find_opt (fun (e : Trace.event) -> e.Trace.name = "inner") events with
      | Some e -> (
          match List.assoc_opt "machine" e.Trace.attrs with
          | Some (Trace.String s) -> check_str (file ^ ": inherited attr") nasty s
          | _ -> Alcotest.fail (file ^ ": inner span lost the inherited machine attr"))
      | None -> Alcotest.fail (file ^ ": inner span missing"))
    [ "t.json"; "t.jsonl" ]

(* ------------------------------------------------------------------ *)
(* Satellite: two-domain concurrent span emission *)

let test_two_domain_hammer () =
  with_temp_dir @@ fun dir ->
  with_trace @@ fun () ->
  Trace.set_meta [ ("code_version", Trace.String "test/1") ];
  let rounds = 200 in
  let emit tag () =
    for i = 1 to rounds do
      Trace.with_span "work"
        ~attrs:
          [ ("machine", Trace.String tag); ("algorithm", Trace.String "hammer");
            ("i", Trace.Int i) ]
        (fun () ->
          Trace.instant "step";
          Trace.with_span "nested" (fun () -> Trace.annotate [ ("deep", Trace.Bool true) ]))
    done
  in
  let d1 = Stdlib.Domain.spawn (emit "d1") and d2 = Stdlib.Domain.spawn (emit "d2") in
  emit "main" ();
  Stdlib.Domain.join d1;
  Stdlib.Domain.join d2;
  let path = Filename.concat dir "hammer.jsonl" in
  Trace.export ~path ();
  let r = Validate.check_file path in
  if not (Validate.ok r) then
    Alcotest.failf "hammer trace invalid: %s"
      (String.concat "; " (List.filteri (fun i _ -> i < 5) r.Validate.errors));
  check_int "three tracks" 3 r.Validate.num_tracks;
  check_int "all spans present" (3 * rounds * 2) r.Validate.num_spans;
  check_int "all instants present" (3 * rounds) r.Validate.num_instants

(* The validator actually rejects malformed traces: an End closing the
   wrong span, and timestamps running backwards on one track. *)
let test_validator_rejects () =
  let evs ts_backwards =
    let e kind name ts : Trace.event =
      { Trace.kind; name; ts; track = 0;
        attrs = [ ("machine", Trace.String "m"); ("algorithm", Trace.String "a") ] }
    in
    if ts_backwards then [ e Trace.Begin "s" 10.; e Trace.End "s" 5. ]
    else [ e Trace.Begin "s" 1.; e Trace.End "wrong" 2. ]
  in
  let meta = [ ("code_version", Trace.String "test/1") ] in
  check "mismatched end caught" false (Validate.ok (Validate.check (evs false, meta)));
  check "backwards timestamps caught" false (Validate.ok (Validate.check (evs true, meta)));
  let no_attrs : Trace.event list =
    [ { Trace.kind = Trace.Begin; name = "s"; ts = 1.; track = 0; attrs = [] };
      { Trace.kind = Trace.End; name = "s"; ts = 2.; track = 0; attrs = [] } ]
  in
  check "missing machine/algorithm caught" false (Validate.ok (Validate.check (no_attrs, meta)))

(* ------------------------------------------------------------------ *)
(* bench-diff *)

let write_artifact dir name text =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

let base_artifact =
  {|{"schema":"nova-bench-espresso/1","benchmarks":[
    {"name":"lion","algorithm":"kiss","minimize_s":0.100,"num_cubes":10,"area":120,"states":4},
    {"name":"dk16","algorithm":"kiss","minimize_s":0.500,"num_cubes":50,"area":900,"states":27}]}|}

let test_bench_diff_identical () =
  with_temp_dir @@ fun dir ->
  let p = write_artifact dir "a.json" base_artifact in
  let a = Bench_diff.load p in
  let r = Bench_diff.diff a a in
  check_int "no regressions on identical artifacts" 0 (Bench_diff.num_regressions r);
  check_int "no deltas either" 0 (List.length r.Bench_diff.deltas);
  check_int "both rows compared" 2 r.Bench_diff.rows_compared

let test_bench_diff_regressions () =
  with_temp_dir @@ fun dir ->
  let old_a = Bench_diff.load (write_artifact dir "old.json" base_artifact) in
  (* lion: wall 4x slower (regression); dk16: cubes 10% up (under the
     default 25% threshold, a delta but not a regression), states
     changed (neutral: never a regression). *)
  let new_text =
    {|{"schema":"nova-bench-espresso/1","benchmarks":[
      {"name":"lion","algorithm":"kiss","minimize_s":0.400,"num_cubes":10,"area":120,"states":4},
      {"name":"dk16","algorithm":"kiss","minimize_s":0.500,"num_cubes":55,"area":900,"states":28}]}|}
  in
  let new_a = Bench_diff.load (write_artifact dir "new.json" new_text) in
  let r = Bench_diff.diff old_a new_a in
  check_int "exactly one regression" 1 (Bench_diff.num_regressions r);
  let reg = List.find (fun d -> d.Bench_diff.regression) r.Bench_diff.deltas in
  check_str "the wall metric regressed" "minimize_s" reg.Bench_diff.metric;
  check_str "on the lion row" "lion/kiss" reg.Bench_diff.row;
  (* A 10x size blow-up past the threshold is a regression too. *)
  let blow =
    {|{"schema":"nova-bench-espresso/1","benchmarks":[
      {"name":"lion","algorithm":"kiss","minimize_s":0.100,"num_cubes":100,"area":120,"states":4},
      {"name":"dk16","algorithm":"kiss","minimize_s":0.500,"num_cubes":50,"area":900,"states":27}]}|}
  in
  let r2 = Bench_diff.diff old_a (Bench_diff.load (write_artifact dir "blow.json" blow)) in
  check_int "size regression detected" 1 (Bench_diff.num_regressions r2)

let test_bench_diff_missing_row_and_improvement () =
  with_temp_dir @@ fun dir ->
  let old_a = Bench_diff.load (write_artifact dir "old.json" base_artifact) in
  (* dk16 vanished; lion got faster and smaller: improvements are never
     regressions, the dropped row is. *)
  let new_text =
    {|{"schema":"nova-bench-espresso/1","benchmarks":[
      {"name":"lion","algorithm":"kiss","minimize_s":0.010,"num_cubes":5,"area":60,"states":4}]}|}
  in
  let r = Bench_diff.diff old_a (Bench_diff.load (write_artifact dir "new.json" new_text)) in
  check_int "missing row is the only regression" 1 (Bench_diff.num_regressions r);
  check "it is reported as missing" true (r.Bench_diff.missing = [ "dk16/kiss" ]);
  check "no delta is flagged" true
    (List.for_all (fun d -> not d.Bench_diff.regression) r.Bench_diff.deltas)

let test_bench_diff_schema_mismatch () =
  with_temp_dir @@ fun dir ->
  let a = Bench_diff.load (write_artifact dir "a.json" base_artifact) in
  let b =
    Bench_diff.load
      (write_artifact dir "b.json" {|{"schema":"nova-bench-other/1","benchmarks":[]}|})
  in
  match Bench_diff.diff a b with
  | _ -> Alcotest.fail "schema mismatch must raise"
  | exception Bench_diff.Schema_mismatch _ -> ()

(* Satellite fix: a row present in both artifacts but with a metric
   *set* that shrank in NEW used to fall through the flattening silently.
   A vanished gateable metric (wall/size/complexity) is a regression; a
   vanished neutral metric is only a note. *)
let test_bench_diff_vanished_metric () =
  with_temp_dir @@ fun dir ->
  let old_a = Bench_diff.load (write_artifact dir "old.json" base_artifact) in
  (* lion: num_cubes (size metric) vanished — the OK-row-turned-error-row
     shape. dk16: states (neutral) vanished — a schema change, noted. *)
  let new_text =
    {|{"schema":"nova-bench-espresso/1","benchmarks":[
      {"name":"lion","algorithm":"kiss","minimize_s":0.100,"area":120,"states":4},
      {"name":"dk16","algorithm":"kiss","minimize_s":0.500,"num_cubes":50,"area":900}]}|}
  in
  let r = Bench_diff.diff old_a (Bench_diff.load (write_artifact dir "new.json" new_text)) in
  check_int "vanished size metric is the only regression" 1 (Bench_diff.num_regressions r);
  check "both vanishings recorded" true
    (r.Bench_diff.vanished = [ ("lion/kiss", "num_cubes"); ("dk16/kiss", "states") ]);
  check "no delta is flagged" true
    (List.for_all (fun d -> not d.Bench_diff.regression) r.Bench_diff.deltas)

(* Complexity metrics (the scaling bench's fitted classes) gate
   absolutely: any model_order increase regresses, exponent drift past
   the fixed tolerance regresses, improvements never do — all of it
   independent of the relative threshold. *)
let scaling_artifact ~order ~exponent =
  Printf.sprintf
    {|{"schema":"nova-bench-scaling/v1","benchmarks":[
      {"name":"dense4x4","algorithm":"igreedy","fit":{"model_order":%d,"fitted_exponent":%g,"r2":0.99}}]}|}
    order exponent

let test_bench_diff_complexity_gate () =
  with_temp_dir @@ fun dir ->
  let load name text = Bench_diff.load (write_artifact dir name text) in
  let old_a = load "old.json" (scaling_artifact ~order:3 ~exponent:2.0) in
  let regressions ?threshold new_a =
    Bench_diff.num_regressions (Bench_diff.diff ?threshold old_a new_a)
  in
  (* quadratic -> cubic: +1 class rank (+33%, but gated absolutely): the
     exponent stayed within tolerance, only the class fires. *)
  check_int "class rank bump regresses" 1
    (regressions (load "cubic.json" (scaling_artifact ~order:4 ~exponent:2.2)));
  (* ...even under a threshold generous enough to wave 100% through. *)
  check_int "class rank gate ignores the relative threshold" 1
    (regressions ~threshold:2.0 (load "cubic2.json" (scaling_artifact ~order:4 ~exponent:2.2)));
  check_int "exponent drift within tolerance passes" 0
    (regressions (load "drift-ok.json" (scaling_artifact ~order:3 ~exponent:2.2)));
  check_int "exponent drift past tolerance regresses" 1
    (regressions (load "drift-bad.json" (scaling_artifact ~order:3 ~exponent:2.4)));
  check_int "improvement is never a regression" 0
    (regressions (load "better.json" (scaling_artifact ~order:1 ~exponent:1.0)));
  check "fit metrics classify as Complexity" true
    (Bench_diff.classify "fit.model_order" = Bench_diff.Complexity
    && Bench_diff.classify "fit.fitted_exponent" = Bench_diff.Complexity
    && Bench_diff.classify "fit.r2" = Bench_diff.Neutral)

let test_bench_diff_threshold () =
  with_temp_dir @@ fun dir ->
  let old_a = Bench_diff.load (write_artifact dir "old.json" base_artifact) in
  let slower =
    {|{"schema":"nova-bench-espresso/1","benchmarks":[
      {"name":"lion","algorithm":"kiss","minimize_s":0.115,"num_cubes":10,"area":120,"states":4},
      {"name":"dk16","algorithm":"kiss","minimize_s":0.500,"num_cubes":50,"area":900,"states":27}]}|}
  in
  let new_a = Bench_diff.load (write_artifact dir "new.json" slower) in
  (* 15% slower: inside the default 25% threshold, outside a 10% one. *)
  check_int "within default threshold" 0 (Bench_diff.num_regressions (Bench_diff.diff old_a new_a));
  check_int "past a tight threshold" 1
    (Bench_diff.num_regressions (Bench_diff.diff ~threshold:0.10 old_a new_a))

let suite =
  [
    Alcotest.test_case "taut_fast saturates past-max_int spaces (overflow fix)" `Quick
      test_overflow_tautology;
    Alcotest.test_case "kiss on a 51-bit encoding certifies clean (pinned)" `Quick
      test_kiss_overflow_certification;
    Alcotest.test_case "instrument: same-timer nesting raises on the on path" `Quick
      test_timer_reentrancy_raises;
    Alcotest.test_case "instrument: off path has no reentrancy bookkeeping" `Quick
      test_timer_reentrancy_off_path;
    Alcotest.test_case "instrument: registries read out sorted by name" `Quick
      test_instrument_sorted_output;
    Alcotest.test_case "trace: json_escape round-trips control/quote/unicode" `Quick
      test_trace_json_escape;
    Alcotest.test_case "instrument: to_json escapes hostile names" `Quick
      test_instrument_json_escaping;
    Alcotest.test_case "trace: both exports round-trip attrs and validate" `Quick
      test_trace_export_attr_roundtrip;
    Alcotest.test_case "trace: two-domain concurrent emission stays well-formed" `Quick
      test_two_domain_hammer;
    Alcotest.test_case "trace: validator rejects malformed traces" `Quick test_validator_rejects;
    Alcotest.test_case "bench-diff: identical artifacts diff clean" `Quick
      test_bench_diff_identical;
    Alcotest.test_case "bench-diff: wall and size regressions flagged" `Quick
      test_bench_diff_regressions;
    Alcotest.test_case "bench-diff: dropped row is a regression, improvement is not" `Quick
      test_bench_diff_missing_row_and_improvement;
    Alcotest.test_case "bench-diff: schema mismatch refuses to compare" `Quick
      test_bench_diff_schema_mismatch;
    Alcotest.test_case "bench-diff: vanished gateable metric is a regression" `Quick
      test_bench_diff_vanished_metric;
    Alcotest.test_case "bench-diff: complexity metrics gate absolutely" `Quick
      test_bench_diff_complexity_gate;
    Alcotest.test_case "bench-diff: threshold is configurable" `Quick test_bench_diff_threshold;
  ]
