(* The certificate layer: every pipeline result on the benchmark suite
   must certify clean, every injected fault class must be caught, and
   the driver's claims must be non-vacuous where the encoders report
   satisfied constraints. *)

let check = Alcotest.(check bool)

let algorithms =
  [ Harness.Driver.Ihybrid; Harness.Driver.Igreedy; Harness.Driver.Iohybrid; Harness.Driver.Iexact ]

(* The pipeline budget only bounds effort (encoders degrade, ESPRESSO
   returns its best cover so far) — it never excuses an incorrect
   result, so certification must pass whatever the budget. *)
let report_of m algo =
  let budget = Budget.create ~max_work:200_000 ~deadline_ms:500.0 () in
  match Harness.Driver.report ~budget m algo with
  | Ok (o, r) -> (o, r)
  | Error err -> Alcotest.failf "report failed: %s" (Nova_error.to_string err)

let certify_one m algo =
  let o, r = report_of m algo in
  let cert = Harness.Certify.run m o r in
  if not cert.Check.ok then
    Alcotest.failf "%s under %s: %s" m.Fsm.name (Harness.Driver.name algo) (Check.summary cert);
  cert

(* --- tentpole acceptance: the whole suite certifies clean -------------- *)

let test_suite_certifies_light () =
  List.iter
    (fun e ->
      if not e.Benchmarks.Suite.heavy then
        let m = Lazy.force e.Benchmarks.Suite.machine in
        List.iter (fun algo -> ignore (certify_one m algo)) algorithms)
    Benchmarks.Suite.all

let test_suite_certifies_heavy () =
  List.iter
    (fun e ->
      if e.Benchmarks.Suite.heavy then
        let m = Lazy.force e.Benchmarks.Suite.machine in
        List.iter (fun algo -> ignore (certify_one m algo)) algorithms)
    Benchmarks.Suite.all

(* Regression pin: the seed benchmarks of test_pipeline certify clean,
   and the glue maps a clean certificate to no error. *)
let test_seed_benchmarks_pin () =
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      List.iter
        (fun algo ->
          let o, r = report_of m algo in
          let cert = Harness.Certify.run m o r in
          check (name ^ " certifies") true cert.Check.ok;
          check (name ^ " no error") true (Harness.Certify.error_of ~machine:name cert = None);
          check (name ^ " six checks") true (List.length cert.Check.checks = 6))
        algorithms)
    [ "lion"; "bbtas"; "shiftreg"; "modulo12" ]

(* --- claims are non-vacuous -------------------------------------------- *)

let test_claims_nonvacuous () =
  let m = Benchmarks.Suite.find "dk15" in
  let o, _ = report_of m Harness.Driver.Ihybrid in
  check "ihybrid claims faces" true (o.Harness.Driver.claims.Check.claimed_ics <> []);
  let o, _ = report_of m Harness.Driver.Iohybrid in
  check "iohybrid claims faces" true (o.Harness.Driver.claims.Check.claimed_ics <> []);
  let o, _ = report_of m Harness.Driver.One_hot in
  check "baselines claim nothing" true (o.Harness.Driver.claims = Check.no_claims)

(* --- fault-injection matrix -------------------------------------------- *)

(* Every fault class must be injectable on these machines (they all have
   inputs, outputs, spare code space is not required) and every injected
   fault must be caught. *)
let matrix_machines = [ "lion"; "dk15"; "train11" ]

let test_fault_matrix () =
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      let o, r = report_of m Harness.Driver.Ihybrid in
      let artifacts = Harness.Certify.artifacts_of o r in
      check (name ^ " baseline clean") true (Check.certify m artifacts).Check.ok;
      List.iter
        (fun fault ->
          match Check.Inject.apply m artifacts fault with
          | None ->
              Alcotest.failf "%s: fault class %s not injectable" name (Check.Inject.name fault)
          | Some mutated ->
              let cert = Check.certify m mutated in
              check
                (Printf.sprintf "%s/%s caught" name (Check.Inject.name fault))
                false cert.Check.ok)
        Check.Inject.all)
    matrix_machines

(* A machine with no outputs: corrupt-output is the one class that can
   be impossible, and the injector must say so rather than fabricate a
   non-fault. *)
let test_inject_impossible_class () =
  let m =
    Fsm.create ~name:"noout" ~num_inputs:1 ~num_outputs:0
      ~states:[| "a"; "b" |]
      ~transitions:
        [
          { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "" };
          { Fsm.input = "1"; src = Some 0; dst = Some 0; output = "" };
          { Fsm.input = "0"; src = Some 1; dst = Some 0; output = "" };
          { Fsm.input = "1"; src = Some 1; dst = Some 1; output = "" };
        ]
      ~reset:0 ()
  in
  let o, r = report_of m Harness.Driver.Igreedy in
  let artifacts = Harness.Certify.artifacts_of o r in
  check "no-output machine certifies" true (Check.certify m artifacts).Check.ok;
  check "corrupt-output impossible" true
    (Check.Inject.apply m artifacts Check.Inject.Corrupt_output = None);
  check "corrupt-next-state still possible" true
    (Check.Inject.apply m artifacts Check.Inject.Corrupt_next_state <> None)

(* --- short-circuit and error mapping ----------------------------------- *)

let test_structural_short_circuit () =
  let m = Benchmarks.Suite.find "lion" in
  let o, r = report_of m Harness.Driver.Ihybrid in
  let artifacts = Harness.Certify.artifacts_of o r in
  let dup = { artifacts with Check.codes = Array.map (fun _ -> 0) artifacts.Check.codes } in
  let cert = Check.certify m dup in
  check "fails" true (not cert.Check.ok);
  check "only structural checks ran" true (List.length cert.Check.checks = 2);
  match Harness.Certify.error_of ~machine:"lion" cert with
  | Some (Nova_error.Certification_failed { machine; failed }) ->
      check "machine name" true (machine = "lion");
      check "names injectivity" true (List.mem "injectivity" failed);
      check "exit code 6" true
        (Nova_error.exit_code (Nova_error.Certification_failed { machine; failed }) = 6)
  | _ -> Alcotest.fail "expected Certification_failed"

(* --- report plumbing ---------------------------------------------------- *)

let test_json_and_summary () =
  let m = Benchmarks.Suite.find "lion" in
  let o, r = report_of m Harness.Driver.Iexact in
  let cert = Harness.Certify.run m o r in
  let json = Check.to_json cert in
  check "json ok field" true
    (String.length json > 0 && String.sub json 0 10 = "{\"ok\":true");
  List.iter
    (fun id ->
      let needle = Printf.sprintf "\"name\":\"%s\"" (Check.check_name id) in
      let found =
        let nl = String.length needle and jl = String.length json in
        let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
        go 0
      in
      check (Check.check_name id ^ " in json") true found)
    Check.all_checks;
  check "summary says OK" true (cert.Check.ok && Check.summary cert = "certificate OK (6 checks)")

let test_inject_name_roundtrip () =
  List.iter
    (fun f ->
      check (Check.Inject.name f ^ " roundtrips") true
        (Check.Inject.of_name (Check.Inject.name f) = Some f))
    Check.Inject.all;
  check "unknown name" true (Check.Inject.of_name "no-such-fault" = None)

(* --- loud fallback ladder ---------------------------------------------- *)

let test_degradation_warning () =
  let m = Benchmarks.Suite.find "dk16" in
  let budget = Budget.create ~max_work:10 () in
  (match Harness.Driver.encode ~budget m Harness.Driver.Iexact with
  | Error err -> Alcotest.failf "encode failed: %s" (Nova_error.to_string err)
  | Ok o ->
      check "degraded" true (o.Harness.Driver.degradations <> []);
      (match Harness.Driver.degradation_warning o with
      | None -> Alcotest.fail "expected a warning for a degraded outcome"
      | Some w ->
          check "warning names the algorithm" true
            (String.length w > 0
            && String.sub w 0 13 = "nova: warning"
            &&
            let has needle =
              let nl = String.length needle and wl = String.length w in
              let rec go i = i + nl <= wl && (String.sub w i nl = needle || go (i + 1)) in
              go 0
            in
            has "iexact" && has "degraded to")));
  match Harness.Driver.encode m Harness.Driver.Ihybrid with
  | Error err -> Alcotest.failf "encode failed: %s" (Nova_error.to_string err)
  | Ok o -> check "no warning when primary rung wins" true (Harness.Driver.degradation_warning o = None)

let suite =
  [
    Alcotest.test_case "suite certifies (light machines, 4 algorithms)" `Quick
      test_suite_certifies_light;
    Alcotest.test_case "suite certifies (heavy machines, 4 algorithms)" `Slow
      test_suite_certifies_heavy;
    Alcotest.test_case "seed-benchmark certification pin" `Quick test_seed_benchmarks_pin;
    Alcotest.test_case "encoder claims are non-vacuous" `Quick test_claims_nonvacuous;
    Alcotest.test_case "fault-injection matrix (9 classes x 3 machines)" `Quick test_fault_matrix;
    Alcotest.test_case "impossible fault class reported as None" `Quick
      test_inject_impossible_class;
    Alcotest.test_case "structural failure short-circuits" `Quick test_structural_short_circuit;
    Alcotest.test_case "json and summary rendering" `Quick test_json_and_summary;
    Alcotest.test_case "fault names round-trip" `Quick test_inject_name_roundtrip;
    Alcotest.test_case "fallback degradation is loud" `Quick test_degradation_warning;
  ]
