(* Randomized differential tests for the encoding pipeline.

   Random small machines come from [Benchmarks.Generator]; every
   encoding algorithm must produce an injective assignment whose
   ESPRESSO-minimized implementation simulates the symbolic machine
   exactly ([Simulate.check_encoding] checks every state under every
   input minterm), and the face constraints an algorithm reports as
   satisfied must actually pass [Constraints.satisfied]. *)

let check = Alcotest.(check bool)

let encode_exn m algo =
  match Harness.Driver.encode m algo with
  | Ok o -> o.Harness.Driver.encoding
  | Error e -> Alcotest.failf "encode failed: %s" (Nova_error.to_string e)

let machines =
  List.concat_map
    (fun seed ->
      [
        Benchmarks.Generator.generate
          ~name:(Printf.sprintf "gen_s%d_a" seed)
          ~num_inputs:2 ~num_outputs:2 ~num_states:4 ~num_rows:12 ~seed;
        Benchmarks.Generator.generate
          ~name:(Printf.sprintf "gen_s%d_b" seed)
          ~num_inputs:3 ~num_outputs:2 ~num_states:6 ~num_rows:18 ~seed;
        Benchmarks.Generator.generate
          ~name:(Printf.sprintf "gen_s%d_c" seed)
          ~num_inputs:2 ~num_outputs:3 ~num_states:8 ~num_rows:24 ~seed;
      ])
    [ 11; 23; 37; 58 ]

let injective (e : Encoding.t) =
  let n = Encoding.num_states e in
  let codes = List.init n (Encoding.code e) in
  List.length (List.sort_uniq compare codes) = n

let check_equivalent name m e =
  match Simulate.check_encoding m e with
  | Simulate.Equivalent -> ()
  | Simulate.Mismatch { state; input; detail } ->
      Alcotest.failf "%s: mismatch in state %d under input %s: %s" name state input detail

(* Every algorithm, through the same driver the CLI and harness use. *)
let test_trace_equivalence () =
  let algos =
    [ Harness.Driver.Ihybrid; Harness.Driver.Igreedy; Harness.Driver.Iohybrid ]
  in
  List.iter
    (fun (m : Fsm.t) ->
      List.iter
        (fun algo ->
          let name = Printf.sprintf "%s/%s" m.Fsm.name (Harness.Driver.name algo) in
          let e = encode_exn m algo in
          check (name ^ " injective") true (injective e);
          check_equivalent name m e)
        algos;
      (* The exact search is exponential in the number of states: keep it
         to the small machines. *)
      if Fsm.num_states ~m <= 6 then begin
        let name = m.Fsm.name ^ "/iexact" in
        let e = encode_exn m Harness.Driver.Iexact in
        check (name ^ " injective") true (injective e);
        check_equivalent name m e
      end)
    machines

(* The satisfied/unsatisfied split reported by the heuristics must be
   honest: everything in [satisfied] passes [Constraints.satisfied], and
   iexact satisfies every constraint outright. *)
let test_reported_constraints_hold () =
  List.iter
    (fun (m : Fsm.t) ->
      let n = Fsm.num_states ~m in
      let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
      let ih = Ihybrid.ihybrid_code ~num_states:n ics in
      List.iter
        (fun (ic : Constraints.input_constraint) ->
          check
            (m.Fsm.name ^ "/ihybrid reported-satisfied holds")
            true
            (Constraints.satisfied ih.Ihybrid.encoding ic.Constraints.states))
        ih.Ihybrid.satisfied;
      let ig = Igreedy.igreedy_code ~num_states:n ics in
      List.iter
        (fun (ic : Constraints.input_constraint) ->
          check
            (m.Fsm.name ^ "/igreedy reported-satisfied holds")
            true
            (Constraints.satisfied ig.Igreedy.encoding ic.Constraints.states))
        ig.Igreedy.satisfied;
      let io = Iohybrid.iohybrid_code (Symbmin.run (Symbolic.of_fsm m)).Symbmin.problem in
      List.iter
        (fun (ic : Constraints.input_constraint) ->
          check
            (m.Fsm.name ^ "/iohybrid reported-satisfied holds")
            true
            (Constraints.satisfied io.Iohybrid.encoding ic.Constraints.states))
        io.Iohybrid.sat_inputs;
      if n <= 6 then
        match Iexact.iexact_code ~num_states:n (List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics) with
        | Iexact.Sat { k; codes; _ } ->
            let e = Encoding.make ~nbits:k codes in
            List.iter
              (fun (ic : Constraints.input_constraint) ->
                check (m.Fsm.name ^ "/iexact satisfies every constraint") true
                  (Constraints.satisfied e ic.Constraints.states))
              ics
        | Iexact.Exhausted -> Alcotest.failf "%s: iexact exhausted on a tiny machine" m.Fsm.name)
    machines

(* The partition reported by ihybrid/igreedy covers exactly the input
   constraint list (no constraint silently dropped). *)
let test_reported_partition_complete () =
  List.iter
    (fun (m : Fsm.t) ->
      let n = Fsm.num_states ~m in
      let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
      let total = List.length ics in
      let ih = Ihybrid.ihybrid_code ~num_states:n ics in
      Alcotest.(check int)
        (m.Fsm.name ^ "/ihybrid partitions the constraints")
        total
        (List.length ih.Ihybrid.satisfied + List.length ih.Ihybrid.unsatisfied);
      let ig = Igreedy.igreedy_code ~num_states:n ics in
      Alcotest.(check int)
        (m.Fsm.name ^ "/igreedy partitions the constraints")
        total
        (List.length ig.Igreedy.satisfied + List.length ig.Igreedy.unsatisfied))
    machines

let suite =
  [
    Alcotest.test_case "random machines: encode+minimize simulates the FSM" `Quick
      test_trace_equivalence;
    Alcotest.test_case "reported-satisfied constraints actually hold" `Quick
      test_reported_constraints_hold;
    Alcotest.test_case "satisfied+unsatisfied partition the constraint list" `Quick
      test_reported_partition_complete;
  ]
