(* Tests for the embedding engine's level policies and the ablation
   drivers. *)

let check = Alcotest.(check bool)

let groups strs = List.map Bitvec.of_string strs

let solve ?(policy = Embed.Fixed_min) ?(ocs = []) ~n ~k gs =
  let poset = Input_poset.build ~num_states:n gs in
  Embed.solve poset
    {
      Embed.k;
      policy;
      budget = Budget.create ~max_work:200_000 ();
      output_constraints = ocs;
    }

let test_flexible_superset_of_fixed () =
  (* Anything Fixed_min solves, Flexible 0 solves too (same space). *)
  let gs = groups [ "1100"; "0011" ] in
  (match solve ~n:4 ~k:2 gs with
  | Embed.Sat _ -> ()
  | Embed.Unsat | Embed.Exhausted -> Alcotest.fail "fixed_min should solve");
  match solve ~policy:(Embed.Flexible 0) ~n:4 ~k:2 gs with
  | Embed.Sat _ -> ()
  | Embed.Unsat | Embed.Exhausted -> Alcotest.fail "flexible 0 should solve"

let test_flexible_finds_bigger_faces () =
  (* A constraint of cardinality 3 needs a level-2 face; at k = 3 with
     another overlapping triple, minimum levels may clash while a bigger
     face works. At minimum we check Flexible never does worse on the
     paper's instance. *)
  let paper =
    groups [ "1110000"; "0111000"; "0000111"; "1000110"; "0000011"; "0011000" ]
  in
  match solve ~policy:(Embed.Flexible 1) ~n:7 ~k:4 paper with
  | Embed.Sat { codes; _ } ->
      let e = Encoding.make ~nbits:4 codes in
      check "all satisfied" true (List.for_all (fun g -> Constraints.satisfied e g) paper)
  | Embed.Unsat | Embed.Exhausted -> Alcotest.fail "flexible should solve the paper instance"

let test_dimvect_respects_levels () =
  (* Force the single primary constraint to a level-2 face at k = 3: the
     group of two states then spans a 4-vertex face. *)
  let gs = groups [ "1100" ] in
  let poset = Input_poset.build ~num_states:4 gs in
  let id =
    match Input_poset.find poset (Bitvec.of_string "1100") with
    | Some id -> id
    | None -> Alcotest.fail "constraint missing"
  in
  let dimvect = Array.make (Array.length poset.Input_poset.elements) 0 in
  dimvect.(id) <- 2;
  match
    Embed.solve poset
      {
        Embed.k = 3;
        policy = Embed.Dimvect dimvect;
        budget = Budget.create ~max_work:100_000 ();
        output_constraints = [];
      }
  with
  | Embed.Sat { faces; _ } ->
      Alcotest.(check int) "level-2 face used" 2 (Face.level 3 faces.(id))
  | Embed.Unsat | Embed.Exhausted -> Alcotest.fail "dimvect solve failed"

let test_budget_shared () =
  let gs = groups [ "110000"; "011000"; "001100"; "000110"; "000011" ] in
  let poset = Input_poset.build ~num_states:6 gs in
  let budget = Budget.create ~max_work:1_000_000 () in
  let run () =
    ignore
      (Embed.solve poset
         {
           Embed.k = 3;
           policy = Embed.Fixed_min;
           budget;
           output_constraints = [];
         })
  in
  run ();
  let after_one = Budget.spent budget in
  run ();
  check "budget work accumulates across calls" true
    (Budget.spent budget > after_one && after_one > 0)

let test_budget_zero_exhausts () =
  let gs = groups [ "1100" ] in
  let poset = Input_poset.build ~num_states:4 gs in
  match
    Embed.solve poset
      {
        Embed.k = 2;
        policy = Embed.Fixed_min;
        budget = Budget.create ~max_work:0 ();
        output_constraints = [];
      }
  with
  | Embed.Exhausted -> ()
  | Embed.Sat _ | Embed.Unsat -> Alcotest.fail "zero budget must exhaust"

let test_ablations_smoke () =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Harness.Ablations.symbmin_order ~quick:true ppf ();
  Harness.Ablations.code_length ~quick:true ppf ();
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check "order ablation printed" true (String.length out > 200);
  let contains needle =
    let n = String.length needle and h = String.length out in
    let rec loop i = i + n <= h && (String.sub out i n = needle || loop (i + 1)) in
    loop 0
  in
  check "has largest column" true (contains "largest:ub");
  check "has code-length sweep" true (contains "+3:area")

let suite =
  [
    Alcotest.test_case "flexible subsumes fixed" `Quick test_flexible_superset_of_fixed;
    Alcotest.test_case "flexible on paper instance" `Quick test_flexible_finds_bigger_faces;
    Alcotest.test_case "dimvect respects levels" `Quick test_dimvect_respects_levels;
    Alcotest.test_case "budget shared across calls" `Quick test_budget_shared;
    Alcotest.test_case "zero budget exhausts" `Quick test_budget_zero_exhausts;
    Alcotest.test_case "ablations smoke" `Quick test_ablations_smoke;
  ]
