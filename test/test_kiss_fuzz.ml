(* Fuzzing the KISS2 parser: whatever bytes arrive, [Kiss.parse_result]
   must return [Ok] or a located [Error] — never let an exception
   escape, never crash. Mutations are seeded from real machines so the
   fuzz walks the interesting boundary between valid and broken input
   rather than pure noise. *)

let valid_text () = Kiss.to_string (Benchmarks.Suite.find "lion")

(* [Ok _ | Error _] without raising; errors must carry a sane location
   (line 0 is the "whole file" pseudo-location used for missing
   declarations). *)
let parses_totally text =
  match Kiss.parse_result ~name:"fuzz" ~file:"fuzz.kiss2" text with
  | Ok _ -> true
  | Error { Kiss.line; col; msg; _ } ->
      let lines = List.length (String.split_on_char '\n' text) in
      line >= 0 && line <= lines && col >= 0 && msg <> ""
  | exception e ->
      Printf.eprintf "escaped exception: %s\n" (Printexc.to_string e);
      false

let gen_garbage =
  QCheck.string_gen_of_size (QCheck.Gen.int_bound 400) QCheck.Gen.printable

let prop_garbage_never_raises =
  QCheck.Test.make ~name:"garbage input yields Ok or located Error" ~count:500 gen_garbage
    parses_totally

let gen_bytes =
  QCheck.string_gen_of_size (QCheck.Gen.int_bound 400) QCheck.Gen.char

let prop_bytes_never_raises =
  QCheck.Test.make ~name:"arbitrary bytes yield Ok or located Error" ~count:500 gen_bytes
    parses_totally

let prop_truncation_never_raises =
  QCheck.Test.make ~name:"every truncation of a valid file is handled" ~count:1
    QCheck.unit
    (fun () ->
      let text = valid_text () in
      let ok = ref true in
      for len = 0 to String.length text do
        if not (parses_totally (String.sub text 0 len)) then ok := false
      done;
      !ok)

let prop_mutation_never_raises =
  QCheck.Test.make ~name:"single-byte mutations of a valid file are handled" ~count:500
    QCheck.(pair small_nat printable_char)
    (fun (pos, ch) ->
      let text = valid_text () in
      let text = Bytes.of_string text in
      let pos = pos mod Bytes.length text in
      Bytes.set text pos ch;
      parses_totally (Bytes.to_string text))

let prop_line_deletion_never_raises =
  QCheck.Test.make ~name:"dropping any one line of a valid file is handled" ~count:1
    QCheck.unit
    (fun () ->
      let lines = String.split_on_char '\n' (valid_text ()) in
      List.for_all
        (fun drop ->
          let kept = List.filteri (fun i _ -> i <> drop) lines in
          parses_totally (String.concat "\n" kept))
        (List.init (List.length lines) (fun i -> i)))

(* Regressions surfaced while auditing the parser for the fuzz suite. *)

let test_crlf_roundtrip () =
  let crlf =
    String.concat "\r\n" (String.split_on_char '\n' (valid_text ()))
  in
  match Kiss.parse_result ~name:"crlf" crlf with
  | Ok m -> Alcotest.(check int) "same states" 4 (Fsm.num_states ~m)
  | Error e -> Alcotest.failf "CRLF file rejected: %s" (Kiss.error_to_string e)

let test_error_locations () =
  let expect_error text pred =
    match Kiss.parse_result ~name:"loc" text with
    | Ok _ -> Alcotest.fail "expected a parse error"
    | Error e ->
        if not (pred e) then Alcotest.failf "unexpected location: %s" (Kiss.error_to_string e)
  in
  expect_error ".i\n.o 1\n0 a b 1\n" (fun e -> e.Kiss.line = 1);
  expect_error ".i 1\n.o 1\n0 a b\n" (fun e -> e.Kiss.line = 3);
  expect_error ".i 1\n.o bogus\n0 a b 1\n" (fun e -> e.Kiss.line = 2 && e.Kiss.col = 4);
  expect_error "0 a b 1\n" (fun e -> e.Kiss.line = 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_garbage_never_raises;
    QCheck_alcotest.to_alcotest prop_bytes_never_raises;
    QCheck_alcotest.to_alcotest prop_truncation_never_raises;
    QCheck_alcotest.to_alcotest prop_mutation_never_raises;
    QCheck_alcotest.to_alcotest prop_line_deletion_never_raises;
    Alcotest.test_case "CRLF files parse" `Quick test_crlf_roundtrip;
    Alcotest.test_case "error locations are precise" `Quick test_error_locations;
  ]
