let () =
  (* The driver's degradation warnings are exercised (and asserted on)
     explicitly; keep them from spraying the test log. *)
  Harness.Driver.quiet := true;
  Exec.Supervise.quiet := true;
  Alcotest.run "nova"
    [
      ("bitvec", Test_bitvec.suite);
      ("logic", Test_logic.suite);
      ("espresso", Test_espresso.suite);
      ("fsm", Test_fsm.suite);
      ("constraints", Test_constraints.suite);
      ("nova-embed", Test_nova_embed.suite);
      ("nova-algos", Test_nova_algos.suite);
      ("symbmin", Test_symbmin.suite);
      ("baselines", Test_baselines.suite);
      ("multilevel", Test_multilevel.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("harness", Test_harness.suite);
      ("integration", Test_integration.suite);
      ("reduce-states", Test_reduce_states.suite);
      ("simulate", Test_simulate.suite);
      ("face-props", Test_face_props.suite);
      ("export", Test_export.suite);
      ("logic-bruteforce", Test_logic_bruteforce.suite);
      ("embed-policies", Test_embed_policies.suite);
      ("driver", Test_driver.suite);
      ("symbolic-details", Test_symbolic_details.suite);
      ("roundtrips", Test_roundtrips.suite);
      ("espresso-differential", Test_espresso_differential.suite);
      ("encode-differential", Test_encode_differential.suite);
      ("regression-counts", Test_regression_counts.suite);
      ("pipeline", Test_pipeline.suite);
      ("check", Test_check.suite);
      ("kiss-fuzz", Test_kiss_fuzz.suite);
      ("exec", Test_exec.suite);
      ("chaos", Test_chaos.suite);
      ("trace", Test_trace.suite);
      ("scaling", Test_scaling.suite);
      ("metrics", Test_metrics.suite);
      ("serve", Test_serve.suite);
    ]
