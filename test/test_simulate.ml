(* Tests for the simulation / equivalence-checking substrate. *)

let check = Alcotest.(check bool)

let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output }

let toggler =
  Fsm.create ~name:"toggler" ~num_inputs:1 ~num_outputs:1
    ~states:[| "off"; "on" |]
    ~transitions:[ t "1" 0 1 "0"; t "0" 0 0 "0"; t "1" 1 0 "1"; t "0" 1 1 "1" ]
    ~reset:0 ()

let test_run_trace () =
  let steps = Simulate.run toggler ~from:0 [ "1"; "0"; "1"; "1" ] in
  Alcotest.(check int) "four steps" 4 (List.length steps);
  let states = List.map (fun (s : Simulate.step) -> s.Simulate.state_after) steps in
  Alcotest.(check (list (option int))) "state sequence"
    [ Some 1; Some 1; Some 0; Some 1 ]
    states;
  let outs = List.map (fun (s : Simulate.step) -> s.Simulate.outputs) steps in
  Alcotest.(check (list string)) "outputs" [ "0"; "1"; "1"; "0" ] outs

let test_run_stops_on_unspecified () =
  let holey =
    Fsm.create ~name:"holey" ~num_inputs:1 ~num_outputs:1
      ~states:[| "a"; "b" |]
      ~transitions:[ t "0" 0 1 "1" (* nothing from b, nothing under 1 *) ]
      ()
  in
  let steps = Simulate.run holey ~from:0 [ "0"; "0"; "0" ] in
  Alcotest.(check int) "stops after the hole" 2 (List.length steps);
  match List.rev steps with
  | last :: _ -> check "last step unspecified" true (last.Simulate.state_after = None)
  | [] -> Alcotest.fail "no steps"

let test_random_trace_shape () =
  let rng = Random.State.make [| 1 |] in
  let trace = Simulate.random_trace rng toggler ~length:7 in
  Alcotest.(check int) "length" 7 (List.length trace);
  check "fully specified" true
    (List.for_all (fun s -> String.for_all (fun c -> c = '0' || c = '1') s) trace)

let test_check_encoding_ok () =
  check "toggler 1-bit encoding" true
    (Simulate.check_encoding toggler (Encoding.make ~nbits:1 [| 0; 1 |]) = Simulate.Equivalent);
  check "toggler swapped" true
    (Simulate.check_encoding toggler (Encoding.make ~nbits:1 [| 1; 0 |]) = Simulate.Equivalent)

let test_check_encoding_benchmarks () =
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      let n = Fsm.num_states ~m in
      let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
      let e = (Ihybrid.ihybrid_code ~num_states:n ics).Ihybrid.encoding in
      check (name ^ " equivalent") true (Simulate.check_encoding m e = Simulate.Equivalent))
    [ "lion"; "bbtas"; "dk15" ]

let test_check_sampled () =
  let m = Benchmarks.Suite.find "beecount" in
  let n = Fsm.num_states ~m in
  let e = Encoding.one_hot n in
  let rng = Random.State.make [| 9 |] in
  check "sampled equivalent" true
    (Simulate.check_encoding_sampled rng m e ~traces:10 ~length:12 = Simulate.Equivalent)

let test_check_detects_bad_pla () =
  (* Deliberately corrupt: claim equivalence against a machine whose
     outputs we flipped — build a machine m2 that differs and check m2's
     table against m1's implementation by abusing the API: encode m2 but
     evaluate traces of m1. Easiest honest check: the verdict type
     carries the offending state/input. *)
  let broken =
    Fsm.create ~name:"broken" ~num_inputs:1 ~num_outputs:1
      ~states:[| "off"; "on" |]
      ~transitions:[ t "1" 0 1 "1" (* wrong output *); t "0" 0 0 "0"; t "1" 1 0 "1"; t "0" 1 1 "1" ]
      ~reset:0 ()
  in
  (* encode broken, then check the ORIGINAL toggler's table against it by
     constructing the encoded implementation of broken and evaluating
     toggler's rows: simulate via check on a hybrid — simplest is to
     verify the two machines disagree somewhere through Simulate.run. *)
  let s1 = Simulate.run toggler ~from:0 [ "1" ] in
  let s2 = Simulate.run broken ~from:0 [ "1" ] in
  check "machines disagree on outputs" true
    (List.map (fun (s : Simulate.step) -> s.Simulate.outputs) s1
    <> List.map (fun (s : Simulate.step) -> s.Simulate.outputs) s2)

let prop_all_benchmark_encodings_equivalent =
  QCheck.Test.make ~name:"random encodings implement generated machines" ~count:30
    QCheck.(pair (int_bound 10_000) (int_range 3 8))
    (fun (seed, ns) ->
      let m =
        Benchmarks.Generator.generate ~name:"sim" ~num_inputs:2 ~num_outputs:2 ~num_states:ns
          ~num_rows:(3 * ns) ~seed
      in
      let rng = Random.State.make [| seed; 5 |] in
      let nbits = Fsm.min_code_length m in
      let e = Encoding.random rng ~num_states:ns ~nbits in
      Simulate.check_encoding m e = Simulate.Equivalent)

(* --- don't-care policy audit (see simulate.mli) ------------------------ *)

(* A present-state '*' row applies in every state, including states with
   no rows of their own. *)
let test_star_rows () =
  let star =
    Fsm.create ~name:"star" ~num_inputs:1 ~num_outputs:1
      ~states:[| "a"; "b"; "c" |]
      ~transitions:
        [
          { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "0" };
          { Fsm.input = "1"; src = None; dst = Some 2; output = "1" };
        ]
      ~reset:0 ()
  in
  check "star-row machine equivalent" true
    (Simulate.check_encoding star (Encoding.make ~nbits:2 [| 0; 1; 2 |]) = Simulate.Equivalent)

(* dst = None frees the whole next-state field: any implementation value
   there must be accepted. *)
let test_unspecified_next_state () =
  let holey =
    Fsm.create ~name:"holey" ~num_inputs:1 ~num_outputs:1
      ~states:[| "a"; "b" |]
      ~transitions:
        [
          { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "1" };
          { Fsm.input = "1"; src = Some 0; dst = None; output = "0" };
          { Fsm.input = "0"; src = Some 1; dst = Some 0; output = "0" };
        ]
      ~reset:0 ()
  in
  check "unspecified next state is free" true
    (Simulate.check_encoding holey (Encoding.make ~nbits:1 [| 0; 1 |]) = Simulate.Equivalent)

(* Zero outputs: only the next codes are compared. *)
let test_zero_output_machine () =
  let noout =
    Fsm.create ~name:"noout" ~num_inputs:1 ~num_outputs:0
      ~states:[| "a"; "b" |]
      ~transitions:
        [
          { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "" };
          { Fsm.input = "1"; src = Some 0; dst = Some 0; output = "" };
          { Fsm.input = "0"; src = Some 1; dst = Some 0; output = "" };
          { Fsm.input = "1"; src = Some 1; dst = Some 1; output = "" };
        ]
      ~reset:0 ()
  in
  check "zero-output machine equivalent" true
    (Simulate.check_encoding noout (Encoding.make ~nbits:1 [| 0; 1 |]) = Simulate.Equivalent)

(* Unreachable states are still checked: corrupt the implementation in
   the unreachable state's region and the exhaustive check must see it,
   even though no trace from reset ever gets there. *)
let unreachable_machine out_c =
  Fsm.create ~name:"unreach" ~num_inputs:1 ~num_outputs:1
    ~states:[| "a"; "b"; "c" |]
    ~transitions:
      [
        { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "0" };
        { Fsm.input = "1"; src = Some 0; dst = Some 0; output = "0" };
        { Fsm.input = "0"; src = Some 1; dst = Some 0; output = "0" };
        { Fsm.input = "1"; src = Some 1; dst = Some 1; output = "0" };
        (* state c is unreachable from reset, but its row is specified *)
        { Fsm.input = "0"; src = Some 2; dst = Some 0; output = out_c };
        { Fsm.input = "1"; src = Some 2; dst = Some 2; output = out_c };
      ]
    ~reset:0 ()

let test_unreachable_states_checked () =
  let m = unreachable_machine "1" in
  let e = Encoding.make ~nbits:2 [| 0; 1; 2 |] in
  check "correct implementation passes" true (Simulate.check_encoding m e = Simulate.Equivalent);
  (* Implement a machine that differs only in the unreachable state's
     output, then check the ORIGINAL table against that cover. *)
  let wrong = unreachable_machine "0" in
  let enc = Encoded.build m e in
  let wrong_cover = Encoded.minimize (Encoded.build wrong e) in
  match Simulate.check_cover enc wrong_cover with
  | Simulate.Mismatch { state; _ } ->
      Alcotest.(check int) "mismatch is in the unreachable state" 2 state
  | Simulate.Equivalent -> Alcotest.fail "corruption of an unreachable state went unnoticed"

(* check_cover takes the artifact as given: a cover missing a cube must
   be reported even though re-minimizing would mask the damage. *)
let test_check_cover_takes_artifact () =
  let e = Encoding.make ~nbits:1 [| 0; 1 |] in
  let enc = Encoded.build toggler e in
  let full = Encoded.minimize enc in
  check "full cover equivalent" true (Simulate.check_cover enc full = Simulate.Equivalent);
  match full.Logic.Cover.cubes with
  | [] -> Alcotest.fail "empty minimized cover"
  | _ :: rest ->
      let damaged = Logic.Cover.make full.Logic.Cover.dom rest in
      check "dropped cube detected" true (Simulate.check_cover enc damaged <> Simulate.Equivalent)

let suite =
  [
    Alcotest.test_case "run trace" `Quick test_run_trace;
    Alcotest.test_case "star rows apply everywhere" `Quick test_star_rows;
    Alcotest.test_case "unspecified next state is free" `Quick test_unspecified_next_state;
    Alcotest.test_case "zero-output machines compare next codes" `Quick test_zero_output_machine;
    Alcotest.test_case "unreachable states still checked" `Quick test_unreachable_states_checked;
    Alcotest.test_case "check_cover verifies the given artifact" `Quick
      test_check_cover_takes_artifact;
    Alcotest.test_case "run stops on unspecified" `Quick test_run_stops_on_unspecified;
    Alcotest.test_case "random trace shape" `Quick test_random_trace_shape;
    Alcotest.test_case "check_encoding ok" `Quick test_check_encoding_ok;
    Alcotest.test_case "check_encoding on benchmarks" `Quick test_check_encoding_benchmarks;
    Alcotest.test_case "check sampled" `Quick test_check_sampled;
    Alcotest.test_case "detects behavioural difference" `Quick test_check_detects_bad_pla;
    QCheck_alcotest.to_alcotest prop_all_benchmark_encodings_equivalent;
  ]
