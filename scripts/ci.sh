#!/bin/sh
# CI entry point: build everything, run the full test suite (unit +
# property + randomized differential), smoke the CLI's exit-code
# contract, certify suite machines with the independent checker (and
# prove the checker catches injected faults), stress the
# deadline/fallback path on a large generated machine, then smoke the
# benchmark JSON emitters.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest --force

echo "== CLI smoke: exit codes =="
NOVA=_build/default/bin/nova_cli.exe
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

$NOVA encode -a iexact test/cli/good.kiss2 > /dev/null
echo "  encode success: exit 0 ok"

rc=0; $NOVA encode test/cli/truncated.kiss2 > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "parse error: expected exit 2, got $rc"; exit 1; }
echo "  parse error: exit 2 ok"

rc=0; $NOVA encode -a iexact --max-work 10 --no-fallback test/cli/good.kiss2 \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "budget exhausted: expected exit 3, got $rc"; exit 1; }
echo "  budget exhausted (--no-fallback): exit 3 ok"

# Same budget with the fallback ladder enabled must succeed.
$NOVA encode -a iexact --max-work 10 test/cli/good.kiss2 > /dev/null 2>/dev/null
echo "  budget exhausted + fallback: exit 0 ok"

echo "== certify smoke: suite machines under the independent checker =="
for machine in lion dk16; do
  $NOVA encode -a ihybrid --certify "$machine" > /dev/null
  echo "  certify $machine (ihybrid): exit 0 ok"
done

echo "== fault-injection smoke: injected faults must exit 6 =="
for fault in duplicate-code drop-cube bogus-ic-claim; do
  rc=0; $NOVA encode -a ihybrid --certify --inject "$fault" lion \
    > /dev/null 2>&1 || rc=$?
  [ "$rc" -eq 6 ] || { echo "inject $fault: expected exit 6, got $rc"; exit 1; }
  echo "  inject $fault: exit 6 ok"
done

echo "== deadline stress: 50ms budget on a large generated machine =="
$NOVA gen -s 80 -p 400 -i 8 -o 8 > "$TMP/big.kiss2"
# Must terminate promptly (the fallback ladder catches the deadline) —
# a hang here is a pipeline bug, so hard-cap the run.
timeout 10 $NOVA encode -a iexact --budget-ms 50 "$TMP/big.kiss2" > /dev/null 2>/dev/null
echo "  deadline run terminated via fallback: exit 0 ok"

echo "== bench smoke (quick espresso kernels) =="
dune exec bench/main.exe -- --quick espresso

echo "== bench smoke (quick pipeline) =="
dune exec bench/main.exe -- --quick pipeline

echo "== bench smoke (quick certification) =="
dune exec bench/main.exe -- --quick check

echo "CI OK"
