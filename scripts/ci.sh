#!/bin/sh
# CI entry point: build everything, run the full test suite (unit +
# property + randomized differential), then smoke the ESPRESSO kernel
# benchmark so BENCH_espresso.json generation stays healthy.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest --force

echo "== bench smoke (quick espresso kernels) =="
dune exec bench/main.exe -- --quick espresso

echo "CI OK"
