#!/bin/sh
# CI entry point: build everything, run the full test suite (unit +
# property + randomized differential), smoke the CLI's exit-code
# contract, certify suite machines with the independent checker (and
# prove the checker catches injected faults), stress the
# deadline/fallback path on a large generated machine, then smoke the
# benchmark JSON emitters.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build @all

echo "== tests =="
dune runtest --force

echo "== CLI smoke: exit codes =="
NOVA=_build/default/bin/nova_cli.exe
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

$NOVA encode -a iexact test/cli/good.kiss2 > /dev/null
echo "  encode success: exit 0 ok"

rc=0; $NOVA encode test/cli/truncated.kiss2 > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 2 ] || { echo "parse error: expected exit 2, got $rc"; exit 1; }
echo "  parse error: exit 2 ok"

rc=0; $NOVA encode -a iexact --max-work 10 --no-fallback test/cli/good.kiss2 \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 3 ] || { echo "budget exhausted: expected exit 3, got $rc"; exit 1; }
echo "  budget exhausted (--no-fallback): exit 3 ok"

# Same budget with the fallback ladder enabled must succeed.
$NOVA encode -a iexact --max-work 10 test/cli/good.kiss2 > /dev/null 2>/dev/null
echo "  budget exhausted + fallback: exit 0 ok"

echo "== certify smoke: suite machines under the independent checker =="
for machine in lion dk16; do
  $NOVA encode -a ihybrid --certify "$machine" > /dev/null
  echo "  certify $machine (ihybrid): exit 0 ok"
done

echo "== fault-injection smoke: injected faults must exit 6 =="
for fault in duplicate-code drop-cube bogus-ic-claim; do
  rc=0; $NOVA encode -a ihybrid --certify --inject "$fault" lion \
    > /dev/null 2>&1 || rc=$?
  [ "$rc" -eq 6 ] || { echo "inject $fault: expected exit 6, got $rc"; exit 1; }
  echo "  inject $fault: exit 6 ok"
done

echo "== deadline stress: 50ms budget on a large generated machine =="
$NOVA gen -s 80 -p 400 -i 8 -o 8 > "$TMP/big.kiss2"
# Must terminate promptly (the fallback ladder catches the deadline) —
# a hang here is a pipeline bug, so hard-cap the run.
timeout 10 $NOVA encode -a iexact --budget-ms 50 "$TMP/big.kiss2" > /dev/null 2>/dev/null
echo "  deadline run terminated via fallback: exit 0 ok"

echo "== parallel smoke: --jobs 2 must match --jobs 1 bit for bit =="
$NOVA report --jobs 1 --no-cache lion dk15 bbara > "$TMP/report-j1.txt" 2>/dev/null
$NOVA report --jobs 2 --no-cache lion dk15 bbara > "$TMP/report-j2.txt" 2>/dev/null
diff "$TMP/report-j1.txt" "$TMP/report-j2.txt" \
  || { echo "parallel report differs from sequential"; exit 1; }
echo "  report --jobs 2 bit-identical to --jobs 1: ok"

echo "== cache smoke: warm run must hit and match the cold run =="
$NOVA report --cache "$TMP/cache" lion dk15 > "$TMP/report-cold.txt" 2>/dev/null
$NOVA report --cache "$TMP/cache" lion dk15 > "$TMP/report-warm.txt" 2> "$TMP/warm-stderr.txt"
diff "$TMP/report-cold.txt" "$TMP/report-warm.txt" \
  || { echo "warm-cache report differs from cold"; exit 1; }
grep -q "cache: [1-9][0-9]* hits" "$TMP/warm-stderr.txt" \
  || { echo "warm run produced no cache hits"; cat "$TMP/warm-stderr.txt"; exit 1; }
echo "  cache round-trip: warm hits, identical report: ok"

echo "== cache smoke: a corrupt entry is rejected and recomputed =="
for entry in "$TMP/cache"/*.nova-cache; do
  printf 'garbage\n' > "$entry"
  break
done
$NOVA report --cache "$TMP/cache" lion dk15 > "$TMP/report-corrupt.txt" 2> "$TMP/corrupt-stderr.txt" \
  || { echo "corrupt cache entry crashed the report"; exit 1; }
diff "$TMP/report-cold.txt" "$TMP/report-corrupt.txt" \
  || { echo "report after cache corruption differs"; exit 1; }
grep -q "1 rejected" "$TMP/corrupt-stderr.txt" \
  || { echo "corrupt entry was not rejected"; cat "$TMP/corrupt-stderr.txt"; exit 1; }
echo "  corrupt entry rejected, recomputed, exit 0: ok"

echo "== chaos smoke: absorbed schedule must be invisible on stdout =="
# Faults at every layer, few enough that retries absorb them all: exit 0
# and stdout byte-identical to the fault-free report above.
$NOVA report --no-cache --chaos rung:2,pool:1 --chaos-seed 7 lion dk15 \
  > "$TMP/report-chaos.txt" 2>/dev/null \
  || { echo "absorbed chaos schedule crashed the report"; exit 1; }
diff "$TMP/report-cold.txt" "$TMP/report-chaos.txt" \
  || { echo "absorbed chaos schedule perturbed stdout"; exit 1; }
echo "  absorbed faults: exit 0, stdout byte-identical: ok"

echo "== chaos smoke: overwhelming schedule must fail typed =="
# More rung faults than the retry budget: the report must exit with the
# Job_crashed code (7), not die on an uncaught exception (above 125).
rc=0; $NOVA report --no-cache --chaos rung:60 --chaos-seed 1 lion \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 7 ] || { echo "overwhelming chaos: expected exit 7, got $rc"; exit 1; }
echo "  overwhelming faults: typed Job_crashed, exit 7: ok"

echo "== cache fsck smoke: truncated entry swept, sweep idempotent =="
for entry in "$TMP/cache"/*.nova-cache; do
  head -c 20 "$entry" > "$entry.trunc" && mv "$entry.trunc" "$entry"
  break
done
touch "$TMP/cache/deadbeef.nova-cache.tmp.1.0"
$NOVA cache fsck "$TMP/cache" > "$TMP/fsck.txt" \
  || { echo "cache fsck failed"; exit 1; }
grep -q "1 broken removed, 1 stale tmp removed" "$TMP/fsck.txt" \
  || { echo "fsck did not sweep the junk"; cat "$TMP/fsck.txt"; exit 1; }
$NOVA cache fsck "$TMP/cache" | grep -q "0 broken removed, 0 stale tmp removed" \
  || { echo "fsck is not idempotent"; exit 1; }
echo "  fsck swept a truncated entry and a stale tmp, then ran clean: ok"

echo "== trace smoke: traced stdout identical, trace validates =="
VALIDATE=_build/default/scripts/validate_trace.exe
$NOVA report --jobs 2 --no-cache lion dk15 > "$TMP/report-untraced.txt" 2>/dev/null
$NOVA report --jobs 2 --no-cache lion dk15 --trace "$TMP/trace.json" \
  > "$TMP/report-traced.txt" 2>/dev/null
diff "$TMP/report-untraced.txt" "$TMP/report-traced.txt" \
  || { echo "tracing perturbed the report stdout"; exit 1; }
$VALIDATE "$TMP/trace.json" \
  || { echo "Chrome trace failed validation"; exit 1; }
$NOVA report --jobs 2 --no-cache lion dk15 --trace "$TMP/trace.jsonl" \
  > /dev/null 2>/dev/null
$VALIDATE "$TMP/trace.jsonl" \
  || { echo "JSONL trace failed validation"; exit 1; }
echo "  traced report bit-identical, both export formats validate: ok"

echo "== bench-diff smoke: self-diff clean, injected regression fails =="
$NOVA bench-diff BENCH_parallel.json BENCH_parallel.json > /dev/null \
  || { echo "self bench-diff reported a regression"; exit 1; }
sed 's/"seq_wall_s":[0-9.eE+-]*/"seq_wall_s":9999.0/' BENCH_parallel.json \
  > "$TMP/bench-regressed.json"
rc=0; $NOVA bench-diff BENCH_parallel.json "$TMP/bench-regressed.json" \
  > /dev/null || rc=$?
[ "$rc" -eq 1 ] || { echo "injected regression: expected exit 1, got $rc"; exit 1; }
echo "  bench-diff: self-diff exit 0, injected slowdown exit 1: ok"

echo "== scaling bench smoke: quick grid, fitted-complexity gate =="
# The quick grid (states 8-64, cheap algorithms, 3 reps) must produce a
# valid nova-bench-scaling/v1 artifact...
$NOVA bench scaling --quick --out "$TMP/BENCH_scaling.json" > /dev/null 2>&1
grep -q '"schema":"nova-bench-scaling/v1"' "$TMP/BENCH_scaling.json" \
  || { echo "scaling artifact missing schema"; exit 1; }
# ...that self-diffs clean...
$NOVA bench-diff "$TMP/BENCH_scaling.json" "$TMP/BENCH_scaling.json" > /dev/null \
  || { echo "scaling self-diff reported a regression"; exit 1; }
# ...while an injected complexity bump on one cell (a quadratic -> cubic
# style class flip plus exponent drift; the values are pinned above any
# class the noisy quick fit can legitimately produce) must fail the gate.
sed '0,/"model_order":[0-9]*/s//"model_order":9/' "$TMP/BENCH_scaling.json" \
  | sed '0,/"fitted_exponent":[-0-9.eE+]*/s//"fitted_exponent":99.0/' \
  > "$TMP/BENCH_scaling_regressed.json"
rc=0; $NOVA bench-diff "$TMP/BENCH_scaling.json" "$TMP/BENCH_scaling_regressed.json" \
  > /dev/null || rc=$?
[ "$rc" -eq 1 ] || { echo "injected exponent bump: expected exit 1, got $rc"; exit 1; }
echo "  scaling: quick artifact valid, self-diff exit 0, exponent bump exit 1: ok"

echo "== serve smoke: daemon round-trip, determinism, clean shutdown =="
SOCK="$TMP/serve.sock"
ACCESS_LOG="$TMP/access.jsonl"
FLIGHT="$TMP/flight.json"
# One seeded crash among the first two requests (the serve chaos site):
# the smoke proves the killed request is recoverable from the flight
# recorder while every later request is untouched.
$NOVA serve --socket "$SOCK" --cache "$TMP/serve-cache" --quiet \
  --access-log "$ACCESS_LOG" --flight-record "$FLIGHT" \
  --chaos serve:1 --chaos-seed 11 &
SERVE_PID=$!
up=0
for _ in $(seq 1 100); do
  if $NOVA client ping --socket "$SOCK" > /dev/null 2>&1; then up=1; break; fi
  sleep 0.05
done
[ "$up" -eq 1 ] || { echo "serve daemon did not come up"; exit 1; }
# Exhaust the chaos window (1 fault in the first 2 serve invocations):
# whichever ping drew the injected crash, everything after this burner
# is deterministic.
$NOVA client ping --socket "$SOCK" > /dev/null 2>&1 || true
$NOVA client ping --socket "$SOCK" | grep -q pong \
  || { echo "ping did not pong"; exit 1; }
# The determinism pin: a served payload is the one-shot stdout, byte
# for byte — cold (computed), then warm (certified cache hit).
$NOVA client encode -a ihybrid dk16 --socket "$SOCK" > "$TMP/served-cold.txt"
$NOVA encode -a ihybrid dk16 > "$TMP/encode-oneshot.txt" 2>/dev/null
diff "$TMP/encode-oneshot.txt" "$TMP/served-cold.txt" \
  || { echo "served payload differs from one-shot stdout"; exit 1; }
$NOVA client encode -a ihybrid dk16 --socket "$SOCK" > "$TMP/served-warm.txt"
diff "$TMP/encode-oneshot.txt" "$TMP/served-warm.txt" \
  || { echo "warm served payload differs from one-shot stdout"; exit 1; }
# A concurrent identical pair on a fresh key: identical bytes whether
# the second request coalesced onto the first or hit the fresh cache
# entry (the alcotest suite pins the coalescing counters).
$NOVA client encode -a igreedy dk16 --socket "$SOCK" > "$TMP/served-co1.txt" &
CO_PID=$!
$NOVA client encode -a igreedy dk16 --socket "$SOCK" > "$TMP/served-co2.txt"
wait $CO_PID || { echo "concurrent client exited nonzero"; exit 1; }
diff "$TMP/served-co1.txt" "$TMP/served-co2.txt" \
  || { echo "concurrent identical requests served different bytes"; exit 1; }
# A bad request answers typed (exit 5 through the client) and leaves
# the daemon fully alive.
rc=0; $NOVA client encode -a ihybrid no-such-machine --socket "$SOCK" \
  > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 5 ] || { echo "bad request: expected exit 5, got $rc"; exit 1; }
echo "== serve observability: metrics, watch, access log, flight recorder =="
# The Prometheus exposition must pass the standalone linter, and the
# requests above must have produced per-tier latency quantiles.
CHECK_PROM=_build/default/scripts/check_prom.exe
$NOVA client metrics --socket "$SOCK" > "$TMP/metrics.prom"
$CHECK_PROM "$TMP/metrics.prom" > /dev/null \
  || { echo "exposition failed check_prom"; exit 1; }
for q in 0.5 0.99; do
  for tier in computed cached; do
    grep -q "nova_serve_request_seconds{tier=\"$tier\",verb=\"encode\",quantile=\"$q\"}" \
      "$TMP/metrics.prom" \
      || { echo "missing p$q for the $tier tier"; exit 1; }
  done
done
grep -q 'nova_serve_requests_total{verb="ping"}' "$TMP/metrics.prom" \
  || { echo "missing per-verb request counter"; exit 1; }
echo "  exposition lints, per-tier p50/p99 present: ok"
# The minimal top: two polls, counters with deltas and quantiles.
$NOVA client watch --socket "$SOCK" --interval 100 -n 2 > "$TMP/watch.txt" \
  || { echo "client watch failed"; exit 1; }
grep -q "tick 2" "$TMP/watch.txt" || { echo "watch did not poll twice"; exit 1; }
grep -q "nova_serve_requests_total" "$TMP/watch.txt" \
  || { echo "watch shows no counters"; exit 1; }
grep -q "p99=" "$TMP/watch.txt" || { echo "watch shows no quantiles"; exit 1; }
echo "  client watch polls and renders: ok"
# The chaos-killed request is recoverable from the flight recorder.
$NOVA client flightrec --socket "$SOCK" > "$TMP/flightrec.json"
grep -q '"schema":"nova-flightrec/v1"' "$TMP/flightrec.json" \
  || { echo "flightrec missing schema"; exit 1; }
grep -q '"code":7' "$TMP/flightrec.json" \
  || { echo "chaos-killed request not in the flight recorder"; exit 1; }
echo "  chaos-killed request recoverable via flightrec: ok"
# stats: legacy payload intact, metrics and quarantine keys embedded.
$NOVA client stats --socket "$SOCK" > "$TMP/stats.txt"
grep -q "serve stats:" "$TMP/stats.txt" || { echo "stats verb failed"; exit 1; }
requests=$(sed -n 's/serve stats: \([0-9]*\) requests.*/\1/p' "$TMP/stats.txt")
$NOVA client shutdown --socket "$SOCK" | grep -q "shutting down" \
  || { echo "shutdown verb failed"; exit 1; }
wait $SERVE_PID || { echo "daemon exited nonzero"; exit 1; }
[ ! -e "$SOCK" ] || { echo "socket file not removed at shutdown"; exit 1; }
# Access log 1:1: every request line answered is one JSONL line — the
# stats counter, plus the shutdown request that followed it.
logged=$(wc -l < "$ACCESS_LOG")
[ "$logged" -eq "$((requests + 1))" ] \
  || { echo "access log has $logged lines for $((requests + 1)) requests"; exit 1; }
grep -q '"verb":"encode"' "$ACCESS_LOG" \
  || { echo "access log missing the encode requests"; exit 1; }
# The shutdown dump persists the crash evidence to disk.
grep -q '"reason":"shutdown"' "$FLIGHT" \
  || { echo "flight-record artifact missing shutdown dump"; exit 1; }
grep -q '"code":7' "$FLIGHT" \
  || { echo "crash evidence missing from the shutdown dump"; exit 1; }
echo "  access log 1:1 ($logged lines), shutdown flight dump has the crash: ok"
echo "  ping, cold/warm/pair determinism, typed error, clean shutdown: ok"

echo "== serve bench gates: warm and coalesced >= 5x better than cold =="
$NOVA bench serve -o "$TMP/BENCH_serve.json" > /dev/null 2>&1
grep -q '"schema":"nova-bench-serve/v1"' "$TMP/BENCH_serve.json" \
  || { echo "serve artifact missing schema"; exit 1; }
grep -q '"warm_origin":"cached"' "$TMP/BENCH_serve.json" \
  || { echo "warm tier missed the cache"; exit 1; }
$NOVA bench-diff BENCH_serve.json BENCH_serve.json > /dev/null \
  || { echo "serve self-diff reported a regression"; exit 1; }
# Pseudo-baseline gate (the par<=seq pattern): set both fast tiers to
# cold/5; bench-diff then fails iff a measured tier is slower than
# that — i.e. less than 5x better than this run's own cold tier.
cold=$(sed 's/.*"cold_wall_s":\([0-9.eE+-]*\).*/\1/' "$TMP/BENCH_serve.json")
tier_gate=$(awk "BEGIN{printf \"%.6f\", $cold / 5}")
sed "s/\"warm_wall_s\":[0-9.eE+-]*/\"warm_wall_s\":$tier_gate/; \
     s/\"coalesced_wall_s\":[0-9.eE+-]*/\"coalesced_wall_s\":$tier_gate/" \
  "$TMP/BENCH_serve.json" > "$TMP/BENCH_serve_gate.json"
$NOVA bench-diff "$TMP/BENCH_serve_gate.json" "$TMP/BENCH_serve.json" > /dev/null \
  || { echo "warm/coalesced tier less than 5x better than cold"; exit 1; }
echo "  nova-bench-serve/v1 valid, self-diff clean, 5x tier gates: ok"

echo "== metrics gate: the metered hot path must cost ~nothing =="
# The serve artifact records the same warm loop metered (registry on)
# and bare (registry off); a pseudo-baseline whose metered wall equals
# the bare wall makes bench-diff fail iff metering costs more than the
# threshold + wall floor.
metered=$(sed 's/.*"metered_wall_s":\([0-9.eE+-]*\).*/\1/' "$TMP/BENCH_serve.json")
bare=$(sed 's/.*"bare_wall_s":\([0-9.eE+-]*\).*/\1/' "$TMP/BENCH_serve.json")
sed "s/\"metered_wall_s\":[0-9.eE+-]*/\"metered_wall_s\":$bare/" \
  "$TMP/BENCH_serve.json" > "$TMP/BENCH_serve_metered_base.json"
$NOVA bench-diff -t 25 "$TMP/BENCH_serve_metered_base.json" "$TMP/BENCH_serve.json" \
  > /dev/null \
  || { echo "metrics overhead beyond threshold (bare=$bare metered=$metered)"; exit 1; }
echo "  metered wall within 25% of bare wall: ok"

# Bench smokes run inside $TMP: they write BENCH_*.json into the
# current directory, and the repo root holds the committed full-mode
# artifacts, which a quick run must not clobber.
BENCH=$(pwd)/_build/default/bench/main.exe

echo "== bench smoke (quick parallel executor) =="
(cd "$TMP" && "$BENCH" --quick --jobs=2 parallel)

echo "== parallel gate: pool must not be slower than sequential =="
# Sequential fallback satellite: construct a pseudo-baseline whose
# par_wall_s equals the measured seq_wall_s; bench-diff then fails iff
# the pool path is slower than sequential beyond the threshold. On a
# single-core runner effective_jobs forces the pool path to run
# sequentially, so this gate also catches the fallback regressing.
seq_wall=$(sed 's/.*"seq_wall_s":\([0-9.eE+-]*\).*/\1/' "$TMP/BENCH_parallel.json")
sed "s/\"par_wall_s\":[0-9.eE+-]*/\"par_wall_s\":$seq_wall/" "$TMP/BENCH_parallel.json" \
  > "$TMP/BENCH_parallel_seqbase.json"
$NOVA bench-diff -t 30 "$TMP/BENCH_parallel_seqbase.json" "$TMP/BENCH_parallel.json" \
  > /dev/null \
  || { echo "pool path slower than sequential beyond threshold"; exit 1; }
echo "  par_wall <= seq_wall (30% slack): ok"

echo "== supervision gate: retry machinery must cost ~nothing =="
# The committed artifact now records supervised vs bare walls; on this
# run's fresh artifact the overhead must stay under 1% + measurement
# slack (gated as a wall metric pair at 25%).
sup_wall=$(sed 's/.*"supervised_wall_s":\([0-9.eE+-]*\).*/\1/' "$TMP/BENCH_parallel.json")
unsup_wall=$(sed 's/.*"unsupervised_wall_s":\([0-9.eE+-]*\).*/\1/' "$TMP/BENCH_parallel.json")
sed "s/\"supervised_wall_s\":[0-9.eE+-]*/\"supervised_wall_s\":$unsup_wall/" \
  "$TMP/BENCH_parallel.json" > "$TMP/BENCH_parallel_barebase.json"
$NOVA bench-diff -t 25 "$TMP/BENCH_parallel_barebase.json" "$TMP/BENCH_parallel.json" \
  > /dev/null \
  || { echo "supervision overhead beyond threshold (bare=$unsup_wall supervised=$sup_wall)"; exit 1; }
echo "  supervised wall within 25% of bare wall: ok"

echo "== bench smoke (quick espresso kernels) =="
(cd "$TMP" && "$BENCH" --quick espresso)

echo "== bench smoke (quick pipeline) =="
(cd "$TMP" && "$BENCH" --quick pipeline)

echo "== bench smoke (quick certification) =="
(cd "$TMP" && "$BENCH" --quick check)

echo "CI OK"
