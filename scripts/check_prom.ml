(* Standalone Prometheus exposition linter used by CI: checks a scraped
   metrics payload against the grammar lib/metrics emits — every sample
   under a preceding # TYPE line, legal label escapes only, numeric
   values, summary families complete with _sum and _count, the text
   newline-terminated. Shares Metrics.Expose.lint with the unit tests,
   so the linter and the emitter cannot drift apart.

     check_prom FILE [FILE...]     ("-" reads stdin)

   Exit 0 when every input lints clean, 1 otherwise, 2 on usage. *)

let read_all ic =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  Buffer.contents b

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: check_prom FILE [FILE...]   (\"-\" reads stdin)";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match
        if path = "-" then read_all stdin
        else begin
          let ic = open_in_bin path in
          Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_all ic)
        end
      with
      | exception Sys_error msg ->
          failed := true;
          Printf.printf "%s: %s\n" path msg
      | text -> (
          match Metrics.Expose.lint text with
          | Ok () -> Printf.printf "%s: OK\n" path
          | Error msg ->
              failed := true;
              Printf.printf "%s: INVALID: %s\n" path msg))
    args;
  exit (if !failed then 1 else 0)
