(* Standalone trace checker used by CI: balanced Begin/End spans per
   track, per-track monotone timestamps, machine/algorithm attributes on
   every span, and a run manifest naming the code version. Accepts both
   export formats (.jsonl event log, Chrome trace JSON).

     validate_trace TRACE [TRACE...]

   Exit 0 when every file is well formed, 1 otherwise, 2 on usage. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: validate_trace TRACE [TRACE...]";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun path ->
      match Validate.check_file path with
      | r ->
          if Validate.ok r then Printf.printf "%s: OK (%s)\n" path (Validate.summary r)
          else begin
            failed := true;
            Printf.printf "%s: INVALID (%s)\n" path (Validate.summary r);
            List.iter (fun e -> Printf.printf "  %s\n" e) r.Validate.errors
          end
      | exception Json_min.Parse_error msg ->
          failed := true;
          Printf.printf "%s: unparseable: %s\n" path msg
      | exception Sys_error msg ->
          failed := true;
          Printf.printf "%s: %s\n" path msg)
    args;
  exit (if !failed then 1 else 0)
