(* Benchmark harness.

   Running with no arguments regenerates every table and figure of the
   paper's evaluation section (Section VII) and then runs one Bechamel
   micro-benchmark per table, timing that table's characteristic kernel.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe table3          -- one table
     dune exec bench/main.exe --quick         -- skip the heavy machines
     dune exec bench/main.exe --no-bechamel

   The tables print measured numbers next to the paper's published totals
   (see EXPERIMENTS.md for the per-table discussion). *)

open Bechamel
open Toolkit

let lion () = Benchmarks.Suite.find "lion"
let dk15 () = Benchmarks.Suite.find "dk15"

let ics_of m = Constraints.of_symbolic (Symbolic.of_fsm m)

let paper_ics () =
  List.map Bitvec.of_string
    [ "1110000"; "0111000"; "0000111"; "1000110"; "0000011"; "0011000" ]

(* One characteristic kernel per table: the algorithmic step that table
   exercises, on a small machine, so Bechamel can sample it repeatedly. *)
let tests =
  [
    Test.make ~name:"table1:stats" (Staged.stage (fun () -> Fsm.stats (lion ())));
    Test.make ~name:"table2:ihybrid+igreedy(dk15)"
      (Staged.stage (fun () ->
           let m = dk15 () in
           let ics = ics_of m in
           let n = Fsm.num_states ~m in
           let ih = Ihybrid.ihybrid_code ~num_states:n ics in
           let ig = Igreedy.igreedy_code ~num_states:n ics in
           (ih, ig)));
    Test.make ~name:"table3:kiss+espresso(lion)"
      (Staged.stage (fun () ->
           let m = lion () in
           let ics = ics_of m in
           let e = Baselines.kiss_encode ~num_states:(Fsm.num_states ~m) ics in
           Encoded.implement m e));
    Test.make ~name:"table4:symbmin+iohybrid(lion)"
      (Staged.stage (fun () ->
           let m = lion () in
           let sm = Symbmin.run (Symbolic.of_fsm m) in
           Iohybrid.iohybrid_code sm.Symbmin.problem));
    Test.make ~name:"table5:iohybrid(bbtas)"
      (Staged.stage (fun () ->
           let m = Benchmarks.Suite.find "bbtas" in
           let sm = Symbmin.run (Symbolic.of_fsm m) in
           Iohybrid.iohybrid_code sm.Symbmin.problem));
    Test.make ~name:"table6:semiexact(paper-example)"
      (Staged.stage (fun () -> Iexact.semiexact_code ~num_states:7 ~k:4 (paper_ics ())));
    Test.make ~name:"table7:mustang+factoring(lion)"
      (Staged.stage (fun () ->
           let m = lion () in
           let e =
             Baselines.mustang_encode m ~flavor:Baselines.Fanout ~include_outputs:true
               ~nbits:(Ihybrid.min_code_length (Fsm.num_states ~m))
           in
           let r = Encoded.implement m e in
           let net =
             Multilevel.of_cover r.Encoded.cover
               ~num_binary_vars:(m.Fsm.num_inputs + e.Encoding.nbits)
           in
           Multilevel.factored_literals (Multilevel.optimize net)));
    Test.make ~name:"fig8:random-pool(lion)"
      (Staged.stage (fun () ->
           let m = lion () in
           let n = Fsm.num_states ~m in
           List.init 4 (fun i ->
               let rng = Random.State.make [| 77; i; n |] in
               let e = Encoding.random rng ~num_states:n ~nbits:(Ihybrid.min_code_length n) in
               (Encoded.implement m e).Encoded.area)));
    Test.make ~name:"fig9:iexact(paper-example)"
      (Staged.stage (fun () -> Iexact.iexact_code ~num_states:7 (paper_ics ())));
    Test.make ~name:"fig10:espresso(lion-onehot)"
      (Staged.stage (fun () ->
           let m = lion () in
           Encoded.implement m (Encoding.one_hot (Fsm.num_states ~m))));
  ]

(* --- ESPRESSO kernel benchmark → BENCH_espresso.json ------------------- *)

(* Machine-readable snapshot of the minimizer: per benchmark the runtime,
   minimized cover size and the instrumentation registries (kernel timers,
   operation counters, recursion-depth histograms). Encodings are fixed
   (random, seed 0, minimum width) so runs are comparable across
   commits. *)

let espresso_bench_machines ~quick =
  let named = [ "lion"; "dk15"; "bbara"; "ex2"; "dk16" ] in
  let named = if quick then named else named @ [ "keyb"; "styr"; "sand"; "planet" ] in
  let generated =
    if quick then
      Benchmarks.Generator.generate ~name:"gen_medium" ~num_inputs:6 ~num_outputs:6
        ~num_states:40 ~num_rows:160 ~seed:4242
    else
      Benchmarks.Generator.generate ~name:"gen_large" ~num_inputs:8 ~num_outputs:8
        ~num_states:80 ~num_rows:400 ~seed:4242
  in
  List.map (fun nm -> Benchmarks.Suite.find nm) named @ [ generated ]

let timer_seconds name =
  match List.find_opt (fun (n, _, _) -> n = name) (Instrument.timers ()) with
  | Some (_, s, _) -> s
  | None -> 0.

let espresso_bench_one (m : Fsm.t) =
  Instrument.reset ();
  let n = Fsm.num_states ~m in
  let nbits = Ihybrid.min_code_length n in
  let e = Encoding.random (Random.State.make [| 0 |]) ~num_states:n ~nbits in
  let r = Encoded.implement m e in
  let minimize_s = timer_seconds "espresso.minimize" in
  let taut_s = timer_seconds "logic.tautology" in
  let compl_s = timer_seconds "logic.complement" in
  Format.printf "%-12s states=%3d rows=%4d  minimize=%8.4fs taut=%8.4fs compl=%8.4fs cubes=%4d lits=%5d@."
    m.Fsm.name n (List.length m.Fsm.transitions) minimize_s taut_s compl_s r.Encoded.num_cubes
    (Logic.Cover.literal_cost r.Encoded.cover);
  let json =
    Printf.sprintf
      "{\"name\":\"%s\",\"states\":%d,\"rows\":%d,\"nbits\":%d,\"minimize_s\":%.6f,\"num_cubes\":%d,\"literal_cost\":%d,\"area\":%d,\"tautology_kernel_s\":%.6f,\"complement_kernel_s\":%.6f,\"instrument\":%s}"
      m.Fsm.name n
      (List.length m.Fsm.transitions)
      nbits minimize_s r.Encoded.num_cubes
      (Logic.Cover.literal_cost r.Encoded.cover)
      r.Encoded.area taut_s compl_s (Instrument.to_json ())
  in
  (json, minimize_s, taut_s, compl_s)

let run_espresso ~quick () =
  let was_on = Instrument.enabled () in
  Instrument.enable ();
  Format.printf "@.== ESPRESSO kernel benchmark (%s) ==@." (if quick then "quick" else "full");
  let rows = List.map espresso_bench_one (espresso_bench_machines ~quick) in
  if not was_on then Instrument.disable ();
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let t_min = total (fun (_, m, _, _) -> m)
  and t_taut = total (fun (_, _, t, _) -> t)
  and t_compl = total (fun (_, _, _, c) -> c) in
  Format.printf "%-12s                  minimize=%8.4fs taut=%8.4fs compl=%8.4fs@." "TOTAL" t_min
    t_taut t_compl;
  let oc = open_out "BENCH_espresso.json" in
  Printf.fprintf oc
    "{\"schema\":\"nova-bench-espresso/v1\",\"mode\":\"%s\",\"benchmarks\":[%s],\"totals\":{\"minimize_s\":%.6f,\"tautology_kernel_s\":%.6f,\"complement_kernel_s\":%.6f}}\n"
    (if quick then "quick" else "full")
    (String.concat "," (List.map (fun (j, _, _, _) -> j) rows))
    t_min t_taut t_compl;
  close_out oc;
  Format.printf "wrote BENCH_espresso.json@."

(* --- staged pipeline benchmark → BENCH_pipeline.json ------------------- *)

(* Per machine, two pipeline runs: ihybrid under an unlimited budget (the
   reference path) and iexact under a 50 ms wall-clock deadline (the
   graceful-degradation path — the fallback ladder must still produce an
   encoding). Each row records which rung produced the encoding, the
   degradations along the way, and the per-stage Instrument spans. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pipeline_stage_spans () =
  Instrument.timers ()
  |> List.filter (fun (n, _, _) ->
         (String.length n >= 9 && String.sub n 0 9 = "pipeline.") || n = "espresso.minimize")
  |> List.map (fun (n, s, calls) ->
         Printf.sprintf "{\"name\":\"%s\",\"seconds\":%.6f,\"calls\":%d}" (json_escape n) s calls)
  |> String.concat ","

let pipeline_bench_one (m : Fsm.t) ~mode ~algo ~budget =
  Instrument.reset ();
  let n = Fsm.num_states ~m in
  let t0 = Unix.gettimeofday () in
  let outcome = Harness.Driver.report ~budget m algo in
  let wall = Unix.gettimeofday () -. t0 in
  match outcome with
  | Error err ->
      Format.printf "%-12s %-12s %-8s FAILED: %s@." m.Fsm.name (Harness.Driver.name algo) mode
        (Nova_error.to_string err);
      Printf.sprintf
        "{\"name\":\"%s\",\"mode\":\"%s\",\"algorithm\":\"%s\",\"states\":%d,\"rows\":%d,\"wall_s\":%.6f,\"error\":\"%s\",\"stages\":[%s]}"
        m.Fsm.name mode (Harness.Driver.name algo) n
        (List.length m.Fsm.transitions)
        wall
        (json_escape (Nova_error.to_string err))
        (pipeline_stage_spans ())
  | Ok (o, r) ->
      let degradations =
        List.map
          (fun (rung, err) ->
            Printf.sprintf "{\"rung\":\"%s\",\"error\":\"%s\"}" (Harness.Driver.rung_name rung)
              (json_escape (Nova_error.to_string err)))
          o.Harness.Driver.degradations
      in
      Format.printf
        "%-12s %-12s %-8s wall=%8.4fs produced_by=%-10s degradations=%d nbits=%2d cubes=%4d area=%6d@."
        m.Fsm.name (Harness.Driver.name algo) mode wall
        (Harness.Driver.rung_name o.Harness.Driver.produced_by)
        (List.length o.Harness.Driver.degradations)
        o.Harness.Driver.encoding.Encoding.nbits r.Encoded.num_cubes r.Encoded.area;
      Printf.sprintf
        "{\"name\":\"%s\",\"mode\":\"%s\",\"algorithm\":\"%s\",\"states\":%d,\"rows\":%d,\"wall_s\":%.6f,\"produced_by\":\"%s\",\"degradations\":[%s],\"nbits\":%d,\"num_cubes\":%d,\"area\":%d,\"stages\":[%s]}"
        m.Fsm.name mode (Harness.Driver.name algo) n
        (List.length m.Fsm.transitions)
        wall
        (Harness.Driver.rung_name o.Harness.Driver.produced_by)
        (String.concat "," degradations)
        o.Harness.Driver.encoding.Encoding.nbits r.Encoded.num_cubes r.Encoded.area
        (pipeline_stage_spans ())

let run_pipeline ~quick () =
  let was_on = Instrument.enabled () in
  Instrument.enable ();
  Format.printf "@.== staged pipeline benchmark (%s) ==@." (if quick then "quick" else "full");
  let rows =
    List.concat_map
      (fun m ->
        let unlimited =
          pipeline_bench_one m ~mode:"unlimited" ~algo:Harness.Driver.Ihybrid
            ~budget:Budget.unlimited
        in
        let deadline =
          pipeline_bench_one m ~mode:"deadline50ms" ~algo:Harness.Driver.Iexact
            ~budget:(Budget.create ~deadline_ms:50.0 ())
        in
        [ unlimited; deadline ])
      (espresso_bench_machines ~quick)
  in
  if not was_on then Instrument.disable ();
  let oc = open_out "BENCH_pipeline.json" in
  Printf.fprintf oc "{\"schema\":\"nova-bench-pipeline/v1\",\"mode\":\"%s\",\"runs\":[%s]}\n"
    (if quick then "quick" else "full")
    (String.concat "," rows);
  close_out oc;
  Format.printf "wrote BENCH_pipeline.json@."

(* --- certification benchmark → BENCH_check.json ------------------------ *)

(* Per machine × constraint-driven algorithm: run the pipeline, certify
   the result with the independent checker, and record the verdict plus
   the per-check spans. Every row is expected to certify clean — a
   [false] in [ok] is a correctness regression, not a slow run. *)

let check_algorithms =
  [ Harness.Driver.Ihybrid; Harness.Driver.Igreedy; Harness.Driver.Iohybrid; Harness.Driver.Iexact ]

let check_bench_one (m : Fsm.t) algo =
  (* iexact is exponential: the same work budget Flow uses keeps it
     bounded (the fallback ladder still certifies whatever rung
     produced the encoding). *)
  let budget = Budget.create ~max_work:400_000 () in
  match Harness.Driver.report ~budget m algo with
  | Error err ->
      Format.printf "%-12s %-10s FAILED: %s@." m.Fsm.name (Harness.Driver.name algo)
        (Nova_error.to_string err);
      Printf.sprintf "{\"name\":\"%s\",\"algorithm\":\"%s\",\"error\":\"%s\"}" m.Fsm.name
        (Harness.Driver.name algo)
        (json_escape (Nova_error.to_string err))
  | Ok (o, r) ->
      let cert = Harness.Certify.run m o r in
      let total_span =
        List.fold_left (fun acc (c : Check.outcome) -> acc +. c.Check.span_s) 0. cert.Check.checks
      in
      Format.printf "%-12s %-10s %-4s checks=%d span=%8.4fs produced_by=%s@." m.Fsm.name
        (Harness.Driver.name algo)
        (if cert.Check.ok then "OK" else "FAIL")
        (List.length cert.Check.checks)
        total_span
        (Harness.Driver.rung_name o.Harness.Driver.produced_by);
      Printf.sprintf
        "{\"name\":\"%s\",\"algorithm\":\"%s\",\"produced_by\":\"%s\",\"certificate\":%s}"
        m.Fsm.name (Harness.Driver.name algo)
        (Harness.Driver.rung_name o.Harness.Driver.produced_by)
        (Check.to_json cert)

let run_check ~quick () =
  Format.printf "@.== certification benchmark (%s) ==@." (if quick then "quick" else "full");
  let rows =
    List.concat_map
      (fun m -> List.map (fun algo -> check_bench_one m algo) check_algorithms)
      (espresso_bench_machines ~quick)
  in
  let oc = open_out "BENCH_check.json" in
  Printf.fprintf oc "{\"schema\":\"nova-bench-check/v1\",\"mode\":\"%s\",\"runs\":[%s]}\n"
    (if quick then "quick" else "full")
    (String.concat "," rows);
  close_out oc;
  Format.printf "wrote BENCH_check.json@."

(* --- parallel executor benchmark → BENCH_parallel.json ----------------- *)

(* The full portfolio (every machine × every algorithm) run three ways:
   sequentially, on the domain pool, and twice against a fresh cache
   (cold, then warm). Records the wall-clock speedups and the cache hit
   rates, and asserts that all three report streams are row-identical —
   the determinism guarantee, measured rather than assumed. *)

let rows_identical a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Exec.Job.row) (y : Exec.Job.row) ->
         match (x.Exec.Job.result, y.Exec.Job.result) with
         | Ok u, Ok v -> Exec.Job.success_equal u v
         | Error u, Error v -> u = v
         | _ -> false)
       a b

let with_temp_cache_dir f =
  let dir = Filename.temp_file "nova-bench-cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let run_parallel ~quick ~jobs () =
  Format.printf "@.== parallel executor benchmark (%s, %d jobs) ==@."
    (if quick then "quick" else "full")
    jobs;
  let tasks =
    List.concat_map Exec.Portfolio.tasks_for (espresso_bench_machines ~quick)
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq_rows, seq_wall = timed (fun () -> Exec.Portfolio.run ~jobs:1 tasks) in
  let par_rows, par_wall = timed (fun () -> Exec.Portfolio.run ~jobs tasks) in
  let identical = rows_identical seq_rows par_rows in
  let effective_jobs =
    Exec.Portfolio.effective_jobs ~available:(Exec.Pool.available_jobs ()) ~requested:jobs
  in
  Format.printf "%d tasks  seq=%8.3fs  jobs=%d(eff %d)=%8.3fs  speedup=%.2fx  identical=%b@."
    (List.length tasks) seq_wall jobs effective_jobs par_wall (seq_wall /. par_wall) identical;
  (* Supervision overhead with no faults injected: the retry machinery
     is a quarantine-table probe and an exception handler per job, so
     supervised and bare walls should be within noise (gated at 1%+25pp
     slack by bench-diff like every other wall metric). *)
  let _, unsup_wall =
    timed (fun () -> Exec.Portfolio.run ~jobs:1 ~policy:Exec.Supervise.off tasks)
  in
  let _, sup_wall =
    timed (fun () -> Exec.Portfolio.run ~jobs:1 ~policy:Exec.Supervise.default_policy tasks)
  in
  Format.printf "supervision  bare=%8.3fs  supervised=%8.3fs  overhead=%+.2f%%@." unsup_wall
    sup_wall ((sup_wall /. unsup_wall -. 1.) *. 100.);
  let cold_wall, warm_wall, warm_identical, stats =
    with_temp_cache_dir @@ fun dir ->
    let cold = Exec.Cache.open_dir dir in
    let cold_rows, cold_wall = timed (fun () -> Exec.Portfolio.run ~jobs ~cache:cold tasks) in
    let warm = Exec.Cache.open_dir dir in
    let warm_rows, warm_wall = timed (fun () -> Exec.Portfolio.run ~jobs ~cache:warm tasks) in
    (cold_wall, warm_wall, rows_identical cold_rows warm_rows, Exec.Cache.stats warm)
  in
  let lookups = stats.Exec.Cache.hits + stats.Exec.Cache.misses in
  let hit_rate = if lookups = 0 then 0. else float stats.Exec.Cache.hits /. float lookups in
  Format.printf "cache  cold=%8.3fs  warm=%8.3fs  speedup=%.2fx  hits=%d/%d  identical=%b@."
    cold_wall warm_wall (cold_wall /. warm_wall) stats.Exec.Cache.hits lookups warm_identical;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\"schema\":\"nova-bench-parallel/v1\",\"mode\":\"%s\",\"jobs\":%d,\"effective_jobs\":%d,\"available_jobs\":%d,\"tasks\":%d,\"seq_wall_s\":%.6f,\"par_wall_s\":%.6f,\"speedup\":%.4f,\"identical\":%b,\"supervision\":{\"unsupervised_wall_s\":%.6f,\"supervised_wall_s\":%.6f,\"overhead\":%.4f},\"cache\":{\"cold_wall_s\":%.6f,\"warm_wall_s\":%.6f,\"warm_speedup\":%.4f,\"identical\":%b,\"hits\":%d,\"misses\":%d,\"stores\":%d,\"rejected\":%d,\"hit_rate\":%.4f}}\n"
    (if quick then "quick" else "full")
    jobs effective_jobs
    (Exec.Pool.available_jobs ())
    (List.length tasks) seq_wall par_wall (seq_wall /. par_wall) identical unsup_wall sup_wall
    (sup_wall /. unsup_wall -. 1.) cold_wall warm_wall
    (cold_wall /. warm_wall) warm_identical stats.Exec.Cache.hits stats.Exec.Cache.misses
    stats.Exec.Cache.stores stats.Exec.Cache.rejected hit_rate;
  close_out oc;
  Format.printf "wrote BENCH_parallel.json@."

(* --- scaling-curve benchmark → BENCH_scaling.json ---------------------- *)

(* Fitted complexity, not point samples: graded seeded machine families,
   min-of-K measurement with MAD outlier rejection, least-squares model
   selection (see lib/scaling). The artifact is the one `nova bench-diff`
   gates on by fitted model class and exponent. Not part of the no-args
   run: the full grid walks machines up to 512 states. *)

let run_scaling ~quick () =
  Format.printf "@.== scaling-curve benchmark (%s) ==@." (if quick then "quick" else "full");
  let cells = Scaling.Report.run ~quick ~progress:Format.std_formatter () in
  let reps = if quick then 3 else 5 in
  Scaling.Report.summary Format.std_formatter cells;
  Scaling.Report.write ~path:"BENCH_scaling.json" ~quick ~reps cells;
  Format.printf "wrote BENCH_scaling.json@."

let run_bechamel () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw_results = Benchmark.all cfg instances (Test.make_grouped ~name:"nova" tests) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Format.printf "@.== Bechamel micro-benchmarks (one kernel per table) ==@.";
  Hashtbl.iter
    (fun label tbl ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ time ] -> Format.printf "%-42s %14.1f ns/run (%s)@." name time label
          | Some _ | None -> Format.printf "%-42s (no estimate)@." name)
        tbl)
    results

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let no_bechamel = List.mem "--no-bechamel" args in
  let jobs =
    List.fold_left
      (fun acc a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--jobs" -> (
            match int_of_string_opt (String.sub a (i + 1) (String.length a - i - 1)) with
            | Some n when n >= 1 -> n
            | _ -> acc)
        | _ -> acc)
      (Exec.Pool.available_jobs ()) args
  in
  let selected =
    List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args
  in
  let ppf = Format.std_formatter in
  let dispatch = function
    | "table1" -> Harness.Tables.table1 ~quick ppf ()
    | "table2" -> Harness.Tables.table2 ~quick ppf ()
    | "table3" -> Harness.Tables.table3 ~quick ppf ()
    | "table4" -> Harness.Tables.table4 ~quick ppf ()
    | "table5" -> Harness.Tables.table5 ~quick ppf ()
    | "table6" -> Harness.Tables.table6 ~quick ppf ()
    | "table7" -> Harness.Tables.table7 ~quick ppf ()
    | "fig8" -> Harness.Tables.fig8 ~quick ppf ()
    | "fig9" -> Harness.Tables.fig9 ~quick ppf ()
    | "fig10" -> Harness.Tables.fig10 ~quick ppf ()
    | "ablations" -> Harness.Ablations.all ~quick ppf ()
    | "espresso" -> run_espresso ~quick ()
    | "pipeline" -> run_pipeline ~quick ()
    | "check" -> run_check ~quick ()
    | "parallel" -> run_parallel ~quick ~jobs ()
    | "scaling" -> run_scaling ~quick ()
    | "bechamel" -> run_bechamel ()
    | other -> Format.eprintf "unknown table %S@." other
  in
  (match selected with
  | [] ->
      Harness.Tables.all ~quick ppf ();
      Harness.Ablations.all ~quick ppf ();
      run_espresso ~quick ();
      run_pipeline ~quick ();
      run_check ~quick ();
      run_parallel ~quick ~jobs ();
      if not no_bechamel then run_bechamel ()
  | picks -> List.iter dispatch picks);
  Format.pp_print_flush ppf ()
