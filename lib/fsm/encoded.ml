open Logic

type t = {
  machine : Fsm.t;
  encoding : Encoding.t;
  dom : Domain.t;
  on : Cover.t;
  dc : Cover.t;
}

let build (m : Fsm.t) (e : Encoding.t) =
  if Encoding.num_states e <> Array.length m.Fsm.states then
    invalid_arg "Encoded.build: encoding size mismatch";
  let ni = m.Fsm.num_inputs and no = m.Fsm.num_outputs in
  let nb = e.Encoding.nbits in
  let sizes = Array.append (Array.make (ni + nb) 2) [| nb + no |] in
  let dom = Domain.create sizes in
  let out_off = Domain.offset dom (ni + nb) in
  let out_sz = nb + no in
  (* Base cube of a row: inputs + present-state code bits, empty outputs. *)
  let row_base (tr : Fsm.transition) =
    let c = Bitvec.full (Domain.width dom) in
    String.iteri
      (fun v ch ->
        match ch with
        | '0' -> Bitvec.clear c (Domain.offset dom v + 1)
        | '1' -> Bitvec.clear c (Domain.offset dom v + 0)
        | '-' -> ()
        | _ -> assert false)
      tr.Fsm.input;
    (match tr.Fsm.src with
    | None -> ()
    | Some s ->
        for b = 0 to nb - 1 do
          let v = ni + b in
          if Encoding.bit e s b = 1 then Bitvec.clear c (Domain.offset dom v + 0)
          else Bitvec.clear c (Domain.offset dom v + 1)
        done);
    Bitvec.clear_range c out_off out_sz;
    c
  in
  let on = ref [] and dc = ref [] in
  List.iter
    (fun (tr : Fsm.transition) ->
      let base = row_base tr in
      let on_cols = ref [] in
      (match tr.Fsm.dst with
      | None -> ()
      | Some s ->
          for b = 0 to nb - 1 do
            if Encoding.bit e s b = 1 then on_cols := b :: !on_cols
          done);
      String.iteri (fun j ch -> if ch = '1' then on_cols := (nb + j) :: !on_cols) tr.Fsm.output;
      if !on_cols <> [] then begin
        let c = Bitvec.copy base in
        List.iter (fun col -> Bitvec.set c (out_off + col)) !on_cols;
        on := c :: !on
      end;
      let dc_cols = ref [] in
      (match tr.Fsm.dst with
      | None -> for b = 0 to nb - 1 do dc_cols := b :: !dc_cols done
      | Some _ -> ());
      String.iteri (fun j ch -> if ch = '-' then dc_cols := (nb + j) :: !dc_cols) tr.Fsm.output;
      if !dc_cols <> [] then begin
        let c = Bitvec.copy base in
        List.iter (fun col -> Bitvec.set c (out_off + col)) !dc_cols;
        dc := c :: !dc
      end)
    m.Fsm.transitions;
  (* Everything matched by no row — including unused codes — is free. *)
  let projections =
    List.map
      (fun tr ->
        let c = row_base tr in
        Bitvec.set_range c out_off out_sz;
        c)
      m.Fsm.transitions
  in
  let unspecified = Cover.complement (Cover.make dom projections) in
  let on = Cover.make dom (List.rev !on) in
  let dc = Cover.union (Cover.make dom (List.rev !dc)) unspecified in
  { machine = m; encoding = e; dom; on; dc }

let minimize ?budget t = Espresso.minimize ?budget ~dc:t.dc t.on

let area ~machine ~encoding ~num_cubes =
  let ni = machine.Fsm.num_inputs and no = machine.Fsm.num_outputs in
  let nb = encoding.Encoding.nbits in
  ((2 * (ni + nb)) + nb + no) * num_cubes

type result = { cover : Cover.t; num_cubes : int; area : int }

let implement ?budget m e =
  let t = build m e in
  let cover = minimize ?budget t in
  let num_cubes = Cover.size cover in
  { cover; num_cubes; area = area ~machine:m ~encoding:e ~num_cubes }

let eval t cover ~input ~code =
  let m = t.machine in
  let ni = m.Fsm.num_inputs and no = m.Fsm.num_outputs in
  let nb = t.encoding.Encoding.nbits in
  if String.length input <> ni then invalid_arg "Encoded.eval: input width mismatch";
  let values = Array.make (ni + nb + 1) 0 in
  String.iteri
    (fun v ch ->
      match ch with
      | '0' -> values.(v) <- 0
      | '1' -> values.(v) <- 1
      | _ -> invalid_arg "Encoded.eval: input must be fully specified")
    input;
  for b = 0 to nb - 1 do
    values.(ni + b) <- (code lsr b) land 1
  done;
  let column o =
    values.(ni + nb) <- o;
    Cover.contains_minterm cover values
  in
  let next = ref 0 in
  for b = 0 to nb - 1 do
    if column b then next := !next lor (1 lsl b)
  done;
  (!next, Array.init no (fun j -> column (nb + j)))
