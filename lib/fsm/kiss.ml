type error = { file : string; line : int; col : int; msg : string }

exception Parse_error of error

let error_to_string e =
  Printf.sprintf "%s:%d:%d: %s" e.file e.line e.col e.msg

(* ' ', '\t' and '\r' all separate: the latter so CRLF files parse
   instead of dying on an invisible trailing '\r'. *)
let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> w <> "")

(* 1-based column of the first occurrence of word [w] in [raw]; 0 when
   it cannot be located (after comment stripping, say). *)
let col_of raw w =
  let lw = String.length w and lr = String.length raw in
  let rec go i =
    if i + lw > lr then 0 else if String.sub raw i lw = w then i + 1 else go (i + 1)
  in
  if lw = 0 then 0 else go 0

let parse ~name ?(file = "<input>") text =
  let fail ?(line = 0) ?(col = 0) fmt =
    Printf.ksprintf (fun msg -> raise (Parse_error { file; line; col; msg })) fmt
  in
  let lines = String.split_on_char '\n' text in
  let num_inputs = ref None
  and num_outputs = ref None
  and declared_products = ref None
  and declared_states = ref None
  and reset_name = ref None in
  let states = ref [] (* reversed order of first appearance *)
  and state_ids = Hashtbl.create 17
  and rows = ref [] in
  let intern s =
    match Hashtbl.find_opt state_ids s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length state_ids in
        Hashtbl.add state_ids s i;
        states := s :: !states;
        i
  in
  List.iteri
    (fun i raw ->
      let line_no = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let fail_at ?word fmt =
        let col = match word with Some w -> col_of raw w | None -> 1 in
        fail ~line:line_no ~col fmt
      in
      let parse_int what w =
        match int_of_string_opt w with
        | Some i -> i
        | None -> fail_at ~word:w "bad %s count %S" what w
      in
      match split_words line with
      | [] -> ()
      | [ ((".i" | ".o" | ".p" | ".s" | ".r") as d) ] ->
          fail_at ~word:d "truncated %s directive: missing its argument" d
      | ".i" :: w :: _ -> num_inputs := Some (parse_int "input" w)
      | ".o" :: w :: _ -> num_outputs := Some (parse_int "output" w)
      | ".p" :: w :: _ -> declared_products := Some (parse_int "product" w)
      | ".s" :: w :: _ -> declared_states := Some (parse_int "state" w)
      | ".r" :: w :: _ -> (
          match !reset_name with
          | Some prev ->
              fail_at ~word:w "duplicate .r declaration (reset state already %S)" prev
          | None -> reset_name := Some w)
      | ".e" :: _ | ".end" :: _ -> ()
      | [ input; present; next; output ] ->
          let src = if present = "*" then None else Some (intern present) in
          let dst = if next = "-" then None else Some (intern next) in
          rows := { Fsm.input; src; dst; output } :: !rows
      | ws ->
          fail_at ~word:(List.hd ws)
            "expected 4 fields (input present-state next-state output), got %d in %S"
            (List.length ws) (String.concat " " ws))
    lines;
  let num_inputs =
    match !num_inputs with Some i -> i | None -> fail "missing .i declaration"
  in
  let num_outputs =
    match !num_outputs with Some o -> o | None -> fail "missing .o declaration"
  in
  let rows = List.rev !rows in
  (match !declared_products with
  | Some p when p <> List.length rows ->
      fail ".p declares %d rows but %d were given" p (List.length rows)
  | Some _ | None -> ());
  (match !declared_states with
  | Some s when s <> Hashtbl.length state_ids ->
      fail ".s declares %d states but %d distinct names appear" s (Hashtbl.length state_ids)
  | Some _ | None -> ());
  let states = Array.of_list (List.rev !states) in
  if Array.length states = 0 then fail "no states in table";
  let reset =
    match !reset_name with
    | None -> None
    | Some r -> (
        match Hashtbl.find_opt state_ids r with
        | Some i -> Some i
        | None -> fail "reset state %S does not appear in the table" r)
  in
  try
    match reset with
    | Some r -> Fsm.create ~name ~num_inputs ~num_outputs ~states ~transitions:rows ~reset:r ()
    | None -> Fsm.create ~name ~num_inputs ~num_outputs ~states ~transitions:rows ()
  with Invalid_argument msg -> fail "%s" msg

let parse_result ~name ?file text =
  match parse ~name ?file text with
  | m -> Ok m
  | exception Parse_error e -> Error e

let print ppf (m : Fsm.t) =
  Format.fprintf ppf ".i %d@." m.Fsm.num_inputs;
  Format.fprintf ppf ".o %d@." m.Fsm.num_outputs;
  Format.fprintf ppf ".p %d@." (List.length m.Fsm.transitions);
  Format.fprintf ppf ".s %d@." (Array.length m.Fsm.states);
  (match m.Fsm.reset with
  | Some r -> Format.fprintf ppf ".r %s@." m.Fsm.states.(r)
  | None -> ());
  List.iter
    (fun tr ->
      let pres = match tr.Fsm.src with None -> "*" | Some s -> m.Fsm.states.(s) in
      let nxt = match tr.Fsm.dst with None -> "-" | Some s -> m.Fsm.states.(s) in
      Format.fprintf ppf "%s %s %s %s@." tr.Fsm.input pres nxt tr.Fsm.output)
    m.Fsm.transitions;
  Format.fprintf ppf ".e@."

let to_string m = Format.asprintf "%a" print m
