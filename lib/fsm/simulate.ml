type step = {
  input : string;
  state_before : int;
  state_after : int option;
  outputs : string;
}

let run (m : Fsm.t) ~from trace =
  let rec go s acc = function
    | [] -> List.rev acc
    | input :: rest -> (
        match Fsm.next m ~input ~src:s with
        | None -> List.rev ({ input; state_before = s; state_after = None; outputs = String.make m.Fsm.num_outputs '-' } :: acc)
        | Some (dst, outputs) -> (
            let step = { input; state_before = s; state_after = dst; outputs } in
            match dst with
            | None -> List.rev (step :: acc)
            | Some d -> go d (step :: acc) rest))
  in
  go from [] trace

let random_trace rng (m : Fsm.t) ~length =
  List.init length (fun _ ->
      String.init m.Fsm.num_inputs (fun _ -> if Random.State.bool rng then '1' else '0'))

type verdict =
  | Equivalent
  | Mismatch of { state : int; input : string; detail : string }

let outputs_agree spec actual =
  let ok = ref true in
  String.iteri
    (fun j ch ->
      match ch with
      | '1' -> if not actual.(j) then ok := false
      | '0' -> if actual.(j) then ok := false
      | _ -> ())
    spec;
  !ok

(* One comparison step of the don't-care policy documented in the mli:
   unspecified behaviour (no matching row, [dst = None], output ['-'])
   never counts as a mismatch. *)
let check_step (enc : Encoded.t) cover s input =
  let m = enc.Encoded.machine and e = enc.Encoded.encoding in
  match Fsm.next m ~input ~src:s with
  | None -> None
  | Some (dst, out) -> (
      let next_code, outputs = Encoded.eval enc cover ~input ~code:(Encoding.code e s) in
      let bad detail = Some (Mismatch { state = s; input; detail }) in
      match dst with
      | Some d when next_code <> Encoding.code e d ->
          bad
            (Printf.sprintf "next code %d, expected %d (state %s)" next_code (Encoding.code e d)
               m.Fsm.states.(d))
      | Some _ | None ->
          if outputs_agree out outputs then None
          else bad (Printf.sprintf "outputs disagree with %s" out))

let check_cover (enc : Encoded.t) cover =
  let m = enc.Encoded.machine in
  if m.Fsm.num_inputs > 16 then invalid_arg "Simulate.check_cover: too many inputs";
  let n = Array.length m.Fsm.states in
  let verdict = ref Equivalent in
  for s = 0 to n - 1 do
    for v = 0 to (1 lsl m.Fsm.num_inputs) - 1 do
      if !verdict = Equivalent then begin
        let input =
          String.init m.Fsm.num_inputs (fun i -> if v land (1 lsl i) <> 0 then '1' else '0')
        in
        match check_step enc cover s input with
        | Some bad -> verdict := bad
        | None -> ()
      end
    done
  done;
  !verdict

let check_cover_sampled rng (enc : Encoded.t) cover ~traces ~length =
  let m = enc.Encoded.machine in
  let start = Option.value m.Fsm.reset ~default:0 in
  let verdict = ref Equivalent in
  for _ = 1 to traces do
    if !verdict = Equivalent then begin
      let s = ref (Some start) in
      List.iter
        (fun input ->
          match !s with
          | None -> ()
          | Some cur -> (
              (match check_step enc cover cur input with
              | Some bad -> verdict := bad
              | None -> ());
              match Fsm.next m ~input ~src:cur with
              | Some (Some d, _) -> s := Some d
              | Some (None, _) | None -> s := None))
        (random_trace rng m ~length)
    end
  done;
  !verdict

let check_encoding (m : Fsm.t) e =
  let enc = Encoded.build m e in
  check_cover enc (Encoded.minimize enc)

let check_encoding_sampled rng (m : Fsm.t) e ~traces ~length =
  let enc = Encoded.build m e in
  check_cover_sampled rng enc (Encoded.minimize enc) ~traces ~length
