(** The symbolic (multiple-valued) cover of an FSM's combinational logic.

    The domain has one binary (two-part) variable per primary input, one
    multiple-valued variable whose parts are the present states, and a
    final multiple-valued output variable with one part per next state
    (1-hot) followed by one part per binary output — the positional
    representation on which ESPRESSO-MV style minimization runs
    (Section 2.2 of the paper). *)

open Logic

type t = {
  machine : Fsm.t;
  dom : Domain.t;
  on : Cover.t;
  dc : Cover.t;
  state_var : int;  (** index of the present-state variable *)
  output_var : int;  (** index of the output variable *)
}

(** [of_fsm m] builds the symbolic cover. The don't-care set contains the
    unspecified (input, state) region, rows with unspecified next states,
    and ['-'] output entries. *)
val of_fsm : Fsm.t -> t

(** [num_states t] is the number of parts of the state variable. *)
val num_states : t -> int

(** [next_state_part t s] is the output-variable part asserting next
    state [s]. *)
val next_state_part : t -> int -> int

(** [output_part t j] is the output-variable part of binary output [j]. *)
val output_part : t -> int -> int

(** [minimize t] is the ESPRESSO-MV minimized symbolic cover. An
    exhausted [budget] interrupts the minimizer, which degrades to a
    less-minimized (but still correct) cover — see {!Espresso.minimize}. *)
val minimize : ?budget:Budget.t -> t -> Cover.t

(** [present_states t c] is the set of present states asserted by cube
    [c], as a bit vector over the states. *)
val present_states : t -> Cube.t -> Bitvec.t
