(** KISS2 state-transition-table format.

    The format read and written here is the MCNC benchmark format the
    paper's flow consumes:

    {v
    .i 2
    .o 1
    .s 4
    .p 8
    .r st0
    01 st0 st1 0
    ...
    .e
    v}

    Present state ['*'] (any state) and next state ['-'] (unspecified) are
    accepted. *)

(** A parse failure with its location. [line] and [col] are 1-based;
    either is 0 when unknown (e.g. whole-file complaints such as a
    missing [.i] declaration). *)
type error = { file : string; line : int; col : int; msg : string }

exception Parse_error of error

(** [error_to_string e] is the conventional ["file:line:col: msg"]. *)
val error_to_string : error -> string

(** [parse ~name ?file text] parses the KISS2 [text]. State names are
    collected in order of first appearance when no [.s]-declared order is
    implied. [file] (default ["<input>"]) only labels error locations.
    Raises [Parse_error] on malformed input — truncated directives,
    rows with the wrong field count, duplicate [.r] declarations,
    count mismatches against [.p]/[.s], unknown reset states. *)
val parse : name:string -> ?file:string -> string -> Fsm.t

(** [parse_result ~name ?file text] is [parse] returning the error as a
    value instead of raising. *)
val parse_result : name:string -> ?file:string -> string -> (Fsm.t, error) result

(** [print ppf m] writes [m] back in KISS2 syntax. *)
val print : Format.formatter -> Fsm.t -> unit

(** [to_string m] is [print] to a string. *)
val to_string : Fsm.t -> string
