(** Simulation and equivalence checking.

    Drives a machine over input traces and cross-checks the symbolic
    machine against its encoded two-level implementation — the
    correctness oracle for a state assignment: whatever the codes, the
    minimized PLA must realize every specified transition and output.

    {2 Don't-care comparison policy}

    The equivalence checks compare the encoded implementation against the
    transition table under the same don't-care semantics {!Encoded.build}
    uses to emit the PLA's DC-set; a point the table leaves unspecified
    never counts as a mismatch:

    - an output entry ['-'] leaves that output bit free — the
      implementation may produce either value there;
    - an unspecified next state (KISS ["-"], [dst = None]) leaves the
      {e entire} next-state field free — the next code is not compared;
    - a (state, input) pair matched by no row is completely free — the
      step is skipped;
    - a present-state ['*'] row ([src = None]) applies in {e every}
      state, including states with no other rows;
    - unreachable states are still checked: every state of the table gets
      a present-state code, so its specified rows must be realized even
      if no trace reaches it;
    - machines with zero outputs compare next codes only.

    Rows are matched first-match-first like {!Fsm.next}. The table is
    assumed deterministic: when two overlapping rows disagree, the
    encoded PLA realizes the {e union} of their asserted bits while the
    checker follows the first row, so a conflicting table can be reported
    as a mismatch — that is a specification bug, not an encoding bug. *)

(** One simulation step outcome. *)
type step = {
  input : string;
  state_before : int;
  state_after : int option;  (** [None] once behaviour became unspecified *)
  outputs : string;  (** as specified by the table, ['-'] kept *)
}

(** [run m ~from trace] drives [m] over the fully specified input strings
    of [trace], stopping early when behaviour becomes unspecified. *)
val run : Fsm.t -> from:int -> string list -> step list

(** [random_trace rng m ~length] draws a fully specified input trace. *)
val random_trace : Random.State.t -> Fsm.t -> length:int -> string list

(** Result of an equivalence check. *)
type verdict =
  | Equivalent
  | Mismatch of { state : int; input : string; detail : string }

(** [check_cover enc cover] verifies exhaustively (over every state and
    every input minterm; requires [num_inputs <= 16]) that [cover] —
    interpreted over [enc]'s domain — realizes every specified transition
    and output bit of [enc]'s machine under [enc]'s encoding. Unlike
    {!check_encoding} it takes the cover as given, so an independent
    checker can verify the exact artifact a pipeline produced instead of
    re-minimizing. *)
val check_cover : Encoded.t -> Logic.Cover.t -> verdict

(** [check_cover_sampled rng enc cover ~traces ~length] is the randomized
    version of {!check_cover} for machines with wide inputs: drives
    [traces] random traces of [length] steps from the reset state (or
    state 0). *)
val check_cover_sampled :
  Random.State.t -> Encoded.t -> Logic.Cover.t -> traces:int -> length:int -> verdict

(** [check_encoding m e] is {!check_cover} on the ESPRESSO-minimized
    implementation of [m] under encoding [e]. *)
val check_encoding : Fsm.t -> Encoding.t -> verdict

(** [check_encoding_sampled rng m e ~traces ~length] is the sampled
    variant of {!check_encoding}. *)
val check_encoding_sampled :
  Random.State.t -> Fsm.t -> Encoding.t -> traces:int -> length:int -> verdict
