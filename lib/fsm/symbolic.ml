open Logic

type t = {
  machine : Fsm.t;
  dom : Domain.t;
  on : Cover.t;
  dc : Cover.t;
  state_var : int;
  output_var : int;
}

let num_states t = Array.length t.machine.Fsm.states
let next_state_part _t s = s
let output_part t j = num_states t + j

(* Set the binary-input fields of [c] from an input pattern. *)
let apply_input_pattern dom c pattern =
  String.iteri
    (fun v ch ->
      match ch with
      | '0' -> Bitvec.clear c (Domain.offset dom v + 1)
      | '1' -> Bitvec.clear c (Domain.offset dom v + 0)
      | '-' -> ()
      | _ -> assert false)
    pattern;
  c

let of_fsm (m : Fsm.t) =
  let ni = m.Fsm.num_inputs and no = m.Fsm.num_outputs in
  let ns = Array.length m.Fsm.states in
  let sizes = Array.append (Array.make ni 2) [| ns; ns + no |] in
  let dom = Domain.create sizes in
  let state_var = ni and output_var = ni + 1 in
  let out_off = Domain.offset dom output_var in
  let out_sz = Domain.size dom output_var in
  let state_off = Domain.offset dom state_var in
  (* Base cube of a row: input and present-state fields set, output field
     cleared (to be populated with the asserted columns). *)
  let row_base (tr : Fsm.transition) =
    let c = apply_input_pattern dom (Bitvec.full (Domain.width dom)) tr.Fsm.input in
    (match tr.Fsm.src with
    | None -> ()
    | Some s ->
        Bitvec.clear_range c state_off ns;
        Bitvec.set c (state_off + s));
    Bitvec.clear_range c out_off out_sz;
    c
  in
  let on = ref [] and dc = ref [] in
  List.iter
    (fun (tr : Fsm.transition) ->
      let base = row_base tr in
      (* ON: asserted next state (1-hot column) + asserted binary outputs. *)
      let on_cols = ref [] in
      (match tr.Fsm.dst with None -> () | Some s -> on_cols := s :: !on_cols);
      String.iteri (fun j ch -> if ch = '1' then on_cols := (ns + j) :: !on_cols) tr.Fsm.output;
      if !on_cols <> [] then begin
        let c = Bitvec.copy base in
        List.iter (fun col -> Bitvec.set c (out_off + col)) !on_cols;
        on := c :: !on
      end;
      (* DC: unspecified next state opens all next-state columns;
         '-' outputs open their column. *)
      let dc_cols = ref [] in
      (match tr.Fsm.dst with
      | None -> for s = 0 to ns - 1 do dc_cols := s :: !dc_cols done
      | Some _ -> ());
      String.iteri (fun j ch -> if ch = '-' then dc_cols := (ns + j) :: !dc_cols) tr.Fsm.output;
      if !dc_cols <> [] then begin
        let c = Bitvec.copy base in
        List.iter (fun col -> Bitvec.set c (out_off + col)) !dc_cols;
        dc := c :: !dc
      end)
    m.Fsm.transitions;
  (* The (input, state) region matched by no row is fully unspecified. *)
  let projections =
    List.map
      (fun tr ->
        let c = row_base tr in
        Bitvec.set_range c out_off out_sz;
        c)
      m.Fsm.transitions
  in
  let unspecified = Cover.complement (Cover.make dom projections) in
  let on = Cover.make dom (List.rev !on) in
  let dc = Cover.union (Cover.make dom (List.rev !dc)) unspecified in
  { machine = m; dom; on; dc; state_var; output_var }

let minimize ?budget t = Espresso.minimize ?budget ~dc:t.dc t.on

let present_states t c =
  let ns = num_states t in
  let off = Domain.offset t.dom t.state_var in
  let b = Bitvec.create ns in
  for s = 0 to ns - 1 do
    if Bitvec.get c (off + s) then Bitvec.set b s
  done;
  b
