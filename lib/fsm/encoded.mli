(** Encoded (binary) PLA implementation of an FSM under a state encoding.

    The domain has one binary variable per primary input, one per state
    bit, and a final multiple-valued output variable whose parts are the
    next-state bits followed by the binary outputs — the standard
    multiple-output PLA personality. The paper's area model is

    {v area = (2*(#inputs + #bits) + #bits + #outputs) * #cubes v} *)

open Logic

type t = {
  machine : Fsm.t;
  encoding : Encoding.t;
  dom : Domain.t;
  on : Cover.t;
  dc : Cover.t;
}

(** [build m e] encodes the transition table of [m] with [e]. The
    don't-care set contains the region matched by no row (including
    unused state codes), rows with unspecified next states, and ['-']
    output entries. *)
val build : Fsm.t -> Encoding.t -> t

(** [minimize t] is the ESPRESSO-minimized encoded cover. An exhausted
    [budget] interrupts the minimizer, which degrades to a less-minimized
    (but still correct) cover — see {!Espresso.minimize}. *)
val minimize : ?budget:Budget.t -> t -> Cover.t

(** [area ~machine ~encoding ~num_cubes] is the paper's PLA area model. *)
val area : machine:Fsm.t -> encoding:Encoding.t -> num_cubes:int -> int

type result = { cover : Cover.t; num_cubes : int; area : int }

(** [implement m e] is [build] + [minimize] + the area figures. *)
val implement : ?budget:Budget.t -> Fsm.t -> Encoding.t -> result

(** [eval t cover ~input ~code] evaluates the minimized [cover] at the
    fully specified [input] pattern and present-state [code], returning
    [(next_code, outputs)] where [outputs.(j)] is output [j]. *)
val eval : t -> Cover.t -> input:string -> code:int -> int * bool array
