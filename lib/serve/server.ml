type config = {
  socket_path : string;
  jobs : int;
  max_inflight : int;
  cap_deadline_ms : float option;
  cap_work : int option;
  cache : Exec.Cache.t option;
  quiet : bool;
  access_log : string option;
  flight_record : string option;
  flight_capacity : int;
}

let default_flight_capacity = 64

let default_config ~socket_path =
  {
    socket_path; jobs = 1; max_inflight = 1; cap_deadline_ms = None; cap_work = None;
    cache = None; quiet = false; access_log = None; flight_record = None;
    flight_capacity = default_flight_capacity;
  }

type stats = {
  requests : int;
  served : int;
  errors : int;
  coalesced : int;
  computed : int;
  cache_hits : int;
  inflight_peak : int;
}

(* What one request resolves to, shared verbatim between coalesced
   requesters: the rendered stdout payload (when any), the error that
   sets the response code (when any — a report table with error rows
   carries both), where the result came from, and the budget work the
   computation charged (followers report the leader's spend — it is the
   work behind the bytes they received). *)
type served = {
  payload : string option;
  err : Nova_error.t option;
  origin : string;
  spent : int;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  active : int Atomic.t;
  c_requests : int Atomic.t;
  c_served : int Atomic.t;
  c_errors : int Atomic.t;
  c_coalesced : int Atomic.t;
  c_computed : int Atomic.t;
  c_hits : int Atomic.t;
  peak : int Atomic.t;
  slots : Semaphore.Counting.t;
  inflight : served Exec.Inflight.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_mutex : Mutex.t;
  started : float;
  seq : int Atomic.t;  (* server-assigned request ids (access log, flight ring) *)
  flight : Metrics.Flight.t;
  access : out_channel option;
  access_lock : Mutex.t;
}

(* Mirrored into Instrument (default-off, like every probe in the tree)
   so the coalescing tests can assert "exactly one computation" through
   the same counter fabric as the rest of the executor. *)
let i_requests = Instrument.counter "serve.requests"
let i_served = Instrument.counter "serve.served"
let i_errors = Instrument.counter "serve.errors"
let i_coalesced = Instrument.counter "serve.coalesced"
let i_computed = Instrument.counter "serve.computed"
let i_hits = Instrument.counter "serve.cache_hits"

(* Production metrics (default-on, see lib/metrics): request counts by
   verb, full-request latency by (tier, verb), and the four lifecycle
   phases. Labeled instruments are interned per call — a mutexed table
   lookup, noise against even a ping's socket round-trip. *)
let m_requests verb =
  Metrics.Registry.counter ~help:"Requests by verb (malformed lines count as invalid)."
    ~labels:[ ("verb", verb) ] "nova_serve_requests_total"

let m_request_seconds ~tier ~verb =
  Metrics.Registry.histogram
    ~help:"Full request latency by serving tier and verb."
    ~labels:[ ("tier", tier); ("verb", verb) ]
    "nova_serve_request_seconds"

let m_phase phase =
  Metrics.Registry.histogram ~help:"Request lifecycle phase latency."
    ~labels:[ ("phase", phase) ] "nova_serve_phase_seconds"

let m_parse = m_phase "parse"
let m_admission = m_phase "admission"
let m_compute = m_phase "compute"
let m_render = m_phase "render"

let timed h f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Metrics.Registry.observe h (Unix.gettimeofday () -. t0);
  r

let snapshot t =
  {
    requests = Atomic.get t.c_requests;
    served = Atomic.get t.c_served;
    errors = Atomic.get t.c_errors;
    coalesced = Atomic.get t.c_coalesced;
    computed = Atomic.get t.c_computed;
    cache_hits = Atomic.get t.c_hits;
    inflight_peak = Atomic.get t.peak;
  }

let zero_stats =
  {
    requests = 0; served = 0; errors = 0; coalesced = 0; computed = 0; cache_hits = 0;
    inflight_peak = 0;
  }

let current : t option ref = ref None
let last = ref zero_stats
let last_stats () = match !current with Some t -> snapshot t | None -> !last

let resolve_machine = function
  | Protocol.Builtin name -> (
      match Benchmarks.Suite.find name with
      | m -> Ok m
      | exception Not_found ->
          Error
            (Nova_error.Invalid_request
               (Printf.sprintf
                  "no built-in machine called %S (send KISS2 text in \"kiss2\" instead)" name)))
  | Protocol.Kiss2 { name; text } -> (
      let name = Option.value name ~default:"request" in
      match Kiss.parse_result ~name ~file:"<kiss2>" text with
      | Ok m -> Ok m
      | Error { Kiss.file; line; col; msg } ->
          Error (Nova_error.Parse_error { file; line; col; msg }))

let caps t = { Budget.cap_deadline_ms = t.cfg.cap_deadline_ms; cap_work = t.cfg.cap_work }

(* One compute slot: [max_inflight] gates how many computations run at
   once (coalesced followers never take one — they only wait). All
   span-emitting work happens inside a slot, so with the default single
   slot a traced session keeps one balanced span stack per track. The
   admission budget is derived *after* the queue wait — it meters the
   compute, not the line. *)
let with_slot t f =
  let t0 = Unix.gettimeofday () in
  Semaphore.Counting.acquire t.slots;
  let queue_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Metrics.Registry.observe m_admission (queue_ms /. 1000.);
  if Trace.enabled () && queue_ms > 0.5 then
    Trace.instant "serve.queue" ~attrs:[ ("queue_ms", Trace.Float queue_ms) ];
  Fun.protect ~finally:(fun () -> Semaphore.Counting.release t.slots) (fun () -> f ())

let origin_name = function
  | Exec.Job.Computed -> "computed"
  | Exec.Job.Cached -> "cached"
  | Exec.Job.Cancelled_by_race -> "cancelled"

let count_origin t (row : Exec.Job.row) =
  match row.Exec.Job.origin with
  | Exec.Job.Computed ->
      Atomic.incr t.c_computed;
      Instrument.bump i_computed
  | Exec.Job.Cached ->
      Atomic.incr t.c_hits;
      Instrument.bump i_hits
  | Exec.Job.Cancelled_by_race -> ()

let render_encode m (s : Exec.Job.success) ~budget =
  Render.encode_text m s.Exec.Job.encoding ~num_cubes:s.Exec.Job.num_cubes
    ~area:s.Exec.Job.area
    ~onehot:(Render.onehot_reference ~budget m)

(* A plain request (no budget_ms / max_work ask) takes the full serving
   path: coalescing table, cache read, store under the determinism
   gate. A constrained request computes individually — its degradation
   level depends on its asks, so sharing a computation (or a cached
   full-quality entry whose fingerprint never saw the ask) would break
   "byte-identical to the one-shot CLI with the same flags". *)
let serve_encode t (req : Protocol.encode_request) =
  match resolve_machine req.Protocol.machine with
  | Error e -> { payload = None; err = Some e; origin = "request"; spent = 0 }
  | Ok m -> (
      let task = Exec.Job.task ?bits:req.bits ~fallback:req.fallback m req.algorithm in
      let leader ?cache () =
        with_slot t @@ fun () ->
        let budget =
          Budget.derive ?deadline_ms:req.budget_ms ?max_work:req.max_work (caps t)
        in
        let row = timed m_compute (fun () -> Exec.Portfolio.run_task ?cache ~budget task) in
        count_origin t row;
        let spent = Budget.spent budget in
        match row.Exec.Job.result with
        | Ok s ->
            {
              payload = Some (timed m_render (fun () -> render_encode m s ~budget));
              err = None;
              origin = origin_name row.Exec.Job.origin;
              spent;
            }
        | Error e ->
            { payload = None; err = Some e; origin = origin_name row.Exec.Job.origin; spent }
      in
      let plain = req.budget_ms = None && req.max_work = None in
      if not plain then leader ()
      else
        match
          Exec.Inflight.run t.inflight ~key:(Exec.Job.key task) (fun () ->
              leader ?cache:t.cfg.cache ())
        with
        | served, `Leader -> served
        | served, `Coalesced ->
            Atomic.incr t.c_coalesced;
            Instrument.bump i_coalesced;
            { served with origin = "coalesced" })

let serve_report t ~budget_ms machine =
  match resolve_machine machine with
  | Error e -> { payload = None; err = Some e; origin = "request"; spent = 0 }
  | Ok m -> (
      let tasks = Exec.Portfolio.tasks_for m in
      let plain = budget_ms = None in
      let unconstrained = plain && t.cfg.cap_deadline_ms = None && t.cfg.cap_work = None in
      let leader ?cache () =
        with_slot t @@ fun () ->
        let rows, spent =
          timed m_compute @@ fun () ->
          if unconstrained then
            (* No external budget anywhere: run the real portfolio pool
               (rows are jobs-independent, so --jobs only buys time). *)
            (Exec.Portfolio.run ~jobs:t.cfg.jobs ?cache tasks, 0)
          else
            (* A budget tree is ticked by one domain: under a request
               deadline the tasks run sequentially, sharing the request
               budget — a per-request ceiling, not a per-task one. *)
            let budget = Budget.derive ?deadline_ms:budget_ms (caps t) in
            let rows = List.map (fun task -> Exec.Portfolio.run_task ?cache ~budget task) tasks in
            (rows, Budget.spent budget)
        in
        List.iter (count_origin t) rows;
        let err =
          List.find_map
            (fun (r : Exec.Job.row) ->
              match (r.Exec.Job.result, r.Exec.Job.origin) with
              | Error _, Exec.Job.Cancelled_by_race -> None
              | Error e, _ -> Some e
              | Ok _, _ -> None)
            rows
        in
        let origin =
          if List.exists (fun (r : Exec.Job.row) -> r.Exec.Job.origin = Exec.Job.Computed) rows
          then "computed"
          else "cached"
        in
        {
          payload =
            Some (timed m_render (fun () -> Render.report_table ~race:false ~num_machines:1 rows));
          err;
          origin;
          spent;
        }
      in
      if not plain then leader ()
      else
        let key =
          Digest.to_hex
            (Digest.string (String.concat "\x00" ("report" :: List.map Exec.Job.key tasks)))
        in
        match
          Exec.Inflight.run t.inflight ~key (fun () -> leader ?cache:t.cfg.cache ())
        with
        | served, `Leader -> served
        | served, `Coalesced ->
            Atomic.incr t.c_coalesced;
            Instrument.bump i_coalesced;
            { served with origin = "coalesced" })

(* The quarantine registry as JSON rows — runtime visibility into the
   pairs the supervisor has written off (and how much work the skips
   saved), embedded in the stats response. *)
let quarantine_json () =
  Json_min.Arr
    (List.map
       (fun (q : Exec.Supervise.quarantine_entry) ->
         Json_min.Obj
           [
             ("machine", Json_min.Str q.Exec.Supervise.q_machine);
             ("algorithm", Json_min.Str q.Exec.Supervise.q_algorithm);
             ("cycles", Json_min.Num (float_of_int q.Exec.Supervise.q_cycles));
             ("skips", Json_min.Num (float_of_int q.Exec.Supervise.q_skips));
             ( "quarantined",
               Json_min.Bool (q.Exec.Supervise.q_cycles >= Exec.Supervise.quarantine_threshold)
             );
             ("detail", Json_min.Str q.Exec.Supervise.q_detail);
           ])
       (Exec.Supervise.quarantine_snapshot ()))

let stats_response t ~id =
  let s = snapshot t in
  let num n = Json_min.Num (float_of_int n) in
  let cache_fields, cache_line =
    match t.cfg.cache with
    | None -> ([], "cache: off")
    | Some c ->
        let cs = Exec.Cache.stats c in
        ( [
            ("cache_hits", num s.cache_hits); ("cache_misses", num cs.Exec.Cache.misses);
            ("cache_stores", num cs.Exec.Cache.stores);
            ("cache_rejected", num cs.Exec.Cache.rejected);
          ],
          Printf.sprintf "cache: %d hits, %d misses, %d stores, %d rejected (%s)"
            cs.Exec.Cache.hits cs.Exec.Cache.misses cs.Exec.Cache.stores
            cs.Exec.Cache.rejected (Exec.Cache.dir c) )
  in
  let payload =
    Printf.sprintf
      "serve stats: %d requests, %d served, %d errors\n\
       coalesced %d, computed %d, cache hits %d, peak in-flight %d\n\
       %s\n"
      s.requests s.served s.errors s.coalesced s.computed s.cache_hits s.inflight_peak
      cache_line
  in
  Protocol.ok_response ?id
    ~extra:
      ([
         ("proto", Json_min.Str Protocol.proto);
         ("requests", num s.requests); ("served", num s.served); ("errors", num s.errors);
         ("coalesced", num s.coalesced); ("computed", num s.computed);
         ("inflight_peak", num s.inflight_peak);
         ("uptime_s", Json_min.Num (Unix.gettimeofday () -. t.started));
       ]
      @ cache_fields
      (* New keys only ever append: every pre-metrics key above stays
         byte-compatible (pinned by test_serve). *)
      @ [ ("metrics", Metrics.Expose.json ()); ("quarantine", quarantine_json ()) ])
    ~payload ()

let metrics_response ~id =
  Protocol.ok_response ?id
    ~extra:[ ("proto", Json_min.Str Protocol.proto); ("metrics", Metrics.Expose.json ()) ]
    ~payload:(Metrics.Expose.prometheus ()) ()

(* The flightrec payload is the same JSON document a crash/shutdown
   dump writes; when a --flight-record path is configured the request
   also refreshes the on-disk artifact. *)
let flightrec_response t ~id =
  let doc = Metrics.Flight.to_json ~reason:"request" t.flight in
  (match t.cfg.flight_record with
  | Some path -> Metrics.Flight.dump ~reason:"request" ~path t.flight
  | None -> ());
  Protocol.ok_response ?id
    ~extra:[ ("proto", Json_min.Str Protocol.proto) ]
    ~payload:(Json_min.render doc ^ "\n")
    ()

let respond_served t ~id (s : served) =
  match s.err with
  | None ->
      Atomic.incr t.c_served;
      Instrument.bump i_served;
      Protocol.ok_response ?id ~origin:s.origin
        ~payload:(Option.value s.payload ~default:"")
        ()
  | Some e ->
      Atomic.incr t.c_errors;
      Instrument.bump i_errors;
      Protocol.error_response ?id ?payload:s.payload e

(* Per-request summary, feeding the metrics registry, the access log
   and the flight ring from one place at the end of [handle_line]. *)
type summary = {
  s_verb : string;
  s_machine : string;
  s_algorithm : string;
  s_tier : string;  (* the serve origin; "none" for bare verbs *)
  s_ok : bool;
  s_code : int;
  s_error : string;
  s_spent : int;
}

let bare verb = {
  s_verb = verb; s_machine = ""; s_algorithm = ""; s_tier = "none"; s_ok = true; s_code = 0;
  s_error = ""; s_spent = 0;
}

let machine_ref_name = function
  | Protocol.Builtin name -> name
  | Protocol.Kiss2 { name; _ } -> Option.value name ~default:"<kiss2>"

(* Error identities in summaries stay short: the first line, capped —
   flight dumps and access logs are records, not crash reports. *)
let error_brief e =
  let s = Nova_error.to_string e in
  let s = match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s in
  if String.length s > 160 then String.sub s 0 160 else s

let summary_of_served verb ~machine ~algorithm (s : served) =
  {
    s_verb = verb;
    s_machine = machine;
    s_algorithm = algorithm;
    s_tier = s.origin;
    s_ok = s.err = None;
    s_code = (match s.err with None -> 0 | Some e -> Nova_error.exit_code e);
    s_error = (match s.err with None -> "" | Some e -> error_brief e);
    s_spent = s.spent;
  }

(* One summary, three sinks: the (tier, verb) latency histogram + verb
   counter, one JSONL access-log line (append + flush under a mutex —
   lines from concurrent handler threads must not interleave), and the
   flight ring. The access log gets the budget spend too; the flight
   entry stays within its fixed shape. *)
let record_request t (s : summary) ~wall =
  Metrics.Registry.inc (m_requests s.s_verb);
  Metrics.Registry.observe (m_request_seconds ~tier:s.s_tier ~verb:s.s_verb) wall;
  let id = Atomic.fetch_and_add t.seq 1 in
  let entry =
    {
      Metrics.Flight.seq = 0;
      at = Unix.gettimeofday ();
      id;
      verb = s.s_verb;
      machine = s.s_machine;
      algorithm = s.s_algorithm;
      tier = s.s_tier;
      wall_ms = wall *. 1000.;
      ok = s.s_ok;
      code = s.s_code;
      error = s.s_error;
    }
  in
  Metrics.Flight.record t.flight entry;
  match t.access with
  | None -> ()
  | Some oc ->
      let line =
        Json_min.render
          (Json_min.Obj
             [
               ("at", Json_min.Num entry.Metrics.Flight.at);
               ("id", Json_min.Num (float_of_int id));
               ("verb", Json_min.Str s.s_verb);
               ("machine", Json_min.Str s.s_machine);
               ("algorithm", Json_min.Str s.s_algorithm);
               ("tier", Json_min.Str s.s_tier);
               ("wall_ms", Json_min.Num (wall *. 1000.));
               ("ok", Json_min.Bool s.s_ok);
               ("code", Json_min.Num (float_of_int s.s_code));
               ("error", Json_min.Str s.s_error);
               ("spent", Json_min.Num (float_of_int s.s_spent));
             ])
        ^ "\n"
      in
      Mutex.protect t.access_lock (fun () ->
          try
            output_string oc line;
            flush oc
          with Sys_error _ -> ())

(* One request line in, one response line out. Anything non-fatal the
   dispatch raises — the serve chaos site included — becomes a typed
   Job_crashed response (the daemon's exit-7 equivalent); fatal
   exceptions are never absorbed. *)
let handle_line t line =
  Atomic.incr t.c_requests;
  Instrument.bump i_requests;
  let t0 = Unix.gettimeofday () in
  let verb_of = function
    | Protocol.Ping -> "ping"
    | Protocol.Stats -> "stats"
    | Protocol.Metrics -> "metrics"
    | Protocol.Flightrec -> "flightrec"
    | Protocol.Shutdown -> "shutdown"
    | Protocol.Encode _ -> "encode"
    | Protocol.Report _ -> "report"
  in
  let response, summary =
    match timed m_parse (fun () -> Protocol.parse_request line) with
    | Error (id, e) ->
        Atomic.incr t.c_errors;
        Instrument.bump i_errors;
        ( Protocol.error_response ?id e,
          { (bare "invalid") with
            s_ok = false; s_code = Nova_error.exit_code e; s_error = error_brief e } )
    | Ok { Protocol.id; request } -> (
        let verb = verb_of request in
        let serve ok () =
          Atomic.incr t.c_served;
          Instrument.bump i_served;
          (ok, bare verb)
        in
        try
          Exec.Chaos.maybe_raise Exec.Chaos.Serve;
          match request with
          | Protocol.Ping ->
              serve
                (Protocol.ok_response ?id
                   ~extra:[ ("proto", Json_min.Str Protocol.proto) ]
                   ~payload:"pong" ())
                ()
          | Protocol.Stats -> serve (stats_response t ~id) ()
          | Protocol.Metrics -> serve (metrics_response ~id) ()
          | Protocol.Flightrec -> serve (flightrec_response t ~id) ()
          | Protocol.Shutdown ->
              Atomic.set t.stop true;
              serve (Protocol.ok_response ?id ~payload:"shutting down" ()) ()
          | Protocol.Encode req ->
              let machine = machine_ref_name req.Protocol.machine in
              let algorithm = Harness.Driver.name req.Protocol.algorithm in
              let served = serve_encode t req in
              ( respond_served t ~id served,
                summary_of_served verb ~machine ~algorithm served )
          | Protocol.Report { machine; budget_ms } ->
              let served = serve_report t ~budget_ms machine in
              ( respond_served t ~id served,
                summary_of_served verb ~machine:(machine_ref_name machine)
                  ~algorithm:"portfolio" served )
        with
        | (Out_of_memory | Stack_overflow | Sys.Break) as e -> raise e
        | e ->
            Atomic.incr t.c_errors;
            Instrument.bump i_errors;
            let err =
              Nova_error.Job_crashed
                { job = "serve:" ^ verb; attempts = 1; detail = Printexc.to_string e }
            in
            ( Protocol.error_response ?id err,
              { (bare verb) with
                s_ok = false; s_code = Nova_error.exit_code err; s_error = error_brief err } ))
  in
  let wall = Unix.gettimeofday () -. t0 in
  record_request t summary ~wall;
  if Trace.enabled () then
    Trace.instant "serve.request"
      ~attrs:[ ("verb", Trace.String summary.s_verb); ("wall_ms", Trace.Float (wall *. 1000.)) ];
  response

(* --- connection plumbing ------------------------------------------------ *)

let send_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      go (off + n) (len - n)
    end
  in
  go 0 (Bytes.length b)

(* Buffered line reader. [None] is end-of-stream: EOF, a connection
   error, or an oversized line ([overflow] distinguishes the last — the
   stream cannot be resynchronized past a line with no newline in
   sight, so the caller answers once and closes). *)
let read_line fd buf chunk overflow =
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    (* An oversized line is oversized whether or not its newline ever
       arrived — the cap is on the line, not on the wait. *)
    | Some i when i > Protocol.max_line_bytes ->
        overflow := true;
        None
    | Some i ->
        Buffer.clear buf;
        Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
        Some (String.sub s 0 i)
    | None -> (
        if Buffer.length buf > Protocol.max_line_bytes then begin
          overflow := true;
          None
        end
        else
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (_, _, _) -> None)
  in
  go ()

let bump_peak t =
  let a = Atomic.get t.active in
  let rec go () =
    let p = Atomic.get t.peak in
    if a > p && not (Atomic.compare_and_set t.peak p a) then go ()
  in
  go ()

let handle_conn t fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let overflow = ref false in
  let rec loop () =
    if not (Atomic.get t.stop) then
      match read_line fd buf chunk overflow with
      | None ->
          if !overflow then begin
            Atomic.incr t.c_errors;
            Instrument.bump i_errors;
            try
              send_all fd
                (Protocol.error_response
                   (Nova_error.Invalid_request
                      (Printf.sprintf "request line exceeds %d bytes" Protocol.max_line_bytes)))
            with Unix.Unix_error (_, _, _) | Sys_error _ -> ()
          end
      | Some line ->
          (* [active] covers handling *and* the response write, so the
             shutdown drain never closes a socket under a reply. *)
          Atomic.incr t.active;
          bump_peak t;
          Fun.protect
            ~finally:(fun () -> Atomic.decr t.active)
            (fun () ->
              let response = handle_line t line in
              (* A client that disconnected mid-request gets nothing;
                 its work still settled (and cached/coalesced). *)
              try send_all fd response
              with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
          loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.conns_mutex;
      Hashtbl.remove t.conns fd;
      Mutex.unlock t.conns_mutex;
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    loop

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.listen_fd with
          | fd, _ ->
              Mutex.lock t.conns_mutex;
              Hashtbl.replace t.conns fd ();
              Mutex.unlock t.conns_mutex;
              ignore (Thread.create (fun () -> handle_conn t fd) ())
          | exception Unix.Unix_error (_, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* Bind, refusing to evict a live server: if something answers on the
   path it stays; a socket file nothing listens on (a crashed daemon's
   leftover) is replaced. *)
let bind_socket path =
  let stale_removed =
    if Sys.file_exists path then begin
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error (_, _, _) -> false
      in
      (try Unix.close probe with Unix.Unix_error (_, _, _) -> ());
      if live then Error ()
      else begin
        (try Sys.remove path with Sys_error _ -> ());
        Ok ()
      end
    end
    else Ok ()
  in
  match stale_removed with
  | Error () ->
      Error
        (Nova_error.Invalid_request
           (Printf.sprintf "another server is already listening on %s" path))
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          Error
            (Nova_error.Invalid_request
               (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e))))

let with_signals t f =
  let install s h = try Some (Sys.signal s h) with Invalid_argument _ | Sys_error _ -> None in
  let on_signal = Sys.Signal_handle (fun _ -> Atomic.set t.stop true) in
  let old_int = install Sys.sigint on_signal in
  let old_term = install Sys.sigterm on_signal in
  let old_pipe = install Sys.sigpipe Sys.Signal_ignore in
  let restore s old = match old with Some h -> ignore (install s h) | None -> () in
  Fun.protect
    ~finally:(fun () ->
      restore Sys.sigint old_int;
      restore Sys.sigterm old_term;
      restore Sys.sigpipe old_pipe)
    f

let drain_timeout_s = 10.

let run cfg =
  match bind_socket cfg.socket_path with
  | Error e -> Error e
  | Ok listen_fd ->
      (* The access log opens append-only before the first request and
         fails the run loudly: a daemon asked to keep a request record
         must not serve without one. *)
      let access =
        match cfg.access_log with
        | None -> Ok None
        | Some path -> (
            match open_out_gen [ Open_append; Open_creat ] 0o644 path with
            | oc -> Ok (Some oc)
            | exception Sys_error msg ->
                Error (Nova_error.Invalid_request ("cannot open access log: " ^ msg)))
      in
      (match access with
       | Error e ->
           (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
           (try Sys.remove cfg.socket_path with Sys_error _ -> ());
           Error e
       | Ok access ->
      let t =
        {
          cfg; listen_fd; stop = Atomic.make false; active = Atomic.make 0;
          c_requests = Atomic.make 0; c_served = Atomic.make 0; c_errors = Atomic.make 0;
          c_coalesced = Atomic.make 0; c_computed = Atomic.make 0; c_hits = Atomic.make 0;
          peak = Atomic.make 0;
          slots = Semaphore.Counting.make (max 1 cfg.max_inflight);
          inflight = Exec.Inflight.create ();
          conns = Hashtbl.create 16;
          conns_mutex = Mutex.create ();
          started = Unix.gettimeofday ();
          seq = Atomic.make 0;
          flight = Metrics.Flight.create (max 1 cfg.flight_capacity);
          access;
          access_lock = Mutex.create ();
        }
      in
      current := Some t;
      if not cfg.quiet then
        Printf.eprintf "serve: listening on %s (%d slot%s%s)\n%!" cfg.socket_path
          (max 1 cfg.max_inflight)
          (if cfg.max_inflight = 1 then "" else "s")
          (match cfg.cache with
          | Some c -> ", cache " ^ Exec.Cache.dir c
          | None -> ", no cache");
      let dump_flight reason =
        match cfg.flight_record with
        | Some path -> Metrics.Flight.dump ~reason ~path t.flight
        | None -> ()
      in
      let serve_until_shutdown () =
        with_signals t (fun () ->
            accept_loop t;
            (* Drain: let in-flight requests finish writing, bounded so a
               wedged request cannot hold shutdown hostage. *)
            let deadline = Unix.gettimeofday () +. drain_timeout_s in
            while Atomic.get t.active > 0 && Unix.gettimeofday () < deadline do
              Thread.delay 0.01
            done;
            (* Unblock handler threads parked in read; they observe EOF
               and close their fds themselves. *)
            Mutex.lock t.conns_mutex;
            Hashtbl.iter
              (fun fd () ->
                try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error (_, _, _) -> ())
              t.conns;
            Mutex.unlock t.conns_mutex;
            Thread.delay 0.05;
            (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
            (try Sys.remove cfg.socket_path with Sys_error _ -> ());
            let swept =
              match cfg.cache with None -> 0 | Some c -> Exec.Cache.sweep_own_tmp c
            in
            dump_flight "shutdown";
            (match t.access with Some oc -> (try close_out oc with Sys_error _ -> ()) | None -> ());
            let s = snapshot t in
            last := s;
            current := None;
            if not cfg.quiet then
              Printf.eprintf
                "serve: shutdown after %d requests (%d served, %d errors, %d coalesced, peak \
                 in-flight %d%s)\n\
                 %!"
                s.requests s.served s.errors s.coalesced s.inflight_peak
                (if swept > 0 then Printf.sprintf ", %d stale tmp swept" swept else "");
            Ok ())
      in
      (* A fatal exception escaping the serve loop is the crash the
         flight recorder exists for: dump the ring on the way down. *)
      (try serve_until_shutdown ()
       with e ->
         dump_flight "crash";
         (match t.access with Some oc -> (try close_out oc with Sys_error _ -> ()) | None -> ());
         current := None;
         raise e))
