(** The encode daemon: a long-running server on a Unix-domain socket
    speaking {!Protocol}, with the certified result cache as its hot
    tier and the supervised portfolio as its cold tier.

    {b Request lifecycle}: each connection gets a handler thread;
    each request line is parsed ({!Protocol.parse_request}), passed
    through the [serve] chaos site, and dispatched. [encode]/[report]
    requests resolve their machine, then:

    - a {e plain} request (no [budget_ms]/[max_work] ask) enters the
      in-flight coalescing table ({!Exec.Inflight}) keyed by the job's
      content address — concurrent identical requests share one
      computation, and every requester gets the byte-identical payload.
      The leader takes a compute slot ([max_inflight] gates how many
      computations run at once), consults the cache, else computes
      through {!Exec.Portfolio} (supervision, retry, quarantine intact)
      and stores under the determinism gate;
    - a {e constrained} request (an explicit [budget_ms] or [max_work])
      is computed individually with neither cache read nor write nor
      coalescing, under [Budget.derive] of its asks and the server caps
      — behaviorally identical to the one-shot CLI with the same flags,
      and immune to serving another request's degradation level.

    {b Shutdown}: the [shutdown] verb, SIGINT or SIGTERM stop the accept
    loop; in-flight requests drain (bounded), handler reads are
    unblocked, the socket file is unlinked, and the cache directory is
    swept of this process's stale temp files
    ({!Exec.Cache.sweep_own_tmp}) — an interrupted daemon never leaves
    the cache needing a manual fsck.

    {b Tracing}: request handling emits only {e instant} events from
    handler threads (systhreads share one trace track, so spans from
    concurrent threads would interleave); span-emitting work — compute,
    cache recertification, the 1-hot render — runs inside a compute
    slot, serialized when [max_inflight = 1] (the default), so a traced
    serve session exports a valid Perfetto/JSONL artifact. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains for a plain [report]'s portfolio pool *)
  max_inflight : int;  (** concurrent compute slots (not connections) *)
  cap_deadline_ms : float option;  (** per-request admission ceilings... *)
  cap_work : int option;  (** ...each axis the min of cap and ask *)
  cache : Exec.Cache.t option;
  quiet : bool;  (** suppress the stderr banner and shutdown summary *)
  access_log : string option;
      (** append one JSONL line per request (id, verb, machine,
          algorithm, tier, wall, outcome/exit code, budget spent) *)
  flight_record : string option;
      (** dump the flight-recorder ring to this path on crash, on
          shutdown, and on each [flightrec] request *)
  flight_capacity : int;  (** flight-ring size (last N requests) *)
}

val default_flight_capacity : int
(** 64 — the default flight-ring size. *)

val default_config : socket_path:string -> config
(** 1 job, 1 compute slot, no caps, no cache, not quiet, no access log,
    no flight-record path, {!default_flight_capacity} ring. *)

(** Counter snapshot, as served by the [stats] verb (also mirrored in
    the [serve.*] Instrument counters when instrumentation is on). *)
type stats = {
  requests : int;  (** request lines received (malformed included) *)
  served : int;  (** ["ok"] responses *)
  errors : int;  (** ["error"] responses *)
  coalesced : int;  (** requests that shared another request's computation *)
  computed : int;  (** cache misses that reached the portfolio *)
  cache_hits : int;  (** requests answered from the certified cache *)
  inflight_peak : int;  (** max concurrent requests being handled *)
}

(** [run config] binds the socket (refusing when a live server already
    listens there, replacing a stale socket file otherwise) and serves
    until shutdown. Returns [Ok ()] on clean shutdown, [Error] when the
    socket cannot be bound. The final counter snapshot is in
    {!last_stats}. *)
val run : config -> (unit, Nova_error.t) result

(** [last_stats ()] is the counter snapshot of the most recent {!run}
    (live while one is running) — for tests that drive an in-process
    server. *)
val last_stats : unit -> stats
