type machine_ref = Builtin of string | Kiss2 of { name : string option; text : string }

type encode_request = {
  machine : machine_ref;
  algorithm : Harness.Driver.algorithm;
  bits : int option;
  max_work : int option;
  fallback : bool;
  budget_ms : float option;
}

type request =
  | Ping
  | Stats
  | Metrics
  | Flightrec
  | Shutdown
  | Encode of encode_request
  | Report of { machine : machine_ref; budget_ms : float option }

type parsed = { id : Json_min.t option; request : request }

let proto = "nova-serve/1"

(* Generous: a synthetic stress machine's KISS2 text is well under a
   megabyte; anything approaching this cap is garbage, not a request. *)
let max_line_bytes = 8 * 1024 * 1024

(* Field accessors that distinguish "absent" (use the default) from
   "present but the wrong shape" (a typed protocol error) — a client
   sending ["bits": "five"] must hear about it, not silently run with
   the default. *)
exception Bad of string

let parse_request line =
  match Json_min.of_string line with
  | exception Json_min.Parse_error msg ->
      Error (None, Nova_error.Parse_error { file = "<request>"; line = 1; col = 0; msg })
  | json -> (
      let id = Json_min.member "id" json in
      let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt in
      let str_field k =
        match Json_min.member k json with
        | None -> None
        | Some (Json_min.Str s) -> Some s
        | Some _ -> bad "field %S must be a string" k
      in
      let int_field k =
        match Json_min.member k json with
        | None -> None
        | Some (Json_min.Num f) when Float.is_integer f -> Some (int_of_float f)
        | Some _ -> bad "field %S must be an integer" k
      in
      let float_field k =
        match Json_min.member k json with
        | None -> None
        | Some (Json_min.Num f) -> Some f
        | Some _ -> bad "field %S must be a number" k
      in
      let bool_field k default =
        match Json_min.member k json with
        | None -> default
        | Some (Json_min.Bool b) -> b
        | Some _ -> bad "field %S must be a boolean" k
      in
      let machine_ref () =
        match (str_field "machine", str_field "kiss2") with
        | Some _, Some _ -> bad "give either \"machine\" or \"kiss2\", not both"
        | Some m, None -> Builtin m
        | None, Some text -> Kiss2 { name = str_field "name"; text }
        | None, None -> bad "missing \"machine\" or \"kiss2\""
      in
      try
        match json with
        | Json_min.Obj _ -> (
            match str_field "verb" with
            | None -> bad "missing \"verb\""
            | Some "ping" -> Ok { id; request = Ping }
            | Some "stats" -> Ok { id; request = Stats }
            | Some "metrics" -> Ok { id; request = Metrics }
            | Some "flightrec" -> Ok { id; request = Flightrec }
            | Some "shutdown" -> Ok { id; request = Shutdown }
            | Some "report" ->
                Ok
                  {
                    id;
                    request =
                      Report { machine = machine_ref (); budget_ms = float_field "budget_ms" };
                  }
            | Some "encode" ->
                let algorithm =
                  match str_field "algorithm" with
                  | None -> Harness.Driver.Ihybrid
                  | Some s -> (
                      match Harness.Driver.algorithm_of_name s with
                      | Some a -> a
                      | None -> bad "unknown algorithm %S" s)
                in
                Ok
                  {
                    id;
                    request =
                      Encode
                        {
                          machine = machine_ref ();
                          algorithm;
                          bits = int_field "bits";
                          max_work = int_field "max_work";
                          fallback = bool_field "fallback" true;
                          budget_ms = float_field "budget_ms";
                        };
                  }
            | Some v -> bad "unknown verb %S" v)
        | _ -> bad "request must be a JSON object"
      with Bad msg -> Error (id, Nova_error.Invalid_request msg))

(* --- responses --------------------------------------------------------- *)

let opt_id id fields = match id with None -> fields | Some v -> ("id", v) :: fields
let line_of fields = Json_min.render (Json_min.Obj fields) ^ "\n"

let ok_response ?id ?origin ?(extra = []) ~payload () =
  line_of
    (opt_id id
       ([ ("status", Json_min.Str "ok") ]
       @ (match origin with None -> [] | Some o -> [ ("origin", Json_min.Str o) ])
       @ [ ("payload", Json_min.Str payload) ]
       @ extra))

let error_response ?id ?payload err =
  line_of
    (opt_id id
       ([
          ("status", Json_min.Str "error");
          ("code", Json_min.Num (float_of_int (Nova_error.exit_code err)));
          ("error", Json_min.Str (Nova_error.to_string err));
        ]
       @ match payload with None -> [] | Some p -> [ ("payload", Json_min.Str p) ]))

(* --- client side ------------------------------------------------------- *)

let machine_fields = function
  | Builtin m -> [ ("machine", Json_min.Str m) ]
  | Kiss2 { name; text } -> (
      ("kiss2", Json_min.Str text)
      :: (match name with None -> [] | Some n -> [ ("name", Json_min.Str n) ]))

let opt_int k v = match v with None -> [] | Some i -> [ (k, Json_min.Num (float_of_int i)) ]
let opt_num k v = match v with None -> [] | Some f -> [ (k, Json_min.Num f) ]

let encode_line ?id ?bits ?max_work ?fallback ?budget_ms ~algorithm machine =
  line_of
    (opt_id id
       ([ ("verb", Json_min.Str "encode") ]
       @ machine_fields machine
       @ [ ("algorithm", Json_min.Str algorithm) ]
       @ opt_int "bits" bits @ opt_int "max_work" max_work
       @ (match fallback with None -> [] | Some b -> [ ("fallback", Json_min.Bool b) ])
       @ opt_num "budget_ms" budget_ms))

let report_line ?id ?budget_ms machine =
  line_of
    (opt_id id
       ([ ("verb", Json_min.Str "report") ]
       @ machine_fields machine @ opt_num "budget_ms" budget_ms))

let verb_line ?id verb = line_of (opt_id id [ ("verb", Json_min.Str verb) ])

type reply = {
  reply_id : Json_min.t option;
  ok : bool;
  code : int;
  origin : string option;
  payload : string option;
  error : string option;
  raw : Json_min.t;
}

let parse_reply line =
  match Json_min.of_string line with
  | exception Json_min.Parse_error msg -> Error ("malformed response: " ^ msg)
  | raw -> (
      let str k = Option.bind (Json_min.member k raw) Json_min.to_string in
      let reply_id = Json_min.member "id" raw in
      match str "status" with
      | Some "ok" ->
          Ok
            {
              reply_id; ok = true; code = 0; origin = str "origin";
              payload = str "payload"; error = None; raw;
            }
      | Some "error" ->
          let code =
            match Option.bind (Json_min.member "code" raw) Json_min.to_float with
            | Some f -> int_of_float f
            | None -> 1
          in
          Ok
            {
              reply_id; ok = false; code; origin = str "origin";
              payload = str "payload"; error = str "error"; raw;
            }
      | Some _ | None -> Error "response missing \"status\"")
