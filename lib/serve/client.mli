(** Client side of the daemon protocol: connect to the socket, send one
    request line, read one response line. Used by [nova client ...] and
    the serve test suites. *)

type t

(** [connect path] connects to the server's Unix-domain socket.
    [Error] carries a human-readable reason (no such socket, nothing
    listening). *)
val connect : string -> (t, string) result

val close : t -> unit

(** [request t line] sends [line] (newline appended if missing) and
    decodes the response. [Error] is a transport- or framing-level
    failure (server closed the connection, malformed response line) —
    a typed protocol error is an [Ok] reply with [ok = false]. *)
val request : t -> string -> (Protocol.reply, string) result

(** [request_raw t line] sends [line] verbatim — no newline appended,
    no response decoding; returns the raw response line. For the
    protocol fuzz tests, which need to send garbage and half-requests. *)
val request_raw : t -> string -> (string, string) result

(** [send t s] writes [s] verbatim without reading anything back — for
    fuzzing mid-request disconnects (send half a line, [close]). *)
val send : t -> string -> (unit, string) result
