type t = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let send t s =
  let b = Bytes.unsafe_of_string s in
  let rec go off len =
    if len = 0 then Ok ()
    else
      match Unix.write t.fd b off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "write: %s" (Unix.error_message e))
  in
  go 0 (Bytes.length b)

let read_line t =
  let rec go () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear t.buf;
        Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
        Ok (String.sub s 0 i)
    | None -> (
        match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
        | 0 -> Error "server closed the connection"
        | n ->
            Buffer.add_subbytes t.buf t.chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read: %s" (Unix.error_message e)))
  in
  go ()

let request_raw t line =
  let line =
    if String.length line > 0 && line.[String.length line - 1] = '\n' then line else line ^ "\n"
  in
  match send t line with Error m -> Error m | Ok () -> read_line t

let request t line =
  match request_raw t line with
  | Error m -> Error m
  | Ok response -> Protocol.parse_reply response
