let onehot_reference ~budget m =
  let n = Fsm.num_states ~m in
  if n <= 60 && not (Budget.exhausted budget) then begin
    let onehot = Encoded.implement ~budget m (Encoding.one_hot n) in
    Some (onehot.Encoded.num_cubes, onehot.Encoded.area)
  end
  else None

let encode_text m (encoding : Encoding.t) ~num_cubes ~area ~onehot =
  let b = Buffer.create 512 in
  Printf.bprintf b "machine %s: %d states encoded in %d bits\n" m.Fsm.name
    (Fsm.num_states ~m) encoding.Encoding.nbits;
  Array.iteri
    (fun s name -> Printf.bprintf b "  %-12s %s\n" name (Encoding.code_string encoding s))
    m.Fsm.states;
  Printf.bprintf b "two-level implementation: %d product terms, PLA area %d\n" num_cubes area;
  (match onehot with
  | Some (cubes, a) -> Printf.bprintf b "(1-hot reference: %d product terms, area %d)\n" cubes a
  | None -> ());
  Buffer.contents b

let row_cells (r : Exec.Job.row) =
  match r.Exec.Job.result with
  | Ok s ->
      [
        string_of_int s.Exec.Job.encoding.Encoding.nbits;
        string_of_int s.Exec.Job.num_cubes;
        string_of_int s.Exec.Job.area;
        Harness.Driver.rung_name s.Exec.Job.produced_by;
      ]
  | Error _ -> [ "-"; "-"; "-"; "error" ]

let report_table ~race ~num_machines rows =
  let header =
    [ "machine"; "algorithm"; "nbits"; "cubes"; "area"; "produced_by" ]
    @ if race then [] else [ "best" ]
  in
  let best_areas =
    List.fold_left
      (fun acc (r : Exec.Job.row) ->
        match r.Exec.Job.result with
        | Ok s ->
            let name = r.Exec.Job.task.Exec.Job.machine.Fsm.name in
            let a = s.Exec.Job.area in
            (match List.assoc_opt name acc with
            | Some b when b <= a -> acc
            | _ -> (name, a) :: List.remove_assoc name acc)
        | Error _ -> acc)
      [] rows
  in
  let table_rows =
    List.map
      (fun (r : Exec.Job.row) ->
        let name = r.Exec.Job.task.Exec.Job.machine.Fsm.name in
        let algo = Harness.Driver.name r.Exec.Job.task.Exec.Job.algorithm in
        let best =
          if race then []
          else
            match r.Exec.Job.result with
            | Ok s when List.assoc_opt name best_areas = Some s.Exec.Job.area -> [ "*" ]
            | _ -> [ "" ]
        in
        ([ name; algo ] @ row_cells r) @ best)
      rows
  in
  let title =
    if race then Printf.sprintf "portfolio race (%d machines)" num_machines
    else
      Printf.sprintf "portfolio report (%d machines x %d algorithms)" num_machines
        (List.length Exec.Portfolio.default_algorithms)
  in
  Format.asprintf "%a"
    (fun ppf () -> Harness.Report.print_table ppf ~title ~header table_rows)
    ()
