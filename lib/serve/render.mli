(** The byte-exact stdout renderers shared by the one-shot CLI and the
    daemon. [bin/nova_cli]'s [encode] and [report] subcommands print
    exactly these strings; the daemon serves exactly these strings as
    response payloads — so "a served payload equals the one-shot stdout"
    is true by construction, and the CI determinism pin diffs the two
    mechanically. *)

(** [onehot_reference ~budget m] is the 1-hot comparison point the CLI
    appends for small machines: [Some (num_cubes, area)] when
    [num_states <= 60] and [budget] is not exhausted, computed under the
    same [budget] (the one-shot semantics — the reference shares the
    request's remaining budget). *)
val onehot_reference : budget:Budget.t -> Fsm.t -> (int * int) option

(** [encode_text m encoding ~num_cubes ~area ~onehot] is the complete
    [nova encode] stdout: header, per-state code lines, two-level
    implementation line, and the optional 1-hot reference line. *)
val encode_text :
  Fsm.t -> Encoding.t -> num_cubes:int -> area:int -> onehot:(int * int) option -> string

(** [report_table ~race ~num_machines rows] is the complete
    [nova report] stdout: the portfolio table (title, header, rows in
    task order, best-area stars in non-racing mode) rendered through
    {!Harness.Report.print_table}. [num_machines] feeds the title — the
    row list may hold several machines' portfolios. *)
val report_table : race:bool -> num_machines:int -> Exec.Job.row list -> string
