(** The wire protocol of the encode daemon: newline-delimited JSON over
    a Unix-domain socket, one request object per line, one response
    object per line, read and written with {!Json_min}.

    {b Grammar} (one line each, [\n]-terminated):

    {v
request  := { "verb": VERB, "id"?: ID, ...verb fields }
VERB     := "ping" | "stats" | "metrics" | "flightrec" | "shutdown"
          | "encode" | "report"
ID       := any JSON value; echoed verbatim in the response

encode   := verb fields: ("machine": NAME | "kiss2": TEXT ["name": NAME]),
            "algorithm"?: ALGO (default "ihybrid"), "bits"?: INT,
            "max_work"?: INT, "fallback"?: BOOL (default true),
            "budget_ms"?: NUMBER
report   := verb fields: ("machine": NAME | "kiss2": TEXT ["name": NAME]),
            "budget_ms"?: NUMBER

response := { "id"?: ID, "status": "ok" | "error",
              "origin"?: "computed" | "cached" | "coalesced",
              "payload"?: TEXT, "code"?: INT, "error"?: TEXT, ... }
    v}

    An ["ok"] response to [encode]/[report] carries in [payload] the
    {e byte-exact} stdout of the corresponding one-shot
    [nova encode]/[nova report] run. An ["error"] response carries the
    {!Nova_error} rendering in [error] and its CLI exit code in [code]
    (so a crashed job answers with code 7, exactly like the one-shot
    exit). A [report] whose table contains error rows carries {e both}:
    the payload {e and} the first non-cancelled error — mirroring the
    one-shot CLI, which prints the table and then exits nonzero.

    Malformed input never crashes the server: unparseable JSON, a
    missing or unknown verb, bad field types, an oversized line — each
    yields a typed ["error"] response (or, past {!max_line_bytes}, a
    final error response followed by connection close). *)

(** How a request names its machine: a built-in suite entry by name, or
    inline KISS2 text (optionally named — defaults like the CLI to the
    parser's default). *)
type machine_ref = Builtin of string | Kiss2 of { name : string option; text : string }

type encode_request = {
  machine : machine_ref;
  algorithm : Harness.Driver.algorithm;
  bits : int option;
  max_work : int option;
  fallback : bool;
  budget_ms : float option;
}

type request =
  | Ping
  | Stats
  | Metrics  (** payload: Prometheus exposition; ["metrics"]: JSON snapshot *)
  | Flightrec  (** payload: the flight-recorder dump as one JSON document *)
  | Shutdown
  | Encode of encode_request
  | Report of { machine : machine_ref; budget_ms : float option }

(** A parsed request line: the client's [id] (echoed verbatim) and the
    typed request. *)
type parsed = { id : Json_min.t option; request : request }

(** Protocol identifier, carried by ping/stats responses. *)
val proto : string

(** Hard cap on one request line (bytes, newline included). A client
    line that exceeds it is answered with a typed error and the
    connection is closed — the stream cannot be resynchronized. *)
val max_line_bytes : int

(** [parse_request line] parses one request line. Malformed JSON maps to
    [Nova_error.Parse_error]; structurally valid JSON with bad verb or
    fields to [Nova_error.Invalid_request]. Never raises. *)
val parse_request : string -> (parsed, Json_min.t option * Nova_error.t) result

(** [ok_response ?id ?origin ?extra ~payload ()] is a rendered ["ok"]
    response line (newline-terminated). *)
val ok_response :
  ?id:Json_min.t -> ?origin:string -> ?extra:(string * Json_min.t) list ->
  payload:string -> unit -> string

(** [error_response ?id ?payload err] is a rendered ["error"] response
    line carrying [err]'s message and CLI exit code — with [payload]
    when partial output exists (a report table with error rows). *)
val error_response : ?id:Json_min.t -> ?payload:string -> Nova_error.t -> string

(* --- client-side building and decoding --------------------------------- *)

(** [encode_line ?id ?bits ?max_work ?fallback ?budget_ms ~algorithm
    machine] is a rendered [encode] request line. [algorithm] is the
    {!Harness.Driver.name} spelling. *)
val encode_line :
  ?id:Json_min.t -> ?bits:int -> ?max_work:int -> ?fallback:bool ->
  ?budget_ms:float -> algorithm:string -> machine_ref -> string

val report_line : ?id:Json_min.t -> ?budget_ms:float -> machine_ref -> string

val verb_line : ?id:Json_min.t -> string -> string
(** [verb_line "ping"] etc: a field-less request line. *)

(** A decoded response. [code] is [0] for ["ok"]. *)
type reply = {
  reply_id : Json_min.t option;
  ok : bool;
  code : int;
  origin : string option;
  payload : string option;
  error : string option;
  raw : Json_min.t;
}

(** [parse_reply line] decodes one response line; [Error] is a malformed
    line (not a well-formed ["error"] response, which is [Ok] with
    [ok = false]). *)
val parse_reply : string -> (reply, string) result
