(* Registration (rare) takes [lock]; observation (hot) is an atomic
   bump gated on one boolean load. Instruments are interned by
   (name, sorted labels) so every call site bumping the same logical
   series shares one cell. *)

type labels = (string * string) list

type counter = int Atomic.t
type gauge = float Atomic.t

(* On by default: this is the production layer, not a debug fabric.
   The bench harness flips it off to measure the metered-vs-bare
   difference. *)
let on = Atomic.make true
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let valid_metric_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       n

let valid_label_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let normalize name labels =
  if not (valid_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics.Registry: bad metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Metrics.Registry: bad label name %S on %s" k name))
    labels;
  List.sort (fun (a, _) (b, _) -> compare a b) labels

type series = { s_name : string; s_labels : labels; s_help : string }

let lock = Mutex.create ()
let counters : (string * labels, series * counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string * labels, series * gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string * labels, series * Histogram.t) Hashtbl.t = Hashtbl.create 32

let intern table make ?(help = "") ?(labels = []) name =
  let labels = normalize name labels in
  let key = (name, labels) in
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt table key with
      | Some (_, v) -> v
      | None ->
          let v = make () in
          Hashtbl.add table key ({ s_name = name; s_labels = labels; s_help = help }, v);
          v)

let counter ?help ?labels name = intern counters (fun () -> Atomic.make 0) ?help ?labels name
let gauge ?help ?labels name = intern gauges (fun () -> Atomic.make 0.) ?help ?labels name
let histogram ?help ?labels name = intern histograms Histogram.create ?help ?labels name

let inc c = if Atomic.get on then Atomic.incr c
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)
let counter_value c = Atomic.get c

let set_gauge g v = if Atomic.get on then Atomic.set g v
let gauge_value g = Atomic.get g

let observe h v = if Atomic.get on then Histogram.observe h v

type snapshot = {
  counters : (series * int) list;
  gauges : (series * float) list;
  histograms : (series * Histogram.t) list;
}

let sorted_entries table read =
  Hashtbl.fold (fun _ (s, v) acc -> (s, read v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare (a.s_name, a.s_labels) (b.s_name, b.s_labels))

let snapshot () =
  Mutex.protect lock (fun () ->
      {
        counters = sorted_entries counters Atomic.get;
        gauges = sorted_entries gauges Atomic.get;
        histograms = sorted_entries histograms (fun h -> h);
      })

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.iter (fun _ (_, c) -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ (_, g) -> Atomic.set g 0.) gauges;
      Hashtbl.iter (fun _ (_, h) -> Histogram.reset h) histograms)
