(** The flight recorder: a fixed-size ring of the last N request
    summaries, dumped as a JSON artifact on crash, on shutdown, or on
    demand — the forensic record a wedged or chaos-overwhelmed daemon
    leaves behind.

    Recording takes a mutex (the entry copy is a few words, and the
    recorder sits after the response is written, off the latency
    path). Dumps are atomic: tmp file + rename, the repo-wide artifact
    idiom. *)

(** One request summary. [tier] is the serve origin (computed / cached
    / coalesced, or "none" for bare verbs); [code] is the CLI exit
    code the outcome maps to (0 when [ok]). *)
type entry = {
  seq : int;  (** monotone sequence number, never reused *)
  at : float;  (** Unix.gettimeofday at completion *)
  id : int;  (** per-connection request id *)
  verb : string;
  machine : string;
  algorithm : string;
  tier : string;
  wall_ms : float;
  ok : bool;
  code : int;
  error : string;  (** error class name, "" when [ok] *)
}

type t

val create : int -> t
(** [create capacity] — the ring keeps the last [capacity] entries
    (at least 1). *)

val capacity : t -> int

val record : t -> entry -> unit
(** Append, overwriting the oldest entry once full. The [seq] field of
    the recorded copy is assigned by the ring (callers leave it 0). *)

val recorded : t -> int
(** Total entries ever recorded (>= length of {!entries}). *)

val entries : t -> entry list
(** Current contents, oldest first. *)

val to_json : ?reason:string -> t -> Json_min.t
(** [{"schema":"nova-flightrec/v1","reason":…,"capacity":…,
     "recorded":…,"entries":[…oldest first…]}]. [reason] says why the
    dump happened ("shutdown", "crash", "request"). *)

val dump : ?reason:string -> path:string -> t -> unit
(** Write {!to_json} to [path] atomically (tmp + rename). Best-effort:
    IO errors are swallowed — the dump must never take the daemon down
    with it. *)
