(** Read-out of the {!Registry}: a JSON snapshot for the protocol and
    stats embedding, and Prometheus text exposition (format 0.0.4) for
    scraping — plus {!lint}, the grammar checker shared by the unit
    tests and [scripts/check_prom.exe] in CI.

    Histograms are exposed as Prometheus {e summary} families: one
    series per quantile in {!quantiles} (label [quantile], always the
    last label), plus [_sum] and [_count] series. Label values are
    escaped per the exposition rules ([\\] -> [\\\\], ["] -> [\\"],
    newline -> [\\n]); HELP text escapes [\\] and newline only. *)

val quantiles : float list
(** The quantiles every histogram is exposed at: p50, p90, p99. *)

val escape_label : string -> string
val escape_help : string -> string

val prometheus : unit -> string
(** The full registry as Prometheus text exposition: for each metric
    family a [# HELP] line (when help text was registered), a [# TYPE]
    line, then its samples. Ends with a newline. *)

val json : unit -> Json_min.t
(** The full registry as JSON:
    [{"counters":[{"name","labels","value"},...],
      "gauges":[...],
      "histograms":[{"name","labels","count","sum","p50","p90","p99"},...]}]
    with [labels] an object of label pairs. *)

val lint : string -> (unit, string) result
(** [lint text] checks [text] against the exposition grammar this
    module emits: every non-comment line is
    [name[{label="value",...}] number]; label values use only the three
    legal escapes; a sample's family must be declared by a preceding
    [# TYPE] line; summary families must come with [_sum] and [_count]
    samples; the text must be newline-terminated. [Error _] carries the
    first offending line. *)
