(* Log-linear buckets: octaves [2^e, 2^(e+1)) for e in [min_exp,
   max_exp), each cut into [sub_buckets] linear slices. Observation is
   a frexp, an index computation and two atomic adds — no lock — so
   concurrent domains merge exactly (atomic increments never lose
   counts; the bucket totals always sum to the observation count). *)

let sub_buckets = 8

(* 2^-20 s ~ 0.95 us up to 2^12 s = 4096 s: brackets protocol
   round-trips on the low end and any sane request wall on the high. *)
let min_exp = -20
let max_exp = 12
let num_buckets = (max_exp - min_exp) * sub_buckets

type t = {
  buckets : int Atomic.t array;
  (* Nanoseconds, accumulated with fetch_and_add: 2^62 ns ~ 146 years
     of accumulated latency before overflow. *)
  sum_ns : int Atomic.t;
}

let create () =
  { buckets = Array.init num_buckets (fun _ -> Atomic.make 0); sum_ns = Atomic.make 0 }

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

(* frexp v = (m, e) with v = m * 2^e and m in [0.5, 1), i.e. v in
   [2^(e-1), 2^e): octave e-1, sub-slice by the mantissa's position in
   [0.5, 1). *)
let bucket_of v =
  if v <= 0. then 0
  else begin
    let m, e = Float.frexp v in
    let octave = e - 1 - min_exp in
    if octave < 0 then 0
    else if octave >= max_exp - min_exp then num_buckets - 1
    else
      let s = clamp 0 (sub_buckets - 1) (int_of_float ((m -. 0.5) *. 2. *. float_of_int sub_buckets)) in
      (octave * sub_buckets) + s
  end

let lower_bound i =
  let octave = i / sub_buckets and s = i mod sub_buckets in
  Float.ldexp (1. +. (float_of_int s /. float_of_int sub_buckets)) (min_exp + octave)

let upper_bound i =
  if i + 1 >= num_buckets then Float.ldexp 1. max_exp else lower_bound (i + 1)

let observe t v =
  Atomic.incr t.buckets.(bucket_of v);
  (* Negative observations clamp to bucket 0 but must not walk the sum
     backwards. *)
  if v > 0. then ignore (Atomic.fetch_and_add t.sum_ns (int_of_float (v *. 1e9)))

let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.buckets
let sum t = float_of_int (Atomic.get t.sum_ns) *. 1e-9

(* The bucket holding the ceil(q * count)-th smallest observation —
   exactly the bucket the same-rank order statistic of the raw stream
   falls in, which is the "within one bucket" quantile bound. *)
let quantile_bucket t q =
  let counts = Array.map Atomic.get t.buckets in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then -1
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let acc = ref 0 and found = ref (num_buckets - 1) and i = ref 0 in
    while !i < num_buckets && !acc < rank do
      acc := !acc + counts.(!i);
      if !acc >= rank then found := !i;
      incr i
    done;
    !found
  end

let quantile t q =
  match quantile_bucket t q with
  | -1 -> 0.
  | i -> (lower_bound i +. upper_bound i) /. 2.

let snapshot t = Array.map Atomic.get t.buckets

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.buckets;
  Atomic.set t.sum_ns 0
