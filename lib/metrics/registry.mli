(** The process-wide metrics registry: named counters, gauges and
    latency {!Histogram}s, optionally labeled, read out as one sorted
    snapshot by {!Expose}.

    Unlike [lib/instrument] (a default-{e off} debugging fabric), this
    registry is the production telemetry layer and is {e on} by
    default: an observation is an atomic bump with no lock and no
    allocation, cheap enough to leave enabled on every serving path.
    {!set_enabled} [false] exists for the bench harness, which
    measures the metered-vs-bare difference and gates it in CI.

    Instruments register by [(name, labels)] at first use (a mutex
    guards the tables; re-registration returns the existing
    instrument, so the same logical series can be bumped from several
    call sites). Metric names must match the Prometheus grammar
    [[a-zA-Z_:][a-zA-Z0-9_:]*], label names [[a-zA-Z_][a-zA-Z0-9_]*];
    violations raise [Invalid_argument] at registration, never at
    observation time. *)

type labels = (string * string) list
(** Label pairs; stored sorted by label name, so two spellings of the
    same label set are the same series. *)

type counter
type gauge

val set_enabled : bool -> unit
val enabled : unit -> bool

val counter : ?help:string -> ?labels:labels -> string -> counter
val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?help:string -> ?labels:labels -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?help:string -> ?labels:labels -> string -> Histogram.t

val observe : Histogram.t -> float -> unit
(** [observe h seconds] is {!Histogram.observe} behind the enabled
    flag — the off path is a load and a branch. *)

(** One registered series: its name, sorted labels, and the help text
    of the first registration under that name. *)
type series = { s_name : string; s_labels : labels; s_help : string }

(** Everything registered, each section sorted by (name, labels).
    Histograms are returned live (monotone counters: a concurrent bump
    is at worst an earlier valid state). *)
type snapshot = {
  counters : (series * int) list;
  gauges : (series * float) list;
  histograms : (series * Histogram.t) list;
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered instrument, keeping registrations (tests and
    the bench harness). *)
