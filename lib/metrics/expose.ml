let quantiles = [ 0.5; 0.9; 0.99 ]

(* Exposition-format escapes: label values escape backslash, quote and
   newline; HELP text escapes backslash and newline only (the grammar
   difference the round-trip tests pin). *)
let escape_with quote s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '"' when quote -> Buffer.add_string b "\\\""
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label s = escape_with true s
let escape_help s = escape_with false s

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* Labels arrive sorted from the registry; [extra] (the quantile pair)
   renders last so the series name is stable and greppable. *)
let render_labels ?extra labels =
  let pairs =
    List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels
    @ match extra with None -> [] | Some (k, v) -> [ Printf.sprintf "%s=\"%s\"" k v ]
  in
  if pairs = [] then "" else "{" ^ String.concat "," pairs ^ "}"

let add_header b (s : Registry.series) typ =
  if s.s_help <> "" then
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" s.s_name (escape_help s.s_help));
  Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" s.s_name typ)

let prometheus () =
  let snap = Registry.snapshot () in
  let b = Buffer.create 4096 in
  (* The snapshot is sorted by (name, labels): emit HELP/TYPE on the
     first series of each family, samples for every series. *)
  let emit typ entries sample =
    let last = ref "" in
    List.iter
      (fun ((s : Registry.series), v) ->
        if s.s_name <> !last then begin
          add_header b s typ;
          last := s.s_name
        end;
        sample s v)
      entries
  in
  emit "counter" snap.Registry.counters (fun s v ->
      Buffer.add_string b (Printf.sprintf "%s%s %d\n" s.s_name (render_labels s.s_labels) v));
  emit "gauge" snap.Registry.gauges (fun s v ->
      Buffer.add_string b
        (Printf.sprintf "%s%s %s\n" s.s_name (render_labels s.s_labels) (fmt_float v)));
  emit "summary" snap.Registry.histograms (fun s h ->
      List.iter
        (fun q ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.s_name
               (render_labels ~extra:("quantile", fmt_float q) s.s_labels)
               (fmt_float (Histogram.quantile h q))))
        quantiles;
      Buffer.add_string b
        (Printf.sprintf "%s_sum%s %s\n" s.s_name (render_labels s.s_labels)
           (fmt_float (Histogram.sum h)));
      Buffer.add_string b
        (Printf.sprintf "%s_count%s %d\n" s.s_name (render_labels s.s_labels)
           (Histogram.count h)));
  Buffer.contents b

let labels_obj labels = Json_min.Obj (List.map (fun (k, v) -> (k, Json_min.Str v)) labels)

let json () =
  let snap = Registry.snapshot () in
  let series (s : Registry.series) rest =
    Json_min.Obj (("name", Json_min.Str s.s_name) :: ("labels", labels_obj s.s_labels) :: rest)
  in
  Json_min.Obj
    [
      ( "counters",
        Json_min.Arr
          (List.map
             (fun (s, v) -> series s [ ("value", Json_min.Num (float_of_int v)) ])
             snap.Registry.counters) );
      ( "gauges",
        Json_min.Arr
          (List.map (fun (s, v) -> series s [ ("value", Json_min.Num v) ]) snap.Registry.gauges)
      );
      ( "histograms",
        Json_min.Arr
          (List.map
             (fun (s, h) ->
               series s
                 [
                   ("count", Json_min.Num (float_of_int (Histogram.count h)));
                   ("sum", Json_min.Num (Histogram.sum h));
                   ("p50", Json_min.Num (Histogram.quantile h 0.5));
                   ("p90", Json_min.Num (Histogram.quantile h 0.9));
                   ("p99", Json_min.Num (Histogram.quantile h 0.99));
                 ])
             snap.Registry.histograms) );
    ]

(* ---- Linter -------------------------------------------------------- *)

(* A hand-rolled check of the grammar [prometheus] emits, shared by the
   unit tests and scripts/check_prom.exe. Deliberately stricter than a
   scraper: unknown escapes, samples without a TYPE declaration, and
   summaries missing _sum/_count are all errors. *)

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false
let is_name_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false
let is_label_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
let is_label_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

exception Bad of string

let scan_name line pos label =
  let n = String.length line in
  if !pos >= n
     || not ((if label then is_label_start else is_name_start) line.[!pos])
  then raise (Bad (if label then "expected label name" else "expected metric name"));
  let start = !pos in
  while !pos < n && (if label then is_label_char else is_name_char) line.[!pos] do incr pos done;
  String.sub line start (!pos - start)

let scan_label_value line pos =
  let n = String.length line in
  if !pos >= n || line.[!pos] <> '"' then raise (Bad "expected opening quote");
  incr pos;
  let fin = ref false in
  while not !fin do
    if !pos >= n then raise (Bad "unterminated label value");
    (match line.[!pos] with
    | '"' -> fin := true
    | '\\' ->
        incr pos;
        if !pos >= n then raise (Bad "dangling backslash");
        (match line.[!pos] with
        | '\\' | '"' | 'n' -> ()
        | c -> raise (Bad (Printf.sprintf "illegal escape \\%c" c)))
    | _ -> ());
    incr pos
  done

let scan_sample line =
  let pos = ref 0 in
  let name = scan_name line pos false in
  let n = String.length line in
  if !pos < n && line.[!pos] = '{' then begin
    incr pos;
    let first = ref true in
    while !pos < n && line.[!pos] <> '}' do
      if not !first then
        if line.[!pos] = ',' then incr pos else raise (Bad "expected ',' between labels");
      first := false;
      ignore (scan_name line pos true);
      if !pos >= n || line.[!pos] <> '=' then raise (Bad "expected '=' after label name");
      incr pos;
      scan_label_value line pos
    done;
    if !pos >= n then raise (Bad "unterminated label set");
    incr pos
  end;
  if !pos >= n || line.[!pos] <> ' ' then raise (Bad "expected space before value");
  incr pos;
  let value = String.sub line !pos (n - !pos) in
  if value = "" || (match float_of_string_opt value with Some _ -> true | None -> false) = false
  then raise (Bad (Printf.sprintf "bad sample value %S" value));
  name

let lint text =
  let err line msg = Error (Printf.sprintf "%s: %S" msg line) in
  if text = "" then Error "empty exposition"
  else if text.[String.length text - 1] <> '\n' then Error "missing final newline"
  else begin
    let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
    let sampled : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let lines = String.split_on_char '\n' (String.sub text 0 (String.length text - 1)) in
    let check line =
      if line = "" then Ok ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; typ ]
          when List.mem typ [ "counter"; "gauge"; "summary"; "histogram"; "untyped" ] ->
            if Hashtbl.mem types name then err line "duplicate TYPE for family"
            else begin
              Hashtbl.replace types name typ;
              Ok ()
            end
        | _ -> err line "malformed TYPE line"
      end
      else if String.length line >= 1 && line.[0] = '#' then
        if String.length line >= 7 && String.sub line 0 7 = "# HELP " then Ok ()
        else err line "unknown comment line"
      else
        match scan_sample line with
        | exception Bad msg -> err line msg
        | name ->
            let strip suffix =
              let ls = String.length suffix and ln = String.length name in
              if ln > ls && String.sub name (ln - ls) ls = suffix then
                let base = String.sub name 0 (ln - ls) in
                if Hashtbl.find_opt types base = Some "summary" then Some base else None
              else None
            in
            let family =
              match strip "_sum" with
              | Some base -> Some base
              | None -> ( match strip "_count" with Some base -> Some base | None -> None)
            in
            let family = match family with Some f -> f | None -> name in
            if not (Hashtbl.mem types family) then err line "sample before its TYPE line"
            else begin
              Hashtbl.replace sampled name ();
              Ok ()
            end
    in
    let rec walk = function
      | [] ->
          (* Every declared summary family must have shipped its _sum
             and _count series. *)
          Hashtbl.fold
            (fun name typ acc ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  if typ = "summary"
                     && not
                          (Hashtbl.mem sampled (name ^ "_sum")
                          && Hashtbl.mem sampled (name ^ "_count"))
                  then Error (Printf.sprintf "summary %s missing _sum/_count samples" name)
                  else acc)
            types (Ok ())
      | line :: rest -> ( match check line with Ok () -> walk rest | Error _ as e -> e)
    in
    walk lines
  end
