(** Log-linear latency histograms with bounded-error quantiles.

    The value axis (seconds) is cut into octaves — powers of two from
    [2^min_exp] to [2^max_exp] — and each octave into {!sub_buckets}
    linear sub-buckets, so a bucket's relative width is at most
    [1/sub_buckets] (12.5% with the default 8): any reported quantile
    lands in the very bucket that contains the exact order statistic,
    and the returned midpoint is off by at most half a bucket width.
    Values below the first bound clamp into bucket 0, values at or
    above the last into the top bucket (the covered range,
    ~1 microsecond to ~68 minutes, brackets every latency the daemon
    can produce).

    {b Concurrency}: {!observe} is two atomic adds — no lock, no
    allocation — so histograms may be hammered from any number of
    domains or threads; concurrent observations merge exactly (counts
    are never lost, the bucket totals always sum to the observation
    count). Reads ({!count}, {!quantile}, {!snapshot}) take no lock
    either; they see some interleaving of concurrent bumps, which for
    monotone counters is always a valid earlier state. *)

type t

val sub_buckets : int
(** Linear sub-buckets per octave (8): the quantile error bound. *)

val num_buckets : int
(** Total buckets: [(max_exp - min_exp) * sub_buckets]. *)

val create : unit -> t

val observe : t -> float -> unit
(** [observe t seconds] records one observation. Non-positive values
    clamp into bucket 0. Hot-path safe: two atomic adds. *)

val bucket_of : float -> int
(** The bucket index [observe] files a value under. *)

val lower_bound : int -> float
(** Inclusive lower bound of bucket [i]. *)

val upper_bound : int -> float
(** Exclusive upper bound of bucket [i] ([= lower_bound (i + 1)]). *)

val count : t -> int
(** Observations so far (the sum of all bucket counts). *)

val sum : t -> float
(** Sum of observed values, in seconds (nanosecond resolution). *)

val quantile : t -> float -> float
(** [quantile t q] for [0 <= q <= 1] is the midpoint of the bucket
    containing the [ceil (q * count)]-th smallest observation — within
    one bucket of the exact order statistic by construction. [0.] when
    the histogram is empty. *)

val quantile_bucket : t -> float -> int
(** The bucket index {!quantile} reads — exposed so the error-bound
    tests can compare it against the exact value's bucket. [-1] when
    empty. *)

val snapshot : t -> int array
(** A copy of the bucket counts. *)

val reset : t -> unit
(** Zero every bucket and the sum (tests and benchmarks). *)
