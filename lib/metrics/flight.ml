type entry = {
  seq : int;
  at : float;
  id : int;
  verb : string;
  machine : string;
  algorithm : string;
  tier : string;
  wall_ms : float;
  ok : bool;
  code : int;
  error : string;
}

type t = {
  lock : Mutex.t;
  ring : entry option array;
  mutable next_seq : int;  (* doubles as the total-recorded count *)
}

let create capacity =
  { lock = Mutex.create (); ring = Array.make (max 1 capacity) None; next_seq = 0 }

let capacity t = Array.length t.ring

let record t e =
  Mutex.protect t.lock (fun () ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      t.ring.(seq mod Array.length t.ring) <- Some { e with seq })

let recorded t = Mutex.protect t.lock (fun () -> t.next_seq)

let entries t =
  Mutex.protect t.lock (fun () ->
      let cap = Array.length t.ring in
      (* Oldest live entry sits at next_seq mod cap once the ring has
         wrapped; before that, slot 0. *)
      let n = min t.next_seq cap in
      let start = if t.next_seq <= cap then 0 else t.next_seq mod cap in
      List.init n (fun i ->
          match t.ring.((start + i) mod cap) with
          | Some e -> e
          | None -> assert false))

let entry_json e =
  Json_min.Obj
    [
      ("seq", Json_min.Num (float_of_int e.seq));
      ("at", Json_min.Num e.at);
      ("id", Json_min.Num (float_of_int e.id));
      ("verb", Json_min.Str e.verb);
      ("machine", Json_min.Str e.machine);
      ("algorithm", Json_min.Str e.algorithm);
      ("tier", Json_min.Str e.tier);
      ("wall_ms", Json_min.Num e.wall_ms);
      ("ok", Json_min.Bool e.ok);
      ("code", Json_min.Num (float_of_int e.code));
      ("error", Json_min.Str e.error);
    ]

let to_json ?(reason = "request") t =
  Json_min.Obj
    [
      ("schema", Json_min.Str "nova-flightrec/v1");
      ("reason", Json_min.Str reason);
      ("capacity", Json_min.Num (float_of_int (capacity t)));
      ("recorded", Json_min.Num (float_of_int (recorded t)));
      ("entries", Json_min.Arr (List.map entry_json (entries t)));
    ]

let dump ?reason ~path t =
  (* Atomic artifact write (tmp + rename), and best-effort: a failing
     dump must never take the daemon down with it. *)
  try
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    let oc = open_out tmp in
    (try
       output_string oc (Json_min.render (to_json ?reason t));
       output_char oc '\n'
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    Unix.rename tmp path
  with _ -> ()
