(** [igreedy_code] (Section V): the fast greedy face hypercube embedding
    heuristic.

    Computes all intersections of the input constraints and encodes
    going upwards from the deepest of them, giving priority to common
    subconstraints. Previous choices are never undone, so the algorithm
    is very fast but tailored to short code lengths. *)

type result = {
  encoding : Encoding.t;
  satisfied : Constraints.input_constraint list;
  unsatisfied : Constraints.input_constraint list;
}

(** [igreedy_code ~num_states ~nbits ~budget ics]. [nbits] defaults to
    the minimum code length. [igreedy] is the pipeline's terminal
    fallback rung, so it never fails: an exhausted [budget] only makes it
    skip the constraint grouping and hand out sequential codes. *)
val igreedy_code :
  num_states:int ->
  ?nbits:int ->
  ?budget:Budget.t ->
  Constraints.input_constraint list ->
  result
