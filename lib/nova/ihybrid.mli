(** [ihybrid_code] (Section IV): the hybrid face hypercube embedding
    heuristic.

    Greedily accretes constraints in decreasing weight order, accepting a
    constraint when the bounded backtracking search [semiexact_code]
    still satisfies the whole accepted set at the minimum code length;
    then, if encoding space remains (up to [nbits]), repeatedly calls
    [project_code], each call satisfying at least one more constraint per
    added dimension. *)

type result = {
  encoding : Encoding.t;
  satisfied : Constraints.input_constraint list;
  unsatisfied : Constraints.input_constraint list;
  random_start : bool;
      (** true when every accretion step failed and the projection had to
          start from the fallback random encoding — under an exhausted
          budget this marks the result as degraded *)
}

(** [ihybrid_code ~num_states ~nbits ~max_work ~seed ~order_seed ~budget
    ics] runs the algorithm. [nbits] defaults to the minimum code length
    [ceil (log2 num_states)]; [max_work] bounds each [semiexact_code]
    call; [seed] feeds the fallback random encoding of the pathological
    case where every [semiexact_code] call fails. [order_seed], when
    given, shuffles equal-weight constraints before the greedy accretion
    — the knob behind multi-start "best of NOVA" runs. [budget] is the
    caller's cross-cutting budget: once it runs out, remaining accretion
    steps and projections are skipped. *)
val ihybrid_code :
  num_states:int ->
  ?nbits:int ->
  ?max_work:int ->
  ?seed:int ->
  ?order_seed:int ->
  ?budget:Budget.t ->
  Constraints.input_constraint list ->
  result

(** [min_code_length n] is [ceil (log2 n)], at least 1. *)
val min_code_length : int -> int
