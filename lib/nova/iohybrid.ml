type problem = {
  num_states : int;
  ics : Constraints.input_constraint list;
  clusters : Constraints.oc_cluster list;
}

type result = {
  encoding : Encoding.t;
  sat_inputs : Constraints.input_constraint list;
  unsat_inputs : Constraints.input_constraint list;
  sat_clusters : Constraints.oc_cluster list;
  random_start : bool;
}

let by_weight_desc (a : Constraints.input_constraint) (b : Constraints.input_constraint) =
  let c = compare b.Constraints.weight a.Constraints.weight in
  if c <> 0 then c else Bitvec.compare a.Constraints.states b.Constraints.states

let by_cluster_weight_desc (a : Constraints.oc_cluster) (b : Constraints.oc_cluster) =
  let c = compare b.Constraints.oc_weight a.Constraints.oc_weight in
  if c <> 0 then c else compare a.Constraints.next_state b.Constraints.next_state

let cluster_edges clusters =
  List.concat_map (fun (cl : Constraints.oc_cluster) -> cl.Constraints.edges) clusters

let groups_of ics = List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics

let finish ~num_states ~codes ~nbits ~ics ~clusters ~random_start =
  let encoding = Encoding.make ~nbits codes in
  let sat_inputs, unsat_inputs =
    List.partition
      (fun (ic : Constraints.input_constraint) -> Constraints.satisfied encoding ic.Constraints.states)
      ics
  in
  let sat_clusters = List.filter (Constraints.cluster_satisfied encoding) clusters in
  ignore num_states;
  { encoding; sat_inputs; unsat_inputs; sat_clusters; random_start }

let run ~variant ?nbits ?(max_work = 30_000) ?(seed = 0) ?(budget = Budget.unlimited) p =
  let n = p.num_states in
  let min_len = Ihybrid.min_code_length n in
  let nbits = match nbits with Some b -> max b min_len | None -> min_len in
  if p.ics = [] && p.clusters <> [] then begin
    (* Only output constraints: defer to the output encoder, within the
       caller's code-length budget. *)
    let encoding =
      Out_encoder.out_encoder ~num_states:n ~max_bits:nbits ~budget (cluster_edges p.clusters)
    in
    finish ~num_states:n ~codes:encoding.Encoding.codes ~nbits:encoding.Encoding.nbits
      ~ics:p.ics ~clusters:p.clusters ~random_start:false
  end
  else begin
    let companion_groups =
      List.concat_map (fun (cl : Constraints.oc_cluster) -> cl.Constraints.companion) p.clusters
    in
    let is_companion (ic : Constraints.input_constraint) =
      List.exists (Bitvec.equal ic.Constraints.states) companion_groups
    in
    (* Stage 1: input-constraint accretion at the minimum code length.
       iohybrid takes all input constraints; iovariant only IC_o. *)
    let stage1_ics =
      if variant then List.filter (fun ic -> not (is_companion ic)) p.ics else p.ics
    in
    let codes = ref None in
    let sic = ref [] and ric = ref [] in
    List.iter
      (fun (ic : Constraints.input_constraint) ->
        match
          Iexact.semiexact_code ~num_states:n ~k:min_len ~max_work ~budget
            (groups_of (ic :: !sic))
        with
        | Some cs ->
            codes := Some cs;
            sic := ic :: !sic
        | None -> ric := ic :: !ric)
      (List.sort by_weight_desc stage1_ics);
    (* Stage 2: clusters of output constraints in decreasing weight. *)
    let soc = ref [] in
    List.iter
      (fun (cl : Constraints.oc_cluster) ->
        let companions =
          if variant then
            List.filter_map
              (fun g ->
                if List.exists (fun (s : Constraints.input_constraint) -> Bitvec.equal s.Constraints.states g) !sic
                then None
                else Some { Constraints.states = g; weight = 1 })
              cl.Constraints.companion
          else []
        in
        let groups = groups_of (companions @ !sic) in
        let ocs = cluster_edges (cl :: !soc) in
        match
          Iexact.semiexact_code ~num_states:n ~k:min_len ~max_work ~budget
            ~output_constraints:ocs groups
        with
        | Some cs ->
            codes := Some cs;
            soc := cl :: !soc;
            if variant then begin
              sic := companions @ !sic;
              ric :=
                List.filter
                  (fun (r : Constraints.input_constraint) ->
                    not (List.exists (fun (s : Constraints.input_constraint) ->
                             Bitvec.equal s.Constraints.states r.Constraints.states) !sic))
                  !ric
            end
        | None ->
            if variant then
              ric :=
                companions
                @ List.filter
                    (fun (r : Constraints.input_constraint) ->
                      not (List.exists (fun (c : Constraints.input_constraint) ->
                               Bitvec.equal c.Constraints.states r.Constraints.states) companions))
                    !ric)
      (List.sort by_cluster_weight_desc p.clusters);
    (* Fallback and projection, exactly as in ihybrid. *)
    let random_start = !codes = None in
    let codes =
      match !codes with
      | Some cs -> ref cs
      | None ->
          let rng = Random.State.make [| seed; n |] in
          ref (Encoding.random rng ~num_states:n ~nbits:min_len).Encoding.codes
    in
    let cube_dim = ref min_len in
    while !ric <> [] && !cube_dim < nbits && not (Budget.exhausted budget) do
      let codes', newly, still =
        Project.project ~codes:!codes ~nbits:!cube_dim ~sic:!sic ~ric:!ric
      in
      codes := codes';
      sic := newly @ !sic;
      ric := still;
      incr cube_dim
    done;
    finish ~num_states:n ~codes:!codes ~nbits:!cube_dim ~ics:p.ics ~clusters:p.clusters
      ~random_start
  end

let iohybrid_code ?nbits ?max_work ?seed ?budget p =
  run ~variant:false ?nbits ?max_work ?seed ?budget p

let iovariant_code ?nbits ?max_work ?seed ?budget p =
  run ~variant:true ?nbits ?max_work ?seed ?budget p
