(** The backtracking face-assignment engine behind [pos_equiv]
    (Section 3.4): assigns faces of the k-cube to the elements of an
    input poset so that set-theoretic inclusion and intersection are
    preserved, walking the input graph with the paper's priority
    selection and verifying the conditions of Section 3.4.3
    incrementally.

    Category-1 and category-3 elements are selected and enumerated;
    category-2 elements are forced to the intersection of their fathers'
    faces. Singleton elements always receive level-0 faces, whose vertex
    is the state's code. *)

type level_policy =
  | Fixed_min  (** every selected element gets its minimum feasible level
                   (the [semiexact_code] restriction of Section 4.1) *)
  | Flexible of int
      (** levels from the minimum up to minimum + slack are enumerated
          per element inside the search — a cheap middle ground between
          [Fixed_min] and the full primary-level-vector enumeration *)
  | Dimvect of int array
      (** [levels.(id)] is the face level of category-1 element [id]
          (the primary level vector of Section 3.3.1); other elements
          use their minimum or, for category 3, any feasible level *)

type params = {
  k : int;  (** embedding dimension *)
  policy : level_policy;
  budget : Budget.t;
      (** charged one tick per attempted face assignment; shareable
          across calls (and with the caller, via {!Budget.sub}) so a
          sequence of searches runs under one budget *)
  output_constraints : Constraints.output_constraint list;
      (** covering relations rejected during search (io_semiexact) *)
}

(** [default_params ~k] is [k], minimum levels, an unconstrained budget,
    and no output constraints. *)
val default_params : k:int -> params

type outcome =
  | Sat of { codes : int array; faces : Face.t array }
      (** [codes.(s)] is state [s]'s vertex; [faces.(id)] the face of
          poset element [id] *)
  | Unsat  (** the search space was exhausted without a solution *)
  | Exhausted  (** the work bound was hit first *)

(** [solve poset params] runs the backtracking search. *)
val solve : Input_poset.t -> params -> outcome
