type result = {
  encoding : Encoding.t;
  satisfied : Constraints.input_constraint list;
  unsatisfied : Constraints.input_constraint list;
  random_start : bool;
}

let min_code_length n =
  let rec bits k acc = if acc >= n then k else bits (k + 1) (acc * 2) in
  max 1 (bits 0 1)

let by_weight_desc (a : Constraints.input_constraint) (b : Constraints.input_constraint) =
  let c = compare b.Constraints.weight a.Constraints.weight in
  if c <> 0 then c else Bitvec.compare a.Constraints.states b.Constraints.states

let ihybrid_code ~num_states ?nbits ?(max_work = 30_000) ?(seed = 0) ?order_seed
    ?(budget = Budget.unlimited) ics =
  let min_len = min_code_length num_states in
  let nbits = match nbits with Some b -> max b min_len | None -> min_len in
  let ordered =
    match order_seed with
    | None -> List.sort by_weight_desc ics
    | Some os ->
        (* Shuffle, then stable-sort by weight: equal weights end up in a
           seed-dependent order. *)
        let rng = Random.State.make [| os; num_states |] in
        let tagged = List.map (fun ic -> (Random.State.bits rng, ic)) ics in
        List.map snd (List.sort compare tagged)
        |> List.stable_sort (fun (a : Constraints.input_constraint) b ->
               compare b.Constraints.weight a.Constraints.weight)
  in
  let codes = ref None in
  let sic = ref [] and ric = ref [] in
  (* Accretion at the minimum code length. *)
  List.iter
    (fun (ic : Constraints.input_constraint) ->
      if Budget.exhausted budget then ric := ic :: !ric
      else
        let groups = List.map (fun (c : Constraints.input_constraint) -> c.Constraints.states) (ic :: !sic) in
        match Iexact.semiexact_code ~num_states ~k:min_len ~max_work ~budget groups with
        | Some cs ->
            codes := Some cs;
            sic := ic :: !sic
        | None -> ric := ic :: !ric)
    ordered;
  (* Pathological fallback: a random starting encoding. *)
  let random_start = !codes = None in
  let codes =
    match !codes with
    | Some cs -> ref cs
    | None ->
        let rng = Random.State.make [| seed; num_states |] in
        ref (Encoding.random rng ~num_states ~nbits:min_len).Encoding.codes
  in
  (* Projection into the extra dimensions, if any. *)
  let cube_dim = ref min_len in
  while !ric <> [] && !cube_dim < nbits && not (Budget.exhausted budget) do
    let codes', newly, still = Project.project ~codes:!codes ~nbits:!cube_dim ~sic:!sic ~ric:!ric in
    codes := codes';
    sic := newly @ !sic;
    ric := still;
    incr cube_dim
  done;
  let encoding = Encoding.make ~nbits:!cube_dim !codes in
  (* Report satisfaction against the final encoding, which is what the
     downstream minimization sees. *)
  let satisfied, unsatisfied =
    List.partition
      (fun (ic : Constraints.input_constraint) -> Constraints.satisfied encoding ic.Constraints.states)
      ics
  in
  { encoding; satisfied; unsatisfied; random_start }
