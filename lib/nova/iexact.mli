(** [iexact_code] (Section III): the exact input encoding algorithm.

    Finds an encoding satisfying {e all} input constraints in the minimum
    number of bits, by answering SUBPOSET EQUIVALENCE for increasing cube
    dimensions, enumerating for each dimension the primary level vectors
    of Section 3.3.1, and for each vector running the backtracking search
    of {!Embed}.

    The algorithm is worst-case exponential (Section 3.5), so the search
    runs under a work budget. At each dimension a fast minimum-level
    probe (the [semiexact_code] restriction) runs first; the full level
    enumeration follows. When the budget runs out before every smaller
    dimension has been refuted, a found solution is still returned with
    [proven = false] — the paper's own tables mark such entries (e.g.
    [donfile]'s 11-bit result) the same way, and report "-" when nothing
    was found at all. *)

type result = {
  k : int;  (** code length at which all constraints were satisfied *)
  codes : int array;
  proven : bool;  (** true when every dimension below [k] was refuted exhaustively *)
}

type outcome = Sat of result | Exhausted

(** [iexact_code ~num_states ~max_work ~budget ics] runs the exact
    search. [max_work] is the intrinsic cap on attempted face
    assignments (default [2_000_000]); [budget], when given, is the
    caller's cross-cutting budget — the search charges it too and stops
    at whichever limit (work, deadline, cancellation) comes first. *)
val iexact_code :
  num_states:int -> ?max_work:int -> ?budget:Budget.t -> Bitvec.t list -> outcome

(** [semiexact_code ~num_states ~k ~max_work ?output_constraints ics] is
    the bounded-backtracking variant of Section 4.1: all faces at their
    minimum feasible level, search capped by [max_work] (default
    [30_000]). With [output_constraints] it becomes [io_semiexact_code]
    (Section 6.2.1): face assignments violating an active covering
    relation are rejected. Returns the state codes on success. *)
val semiexact_code :
  num_states:int ->
  k:int ->
  ?max_work:int ->
  ?budget:Budget.t ->
  ?output_constraints:Constraints.output_constraint list ->
  Bitvec.t list ->
  int array option
