(* Instrumentation probes: no-ops unless Instrument.enable (). *)
let t_solve = Instrument.timer "embed.solve"
let c_ticks = Instrument.counter "embed.work_ticks"
let c_verify = Instrument.counter "embed.verify_calls"
let c_cascades = Instrument.counter "embed.cascade_calls"
let h_backtrack = Instrument.histogram "embed.candidate_faces_tried"

type level_policy = Fixed_min | Flexible of int | Dimvect of int array

type params = {
  k : int;
  policy : level_policy;
  budget : Budget.t;
  output_constraints : Constraints.output_constraint list;
}

let default_params ~k =
  { k; policy = Fixed_min; budget = Budget.unlimited; output_constraints = [] }

type outcome = Sat of { codes : int array; faces : Face.t array } | Unsat | Exhausted

exception Work_exhausted

let solve (poset : Input_poset.t) params =
  Instrument.time t_solve @@ fun () ->
  let k = params.k in
  let n = poset.Input_poset.num_states in
  let elements = poset.Input_poset.elements in
  let m = Array.length elements in
  if k < 1 || k > 62 || 1 lsl k < n then Unsat
  else begin
    let faces : Face.t option array = Array.make m None in
    (* Element lookup by state set, for the intersection condition. *)
    let by_key = Hashtbl.create (2 * m) in
    Array.iter (fun e -> Hashtbl.add by_key (Bitvec.to_string e.Input_poset.states) e.Input_poset.id) elements;
    let element_of states = Hashtbl.find_opt by_key (Bitvec.to_string states) in
    (* The state of singleton elements, for output-covering checks. *)
    let singleton_state = Array.make m (-1) in
    Array.iter
      (fun e ->
        if e.Input_poset.card = 1 then
          match Bitvec.first_set e.Input_poset.states with
          | Some s -> singleton_state.(e.Input_poset.id) <- s
          | None -> ())
      elements;
    let state_code = Array.make n (-1) in
    let tick () =
      Instrument.bump c_ticks;
      if not (Budget.tick params.budget) then raise Work_exhausted
    in
    (* Verification of Section 3.4.3 against every assigned element. *)
    let verify id face =
      Instrument.bump c_verify;
      let e = elements.(id) in
      e.Input_poset.card <= Face.cardinality k face
      &&
      let ok = ref true in
      let j = ref 0 in
      while !ok && !j < m do
        (match faces.(!j) with
        | Some fj when !j <> id ->
            let sj = elements.(!j).Input_poset.states in
            let se = e.Input_poset.states in
            if Face.equal face fj then ok := false
            else begin
              (if Face.contains fj face && not (Bitvec.subset se sj) then ok := false);
              (if Face.contains face fj && not (Bitvec.subset sj se) then ok := false);
              if !ok then
                match Face.inter face fj with
                | None -> if not (Bitvec.disjoint se sj) then ok := false
                | Some h -> (
                    let common = Bitvec.inter se sj in
                    if Bitvec.is_empty common then ok := false
                    else
                      match element_of common with
                      | None -> ok := false (* closure guarantees this cannot happen *)
                      | Some kid ->
                          if elements.(kid).Input_poset.card > Face.cardinality k h then ok := false
                          else
                            let expected =
                              if kid = id then Some face
                              else if kid = !j then Some fj
                              else faces.(kid)
                            in
                            (match expected with
                            | Some fk -> if not (Face.equal fk h) then ok := false
                            | None -> ()))
            end
        | Some _ | None -> ());
        incr j
      done;
      (* Output covering relations on fully decided state codes. *)
      (if !ok && params.output_constraints <> [] && Face.level k face = 0 then
         let s = singleton_state.(id) in
         if s >= 0 then begin
           let code_of t = if t = s then face.Face.bits else state_code.(t) in
           List.iter
             (fun (oc : Constraints.output_constraint) ->
               let u = oc.Constraints.covering and v = oc.Constraints.covered in
               if (u = s || v = s) && code_of u >= 0 && code_of v >= 0 then begin
                 let cu = code_of u and cv = code_of v in
                 if not (cu lor cv = cu && cu <> cv) then ok := false
               end)
             params.output_constraints
         end);
      !ok
    in
    let assign id face =
      faces.(id) <- Some face;
      let s = singleton_state.(id) in
      if s >= 0 && Face.level k face = 0 then state_code.(s) <- face.Face.bits
    in
    let unassign id =
      faces.(id) <- None;
      let s = singleton_state.(id) in
      if s >= 0 then state_code.(s) <- -1
    in
    (* Force category-2 elements whose fathers are all assigned to the
       intersection of the fathers' faces; cascade to a fixpoint.
       Returns the list of forced ids, or None after undoing on conflict. *)
    let cascade () =
      Instrument.bump c_cascades;
      let forced = ref [] in
      let undo () = List.iter unassign !forced in
      let rec fix () =
        let progress = ref false in
        let conflict = ref false in
        Array.iter
          (fun e ->
            let id = e.Input_poset.id in
            if (not !conflict) && e.Input_poset.category = 2 && faces.(id) = None then begin
              let father_faces =
                List.map (fun f -> faces.(f)) e.Input_poset.fathers
              in
              if List.for_all Option.is_some father_faces then begin
                let inter =
                  List.fold_left
                    (fun acc f ->
                      match (acc, f) with
                      | Some a, Some b -> Face.inter a b
                      | None, _ | _, None -> None)
                    (Some (Face.full k))
                    father_faces
                in
                match inter with
                | None -> conflict := true
                | Some h ->
                    tick ();
                    if verify id h then begin
                      assign id h;
                      forced := id :: !forced;
                      progress := true
                    end
                    else conflict := true
              end
            end)
          elements;
        if !conflict then begin
          undo ();
          None
        end
        else if !progress then fix ()
        else Some !forced
      in
      fix ()
    in
    (* Target level of a selectable element under the current policy. *)
    let target_level e =
      match (params.policy, e.Input_poset.category) with
      | Dimvect levels, 1 when e.Input_poset.card > 1 -> levels.(e.Input_poset.id)
      | (Fixed_min | Flexible _ | Dimvect _), _ -> Input_poset.min_level e
    in
    (* next_to_code (Section 3.4.1): prefer high target level, category 1,
       and elements sharing children with the last assigned one. *)
    let select last =
      let best = ref None in
      Array.iter
        (fun e ->
          let id = e.Input_poset.id in
          if
            faces.(id) = None
            && (e.Input_poset.category = 1 || e.Input_poset.category = 3)
            && List.for_all (fun f -> faces.(f) <> None) e.Input_poset.fathers
          then begin
            let shares =
              match last with
              | Some lid -> if Input_poset.share_children elements.(lid) e then 1 else 0
              | None -> 0
            in
            let key = (target_level e, (if e.Input_poset.category = 1 then 1 else 0), shares, -id) in
            match !best with
            | Some (bkey, _) when bkey >= key -> ()
            | Some _ | None -> best := Some (key, id)
          end)
        elements;
      Option.map snd !best
    in
    (* Only the universe assigned so far? Then the next face is the first
       one placed, and any face of its level maps to any other under a
       cube automorphism: trying one representative is complete. *)
    let only_universe_assigned () =
      let count = ref 0 in
      Array.iter (fun f -> if f <> None then incr count) faces;
      !count = 1
    in
    let candidate_faces id =
      let e = elements.(id) in
      match e.Input_poset.category with
      | 1 ->
          let lmin = target_level e in
          let lmax =
            match params.policy with
            | Flexible slack -> min (k - 1) (Input_poset.min_level e + slack)
            | Fixed_min | Dimvect _ -> lmin
          in
          if lmin >= k then Seq.empty
          else
            let levels = Seq.init (lmax - lmin + 1) (fun i -> lmin + i) in
            let faces = Seq.concat_map (Face.faces_at_level k) levels in
            if only_universe_assigned () then
              (* One representative per level suffices up to automorphism. *)
              Seq.concat_map
                (fun l -> Seq.take 1 (Face.faces_at_level k l))
                levels
            else faces
      | 3 -> (
          let father = List.hd e.Input_poset.fathers in
          match faces.(father) with
          | None -> Seq.empty
          | Some g ->
              let lg = Face.level k g in
              let lmin = Input_poset.min_level e in
              let levels =
                match params.policy with
                | Fixed_min -> if lmin < lg then Seq.return lmin else Seq.empty
                | Flexible slack ->
                    Seq.init (max 0 (min (lg - 1) (lmin + slack) - lmin + 1)) (fun i -> lmin + i)
                | Dimvect _ ->
                    (* full lower-level backtracking: any feasible level *)
                    Seq.init (max 0 (lg - lmin)) (fun i -> lmin + i)
              in
              Seq.concat_map (fun l -> Face.subfaces_at_level k g l) levels)
      | _ -> Seq.empty
    in
    (* Completion: everything assigned AND the covering relations hold on
       the final codes. Singletons forced (category 2) onto faces of
       level > 0 only receive their vertex here, so relations touching
       them cannot be checked earlier. *)
    let final_codes () =
      let codes = Array.copy state_code in
      Array.iteri
        (fun id f ->
          let s = singleton_state.(id) in
          if s >= 0 && codes.(s) < 0 then
            match f with Some face -> codes.(s) <- face.Face.bits | None -> ())
        faces;
      codes
    in
    let all_assigned () =
      Array.for_all Option.is_some faces
      && (params.output_constraints = []
         ||
         let codes = final_codes () in
         List.for_all
           (fun (oc : Constraints.output_constraint) ->
             let cu = codes.(oc.Constraints.covering) and cv = codes.(oc.Constraints.covered) in
             cu < 0 || cv < 0 || (cu lor cv = cu && cu <> cv))
           params.output_constraints)
    in
    let rec go last =
      match select last with
      | None -> all_assigned ()
      | Some id ->
          let rec try_faces tried seq =
            match seq () with
            | Seq.Nil ->
                Instrument.observe h_backtrack tried;
                false
            | Seq.Cons (f, rest) ->
                tick ();
                if verify id f then begin
                  assign id f;
                  match cascade () with
                  | Some forced ->
                      if go (Some id) then begin
                        Instrument.observe h_backtrack (tried + 1);
                        true
                      end
                      else begin
                        List.iter unassign forced;
                        unassign id;
                        try_faces (tried + 1) rest
                      end
                  | None ->
                      unassign id;
                      try_faces (tried + 1) rest
                end
                else try_faces (tried + 1) rest
          in
          try_faces 0 (candidate_faces id)
    in
    match
      assign poset.Input_poset.universe (Face.full k);
      (match cascade () with
      | None -> false
      | Some _ -> go None)
    with
    | true ->
        (* A singleton forced to a face of level > 0 owns every vertex of
           that face; its code is the face's base vertex. *)
        let codes = final_codes () in
        ignore (Array.for_all (fun c -> c >= 0) codes || (invalid_arg "Embed.solve: missing code"));
        Sat { codes; faces = Array.map Option.get faces }
    | false -> Unsat
    | exception Work_exhausted -> Exhausted
  end
