type result = { k : int; codes : int array; proven : bool }
type outcome = Sat of result | Exhausted

(* Enumerate primary level vectors in increasing lexicographic order:
   [levels.(i)] ranges over [lo.(i) .. hi], rightmost position fastest.
   Returns false when the odometer wraps. *)
let advance levels lo hi =
  let n = Array.length levels in
  let rec bump i =
    if i < 0 then false
    else if levels.(i) < hi then begin
      levels.(i) <- levels.(i) + 1;
      true
    end
    else begin
      levels.(i) <- lo.(i);
      bump (i - 1)
    end
  in
  bump (n - 1)

let iexact_code ~num_states ?(max_work = 2_000_000) ?(budget = Budget.unlimited) ics =
  let poset = Input_poset.build ~num_states ics in
  let mincube = Input_poset.mincube_dim poset in
  let primaries =
    Array.to_list poset.Input_poset.elements
    |> List.filter (fun e -> e.Input_poset.category = 1 && e.Input_poset.card > 1)
  in
  (* The intrinsic cap is a sub-budget: the search charges the caller's
     budget too, and stops at whichever limit comes first. *)
  let local = Budget.sub ~max_work budget in
  let out_of_budget () = Budget.exhausted local in
  let solve ~k policy =
    Embed.solve poset { Embed.k; policy; budget = local; output_constraints = [] }
  in
  let answer = ref None in
  let all_below_refuted = ref true in
  let k = ref mincube in
  let upper = min 62 num_states in
  while !answer = None && (not (out_of_budget ())) && !k <= upper do
    let kk = !k in
    let refuted_here = ref true in
    (* Fast probe: the minimum-level restriction usually finds a solution
       when one exists at this dimension. Finding one here short-cuts the
       level enumeration; failing proves nothing (incomplete search). *)
    (match solve ~k:kk Embed.Fixed_min with
    | Embed.Sat { codes; _ } ->
        answer := Some { k = kk; codes; proven = !all_below_refuted }
    | Embed.Unsat | Embed.Exhausted -> ());
    (* Full primary-level-vector enumeration (Section 3.3.1). *)
    if !answer = None then begin
      let lo = Array.of_list (List.map Input_poset.min_level primaries) in
      let hi = kk - 1 in
      if Array.exists (fun l -> l > hi) lo then refuted_here := true
      else begin
        let levels = Array.copy lo in
        let continue_ = ref true in
        while !continue_ && !answer = None && not (out_of_budget ()) do
          let dimvect = Array.make (Array.length poset.Input_poset.elements) 0 in
          List.iteri (fun i e -> dimvect.(e.Input_poset.id) <- levels.(i)) primaries;
          (match solve ~k:kk (Embed.Dimvect dimvect) with
          | Embed.Sat { codes; _ } ->
              answer := Some { k = kk; codes; proven = !all_below_refuted }
          | Embed.Unsat -> ()
          | Embed.Exhausted -> refuted_here := false);
          if !answer = None then continue_ := advance levels lo hi
        done;
        if out_of_budget () then refuted_here := false
      end
    end;
    if !answer = None && not !refuted_here then all_below_refuted := false;
    incr k
  done;
  (* Budget gone with nothing found: sweep a few more dimensions with the
     fast probe, reporting any full-satisfaction length found as unproven
     (the paper's starred entries). The probes run on fresh sub-budgets
     of the caller's, so the intrinsic cap above does not silence them —
     but a caller deadline still does. *)
  if !answer = None then begin
    let kk = ref !k in
    while !answer = None && (not (Budget.exhausted budget)) && !kk <= min upper (mincube + 3) do
      List.iter
        (fun policy ->
          if !answer = None then
            match
              Embed.solve poset
                {
                  Embed.k = !kk;
                  policy;
                  budget = Budget.sub ~max_work:200_000 budget;
                  output_constraints = [];
                }
            with
            | Embed.Sat { codes; _ } -> answer := Some { k = !kk; codes; proven = false }
            | Embed.Unsat | Embed.Exhausted -> ())
        [ Embed.Fixed_min; Embed.Flexible 2 ];
      incr kk
    done
  end;
  (* Last resort: greedy accretion at the minimum length followed by the
     constructive projection of Proposition 4.2.1 satisfies everything at
     some (non-minimal) length — the flavor of entry the paper prints as
     donfile's "11". *)
  if !answer = None then begin
    let min_len =
      let rec bits b acc = if acc >= num_states then b else bits (b + 1) (acc * 2) in
      max 1 (bits 0 1)
    in
    let constraint_of g = { Constraints.states = g; weight = 1 } in
    (* Accretion: keep every constraint the bounded search can satisfy
       together at the minimum length. *)
    let codes = ref (Array.init num_states (fun s -> s)) in
    let kept = ref [] in
    List.iter
      (fun g ->
        if not (Budget.exhausted budget) then begin
          let trial = Input_poset.build ~num_states (g :: !kept) in
          match
            Embed.solve trial
              {
                Embed.k = min_len;
                policy = Embed.Fixed_min;
                budget = Budget.sub ~max_work:30_000 budget;
                output_constraints = [];
              }
          with
          | Embed.Sat { codes = cs; _ } ->
              codes := cs;
              kept := g :: !kept
          | Embed.Unsat | Embed.Exhausted -> ()
        end)
      (List.sort (fun a b -> compare (Bitvec.cardinal b) (Bitvec.cardinal a)) ics);
    let nbits = ref min_len in
    let e0 = Encoding.make ~nbits:min_len !codes in
    let sic, ric = List.partition (Constraints.satisfied e0) ics in
    let sic = ref (List.map constraint_of sic) and ric = ref (List.map constraint_of ric) in
    while !ric <> [] && !nbits < 60 && not (Budget.exhausted budget) do
      let codes', newly, still = Project.project ~codes:!codes ~nbits:!nbits ~sic:!sic ~ric:!ric in
      codes := codes';
      sic := newly @ !sic;
      ric := still;
      incr nbits
    done;
    if !ric = [] then answer := Some { k = !nbits; codes = !codes; proven = false }
  end;
  match !answer with Some r -> Sat r | None -> Exhausted

let semiexact_code ~num_states ~k ?(max_work = 30_000) ?(budget = Budget.unlimited)
    ?(output_constraints = []) ics =
  if Budget.exhausted budget then None
  else begin
    let poset = Input_poset.build ~num_states ics in
    match
      Embed.solve poset
        {
          Embed.k;
          policy = Embed.Fixed_min;
          budget = Budget.sub ~max_work budget;
          output_constraints;
        }
    with
    | Embed.Sat { codes; _ } -> Some codes
    | Embed.Unsat | Embed.Exhausted -> None
  end
