let ceil_log2 n =
  let rec bits k acc = if acc >= n then k else bits (k + 1) (acc * 2) in
  max 1 (bits 0 1)

let out_encoder ~num_states ?max_bits ?(budget = Budget.unlimited) ocs =
  let bit_budget = Option.value max_bits ~default:(max num_states (ceil_log2 num_states)) in
  let bit_budget = max bit_budget (ceil_log2 num_states) in
  (* The free-code scans range over up to [2^bit_budget] candidates:
     poll the budget periodically so a deadline interrupts them. *)
  let check_budget c =
    if c land 1023 = 0 && Budget.exhausted budget then
      raise (Budget.Out_of_budget (Option.value (Budget.reason budget) ~default:Budget.Work))
  in
  (* covers.(u) = states u must cover bitwise. *)
  let covers = Array.make num_states [] in
  List.iter
    (fun (oc : Constraints.output_constraint) ->
      covers.(oc.Constraints.covering) <- oc.Constraints.covered :: covers.(oc.Constraints.covering))
    ocs;
  (* Topological order, covered states first. *)
  let mark = Array.make num_states 0 in
  let order = ref [] in
  let rec visit s =
    if mark.(s) = 1 then invalid_arg "Out_encoder: covering relations form a cycle";
    if mark.(s) = 0 then begin
      mark.(s) <- 1;
      List.iter visit covers.(s);
      mark.(s) <- 2;
      order := s :: !order
    end
  in
  for s = 0 to num_states - 1 do
    visit s
  done;
  let order = List.rev !order in
  let codes = Array.make num_states (-1) in
  let used = Hashtbl.create num_states in
  let next_bit = ref 0 in
  List.iter
    (fun s ->
      let base = List.fold_left (fun acc v -> acc lor codes.(v)) 0 covers.(s) in
      (* Distinguish from taken codes and from the covered states' own
         codes (covering must be strict) while staying within budget:
         prefer the OR of the covered codes, then single fresh bits, then
         any free code above the base. *)
      let distinct code =
        (not (Hashtbl.mem used code)) && List.for_all (fun v -> code <> codes.(v)) covers.(s)
      in
      let rec fresh_bits () =
        if !next_bit >= bit_budget then None
        else begin
          let b = !next_bit in
          incr next_bit;
          let code = base lor (1 lsl b) in
          if distinct code then Some code else fresh_bits ()
        end
      in
      let scan_free () =
        (* Any distinct code covering base within the budget. *)
        let limit = 1 lsl bit_budget in
        let rec scan c =
          check_budget c;
          if c >= limit then None
          else if c land base = base && distinct c then Some c
          else scan (c + 1)
        in
        scan base
      in
      let code =
        if distinct base then Some base
        else
          match fresh_bits () with
          | Some c -> Some c
          | None -> scan_free ()
      in
      let code =
        match code with
        | Some c -> c
        | None -> (
            (* Bit budget exhausted: give up on this state's covering
               edges and take any free code at all. *)
            let limit = 1 lsl bit_budget in
            let rec scan c =
              check_budget c;
              if c >= limit then invalid_arg "Out_encoder: no free codes within budget"
              else if not (Hashtbl.mem used c) then c
              else scan (c + 1)
            in
            scan 0)
      in
      codes.(s) <- code;
      Hashtbl.replace used code s)
    order;
  let nbits =
    Array.fold_left
      (fun acc c ->
        let rec width w = if c lsr w = 0 then max w 1 else width (w + 1) in
        max acc (width 1))
      1 codes
  in
  Encoding.make ~nbits codes
