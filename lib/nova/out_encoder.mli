(** [out_encoder]: encoding driven purely by output covering constraints
    (used by [iohybrid_code] when there are no input constraints,
    Section 6.2.1; the paper defers to Saldanha's output encoder [14],
    re-implemented here as a topological heuristic).

    Each state's code is the bitwise OR of the codes of the states it
    must cover, plus a distinguishing bit when needed. *)

(** [out_encoder ~num_states ?max_bits ?budget ocs] returns an encoding
    satisfying covering relations of the acyclic constraint set [ocs].
    Without [max_bits] every relation is satisfied, using as many bits as
    the construction needs (at most [num_states]); with [max_bits] the
    construction stops spending distinguishing bits at that budget and
    relations that would need more are dropped (callers recheck
    satisfaction on the result). Raises [Invalid_argument] if the
    relation graph has a cycle, and [Budget.Out_of_budget] when [budget]
    runs out inside a free-code scan (the encoder has no cheaper result
    to degrade to — the driver falls down the ladder instead). *)
val out_encoder :
  num_states:int ->
  ?max_bits:int ->
  ?budget:Budget.t ->
  Constraints.output_constraint list ->
  Encoding.t
