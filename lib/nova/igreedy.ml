type result = {
  encoding : Encoding.t;
  satisfied : Constraints.input_constraint list;
  unsatisfied : Constraints.input_constraint list;
}

let igreedy_code ~num_states ?nbits ?(budget = Budget.unlimited) ics =
  let k =
    match nbits with
    | Some b -> max b (Ihybrid.min_code_length num_states)
    | None -> Ihybrid.min_code_length num_states
  in
  let weight_of states =
    List.fold_left
      (fun acc (ic : Constraints.input_constraint) ->
        if Bitvec.equal ic.Constraints.states states then acc + ic.Constraints.weight else acc)
      0 ics
  in
  (* Deepest (smallest) groups first — common subconstraints get priority;
     heavier groups first within a depth. As the ladder's terminal rung
     this must stay prompt: an already-exhausted budget skips the
     constraint grouping entirely and falls through to sequential
     codes. *)
  let groups =
    if Budget.exhausted budget then []
    else
      let poset =
        Input_poset.build ~num_states
          (List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics)
      in
      Array.to_list poset.Input_poset.elements
      |> List.filter (fun e -> e.Input_poset.card >= 2 && e.Input_poset.card < num_states)
      |> List.map (fun e -> (e.Input_poset.states, e.Input_poset.card, weight_of e.Input_poset.states))
      |> List.sort (fun (_, c1, w1) (_, c2, w2) ->
             let c = compare c1 c2 in
             if c <> 0 then c else compare w2 w1)
  in
  let state_code = Array.make num_states (-1) in
  let code_used = Hashtbl.create num_states in
  let assign s c =
    state_code.(s) <- c;
    Hashtbl.replace code_used c s
  in
  let free_vertices face =
    List.filter (fun v -> not (Hashtbl.mem code_used v)) (Face.vertices k face)
  in
  (* A face works for a group iff it contains all already-placed members,
     has room for the unplaced ones, and holds no outsider's code. *)
  let face_ok group face =
    let placed_inside = ref true and unplaced = ref 0 in
    Bitvec.iter
      (fun s ->
        if state_code.(s) < 0 then incr unplaced
        else if not (Face.contains_code face state_code.(s)) then placed_inside := false)
      group;
    !placed_inside
    && (let outsiders = ref false in
        for s = 0 to num_states - 1 do
          if (not (Bitvec.get group s)) && state_code.(s) >= 0 && Face.contains_code face state_code.(s)
          then outsiders := true
        done;
        not !outsiders)
    && List.length (free_vertices face) >= !unplaced
  in
  let try_group group =
    let placed =
      List.filter_map
        (fun s -> if state_code.(s) >= 0 then Some state_code.(s) else None)
        (Bitvec.to_list group)
    in
    let base =
      match placed with
      | [] -> None
      | c :: rest -> Some (List.fold_left (fun f v -> Face.supercube f (Face.vertex k v)) (Face.vertex k c) rest)
    in
    let min_level =
      let card = Bitvec.cardinal group in
      let rec bits l acc = if acc >= card then l else bits (l + 1) (acc * 2) in
      bits 0 1
    in
    let candidates l =
      match base with
      | Some b -> if l >= Face.level k b then Face.superfaces_at_level k b l else Seq.empty
      | None -> Face.faces_at_level k l
    in
    let rec levels l =
      if l >= k then None
      else
        match Seq.find (face_ok group) (candidates l) with
        | Some f -> Some f
        | None -> levels (l + 1)
    in
    match levels min_level with
    | None -> ()
    | Some f ->
        let free = ref (free_vertices f) in
        Bitvec.iter
          (fun s ->
            if state_code.(s) < 0 then
              match !free with
              | v :: rest ->
                  assign s v;
                  free := rest
              | [] -> assert false)
          group
  in
  List.iter (fun (g, _, _) -> if not (Budget.exhausted budget) then try_group g) groups;
  (* Leftover states take arbitrary free codes. *)
  let next_free = ref 0 in
  for s = 0 to num_states - 1 do
    if state_code.(s) < 0 then begin
      while Hashtbl.mem code_used !next_free do
        incr next_free
      done;
      assign s !next_free
    end
  done;
  let encoding = Encoding.make ~nbits:k state_code in
  let satisfied, unsatisfied =
    List.partition
      (fun (ic : Constraints.input_constraint) -> Constraints.satisfied encoding ic.Constraints.states)
      ics
  in
  { encoding; satisfied; unsatisfied }
