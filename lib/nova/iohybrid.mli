(** [iohybrid_code] and [iovariant_code] (Section 6.2): heuristic
    satisfaction of the mixed input/output constraints produced by
    symbolic minimization — the ordered face hypercube embedding problem.

    [iohybrid_code] (Section 6.2.1) gives priority to input constraints:
    it first accretes input constraints like [ihybrid_code], then tries
    to add clusters of output covering constraints in decreasing weight
    order through [io_semiexact_code], and finally projects into extra
    dimensions to satisfy remaining input constraints.

    [iovariant_code] (Section 6.2.2) accepts a cluster only when both its
    output constraints and its companion input constraints are satisfied
    together. The paper found [iohybrid_code] performs better. *)

type problem = {
  num_states : int;
  ics : Constraints.input_constraint list;
      (** companion input constraints, including [IC_o] *)
  clusters : Constraints.oc_cluster list;
}

type result = {
  encoding : Encoding.t;
  sat_inputs : Constraints.input_constraint list;
  unsat_inputs : Constraints.input_constraint list;
  sat_clusters : Constraints.oc_cluster list;
  random_start : bool;
      (** true when every accretion step failed and the projection
          started from the fallback random encoding *)
}

(** [budget] is the caller's cross-cutting budget: every bounded search
    charges it, and once it runs out the remaining accretion steps and
    projections are skipped. May propagate [Budget.Out_of_budget] from
    {!Out_encoder} on the output-constraints-only path. *)
val iohybrid_code :
  ?nbits:int -> ?max_work:int -> ?seed:int -> ?budget:Budget.t -> problem -> result

val iovariant_code :
  ?nbits:int -> ?max_work:int -> ?seed:int -> ?budget:Budget.t -> problem -> result
