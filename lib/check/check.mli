(** Independent result certification for the encoding pipeline.

    NOVA's contract is that the encoded, ESPRESSO-minimized PLA is
    functionally identical to the symbolic FSM while satisfying the
    face-embedding and output-covering constraints the encoders claim.
    Since the fallback ladder can silently substitute a degraded
    encoding, every pipeline outcome can be re-verified here by code that
    shares {e nothing} with the code that produced it: this library links
    against [Logic]/[Bitvec]/[Fsm]/[Constraints] only — never against
    [Espresso], [Embed] or the [Iexact]-family encoders (see the dune
    file).

    A certificate re-establishes, from the raw artifacts:

    - {b injectivity}: the state codes are pairwise distinct and one per
      state (recomputed from the raw code array, not trusted from
      [Encoding.make]);
    - {b code length}: every code fits the declared number of bits;
    - {b face constraints}: every input constraint the encoder claimed
      satisfied really spans a face of the hypercube containing no
      foreign code (recomputed with {!Constraints.satisfied});
    - {b output covering}: every claimed covering relation [u > v] holds
      bitwise on the final codes, strictly;
    - {b cover containment}: the minimized cover contains the on-set and
      stays inside on-set ∪ DC-set of the re-encoded transition table
      (decided with [Logic] containment/tautology primitives);
    - {b trace equivalence}: the PLA is trace-equivalent to the symbolic
      machine via {!Simulate} — exhaustive for machines with few inputs,
      seeded-sampled beyond {!certify}'s [exhaustive_inputs] threshold.

    The checks that need a well-formed encoding (everything past code
    length) are skipped when injectivity or code length fail — the
    certificate already failed and [Encoding.t] cannot even be built.

    {!Inject} mutates artifacts to prove the checker effective: the test
    harness asserts every fault class is caught. *)

open Logic

(** What the producing pipeline claims about its result. Baselines claim
    nothing; the constraint-driven encoders claim the constraints they
    report satisfied. An empty claim set weakens the certificate (checks
    (c) and (d) of the paper contract become vacuous) but never fails
    it. *)
type claims = {
  claimed_ics : Bitvec.t list;
      (** state groups claimed to span faces (over [num_states] bits) *)
  claimed_ocs : (int * int) list;
      (** [(u, v)]: code of state [u] claimed to cover the code of [v] *)
}

val no_claims : claims

(** The raw artifacts of one pipeline outcome. Codes arrive as a bare
    array — deliberately unvalidated, so the certificate (and the fault
    injector) can represent ill-formed encodings that [Encoding.make]
    would reject. *)
type artifacts = {
  nbits : int;
  codes : int array;
  cover : Cover.t;  (** the minimized encoded cover, over {!Encoded.build}'s domain *)
  claims : claims;
}

type check_id =
  | Injectivity
  | Code_length
  | Face_constraints
  | Output_covering
  | Cover_containment
  | Trace_equivalence

(** [check_name id] is the stable spelling used in reports, JSON and CLI
    output ("injectivity", "code-length", ...). *)
val check_name : check_id -> string

val all_checks : check_id list

type outcome = {
  id : check_id;
  pass : bool;
  detail : string;  (** empty when passed; what went wrong otherwise *)
  span_s : float;  (** wall-clock seconds this check took *)
}

(** A certificate: the ordered check outcomes and the conjunction. *)
type t = { ok : bool; checks : outcome list }

(** [certify m artifacts] runs every applicable check and never raises.
    [exhaustive_inputs] (default 12) bounds the exhaustive trace check:
    machines with more primary inputs are verified with [sample_traces]
    (default 64) seeded random traces of [sample_length] (default 32)
    steps drawn from [seed] (default 0). Each check also records an
    [Instrument] span under ["check.<name>"]. *)
val certify :
  ?seed:int ->
  ?exhaustive_inputs:int ->
  ?sample_traces:int ->
  ?sample_length:int ->
  Fsm.t ->
  artifacts ->
  t

(** [failures c] is the failed subset of [c.checks]. *)
val failures : t -> outcome list

(** [summary c] is a one-line rendering: ["certificate OK (6 checks)"] or
    the failed check names with their details. *)
val summary : t -> string

(** [to_json c] is a machine-readable rendering (stable field names:
    [ok], [checks[].name/pass/span_s/detail]) for [BENCH_check.json]. *)
val to_json : t -> string

(** Fault injection: mutate artifacts in ways that {e genuinely} break
    the contract, so the test harness can assert the checker catches
    them. Each injector vets its candidate mutation against the ground
    truth (the transition table, re-encoded with [Logic] primitives) and
    returns [None] only when the fault class cannot produce a genuine
    fault on this machine (e.g. corrupting a binary output column on a
    machine with no outputs). *)
module Inject : sig
  type fault =
    | Flip_code_bit  (** flip one bit of one state's code *)
    | Duplicate_code  (** overwrite a code with another state's code *)
    | Oversize_code  (** set a bit beyond the declared code length *)
    | Drop_cube  (** remove a cube from the minimized cover *)
    | Raise_cube  (** free a bound literal field of a cube *)
    | Corrupt_next_state  (** toggle a next-state output column bit *)
    | Corrupt_output  (** toggle a binary-output column bit *)
    | Bogus_ic_claim  (** claim an unsatisfied face constraint *)
    | Bogus_oc_claim  (** claim an unsatisfied covering relation *)

  val all : fault list
  val name : fault -> string

  (** [of_name s] inverts {!name} (the CLI's [--inject] spelling). *)
  val of_name : string -> fault option

  (** [apply m artifacts fault] is the mutated artifacts, or [None] when
      no genuine fault of this class exists for [m]. Deterministic: the
      first vetted candidate in a fixed scan order is returned. *)
  val apply : Fsm.t -> artifacts -> fault -> artifacts option
end
