open Logic

type claims = {
  claimed_ics : Bitvec.t list;
  claimed_ocs : (int * int) list;
}

let no_claims = { claimed_ics = []; claimed_ocs = [] }

type artifacts = {
  nbits : int;
  codes : int array;
  cover : Cover.t;
  claims : claims;
}

type check_id =
  | Injectivity
  | Code_length
  | Face_constraints
  | Output_covering
  | Cover_containment
  | Trace_equivalence

let check_name = function
  | Injectivity -> "injectivity"
  | Code_length -> "code-length"
  | Face_constraints -> "face-constraints"
  | Output_covering -> "output-covering"
  | Cover_containment -> "cover-containment"
  | Trace_equivalence -> "trace-equivalence"

let all_checks =
  [
    Injectivity; Code_length; Face_constraints; Output_covering; Cover_containment;
    Trace_equivalence;
  ]

type outcome = {
  id : check_id;
  pass : bool;
  detail : string;
  span_s : float;
}

type t = { ok : bool; checks : outcome list }

(* Every check runs under its own wall-clock span and an Instrument
   timer, and must not raise: an exception inside a check is itself a
   certification failure, never a crash of the checker. *)
let run_check id f =
  let timer = Instrument.timer ("check." ^ check_name id) in
  let t0 = Unix.gettimeofday () in
  let run () =
    match Instrument.time timer f with
    | r -> r
    | exception e -> (false, Printf.sprintf "checker exception: %s" (Printexc.to_string e))
  in
  let pass, detail =
    if not (Trace.enabled ()) then run ()
    else
      Trace.with_span_result ("check." ^ check_name id) (fun () ->
          let ((pass, _) as r) = run () in
          (r, [ ("pass", Trace.Bool pass) ]))
  in
  { id; pass; detail; span_s = Unix.gettimeofday () -. t0 }

(* --- (a) structural checks on the raw code array ---------------------- *)

let check_injectivity (m : Fsm.t) a () =
  let n = Array.length m.Fsm.states in
  if Array.length a.codes <> n then
    (false, Printf.sprintf "%d codes for %d states" (Array.length a.codes) n)
  else begin
    let seen = Hashtbl.create n in
    let clash = ref None in
    Array.iteri
      (fun s c ->
        if !clash = None then
          match Hashtbl.find_opt seen c with
          | Some s' -> clash := Some (s', s, c)
          | None -> Hashtbl.add seen c s)
      a.codes;
    match !clash with
    | Some (s', s, c) ->
        (false, Printf.sprintf "states %s and %s share code %d" m.Fsm.states.(s') m.Fsm.states.(s) c)
    | None -> (true, "")
  end

let check_code_length (m : Fsm.t) a () =
  if a.nbits < 1 then (false, Printf.sprintf "declared length %d < 1" a.nbits)
  else begin
    let bad = ref None in
    Array.iteri
      (fun s c ->
        if !bad = None && (c < 0 || (a.nbits < Sys.int_size && c lsr a.nbits <> 0)) then
          bad := Some (s, c))
      a.codes;
    match !bad with
    | Some (s, c) ->
        let name = if s < Array.length m.Fsm.states then m.Fsm.states.(s) else string_of_int s in
        (false, Printf.sprintf "code %d of state %s does not fit in %d bits" c name a.nbits)
    | None -> (true, "")
  end

(* --- (b) claimed input constraints span faces -------------------------- *)

let check_faces (m : Fsm.t) (e : Encoding.t) a () =
  let n = Array.length m.Fsm.states in
  let bad = ref [] in
  List.iter
    (fun group ->
      if Bitvec.length group <> n then
        bad := Printf.sprintf "group %s is not over %d states" (Bitvec.to_string group) n :: !bad
      else if Bitvec.cardinal group < 2 then
        () (* singleton groups are trivially faces *)
      else if not (Constraints.satisfied e group) then
        bad :=
          Printf.sprintf "{%s} does not span a private face"
            (String.concat ","
               (List.map (fun s -> m.Fsm.states.(s)) (Bitvec.to_list group)))
          :: !bad)
    a.claims.claimed_ics;
  match List.rev !bad with
  | [] -> (true, "")
  | faults -> (false, String.concat "; " faults)

(* --- (c) claimed output covering relations ----------------------------- *)

let check_covering (m : Fsm.t) a () =
  let n = Array.length m.Fsm.states in
  let bad = ref [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        bad := Printf.sprintf "claim (%d > %d) is out of range" u v :: !bad
      else
        let cu = a.codes.(u) and cv = a.codes.(v) in
        if not (cu lor cv = cu && cu <> cv) then
          bad :=
            Printf.sprintf "code of %s (%d) does not strictly cover %s (%d)" m.Fsm.states.(u) cu
              m.Fsm.states.(v) cv
            :: !bad)
    a.claims.claimed_ocs;
  match List.rev !bad with
  | [] -> (true, "")
  | faults -> (false, String.concat "; " faults)

(* --- (d) minimized cover vs the re-encoded on/DC sets ------------------ *)

let check_containment (enc : Encoded.t) a () =
  if not (Domain.equal a.cover.Cover.dom enc.Encoded.dom) then
    (false, "cover domain does not match the encoded machine's domain")
  else if not (Cover.covers a.cover enc.Encoded.on) then
    (false, "a specified on-set point is not covered")
  else begin
    let space = Cover.union enc.Encoded.on enc.Encoded.dc in
    if not (Cover.covers space a.cover) then
      (false, "the cover asserts a point outside on-set + DC-set")
    else (true, "")
  end

(* --- (e) trace equivalence --------------------------------------------- *)

let check_traces ~seed ~exhaustive_inputs ~sample_traces ~sample_length (m : Fsm.t)
    (enc : Encoded.t) a () =
  let verdict =
    if m.Fsm.num_inputs <= exhaustive_inputs then Simulate.check_cover enc a.cover
    else
      Simulate.check_cover_sampled
        (Random.State.make [| seed; 0x5eed |])
        enc a.cover ~traces:sample_traces ~length:sample_length
  in
  match verdict with
  | Simulate.Equivalent -> (true, "")
  | Simulate.Mismatch { state; input; detail } ->
      (false, Printf.sprintf "state %s under input %s: %s" m.Fsm.states.(state) input detail)

let certify ?(seed = 0) ?(exhaustive_inputs = 12) ?(sample_traces = 64) ?(sample_length = 32)
    (m : Fsm.t) a =
  let structural =
    [ run_check Injectivity (check_injectivity m a); run_check Code_length (check_code_length m a) ]
  in
  let checks =
    if List.exists (fun c -> not c.pass) structural then structural
    else begin
      (* The code array is now known injective and in range, so the
         validating constructor cannot refuse it. *)
      let e = Encoding.make ~nbits:a.nbits a.codes in
      let encoded = Encoded.build m e in
      structural
      @ [
          run_check Face_constraints (check_faces m e a);
          run_check Output_covering (check_covering m a);
          run_check Cover_containment (check_containment encoded a);
          run_check Trace_equivalence
            (check_traces ~seed ~exhaustive_inputs ~sample_traces ~sample_length m encoded a);
        ]
    end
  in
  { ok = List.for_all (fun c -> c.pass) checks; checks }

let failures c = List.filter (fun o -> not o.pass) c.checks

let summary c =
  if c.ok then Printf.sprintf "certificate OK (%d checks)" (List.length c.checks)
  else
    Printf.sprintf "certificate FAILED: %s"
      (String.concat "; "
         (List.map (fun o -> Printf.sprintf "%s (%s)" (check_name o.id) o.detail) (failures c)))

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | ch when Char.code ch < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let to_json c =
  let check o =
    Printf.sprintf "{\"name\":\"%s\",\"pass\":%b,\"span_s\":%.6f,\"detail\":\"%s\"}"
      (check_name o.id) o.pass o.span_s (json_escape o.detail)
  in
  Printf.sprintf "{\"ok\":%b,\"checks\":[%s]}" c.ok
    (String.concat "," (List.map check c.checks))

(* ---------------------------------------------------------------------- *)
(* Fault injection *)

module Inject = struct
  type fault =
    | Flip_code_bit
    | Duplicate_code
    | Oversize_code
    | Drop_cube
    | Raise_cube
    | Corrupt_next_state
    | Corrupt_output
    | Bogus_ic_claim
    | Bogus_oc_claim

  let all =
    [
      Flip_code_bit; Duplicate_code; Oversize_code; Drop_cube; Raise_cube; Corrupt_next_state;
      Corrupt_output; Bogus_ic_claim; Bogus_oc_claim;
    ]

  let name = function
    | Flip_code_bit -> "flip-code-bit"
    | Duplicate_code -> "duplicate-code"
    | Oversize_code -> "oversize-code"
    | Drop_cube -> "drop-cube"
    | Raise_cube -> "raise-cube"
    | Corrupt_next_state -> "corrupt-next-state"
    | Corrupt_output -> "corrupt-output"
    | Bogus_ic_claim -> "bogus-ic-claim"
    | Bogus_oc_claim -> "bogus-oc-claim"

  let of_name s = List.find_opt (fun f -> name f = s) all

  (* Ground truth for vetting cover mutations: a candidate cover is a
     genuine fault iff it misses an on-set point or escapes the on+DC
     space of the (unmutated) encoded machine. Decided with the same
     Logic primitives the certificate uses — but against the transition
     table directly, so the injector never "asks the checker". *)
  let breaks_function (m : Fsm.t) a cover' =
    let e = Encoding.make ~nbits:a.nbits a.codes in
    let enc = Encoded.build m e in
    (not (Cover.covers cover' enc.Encoded.on))
    || not (Cover.covers (Cover.union enc.Encoded.on enc.Encoded.dc) cover')

  let with_cover a cubes = { a with cover = Cover.make a.cover.Cover.dom cubes }

  (* First transition row with a specified next state whose source is
     never shadowed: the first row of the table is the first match for
     any input inside its own cube, so flipping its destination's code is
     guaranteed to surface as a trace mismatch. *)
  let first_specified_dst (m : Fsm.t) =
    List.find_map (fun (tr : Fsm.transition) -> tr.Fsm.dst) m.Fsm.transitions

  let flip_code_bit (m : Fsm.t) a =
    match first_specified_dst m with
    | None -> None (* no specified next state anywhere: nothing to mis-encode *)
    | Some s ->
        let codes = Array.copy a.codes in
        codes.(s) <- codes.(s) lxor 1;
        Some { a with codes }

  let duplicate_code a =
    if Array.length a.codes < 2 then None
    else begin
      let codes = Array.copy a.codes in
      codes.(1) <- codes.(0);
      Some { a with codes }
    end

  let oversize_code a =
    if a.nbits >= Sys.int_size - 2 then None
    else begin
      let codes = Array.copy a.codes in
      codes.(0) <- codes.(0) lor (1 lsl a.nbits);
      Some { a with codes }
    end

  let rec drop_nth n = function
    | [] -> []
    | _ :: rest when n = 0 -> rest
    | c :: rest -> c :: drop_nth (n - 1) rest

  let drop_cube (m : Fsm.t) a =
    let cubes = a.cover.Cover.cubes in
    let rec try_at i =
      if i >= List.length cubes then None
      else
        let candidate = with_cover a (drop_nth i cubes) in
        if breaks_function m a candidate.cover then Some candidate else try_at (i + 1)
    in
    try_at 0

  (* Mutate cube [i] of the cover with [f] (a fresh copy) and vet. *)
  let mutate_cube (m : Fsm.t) a ~candidates ~f =
    let cubes = Array.of_list a.cover.Cover.cubes in
    let rec scan = function
      | [] -> None
      | (i, x) :: rest ->
          let cube = Bitvec.copy cubes.(i) in
          if f cube x then begin
            let cubes' = Array.copy cubes in
            cubes'.(i) <- cube;
            let candidate = with_cover a (Array.to_list cubes') in
            if breaks_function m a candidate.cover then Some candidate else scan rest
          end
          else scan rest
    in
    scan (candidates (Array.length cubes))

  let raise_cube (m : Fsm.t) a =
    let dom = a.cover.Cover.dom in
    let nvars = Domain.num_vars dom in
    let candidates ncubes =
      List.concat_map
        (fun i -> List.init nvars (fun v -> (i, v)))
        (List.init ncubes (fun i -> i))
    in
    mutate_cube m a ~candidates ~f:(fun cube v ->
        if Cube.var_full dom cube v then false
        else begin
          Bitvec.set_range cube (Domain.offset dom v) (Domain.size dom v);
          true
        end)

  (* Toggle one part bit of the final (output) variable: parts
     [0 .. nbits-1] are the next-state columns, the rest the binary
     outputs. *)
  let corrupt_column (m : Fsm.t) a ~parts =
    let dom = a.cover.Cover.dom in
    let ov = Domain.num_vars dom - 1 in
    let off = Domain.offset dom ov in
    let candidates ncubes =
      List.concat_map (fun i -> List.map (fun p -> (i, p)) parts) (List.init ncubes (fun i -> i))
    in
    mutate_cube m a ~candidates ~f:(fun cube p ->
        let bit = off + p in
        if Bitvec.get cube bit then Bitvec.clear cube bit else Bitvec.set cube bit;
        true)

  let corrupt_next_state (m : Fsm.t) a =
    corrupt_column m a ~parts:(List.init a.nbits (fun b -> b))

  let corrupt_output (m : Fsm.t) a =
    if m.Fsm.num_outputs = 0 then None
    else corrupt_column m a ~parts:(List.init m.Fsm.num_outputs (fun j -> a.nbits + j))

  (* A bogus face claim: the first small state group whose codes do NOT
     span a private face under the actual encoding. *)
  let bogus_ic_claim (m : Fsm.t) a =
    let n = Array.length m.Fsm.states in
    let e = Encoding.make ~nbits:a.nbits a.codes in
    let groups = ref [] in
    for s1 = 0 to n - 1 do
      for s2 = s1 + 1 to n - 1 do
        groups := Bitvec.of_list n [ s1; s2 ] :: !groups
      done
    done;
    for s1 = 0 to min (n - 1) 4 do
      for s2 = s1 + 1 to min (n - 1) 5 do
        for s3 = s2 + 1 to min (n - 1) 6 do
          groups := Bitvec.of_list n [ s1; s2; s3 ] :: !groups
        done
      done
    done;
    List.find_opt (fun g -> not (Constraints.satisfied e g)) (List.rev !groups)
    |> Option.map (fun g ->
           { a with claims = { a.claims with claimed_ics = g :: a.claims.claimed_ics } })

  let bogus_oc_claim (m : Fsm.t) a =
    let n = Array.length m.Fsm.states in
    let pairs = ref [] in
    for u = n - 1 downto 0 do
      for v = n - 1 downto 0 do
        if u <> v then pairs := (u, v) :: !pairs
      done
    done;
    List.find_opt
      (fun (u, v) ->
        let cu = a.codes.(u) and cv = a.codes.(v) in
        not (cu lor cv = cu && cu <> cv))
      !pairs
    |> Option.map (fun oc ->
           { a with claims = { a.claims with claimed_ocs = oc :: a.claims.claimed_ocs } })

  let apply (m : Fsm.t) a fault =
    match fault with
    | Flip_code_bit -> flip_code_bit m a
    | Duplicate_code -> duplicate_code a
    | Oversize_code -> oversize_code a
    | Drop_cube -> drop_cube m a
    | Raise_cube -> raise_cube m a
    | Corrupt_next_state -> corrupt_next_state m a
    | Corrupt_output -> corrupt_output m a
    | Bogus_ic_claim -> bogus_ic_claim m a
    | Bogus_oc_claim -> bogus_oc_claim m a
end
