(** Minimal dependency-free JSON reader for the repo's own artifacts
    (trace exports, BENCH_*.json, Instrument.to_json). Numbers are
    floats; objects keep key order; non-ASCII bytes in strings pass
    through verbatim. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
val of_file : string -> t

(** [render v] is [v] as compact one-line JSON (no newlines: control
    characters in strings are escaped), suitable for newline-delimited
    protocols. [of_string (render v) = v] for any [v] whose numbers are
    finite; non-finite floats render as [null]. Integral floats render
    without a decimal point. *)
val render : t -> string

val member : string -> t -> t option
val to_string : t -> string option
val to_float : t -> float option
val to_list : t -> t list option
