(** Minimal dependency-free JSON reader for the repo's own artifacts
    (trace exports, BENCH_*.json, Instrument.to_json). Numbers are
    floats; objects keep key order; non-ASCII bytes in strings pass
    through verbatim. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val of_string : string -> t
val of_file : string -> t

val member : string -> t -> t option
val to_string : t -> string option
val to_float : t -> float option
val to_list : t -> t list option
