(* Well-formedness checks over an exported trace, shared by the
   scripts/validate_trace entry point and the test suite. Both export
   formats decode to the same event stream, so one checker covers both:

   - per track, Begin/End events balance under stack discipline with
     matching names (the span tree is well formed);
   - per track, timestamps are monotone (non-decreasing);
   - every span carries the "machine" and "algorithm" attributes (the
     self-description contract: any lane of any trace can be read on
     its own);
   - the run manifest is present and names the code version. *)

type span_tree = {
  span_name : string;
  span_attrs : Trace.attrs;
  start_ts : float;
  end_ts : float;
  children : span_tree list;
}

type report = {
  errors : string list;
  num_events : int;
  num_spans : int;
  num_instants : int;
  num_tracks : int;
  roots : (int * span_tree list) list;  (** per track, outermost spans in order *)
}

let ok r = r.errors = []

(* --- decoding ----------------------------------------------------------- *)

let attr_of_json (k, j) =
  let v =
    match j with
    | Json_min.Str s -> Trace.String s
    | Json_min.Num f -> if Float.is_integer f then Trace.Int (int_of_float f) else Trace.Float f
    | Json_min.Bool b -> Trace.Bool b
    | Json_min.Null | Json_min.Arr _ | Json_min.Obj _ -> Trace.String "<composite>"
  in
  (k, v)

let attrs_of_json = function
  | Some (Json_min.Obj kvs) -> List.map attr_of_json kvs
  | _ -> []

let kind_of_phase = function
  | "B" -> Some Trace.Begin
  | "E" -> Some Trace.End
  | "i" | "I" -> Some Trace.Instant
  | _ -> None

let event_of_obj ~name_key ~track_key j =
  match
    ( Option.bind (Json_min.member "ph" j) Json_min.to_string,
      Option.bind (Json_min.member "type" j) Json_min.to_string )
  with
  | None, None -> None
  | ph, ty -> (
      let phase = match ph with Some p -> p | None -> Option.value ty ~default:"" in
      match kind_of_phase phase with
      | None -> None (* metadata events ("M") and the JSONL meta line *)
      | Some kind ->
          let str k = Option.bind (Json_min.member k j) Json_min.to_string in
          let num k = Option.bind (Json_min.member k j) Json_min.to_float in
          Some
            {
              Trace.kind;
              name = Option.value (str name_key) ~default:"";
              ts = Option.value (num "ts") ~default:0.;
              track = int_of_float (Option.value (num track_key) ~default:0.);
              attrs = attrs_of_json (Json_min.member (if track_key = "tid" then "args" else "attrs") j);
            })

let decode_chrome j =
  let events =
    match Option.bind (Json_min.member "traceEvents" j) Json_min.to_list with
    | Some l -> List.filter_map (event_of_obj ~name_key:"name" ~track_key:"tid") l
    | None -> []
  in
  let meta = attrs_of_json (Json_min.member "metadata" j) in
  (events, meta)

let decode_jsonl text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  let events = ref [] and meta = ref [] in
  List.iter
    (fun line ->
      let j = Json_min.of_string line in
      match Option.bind (Json_min.member "type" j) Json_min.to_string with
      | Some "meta" -> meta := attrs_of_json (Json_min.member "meta" j)
      | _ -> (
          match event_of_obj ~name_key:"name" ~track_key:"track" j with
          | Some e -> events := e :: !events
          | None -> ()))
    lines;
  (List.rev !events, !meta)

let decode_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  if Filename.check_suffix path ".jsonl" then decode_jsonl text
  else decode_chrome (Json_min.of_string text)

(* --- checking ----------------------------------------------------------- *)

(* Fold one track's events into its span forest, collecting errors. *)
let check_track track evs =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let last_ts = ref neg_infinity in
  (* Stack of open spans: (name, attrs, start_ts, reversed children). *)
  let stack = ref [] in
  let roots = ref [] in
  let close_into name attrs start_ts ts children =
    let t = { span_name = name; span_attrs = attrs; start_ts; end_ts = ts; children } in
    match !stack with
    | [] -> roots := t :: !roots
    | (n, a, s, kids) :: rest -> stack := (n, a, s, t :: kids) :: rest
  in
  let spans = ref 0 and instants = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      if e.ts < !last_ts then
        err "track %d: timestamp goes backwards at %S (%.1f < %.1f)" track e.name e.ts !last_ts;
      last_ts := e.ts;
      match e.kind with
      | Trace.Begin ->
          incr spans;
          if not (List.mem_assoc "machine" e.attrs) then
            err "track %d: span %S has no \"machine\" attribute" track e.name;
          if not (List.mem_assoc "algorithm" e.attrs) then
            err "track %d: span %S has no \"algorithm\" attribute" track e.name;
          stack := (e.name, e.attrs, e.ts, []) :: !stack
      | Trace.End -> (
          match !stack with
          | [] -> err "track %d: End %S with no open span" track e.name
          | (n, a, s, kids) :: rest ->
              if n <> e.name then err "track %d: End %S closes open span %S" track e.name n;
              stack := rest;
              close_into n a s e.ts (List.rev kids))
      | Trace.Instant -> incr instants)
    evs;
  List.iter (fun (n, _, _, _) -> err "track %d: span %S never ends" track n) !stack;
  (List.rev !errors, List.rev !roots, !spans, !instants)

let check ?(require_meta = true) (events, meta) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let by_track = Hashtbl.create 8 in
  List.iter
    (fun (e : Trace.event) ->
      Hashtbl.replace by_track e.track
        (e :: (try Hashtbl.find by_track e.track with Not_found -> [])))
    events;
  let tracks =
    Hashtbl.fold (fun id evs acc -> (id, List.rev evs) :: acc) by_track []
    |> List.sort compare
  in
  let num_spans = ref 0 and num_instants = ref 0 in
  let roots =
    List.map
      (fun (id, evs) ->
        let errs, roots, spans, instants = check_track id evs in
        errors := List.rev_append errs !errors;
        num_spans := !num_spans + spans;
        num_instants := !num_instants + instants;
        (id, roots))
      tracks
  in
  if !num_spans = 0 then err "trace contains no spans";
  if require_meta && not (List.mem_assoc "code_version" meta) then
    err "run manifest has no \"code_version\" (trace-meta missing or incomplete)";
  {
    errors = List.rev !errors;
    num_events = List.length events;
    num_spans = !num_spans;
    num_instants = !num_instants;
    num_tracks = List.length tracks;
    roots;
  }

let check_file ?require_meta path = check ?require_meta (decode_file path)

let summary r =
  Printf.sprintf "%d events (%d spans, %d instants) on %d tracks" r.num_events r.num_spans
    r.num_instants r.num_tracks
