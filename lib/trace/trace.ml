(* Structured tracing: an explicit span tree over the whole encoding
   pipeline, with one track per domain so parallel portfolio runs render
   as parallel lanes.

   Everything is default-off: while [on] is false every probe is a load
   and a branch, exactly like [Instrument]. Enable with [enable ()] — or
   NOVA_TRACE=1 in the environment — run the workload, then [export] the
   buffered events as Chrome trace-event JSON (loadable in Perfetto or
   chrome://tracing) or as an append-only JSONL event log. Both exports
   are lossless views of the same buffer and are written atomically
   (tmp + rename, the cache's idiom).

   Span model
   - [with_span name f] emits a Begin event, runs [f], and emits the
     matching End event (exception-safe). Spans on one track nest
     strictly (a per-track stack), so Begin/End pairs per track are
     balanced and form a tree: the run's span tree.
   - Spans carry typed attributes. A child span *inherits* the
     attributes of its enclosing span on the same track (and may
     override them), so a deep espresso phase span still knows which
     machine and algorithm it serves without threading those through
     every call site.
   - [instant name] emits a point event (degradation, budget trip,
     cache hit, race win...), also inheriting the open span's
     attributes.
   - The track of an event is the integer id of the domain that emitted
     it: Exec.Pool workers land on their own lanes automatically.

   Determinism invariant: tracing writes nothing anywhere except its own
   in-memory buffer, and at export time the one file it was asked for —
   never stdout. Traced and untraced runs (and jobs=1 vs jobs=N runs)
   therefore produce byte-identical stdout.

   Timestamps are microseconds since [enable]. Within one track they are
   clamped to be non-decreasing, so per-track monotonicity is an
   invariant of the buffer (scripts/validate_trace checks it), not an
   accident of the clock. *)

type value = String of string | Int of int | Float of float | Bool of bool

type attrs = (string * value) list

type kind = Begin | End | Instant

type event = { kind : kind; name : string; ts : float; track : int; attrs : attrs }

let on =
  ref
    (match Sys.getenv_opt "NOVA_TRACE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let enabled () = !on

(* One lock for the buffer, the per-track stacks and the metadata; held
   for a few list operations at most, never while running user code. *)
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Events are consed and reversed at export: appends are O(1) under the
   lock, and the export order is the emission order. *)
let events : event list ref = ref []
let num_events = ref 0

(* Per-track state: the stack of open spans (name and merged attrs, for
   inheritance) and the last timestamp handed out (for monotonicity). *)
type track_state = { mutable stack : (string * attrs) list; mutable last_ts : float }

let tracks : (int, track_state) Hashtbl.t = Hashtbl.create 8

(* The track that called [enable]: named "main" in the exports. *)
let main_track = ref 0

let meta : attrs ref = ref []

let t0 = ref 0.

let enable () =
  locked @@ fun () ->
  t0 := Unix.gettimeofday ();
  main_track := (Domain.self () :> int);
  on := true

let disable () = on := false

let reset () =
  locked @@ fun () ->
  events := [];
  num_events := 0;
  Hashtbl.reset tracks;
  meta := []

let event_count () = locked (fun () -> !num_events)

let set_meta kvs =
  if !on then
    locked @@ fun () ->
    List.iter
      (fun (k, v) -> meta := (k, v) :: List.remove_assoc k !meta)
      kvs

(* Merge [over] on top of [base]: [over] wins on duplicate keys, and the
   base order is kept stable so exported args are deterministic. *)
let merge_attrs base over =
  List.filter (fun (k, _) -> not (List.mem_assoc k over)) base @ over

let track_state track =
  match Hashtbl.find_opt tracks track with
  | Some s -> s
  | None ->
      let s = { stack = []; last_ts = 0. } in
      Hashtbl.add tracks track s;
      s

(* Must be called under [mutex]. *)
let append kind name attrs =
  let track = (Domain.self () :> int) in
  let st = track_state track in
  let ts =
    let raw = (Unix.gettimeofday () -. !t0) *. 1e6 in
    if raw > st.last_ts then raw else st.last_ts
  in
  st.last_ts <- ts;
  events := { kind; name; ts; track; attrs } :: !events;
  incr num_events;
  st

let instant ?(attrs = []) name =
  if !on then
    locked @@ fun () ->
    let track = (Domain.self () :> int) in
    let inherited = match (track_state track).stack with (_, a) :: _ -> a | [] -> [] in
    ignore (append Instant name (merge_attrs inherited attrs))

let annotate attrs =
  if !on then
    locked @@ fun () ->
    let st = track_state (Domain.self () :> int) in
    match st.stack with
    | [] -> ()
    | (name, a) :: rest -> st.stack <- (name, merge_attrs a attrs) :: rest

let span_begin name attrs =
  locked @@ fun () ->
  let track = (Domain.self () :> int) in
  let st = track_state track in
  let inherited = match st.stack with (_, a) :: _ -> a | [] -> [] in
  let merged = merge_attrs inherited attrs in
  st.stack <- (name, merged) :: st.stack;
  ignore (append Begin name merged)

let span_end name end_attrs =
  locked @@ fun () ->
  let st = track_state (Domain.self () :> int) in
  (match st.stack with
  | (n, _) :: rest when n = name -> st.stack <- rest
  | _ -> () (* unbalanced end: drop the pop, the validator will flag it *));
  ignore (append End name end_attrs)

let with_span ?(attrs = []) name f =
  if not !on then f ()
  else begin
    span_begin name attrs;
    Fun.protect ~finally:(fun () -> span_end name []) f
  end

(* Like [with_span] but [f] also returns the attributes to attach to the
   End event (result sizes, verdicts, budget spent...). *)
let with_span_result ?(attrs = []) name f =
  if not !on then fst (f ())
  else begin
    span_begin name attrs;
    let ended = ref false in
    Fun.protect
      ~finally:(fun () -> if not !ended then span_end name [])
      (fun () ->
        let v, end_attrs = f () in
        ended := true;
        span_end name end_attrs;
        v)
  end

(* --- export ------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6f" f

let value_json = function
  | String s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Bool b -> string_of_bool b

let attrs_json attrs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (value_json v)) attrs)
  ^ "}"

(* A consistent snapshot of the buffer, in emission order, plus the
   per-track names for the exports. *)
let snapshot () =
  locked @@ fun () ->
  let evs = List.rev !events in
  let track_ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) tracks [] |> List.sort compare
  in
  (evs, track_ids, !meta, !main_track)

let track_name ~main id = if id = main then "main" else Printf.sprintf "domain-%d" id

(* tmp + rename, like the cache: a reader never sees a half-written
   trace, and a crashed export leaves the previous file intact. *)
let write_atomic path render =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  match
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> render oc);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let phase = function Begin -> "B" | End -> "E" | Instant -> "i"

(* Chrome trace-event JSON: the run manifest rides in "metadata" (shown
   by Perfetto under Info & stats) and per-track thread_name metadata
   events label the lanes. *)
let export_chrome ~path () =
  let evs, track_ids, meta, main = snapshot () in
  write_atomic path @@ fun oc ->
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if not !first then output_string oc ",";
    first := false;
    output_string oc s
  in
  List.iter
    (fun id ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           id
           (json_escape (track_name ~main id))))
    track_ids;
  List.iter
    (fun e ->
      let scope = match e.kind with Instant -> ",\"s\":\"t\"" | Begin | End -> "" in
      emit
        (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":1,\"tid\":%d%s,\"args\":%s}"
           (json_escape e.name) (phase e.kind) (json_float e.ts) e.track scope
           (attrs_json e.attrs)))
    evs;
  output_string oc "],\"displayTimeUnit\":\"ms\",\"metadata\":";
  output_string oc (attrs_json meta);
  output_string oc "}\n"

(* JSONL: one event per line, the first line being the run manifest —
   an append-only log a tail-reader can follow record by record. *)
let export_jsonl ~path () =
  let evs, track_ids, meta, main = snapshot () in
  write_atomic path @@ fun oc ->
  let tracks_json =
    "{"
    ^ String.concat ","
        (List.map
           (fun id -> Printf.sprintf "\"%d\":\"%s\"" id (json_escape (track_name ~main id)))
           track_ids)
    ^ "}"
  in
  output_string oc
    (Printf.sprintf "{\"type\":\"meta\",\"meta\":%s,\"tracks\":%s}\n" (attrs_json meta)
       tracks_json);
  List.iter
    (fun e ->
      output_string oc
        (Printf.sprintf "{\"type\":\"%s\",\"ts\":%s,\"track\":%d,\"name\":\"%s\",\"attrs\":%s}\n"
           (phase e.kind) (json_float e.ts) e.track (json_escape e.name)
           (attrs_json e.attrs)))
    evs

(* Format dispatch on the extension: .jsonl is the event log, anything
   else the Chrome trace. *)
let export ~path () =
  if Filename.check_suffix path ".jsonl" then export_jsonl ~path ()
  else export_chrome ~path ()
