(** Regression differ for the repo's BENCH_*.json artifacts. Rows match
    by identity fields (name/mode/algorithm), numeric metrics flatten
    with dotted keys, and only wall ("*_s"), size (num_cubes,
    literal_cost, area, nbits) and complexity (model_order,
    fitted_exponent — the scaling bench's fitted classes) metrics can
    regress — everything else is reported as a note. A row missing from
    NEW counts as a regression, and so does a gateable metric vanishing
    from a row that is still present (e.g. a scaling cell whose fit
    degraded to inconclusive). *)

type artifact = {
  schema : string;
  rows : (string * (string * float) list) list;
}

type direction = Wall | Size | Complexity | Neutral

type delta = {
  row : string;
  metric : string;
  old_v : float;
  new_v : float;
  regression : bool;
}

type result = {
  deltas : delta list;
  missing : string list;
  vanished : (string * string) list;
      (** (row, metric) pairs present in OLD but absent from that row in
          NEW; the non-{!Neutral} ones count in {!num_regressions} *)
  added : string list;
  rows_compared : int;
  metrics_compared : int;
}

exception Schema_mismatch of string * string

val default_threshold : float
(** 0.25 — a wall or size metric regresses when it worsens by more than
    25%. *)

val exponent_tolerance : float
(** 0.25 — absolute drift of a [fitted_exponent] past this is a
    regression, independent of the relative threshold; [model_order]
    regresses on any increase. *)

val classify : string -> direction

val load : string -> artifact
(** @raise Json_min.Parse_error on malformed input, [Sys_error] on I/O. *)

val diff : ?threshold:float -> artifact -> artifact -> result
(** @raise Schema_mismatch when the two artifacts declare different schemas. *)

val num_regressions : result -> int

val report :
  ?threshold:float ->
  Format.formatter ->
  old_path:string ->
  new_path:string ->
  result ->
  int
(** Print the human-readable diff; returns [num_regressions]. *)
