(* Mechanical regression diff between two BENCH_*.json artifacts (any of
   the nova-bench-* schemas). Rows are matched by their identity fields
   (name / mode / algorithm), numeric fields are flattened (nested
   objects get dotted keys; the free-form "instrument" registries and
   nested arrays are skipped), and each metric is classified:

   - wall metrics (keys ending in "_s"): lower is better, compared
     relatively against the threshold, with a small absolute floor so
     microsecond jitter on tiny rows cannot fail CI;
   - size metrics (num_cubes, literal_cost, area, nbits): lower is
     better, compared relatively against the same threshold;
   - complexity metrics (model_order, fitted_exponent — the scaling
     bench's fitted classes): any class-rank increase regresses, and an
     exponent drift past an absolute tolerance regresses, independent of
     the relative threshold (a quadratic→cubic flip must fail CI even at
     a generous wall threshold);
   - everything else (states, rows, cache hit counts...): reported when
     changed, never a regression.

   A row present in OLD but missing from NEW is a regression (a bench
   silently dropped is exactly what the differ exists to catch), and so
   is a gateable metric present in OLD but vanished from the same row in
   NEW (a scaling cell degrading to an inconclusive fit, an OK row
   turning into an error row: both used to slip through the flattening
   silently). *)

type artifact = {
  schema : string;
  rows : (string * (string * float) list) list;  (** row key -> flattened metrics *)
}

type direction = Wall | Size | Complexity | Neutral

type delta = {
  row : string;
  metric : string;
  old_v : float;
  new_v : float;
  regression : bool;
}

type result = {
  deltas : delta list;  (** changed metrics only, artifact order *)
  missing : string list;  (** row keys present in OLD, absent from NEW *)
  vanished : (string * string) list;
      (** (row, metric) pairs present in OLD but absent from that row in
          NEW; the non-[Neutral] ones count as regressions *)
  added : string list;
  rows_compared : int;
  metrics_compared : int;
}

let size_metrics = [ "num_cubes"; "literal_cost"; "area"; "nbits" ]
let complexity_metrics = [ "model_order"; "fitted_exponent" ]

let metric_base metric =
  match String.rindex_opt metric '.' with
  | Some i -> String.sub metric (i + 1) (String.length metric - i - 1)
  | None -> metric

let classify metric =
  let base = metric_base metric in
  if Filename.check_suffix base "_s" then Wall
  else if List.mem base size_metrics then Size
  else if List.mem base complexity_metrics then Complexity
  else Neutral

(* --- loading ------------------------------------------------------------ *)

let identity_fields = [ "name"; "mode"; "algorithm" ]

let row_key j =
  let parts =
    List.filter_map
      (fun f -> Option.bind (Json_min.member f j) Json_min.to_string)
      identity_fields
  in
  match parts with [] -> "(row)" | parts -> String.concat "/" parts

let rec flatten prefix j acc =
  match j with
  | Json_min.Num f -> (prefix, f) :: acc
  | Json_min.Bool _ | Json_min.Str _ | Json_min.Null | Json_min.Arr _ -> acc
  | Json_min.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          if k = "instrument" then acc
          else flatten (if prefix = "" then k else prefix ^ "." ^ k) v acc)
        acc kvs

let flatten_row j = List.rev (flatten "" j [])

(* Duplicate row keys (the same machine benched under several modes that
   happen to share identity fields) get a positional suffix so no row is
   silently shadowed. *)
let disambiguate rows =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (key, metrics) ->
      let n = try Hashtbl.find seen key with Not_found -> 0 in
      Hashtbl.replace seen key (n + 1);
      ((if n = 0 then key else Printf.sprintf "%s#%d" key n), metrics))
    rows

let load path =
  let j = Json_min.of_file path in
  let schema =
    match Option.bind (Json_min.member "schema" j) Json_min.to_string with
    | Some s -> s
    | None -> "(no schema)"
  in
  let rows =
    match
      List.find_map
        (fun k -> Option.bind (Json_min.member k j) Json_min.to_list)
        [ "benchmarks"; "runs"; "rows" ]
    with
    | Some l -> List.map (fun r -> (row_key r, flatten_row r)) l
    | None ->
        (* Single-row artifacts (nova-bench-parallel): the top object is
           the row, minus the schema/mode envelope fields. *)
        [ ("totals", flatten_row j) ]
  in
  { schema; rows = disambiguate rows }

(* --- diffing ------------------------------------------------------------ *)

exception Schema_mismatch of string * string

let default_threshold = 0.25
let wall_floor_s = 0.005

(* Complexity metrics ignore the relative threshold: the fitted class
   rank regresses on any increase, and the continuous exponent on an
   absolute drift past this tolerance (2.0 → 2.3 is a real asymptotic
   change regardless of how lenient the wall threshold is). *)
let exponent_tolerance = 0.25

let diff ?(threshold = default_threshold) old_a new_a =
  if old_a.schema <> new_a.schema then raise (Schema_mismatch (old_a.schema, new_a.schema));
  let deltas = ref [] and missing = ref [] and vanished = ref [] and added = ref [] in
  let rows_compared = ref 0 and metrics_compared = ref 0 in
  List.iter
    (fun (key, old_metrics) ->
      match List.assoc_opt key new_a.rows with
      | None -> missing := key :: !missing
      | Some new_metrics ->
          incr rows_compared;
          List.iter
            (fun (metric, old_v) ->
              match List.assoc_opt metric new_metrics with
              | None -> vanished := (key, metric) :: !vanished
              | Some new_v ->
                  incr metrics_compared;
                  if new_v <> old_v then begin
                    let regression =
                      match classify metric with
                      | Wall ->
                          new_v -. old_v > wall_floor_s
                          && new_v > old_v *. (1. +. threshold)
                      | Size -> new_v > old_v *. (1. +. threshold)
                      | Complexity ->
                          if metric_base metric = "model_order" then new_v > old_v
                          else new_v -. old_v > exponent_tolerance
                      | Neutral -> false
                    in
                    deltas := { row = key; metric; old_v; new_v; regression } :: !deltas
                  end)
            old_metrics)
    old_a.rows;
  List.iter
    (fun (key, _) -> if not (List.mem_assoc key old_a.rows) then added := key :: !added)
    new_a.rows;
  {
    deltas = List.rev !deltas;
    missing = List.rev !missing;
    vanished = List.rev !vanished;
    added = List.rev !added;
    rows_compared = !rows_compared;
    metrics_compared = !metrics_compared;
  }

let vanished_regression (_, metric) = classify metric <> Neutral

let num_regressions r =
  List.length (List.filter (fun d -> d.regression) r.deltas)
  + List.length r.missing
  + List.length (List.filter vanished_regression r.vanished)

let pct old_v new_v =
  if old_v = 0. then if new_v = 0. then 0. else infinity
  else (new_v -. old_v) /. Float.abs old_v *. 100.

let print_value v =
  if Float.is_integer v && Float.abs v < 1e12 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let report ?(threshold = default_threshold) ppf ~old_path ~new_path r =
  Format.fprintf ppf "bench-diff %s -> %s (threshold %.0f%%)@." old_path new_path
    (threshold *. 100.);
  Format.fprintf ppf "  %d rows, %d metrics compared@." r.rows_compared r.metrics_compared;
  List.iter
    (fun d ->
      Format.fprintf ppf "  %s %-48s %-24s %12s -> %-12s %+7.1f%%@."
        (if d.regression then "REGRESSION" else
         match classify d.metric with
         | Neutral -> "note      "
         | Wall | Size | Complexity -> if d.new_v < d.old_v then "improved  " else "changed   ")
        d.row d.metric (print_value d.old_v) (print_value d.new_v) (pct d.old_v d.new_v))
    r.deltas;
  List.iter (fun k -> Format.fprintf ppf "  REGRESSION %-48s row missing from NEW@." k) r.missing;
  List.iter
    (fun ((row, metric) as v) ->
      Format.fprintf ppf "  %s %-48s %-24s metric vanished from NEW@."
        (if vanished_regression v then "REGRESSION" else "note      ")
        row metric)
    r.vanished;
  List.iter (fun k -> Format.fprintf ppf "  note       %-48s new row (not in OLD)@." k) r.added;
  let n = num_regressions r in
  if n = 0 then Format.fprintf ppf "  no regressions@."
  else Format.fprintf ppf "  %d regression%s@." n (if n = 1 then "" else "s");
  n
