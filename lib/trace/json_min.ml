(* A minimal dependency-free JSON reader for the repo's own artifacts:
   trace exports, BENCH_*.json files and Instrument.to_json output. It
   accepts standard JSON (RFC 8259) with two liberties taken on
   purpose — non-ASCII bytes inside strings pass through verbatim (the
   writers emit raw UTF-8), and numbers are always floats. Objects keep
   their key order. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { text : string; mutable pos : int }

let peek s = if s.pos < String.length s.text then Some s.text.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let rec skip_ws s =
  match peek s with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance s;
      skip_ws s
  | _ -> ()

let expect s c =
  match peek s with
  | Some c' when c' = c -> advance s
  | Some c' -> error "expected %C at offset %d, found %C" c s.pos c'
  | None -> error "expected %C at offset %d, found end of input" c s.pos

let literal s word v =
  if
    s.pos + String.length word <= String.length s.text
    && String.sub s.text s.pos (String.length word) = word
  then begin
    s.pos <- s.pos + String.length word;
    v
  end
  else error "invalid literal at offset %d" s.pos

(* UTF-8 encode one scalar value (for \uXXXX escapes; surrogate pairs
   are combined, a lone surrogate becomes U+FFFD). *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 s =
  if s.pos + 4 > String.length s.text then error "truncated \\u escape at offset %d" s.pos;
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = s.text.[s.pos] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> error "bad hex digit %C at offset %d" c s.pos
    in
    v := (!v * 16) + d;
    advance s
  done;
  !v

let parse_string s =
  expect s '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek s with
    | None -> error "unterminated string"
    | Some '"' -> advance s
    | Some '\\' ->
        advance s;
        (match peek s with
        | Some '"' -> Buffer.add_char b '"'; advance s
        | Some '\\' -> Buffer.add_char b '\\'; advance s
        | Some '/' -> Buffer.add_char b '/'; advance s
        | Some 'b' -> Buffer.add_char b '\b'; advance s
        | Some 'f' -> Buffer.add_char b '\012'; advance s
        | Some 'n' -> Buffer.add_char b '\n'; advance s
        | Some 'r' -> Buffer.add_char b '\r'; advance s
        | Some 't' -> Buffer.add_char b '\t'; advance s
        | Some 'u' ->
            advance s;
            let u = hex4 s in
            if u >= 0xd800 && u <= 0xdbff then begin
              (* High surrogate: consume the matching \uXXXX low half. *)
              if s.pos + 2 <= String.length s.text && s.text.[s.pos] = '\\'
                 && s.text.[s.pos + 1] = 'u'
              then begin
                s.pos <- s.pos + 2;
                let lo = hex4 s in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  add_utf8 b (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
                else add_utf8 b 0xfffd
              end
              else add_utf8 b 0xfffd
            end
            else if u >= 0xdc00 && u <= 0xdfff then add_utf8 b 0xfffd
            else add_utf8 b u
        | Some c -> error "bad escape \\%C at offset %d" c s.pos
        | None -> error "truncated escape");
        loop ()
    | Some c ->
        advance s;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number s =
  let start = s.pos in
  let numchar = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek s with Some c when numchar c -> true | _ -> false) do
    advance s
  done;
  let lit = String.sub s.text start (s.pos - start) in
  match float_of_string_opt lit with
  | Some f -> Num f
  | None -> error "bad number %S at offset %d" lit start

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> error "unexpected end of input"
  | Some '{' ->
      advance s;
      skip_ws s;
      if peek s = Some '}' then begin
        advance s;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws s;
          let k = parse_string s in
          skip_ws s;
          expect s ':';
          let v = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              members ((k, v) :: acc)
          | Some '}' ->
              advance s;
              Obj (List.rev ((k, v) :: acc))
          | _ -> error "expected ',' or '}' at offset %d" s.pos
        in
        members []
      end
  | Some '[' ->
      advance s;
      skip_ws s;
      if peek s = Some ']' then begin
        advance s;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              elements (v :: acc)
          | Some ']' ->
              advance s;
              Arr (List.rev (v :: acc))
          | _ -> error "expected ',' or ']' at offset %d" s.pos
        in
        elements []
      end
  | Some '"' -> Str (parse_string s)
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some _ -> parse_number s

let of_string text =
  let s = { text; pos = 0 } in
  let v = parse_value s in
  skip_ws s;
  if s.pos <> String.length text then error "trailing garbage at offset %d" s.pos;
  v

let of_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string text

(* --- emitter ------------------------------------------------------------ *)

(* Compact one-line rendering, the write half of the newline-delimited
   protocols built on this reader (lib/serve). Round-trip property:
   [of_string (render v)] re-reads any [v] whose numbers are finite —
   non-finite floats have no JSON spelling and render as [null]. *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let render_number f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let render v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> Buffer.add_string b (if Float.is_finite f then render_number f else "null")
    | Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | Arr l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          l;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            go x)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_list = function Arr l -> Some l | _ -> None
