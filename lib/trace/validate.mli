(** Well-formedness checks over exported traces (both formats), shared
    by scripts/validate_trace and the test suite: balanced Begin/End
    per track under stack discipline, per-track monotone timestamps,
    machine/algorithm attributes on every span, and a run manifest
    naming the code version. *)

type span_tree = {
  span_name : string;
  span_attrs : Trace.attrs;
  start_ts : float;
  end_ts : float;
  children : span_tree list;
}

type report = {
  errors : string list;
  num_events : int;
  num_spans : int;
  num_instants : int;
  num_tracks : int;
  roots : (int * span_tree list) list;
}

val ok : report -> bool

val decode_file : string -> Trace.event list * Trace.attrs
(** Decode either export format ([.jsonl] → event log, otherwise Chrome
    trace JSON) into the event stream and the run manifest.
    @raise Json_min.Parse_error on malformed input. *)

val check : ?require_meta:bool -> Trace.event list * Trace.attrs -> report

val check_file : ?require_meta:bool -> string -> report

val summary : report -> string
