(** Structured tracing: explicit Begin/End spans forming a per-run span
    tree, one track per domain, typed attributes with inheritance from
    the enclosing span, and lossless Chrome-trace / JSONL exporters.

    Default-off. While disabled every probe is a load and a branch and
    nothing is allocated; tracing never writes to stdout, so traced and
    untraced runs produce byte-identical standard output. *)

(** Typed attribute values carried by spans and instant events. *)
type value = String of string | Int of int | Float of float | Bool of bool

type attrs = (string * value) list

type kind = Begin | End | Instant

(** One buffered event. [ts] is microseconds since [enable], clamped to
    be non-decreasing within a track; [track] is the emitting domain's
    integer id. *)
type event = { kind : kind; name : string; ts : float; track : int; attrs : attrs }

val enable : unit -> unit
(** Start tracing: resets the clock origin and marks the calling
    domain's track as "main". Also switched on by NOVA_TRACE=1. *)

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all buffered events, track state and metadata. *)

val event_count : unit -> int

val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f] in a Begin/End pair on the calling
    domain's track. Exception-safe. The span inherits (and may override)
    the attributes of the enclosing span on the same track. *)

val with_span_result : ?attrs:attrs -> string -> (unit -> 'a * attrs) -> 'a
(** Like {!with_span}, but [f] also returns attributes to attach to the
    End event (result sizes, verdicts, budget spent). *)

val instant : ?attrs:attrs -> string -> unit
(** A point event (degradation, budget trip, cache hit, race win...),
    inheriting the open span's attributes. *)

val annotate : attrs -> unit
(** Add attributes to the innermost open span of the calling domain's
    track (they also flow to subsequently opened child spans). *)

val set_meta : attrs -> unit
(** Merge key/values into the run manifest ("trace-meta") embedded in
    every export: machine, options fingerprint, code version, jobs,
    totals. Later writes to the same key win. *)

val export_chrome : path:string -> unit -> unit
(** Write the buffer as Chrome trace-event JSON (Perfetto /
    chrome://tracing), atomically (tmp + rename). *)

val export_jsonl : path:string -> unit -> unit
(** Write the buffer as an append-only JSONL event log (first line is
    the run manifest), atomically (tmp + rename). *)

val export : path:string -> unit -> unit
(** Dispatch on extension: [.jsonl] → {!export_jsonl}, anything else →
    {!export_chrome}. *)

val json_escape : string -> string
(** Exposed for the exporter tests: escape a string for a JSON literal
    (quotes, backslashes, control characters; non-ASCII bytes pass
    through as UTF-8). *)
