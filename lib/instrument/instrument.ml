(* Operation counters, wall-clock phase timers and recursion-depth
   histograms for the hot two-level kernels.

   Everything is default-off: while [on] is false every probe is a load
   and a branch, so instrumented code costs nearly nothing in production
   runs. Enable with [enable ()] — or NOVA_INSTRUMENT=1 in the
   environment — then read the registries with [counters]/[timers]/
   [histograms], pretty-print with [report], or serialize with
   [to_json].

   Probes register themselves by name at module-initialization time;
   [find_or_create] keeps a name unique across libraries so the same
   logical counter can be bumped from several call sites.

   Domain safety: probes may fire concurrently from several domains (the
   [Exec] pool runs one encoding job per domain). Counter bumps are
   [Atomic] increments; timer and histogram mutation and every registry
   operation take [mutex]. The off path is untouched: a plain load of
   [on] and a branch, no lock. *)

let on =
  ref
    (match Sys.getenv_opt "NOVA_INSTRUMENT" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let enable () = on := true
let disable () = on := false
let enabled () = !on

(* One lock for the registries and all non-atomic probe state. Probes
   hold it for a few loads/stores at most, and never while running user
   code, so contention cannot deadlock. *)
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

type counter = { c_name : string; count : int Atomic.t }

(* [running] holds the ids of the domains currently inside [time] on
   this timer — the reentrancy debug assertion below keys on it. *)
type timer = {
  t_name : string;
  mutable seconds : float;
  mutable t_calls : int;
  mutable running : int list;
}

(* Depth histograms: bucket [i] counts observations of value [i];
   anything >= the bucket count lands in [overflow]. *)
type histogram = { h_name : string; h_buckets : int array; mutable overflow : int }

(* Registries are hash tables keyed by name, so [find_or_create] is
   O(1) however many probes exist; every read-out sorts by name, which
   keeps [report]/[to_json] deterministic regardless of registration
   (hashing) order. *)
let all_counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let all_timers : (string, timer) Hashtbl.t = Hashtbl.create 64
let all_histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let find_or_create registry ~name ~make =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some x -> x
  | None ->
      let x = make () in
      Hashtbl.add registry name x;
      x

let counter name =
  find_or_create all_counters ~name ~make:(fun () -> { c_name = name; count = Atomic.make 0 })

let bump c = if !on then Atomic.incr c.count
let add c n = if !on then ignore (Atomic.fetch_and_add c.count n)

let timer name =
  find_or_create all_timers ~name
    ~make:(fun () -> { t_name = name; seconds = 0.; t_calls = 0; running = [] })

(* [time t f] accounts the wall-clock time of [f ()] to [t]. Safe under
   exceptions. Nested use of the *same* timer on one domain would
   double-count its span, so timers must only be attached to
   non-reentrant entry points — enforced here by a debug assertion on
   the instrumented path (the off path stays a load and a branch).
   Concurrent use from several domains is fine and accumulates the
   domains' spans (total busy time, not wall-clock). *)
let time t f =
  if not !on then f ()
  else begin
    let d = (Domain.self () :> int) in
    locked (fun () ->
        if List.mem d t.running then
          invalid_arg
            (Printf.sprintf
               "Instrument.time: timer %S re-entered on the same domain (nested use \
                double-counts; attach timers to non-reentrant entry points only)"
               t.t_name);
        t.running <- d :: t.running);
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Unix.gettimeofday () -. t0 in
        locked (fun () ->
            t.running <- List.filter (fun x -> x <> d) t.running;
            t.seconds <- t.seconds +. dt;
            t.t_calls <- t.t_calls + 1))
      f
  end

let default_buckets = 32

let histogram ?(buckets = default_buckets) name =
  find_or_create all_histograms ~name
    ~make:(fun () -> { h_name = name; h_buckets = Array.make buckets 0; overflow = 0 })

let observe h v =
  if !on then
    locked @@ fun () ->
    if v >= 0 && v < Array.length h.h_buckets then
      h.h_buckets.(v) <- h.h_buckets.(v) + 1
    else h.overflow <- h.overflow + 1

let reset () =
  locked @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.count 0) all_counters;
  Hashtbl.iter
    (fun _ t ->
      t.seconds <- 0.;
      t.t_calls <- 0)
    all_timers;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 (Array.length h.h_buckets) 0;
      h.overflow <- 0)
    all_histograms

(* Names are unique per registry, so sorting the tuples sorts by name. *)
let counters () =
  locked (fun () ->
      Hashtbl.fold (fun _ c acc -> (c.c_name, Atomic.get c.count) :: acc) all_counters [])
  |> List.sort compare

let timers () =
  locked (fun () ->
      Hashtbl.fold (fun _ t acc -> (t.t_name, t.seconds, t.t_calls) :: acc) all_timers [])
  |> List.sort compare

let histograms () =
  locked (fun () ->
      Hashtbl.fold
        (fun _ h acc -> (h.h_name, Array.copy h.h_buckets, h.overflow) :: acc)
        all_histograms [])
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* Highest non-empty bucket, so reports and JSON stay short. *)
let trimmed_buckets buckets =
  let hi = ref (-1) in
  Array.iteri (fun i n -> if n > 0 then hi := i) buckets;
  Array.sub buckets 0 (!hi + 1)

let report ppf () =
  Format.fprintf ppf "@[<v>== instrumentation ==@,";
  List.iter
    (fun (name, n) -> if n > 0 then Format.fprintf ppf "%-40s %12d@," name n)
    (counters ());
  List.iter
    (fun (name, s, calls) ->
      if calls > 0 then Format.fprintf ppf "%-40s %10.4fs over %d calls@," name s calls)
    (timers ());
  List.iter
    (fun (name, buckets, overflow) ->
      let trimmed = trimmed_buckets buckets in
      if Array.length trimmed > 0 || overflow > 0 then begin
        Format.fprintf ppf "%-40s [" name;
        Array.iteri
          (fun i n -> Format.fprintf ppf "%s%d" (if i > 0 then " " else "") n)
          trimmed;
        Format.fprintf ppf "]%s@,"
          (if overflow > 0 then Printf.sprintf " +%d deeper" overflow else "")
      end)
    (histograms ());
  Format.fprintf ppf "@]"

(* --- JSON serialization (no external deps) ----------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  (* %.6f keeps timings readable; %g would turn tiny values into exponents. *)
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6f" f

let buf_kv_seq buf ~first kv =
  if not !first then Buffer.add_char buf ',';
  first := false;
  Buffer.add_string buf kv

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  let first = ref true in
  List.iter
    (fun (name, n) ->
      buf_kv_seq buf ~first (Printf.sprintf "\"%s\":%d" (json_escape name) n))
    (counters ());
  Buffer.add_string buf "},\"timers\":{";
  let first = ref true in
  List.iter
    (fun (name, s, calls) ->
      buf_kv_seq buf ~first
        (Printf.sprintf "\"%s\":{\"seconds\":%s,\"calls\":%d}" (json_escape name)
           (json_float s) calls))
    (timers ());
  Buffer.add_string buf "},\"histograms\":{";
  let first = ref true in
  List.iter
    (fun (name, buckets, overflow) ->
      let trimmed = trimmed_buckets buckets in
      let cells =
        String.concat "," (Array.to_list (Array.map string_of_int trimmed))
      in
      buf_kv_seq buf ~first
        (Printf.sprintf "\"%s\":{\"buckets\":[%s],\"overflow\":%d}" (json_escape name)
           cells overflow))
    (histograms ());
  Buffer.add_string buf "}}";
  Buffer.contents buf
