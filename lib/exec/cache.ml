let c_hit = Instrument.counter "exec.cache.hits"
let c_miss = Instrument.counter "exec.cache.misses"
let c_store = Instrument.counter "exec.cache.stores"
let c_rejected = Instrument.counter "exec.cache.rejected"
let t_certify = Instrument.timer "exec.cache.recertify"

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  rejected : int Atomic.t;
}

type stats = { hits : int; misses : int; stores : int; rejected : int }

let open_dir dir =
  (if Sys.file_exists dir then begin
     if not (Sys.is_directory dir) then
       raise (Sys_error (Printf.sprintf "cache path %s is not a directory" dir))
   end
   else Unix.mkdir dir 0o755);
  { dir; hits = Atomic.make 0; misses = Atomic.make 0; stores = Atomic.make 0;
    rejected = Atomic.make 0 }

let dir c = c.dir

let stats (c : t) : stats =
  { hits = Atomic.get c.hits; misses = Atomic.get c.misses; stores = Atomic.get c.stores;
    rejected = Atomic.get c.rejected }

let entry_path c (task : Job.task) = Filename.concat c.dir (Job.key task ^ ".nova-cache")

(* Trace instants for the cache lifecycle (hit/miss/reject/store), each
   carrying the task identity so a lane full of cache events still reads
   on its own. *)
let ev name (task : Job.task) =
  if Trace.enabled () then
    Trace.instant ("cache." ^ name)
      ~attrs:
        [ ("machine", Trace.String task.Job.machine.Fsm.name);
          ("algorithm", Trace.String (Harness.Driver.name task.Job.algorithm)) ]

(* Re-certification of an entry read from (or headed to) disk, as a span
   with the verdict on the End event. *)
let recertify (task : Job.task) s =
  let run () =
    Instrument.time t_certify (fun () -> Check.certify task.Job.machine (Job.artifacts_of s))
  in
  if not (Trace.enabled ()) then run ()
  else
    Trace.with_span_result "cache.recertify"
      ~attrs:
        [ ("machine", Trace.String task.Job.machine.Fsm.name);
          ("algorithm", Trace.String (Harness.Driver.name task.Job.algorithm)) ]
      (fun () ->
        let cert = run () in
        (cert, [ ("ok", Trace.Bool cert.Check.ok) ]))

(* --- serialization ------------------------------------------------------ *)

(* Line-oriented text; every cube and claimed face is a 0/1 bitvec
   string. The format carries no checksum on purpose: integrity is
   established semantically, by re-certification against the machine. *)

let magic = "nova-cache/v1"

let render (task : Job.task) (s : Job.success) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  line "algorithm %s" (Harness.Driver.name task.Job.algorithm);
  line "machine %s" task.Job.machine.Fsm.name;
  line "nbits %d" s.Job.encoding.Encoding.nbits;
  line "codes %s"
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.Job.encoding.Encoding.codes)));
  line "produced_by %s" (Harness.Driver.rung_name s.Job.produced_by);
  line "degraded %s" (String.concat " " (List.map Harness.Driver.rung_name s.Job.degraded));
  line "ics %d" (List.length s.Job.claims.Check.claimed_ics);
  List.iter (fun ic -> line "%s" (Bitvec.to_string ic)) s.Job.claims.Check.claimed_ics;
  line "ocs %d" (List.length s.Job.claims.Check.claimed_ocs);
  List.iter (fun (u, v) -> line "%d %d" u v) s.Job.claims.Check.claimed_ocs;
  line "cubes %d" (List.length s.Job.cover.Logic.Cover.cubes);
  List.iter (fun c -> line "%s" (Bitvec.to_string c)) s.Job.cover.Logic.Cover.cubes;
  line "end";
  Buffer.contents b

exception Malformed

let parse_entry (task : Job.task) text =
  let lines = ref (String.split_on_char '\n' text) in
  let next () =
    match !lines with
    | [] -> raise Malformed
    | l :: rest ->
        lines := rest;
        l
  in
  let field name =
    let l = next () in
    let p = name ^ " " in
    if String.length l >= String.length p && String.sub l 0 (String.length p) = p then
      String.sub l (String.length p) (String.length l - String.length p)
    else if l = name then ""
    else raise Malformed
  in
  if next () <> magic then raise Malformed;
  if field "algorithm" <> Harness.Driver.name task.Job.algorithm then raise Malformed;
  ignore (field "machine");
  let nbits = int_of_string (field "nbits") in
  let codes =
    field "codes" |> String.split_on_char ' ' |> List.filter (( <> ) "")
    |> List.map int_of_string |> Array.of_list
  in
  let produced_by =
    match Harness.Driver.rung_of_name (field "produced_by") with
    | Some r -> r
    | None -> raise Malformed
  in
  let degraded =
    field "degraded" |> String.split_on_char ' ' |> List.filter (( <> ) "")
    |> List.map (fun n ->
           match Harness.Driver.rung_of_name n with Some r -> r | None -> raise Malformed)
  in
  let counted name parse =
    let k = int_of_string (field name) in
    if k < 0 || k > 1_000_000 then raise Malformed;
    List.init k (fun _ -> parse (next ()))
  in
  let num_states = Array.length task.Job.machine.Fsm.states in
  let claimed_ics =
    counted "ics" (fun l ->
        let v = Bitvec.of_string l in
        if Bitvec.length v <> num_states then raise Malformed;
        v)
  in
  let claimed_ocs =
    counted "ocs" (fun l -> Scanf.sscanf l "%d %d" (fun u v -> (u, v)))
  in
  (* The encoding must validate (distinct codes, declared width) before
     we can rebuild the PLA domain the cubes live in. *)
  let encoding = Encoding.make ~nbits codes in
  let built = Encoded.build task.Job.machine encoding in
  let width = Logic.Domain.width built.Encoded.dom in
  let cubes =
    counted "cubes" (fun l ->
        let v = Bitvec.of_string l in
        if Bitvec.length v <> width then raise Malformed;
        v)
  in
  if next () <> "end" then raise Malformed;
  let cover = Logic.Cover.make built.Encoded.dom cubes in
  let num_cubes = Logic.Cover.size cover in
  {
    Job.encoding;
    produced_by;
    degraded;
    claims = { Check.claimed_ics; claimed_ocs };
    cover;
    num_cubes;
    area = Encoded.area ~machine:task.Job.machine ~encoding ~num_cubes;
  }

(* --- lookup / store ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let reject (c : t) path =
  Atomic.incr c.rejected;
  Instrument.bump c_rejected;
  (try Sys.remove path with Sys_error _ -> ())

let find (c : t) (task : Job.task) =
  let path = entry_path c task in
  if not (Sys.file_exists path) then begin
    Atomic.incr c.misses;
    Instrument.bump c_miss;
    ev "miss" task;
    None
  end
  else
    let parsed = try Some (parse_entry task (read_file path)) with _ -> None in
    match parsed with
    | None ->
        (* Corrupt on disk: drop the entry and recompute. *)
        reject c path;
        ev "reject" task;
        Atomic.incr c.misses;
        Instrument.bump c_miss;
        None
    | Some s ->
        (* Never trust storage: the independent checker re-establishes
           the full contract against the machine before the entry is
           served. *)
        let cert = recertify task s in
        if cert.Check.ok then begin
          Atomic.incr c.hits;
          Instrument.bump c_hit;
          ev "hit" task;
          Some s
        end
        else begin
          reject c path;
          ev "reject" task;
          Atomic.incr c.misses;
          Instrument.bump c_miss;
          None
        end

let store_certified (c : t) (task : Job.task) (s : Job.success) =
  let path = entry_path c task in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (render task s));
    Sys.rename tmp path
  with
  | () ->
      Atomic.incr c.stores;
      Instrument.bump c_store;
      ev "store" task
  | exception _ -> ( try Sys.remove tmp with Sys_error _ -> ())

(* The cache only ever holds certified results: a success the
   independent checker rejects (a producer bug, not a storage fault) is
   recomputed every run rather than laundered through the cache — so a
   warm-run rejection always means the entry changed on disk. *)
let store (c : t) (task : Job.task) (s : Job.success) =
  let cert = recertify task s in
  if cert.Check.ok then store_certified c task s else ev "reject" task
