let c_hit = Instrument.counter "exec.cache.hits"
let c_miss = Instrument.counter "exec.cache.misses"
let c_store = Instrument.counter "exec.cache.stores"
let c_rejected = Instrument.counter "exec.cache.rejected"
let c_io_faults = Instrument.counter "exec.cache.io_faults"
let t_certify = Instrument.timer "exec.cache.recertify"

(* Production metrics mirror the Instrument counters (which are a
   default-off debug fabric): one labeled family for the lifecycle
   events, one for I/O faults, gauges for the latest fsck findings. *)
let m_event event =
  Metrics.Registry.counter ~help:"Cache lifecycle events by kind."
    ~labels:[ ("event", event) ] "nova_cache_events_total"

let m_hit = m_event "hit"
let m_miss = m_event "miss"
let m_store = m_event "store"
let m_reject = m_event "reject"
let m_io_faults = Metrics.Registry.counter ~help:"Cache I/O faults." "nova_cache_io_faults_total"

let m_fsck name help =
  Metrics.Registry.gauge ~help ("nova_cache_fsck_" ^ name)

let m_fsck_scanned = m_fsck "scanned" "Entries scanned by the latest fsck."
let m_fsck_valid = m_fsck "valid" "Entries found valid by the latest fsck."
let m_fsck_removed = m_fsck "removed" "Corrupt entries removed by the latest fsck."
let m_fsck_tmp_removed = m_fsck "tmp_removed" "Leftover temp files removed by the latest fsck."

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  rejected : int Atomic.t;
}

type stats = { hits : int; misses : int; stores : int; rejected : int }

let open_dir dir =
  (if Sys.file_exists dir then begin
     if not (Sys.is_directory dir) then
       raise (Sys_error (Printf.sprintf "cache path %s is not a directory" dir))
   end
   else Unix.mkdir dir 0o755);
  { dir; hits = Atomic.make 0; misses = Atomic.make 0; stores = Atomic.make 0;
    rejected = Atomic.make 0 }

let dir c = c.dir

let stats (c : t) : stats =
  { hits = Atomic.get c.hits; misses = Atomic.get c.misses; stores = Atomic.get c.stores;
    rejected = Atomic.get c.rejected }

let entry_suffix = ".nova-cache"
let entry_path c (task : Job.task) = Filename.concat c.dir (Job.key task ^ entry_suffix)

(* Trace instants for the cache lifecycle (hit/miss/reject/store), each
   carrying the task identity so a lane full of cache events still reads
   on its own. *)
let ev name (task : Job.task) =
  if Trace.enabled () then
    Trace.instant ("cache." ^ name)
      ~attrs:
        [ ("machine", Trace.String task.Job.machine.Fsm.name);
          ("algorithm", Trace.String (Harness.Driver.name task.Job.algorithm)) ]

(* Re-certification of an entry read from (or headed to) disk, as a span
   with the verdict on the End event. The [Recertify] chaos site models
   a crash inside the checker (or the entry being swapped out from
   under it by a concurrent process mid-check). *)
let recertify (task : Job.task) s =
  let run () =
    Chaos.maybe_raise Chaos.Recertify;
    Instrument.time t_certify (fun () -> Check.certify task.Job.machine (Job.artifacts_of s))
  in
  if not (Trace.enabled ()) then run ()
  else
    Trace.with_span_result "cache.recertify"
      ~attrs:
        [ ("machine", Trace.String task.Job.machine.Fsm.name);
          ("algorithm", Trace.String (Harness.Driver.name task.Job.algorithm)) ]
      (fun () ->
        let cert = run () in
        (cert, [ ("ok", Trace.Bool cert.Check.ok) ]))

(* --- per-entry advisory file locks -------------------------------------- *)

(* Concurrent *processes* sharing a cache directory coordinate through
   a per-entry lock file ([<key>.nova-cache.lock]): writers and fsck
   take it exclusively, readers take it shared, so a reader never
   observes a write mid-flight and fsck never deletes an entry someone
   is mid-read on. The lock is advisory and best-effort: on any lock
   failure (exotic filesystems, permissions) the operation proceeds
   unlocked — atomic tmp+rename plus the checksum still make torn data
   detectable, the lock just removes the recompute cost of the race. *)

let lock_path path = path ^ ".lock"

let with_entry_lock ?(shared = false) path f =
  let locked_fd =
    try
      let fd = Unix.openfile (lock_path path) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
      (try Unix.lockf fd (if shared then Unix.F_RLOCK else Unix.F_LOCK) 0
       with Unix.Unix_error _ -> ());
      Some fd
    with Unix.Unix_error _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      match locked_fd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ())
    f

(* --- serialization ------------------------------------------------------ *)

(* Line-oriented text; every cube and claimed face is a 0/1 bitvec
   string. Integrity is layered: the checksum line (MD5 of everything
   after it) catches torn or truncated bytes structurally — before any
   parsing — and re-certification against the machine establishes
   semantic integrity on every read. *)

let magic = "nova-cache/v2"

let render_payload (task : Job.task) (s : Job.success) =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  line "algorithm %s" (Harness.Driver.name task.Job.algorithm);
  line "machine %s" task.Job.machine.Fsm.name;
  line "nbits %d" s.Job.encoding.Encoding.nbits;
  line "codes %s"
    (String.concat " "
       (Array.to_list (Array.map string_of_int s.Job.encoding.Encoding.codes)));
  line "produced_by %s" (Harness.Driver.rung_name s.Job.produced_by);
  line "degraded %s" (String.concat " " (List.map Harness.Driver.rung_name s.Job.degraded));
  line "ics %d" (List.length s.Job.claims.Check.claimed_ics);
  List.iter (fun ic -> line "%s" (Bitvec.to_string ic)) s.Job.claims.Check.claimed_ics;
  line "ocs %d" (List.length s.Job.claims.Check.claimed_ocs);
  List.iter (fun (u, v) -> line "%d %d" u v) s.Job.claims.Check.claimed_ocs;
  line "cubes %d" (List.length s.Job.cover.Logic.Cover.cubes);
  List.iter (fun c -> line "%s" (Bitvec.to_string c)) s.Job.cover.Logic.Cover.cubes;
  line "end";
  Buffer.contents b

let render (task : Job.task) (s : Job.success) =
  let payload = render_payload task s in
  Printf.sprintf "%s\nchecksum %s\n%s" magic (Digest.to_hex (Digest.string payload)) payload

exception Malformed

(* Split off the "<magic>\nchecksum <hex>\n" header, verify the hex
   against the raw remaining bytes, and return the payload. This is
   the torn-write detector: any truncation or mid-file corruption
   changes the digest. *)
let verify_checksum text =
  let nl1 = match String.index_opt text '\n' with Some i -> i | None -> raise Malformed in
  if String.sub text 0 nl1 <> magic then raise Malformed;
  let nl2 =
    match String.index_from_opt text (nl1 + 1) '\n' with Some i -> i | None -> raise Malformed
  in
  let checksum_line = String.sub text (nl1 + 1) (nl2 - nl1 - 1) in
  let prefix = "checksum " in
  if
    String.length checksum_line < String.length prefix
    || String.sub checksum_line 0 (String.length prefix) <> prefix
  then raise Malformed;
  let claimed = String.sub checksum_line (String.length prefix)
      (String.length checksum_line - String.length prefix)
  in
  let payload = String.sub text (nl2 + 1) (String.length text - nl2 - 1) in
  if Digest.to_hex (Digest.string payload) <> claimed then raise Malformed;
  payload

let parse_entry (task : Job.task) text =
  let payload = verify_checksum text in
  let lines = ref (String.split_on_char '\n' payload) in
  let next () =
    match !lines with
    | [] -> raise Malformed
    | l :: rest ->
        lines := rest;
        l
  in
  let field name =
    let l = next () in
    let p = name ^ " " in
    if String.length l >= String.length p && String.sub l 0 (String.length p) = p then
      String.sub l (String.length p) (String.length l - String.length p)
    else if l = name then ""
    else raise Malformed
  in
  if field "algorithm" <> Harness.Driver.name task.Job.algorithm then raise Malformed;
  ignore (field "machine");
  let nbits = int_of_string (field "nbits") in
  let codes =
    field "codes" |> String.split_on_char ' ' |> List.filter (( <> ) "")
    |> List.map int_of_string |> Array.of_list
  in
  let produced_by =
    match Harness.Driver.rung_of_name (field "produced_by") with
    | Some r -> r
    | None -> raise Malformed
  in
  let degraded =
    field "degraded" |> String.split_on_char ' ' |> List.filter (( <> ) "")
    |> List.map (fun n ->
           match Harness.Driver.rung_of_name n with Some r -> r | None -> raise Malformed)
  in
  let counted name parse =
    let k = int_of_string (field name) in
    if k < 0 || k > 1_000_000 then raise Malformed;
    List.init k (fun _ -> parse (next ()))
  in
  let num_states = Array.length task.Job.machine.Fsm.states in
  let claimed_ics =
    counted "ics" (fun l ->
        let v = Bitvec.of_string l in
        if Bitvec.length v <> num_states then raise Malformed;
        v)
  in
  let claimed_ocs =
    counted "ocs" (fun l -> Scanf.sscanf l "%d %d" (fun u v -> (u, v)))
  in
  (* The encoding must validate (distinct codes, declared width) before
     we can rebuild the PLA domain the cubes live in. *)
  let encoding = Encoding.make ~nbits codes in
  let built = Encoded.build task.Job.machine encoding in
  let width = Logic.Domain.width built.Encoded.dom in
  let cubes =
    counted "cubes" (fun l ->
        let v = Bitvec.of_string l in
        if Bitvec.length v <> width then raise Malformed;
        v)
  in
  if next () <> "end" then raise Malformed;
  let cover = Logic.Cover.make built.Encoded.dom cubes in
  let num_cubes = Logic.Cover.size cover in
  {
    Job.encoding;
    produced_by;
    degraded;
    claims = { Check.claimed_ics; claimed_ocs };
    cover;
    num_cubes;
    area = Encoded.area ~machine:task.Job.machine ~encoding ~num_cubes;
  }

(* --- lookup / store ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let reject (c : t) path =
  Atomic.incr c.rejected;
  Instrument.bump c_rejected;
  Metrics.Registry.inc m_reject;
  (try Sys.remove path with Sys_error _ -> ())

let miss (c : t) task =
  Atomic.incr c.misses;
  Instrument.bump c_miss;
  Metrics.Registry.inc m_miss;
  ev "miss" task;
  None

(* Every failure mode on the read path — ENOENT racing a concurrent
   reject, EIO, a torn write that survived the rename, an injected
   fault, a recertification crash — converges on the same recovery:
   drop the entry and recompute. A broken cache costs time, never
   correctness and never the run. *)
let find (c : t) (task : Job.task) =
  let path = entry_path c task in
  if not (Sys.file_exists path) then miss c task
  else
    let read () =
      with_entry_lock ~shared:true path (fun () ->
          Chaos.maybe_raise Chaos.Cache_read;
          read_file path)
    in
    match Supervise.protect ~what:("cache read " ^ Filename.basename path) read with
    | Error _ ->
        Instrument.bump c_io_faults;
        Metrics.Registry.inc m_io_faults;
        reject c path;
        ev "reject" task;
        miss c task
    | Ok text -> (
        match parse_entry task text with
        | exception _ ->
            (* Corrupt on disk: drop the entry and recompute. *)
            reject c path;
            ev "reject" task;
            miss c task
        | s -> (
            (* Never trust storage: the independent checker re-establishes
               the full contract against the machine before the entry is
               served. A checker that crashes mid-flight proves nothing,
               so its entry is dropped too. *)
            match Supervise.protect ~what:"recertify" (fun () -> recertify task s) with
            | Error _ ->
                Instrument.bump c_io_faults;
                Metrics.Registry.inc m_io_faults;
                reject c path;
                ev "reject" task;
                miss c task
            | Ok cert ->
                if cert.Check.ok then begin
                  Atomic.incr c.hits;
                  Instrument.bump c_hit;
                  Metrics.Registry.inc m_hit;
                  ev "hit" task;
                  Some s
                end
                else begin
                  reject c path;
                  ev "reject" task;
                  miss c task
                end))

(* One write attempt: tmp file + atomic rename under the exclusive
   entry lock. Any failure (ENOSPC, EIO, injected fault) cleans the
   tmp file up and reports the error. *)
let write_once path text =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  match
    with_entry_lock path (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            Chaos.maybe_raise Chaos.Cache_write;
            output_string oc text);
        Sys.rename tmp path)
  with
  | () -> true
  | exception e
    when not (match e with Out_of_memory | Stack_overflow | Sys.Break -> true | _ -> false) ->
      Instrument.bump c_io_faults;
      Metrics.Registry.inc m_io_faults;
      (try Sys.remove tmp with Sys_error _ -> ());
      false

let store_certified (c : t) (task : Job.task) (s : Job.success) =
  let path = entry_path c task in
  let text = render task s in
  (* Write faults are transient (taxonomy: cache I/O retries): one
     retry, then give up silently — the cache is an accelerator, never
     a correctness dependency. *)
  if write_once path text || write_once path text then begin
    Atomic.incr c.stores;
    Instrument.bump c_store;
    Metrics.Registry.inc m_store;
    ev "store" task
  end

(* The cache only ever holds certified results: a success the
   independent checker rejects (a producer bug, not a storage fault) is
   recomputed every run rather than laundered through the cache — so a
   warm-run rejection always means the entry changed on disk. A
   recertification crash proves nothing, so it skips the store too. *)
let store (c : t) (task : Job.task) (s : Job.success) =
  match Supervise.protect ~what:"recertify" (fun () -> recertify task s) with
  | Ok cert when cert.Check.ok -> store_certified c task s
  | Ok _ -> ev "reject" task
  | Error _ ->
      Instrument.bump c_io_faults;
      Metrics.Registry.inc m_io_faults;
      ev "reject" task

(* --- fsck ---------------------------------------------------------------- *)

(* Structural integrity sweep over a cache directory, without task
   context (fsck cannot re-certify — it has no machines — but the
   checksum pins every byte of the payload, and certification still
   happens on every read). Removes: entries whose magic or checksum do
   not verify (torn writes, truncation, tampering), leftover [.tmp.*]
   files from writers that died mid-store, and orphaned lock files
   whose entry is gone. *)

type fsck_report = { scanned : int; valid : int; removed : int; tmp_removed : int }

(* The shutdown half of fsck, scoped to what *this process* may have
   leaked: its own writer temp files (named [...tmp.<pid>.<domain>]) and
   lock files whose entry is gone. A daemon interrupted mid-store calls
   this on the way out so the shared cache directory never needs a
   manual [nova cache fsck] after a SIGINT — and because the sweep only
   matches this pid's temp names, it can never disturb a concurrent
   server writing through the same directory. Advisory locks themselves
   die with the process's fds; only their empty lock files linger. *)
let sweep_own_tmp (c : t) =
  let own_tmp_marker = Printf.sprintf "%s.tmp.%d." entry_suffix (Unix.getpid ()) in
  let files = try Sys.readdir c.dir with Sys_error _ -> [||] in
  let removed = ref 0 in
  Array.iter
    (fun name ->
      let path = Filename.concat c.dir name in
      let is_own_tmp =
        let n = String.length own_tmp_marker in
        let rec at i =
          i + n <= String.length name && (String.sub name i n = own_tmp_marker || at (i + 1))
        in
        at 0
      in
      let is_orphan_lock =
        (let suffix = entry_suffix ^ ".lock" in
         String.length name >= String.length suffix
         && String.sub name
              (String.length name - String.length suffix)
              (String.length suffix)
            = suffix)
        && not (Sys.file_exists (Filename.concat c.dir (Filename.chop_suffix name ".lock")))
      in
      if is_own_tmp || is_orphan_lock then
        try
          Sys.remove path;
          if is_own_tmp then incr removed
        with Sys_error _ -> ())
    files;
  !removed

let entry_structurally_valid text =
  match verify_checksum text with
  | payload ->
      (* The payload must terminate properly: render always ends with
         "end\n". *)
      String.length payload >= 4 && String.sub payload (String.length payload - 4) 4 = "end\n"
  | exception _ -> false

let has_suffix suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let contains_substring sub s =
  let n = String.length sub in
  let rec at i = i + n <= String.length s && (String.sub s i n = sub || at (i + 1)) in
  at 0

let fsck (c : t) =
  let files = try Sys.readdir c.dir with Sys_error _ -> [||] in
  Array.sort compare files;
  let scanned = ref 0 and valid = ref 0 and removed = ref 0 and tmp_removed = ref 0 in
  let remove path = try Sys.remove path; true with Sys_error _ -> false in
  Array.iter
    (fun name ->
      let path = Filename.concat c.dir name in
      if has_suffix entry_suffix name then begin
        incr scanned;
        let ok =
          match
            with_entry_lock path (fun () -> read_file path)
          with
          | text -> entry_structurally_valid text
          | exception _ -> false
        in
        if ok then incr valid
        else begin
          if Trace.enabled () then
            Trace.instant "cache.fsck_remove" ~attrs:[ ("entry", Trace.String name) ];
          if remove path then incr removed
        end
      end
      else if contains_substring (entry_suffix ^ ".tmp.") name then begin
        (* writer temp files: <key>.nova-cache.tmp.<pid>.<domain> *)
        if remove path then incr tmp_removed
      end
      else if has_suffix (entry_suffix ^ ".lock") name then begin
        (* Orphaned lock: its entry is gone and nobody holds it. *)
        let entry = Filename.concat c.dir (Filename.chop_suffix name ".lock") in
        if not (Sys.file_exists entry) then ignore (remove path)
      end)
    files;
  (* Count every structural removal as a rejection: fsck is the offline
     flavor of the read path's reject-and-recompute. *)
  for _ = 1 to !removed do
    Atomic.incr c.rejected;
    Instrument.bump c_rejected;
    Metrics.Registry.inc m_reject
  done;
  (* Gauges carry the latest sweep's findings (not cumulative): a scrape
     after fsck reads the state of the directory as last verified. *)
  Metrics.Registry.set_gauge m_fsck_scanned (float_of_int !scanned);
  Metrics.Registry.set_gauge m_fsck_valid (float_of_int !valid);
  Metrics.Registry.set_gauge m_fsck_removed (float_of_int !removed);
  Metrics.Registry.set_gauge m_fsck_tmp_removed (float_of_int !tmp_removed);
  { scanned = !scanned; valid = !valid; removed = !removed; tmp_removed = !tmp_removed }
