type task = {
  machine : Fsm.t;
  algorithm : Harness.Driver.algorithm;
  bits : int option;
  max_work : int option;
  fallback : bool;
}

let task ?bits ?max_work ?(fallback = true) machine algorithm =
  { machine; algorithm; bits; max_work; fallback }

type success = {
  encoding : Encoding.t;
  produced_by : Harness.Driver.rung;
  degraded : Harness.Driver.rung list;
  claims : Check.claims;
  cover : Logic.Cover.t;
  num_cubes : int;
  area : int;
}

type origin = Computed | Cached | Cancelled_by_race

type row = {
  task : task;
  result : (success, Nova_error.t) result;
  origin : origin;
  wall_s : float;
}

(* Bump on any behavioral change to the encoders, the minimizer or the
   cache entry layout: every existing entry then misses (stale results
   can never resurface under a new code version). *)
let code_version = "nova-exec/2"

let fingerprint t =
  Printf.sprintf "bits=%s;max_work=%s;fallback=%b"
    (match t.bits with Some b -> string_of_int b | None -> "-")
    (match t.max_work with Some w -> string_of_int w | None -> "-")
    t.fallback

(* The machine participates as its canonical KISS2 text, so two roads to
   the same machine (file vs built-in suite entry) share cache entries,
   and any semantic change to the machine changes the address. *)
let key t =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ code_version; Harness.Driver.name t.algorithm; fingerprint t;
            Kiss.to_string t.machine ]))

let run ?budget t =
  let budget =
    match budget with
    | Some b -> b
    | None -> ( match t.max_work with
        | Some w -> Budget.create ~max_work:w ()
        | None -> Budget.unlimited)
  in
  match
    Harness.Driver.report ?bits:t.bits ~budget ~fallback:t.fallback t.machine t.algorithm
  with
  | Error e -> Error e
  | Ok (o, r) ->
      Ok
        {
          encoding = o.Harness.Driver.encoding;
          produced_by = o.Harness.Driver.produced_by;
          degraded = List.map fst o.Harness.Driver.degradations;
          claims = o.Harness.Driver.claims;
          cover = r.Encoded.cover;
          num_cubes = r.Encoded.num_cubes;
          area = r.Encoded.area;
        }

let success_equal (a : success) (b : success) =
  a.encoding.Encoding.nbits = b.encoding.Encoding.nbits
  && a.encoding.Encoding.codes = b.encoding.Encoding.codes
  && a.produced_by = b.produced_by && a.degraded = b.degraded
  && a.num_cubes = b.num_cubes && a.area = b.area
  && List.equal Bitvec.equal a.cover.Logic.Cover.cubes b.cover.Logic.Cover.cubes
  && List.equal Bitvec.equal a.claims.Check.claimed_ics b.claims.Check.claimed_ics
  && a.claims.Check.claimed_ocs = b.claims.Check.claimed_ocs

let artifacts_of s =
  {
    Check.nbits = s.encoding.Encoding.nbits;
    codes = Array.copy s.encoding.Encoding.codes;
    cover = s.cover;
    claims = s.claims;
  }
