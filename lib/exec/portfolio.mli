(** The parallel portfolio executor.

    NOVA's experimental method runs every machine through several
    encoding programs and keeps the best PLA. {!run} executes such a
    task list on a {!Pool} of domains with deterministic results;
    {!race} runs one machine's portfolio competitively, cancelling
    losers through the {!Budget} cancellation tree.

    {b Determinism}: for a fixed task list, [run ~jobs:n] returns rows
    bit-identical to [run ~jobs:1] for every [n] — results are reduced
    in task order, tasks share no mutable state, and cache hits are
    certified results of the very computation they replace. {!race} is
    deterministic too (see below), so racing output is also independent
    of [jobs].

    {b Supervision}: every compute step runs under {!Supervise.run} —
    a crash inside an encoder retries with seeded backoff per the
    [policy] (default {!Supervise.default_policy}), exhausted retries
    settle the row as [Error (Job_crashed _)], and an algorithm that
    exhausts its retries twice on the same machine is quarantined
    (skipped with a typed row, [attempts = 0]) for the rest of the
    process. A crash that escapes the supervisor and kills a pool
    worker (e.g. an injected [Chaos.Pool_worker] fault) is isolated to
    its slot by {!Pool.mapi_isolated} and the job restarts once,
    supervised, on the calling domain. No failure mode raises out of
    [run] or [race] short of [Out_of_memory]/[Stack_overflow]/
    [Sys.Break].

    {b Sequential fallback}: when {!Pool.available_jobs} recommends no
    parallelism (a single-core container), [jobs] is forced to 1 —
    spawning domains there is measurable pure overhead. Rows are
    bit-identical either way. *)

(** [effective_jobs ~available ~requested] is the domain count actually
    used: [requested], or [1] when [available <= 1] (pure-overhead
    pool). Exposed for tests and the bench harness. *)
val effective_jobs : available:int -> requested:int -> int

(** [run ?jobs ?cache ?policy tasks] executes every task and returns one
    row per task, in task order. [jobs] defaults to 1. With [cache],
    each task first consults the content-addressed store (entries
    re-certify before being trusted) and stores its freshly computed
    result. [policy] governs crash retry/backoff (default
    {!Supervise.default_policy}; pass {!Supervise.off} to fail fast). *)
val run :
  ?jobs:int -> ?cache:Cache.t -> ?policy:Supervise.policy ->
  Job.task list -> Job.row list

(** [run_task ?policy ?cache ?budget task] is the supervised single-job
    path {!run} applies to each task — cache lookup, else compute under
    {!Supervise.run} and store — exposed for callers that schedule jobs
    themselves (the [lib/serve] daemon). [budget] is an {e external}
    admission budget (a serving layer's per-request deadline/work
    ceiling). It wraps — never replaces — the task's own [max_work]
    cap: the task cap becomes a {!Budget.sub} child so it trips at
    exactly the one-shot point (it is part of the cache fingerprint),
    while the external ceiling rides above it. A result produced under
    a {e tripped external} budget is returned but {b never cached}:
    its degradation came from something outside the content address.
    A trip of the task's intrinsic cap stores as usual. With [budget]
    absent this is bit-identical to a 1-task {!run}. *)
val run_task :
  ?policy:Supervise.policy -> ?cache:Cache.t -> ?budget:Budget.t ->
  Job.task -> Job.row

(** [race ?jobs ?cache ?policy tasks] races the tasks (one machine's
    portfolio rungs) against each other and returns the rows (task
    order: losers keep their cancelled/partial status) plus the index
    of the winner, or [None] if no task produced a usable result.

    The winner is deterministic regardless of completion order:

    - {e acceptable} means the task succeeded with its primary rung (no
      fallback degradation);
    - the winner is the {b lowest-indexed acceptable} task — so order
      the portfolio by preference;
    - once some task [k] completes acceptably, every task after [k] is
      cancelled ({!Budget.cancel}) or never started: its result cannot
      affect the outcome, because a lower index wins regardless. Tasks
      before [k] always run to completion — one of them may still beat
      [k];
    - if no task is acceptable, nothing was ever cancelled, every
      result is available, and the winner is the best (smallest) PLA
      area, ties to the lowest index.

    With [jobs = 1] the same protocol runs sequentially: tasks after
    the first acceptable one are simply never started. Either way the
    winning row is bit-identical.

    Cancelled losers are never written to the cache (their budgets
    tripped); the winner always ran uncancelled, so its cached entry
    equals the sequential result.

    A racer that crashes (supervision exhausted, or quarantined)
    settles as [Error (Job_crashed _)] — never acceptable, so the race
    falls through to the next-preferred rung exactly as a degraded
    result would. *)
val race :
  ?jobs:int -> ?cache:Cache.t -> ?policy:Supervise.policy ->
  Job.task list -> Job.row list * int option

(** [default_algorithms] is the racing/reporting portfolio, preference
    first: iexact (capped), iohybrid, ihybrid, igreedy, then the kiss /
    mustang-nt / one-hot baselines. *)
val default_algorithms : Harness.Driver.algorithm list

(** [iexact_max_work] is the deterministic work cap applied to iexact
    portfolio members (the paper itself gives up on the big machines). *)
val iexact_max_work : int

(** [tasks_for m] is [m]'s full portfolio as tasks in
    {!default_algorithms} order. *)
val tasks_for : Fsm.t -> Job.task list
