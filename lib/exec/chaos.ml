(* Seeded deterministic fault injection for the execution layer.

   A chaos schedule names, per injection site, how many faults to fire.
   For a site configured with [count], the harness picks [count]
   distinct invocation indices out of the site's first [2 * count]
   invocations (the window), chosen by the seeded RNG — so a schedule
   is (a) deterministic given (spec, seed), (b) seed-sensitive (which
   early invocations fault moves with the seed), and (c) exhaustible:
   past the window the site never fires again, which is what lets a
   retrying supervisor provably absorb any schedule whose crash counts
   stay below its attempt budget.

   Invocation counters are atomics, so sites may be crossed from any
   domain; which invocation a given task observes is scheduling-
   dependent, but the supervised executor's recovery makes the final
   results independent of that (see test/test_chaos.ml). *)

type site = Rung | Cache_read | Cache_write | Recertify | Pool_worker | Serve

exception Injected of { site : site; index : int }

let site_name = function
  | Rung -> "rung"
  | Cache_read -> "cache-read"
  | Cache_write -> "cache-write"
  | Recertify -> "recertify"
  | Pool_worker -> "pool"
  | Serve -> "serve"

let all_sites = [ Rung; Cache_read; Cache_write; Recertify; Pool_worker; Serve ]
let site_of_name s = List.find_opt (fun x -> site_name x = s) all_sites
let site_code = function
  | Rung -> 1
  | Cache_read -> 2
  | Cache_write -> 3
  | Recertify -> 4
  | Pool_worker -> 5
  | Serve -> 6

(* Per-site plan: the invocation counter plus the sorted fire indices
   drawn from the window. Installed atomically as a whole (plans are
   immutable after [configure]); only the counters mutate afterwards. *)
type plan = { counter : int Atomic.t; fires : int array }

type config = { seed : int; plans : (site * plan) list }

let state : config option Atomic.t = Atomic.make None

let enabled () = Atomic.get state <> None
let disable () = Atomic.set state None

let c_injected = Instrument.counter "exec.chaos.injected"

(* [count] distinct indices out of [0 .. 2*count - 1], by a seeded
   partial Fisher-Yates. Sorted so tests can reason about the plan. *)
let pick_fires ~seed ~site count =
  let window = 2 * count in
  let rng = Random.State.make [| 0x5eed; seed; site_code site |] in
  let idx = Array.init window (fun i -> i) in
  for i = 0 to count - 1 do
    let j = i + Random.State.int rng (window - i) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  let fires = Array.sub idx 0 count in
  Array.sort compare fires;
  fires

(* --- the spec language --------------------------------------------------- *)

(* SPEC := item ("," item)*   item := SITE ":" COUNT
   e.g. "rung:1,cache-read:2". COUNT faults fire among the site's first
   2*COUNT invocations. *)
let parse_spec spec =
  let items = String.split_on_char ',' spec |> List.filter (( <> ) "") in
  if items = [] then Error "empty chaos spec"
  else
    List.fold_left
      (fun acc item ->
        match acc with
        | Error _ -> acc
        | Ok sites -> (
            match String.index_opt item ':' with
            | None ->
                Error
                  (Printf.sprintf "chaos item %S: expected SITE:COUNT (sites: %s)" item
                     (String.concat ", " (List.map site_name all_sites)))
            | Some i -> (
                let name = String.sub item 0 i in
                let count = String.sub item (i + 1) (String.length item - i - 1) in
                match (site_of_name name, int_of_string_opt count) with
                | None, _ ->
                    Error
                      (Printf.sprintf "chaos item %S: unknown site %S (sites: %s)" item name
                         (String.concat ", " (List.map site_name all_sites)))
                | _, None ->
                    Error (Printf.sprintf "chaos item %S: COUNT must be a positive integer" item)
                | _, Some n when n <= 0 ->
                    Error (Printf.sprintf "chaos item %S: COUNT must be a positive integer" item)
                | Some site, Some n ->
                    if List.mem_assoc site sites then
                      Error (Printf.sprintf "chaos item %S: site %s appears twice" item name)
                    else Ok ((site, n) :: sites))))
      (Ok []) items
    |> Result.map List.rev

let configure ?(seed = 0) spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok sites ->
      let plans =
        List.filter_map
          (fun (site, count) ->
            if count = 0 then None
            else
              Some (site, { counter = Atomic.make 0; fires = pick_fires ~seed ~site count }))
          sites
      in
      Atomic.set state (Some { seed; plans });
      Ok ()

(* Tests re-run the same schedule (jobs=1 vs jobs=N): [rewind] resets
   every invocation counter while keeping the plan, so the second run
   sees the identical fault schedule. *)
let rewind () =
  match Atomic.get state with
  | None -> ()
  | Some { plans; _ } -> List.iter (fun (_, p) -> Atomic.set p.counter 0) plans

(* The invocation index this call drew if the schedule says it faults. *)
let fire_index site =
  match Atomic.get state with
  | None -> None
  | Some { plans; _ } -> (
      match List.assoc_opt site plans with
      | None -> None
      | Some p ->
          let i = Atomic.fetch_and_add p.counter 1 in
          (* The fires array is tiny (the schedule's count); linear scan. *)
          if Array.exists (( = ) i) p.fires then begin
            Instrument.bump c_injected;
            Metrics.Registry.inc
              (Metrics.Registry.counter ~help:"Injected chaos faults by site."
                 ~labels:[ ("site", site_name site) ]
                 "nova_chaos_injected_total");
            if Trace.enabled () then
              Trace.instant "chaos.inject"
                ~attrs:[ ("site", Trace.String (site_name site)); ("index", Trace.Int i) ];
            Some i
          end
          else None)

let should_fire site = fire_index site <> None

let maybe_raise site =
  match fire_index site with None -> () | Some index -> raise (Injected { site; index })

let () =
  Printexc.register_printer (function
    | Injected { site; index } ->
        Some (Printf.sprintf "Chaos.Injected(site=%s, invocation=%d)" (site_name site) index)
    | _ -> None)
