(* At most one computation per key; followers block and share the
   leader's result. See the interface for the contract.

   One mutex guards the table and every entry's state; it is never held
   while a leader runs user code, so distinct keys compute concurrently
   and the lock is only ever held for a few loads and stores. Followers
   wait on the entry's condition; the leader settles the entry, removes
   it from the table (the key is immediately free for a fresh
   computation) and broadcasts. Followers still hold a reference to the
   settled entry, so removal cannot strand them. *)

type 'a outcome = Pending | Done of 'a | Crashed of exn

type 'a entry = { mutable outcome : 'a outcome; cond : Condition.t }

type 'a t = { mutex : Mutex.t; table : (string, 'a entry) Hashtbl.t }

let m_followers =
  Metrics.Registry.counter ~help:"Calls coalesced onto another in-flight computation."
    "nova_inflight_followers_total"

let create () = { mutex = Mutex.create (); table = Hashtbl.create 32 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let inflight t = locked t (fun () -> Hashtbl.length t.table)

let run t ~key f =
  let role =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some entry -> `Follow entry
        | None ->
            let entry = { outcome = Pending; cond = Condition.create () } in
            Hashtbl.add t.table key entry;
            `Lead entry)
  in
  match role with
  | `Follow entry ->
      Metrics.Registry.inc m_followers;
      (* Wait for the leader to settle the entry. The predicate re-check
         guards against spurious wakeups; the entry is settled exactly
         once, so a woken follower always finds a final outcome. *)
      let outcome =
        locked t (fun () ->
            while entry.outcome = Pending do
              Condition.wait entry.cond t.mutex
            done;
            entry.outcome)
      in
      (match outcome with
      | Done v -> (v, `Coalesced)
      | Crashed e -> raise e
      | Pending -> assert false)
  | `Lead entry ->
      let settle outcome =
        locked t (fun () ->
            entry.outcome <- outcome;
            Hashtbl.remove t.table key;
            Condition.broadcast entry.cond)
      in
      (match f () with
      | v ->
          settle (Done v);
          (v, `Leader)
      | exception e ->
          (* Any exception — fatal ones included — settles the entry
             first (followers must not hang), then propagates. *)
          settle (Crashed e);
          raise e)
