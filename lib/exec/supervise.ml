(* The supervision layer: converts runtime failures in the execution
   layer into typed, traced, recoverable events.

   Three mechanisms, composed by Portfolio and Cache:

   - [retry]: runs a job thunk under a policy of seeded jittered
     exponential backoff. Only *crashes* (exceptions) are retried —
     typed [Nova_error.t] results are deterministic verdicts and pass
     straight through (Nova_error.is_transient). Asynchronous/fatal
     exceptions (Out_of_memory, Stack_overflow, user interrupt) are
     never swallowed: the supervisor re-raises them immediately.

   - quarantine: a per-process registry of (machine, algorithm) pairs
     whose jobs crashed through their whole attempt budget. After
     [quarantine_threshold] such exhausted cycles the pair is skipped
     outright (a `driver.quarantine` trace instant, a typed
     [Job_crashed] with attempts = 0) so the portfolio's fallback
     ladder continues without burning attempts on a known-bad rung.

   - warnings: one stderr line per retry / give-up / quarantine skip,
     with attempt counts and the reason, suppressed by [quiet] (the
     CLI's --quiet). *)

let c_retries = Instrument.counter "exec.supervise.retries"
let c_crashes = Instrument.counter "exec.supervise.crashes"
let c_quarantined = Instrument.counter "exec.supervise.quarantine_skips"

type policy = {
  max_attempts : int;
  base_backoff_ms : float;
  multiplier : float;
  jitter : float;
  seed : int;
}

let default_policy =
  { max_attempts = 3; base_backoff_ms = 1.0; multiplier = 2.0; jitter = 0.5; seed = 0 }

(* One attempt, no backoff: the unsupervised reference path the bench
   overhead measurement compares against. *)
let off = { default_policy with max_attempts = 1; base_backoff_ms = 0.0 }

let quiet = ref false

let warn fmt =
  Printf.ksprintf (fun line -> if not !quiet then prerr_endline ("nova: warning: " ^ line)) fmt

(* Backoff for the [attempt]-th failure (1-based): exponential in the
   attempt with a deterministic jitter drawn from (policy seed, job
   key, attempt) — seeded, so a replayed run backs off identically. *)
let backoff_ms policy ~key ~attempt =
  if policy.base_backoff_ms <= 0.0 then 0.0
  else
    let base = policy.base_backoff_ms *. (policy.multiplier ** float_of_int (attempt - 1)) in
    let rng = Random.State.make [| 0xbac0ff; policy.seed; Hashtbl.hash key; attempt |] in
    let spread = policy.jitter *. base in
    base -. spread +. (2.0 *. spread *. Random.State.float rng 1.0)

let sleep_ms ms = if ms > 0.0 then Unix.sleepf (ms /. 1000.0)

(* Fatal exceptions must cross the supervisor untouched: retrying an
   OOM burns the machine, swallowing a ^C loses the user's intent. *)
let is_fatal = function
  | Out_of_memory | Stack_overflow | Sys.Break -> true
  | _ -> false

let describe_exn e bt =
  let head =
    match String.index_opt bt '\n' with Some i -> String.sub bt 0 i | None -> bt
  in
  if head = "" then Printexc.to_string e else Printexc.to_string e ^ " [" ^ head ^ "]"

(* --- quarantine registry ------------------------------------------------- *)

let quarantine_threshold = 2

(* (machine, algorithm) -> exhausted crash cycles, last detail. The
   registry is per-process state shared by every portfolio run (that is
   the point: the second run of a known-crashing rung is the one that
   gets skipped), guarded by a mutex for cross-domain use. *)
let quarantine_lock = Mutex.create ()
let quarantine_table : (string * string, int * string) Hashtbl.t = Hashtbl.create 16

let reset_quarantine () =
  Mutex.protect quarantine_lock (fun () -> Hashtbl.reset quarantine_table)

let record_crash_cycle ~machine ~algorithm detail =
  Mutex.protect quarantine_lock (fun () ->
      let key = (machine, algorithm) in
      let n = match Hashtbl.find_opt quarantine_table key with Some (n, _) -> n | None -> 0 in
      Hashtbl.replace quarantine_table key (n + 1, detail);
      n + 1)

let quarantined ~machine ~algorithm =
  Mutex.protect quarantine_lock (fun () ->
      match Hashtbl.find_opt quarantine_table (machine, algorithm) with
      | Some (n, detail) when n >= quarantine_threshold -> Some (n, detail)
      | _ -> None)

(* --- the supervised runner ----------------------------------------------- *)

let job_name ~machine ~algorithm = Printf.sprintf "%s on %s" algorithm machine

let retry_instant ~machine ~algorithm ~attempt ~backoff detail =
  if Trace.enabled () then
    Trace.instant "supervise.retry"
      ~attrs:
        [
          ("machine", Trace.String machine);
          ("algorithm", Trace.String algorithm);
          ("attempt", Trace.Int attempt);
          ("backoff_ms", Trace.Float backoff);
          ("error", Trace.String detail);
        ]

let quarantine_instant ~machine ~algorithm ~crashes detail =
  if Trace.enabled () then
    Trace.instant "driver.quarantine"
      ~attrs:
        [
          ("machine", Trace.String machine);
          ("algorithm", Trace.String algorithm);
          ("crashes", Trace.Int crashes);
          ("error", Trace.String detail);
        ]

(* [run policy ~machine ~algorithm f] is [f ()] under supervision:
   typed results pass through; a crash is retried with backoff up to
   [policy.max_attempts] total attempts, then recorded as an exhausted
   cycle and returned as [Job_crashed]. A pair past the quarantine
   threshold is skipped without running [f] at all. *)
let run policy ~machine ~algorithm f =
  match quarantined ~machine ~algorithm with
  | Some (crashes, detail) ->
      Instrument.bump c_quarantined;
      quarantine_instant ~machine ~algorithm ~crashes detail;
      warn "%s quarantined after %d crashed runs (%s); skipping"
        (job_name ~machine ~algorithm) crashes detail;
      Error
        (Nova_error.Job_crashed
           {
             job = job_name ~machine ~algorithm;
             attempts = 0;
             detail = Printf.sprintf "quarantined after %d crashed runs: %s" crashes detail;
           })
  | None ->
      let rec attempt_from n =
        match f () with
        | result -> result
        | exception e when not (is_fatal e) ->
            let detail = describe_exn e (Printexc.get_backtrace ()) in
            Instrument.bump c_crashes;
            if n < policy.max_attempts then begin
              let backoff = backoff_ms policy ~key:(machine ^ "/" ^ algorithm) ~attempt:n in
              Instrument.bump c_retries;
              retry_instant ~machine ~algorithm ~attempt:n ~backoff detail;
              warn "%s crashed (attempt %d/%d): %s; retrying in %.1fms"
                (job_name ~machine ~algorithm) n policy.max_attempts detail backoff;
              sleep_ms backoff;
              attempt_from (n + 1)
            end
            else begin
              let cycles = record_crash_cycle ~machine ~algorithm detail in
              warn "%s crashed %d/%d attempts, giving up (crashed runs: %d): %s"
                (job_name ~machine ~algorithm) n policy.max_attempts cycles detail;
              Error
                (Nova_error.Job_crashed
                   { job = job_name ~machine ~algorithm; attempts = n; detail })
            end
      in
      attempt_from 1

(* [protect ~what f] is the one-shot flavor for infrastructure code
   (cache I/O): run [f], turn any non-fatal crash into [Error detail].
   No retries — callers like the cache have a cheaper recovery
   (recompute) than re-driving the fault. *)
let protect ~what f =
  match f () with
  | v -> Ok v
  | exception e when not (is_fatal e) ->
      let detail = describe_exn e (Printexc.get_backtrace ()) in
      Instrument.bump c_crashes;
      Error (Printf.sprintf "%s: %s" what detail)
