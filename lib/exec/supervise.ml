(* The supervision layer: converts runtime failures in the execution
   layer into typed, traced, recoverable events.

   Three mechanisms, composed by Portfolio and Cache:

   - [retry]: runs a job thunk under a policy of seeded jittered
     exponential backoff. Only *crashes* (exceptions) are retried —
     typed [Nova_error.t] results are deterministic verdicts and pass
     straight through (Nova_error.is_transient). Asynchronous/fatal
     exceptions (Out_of_memory, Stack_overflow, user interrupt) are
     never swallowed: the supervisor re-raises them immediately.

   - quarantine: a per-process registry of (machine, algorithm) pairs
     whose jobs crashed through their whole attempt budget. After
     [quarantine_threshold] such exhausted cycles the pair is skipped
     outright (a `driver.quarantine` trace instant, a typed
     [Job_crashed] with attempts = 0) so the portfolio's fallback
     ladder continues without burning attempts on a known-bad rung.

   - warnings: one stderr line per retry / give-up / quarantine skip,
     with attempt counts and the reason, suppressed by [quiet] (the
     CLI's --quiet). *)

let c_retries = Instrument.counter "exec.supervise.retries"
let c_crashes = Instrument.counter "exec.supervise.crashes"
let c_quarantined = Instrument.counter "exec.supervise.quarantine_skips"

(* Production metrics: crash counts labeled by the site that crashed
   ("job" for supervised runs, the first word of [protect]'s ~what for
   infrastructure — "cache", "recertify" — keeping label cardinality
   bounded), retry/skip totals, the backoff latency distribution, and
   the quarantine occupancy gauge. *)
let m_retries = Metrics.Registry.counter ~help:"Supervised retries." "nova_supervise_retries_total"

let m_crashes site =
  Metrics.Registry.counter ~help:"Non-fatal crashes caught by the supervisor, by site."
    ~labels:[ ("site", site) ] "nova_supervise_crashes_total"

let m_skips =
  Metrics.Registry.counter ~help:"Jobs skipped because their (machine, algorithm) is quarantined."
    "nova_quarantine_skips_total"

let m_backoff =
  Metrics.Registry.histogram ~help:"Retry backoff sleeps in seconds."
    "nova_supervise_backoff_seconds"

let m_occupancy =
  Metrics.Registry.gauge ~help:"(machine, algorithm) pairs currently past the quarantine threshold."
    "nova_quarantine_occupancy"

let crash_site_of_what what =
  match String.index_opt what ' ' with Some i -> String.sub what 0 i | None -> what

type policy = {
  max_attempts : int;
  base_backoff_ms : float;
  multiplier : float;
  jitter : float;
  seed : int;
}

let default_policy =
  { max_attempts = 3; base_backoff_ms = 1.0; multiplier = 2.0; jitter = 0.5; seed = 0 }

(* One attempt, no backoff: the unsupervised reference path the bench
   overhead measurement compares against. *)
let off = { default_policy with max_attempts = 1; base_backoff_ms = 0.0 }

let quiet = ref false

let warn fmt =
  Printf.ksprintf (fun line -> if not !quiet then prerr_endline ("nova: warning: " ^ line)) fmt

(* Backoff for the [attempt]-th failure (1-based): exponential in the
   attempt with a deterministic jitter drawn from (policy seed, job
   key, attempt) — seeded, so a replayed run backs off identically. *)
let backoff_ms policy ~key ~attempt =
  if policy.base_backoff_ms <= 0.0 then 0.0
  else
    let base = policy.base_backoff_ms *. (policy.multiplier ** float_of_int (attempt - 1)) in
    let rng = Random.State.make [| 0xbac0ff; policy.seed; Hashtbl.hash key; attempt |] in
    let spread = policy.jitter *. base in
    base -. spread +. (2.0 *. spread *. Random.State.float rng 1.0)

let sleep_ms ms = if ms > 0.0 then Unix.sleepf (ms /. 1000.0)

(* Fatal exceptions must cross the supervisor untouched: retrying an
   OOM burns the machine, swallowing a ^C loses the user's intent. *)
let is_fatal = function
  | Out_of_memory | Stack_overflow | Sys.Break -> true
  | _ -> false

let describe_exn e bt =
  let head =
    match String.index_opt bt '\n' with Some i -> String.sub bt 0 i | None -> bt
  in
  if head = "" then Printexc.to_string e else Printexc.to_string e ^ " [" ^ head ^ "]"

(* --- quarantine registry ------------------------------------------------- *)

let quarantine_threshold = 2

(* (machine, algorithm) -> exhausted crash cycles, skip count, last
   detail. The registry is per-process state shared by every portfolio
   run (that is the point: the second run of a known-crashing rung is
   the one that gets skipped), guarded by a mutex for cross-domain
   use. *)
type qentry = { cycles : int; skips : int; detail : string }

let quarantine_lock = Mutex.create ()
let quarantine_table : (string * string, qentry) Hashtbl.t = Hashtbl.create 16

let occupancy_locked () =
  Hashtbl.fold
    (fun _ e n -> if e.cycles >= quarantine_threshold then n + 1 else n)
    quarantine_table 0

let reset_quarantine () =
  Mutex.protect quarantine_lock (fun () ->
      Hashtbl.reset quarantine_table;
      Metrics.Registry.set_gauge m_occupancy 0.)

let record_crash_cycle ~machine ~algorithm detail =
  Mutex.protect quarantine_lock (fun () ->
      let key = (machine, algorithm) in
      let prev =
        match Hashtbl.find_opt quarantine_table key with
        | Some e -> e
        | None -> { cycles = 0; skips = 0; detail = "" }
      in
      Hashtbl.replace quarantine_table key { prev with cycles = prev.cycles + 1; detail };
      Metrics.Registry.set_gauge m_occupancy (float_of_int (occupancy_locked ()));
      prev.cycles + 1)

let record_skip ~machine ~algorithm =
  Mutex.protect quarantine_lock (fun () ->
      let key = (machine, algorithm) in
      match Hashtbl.find_opt quarantine_table key with
      | Some e -> Hashtbl.replace quarantine_table key { e with skips = e.skips + 1 }
      | None -> ())

let quarantined ~machine ~algorithm =
  Mutex.protect quarantine_lock (fun () ->
      match Hashtbl.find_opt quarantine_table (machine, algorithm) with
      | Some e when e.cycles >= quarantine_threshold -> Some (e.cycles, e.detail)
      | _ -> None)

type quarantine_entry = {
  q_machine : string;
  q_algorithm : string;
  q_cycles : int;
  q_skips : int;
  q_detail : string;
}

(* Every pair with recorded crash cycles, quarantined or not, sorted
   for stable rendering in stats/metrics readouts. *)
let quarantine_snapshot () =
  Mutex.protect quarantine_lock (fun () ->
      Hashtbl.fold
        (fun (machine, algorithm) e acc ->
          { q_machine = machine; q_algorithm = algorithm; q_cycles = e.cycles;
            q_skips = e.skips; q_detail = e.detail }
          :: acc)
        quarantine_table []
      |> List.sort (fun a b ->
             compare (a.q_machine, a.q_algorithm) (b.q_machine, b.q_algorithm)))

(* --- the supervised runner ----------------------------------------------- *)

let job_name ~machine ~algorithm = Printf.sprintf "%s on %s" algorithm machine

let retry_instant ~machine ~algorithm ~attempt ~backoff detail =
  if Trace.enabled () then
    Trace.instant "supervise.retry"
      ~attrs:
        [
          ("machine", Trace.String machine);
          ("algorithm", Trace.String algorithm);
          ("attempt", Trace.Int attempt);
          ("backoff_ms", Trace.Float backoff);
          ("error", Trace.String detail);
        ]

let quarantine_instant ~machine ~algorithm ~crashes detail =
  if Trace.enabled () then
    Trace.instant "driver.quarantine"
      ~attrs:
        [
          ("machine", Trace.String machine);
          ("algorithm", Trace.String algorithm);
          ("crashes", Trace.Int crashes);
          ("error", Trace.String detail);
        ]

(* [run policy ~machine ~algorithm f] is [f ()] under supervision:
   typed results pass through; a crash is retried with backoff up to
   [policy.max_attempts] total attempts, then recorded as an exhausted
   cycle and returned as [Job_crashed]. A pair past the quarantine
   threshold is skipped without running [f] at all. *)
let run policy ~machine ~algorithm f =
  match quarantined ~machine ~algorithm with
  | Some (crashes, detail) ->
      Instrument.bump c_quarantined;
      Metrics.Registry.inc m_skips;
      record_skip ~machine ~algorithm;
      quarantine_instant ~machine ~algorithm ~crashes detail;
      warn "%s quarantined after %d crashed runs (%s); skipping"
        (job_name ~machine ~algorithm) crashes detail;
      Error
        (Nova_error.Job_crashed
           {
             job = job_name ~machine ~algorithm;
             attempts = 0;
             detail = Printf.sprintf "quarantined after %d crashed runs: %s" crashes detail;
           })
  | None ->
      let rec attempt_from n =
        match f () with
        | result -> result
        | exception e when not (is_fatal e) ->
            let detail = describe_exn e (Printexc.get_backtrace ()) in
            Instrument.bump c_crashes;
            Metrics.Registry.inc (m_crashes "job");
            if n < policy.max_attempts then begin
              let backoff = backoff_ms policy ~key:(machine ^ "/" ^ algorithm) ~attempt:n in
              Instrument.bump c_retries;
              Metrics.Registry.inc m_retries;
              Metrics.Registry.observe m_backoff (backoff /. 1000.);
              retry_instant ~machine ~algorithm ~attempt:n ~backoff detail;
              warn "%s crashed (attempt %d/%d): %s; retrying in %.1fms"
                (job_name ~machine ~algorithm) n policy.max_attempts detail backoff;
              sleep_ms backoff;
              attempt_from (n + 1)
            end
            else begin
              let cycles = record_crash_cycle ~machine ~algorithm detail in
              warn "%s crashed %d/%d attempts, giving up (crashed runs: %d): %s"
                (job_name ~machine ~algorithm) n policy.max_attempts cycles detail;
              Error
                (Nova_error.Job_crashed
                   { job = job_name ~machine ~algorithm; attempts = n; detail })
            end
      in
      attempt_from 1

(* [protect ~what f] is the one-shot flavor for infrastructure code
   (cache I/O): run [f], turn any non-fatal crash into [Error detail].
   No retries — callers like the cache have a cheaper recovery
   (recompute) than re-driving the fault. *)
let protect ~what f =
  match f () with
  | v -> Ok v
  | exception e when not (is_fatal e) ->
      let detail = describe_exn e (Printexc.get_backtrace ()) in
      Instrument.bump c_crashes;
      Metrics.Registry.inc (m_crashes (crash_site_of_what what));
      Error (Printf.sprintf "%s: %s" what detail)
