(** Seeded deterministic fault injection for the execution layer.

    Default-off; while disabled every probe is one atomic load. A chaos
    {e schedule} is parsed from a spec string ([SITE:COUNT] items,
    comma-separated, e.g. ["rung:1,cache-read:2"]) plus a seed: for each
    site, [COUNT] faults fire among the site's first [2 * COUNT]
    invocations, the subset chosen by the seeded RNG. Schedules are

    - {b deterministic}: the same (spec, seed) always faults the same
      invocation indices;
    - {b seed-sensitive}: moving the seed moves which early invocations
      fault;
    - {b exhaustible}: past the window a site never fires again, so a
      retrying supervisor provably absorbs any schedule whose
      crash-site counts stay below its attempt budget.

    Injection sites and the faults they raise ({!Injected}):

    - [Rung] — the job/rung boundary in the portfolio executor (an
      encoding algorithm crashing);
    - [Cache_read] / [Cache_write] / [Recertify] — I/O and
      recertification faults inside {!Cache.find} / {!Cache.store};
    - [Pool_worker] — a domain dying inside the {!Pool} worker loop;
    - [Serve] — the request handling path of the [lib/serve] daemon
      (between a parsed request and its response), so seeded schedules
      can fault the accept/respond path: the server must answer with a
      typed error, never crash or hang the connection.

    Invocation counters are atomics (cross-domain sound); which
    invocation a particular task observes is scheduling-dependent, and
    the supervised executor's recovery must make final results
    independent of that — the invariant test/test_chaos.ml proves. *)

type site = Rung | Cache_read | Cache_write | Recertify | Pool_worker | Serve

(** The injected fault: [index] is the site's invocation that drew it. *)
exception Injected of { site : site; index : int }

val site_name : site -> string
val site_of_name : string -> site option
val all_sites : site list

(** [parse_spec s] parses a schedule spec without installing it. *)
val parse_spec : string -> ((site * int) list, string) result

(** [configure ?seed spec] parses [spec] and installs the schedule with
    fresh invocation counters. [seed] defaults to 0. *)
val configure : ?seed:int -> string -> (unit, string) result

(** [rewind ()] resets every invocation counter of the installed
    schedule (the plan itself is kept), so a re-run observes the
    identical fault schedule — how the jobs=1 vs jobs=N matrix replays
    one schedule twice. *)
val rewind : unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [should_fire site] draws the site's next invocation index and
    reports whether the schedule faults it (bumping the
    [exec.chaos.injected] counter and emitting a [chaos.inject] trace
    instant when it does). *)
val should_fire : site -> bool

(** [maybe_raise site] is {!should_fire} except it raises {!Injected}. *)
val maybe_raise : site -> unit
