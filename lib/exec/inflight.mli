(** In-flight request coalescing: at most one computation per key.

    The dedup hook under [lib/serve]'s batching daemon — N concurrent
    requests for the same content address ({!Job.key}) share one
    computation and all receive the same result value. Unlike the
    on-disk {!Cache} (which deduplicates {e across} runs), this table
    deduplicates {e within} the present moment: the window between a
    cache miss and its store, where a thundering herd would otherwise
    compute the same job N times.

    Thread/domain-safe: callers may arrive from any systhread or domain.
    The table never holds its lock while user code runs, so computations
    for different keys proceed concurrently.

    A leader whose computation raises wakes every follower with the same
    exception (each follower re-raises it) and clears the slot — the
    next request for that key starts a fresh computation, so a transient
    crash is never sticky. *)

type 'a t

val create : unit -> 'a t

(** [run t ~key f] joins the in-flight computation for [key], or starts
    one. Exactly one caller (the {e leader}, first come) runs [f]; every
    other caller blocks until the leader finishes and receives the very
    same result. Returns the result paired with this caller's role.
    Once a computation settles, the key is free again: a later [run]
    leads a fresh computation. *)
val run : 'a t -> key:string -> (unit -> 'a) -> 'a * [ `Leader | `Coalesced ]

(** [inflight t] is the number of keys currently computing (tests). *)
val inflight : 'a t -> int
