(** Portfolio jobs: the unit of work of the parallel executor.

    A job is one (machine × algorithm × options) task — exactly the cell
    structure of the paper's Tables I/V/VII, where every machine is run
    through several encoding programs and the best PLA wins. Jobs carry
    everything needed to (a) run {!Harness.Driver.report} and (b) derive
    the content address under which the result is cached. *)

type task = {
  machine : Fsm.t;
  algorithm : Harness.Driver.algorithm;
  bits : int option;  (** code-length override, when the algorithm takes one *)
  max_work : int option;
      (** deterministic work cap (e.g. iexact's intrinsic 400k); part of
          the cache fingerprint, unlike wall-clock deadlines which are
          inherently uncacheable *)
  fallback : bool;
}

val task :
  ?bits:int -> ?max_work:int -> ?fallback:bool -> Fsm.t -> Harness.Driver.algorithm -> task

(** A completed job, flattened to what reports and the cache need. The
    driver's [Nova_error.t] degradation details are reduced to the rung
    names so a cached result round-trips exactly. *)
type success = {
  encoding : Encoding.t;
  produced_by : Harness.Driver.rung;
  degraded : Harness.Driver.rung list;
      (** rungs tried and failed before [produced_by], in order *)
  claims : Check.claims;
  cover : Logic.Cover.t;  (** minimized encoded cover, over [Encoded.build]'s domain *)
  num_cubes : int;
  area : int;
}

(** Where a row's result came from. *)
type origin =
  | Computed
  | Cached
  | Cancelled_by_race  (** a racing loser: no result was produced *)

type row = {
  task : task;
  result : (success, Nova_error.t) result;
  origin : origin;
  wall_s : float;
}

(** [code_version] participates in every cache key: bump it when an
    encoder or the minimizer changes behavior, and every stale entry
    misses instead of resurfacing. *)
val code_version : string

(** [fingerprint t] is the option part of the cache key (bits, work cap,
    fallback — everything that can change the result besides the machine
    text and the algorithm). *)
val fingerprint : task -> string

(** [key t] is the content address of [t]'s result: an MD5 hex digest of
    the machine's canonical KISS2 text, the algorithm name, the option
    fingerprint and {!code_version}. *)
val key : task -> string

(** [success_equal a b] is bit-level equality of two results: encoding,
    rungs, claims, minimized cover and area — what the determinism
    guarantee (jobs-independence, cold vs warm cache) quantifies over. *)
val success_equal : success -> success -> bool

(** [run ?budget t] executes the task through {!Harness.Driver.report}.
    [budget] defaults to a fresh root with [t.max_work]; pass one to add
    racing cancellation. *)
val run : ?budget:Budget.t -> task -> (success, Nova_error.t) result

(** [artifacts_of m s] packages a success for re-certification by the
    independent checker. *)
val artifacts_of : success -> Check.artifacts
