(** Content-addressed on-disk result cache.

    An entry is addressed by {!Job.key}: the MD5 of the machine's
    canonical KISS2 text, the algorithm, the option fingerprint and
    {!Job.code_version}. Entries are human-readable text files headed
    by an MD5 checksum of the payload, written atomically (temp file +
    rename) under a per-entry advisory file lock
    ([<key>.nova-cache.lock]; writers and {!fsck} exclusive, readers
    shared), so concurrent writers — several domains, or several
    processes sharing a cache directory — can never expose a torn
    entry, and concurrent readers never race a delete.

    {b Trust model}: the cache is untrusted storage. The checksum
    catches torn/truncated bytes structurally; beyond that, every
    lookup re-parses the entry and re-certifies the reconstructed
    artifacts with the independent checker ([lib/check]): injectivity,
    code length, claimed face/covering constraints, cover containment
    and trace equivalence against the machine. An entry that fails its
    checksum or parse, or parses but fails certification (e.g.
    tampered on disk), is counted in [rejected], deleted, and the job
    is recomputed — a corrupt cache can cost time, never correctness.

    {b Fault model}: every I/O failure on the read path (ENOENT racing
    a concurrent reject, EIO, a {!Chaos}-injected fault, a
    recertification crash) converges on the same recovery —
    delete-and-recompute, never an exception out of [find]. Write
    failures (ENOSPC, EIO, injected) retry once, then are swallowed:
    the cache is an accelerator, never a correctness dependency. *)

type t

type stats = { hits : int; misses : int; stores : int; rejected : int }

(** [open_dir dir] creates [dir] if needed and returns a handle.
    Raises [Sys_error] if [dir] exists and is not a directory. *)
val open_dir : string -> t

val dir : t -> string

(** [stats c] is a snapshot of this handle's counters (cross-domain
    safe; also mirrored in the [exec.cache.*] Instrument counters). *)
val stats : t -> stats

(** [find c task] is the cached, freshly re-certified result of [task],
    or [None] (miss, parse failure, or certification failure). *)
val find : t -> Job.task -> Job.success option

(** [store c task s] persists [s] under [task]'s key, atomically — but
    only if [s] passes independent certification first: the cache holds
    certified results exclusively, so a producer bug is recomputed every
    run instead of being laundered through storage, and any rejection on
    a later [find] means the entry changed on disk. Failures to write
    (read-only directory, disk full) are swallowed: the cache is an
    accelerator, never a correctness dependency. *)
val store : t -> Job.task -> Job.success -> unit

(** [entry_path c task] is the file a [store] would write — exposed for
    the corrupt-cache tests and CI smokes. *)
val entry_path : t -> Job.task -> string

(** [render task s] is the exact entry text a [store] would persist
    (checksum header included) — exposed for the tamper tests, which
    need to re-checksum a modified payload to reach the
    re-certification gate. *)
val render : Job.task -> Job.success -> string

(** What a {!fsck} sweep found: [scanned]/[valid] count [.nova-cache]
    entries, [removed] the entries whose magic or checksum failed
    (torn writes, truncation, tampering), [tmp_removed] leftover
    [.tmp.*] files from writers that died mid-store. Orphaned lock
    files are removed too, silently. *)
type fsck_report = { scanned : int; valid : int; removed : int; tmp_removed : int }

(** [fsck c] sweeps the cache directory for structural integrity:
    every entry's checksum is re-verified (no task context is needed —
    semantic certification still happens on every [find]), broken
    entries and stale temp files are deleted. Each removed entry also
    counts as a rejection in {!stats}. Never raises on I/O errors —
    an unreadable entry is simply removed. *)
val fsck : t -> fsck_report

(** [sweep_own_tmp c] is the shutdown-scoped slice of {!fsck}: removes
    the calling {e process}'s leftover writer temp files (their names
    carry the pid) plus lock files whose entry is gone, and returns how
    many temp files were removed. Entries themselves are never touched,
    and other processes' temp files are left alone — safe to run while
    a second server shares the directory. The [lib/serve] daemon runs
    this on SIGINT/SIGTERM/shutdown so an interrupted daemon never
    leaves the cache needing a manual [nova cache fsck]. *)
val sweep_own_tmp : t -> int
