(** Content-addressed on-disk result cache.

    An entry is addressed by {!Job.key}: the MD5 of the machine's
    canonical KISS2 text, the algorithm, the option fingerprint and
    {!Job.code_version}. Entries are human-readable text files written
    atomically (temp file + rename), so concurrent writers — several
    domains, or several processes sharing a cache directory — can never
    expose a torn entry.

    {b Trust model}: the cache is untrusted storage. Every lookup
    re-parses the entry and re-certifies the reconstructed artifacts
    with the independent checker ([lib/check]): injectivity, code
    length, claimed face/covering constraints, cover containment and
    trace equivalence against the machine. An entry that fails to
    parse, or parses but fails certification (e.g. tampered on disk),
    is counted in [rejected], deleted, and the job is recomputed — a
    corrupt cache can cost time, never correctness. *)

type t

type stats = { hits : int; misses : int; stores : int; rejected : int }

(** [open_dir dir] creates [dir] if needed and returns a handle.
    Raises [Sys_error] if [dir] exists and is not a directory. *)
val open_dir : string -> t

val dir : t -> string

(** [stats c] is a snapshot of this handle's counters (cross-domain
    safe; also mirrored in the [exec.cache.*] Instrument counters). *)
val stats : t -> stats

(** [find c task] is the cached, freshly re-certified result of [task],
    or [None] (miss, parse failure, or certification failure). *)
val find : t -> Job.task -> Job.success option

(** [store c task s] persists [s] under [task]'s key, atomically — but
    only if [s] passes independent certification first: the cache holds
    certified results exclusively, so a producer bug is recomputed every
    run instead of being laundered through storage, and any rejection on
    a later [find] means the entry changed on disk. Failures to write
    (read-only directory, disk full) are swallowed: the cache is an
    accelerator, never a correctness dependency. *)
val store : t -> Job.task -> Job.success -> unit

(** [entry_path c task] is the file a [store] would write — exposed for
    the corrupt-cache tests and CI smokes. *)
val entry_path : t -> Job.task -> string
