(** A deterministic Domain-based worker pool.

    [map] fans an array of independent tasks out over [jobs] domains and
    returns the results {e in task order}, whatever order the domains
    finish in — the deterministic reduction the executor's bit-identity
    guarantee rests on. Tasks are claimed in index order from a shared
    atomic cursor, so earlier tasks start no later than later ones and a
    one-job pool degenerates to [Array.map] on the calling domain. *)

(** [available_jobs ()] is the runtime's recommended domain count (>= 1). *)
val available_jobs : unit -> int

(** [map ~jobs tasks ~f] applies [f] to every task on a pool of at most
    [jobs] domains (clamped to [1 .. Array.length tasks]; the calling
    domain works too, so [jobs = 4] spawns 3). If any [f] raises, the
    exception of the lowest-indexed failing task is re-raised after every
    domain has been joined. *)
val map : jobs:int -> 'a array -> f:('a -> 'b) -> 'b array

(** [mapi ~jobs tasks ~f] is {!map} with the task index. *)
val mapi : jobs:int -> 'a array -> f:(int -> 'a -> 'b) -> 'b array

(** [mapi_isolated ~jobs tasks ~f] is {!mapi} with per-slot crash
    isolation: a task whose [f] raises settles its own slot as
    [Error (exn, backtrace)] — sibling tasks and the pool itself are
    unaffected, and every slot is always settled. Genuinely fatal
    exceptions ([Out_of_memory], [Stack_overflow], [Sys.Break]) are
    {e not} isolated: they re-raise after the join with the historical
    lowest-index-deterministic semantics. The [Chaos.Pool_worker]
    injection site fires inside the per-slot protection, so an injected
    domain death lands in the slot of the task the domain was
    running. *)
val mapi_isolated :
  jobs:int -> 'a array -> f:(int -> 'a -> 'b) -> ('b, exn * string) result array
