(** A deterministic Domain-based worker pool.

    [map] fans an array of independent tasks out over [jobs] domains and
    returns the results {e in task order}, whatever order the domains
    finish in — the deterministic reduction the executor's bit-identity
    guarantee rests on. Tasks are claimed in index order from a shared
    atomic cursor, so earlier tasks start no later than later ones and a
    one-job pool degenerates to [Array.map] on the calling domain. *)

(** [available_jobs ()] is the runtime's recommended domain count (>= 1). *)
val available_jobs : unit -> int

(** [map ~jobs tasks ~f] applies [f] to every task on a pool of at most
    [jobs] domains (clamped to [1 .. Array.length tasks]; the calling
    domain works too, so [jobs = 4] spawns 3). If any [f] raises, the
    exception of the lowest-indexed failing task is re-raised after every
    domain has been joined. *)
val map : jobs:int -> 'a array -> f:('a -> 'b) -> 'b array

(** [mapi ~jobs tasks ~f] is {!map} with the task index. *)
val mapi : jobs:int -> 'a array -> f:(int -> 'a -> 'b) -> 'b array
