(** The supervision layer of the execution stack.

    Converts runtime failures into typed, traced, recoverable events,
    per the taxonomy in {!Nova_error.is_transient}: crashes (exceptions)
    are transient and retried; typed error results are deterministic
    verdicts and pass through untouched; fatal exceptions
    ([Out_of_memory], [Stack_overflow], [Sys.Break]) are re-raised
    immediately and never swallowed.

    {b Retry}: seeded jittered exponential backoff. The jitter is drawn
    from (policy seed, job key, attempt), so a replayed run backs off
    identically — supervision adds no nondeterminism.

    {b Quarantine}: a per-process registry of (machine, algorithm)
    pairs whose jobs crashed through their whole attempt budget. After
    {!quarantine_threshold} exhausted cycles the pair is skipped
    outright — a [driver.quarantine] trace instant and a typed
    [Job_crashed] with [attempts = 0] — so the portfolio fallback
    ladder continues without re-burning attempts on a known-bad rung.

    {b Warnings}: one stderr line per retry / give-up / quarantine
    skip, with attempt counts and reasons; {!quiet} (the CLI's
    [--quiet]) suppresses them. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_backoff_ms : float;  (** backoff before the second attempt *)
  multiplier : float;  (** exponential growth per further attempt *)
  jitter : float;  (** relative jitter: backoff varies by +-[jitter] *)
  seed : int;  (** seeds the jitter (deterministic replay) *)
}

(** 3 attempts, 1ms base backoff, doubling, +-50% jitter, seed 0. *)
val default_policy : policy

(** One attempt, no backoff: the unsupervised reference path (bench
    measures its wall time against {!default_policy}'s). *)
val off : policy

(** Suppresses the retry / give-up / quarantine stderr warnings. *)
val quiet : bool ref

(** [backoff_ms policy ~key ~attempt] is the deterministic backoff
    before retry number [attempt + 1] (1-based failures) of job [key].
    Always within [base * multiplier^(attempt-1)] times [1 +- jitter]. *)
val backoff_ms : policy -> key:string -> attempt:int -> float

(** Exhausted crash cycles after which a (machine, algorithm) pair is
    skipped (currently 2). *)
val quarantine_threshold : int

(** [quarantined ~machine ~algorithm] is [Some (cycles, detail)] when
    the pair is past the threshold. *)
val quarantined : machine:string -> algorithm:string -> (int * string) option

(** [reset_quarantine ()] empties the registry (tests; a long-running
    service would call this to re-admit quarantined rungs). *)
val reset_quarantine : unit -> unit

(** One quarantine-registry row: a (machine, algorithm) pair with its
    exhausted crash cycles, how many jobs the quarantine has skipped,
    and the last crash detail. A pair appears as soon as it has one
    exhausted cycle — [q_cycles >= quarantine_threshold] is the
    actually-quarantined predicate. *)
type quarantine_entry = {
  q_machine : string;
  q_algorithm : string;
  q_cycles : int;
  q_skips : int;
  q_detail : string;
}

(** The registry's current rows, sorted by (machine, algorithm) — the
    runtime-visibility read-out used by the serve [stats]/[metrics]
    verbs. *)
val quarantine_snapshot : unit -> quarantine_entry list

(** [run policy ~machine ~algorithm f] supervises one job: quarantine
    check, then [f] with retry/backoff on crashes. Returns [f]'s own
    result, or [Error (Job_crashed _)] after the attempt budget (or a
    quarantine skip). Never raises except fatal exceptions. *)
val run :
  policy ->
  machine:string ->
  algorithm:string ->
  (unit -> ('a, Nova_error.t) result) ->
  ('a, Nova_error.t) result

(** [protect ~what f] is the one-shot infrastructure flavor: run [f],
    mapping any non-fatal crash to [Error detail] (no retry — callers
    like the cache recover by recomputing instead). *)
val protect : what:string -> (unit -> 'a) -> ('a, string) result
