let iexact_max_work = 400_000

let default_algorithms =
  [
    Harness.Driver.Iexact; Harness.Driver.Iohybrid; Harness.Driver.Ihybrid;
    Harness.Driver.Igreedy; Harness.Driver.Kiss;
    Harness.Driver.Mustang (Baselines.Fanout, true); Harness.Driver.One_hot;
  ]

(* iexact is exponential: cap it like Flow does, so a portfolio run
   terminates deterministically (the cap is part of the cache key). *)
let tasks_for m =
  List.map
    (fun algo ->
      match algo with
      | Harness.Driver.Iexact -> Job.task ~max_work:iexact_max_work m algo
      | _ -> Job.task m algo)
    default_algorithms

let primary_stage = function
  | Harness.Driver.Iexact -> Nova_error.Iexact
  | Harness.Driver.Ihybrid -> Nova_error.Ihybrid
  | Harness.Driver.Igreedy -> Nova_error.Igreedy
  | Harness.Driver.Iohybrid -> Nova_error.Iohybrid
  | Harness.Driver.Iovariant -> Nova_error.Iovariant
  | Harness.Driver.Kiss | Harness.Driver.Mustang _ | Harness.Driver.One_hot
  | Harness.Driver.Random _ ->
      Nova_error.Baseline

let job_timer (task : Job.task) =
  Instrument.timer ("exec.job." ^ Harness.Driver.name task.Job.algorithm)

let origin_name = function
  | Job.Computed -> "computed"
  | Job.Cached -> "cached"
  | Job.Cancelled_by_race -> "cancelled"

(* Every finished row counts into the metrics registry by origin and
   outcome; job granularity, so the labeled-counter lookup is cheap
   relative to the work it labels. *)
let count_row (row : Job.row) =
  Metrics.Registry.inc
    (Metrics.Registry.counter ~help:"Portfolio jobs by origin and outcome."
       ~labels:
         [ ("origin", origin_name row.Job.origin);
           ("outcome", match row.Job.result with Ok _ -> "ok" | Error _ -> "error") ]
       "nova_portfolio_jobs_total");
  row

(* Sequential fallback: a domain pool on a machine without spare cores
   is pure overhead (domain spawn/join, cache-line contention) — the
   measured BENCH_parallel slowdown. When the runtime recommends no
   more parallelism than one domain, run in-process regardless of the
   requested [jobs]; rows are bit-identical either way, so this is a
   pure wall-clock fix. *)
let effective_jobs ~available ~requested =
  if requested <= 1 then 1 else if available <= 1 then 1 else requested

let plan_jobs requested =
  let effective = effective_jobs ~available:(Pool.available_jobs ()) ~requested in
  if effective <> requested && Trace.enabled () then
    Trace.instant "pool.sequential_fallback"
      ~attrs:[ ("requested", Trace.Int requested); ("effective", Trace.Int effective) ];
  effective

(* The per-job root span on whatever track (domain) picked the task up:
   it carries machine/algorithm, so everything beneath it in a worker
   lane — driver, espresso, cache, checks — self-describes by
   inheritance. *)
let traced_job (task : Job.task) f =
  if not (Trace.enabled ()) then f ()
  else
    Trace.with_span_result "job"
      ~attrs:
        [ ("machine", Trace.String task.Job.machine.Fsm.name);
          ("algorithm", Trace.String (Harness.Driver.name task.Job.algorithm)) ]
      (fun () ->
        let row = f () in
        let end_attrs =
          ("origin", Trace.String (origin_name row.Job.origin))
          ::
          (match row.Job.result with
          | Ok s -> [ ("num_cubes", Trace.Int s.Job.num_cubes); ("area", Trace.Int s.Job.area) ]
          | Error e -> [ ("error", Trace.String (Nova_error.to_string e)) ])
        in
        (row, end_attrs))

(* The supervised compute step: quarantine check, then Job.run under
   retry/backoff. The Rung chaos site fires at the job boundary (an
   encoding algorithm crashing); because it fires before Job.run builds
   its budget, a retried attempt starts from clean budget state and a
   fully absorbed schedule reproduces the fault-free result bit for
   bit. *)
let supervised_run policy ?budget (task : Job.task) =
  Supervise.run policy ~machine:task.Job.machine.Fsm.name
    ~algorithm:(Harness.Driver.name task.Job.algorithm)
    (fun () ->
      Chaos.maybe_raise Chaos.Rung;
      Instrument.time (job_timer task) (fun () -> Job.run ?budget task))

(* One plain (non-racing) job: cache lookup, else compute and store.
   [budget] is an externally imposed budget (the serving layer's
   per-request admission budget). It *wraps* the task's intrinsic
   [max_work] cap rather than replacing it — the cap is part of the
   cache fingerprint, so it must keep tripping at exactly the same
   point as a one-shot run; the external ceiling rides above it as a
   [Budget.sub] parent. A result produced under a tripped external
   budget is degraded by something outside the content address (when
   a deadline hit, an admission work ceiling the fingerprint never saw)
   — it must never enter the cache. The intrinsic cap trips on the
   child, never the parent, so those stores proceed as usual. *)
let run_one ~policy ?cache ?budget (task : Job.task) =
  traced_job task @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let finish result origin =
    count_row { Job.task; result; origin; wall_s = Unix.gettimeofday () -. t0 }
  in
  match Option.bind cache (fun c -> Cache.find c task) with
  | Some s -> finish (Ok s) Job.Cached
  | None ->
      let run_budget =
        match (budget, task.Job.max_work) with
        | None, _ -> None
        | Some b, Some w -> Some (Budget.sub ~max_work:w b)
        | Some b, None -> Some b
      in
      let result = supervised_run policy ?budget:run_budget task in
      let externally_degraded =
        match budget with Some b -> Budget.exhausted b | None -> false
      in
      (match (cache, result) with
      | Some c, Ok s when not externally_degraded -> Cache.store c task s
      | _ -> ());
      finish result Job.Computed

let run_task ?(policy = Supervise.default_policy) ?cache ?budget task =
  run_one ~policy ?cache ?budget task

(* A slot the pool itself had to isolate (an injected domain death, or
   a crash outside the supervisor): restart the job once in-process —
   the domain is gone but the work is not, and the inline rerun is
   fully supervised, so a second crash lands in the typed path. *)
let restart_isolated ~policy ?cache tasks slots =
  Array.mapi
    (fun i slot ->
      match slot with
      | Ok row -> row
      | Error (e, _) ->
          if Trace.enabled () then
            Trace.instant "supervise.restart"
              ~attrs:
                [ ("slot", Trace.Int i);
                  ("error", Trace.String (Printexc.to_string e)) ];
          run_one ~policy ?cache tasks.(i))
    slots

let run ?(jobs = 1) ?cache ?(policy = Supervise.default_policy) tasks =
  let jobs = plan_jobs jobs in
  let tasks = Array.of_list tasks in
  let slots = Pool.mapi_isolated ~jobs tasks ~f:(fun _ t -> run_one ~policy ?cache t) in
  Array.to_list (restart_isolated ~policy ?cache tasks slots)

(* --- racing ------------------------------------------------------------- *)

let acceptable = function
  | Ok (s : Job.success) -> s.Job.degraded = []
  | Error _ -> false

let race ?(jobs = 1) ?cache ?(policy = Supervise.default_policy) tasks =
  let jobs = plan_jobs jobs in
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  (* Lowest index that completed acceptably so far. Monotonically
     decreasing, so the final value is the deterministic winner no
     matter which domain lowered it first. *)
  let winner = Atomic.make max_int in
  (* [note i] returns whether [i] became the (current) winner, so the
     trace can record the take-over without a second atomic read. *)
  let rec note i =
    let w = Atomic.get winner in
    if i >= w then false
    else if Atomic.compare_and_set winner w i then true
    else note i
  in
  let won i (task : Job.task) =
    if note i && Trace.enabled () then
      Trace.instant "race.win"
        ~attrs:
          [ ("winner", Trace.Int i);
            ("algorithm", Trace.String (Harness.Driver.name task.Job.algorithm)) ]
  in
  let budgets =
    Array.map (fun (t : Job.task) -> Budget.create ?max_work:t.Job.max_work ()) tasks
  in
  let cancel_losers () =
    let w = Atomic.get winner in
    if w < n then
      for j = w + 1 to n - 1 do
        (if Trace.enabled () && Budget.reason budgets.(j) = None then
           Trace.instant "race.cancel"
             ~attrs:
               [ ("loser", Trace.Int j);
                 ("algorithm",
                  Trace.String (Harness.Driver.name tasks.(j).Job.algorithm)) ]);
        Budget.cancel budgets.(j)
      done
  in
  let cancelled_row (task : Job.task) t0 =
    count_row
      {
        Job.task;
        result =
          Error
            (Nova_error.Budget_exhausted
               { stage = primary_stage task.Job.algorithm; reason = Budget.Cancelled });
        origin = Job.Cancelled_by_race;
        wall_s = Unix.gettimeofday () -. t0;
      }
  in
  let run_racer i (task : Job.task) =
    traced_job task @@ fun () ->
    let t0 = Unix.gettimeofday () in
    if Atomic.get winner < i then cancelled_row task t0
    else
      match Option.bind cache (fun c -> Cache.find c task) with
      | Some s ->
          if acceptable (Ok s) then begin
            won i task;
            cancel_losers ()
          end;
          count_row
            { Job.task; result = Ok s; origin = Job.Cached; wall_s = Unix.gettimeofday () -. t0 }
      | None ->
          let result = supervised_run policy ~budget:budgets.(i) task in
          let raced_out = Budget.reason budgets.(i) = Some Budget.Cancelled in
          if (not raced_out) && acceptable result then begin
            won i task;
            cancel_losers ()
          end;
          (* A loser that was tripped mid-run produced a degraded (or
             no) result: it must never enter the cache. *)
          (match (cache, result) with
          | Some c, Ok s when not raced_out -> Cache.store c task s
          | _ -> ());
          count_row
            {
              Job.task;
              result;
              origin = (if raced_out then Job.Cancelled_by_race else Job.Computed);
              wall_s = Unix.gettimeofday () -. t0;
            }
  in
  let slots = Pool.mapi_isolated ~jobs tasks ~f:run_racer in
  (* A pool-isolated racer crash restarts inline like [run]'s; its
     budget may have been cancelled meanwhile, which the rerun observes
     exactly as the sequential protocol would. *)
  let rows =
    Array.mapi
      (fun i slot ->
        match slot with
        | Ok row -> row
        | Error (e, _) ->
            if Trace.enabled () then
              Trace.instant "supervise.restart"
                ~attrs:
                  [ ("slot", Trace.Int i);
                    ("error", Trace.String (Printexc.to_string e)) ];
            run_racer i tasks.(i))
      slots
  in
  let best_by_area () =
    let best = ref None in
    Array.iteri
      (fun i (r : Job.row) ->
        match (r.Job.result, r.Job.origin) with
        | Ok s, (Job.Computed | Job.Cached) -> (
            match !best with
            | Some (_, a) when a <= s.Job.area -> ()
            | _ -> best := Some (i, s.Job.area))
        | _ -> ())
      rows;
    Option.map fst !best
  in
  let w = Atomic.get winner in
  (Array.to_list rows, if w < n then Some w else best_by_area ())
