let available_jobs () = max 1 (Domain.recommended_domain_count ())

let c_spawned = Instrument.counter "exec.pool.domains_spawned"
let c_tasks = Instrument.counter "exec.pool.tasks"

let mapi ~jobs tasks ~f =
  let n = Array.length tasks in
  Instrument.add c_tasks n;
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.mapi f tasks
  else begin
    (* Workers claim indices from a shared cursor (in order) and write
       into a per-index slot: completion order never shows in the
       result. Exceptions are captured per slot and the lowest-indexed
       one is re-raised after the join, again deterministically. *)
    let results : ('b, exn) result option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- (try Some (Ok (f i tasks.(i))) with e -> Some (Error e));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (jobs - 1) (fun k ->
          Instrument.bump c_spawned;
          if Trace.enabled () then
            Trace.instant "pool.spawn" ~attrs:[ ("worker", Trace.Int (k + 1)) ];
          Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false (* every index below the final cursor was claimed *))
      results
  end

let map ~jobs tasks ~f = mapi ~jobs tasks ~f:(fun _ x -> f x)
