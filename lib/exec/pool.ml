let available_jobs () = max 1 (Domain.recommended_domain_count ())

let c_spawned = Instrument.counter "exec.pool.domains_spawned"
let c_tasks = Instrument.counter "exec.pool.tasks"
let c_isolated = Instrument.counter "exec.pool.crashes_isolated"

(* Fatal exceptions cross the pool barrier: isolating an OOM or a user
   interrupt into a per-slot value would hide a dying process. *)
let is_fatal = function Out_of_memory | Stack_overflow | Sys.Break -> true | _ -> false

(* Workers claim indices from a shared cursor (in order) and write into
   a per-index slot: completion order never shows in the result. A
   raising task is captured in its own slot (crash isolation — one
   job's crash never takes down its siblings or the pool), except fatal
   exceptions, which are re-raised after the join, lowest index first,
   deterministically. The [Chaos.Pool_worker] site sits inside the
   per-slot protection, so an injected "domain death" is isolated to
   the task the dying domain was running. *)
let mapi_isolated ~jobs tasks ~f =
  let n = Array.length tasks in
  Instrument.add c_tasks n;
  let jobs = max 1 (min jobs n) in
  let run i x =
    match
      Chaos.maybe_raise Chaos.Pool_worker;
      f i x
    with
    | v -> Ok v
    | exception e when not (is_fatal e) ->
        Instrument.bump c_isolated;
        let bt = Printexc.get_backtrace () in
        if Trace.enabled () then
          Trace.instant "pool.crash_isolated"
            ~attrs:[ ("slot", Trace.Int i); ("error", Trace.String (Printexc.to_string e)) ];
        Error (e, bt)
  in
  if jobs = 1 then Array.mapi run tasks
  else begin
    let results : (('b, exn * string) result, exn) result option array = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- (try Some (Ok (run i tasks.(i))) with e -> Some (Error e));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (jobs - 1) (fun k ->
          Instrument.bump c_spawned;
          if Trace.enabled () then
            Trace.instant "pool.spawn" ~attrs:[ ("worker", Trace.Int (k + 1)) ];
          Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error fatal) -> raise fatal (* lowest index: Array.map visits in order *)
        | None -> assert false (* every index below the final cursor was claimed *))
      results
  end

(* The raising flavor: crash isolation plus the historical contract —
   the lowest-indexed failure is re-raised after every slot settled. *)
let mapi ~jobs tasks ~f =
  let slots = mapi_isolated ~jobs tasks ~f in
  Array.iter (function Error (e, _) -> raise e | Ok _ -> ()) slots;
  Array.map (function Ok v -> v | Error _ -> assert false) slots

let map ~jobs tasks ~f = mapi ~jobs tasks ~f:(fun _ x -> f x)
