(** Symbolic minimization revisited (Section 6.1).

    Produces a minimal encoding-independent sum-of-products cover of the
    FSM's combinational logic together with the directed acyclic graph of
    output covering constraints it relies on: an edge [(u, v, w)] means
    the code of next state [u] must cover bitwise the code of [v], and
    accepting the edges into [v] saved [w] product terms.

    Both of the paper's modifications are implemented:
    + each per-next-state minimization carries a complete description of
      the binary outputs (their on- and off-conditions participate), and
    + covering relations are accepted only when the minimization actually
      decreased the on-set cardinality of the next state.

    The translation of the final cover into a compatible Boolean
    representation is the ordered face hypercube embedding problem solved
    by {!Iohybrid}. *)

open Logic

type t = {
  symbolic : Symbolic.t;
  final_cover : Cover.t;  (** FinalP, over the symbolic domain *)
  graph : (int * int * int) list;  (** accepted edges [(u, v, w)]: u covers v *)
  problem : Iohybrid.problem;  (** clustered (IC, OC) for the encoder *)
}

(** Selection order of step 4 of the loop ("select a symbol"). The paper
    notes that any variation determines a different (IC, OC) pair; the
    ablation bench compares them. *)
type order =
  | Largest_first  (** decreasing on-set cardinality (the default) *)
  | Smallest_first
  | Index_order

(** [run ?order sym] executes the symbolic minimization loop. *)
val run : ?order:order -> ?budget:Budget.t -> Symbolic.t -> t

(** [upper_bound t] is the product-term cardinality of the final cover —
    the encoding-independent upper bound symbolic minimization promises
    when all its constraints are satisfied. *)
val upper_bound : t -> int
