open Logic

type t = {
  symbolic : Symbolic.t;
  final_cover : Cover.t;
  graph : (int * int * int) list;
  problem : Iohybrid.problem;
}

(* Restrict the output field of [c] to the parts in [keep] (a predicate on
   output parts); None if the restriction empties the field. *)
let restrict_output sym c keep =
  let dom = sym.Symbolic.dom in
  let off = Domain.offset dom sym.Symbolic.output_var in
  let sz = Domain.size dom sym.Symbolic.output_var in
  let c' = Bitvec.copy c in
  let any = ref false in
  for p = 0 to sz - 1 do
    if Bitvec.get c' (off + p) then
      if keep p then any := true else Bitvec.clear c' (off + p)
  done;
  if !any then Some c' else None

(* Projection of a cube onto inputs and present state: output field full. *)
let project_io sym c =
  let dom = sym.Symbolic.dom in
  let off = Domain.offset dom sym.Symbolic.output_var in
  let sz = Domain.size dom sym.Symbolic.output_var in
  let c' = Bitvec.copy c in
  Bitvec.set_range c' off sz;
  c'

type order = Largest_first | Smallest_first | Index_order

let run ?(order = Largest_first) ?budget (sym : Symbolic.t) =
  let dom = sym.Symbolic.dom in
  let ns = Symbolic.num_states sym in
  let out_off = Domain.offset dom sym.Symbolic.output_var in
  let is_binary_part p = p >= ns in
  (* The input cover C: disjoint minimization, split so that every cube
     asserts at most one next state. *)
  let c0 = Symbolic.minimize ?budget sym in
  let split_cube c =
    let next_parts =
      List.filter (fun i -> Bitvec.get c (out_off + i)) (List.init ns (fun i -> i))
    in
    match next_parts with
    | [] | [ _ ] -> [ c ]
    | parts ->
        List.filter_map
          (fun i -> restrict_output sym c (fun p -> is_binary_part p || p = i))
          parts
  in
  let c_cover = List.concat_map split_cube c0.Cover.cubes in
  (* On-sets per next state, binary outputs carried unchanged. *)
  let on_sets =
    Array.init ns (fun i ->
        List.filter (fun c -> Bitvec.get c (out_off + i)) c_cover
        |> List.filter_map (fun c -> restrict_output sym c (fun p -> is_binary_part p || p = i)))
  in
  (* Global off-set of the binary outputs: rows asserting a 0. *)
  let output_off =
    List.filter_map
      (fun (tr : Fsm.transition) ->
        let zeros = ref [] in
        String.iteri (fun j ch -> if ch = '0' then zeros := j :: !zeros) tr.Fsm.output;
        if !zeros = [] then None
        else begin
          (* Rebuild the row's input/state cube with the 0-columns. *)
          let c = Bitvec.full (Domain.width dom) in
          String.iteri
            (fun v ch ->
              match ch with
              | '0' -> Bitvec.clear c (Domain.offset dom v + 1)
              | '1' -> Bitvec.clear c (Domain.offset dom v + 0)
              | '-' -> ()
              | _ -> assert false)
            tr.Fsm.input;
          (match tr.Fsm.src with
          | None -> ()
          | Some s ->
              let soff = Domain.offset dom sym.Symbolic.state_var in
              Bitvec.clear_range c soff ns;
              Bitvec.set c (soff + s));
          let osz = Domain.size dom sym.Symbolic.output_var in
          Bitvec.clear_range c out_off osz;
          List.iter (fun j -> Bitvec.set c (out_off + ns + j)) !zeros;
          Some c
        end)
      sym.Symbolic.machine.Fsm.transitions
  in
  (* Reachability in the accepted covering graph: adj.(u) = states u covers. *)
  let adj = Array.make ns [] in
  let reachable u v =
    let seen = Array.make ns false in
    let rec dfs x =
      x = v
      || (not seen.(x))
         && begin
              seen.(x) <- true;
              List.exists dfs adj.(x)
            end
    in
    seen.(u) <- true;
    List.exists dfs adj.(u)
  in
  let graph = ref [] in
  let p_cover = ref [] in
  let selection =
    let indices = List.init ns (fun i -> i) in
    match order with
    | Largest_first ->
        List.sort (fun a b -> compare (List.length on_sets.(b)) (List.length on_sets.(a))) indices
    | Smallest_first ->
        List.sort (fun a b -> compare (List.length on_sets.(a)) (List.length on_sets.(b))) indices
    | Index_order -> indices
  in
  List.iter
    (fun i ->
      let on_i = on_sets.(i) in
      if on_i = [] then ()
      else begin
        let dc_states =
          List.filter (fun j -> j <> i && not (reachable i j)) (List.init ns (fun j -> j))
        in
        let off_states =
          List.filter (fun j -> j <> i && reachable i j) (List.init ns (fun j -> j))
        in
        (* Column i must be 0 over the on-sets of states i covers. *)
        let off_i =
          List.concat_map
            (fun j ->
              List.filter_map (fun c -> restrict_output sym (project_io sym c) (fun p -> p = i)) on_sets.(j))
            off_states
        in
        let on = Cover.make dom on_i in
        let off = Cover.make dom (off_i @ output_off) in
        let mb_i = Espresso.minimize_care ?budget ~off on in
        let m_i = List.filter (fun c -> Bitvec.get c (out_off + i)) mb_i.Cover.cubes in
        if List.length m_i < List.length on_i then begin
          let w_i = List.length on_i - List.length m_i in
          (* Edges (j, i): j's code covers i's wherever M_i spilled into On_j. *)
          let spilled =
            List.filter
              (fun j ->
                List.exists
                  (fun mc ->
                    List.exists
                      (fun oc -> Cube.intersects dom (project_io sym mc) (project_io sym oc))
                      on_sets.(j))
                  m_i)
              dc_states
          in
          List.iter (fun j -> adj.(j) <- i :: adj.(j)) spilled;
          graph := List.map (fun j -> (j, i, w_i)) spilled @ !graph;
          p_cover := mb_i.Cover.cubes @ !p_cover
        end
        else p_cover := on_i @ !p_cover
      end)
    selection;
  let final_cover = Cover.single_cube_containment (Cover.make dom !p_cover) in
  (* Companion input constraints, clustered by next state. *)
  let group_of c =
    let g = Symbolic.present_states sym c in
    let card = Bitvec.cardinal g in
    if card >= 2 && card < ns then Some g else None
  in
  let companion_of i =
    List.filter_map
      (fun c -> if Bitvec.get c (out_off + i) then group_of c else None)
      final_cover.Cover.cubes
  in
  let cluster_weights = Array.make ns 0 in
  let cluster_edges = Array.make ns [] in
  List.iter
    (fun (u, v, w) ->
      cluster_weights.(v) <- w;
      cluster_edges.(v) <- { Constraints.covering = u; covered = v } :: cluster_edges.(v))
    !graph;
  let clusters =
    List.filter_map
      (fun i ->
        if cluster_edges.(i) = [] then None
        else
          Some
            {
              Constraints.next_state = i;
              edges = cluster_edges.(i);
              oc_weight = cluster_weights.(i);
              companion = companion_of i;
            })
      (List.init ns (fun i -> i))
  in
  (* All weighted input constraints of the final cover. *)
  let ic_tbl = Hashtbl.create 17 in
  List.iter
    (fun c ->
      match group_of c with
      | None -> ()
      | Some g ->
          let key = Bitvec.to_string g in
          let prev =
            match Hashtbl.find_opt ic_tbl key with
            | Some (ic : Constraints.input_constraint) -> ic.Constraints.weight
            | None -> 0
          in
          Hashtbl.replace ic_tbl key { Constraints.states = g; weight = prev + 1 })
    final_cover.Cover.cubes;
  let ics = Hashtbl.fold (fun _ ic acc -> ic :: acc) ic_tbl [] in
  {
    symbolic = sym;
    final_cover;
    graph = !graph;
    problem = { Iohybrid.num_states = ns; ics; clusters };
  }

let upper_bound t = Cover.size t.final_cover
