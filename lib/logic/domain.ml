type t = {
  sizes : int array;
  offsets : int array;
  width : int;
  (* Word-level layout of each variable's field, precomputed so the hot
     cube operations need no per-call division: variable [v]'s field is
     the union over [i] of the bits [var_masks.(v).(i)] of word
     [var_words.(v).(i)] (in Bitvec's word layout). *)
  var_words : int array array;
  var_masks : int array array;
  (* Flat fast path for the (overwhelmingly common) variables whose field
     lies in a single word: [var_word1.(v)] is that word's index and
     [var_mask1.(v)] the field mask, or -1/0 when the field straddles a
     word boundary and callers must fall back to [var_words]/[var_masks]. *)
  var_word1 : int array;
  var_mask1 : int array;
}

let bpw = Bitvec.bits_per_word
let ones n = if n >= bpw then -1 else (1 lsl n) - 1

let create sizes =
  if Array.exists (fun s -> s < 1) sizes then
    invalid_arg "Domain.create: every variable needs at least one part";
  let n = Array.length sizes in
  let offsets = Array.make n 0 in
  let w = ref 0 in
  for v = 0 to n - 1 do
    offsets.(v) <- !w;
    w := !w + sizes.(v)
  done;
  let var_words = Array.make n [||] and var_masks = Array.make n [||] in
  for v = 0 to n - 1 do
    let lo = offsets.(v) and hi = offsets.(v) + sizes.(v) - 1 in
    let w0 = lo / bpw and w1 = hi / bpw in
    var_words.(v) <- Array.init (w1 - w0 + 1) (fun i -> w0 + i);
    var_masks.(v) <-
      Array.init
        (w1 - w0 + 1)
        (fun i ->
          let w = w0 + i in
          let first = max lo (w * bpw) - (w * bpw) in
          let last = min hi ((w * bpw) + bpw - 1) - (w * bpw) in
          ones (last - first + 1) lsl first)
  done;
  let var_word1 = Array.make n (-1) and var_mask1 = Array.make n 0 in
  for v = 0 to n - 1 do
    if Array.length var_words.(v) = 1 then begin
      var_word1.(v) <- var_words.(v).(0);
      var_mask1.(v) <- var_masks.(v).(0)
    end
  done;
  { sizes = Array.copy sizes; offsets; width = !w; var_words; var_masks; var_word1; var_mask1 }

let num_vars d = Array.length d.sizes
let size d v = d.sizes.(v)
let offset d v = d.offsets.(v)
let width d = d.width
let var_words d v = d.var_words.(v)
let var_masks d v = d.var_masks.(v)
let var_word1 d = d.var_word1
let var_mask1 d = d.var_mask1
let equal a b = a.sizes = b.sizes

let num_minterms d =
  Array.fold_left
    (fun acc s ->
      let m = acc * s in
      if acc <> 0 && m / acc <> s then invalid_arg "Domain.num_minterms: overflow";
      m)
    1 d.sizes

let pp ppf d =
  Format.fprintf ppf "domain(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list d.sizes)
