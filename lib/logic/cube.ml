type t = Bitvec.t

let full d = Bitvec.full (Domain.width d)
let empty_cube d = Bitvec.create (Domain.width d)

(* The per-variable field tests below run off the (word, mask) layout
   precomputed in [Domain]: a flat single-word fast path covering almost
   every variable, with a general multi-word fallback. The innermost
   loops are pure word arithmetic with no division. *)

let var_empty_slow d c v =
  let ws = Domain.var_words d v and ms = Domain.var_masks d v in
  let n = Array.length ws in
  let rec loop i = i = n || (Bitvec.word c ws.(i) land ms.(i) = 0 && loop (i + 1)) in
  loop 0

let var_empty d c v =
  let w = (Domain.var_word1 d).(v) in
  if w >= 0 then Bitvec.word c w land (Domain.var_mask1 d).(v) = 0 else var_empty_slow d c v

let var_full_slow d c v =
  let ws = Domain.var_words d v and ms = Domain.var_masks d v in
  let n = Array.length ws in
  let rec loop i = i = n || (Bitvec.word c ws.(i) land ms.(i) = ms.(i) && loop (i + 1)) in
  loop 0

let var_full d c v =
  let w = (Domain.var_word1 d).(v) in
  if w >= 0 then
    let m = (Domain.var_mask1 d).(v) in
    Bitvec.word c w land m = m
  else var_full_slow d c v

let var_cardinal_slow d c v =
  let ws = Domain.var_words d v and ms = Domain.var_masks d v in
  let acc = ref 0 in
  for i = 0 to Array.length ws - 1 do
    acc := !acc + Bitvec.popcount_word (Bitvec.word c ws.(i) land ms.(i))
  done;
  !acc

let var_cardinal d c v =
  let w = (Domain.var_word1 d).(v) in
  if w >= 0 then Bitvec.popcount_word (Bitvec.word c w land (Domain.var_mask1 d).(v))
  else var_cardinal_slow d c v

let is_empty d c =
  let n = Domain.num_vars d in
  let rec loop v = v < n && (var_empty d c v || loop (v + 1)) in
  loop 0

let is_full _d c = Bitvec.is_full c

let var_bits d c v =
  let off = Domain.offset d v in
  let sz = Domain.size d v in
  let rec loop p acc = if p < 0 then acc else loop (p - 1) (if Bitvec.get c (off + p) then p :: acc else acc) in
  loop (sz - 1) []

let set_var d c v parts =
  let c' = Bitvec.copy c in
  let off = Domain.offset d v in
  Bitvec.clear_range c' off (Domain.size d v);
  List.iter (fun p -> Bitvec.set c' (off + p)) parts;
  c'

let restrict_var d c v parts =
  let keep = List.filter (fun p -> Bitvec.get c (Domain.offset d v + p)) parts in
  set_var d c v keep

let literal d v parts = set_var d (full d) v parts

let of_minterm d values =
  let c = empty_cube d in
  Array.iteri (fun v value -> Bitvec.set c (Domain.offset d v + value)) values;
  c

(* The intersection of two cubes is empty iff some variable's fields are
   disjoint; checking field by field needs no intermediate vector. *)
let var_intersects_slow d a b v =
  let ws = Domain.var_words d v and ms = Domain.var_masks d v in
  let n = Array.length ws in
  let rec loop i =
    i < n
    && (Bitvec.word a ws.(i) land Bitvec.word b ws.(i) land ms.(i) <> 0 || loop (i + 1))
  in
  loop 0

let intersects d a b =
  let vw = Domain.var_word1 d and vm = Domain.var_mask1 d in
  let n = Array.length vw in
  let rec loop v =
    v = n
    || (let w = vw.(v) in
        (if w >= 0 then Bitvec.word a w land Bitvec.word b w land vm.(v) <> 0
         else var_intersects_slow d a b v)
        && loop (v + 1))
  in
  loop 0

let inter d a b = if intersects d a b then Some (Bitvec.inter a b) else None

let contains a b = Bitvec.subset b a
let supercube a b = Bitvec.union a b

let cofactor d c ~wrt =
  if intersects d c wrt then Some (Bitvec.union c (Bitvec.complement wrt)) else None

let distance d a b =
  let vw = Domain.var_word1 d and vm = Domain.var_mask1 d in
  let count = ref 0 in
  for v = 0 to Array.length vw - 1 do
    let w = vw.(v) in
    let hit =
      if w >= 0 then Bitvec.word a w land Bitvec.word b w land vm.(v) <> 0
      else var_intersects_slow d a b v
    in
    if not hit then incr count
  done;
  !count

let num_minterms d c =
  let n = Domain.num_vars d in
  let total = ref 1 in
  for v = 0 to n - 1 do
    total := !total * var_cardinal d c v
  done;
  !total

let num_literal_bits d c =
  let n = Domain.num_vars d in
  let total = ref 0 in
  for v = 0 to n - 1 do
    if not (var_full d c v) then total := !total + var_cardinal d c v
  done;
  !total

let pp d ppf c =
  let n = Domain.num_vars d in
  for v = 0 to n - 1 do
    if v > 0 then Format.pp_print_char ppf '|';
    let off = Domain.offset d v in
    for p = 0 to Domain.size d v - 1 do
      Format.pp_print_char ppf (if Bitvec.get c (off + p) then '1' else '0')
    done
  done

let equal = Bitvec.equal
let compare = Bitvec.compare
