type t = { dom : Domain.t; cubes : Cube.t list }

let make dom cubes = { dom; cubes = List.filter (fun c -> not (Cube.is_empty dom c)) cubes }
let empty dom = { dom; cubes = [] }
let universe dom = { dom; cubes = [ Cube.full dom ] }
let size t = List.length t.cubes
let literal_cost t = List.fold_left (fun acc c -> acc + Cube.num_literal_bits t.dom c) 0 t.cubes

(* --- Instrumentation probes (no-ops unless Instrument.enable ()) ------- *)

let c_taut_calls = Instrument.counter "logic.tautology_calls"
let c_compl_calls = Instrument.counter "logic.complement_calls"
let c_cofactor_calls = Instrument.counter "logic.cofactor_calls"
let c_taut_nodes = Instrument.counter "logic.tautology_nodes"
let c_compl_nodes = Instrument.counter "logic.complement_nodes"
let c_unate_reductions = Instrument.counter "logic.unate_reductions"
let c_component_reductions = Instrument.counter "logic.component_reductions"
let t_taut = Instrument.timer "logic.tautology"
let t_compl = Instrument.timer "logic.complement"
let h_taut_depth = Instrument.histogram "logic.tautology_depth"
let h_compl_depth = Instrument.histogram "logic.complement_depth"

let union a b =
  assert (Domain.equal a.dom b.dom);
  { a with cubes = a.cubes @ b.cubes }

let intersect a b =
  assert (Domain.equal a.dom b.dom);
  let cubes =
    List.concat_map
      (fun ca -> List.filter_map (fun cb -> Cube.inter a.dom ca cb) b.cubes)
      a.cubes
  in
  { a with cubes }

let cofactor t ~wrt =
  Instrument.bump c_cofactor_calls;
  let not_wrt = Bitvec.complement wrt in
  let cubes =
    List.filter_map
      (fun c -> if Cube.intersects t.dom c wrt then Some (Bitvec.union c not_wrt) else None)
      t.cubes
  in
  { t with cubes }

let single_cube_containment t =
  (* Keep a cube only if no *other* kept-or-later cube contains it; on
     equal cubes keep the first occurrence. *)
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let covered =
          List.exists (fun k -> Cube.contains k c) kept
          || List.exists (fun r -> Cube.contains r c && not (Cube.equal r c)) rest
        in
        if covered then loop kept rest else loop (c :: kept) rest
  in
  { t with cubes = loop [] t.cubes }

(* --- Unate-aware recursive kernel -------------------------------------- *)

(* Cofactor a cube list against the literal (var v = part p), keeping only
   the cubes asserting part p and raising their field of v to full. *)
let cofactor_literal dom cubes v p =
  Instrument.bump c_cofactor_calls;
  let bit = Domain.offset dom v + p in
  let pw = bit / Bitvec.bits_per_word and pm = 1 lsl (bit mod Bitvec.bits_per_word) in
  let ws = Domain.var_words dom v and ms = Domain.var_masks dom v in
  List.filter_map
    (fun c ->
      if Bitvec.word c pw land pm <> 0 then begin
        let c' = Bitvec.copy c in
        for i = 0 to Array.length ws - 1 do
          Bitvec.or_word c' ws.(i) ms.(i)
        done;
        Some c'
      end
      else None)
    cubes

(* Per-node statistics, computed in one pass: [nfull.(v)] is the number
   of cubes whose field of variable [v] is full. *)
type node_stats = { ncubes : int; nfull : int array }

let node_stats dom cubes =
  let nv = Domain.num_vars dom in
  let nfull = Array.make nv 0 in
  let ncubes = ref 0 in
  List.iter
    (fun c ->
      incr ncubes;
      for v = 0 to nv - 1 do
        if Cube.var_full dom c v then nfull.(v) <- nfull.(v) + 1
      done)
    cubes;
  { ncubes = !ncubes; nfull }

(* The most binate variable — active (non-full) in the most cubes — drives
   Shannon-style splitting; ties go to the lowest variable index. *)
let most_binate_of_stats dom st =
  let nv = Domain.num_vars dom in
  let best = ref (-1) and best_active = ref 0 in
  for v = 0 to nv - 1 do
    let active = st.ncubes - st.nfull.(v) in
    if active > !best_active then begin
      best := v;
      best_active := active
    end
  done;
  if !best_active = 0 then None else Some !best

(* Partition cubes into groups touching disjoint sets of active variables
   (union-find over variables). Callers must have dealt with full cubes:
   every cube here needs at least one non-full field. *)
let components dom cubes =
  let nv = Domain.num_vars dom in
  let parent = Array.init nv (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let link a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  let anchors =
    List.map
      (fun c ->
        let a = ref (-1) in
        for v = 0 to nv - 1 do
          if not (Cube.var_full dom c v) then if !a < 0 then a := v else link !a v
        done;
        assert (!a >= 0);
        !a)
      cubes
  in
  let tbl = Hashtbl.create 8 in
  List.iter2
    (fun c a ->
      let r = find a in
      Hashtbl.replace tbl r (c :: (try Hashtbl.find tbl r with Not_found -> [])))
    cubes anchors;
  Hashtbl.fold (fun _ l acc -> List.rev l :: acc) tbl []

(* Parts of [v] asserted by exactly the same cubes have identical
   cofactors; group them so each distinct cofactor recurses only once
   (frequent for the wide multiple-valued output variable of encoded
   PLAs, where many columns repeat). *)
let part_groups dom cubes v =
  let off = Domain.offset dom v and sz = Domain.size dom v in
  let key p =
    let b = Buffer.create 32 in
    List.iter (fun c -> Buffer.add_char b (if Bitvec.get c (off + p) then '1' else '0')) cubes;
    Buffer.contents b
  in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  for p = sz - 1 downto 0 do
    let k = key p in
    match Hashtbl.find_opt tbl k with
    | Some l -> Hashtbl.replace tbl k (p :: l)
    | None ->
        Hashtbl.add tbl k [ p ];
        order := k :: !order
  done;
  List.map (fun k -> Hashtbl.find tbl k) !order

(* Space size for the minterm-count cutoff; a domain too big for an int
   disables the cutoff (max_int can never exceed a clamped sum). *)
let space_size dom =
  match Domain.num_minterms dom with n -> n | exception Invalid_argument _ -> max_int

(* The tautology recursion analyses each node in ONE pass over the cubes.
   Per cube and variable, [range_cardinal] yields at once: fullness (card
   = size, counted into [nfull]), the cube's minterm count (product of
   cardinalities, saturated at [space]), and — for non-full fields — an OR
   accumulated into [weak] plus a union-find link for the component
   partition. From those four byproducts the node applies, in order:

   - full-cube shortcut: some cube covers everything, tautology;
   - minterm cutoff: even counting overlaps with multiplicity the cubes
     hold fewer than [space] minterms, so some minterm is uncovered;
   - unate reduction: a part of [v] missing from [weak] is asserted only
     by cubes full in [v]; cofactoring against it erases every cube
     active in [v], so the answer is that of the full-field sub-cover;
   - component reduction: cube groups over disjoint variable sets cover
     the space iff one group does on its own;
   - Shannon split on the most binate variable, with identical columns
     of a multiple-valued variable recursed once and thin cofactors
     visited first (they are the likely non-tautologies). *)
let rec taut_fast dom cubes depth space =
  Instrument.bump c_taut_nodes;
  Instrument.observe h_taut_depth depth;
  match cubes with
  | [] -> false
  | [ c ] -> Bitvec.is_full c
  | _ ->
      let nv = Domain.num_vars dom in
      let nfull = Array.make nv 0 in
      let nwords = ((Domain.width dom - 1) / Bitvec.bits_per_word) + 1 in
      let weak = Array.make nwords 0 in
      let parent = Array.init nv (fun i -> i) in
      let rec find i = if parent.(i) = i then i else find parent.(i) in
      let link a b =
        let ra = find a and rb = find b in
        if ra <> rb then parent.(ra) <- rb
      in
      let vw = Domain.var_word1 dom and vm = Domain.var_mask1 dom in
      let ncubes = ref 0 and minterms = ref 0 and has_full = ref false in
      let anchors =
        List.map
          (fun c ->
            incr ncubes;
            let cube_minterms = ref 1 and anchor = ref (-1) in
            for v = 0 to nv - 1 do
              let w = vw.(v) in
              let card =
                if w >= 0 then Bitvec.popcount_word (Bitvec.word c w land vm.(v))
                else Cube.var_cardinal dom c v
              in
              if card = Domain.size dom v then nfull.(v) <- nfull.(v) + 1
              else begin
                (if w >= 0 then weak.(w) <- weak.(w) lor (Bitvec.word c w land vm.(v))
                 else
                   let ws = Domain.var_words dom v and ms = Domain.var_masks dom v in
                   for i = 0 to Array.length ws - 1 do
                     weak.(ws.(i)) <- weak.(ws.(i)) lor (Bitvec.word c ws.(i) land ms.(i))
                   done);
                if !anchor < 0 then anchor := v else link !anchor v
              end;
              if !cube_minterms < space then
                cube_minterms :=
                  (if card = 0 then 0
                   else if !cube_minterms > space / card then space
                   else !cube_minterms * card)
            done;
            if !anchor < 0 then has_full := true;
            (* Saturating add: both operands are <= space <= max_int, so
               the sum wraps at most once — a negative result means the
               true sum exceeded max_int and must clamp to [space]. *)
            (let s = !minterms + min space !cube_minterms in
             minterms := if s < 0 then space else min space s);
            !anchor)
          cubes
      in
      let ncubes = !ncubes in
      if !has_full then true
      else if !minterms < space then false
      else begin
        let weak_full v =
          let ws = Domain.var_words dom v and ms = Domain.var_masks dom v in
          let n = Array.length ws in
          let rec loop i = i = n || (weak.(ws.(i)) land ms.(i) = ms.(i) && loop (i + 1)) in
          loop 0
        in
        let rec unate v =
          if v = nv then None
          else if nfull.(v) < ncubes && not (weak_full v) then Some v
          else unate (v + 1)
        in
        match unate 0 with
        | Some v ->
            Instrument.bump c_unate_reductions;
            nfull.(v) > 0
            && taut_fast dom (List.filter (fun c -> Cube.var_full dom c v) cubes) (depth + 1) space
        | None ->
            let root0 = find (List.hd anchors) in
            if List.exists (fun a -> find a <> root0) anchors then begin
              Instrument.bump c_component_reductions;
              let tbl = Hashtbl.create 8 in
              List.iter2
                (fun c a ->
                  let r = find a in
                  Hashtbl.replace tbl r (c :: (try Hashtbl.find tbl r with Not_found -> [])))
                cubes anchors;
              let comps = Hashtbl.fold (fun _ l acc -> List.rev l :: acc) tbl [] in
              List.exists (fun comp -> taut_fast dom comp (depth + 1) space) comps
            end
            else begin
              let best = ref (-1) and best_active = ref 0 in
              for v = 0 to nv - 1 do
                let active = ncubes - nfull.(v) in
                if active > !best_active then begin
                  best := v;
                  best_active := active
                end
              done;
              (* best >= 0: a cube full in every variable would have set
                 has_full above. *)
              let v = !best in
              let groups =
                if Domain.size dom v <= 2 then [ [ 0 ]; [ 1 ] ] else part_groups dom cubes v
              in
              let cofs =
                List.map (fun parts -> cofactor_literal dom cubes v (List.hd parts)) groups
              in
              let cofs = List.sort (fun a b -> compare (List.length a) (List.length b)) cofs in
              List.for_all (fun cf -> taut_fast dom cf (depth + 1) space) cofs
            end
      end

let tautology t =
  Instrument.bump c_taut_calls;
  Instrument.time t_taut (fun () -> taut_fast t.dom t.cubes 0 (space_size t.dom))

let covers_cube t c =
  if Cube.is_empty t.dom c then true
  else begin
    Instrument.bump c_taut_calls;
    Instrument.time t_taut (fun () ->
        taut_fast t.dom (cofactor t ~wrt:c).cubes 0 (space_size t.dom))
  end

let covers a b = List.for_all (fun c -> covers_cube a c) b.cubes

let equivalent a b = covers a b && covers b a

(* Complement of a single cube: one cube per variable with a non-full
   field, full everywhere else and the field negated. *)
let complement_cube dom c =
  let n = Domain.num_vars dom in
  let acc = ref [] in
  for v = 0 to n - 1 do
    if not (Cube.var_full dom c v) then begin
      let off = Domain.offset dom v in
      let sz = Domain.size dom v in
      let r = Bitvec.full (Domain.width dom) in
      for p = 0 to sz - 1 do
        if Bitvec.get c (off + p) then Bitvec.clear r (off + p)
      done;
      if not (Bitvec.range_empty r off sz) then acc := r :: !acc
    end
  done;
  !acc

module BvTbl = Hashtbl.Make (struct
  type t = Bitvec.t

  let equal = Bitvec.equal
  let hash = Bitvec.hash
end)

(* Merge cubes that are identical outside variable [v] by unioning their
   [v] fields; cubes whose union becomes a full field stay as such. *)
let merge_on_var dom cubes v =
  let off = Domain.offset dom v in
  let sz = Domain.size dom v in
  let tbl = BvTbl.create 31 in
  List.iter
    (fun c ->
      let key = Bitvec.copy c in
      Bitvec.clear_range key off sz;
      match BvTbl.find_opt tbl key with
      | None -> BvTbl.add tbl key (Bitvec.copy c)
      | Some existing -> Bitvec.union_into existing c)
    cubes;
  BvTbl.fold (fun _ c acc -> c :: acc) tbl []

let scc_cubes dom cubes = (single_cube_containment { dom; cubes }).cubes

let rec compl_fast dom cubes depth =
  Instrument.bump c_compl_nodes;
  Instrument.observe h_compl_depth depth;
  match cubes with
  | [] -> [ Bitvec.full (Domain.width dom) ]
  | _ when List.exists Bitvec.is_full cubes -> []
  | [ c ] -> complement_cube dom c
  | _ -> (
      match components dom cubes with
      | (_ :: _ :: _) as comps ->
          (* ¬(F₁ ∪ F₂) = ¬F₁ ∩ ¬F₂, and for variable-disjoint components
             every pairwise cube intersection is non-empty. *)
          Instrument.bump c_component_reductions;
          List.fold_left
            (fun acc comp ->
              let cc = compl_fast dom comp (depth + 1) in
              match acc with
              | None -> Some cc
              | Some acc ->
                  Some
                    (scc_cubes dom
                       (List.concat_map
                          (fun a -> List.filter_map (fun b -> Cube.inter dom a b) cc)
                          acc)))
            None comps
          |> Option.value ~default:[ Bitvec.full (Domain.width dom) ]
      | _ -> (
          let st = node_stats dom cubes in
          match most_binate_of_stats dom st with
          | None -> [] (* some cube is full: handled above; defensive *)
          | Some v ->
              let off = Domain.offset dom v and sz = Domain.size dom v in
              let groups =
                if sz <= 2 then [ [ 0 ]; [ 1 ] ] else part_groups dom cubes v
              in
              let branches = ref [] in
              List.iter
                (fun parts ->
                  let sub = compl_fast dom (cofactor_literal dom cubes v (List.hd parts)) (depth + 1) in
                  (* AND each result cube with the literal (v ∈ parts). *)
                  List.iter
                    (fun c ->
                      let c' = Bitvec.copy c in
                      Bitvec.clear_range c' off sz;
                      List.iter (fun p -> Bitvec.set c' (off + p)) parts;
                      branches := c' :: !branches)
                    sub)
                groups;
              merge_on_var dom !branches v))

let complement t =
  Instrument.bump c_compl_calls;
  Instrument.time t_compl (fun () ->
      single_cube_containment { t with cubes = compl_fast t.dom t.cubes 0 })

let complement_within t ~space =
  Instrument.bump c_compl_calls;
  Instrument.time t_compl (fun () ->
      let relative = cofactor t ~wrt:space in
      let comp = compl_fast t.dom relative.cubes 0 in
      let cubes = List.filter_map (fun c -> Cube.inter t.dom c space) comp in
      single_cube_containment { t with cubes })

let supercube t =
  match t.cubes with
  | [] -> None
  | c :: rest -> Some (List.fold_left Cube.supercube c rest)

let contains_minterm t values =
  let m = Cube.of_minterm t.dom values in
  List.exists (fun c -> Cube.contains c m) t.cubes

let rec count_rec dom cubes space_size =
  match cubes with
  | [] -> 0
  | _ when List.exists Bitvec.is_full cubes -> space_size
  | _ -> (
      let st = node_stats dom cubes in
      match most_binate_of_stats dom st with
      | None -> space_size
      | Some v ->
          let sz = Domain.size dom v in
          let total = ref 0 in
          for p = 0 to sz - 1 do
            total := !total + count_rec dom (cofactor_literal dom cubes v p) (space_size / sz)
          done;
          !total)

let num_minterms t = count_rec t.dom t.cubes (Domain.num_minterms t.dom)

(* --- Naive reference kernel -------------------------------------------- *)

(* The seed's straight-line recursions, retained verbatim (minus
   instrumentation) as the oracle for the randomized differential suite
   in test/test_espresso_differential.ml: the fast kernel above must
   agree with these on every generated cover. *)
module Naive = struct
  let most_binate_var dom cubes =
    let n = Domain.num_vars dom in
    let best = ref (-1) and best_count = ref 0 in
    for v = 0 to n - 1 do
      let count =
        List.fold_left (fun acc c -> if Cube.var_full dom c v then acc else acc + 1) 0 cubes
      in
      if count > !best_count then begin
        best := v;
        best_count := count
      end
    done;
    if !best_count = 0 then None else Some !best

  let cofactor_literal dom cubes v p =
    let off = Domain.offset dom v in
    let sz = Domain.size dom v in
    List.filter_map
      (fun c ->
        if Bitvec.get c (off + p) then begin
          let c' = Bitvec.copy c in
          Bitvec.set_range c' off sz;
          Some c'
        end
        else None)
      cubes

  let rec taut_rec dom cubes =
    match cubes with
    | [] -> false
    | _ when List.exists Bitvec.is_full cubes -> true
    | _ -> (
        match most_binate_var dom cubes with
        | None -> false
        | Some v ->
            let sz = Domain.size dom v in
            let rec parts p =
              p = sz || (taut_rec dom (cofactor_literal dom cubes v p) && parts (p + 1))
            in
            parts 0)

  let tautology t = taut_rec t.dom t.cubes

  let merge_on_var dom cubes v =
    let off = Domain.offset dom v in
    let sz = Domain.size dom v in
    let tbl = Hashtbl.create 31 in
    List.iter
      (fun c ->
        let key = Bitvec.copy c in
        Bitvec.clear_range key off sz;
        let key = Bitvec.to_string key in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.add tbl key (Bitvec.copy c)
        | Some existing -> Bitvec.union_into existing c)
      cubes;
    Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

  let rec compl_rec dom cubes =
    match cubes with
    | [] -> [ Bitvec.full (Domain.width dom) ]
    | _ when List.exists Bitvec.is_full cubes -> []
    | [ c ] -> complement_cube dom c
    | _ -> (
        match most_binate_var dom cubes with
        | None -> []
        | Some v ->
            let sz = Domain.size dom v in
            let off = Domain.offset dom v in
            let branches = ref [] in
            for p = 0 to sz - 1 do
              let sub = compl_rec dom (cofactor_literal dom cubes v p) in
              List.iter
                (fun c ->
                  let c' = Bitvec.copy c in
                  Bitvec.clear_range c' off sz;
                  Bitvec.set c' (off + p);
                  branches := c' :: !branches)
                sub
            done;
            merge_on_var dom !branches v)

  let complement t = single_cube_containment { t with cubes = compl_rec t.dom t.cubes }
end

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun c -> Format.fprintf ppf "%a@," (Cube.pp t.dom) c) t.cubes;
  Format.fprintf ppf "@]"
