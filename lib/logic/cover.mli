(** Covers (sets of cubes) of multiple-valued logic functions, with the
    classic unate-recursive operations: cofactor, tautology, complement,
    containment.

    A cover represents the union of the minterm sets of its cubes.
    Multiple-output functions are modelled by making the output a final
    multiple-valued variable of the domain, so that every operation here
    (including complement and tautology) treats the output uniformly as
    one more dimension of the characteristic function. *)

type t = { dom : Domain.t; cubes : Cube.t list }

(** [make d cubes] builds a cover, dropping empty cubes. *)
val make : Domain.t -> Cube.t list -> t

(** [empty d] is the empty cover (the constant-false function). *)
val empty : Domain.t -> t

(** [universe d] is the single-full-cube cover (constant true). *)
val universe : Domain.t -> t

(** [size t] is the number of cubes. *)
val size : t -> int

(** [literal_cost t] is the total PLA literal cost of the cubes. *)
val literal_cost : t -> int

(** [union a b] is the cover containing the cubes of both. *)
val union : t -> t -> t

(** [intersect a b] is the pairwise cube intersection of [a] and [b]. *)
val intersect : t -> t -> t

(** [cofactor t ~wrt] is the cover cofactor against cube [wrt]: the cubes
    intersecting [wrt], each cofactored. The result represents the
    function restricted to the subspace of [wrt]. *)
val cofactor : t -> wrt:Cube.t -> t

(** [single_cube_containment t] removes every cube contained in another
    cube of [t]. *)
val single_cube_containment : t -> t

(** [tautology t] decides whether [t] covers the whole space. *)
val tautology : t -> bool

(** [covers_cube t c] decides whether cube [c]'s minterms are all covered
    by [t]. *)
val covers_cube : t -> Cube.t -> bool

(** [covers a b] decides whether every minterm of [b] is in [a]. *)
val covers : t -> t -> bool

(** [equivalent a b] decides extensional equality of the two functions. *)
val equivalent : t -> t -> bool

(** [complement t] is a cover of the complement of [t] w.r.t. the whole
    space, computed by unate-style recursion with merging. *)
val complement : t -> t

(** [complement_within t ~space] is a cover of [space AND NOT t]. *)
val complement_within : t -> space:Cube.t -> t

(** [supercube t] is the smallest single cube containing every cube,
    or [None] for the empty cover. *)
val supercube : t -> Cube.t option

(** [contains_minterm t m] evaluates the function at minterm [m] (one
    value per variable). *)
val contains_minterm : t -> int array -> bool

(** [num_minterms t] is the exact number of minterms covered (inclusion-
    exclusion-free: computed by recursive disjoint decomposition; intended
    for small spaces such as test domains). *)
val num_minterms : t -> int

(** The seed's straight-line recursive kernel, retained as the oracle for
    the randomized differential suite: the fast unate-aware operations
    above must agree with these on every cover. Slow — test use only. *)
module Naive : sig
  val tautology : t -> bool
  val complement : t -> t
end

val pp : Format.formatter -> t -> unit
