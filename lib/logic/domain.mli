(** Domains of multiple-valued logic functions.

    A domain is an ordered list of multiple-valued variables; variable [v]
    has [size v] parts (possible values). Binary variables are
    two-part variables. In positional cube notation every cube is a bit
    vector of [width] bits, where variable [v] owns the bit range
    [offset v .. offset v + size v - 1]. *)

type t

(** [create sizes] is the domain with [Array.length sizes] variables,
    variable [v] having [sizes.(v)] parts. Every size must be >= 1. *)
val create : int array -> t

(** [num_vars d] is the number of variables. *)
val num_vars : t -> int

(** [size d v] is the number of parts of variable [v]. *)
val size : t -> int -> int

(** [offset d v] is the first bit of variable [v] in the positional
    representation. *)
val offset : t -> int -> int

(** [width d] is the total number of bits of a cube over [d]. *)
val width : t -> int

(** [var_words d v] and [var_masks d v] give the word-level layout of
    variable [v]'s field over [Bitvec]'s words: the field is the union
    over [i] of the bits [var_masks d v .(i)] of word [var_words d v
    .(i)]. Precomputed at [create] so that the innermost cube loops need
    no division; the returned arrays are shared and must not be
    mutated. *)
val var_words : t -> int -> int array

val var_masks : t -> int -> int array

(** [var_word1 d] and [var_mask1 d] are the flat single-word fast path:
    when variable [v]'s field lies in one word, [var_word1 d .(v)] is
    that word's index and [var_mask1 d .(v)] its mask; a field that
    straddles a word boundary has [var_word1 d .(v) = -1] and callers
    fall back to [var_words]/[var_masks]. Shared arrays — do not
    mutate. *)
val var_word1 : t -> int array

val var_mask1 : t -> int array

(** [equal a b] holds iff the two domains have identical variable sizes. *)
val equal : t -> t -> bool

(** [num_minterms d] is the number of points of the product space,
    [prod_v size d v]. Raises [Invalid_argument] on overflow. *)
val num_minterms : t -> int

val pp : Format.formatter -> t -> unit
