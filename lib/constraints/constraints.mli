(** Encoding constraints for state assignment.

    An {e input constraint} (Section 2.2) is a group of states that some
    minimized symbolic implicant asserts together: in a compatible Boolean
    representation the codes of exactly those states must span a face of
    the encoding hypercube containing no other state's code. Its weight is
    the number of implicants asserting the group.

    An {e output (covering) constraint} (Section VI) [u > v] requires the
    code of [u] to cover bitwise the code of [v], strictly. *)

open Logic

type input_constraint = { states : Bitvec.t; weight : int }

(** [face_of_states encoding states] is the supercube (as a pair
    [(mask, value)] over code bits: [mask] has a 1 where the face is
    specified) of the codes of [states]. Raises [Invalid_argument] on an
    empty state set. *)
val face_of_states : Encoding.t -> Bitvec.t -> int * int

(** [satisfied encoding ic] holds iff the face spanned by the codes of
    [ic]'s states contains no code of a state outside the group. *)
val satisfied : Encoding.t -> Bitvec.t -> bool

(** [satisfied_weight encoding ics] is the total weight of satisfied
    constraints. *)
val satisfied_weight : Encoding.t -> input_constraint list -> int

(** [num_satisfied encoding ics] counts satisfied constraints. *)
val num_satisfied : Encoding.t -> input_constraint list -> int

(** [of_symbolic sym] extracts the weighted input constraints of a
    machine (an exhausted [budget] yields the constraints of a
    less-minimized cover): minimize the symbolic cover with ESPRESSO-MV and collect the
    non-trivial present-state groups, merging duplicates. Groups of
    cardinality < 2 or covering all states are trivially satisfiable and
    are dropped. *)
val of_symbolic : ?budget:Budget.t -> Symbolic.t -> input_constraint list

(** [of_cover sym cover] extracts the weighted input constraints of an
    already-minimized symbolic [cover]. *)
val of_cover : Symbolic.t -> Cover.t -> input_constraint list

type output_constraint = { covering : int; covered : int }

(** [oc_satisfied encoding oc] holds iff
    [code covering OR code covered = code covering] and the two codes
    differ. *)
val oc_satisfied : Encoding.t -> output_constraint -> bool

(** A cluster of output constraints: all edges into one next state, with
    the product-term gain [oc_weight] obtained when the whole cluster
    (and its companion input constraints) is satisfied. *)
type oc_cluster = {
  next_state : int;
  edges : output_constraint list;
  oc_weight : int;
  companion : Bitvec.t list;  (** companion input constraint groups [IC_i] *)
}

(** [cluster_satisfied encoding cl] holds iff every edge of the cluster
    is satisfied. *)
val cluster_satisfied : Encoding.t -> oc_cluster -> bool

val pp_input_constraint : Format.formatter -> input_constraint -> unit
val pp_output_constraint : Format.formatter -> output_constraint -> unit
