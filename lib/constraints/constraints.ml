open Logic

type input_constraint = { states : Bitvec.t; weight : int }

let face_of_states (e : Encoding.t) states =
  match Bitvec.first_set states with
  | None -> invalid_arg "Constraints.face_of_states: empty constraint"
  | Some first ->
      let conj = ref (Encoding.code e first) and disj = ref (Encoding.code e first) in
      Bitvec.iter
        (fun s ->
          conj := !conj land Encoding.code e s;
          disj := !disj lor Encoding.code e s)
        states;
      (* A bit is specified where every code agrees. *)
      let all = (1 lsl e.Encoding.nbits) - 1 in
      let mask = all land lnot (!conj lxor !disj) in
      (mask, !conj land mask)

let satisfied (e : Encoding.t) states =
  let mask, value = face_of_states e states in
  let n = Encoding.num_states e in
  let ok = ref true in
  for s = 0 to n - 1 do
    if (not (Bitvec.get states s)) && Encoding.code e s land mask = value then ok := false
  done;
  !ok

let satisfied_weight e ics =
  List.fold_left (fun acc ic -> if satisfied e ic.states then acc + ic.weight else acc) 0 ics

let num_satisfied e ics =
  List.fold_left (fun acc ic -> if satisfied e ic.states then acc + 1 else acc) 0 ics

let of_cover (sym : Symbolic.t) (cover : Cover.t) =
  let ns = Symbolic.num_states sym in
  let tbl = Hashtbl.create 17 in
  List.iter
    (fun c ->
      let group = Symbolic.present_states sym c in
      let card = Bitvec.cardinal group in
      if card >= 2 && card < ns then
        let key = Bitvec.to_string group in
        match Hashtbl.find_opt tbl key with
        | Some ic -> Hashtbl.replace tbl key { ic with weight = ic.weight + 1 }
        | None -> Hashtbl.add tbl key { states = group; weight = 1 })
    cover.Cover.cubes;
  Hashtbl.fold (fun _ ic acc -> ic :: acc) tbl []
  |> List.sort (fun a b ->
         let c = compare b.weight a.weight in
         if c <> 0 then c else Bitvec.compare a.states b.states)

let of_symbolic ?budget sym = of_cover sym (Symbolic.minimize ?budget sym)

type output_constraint = { covering : int; covered : int }

let oc_satisfied (e : Encoding.t) oc =
  let cu = Encoding.code e oc.covering and cv = Encoding.code e oc.covered in
  cu lor cv = cu && cu <> cv

type oc_cluster = {
  next_state : int;
  edges : output_constraint list;
  oc_weight : int;
  companion : Bitvec.t list;
}

let cluster_satisfied e cl = List.for_all (oc_satisfied e) cl.edges

let pp_input_constraint ppf ic =
  Format.fprintf ppf "%a (w=%d)" Bitvec.pp ic.states ic.weight

let pp_output_constraint ppf oc = Format.fprintf ppf "%d > %d" oc.covering oc.covered
