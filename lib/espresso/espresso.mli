(** A two-level multiple-valued logic minimizer in the ESPRESSO style.

    Implements the classic iteration
    {[ EXPAND ; IRREDUNDANT ; loop (REDUCE ; EXPAND ; IRREDUNDANT) ]}
    over covers with an explicit don't-care set. Multiple-output functions
    are handled by the characteristic-function encoding of {!Logic.Cover}
    (the output is the last multiple-valued variable of the domain), which
    is exactly ESPRESSO-MV's positional treatment of the output part.

    This is the substrate the NOVA paper calls ESPRESSO / ESPRESSO-MV. *)

open Logic

(** [off_set ~on ~dc] is the complement of [on OR dc]. *)
val off_set : on:Cover.t -> dc:Cover.t -> Cover.t

(** [expand cover ~off] makes every cube prime against the off-set [off]
    and removes cubes covered by the expansion of another, returning a
    prime cover of the same function (assuming [cover] was disjoint from
    [off]). *)
val expand : ?budget:Budget.t -> Cover.t -> off:Cover.t -> Cover.t

(** [irredundant cover ~dc] greedily removes cubes covered by the rest of
    the cover plus the don't-care set. *)
val irredundant : ?budget:Budget.t -> Cover.t -> dc:Cover.t -> Cover.t

(** [reduce cover ~dc] replaces each cube by the smallest cube covering
    the minterms no other cube (nor [dc]) covers, dropping cubes that
    become empty. *)
val reduce : ?budget:Budget.t -> Cover.t -> dc:Cover.t -> Cover.t

(** [essential_primes cover ~dc] returns the cubes of [cover] covering
    some minterm no other cube (nor [dc]) covers. Essential primes belong
    to every prime irredundant cover, so the minimization loop can set
    them aside (classic ESPRESSO ESSENTIAL_PRIMES step). *)
val essential_primes : ?budget:Budget.t -> Cover.t -> dc:Cover.t -> Cover.t

(** [minimize ~dc on] is a minimal cover [g] with
    [on <= g <= on OR dc] (set inclusion of the functions). With
    [budget], every per-cube step of the expand/irredundant/reduce loop
    pre-checks it: an exhausted budget (work cap, wall-clock deadline or
    cancellation) interrupts the iteration and the best valid cover found
    so far is returned — degrading, at the limit, to single-cube
    containment of the on-set. *)
val minimize : ?budget:Budget.t -> dc:Cover.t -> Cover.t -> Cover.t

(** [minimize_with_off ~dc ~off on] is [minimize] with a precomputed
    off-set (must equal the complement of [on OR dc] on pain of an
    incorrect result). *)
val minimize_with_off :
  ?budget:Budget.t -> dc:Cover.t -> off:Cover.t -> Cover.t -> Cover.t

(** [minimize_care ~off on] minimizes when only the on-set and off-set
    are explicit and the don't-care set is implicitly everything else:
    the result covers [on], avoids [off], and may use any other minterm.
    Avoids computing the (possibly huge) complement of [on OR off] — the
    work-horse of the per-next-state minimizations inside symbolic
    minimization (Section 6.1). *)
val minimize_care : ?budget:Budget.t -> off:Cover.t -> Cover.t -> Cover.t
