open Logic

(* Instrumentation probes: phase wall-clock timers and iteration
   counters, all no-ops unless Instrument.enable (). *)
let t_offset = Instrument.timer "espresso.off_set"
let t_expand = Instrument.timer "espresso.expand"
let t_irredundant = Instrument.timer "espresso.irredundant"
let t_reduce = Instrument.timer "espresso.reduce"
let t_essential = Instrument.timer "espresso.essential_primes"
let t_minimize = Instrument.timer "espresso.minimize"
let c_expand_passes = Instrument.counter "espresso.expand_passes"
let c_expand_raises = Instrument.counter "espresso.expand_raised_bits"
let c_reduce_iterations = Instrument.counter "espresso.reduce_iterations"
let c_minimize_calls = Instrument.counter "espresso.minimize_calls"

let off_set ~on ~dc = Instrument.time t_offset (fun () -> Cover.complement (Cover.union on dc))

(* Trace span around one minimizer phase, recording the cover size going
   in (Begin) and coming out (End). Guarded so the off path computes no
   sizes and allocates nothing. *)
let traced name (cover : Cover.t) f =
  if not (Trace.enabled ()) then f ()
  else
    Trace.with_span_result ~attrs:[ ("cubes_in", Trace.Int (Cover.size cover)) ] name
      (fun () ->
        let r = f () in
        (r, [ ("cubes_out", Trace.Int (Cover.size r)) ]))

(* Budget plumbing: [None] (the default) compiles to the historical
   unbudgeted behavior; with a budget, every per-cube step of
   expand/irredundant/reduce pre-checks it, so a deadline interrupts the
   minimizer between cube operations and the loop returns the best valid
   cover found so far. *)
let drained = function None -> false | Some b -> Budget.exhausted b
let charge = function None -> () | Some b -> ignore (Budget.tick b)

(* A cube may be raised at bit [i] iff the raised cube still intersects no
   off-set cube. Intersection with the off-set is the only validity
   criterion since the off-set is explicit. *)
let valid dom c off = not (List.exists (fun o -> Cube.intersects dom c o) off)

(* Expand one cube to a prime: repeatedly raise bits, preferring bits set
   in many of the not-yet-covered companion cubes so that the expansion
   swallows as much of the rest of the cover as possible. *)
let expand_cube dom c ~off ~companions =
  let width = Domain.width dom in
  let cur = Bitvec.copy c in
  (* The companions never change within one expansion, so each candidate
     bit is scored once up front; a raised bit enables re-examining the
     earlier rejects, so passes repeat only while the cube still grows. *)
  let score = Array.make width 0 in
  List.iter (fun comp -> Bitvec.iter (fun i -> score.(i) <- score.(i) + 1) comp) companions;
  let candidates =
    List.init width (fun i -> i)
    |> List.filter (fun i -> not (Bitvec.get cur i))
    |> List.sort (fun a b -> compare score.(b) score.(a))
  in
  let improved = ref true in
  while !improved do
    improved := false;
    Instrument.bump c_expand_passes;
    List.iter
      (fun i ->
        if not (Bitvec.get cur i) then begin
          Bitvec.set cur i;
          if valid dom cur off then begin
            improved := true;
            Instrument.bump c_expand_raises
          end
          else Bitvec.clear cur i
        end)
      candidates
  done;
  cur

let expand ?budget (cover : Cover.t) ~(off : Cover.t) =
  Instrument.time t_expand @@ fun () ->
  traced "espresso.expand" cover @@ fun () ->
  let dom = cover.Cover.dom in
  (* Fewest-literal (largest) cubes first: their expansions swallow the
     most companions, shrinking the list early. *)
  let ordered =
    List.sort (fun a b -> compare (Cube.num_literal_bits dom a) (Cube.num_literal_bits dom b)) cover.Cover.cubes
  in
  let rec loop acc = function
    | [] -> List.rev acc
    | c :: rest ->
        (* Out of budget: the remaining cubes stay unexpanded — still a
           valid cover of the same function, just not prime. *)
        if drained budget then List.rev_append acc (c :: rest)
        else if List.exists (fun e -> Cube.contains e c) acc then loop acc rest
        else begin
          charge budget;
          let e = expand_cube dom c ~off:off.Cover.cubes ~companions:rest in
          let rest = List.filter (fun r -> not (Cube.contains e r)) rest in
          loop (e :: acc) rest
        end
  in
  Cover.make dom (loop [] ordered)

let irredundant ?budget (cover : Cover.t) ~(dc : Cover.t) =
  Instrument.time t_irredundant @@ fun () ->
  traced "espresso.irredundant" cover @@ fun () ->
  let dom = cover.Cover.dom in
  (* Try to remove big cubes last: small, specific cubes are more likely
     redundant leftovers of expansion. *)
  let ordered =
    List.sort (fun a b -> compare (Cube.num_minterms dom a) (Cube.num_minterms dom b)) cover.Cover.cubes
  in
  let redundant kept pending c =
    let rest = Cover.make dom (kept @ pending @ dc.Cover.cubes) in
    Cover.covers_cube rest c
  in
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: pending ->
        (* Out of budget: keep the rest — possibly redundant, still a
           cover. *)
        if drained budget then List.rev_append kept (c :: pending)
        else begin
          charge budget;
          if redundant kept pending c then loop kept pending else loop (c :: kept) pending
        end
  in
  Cover.make dom (loop [] ordered)

let reduce ?budget (cover : Cover.t) ~(dc : Cover.t) =
  Instrument.time t_reduce @@ fun () ->
  traced "espresso.reduce" cover @@ fun () ->
  let dom = cover.Cover.dom in
  (* Largest cubes first, per ESPRESSO: reducing big cubes frees room for
     subsequent reductions. *)
  let ordered =
    List.sort (fun a b -> compare (Cube.num_minterms dom b) (Cube.num_minterms dom a)) cover.Cover.cubes
  in
  let rec loop done_ = function
    | [] -> List.rev done_
    | c :: pending ->
        (* Out of budget: the remaining cubes stay unreduced (each
           reduction is independently sound, so a partial pass is too). *)
        if drained budget then List.rev_append done_ (c :: pending)
        else begin
          charge budget;
          let rest = Cover.make dom (done_ @ pending @ dc.Cover.cubes) in
          let unique = Cover.complement_within rest ~space:c in
          match Cover.supercube unique with
          | None -> loop done_ pending (* fully covered elsewhere: drop *)
          | Some sc -> loop (sc :: done_) pending
        end
  in
  Cover.make dom (loop [] ordered)

let essential_primes ?budget (cover : Cover.t) ~(dc : Cover.t) =
  Instrument.time t_essential @@ fun () ->
  traced "espresso.essential_primes" cover @@ fun () ->
  let dom = cover.Cover.dom in
  let essential c =
    (* Out of budget: treat the rest as non-essential (the set-aside is
       an optimization, not needed for correctness). *)
    (not (drained budget))
    &&
    let rest =
      Cover.make dom
        (dc.Cover.cubes @ List.filter (fun d -> not (Cube.equal d c)) cover.Cover.cubes)
    in
    charge budget;
    not (Cover.covers_cube rest c)
  in
  Cover.make dom (List.filter essential cover.Cover.cubes)

let cost (c : Cover.t) = (Cover.size c, Cover.literal_cost c)

let minimize_with_off ?budget ~(dc : Cover.t) ~(off : Cover.t) (on : Cover.t) =
  Instrument.bump c_minimize_calls;
  Instrument.time t_minimize @@ fun () ->
  traced "espresso.minimize" on @@ fun () ->
  let dom = on.Cover.dom in
  let f = Cover.single_cube_containment on in
  if f.Cover.cubes = [] || drained budget then f
    (* An exhausted budget degrades to single-cube containment of the
       on-set: always a valid cover, computed in linear passes. *)
  else begin
    let f = expand ?budget f ~off in
    let f = irredundant ?budget f ~dc in
    (* Set the essential primes aside: they are in every solution, so the
       iteration only has to improve the rest. *)
    let ess = essential_primes ?budget f ~dc in
    let f =
      Cover.make dom
        (List.filter (fun c -> not (List.exists (Cube.equal c) ess.Cover.cubes)) f.Cover.cubes)
    in
    let dc = Cover.union dc ess in
    let best = ref f in
    (* The cost of the incumbent only changes when it is replaced: keep
       it hoisted out of the loop instead of recomputing per iteration. *)
    let best_cost = ref (cost f) in
    let continue_ = ref true in
    let iterations = ref 0 in
    while !continue_ && !iterations < 12 && !best.Cover.cubes <> [] && not (drained budget) do
      incr iterations;
      Instrument.bump c_reduce_iterations;
      let f = reduce ?budget !best ~dc in
      let f = expand ?budget f ~off in
      let f = irredundant ?budget f ~dc in
      let fc = cost f in
      (* A budget-truncated pass can leave reduced (non-prime) cubes in
         [f]; the incumbent only ever moves to a cheaper full pass, so
         [best] stays a valid cover either way. *)
      if fc < !best_cost && not (drained budget) then begin
        best := f;
        best_cost := fc
      end
      else continue_ := false
    done;
    Cover.single_cube_containment (Cover.union ess !best)
  end

let minimize ?budget ~dc on = minimize_with_off ?budget ~dc ~off:(off_set ~on ~dc) on

(* --- Care-set driven variant ------------------------------------------ *)

(* With dc = ¬(on ∪ off) implicit, a cube c of a valid cover (disjoint
   from off) is redundant iff the rest covers c ∩ on; and its reduction
   keeps only the part of c ∩ on the rest misses. *)

let irredundant_care ?budget (cover : Cover.t) ~(care : Cover.t) =
  let dom = cover.Cover.dom in
  let ordered =
    List.sort (fun a b -> compare (Cube.num_minterms dom a) (Cube.num_minterms dom b)) cover.Cover.cubes
  in
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: pending ->
        if drained budget then List.rev_append kept (c :: pending)
        else begin
          charge budget;
          let rest = Cover.make dom (kept @ pending) in
          let needed = Cover.intersect (Cover.make dom [ c ]) care in
          if List.for_all (fun d -> Cover.covers_cube rest d) needed.Cover.cubes then
            loop kept pending
          else loop (c :: kept) pending
        end
  in
  Cover.make dom (loop [] ordered)

let reduce_care ?budget (cover : Cover.t) ~(care : Cover.t) =
  let dom = cover.Cover.dom in
  let ordered =
    List.sort (fun a b -> compare (Cube.num_minterms dom b) (Cube.num_minterms dom a)) cover.Cover.cubes
  in
  let rec loop done_ = function
    | [] -> List.rev done_
    | c :: pending ->
        if drained budget then List.rev_append done_ (c :: pending)
        else begin
          charge budget;
          let rest = Cover.make dom (done_ @ pending) in
          let needed = Cover.intersect (Cover.make dom [ c ]) care in
          let unique =
            List.concat_map
              (fun d -> (Cover.complement_within rest ~space:d).Cover.cubes)
              needed.Cover.cubes
          in
          match Cover.supercube (Cover.make dom unique) with
          | None -> loop done_ pending
          | Some sc -> loop (sc :: done_) pending
        end
  in
  Cover.make dom (loop [] ordered)

let minimize_care ?budget ~(off : Cover.t) (on : Cover.t) =
  Instrument.bump c_minimize_calls;
  Instrument.time t_minimize @@ fun () ->
  traced "espresso.minimize" on @@ fun () ->
  let f = Cover.single_cube_containment on in
  if f.Cover.cubes = [] || drained budget then f
  else begin
    let f = expand ?budget f ~off in
    let f = irredundant_care ?budget f ~care:on in
    let best = ref f in
    let best_cost = ref (cost f) in
    let continue_ = ref true in
    let iterations = ref 0 in
    while !continue_ && !iterations < 12 && not (drained budget) do
      incr iterations;
      Instrument.bump c_reduce_iterations;
      let f = reduce_care ?budget !best ~care:on in
      let f = expand ?budget f ~off in
      let f = irredundant_care ?budget f ~care:on in
      let fc = cost f in
      if fc < !best_cost && not (drained budget) then begin
        best := f;
        best_cost := fc
      end
      else continue_ := false
    done;
    !best
  end
