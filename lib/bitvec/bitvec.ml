(* Dense bit vectors over int-array words.

   Invariant: unused bits of the last word are always zero, so [equal],
   [compare], [is_empty] and [hash] can work word-wise without masking. *)

let bits_per_word = Sys.int_size

type t = { len : int; words : int array }

let nwords len = if len = 0 then 0 else (len - 1) / bits_per_word + 1

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; words = Array.make (nwords len) 0 }

let length t = t.len

let copy t = { len = t.len; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of range"

let get t i =
  check_index t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check_index t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check_index t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

(* Mask selecting the valid bits of the last word. *)
let last_mask len =
  let r = len mod bits_per_word in
  if r = 0 then -1 else (1 lsl r) - 1

let full len =
  let t = create len in
  let n = Array.length t.words in
  for w = 0 to n - 1 do
    t.words.(w) <- -1
  done;
  if n > 0 then t.words.(n - 1) <- t.words.(n - 1) land last_mask len;
  t

let check_same a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.len, t.words)

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let is_full t =
  let n = Array.length t.words in
  if n = 0 then true
  else
    let rec loop w =
      if w = n - 1 then t.words.(w) = last_mask t.len
      else t.words.(w) = -1 && loop (w + 1)
    in
    loop 0

let map2 f a b =
  check_same a b;
  { len = a.len; words = Array.init (Array.length a.words) (fun w -> f a.words.(w) b.words.(w)) }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement t =
  let n = Array.length t.words in
  let words = Array.init n (fun w -> lnot t.words.(w)) in
  if n > 0 then words.(n - 1) <- words.(n - 1) land last_mask t.len;
  { len = t.len; words }

let subset a b =
  check_same a b;
  let n = Array.length a.words in
  let rec loop w = w = n || (a.words.(w) land lnot b.words.(w) = 0 && loop (w + 1)) in
  loop 0

let disjoint a b =
  check_same a b;
  let n = Array.length a.words in
  let rec loop w = w = n || (a.words.(w) land b.words.(w) = 0 && loop (w + 1)) in
  loop 0

(* SWAR popcount. The masks are built from 32-bit literals so they stay
   inside OCaml's int literal range; shifting left by 32 truncates to the
   native int width, which is exactly the pattern we need. *)
let swar_m1 = 0x55555555 lor (0x55555555 lsl 32)
let swar_m2 = 0x33333333 lor (0x33333333 lsl 32)
let swar_m4 = 0x0F0F0F0F lor (0x0F0F0F0F lsl 32)

let popcount_word x =
  let x = x - ((x lsr 1) land swar_m1) in
  let x = (x land swar_m2) + ((x lsr 2) land swar_m2) in
  let x = (x + (x lsr 4)) land swar_m4 in
  let x = x + (x lsr 8) in
  let x = x + (x lsr 16) in
  let x = if bits_per_word > 32 then x + (x lsr 32) else x in
  x land 0xff

(* Number of trailing zeros of a one-bit word [b]: the bits below it. *)
let ntz_bit b = popcount_word (b - 1)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let inter_into dst src =
  check_same dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let union_into dst src =
  check_same dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let base = wi * bits_per_word in
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let b = !w land - !w in
      f (base + ntz_bit b);
      w := !w land lnot b
    done
  done

let fold f acc t =
  let r = ref acc in
  iter (fun i -> r := f !r i) t;
  !r

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)

let of_list len l =
  let t = create len in
  List.iter (fun i -> set t i) l;
  t

let first_set t =
  let n = Array.length t.words in
  let rec loop w =
    if w = n then None
    else if t.words.(w) = 0 then loop (w + 1)
    else Some ((w * bits_per_word) + ntz_bit (t.words.(w) land - t.words.(w)))
  in
  loop 0

let range_check t lo len =
  if lo < 0 || len < 0 || lo + len > t.len then invalid_arg "Bitvec: range out of bounds"

(* The range operations below work word-parallel: the range [lo, lo+len)
   spans words w0..w1, with [first]/[last] masking the partial words at
   each end (collapsed into one mask when w0 = w1). *)
let ones n = if n >= bits_per_word then -1 else (1 lsl n) - 1

let range_full t lo len =
  range_check t lo len;
  len = 0
  ||
  let w0 = lo / bits_per_word and w1 = (lo + len - 1) / bits_per_word in
  let b0 = lo mod bits_per_word and b1 = (lo + len - 1) mod bits_per_word in
  if w0 = w1 then
    let m = ones (b1 - b0 + 1) lsl b0 in
    t.words.(w0) land m = m
  else
    let first = -1 lsl b0 and last = ones (b1 + 1) in
    t.words.(w0) land first = first
    && t.words.(w1) land last = last
    &&
    let rec mid w = w >= w1 || (t.words.(w) = -1 && mid (w + 1)) in
    mid (w0 + 1)

let range_empty t lo len =
  range_check t lo len;
  len = 0
  ||
  let w0 = lo / bits_per_word and w1 = (lo + len - 1) / bits_per_word in
  let b0 = lo mod bits_per_word and b1 = (lo + len - 1) mod bits_per_word in
  if w0 = w1 then t.words.(w0) land (ones (b1 - b0 + 1) lsl b0) = 0
  else
    t.words.(w0) land (-1 lsl b0) = 0
    && t.words.(w1) land ones (b1 + 1) = 0
    &&
    let rec mid w = w >= w1 || (t.words.(w) = 0 && mid (w + 1)) in
    mid (w0 + 1)

let range_cardinal t lo len =
  range_check t lo len;
  if len = 0 then 0
  else
    let w0 = lo / bits_per_word and w1 = (lo + len - 1) / bits_per_word in
    let b0 = lo mod bits_per_word and b1 = (lo + len - 1) mod bits_per_word in
    if w0 = w1 then popcount_word (t.words.(w0) land (ones (b1 - b0 + 1) lsl b0))
    else begin
      let acc = ref (popcount_word (t.words.(w0) land (-1 lsl b0))) in
      for w = w0 + 1 to w1 - 1 do
        acc := !acc + popcount_word t.words.(w)
      done;
      !acc + popcount_word (t.words.(w1) land ones (b1 + 1))
    end

(* Is (a ∧ b) empty on [lo, lo+len)? Word-parallel, no allocation: the
   fused form of [is_empty (inter a b)] restricted to a range, which the
   cube layer calls in its innermost loops. *)
let inter_range_empty a b lo len =
  check_same a b;
  range_check a lo len;
  len = 0
  ||
  let w0 = lo / bits_per_word and w1 = (lo + len - 1) / bits_per_word in
  let b0 = lo mod bits_per_word and b1 = (lo + len - 1) mod bits_per_word in
  if w0 = w1 then a.words.(w0) land b.words.(w0) land (ones (b1 - b0 + 1) lsl b0) = 0
  else
    a.words.(w0) land b.words.(w0) land (-1 lsl b0) = 0
    && a.words.(w1) land b.words.(w1) land ones (b1 + 1) = 0
    &&
    let rec mid w = w >= w1 || (a.words.(w) land b.words.(w) = 0 && mid (w + 1)) in
    mid (w0 + 1)

(* Raw word access for the mask-based field operations of the cube
   layer, which precomputes per-variable (word, mask) pairs to avoid
   index arithmetic in its innermost loops. *)
let word t i = t.words.(i)

let or_word t i m = t.words.(i) <- t.words.(i) lor m

let set_range t lo len =
  range_check t lo len;
  if len > 0 then begin
    let w0 = lo / bits_per_word and w1 = (lo + len - 1) / bits_per_word in
    let b0 = lo mod bits_per_word and b1 = (lo + len - 1) mod bits_per_word in
    if w0 = w1 then t.words.(w0) <- t.words.(w0) lor (ones (b1 - b0 + 1) lsl b0)
    else begin
      t.words.(w0) <- t.words.(w0) lor (-1 lsl b0);
      for w = w0 + 1 to w1 - 1 do
        t.words.(w) <- -1
      done;
      t.words.(w1) <- t.words.(w1) lor ones (b1 + 1)
    end
  end

let clear_range t lo len =
  range_check t lo len;
  if len > 0 then begin
    let w0 = lo / bits_per_word and w1 = (lo + len - 1) / bits_per_word in
    let b0 = lo mod bits_per_word and b1 = (lo + len - 1) mod bits_per_word in
    if w0 = w1 then t.words.(w0) <- t.words.(w0) land lnot (ones (b1 - b0 + 1) lsl b0)
    else begin
      t.words.(w0) <- t.words.(w0) land lnot (-1 lsl b0);
      for w = w0 + 1 to w1 - 1 do
        t.words.(w) <- 0
      done;
      t.words.(w1) <- t.words.(w1) land lnot (ones (b1 + 1))
    end
  end

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> set t i
      | '0' -> ()
      | _ -> invalid_arg "Bitvec.of_string: expected only '0' and '1'")
    s;
  t
