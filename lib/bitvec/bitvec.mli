(** Fixed-length dense bit vectors.

    A [Bitvec.t] is an immutable-by-convention vector of [length t] bits
    backed by an [int array]. All binary operations require operands of
    equal length and raise [Invalid_argument] otherwise. Functions ending
    in [_into] mutate their first argument and are used only in inner
    loops of the logic kernel. *)

type t

(** Number of bits stored per backing word ([Sys.int_size]). *)
val bits_per_word : int

(** [create n] is a vector of [n] zero bits. *)
val create : int -> t

(** [length t] is the number of bits of [t]. *)
val length : t -> int

(** [copy t] is a fresh vector equal to [t]. *)
val copy : t -> t

(** [get t i] is bit [i]; raises [Invalid_argument] if out of range. *)
val get : t -> int -> bool

(** [set t i] sets bit [i] in place. *)
val set : t -> int -> unit

(** [clear t i] clears bit [i] in place. *)
val clear : t -> int -> unit

(** [full n] is a vector of [n] one bits. *)
val full : int -> t

(** [equal a b] is structural equality of the bit contents. *)
val equal : t -> t -> bool

(** [compare a b] is a total order consistent with [equal]. *)
val compare : t -> t -> int

(** [hash t] is a hash consistent with [equal]. *)
val hash : t -> int

(** [is_empty t] is true iff no bit is set. *)
val is_empty : t -> bool

(** [is_full t] is true iff all bits are set. *)
val is_full : t -> bool

(** [inter a b] is the bitwise AND of [a] and [b]. *)
val inter : t -> t -> t

(** [union a b] is the bitwise OR of [a] and [b]. *)
val union : t -> t -> t

(** [diff a b] is [a AND NOT b]. *)
val diff : t -> t -> t

(** [complement t] flips every bit of [t]. *)
val complement : t -> t

(** [subset a b] is true iff every bit of [a] is set in [b]. *)
val subset : t -> t -> bool

(** [disjoint a b] is true iff [inter a b] is empty. *)
val disjoint : t -> t -> bool

(** [cardinal t] is the number of set bits. *)
val cardinal : t -> int

(** [inter_into dst src] stores [inter dst src] into [dst]. *)
val inter_into : t -> t -> unit

(** [union_into dst src] stores [union dst src] into [dst]. *)
val union_into : t -> t -> unit

(** [iter f t] applies [f] to the index of every set bit, ascending. *)
val iter : (int -> unit) -> t -> unit

(** [fold f acc t] folds [f] over the indices of set bits, ascending. *)
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** [to_list t] is the ascending list of set-bit indices. *)
val to_list : t -> int list

(** [of_list n l] is the [n]-bit vector with exactly the bits in [l] set. *)
val of_list : int -> int list -> t

(** [first_set t] is the lowest set-bit index, or [None] if empty. *)
val first_set : t -> int option

(** [range_full t lo len] is true iff bits [lo..lo+len-1] are all set. *)
val range_full : t -> int -> int -> bool

(** [range_empty t lo len] is true iff bits [lo..lo+len-1] are all clear. *)
val range_empty : t -> int -> int -> bool

(** [range_cardinal t lo len] counts set bits among [lo..lo+len-1]. *)
val range_cardinal : t -> int -> int -> int

(** [inter_range_empty a b lo len] is true iff [a AND b] has no set bit in
    [lo..lo+len-1]. Word-parallel and allocation-free: the fused form of
    [is_empty (inter a b)] restricted to a range, for the innermost cube
    loops. *)
val inter_range_empty : t -> t -> int -> int -> bool

(** [popcount_word w] counts the set bits of a raw word; exposed for the
    test suite to cross-check the SWAR implementation. *)
val popcount_word : int -> int

(** [word t i] is the raw [i]-th backing word. With [bits_per_word] and
    precomputed masks this lets the cube layer run field tests without
    per-call index arithmetic. *)
val word : t -> int -> int

(** [or_word t i m] ORs mask [m] into the [i]-th backing word in place. *)
val or_word : t -> int -> int -> unit

(** [set_range t lo len] sets bits [lo..lo+len-1] in place. *)
val set_range : t -> int -> int -> unit

(** [clear_range t lo len] clears bits [lo..lo+len-1] in place. *)
val clear_range : t -> int -> int -> unit

(** [pp ppf t] prints [t] as a 0/1 string, bit 0 leftmost. *)
val pp : Format.formatter -> t -> unit

(** [to_string t] is the 0/1 rendering of [pp]. *)
val to_string : t -> string

(** [of_string s] parses a 0/1 string, bit 0 leftmost. *)
val of_string : string -> t
