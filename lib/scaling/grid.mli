(** Graded input families for the scaling bench.

    A family fixes everything about the synthetic machines except their
    size: the IO profile (inputs/outputs), the transition density (rows
    per state) and the generator seed. Walking a family over the grid
    sizes then varies exactly one thing — the number of states — so
    runtime-vs-size fits measure the algorithm, not a drifting workload.

    Machines come from {!Benchmarks.Generator} and are fully
    deterministic: the same family always yields byte-identical KISS2
    text at every size, and distinct sizes yield distinct content
    addresses (so the exec cache can never cross-serve grid cells). *)

type family = {
  family_name : string;
  num_inputs : int;
  num_outputs : int;
  rows_per_state : int;  (** transition rows = [rows_per_state * states] *)
  seed : int;
}

val default : family
(** The stock profile: 4 inputs, 4 outputs, 4 rows per state, seed 97 —
    the density region where NOVA's input constraints are plentiful but
    the machines stay minimizable at 512 states. *)

val sizes : quick:bool -> int list
(** The grid: states 8 → 512 doubling; [~quick:true] stops at 64 (the
    CI grid). *)

val machine_name : family -> int -> string

val machine : family -> int -> Fsm.t
(** [machine f size] generates the family member with [size] states.
    @raise Invalid_argument when [size < 1]. *)

val kiss_text : family -> int -> string
(** Canonical KISS2 text of the member — the determinism witness. *)

val content_key : family -> int -> string
(** MD5 hex of {!kiss_text}: the same content address the exec cache
    derives its keys from. *)
