(** Repeated timed measurement with outlier rejection.

    One scaling-grid cell runs its kernel [warmup + reps] times; the
    warmup runs are discarded (page faults, branch-predictor and cache
    warm-in, lazy suite forcing), the timed runs pass through MAD-based
    outlier rejection, and the cell's runtime estimate is the minimum of
    the survivors — the criterion/AutoBench position that for a
    deterministic kernel the minimum is the least-contaminated sample,
    while the MAD filter keeps a single descheduled run from ever being
    that minimum's only competitor. *)

type sample = {
  size : int;  (** grid coordinate (number of states) *)
  runs_s : float list;  (** every timed repetition, in run order *)
  kept_s : float list;  (** the runs surviving outlier rejection *)
  time_s : float;  (** min of [kept_s]: the runtime estimate *)
}

val median : float list -> float
(** Median (mean of the middle pair on even lengths).
    @raise Invalid_argument on an empty list. *)

val mad : float list -> float
(** Median absolute deviation from the median. *)

val mad_cutoff : float
(** 3.5 — a run farther than [mad_cutoff * mad] from the median is an
    outlier. *)

val mad_filter : float list -> float list
(** The runs within [mad_cutoff * mad] of the median, in input order.
    When the MAD is (near) zero — at least half the runs identical —
    nothing can be distinguished and every run is kept. *)

val sample : ?warmup:int -> ?reps:int -> size:int -> (unit -> unit) -> sample
(** [sample ~size f] times [f] ([warmup] discarded runs, default 1, then
    [reps] timed runs, default 5) and builds the filtered sample.
    @raise Invalid_argument when [reps < 1] or [warmup < 0]. *)
