(** Orchestration of the scaling bench: walk every (family × algorithm)
    cell over the grid, measure the encode kernel at each size, fit the
    runtime-vs-size series, and emit the [nova-bench-scaling/v1]
    artifact that [nova bench-diff] gates on.

    The measured kernel is [Harness.Driver.encode] with the fallback
    ladder disabled and an unlimited budget — a budget cap or a silent
    degradation to a cheaper rung would corrupt exactly the curve this
    harness exists to measure. Each algorithm carries a [max_states]
    ceiling so the grid stays honest about what is tractable (iexact is
    exponential by construction and is deliberately absent). *)

type algo_spec = {
  algorithm : Harness.Driver.algorithm;
  max_states : int;  (** grid sizes above this are skipped for the cell *)
}

val algorithms : quick:bool -> algo_spec list

type point = {
  sample : Measure.sample;
  constraints_s : float;  (** per-run constraint-extraction share *)
  encode_s : float;  (** per-run encoder-rung share *)
}

type cell = {
  family : Grid.family;
  algo_name : string;
  points : point list;  (** ascending sizes actually measured *)
  fit : Fit.result;
}

val run_cell :
  ?warmup:int -> ?reps:int -> family:Grid.family -> sizes:int list -> algo_spec -> cell
(** Measure one cell. Sizes whose encode fails (it should not, for the
    default specs) are skipped rather than fitted. Instrumentation is
    enabled for the duration and restored after. *)

val run :
  ?quick:bool ->
  ?reps:int ->
  ?progress:Format.formatter ->
  unit ->
  cell list
(** The whole grid: {!Grid.default} × {!algorithms}. [reps] defaults to
    3 (quick) / 5 (full); one progress line per cell goes to
    [progress]. *)

val to_json : quick:bool -> reps:int -> cell list -> string
(** The [nova-bench-scaling/v1] artifact. Fit metrics flatten to
    [fit.model_order] / [fit.fitted_exponent] (the differ's complexity
    gate); inconclusive cells omit them, so a cell degrading to
    inconclusive surfaces as a vanished-metric regression. Raw samples
    live in the [points] array, which the differ skips. *)

val write : path:string -> quick:bool -> reps:int -> cell list -> unit

val summary : Format.formatter -> cell list -> unit
(** One line per cell: fitted class, exponent, fit quality, top size. *)
