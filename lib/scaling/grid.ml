type family = {
  family_name : string;
  num_inputs : int;
  num_outputs : int;
  rows_per_state : int;
  seed : int;
}

let default =
  { family_name = "dense4x4"; num_inputs = 4; num_outputs = 4; rows_per_state = 4; seed = 97 }

(* The quick grid adds half-octave sizes so every cell still has enough
   points to fit even though it stops at 64 states. *)
let sizes ~quick =
  if quick then [ 8; 16; 24; 32; 48; 64 ] else [ 8; 16; 32; 64; 128; 256; 512 ]

let machine_name f size = Printf.sprintf "scale_%s_%d" f.family_name size

let machine f size =
  if size < 1 then invalid_arg "Grid.machine: size must be positive";
  Benchmarks.Generator.generate ~name:(machine_name f size) ~num_inputs:f.num_inputs
    ~num_outputs:f.num_outputs ~num_states:size ~num_rows:(f.rows_per_state * size)
    ~seed:f.seed

let kiss_text f size = Kiss.to_string (machine f size)
let content_key f size = Digest.to_hex (Digest.string (kiss_text f size))
