type sample = {
  size : int;
  runs_s : float list;
  kept_s : float list;
  time_s : float;
}

let median xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Measure.median: empty"
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let mad xs =
  let m = median xs in
  median (List.map (fun x -> Float.abs (x -. m)) xs)

let mad_cutoff = 3.5

(* A zero MAD (at least half the runs bit-identical, as happens on very
   fast kernels under a coarse clock) carries no spread information:
   filtering against it would keep only the exact-median runs and could
   discard the genuine minimum, so everything is kept instead. *)
let mad_filter xs =
  let m = median xs in
  let d = mad xs in
  if d < 1e-12 then xs
  else List.filter (fun x -> Float.abs (x -. m) <= mad_cutoff *. d) xs

let sample ?(warmup = 1) ?(reps = 5) ~size f =
  if reps < 1 then invalid_arg "Measure.sample: reps must be >= 1";
  if warmup < 0 then invalid_arg "Measure.sample: warmup must be >= 0";
  for _ = 1 to warmup do
    f ()
  done;
  let runs_s =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  let kept_s = mad_filter runs_s in
  { size; runs_s; kept_s; time_s = List.fold_left Float.min infinity kept_s }
