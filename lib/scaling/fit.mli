(** Least-squares complexity fitting of runtime-vs-size series.

    Each candidate model is a one-parameter curve [t = c * shape n]
    fitted in log space (where the fit is linear in [log c] and
    multiplicative timing noise becomes additive); the winner is the
    candidate with the smallest residual sum of squares. Alongside the
    class, a free power-law regression reports the continuous fitted
    exponent (slope of [log t] vs [log n]; for the exponential winner,
    the base-2 rate — slope of [log2 t] vs [n]) so regressions *within*
    a class (quadratic drifting toward cubic) are visible before the
    class flips.

    Series that cannot support a fit come back as a typed
    {!inconclusive} value, never as a bogus model. *)

type model = Linear | N_log_n | Quadratic | Cubic | Exponential

val model_name : model -> string
(** "linear", "nlogn", "quadratic", "cubic", "exponential". *)

val model_of_name : string -> model option

val model_order : model -> int
(** Rank of the class, 1 (linear) → 5 (exponential): the integer the
    bench differ gates on — any increase is a complexity regression. *)

type fitted = {
  model : model;
  coeff : float;  (** c in [t ≈ c * shape n] *)
  exponent : float;
      (** free power-law slope; for [Exponential], the base-2 growth
          rate r in [t ≈ c * 2^(r*n)] *)
  r2 : float;  (** coefficient of determination in log space, floored at 0 *)
  residual : float;  (** mean squared log-residual of the winning model *)
}

type inconclusive =
  | Too_few_points of int  (** fewer than {!min_points} sizes measured *)
  | Non_positive_time  (** a non-positive runtime cannot be log-fitted *)
  | Degenerate_sizes  (** sizes below 2, or fewer than 2 distinct sizes *)
  | Constant_series  (** no runtime variation: every model fits equally *)

type result = Fitted of fitted | Inconclusive of inconclusive

val min_points : int
(** 4 — below this, model selection over five candidates is noise. *)

val inconclusive_reason : inconclusive -> string

val fit : (float * float) list -> result
(** [fit [(n1, t1); ...]] — sizes paired with runtime estimates. *)
