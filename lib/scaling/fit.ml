type model = Linear | N_log_n | Quadratic | Cubic | Exponential

let all_models = [ Linear; N_log_n; Quadratic; Cubic; Exponential ]

let model_name = function
  | Linear -> "linear"
  | N_log_n -> "nlogn"
  | Quadratic -> "quadratic"
  | Cubic -> "cubic"
  | Exponential -> "exponential"

let model_of_name s = List.find_opt (fun m -> model_name m = s) all_models

let model_order = function
  | Linear -> 1
  | N_log_n -> 2
  | Quadratic -> 3
  | Cubic -> 4
  | Exponential -> 5

type fitted = {
  model : model;
  coeff : float;
  exponent : float;
  r2 : float;
  residual : float;
}

type inconclusive =
  | Too_few_points of int
  | Non_positive_time
  | Degenerate_sizes
  | Constant_series

type result = Fitted of fitted | Inconclusive of inconclusive

let min_points = 4

let inconclusive_reason = function
  | Too_few_points n -> Printf.sprintf "too few points (%d, need %d)" n min_points
  | Non_positive_time -> "non-positive runtime in the series"
  | Degenerate_sizes -> "sizes below 2 or fewer than 2 distinct sizes"
  | Constant_series -> "constant runtime: every model fits equally"

(* log (shape n) for the one-parameter candidate t = c * shape n; the
   log-space prediction is then log c + log_shape, linear in log c. *)
let log_shape m n =
  match m with
  | Linear -> log n
  | N_log_n -> log n +. log (log n /. log 2.)
  | Quadratic -> 2. *. log n
  | Cubic -> 3. *. log n
  | Exponential -> n *. log 2.

let mean xs = List.fold_left ( +. ) 0. xs /. float (List.length xs)

(* Ordinary least-squares slope of ys against xs. *)
let ols_slope xs ys =
  let mx = mean xs and my = mean ys in
  let sxy =
    List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0. xs ys
  in
  let sxx = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.)) 0. xs in
  sxy /. sxx

let fit points =
  let len = List.length points in
  if len < min_points then Inconclusive (Too_few_points len)
  else if List.exists (fun (_, t) -> t <= 0. || not (Float.is_finite t)) points then
    Inconclusive Non_positive_time
  else if
    List.exists (fun (n, _) -> n < 2.) points
    || List.length (List.sort_uniq compare (List.map fst points)) < 2
  then Inconclusive Degenerate_sizes
  else begin
    let ns = List.map fst points in
    let ys = List.map (fun (_, t) -> log t) points in
    let my = mean ys in
    let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. my) ** 2.)) 0. ys in
    if ss_tot < 1e-12 then Inconclusive Constant_series
    else begin
      let score m =
        let lfs = List.map (log_shape m) ns in
        let lnc = mean (List.map2 ( -. ) ys lfs) in
        let ss =
          List.fold_left2 (fun acc y lf -> acc +. ((y -. lnc -. lf) ** 2.)) 0. ys lfs
        in
        (m, lnc, ss)
      in
      let best =
        List.fold_left
          (fun acc m ->
            let (_, _, ss) as cand = score m in
            match acc with Some (_, _, bss) when bss <= ss -> acc | _ -> Some cand)
          None all_models
      in
      match best with
      | None -> assert false
      | Some (model, lnc, ss) ->
          let exponent =
            match model with
            | Exponential -> ols_slope ns ys /. log 2.
            | Linear | N_log_n | Quadratic | Cubic -> ols_slope (List.map log ns) ys
          in
          Fitted
            {
              model;
              coeff = exp lnc;
              exponent;
              r2 = Float.max 0. (1. -. (ss /. ss_tot));
              residual = ss /. float len;
            }
    end
  end
