type algo_spec = {
  algorithm : Harness.Driver.algorithm;
  max_states : int;
}

(* iexact is exponential by construction and has no place on an
   unlimited-budget grid; ihybrid/iohybrid's constraint-embedding search
   measures at roughly n^4.7 on this family, so their ceilings keep a
   full run in minutes (and the quick CI run in seconds), not hours. *)
let algorithms ~quick =
  if quick then
    [
      { algorithm = Harness.Driver.Igreedy; max_states = 64 };
      { algorithm = Harness.Driver.Ihybrid; max_states = 32 };
    ]
  else
    [
      { algorithm = Harness.Driver.Igreedy; max_states = 512 };
      { algorithm = Harness.Driver.Kiss; max_states = 256 };
      { algorithm = Harness.Driver.Ihybrid; max_states = 64 };
      { algorithm = Harness.Driver.Iohybrid; max_states = 64 };
    ]

type point = {
  sample : Measure.sample;
  constraints_s : float;
  encode_s : float;
}

type cell = {
  family : Grid.family;
  algo_name : string;
  points : point list;
  fit : Fit.result;
}

let timer_total pred =
  List.fold_left
    (fun acc (name, s, _) -> if pred name then acc +. s else acc)
    0. (Instrument.timers ())

let has_prefix p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Enable instrumentation for the duration of [f], restoring the prior
   state (the phase attribution below reads the pipeline timers). *)
let with_instrument f =
  let was_on = Instrument.enabled () in
  Instrument.enable ();
  Fun.protect ~finally:(fun () -> if not was_on then Instrument.disable ()) f

let run_cell ?(warmup = 1) ?(reps = 5) ~family ~sizes spec =
  with_instrument @@ fun () ->
  let algo_name = Harness.Driver.name spec.algorithm in
  let encode m = Harness.Driver.encode ~budget:Budget.unlimited ~fallback:false m spec.algorithm in
  let points =
    List.filter_map
      (fun size ->
        if size > spec.max_states then None
        else
          let m = Grid.machine family size in
          (* A failing encode (impossible for the default specs, which
             never fail under an unlimited budget) yields no point; the
             fitter sees only sizes that genuinely completed. *)
          match encode m with
          | Error _ -> None
          | Ok _ ->
              Instrument.reset ();
              let sample =
                Measure.sample ~warmup ~reps ~size (fun () -> ignore (encode m))
              in
              let runs = float (warmup + reps) in
              Some
                {
                  sample;
                  constraints_s = timer_total (( = ) "pipeline.constraints") /. runs;
                  encode_s = timer_total (has_prefix "pipeline.rung.") /. runs;
                })
      sizes
  in
  let fit =
    Fit.fit (List.map (fun p -> (float p.sample.Measure.size, p.sample.Measure.time_s)) points)
  in
  { family; algo_name; points; fit }

let run ?(quick = false) ?reps ?progress () =
  let reps = match reps with Some r -> r | None -> if quick then 3 else 5 in
  let sizes = Grid.sizes ~quick in
  List.map
    (fun spec ->
      let cell = run_cell ~reps ~family:Grid.default ~sizes spec in
      (match progress with
      | None -> ()
      | Some ppf ->
          Format.fprintf ppf "scaling %-10s %-10s %d sizes, top %d states: %s@."
            cell.family.Grid.family_name cell.algo_name (List.length cell.points)
            (List.fold_left (fun acc p -> max acc p.sample.Measure.size) 0 cell.points)
            (match cell.fit with
            | Fit.Fitted f ->
                Printf.sprintf "%s (exponent %.2f, R² %.3f)" (Fit.model_name f.Fit.model)
                  f.Fit.exponent f.Fit.r2
            | Fit.Inconclusive why -> "inconclusive: " ^ Fit.inconclusive_reason why));
      cell)
    (algorithms ~quick)

(* --- artifact ----------------------------------------------------------- *)

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let point_json p =
  Printf.sprintf
    "{\"states\":%d,\"time_s\":%s,\"kept\":%d,\"runs_s\":[%s],\"constraints_s\":%s,\"encode_s\":%s}"
    p.sample.Measure.size (json_float p.sample.Measure.time_s)
    (List.length p.sample.Measure.kept_s)
    (String.concat "," (List.map json_float p.sample.Measure.runs_s))
    (json_float p.constraints_s) (json_float p.encode_s)

let fit_json = function
  | Fit.Fitted f ->
      Printf.sprintf
        "{\"model\":\"%s\",\"model_order\":%d,\"fitted_exponent\":%s,\"coeff\":%s,\"r2\":%s,\"residual\":%s}"
        (Fit.model_name f.Fit.model) (Fit.model_order f.Fit.model) (json_float f.Fit.exponent)
        (json_float f.Fit.coeff) (json_float f.Fit.r2) (json_float f.Fit.residual)
  | Fit.Inconclusive why ->
      (* No model_order / fitted_exponent key: against an older artifact
         that had them, the differ reports a vanished-metric regression,
         which is exactly what a cell going inconclusive is. *)
      Printf.sprintf "{\"model\":\"inconclusive\",\"reason\":\"%s\"}"
        (Fit.inconclusive_reason why)

let cell_json c =
  let largest = List.fold_left (fun _ p -> Some p) None c.points in
  let phases =
    match largest with
    | Some p ->
        Printf.sprintf ",\"phases\":{\"constraints_s\":%s,\"encode_s\":%s}"
          (json_float p.constraints_s) (json_float p.encode_s)
    | None -> ""
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"algorithm\":\"%s\",\"states_max\":%d,\"fit\":%s,\"points\":[%s]%s}"
    c.family.Grid.family_name c.algo_name
    (List.fold_left (fun acc p -> max acc p.sample.Measure.size) 0 c.points)
    (fit_json c.fit)
    (String.concat "," (List.map point_json c.points))
    phases

let to_json ~quick ~reps cells =
  let f = Grid.default in
  Printf.sprintf
    "{\"schema\":\"nova-bench-scaling/v1\",\"mode\":\"%s\",\"reps\":%d,\"family\":{\"name\":\"%s\",\"num_inputs\":%d,\"num_outputs\":%d,\"rows_per_state\":%d,\"seed\":%d},\"benchmarks\":[%s]}\n"
    (if quick then "quick" else "full")
    reps f.Grid.family_name f.Grid.num_inputs f.Grid.num_outputs f.Grid.rows_per_state
    f.Grid.seed
    (String.concat "," (List.map cell_json cells))

let write ~path ~quick ~reps cells =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_json ~quick ~reps cells);
  close_out oc;
  Sys.rename tmp path

let summary ppf cells =
  Format.fprintf ppf "%-10s %-10s %-12s %9s %7s %6s %12s@." "family" "algorithm" "model"
    "exponent" "R²" "sizes" "top-time";
  List.iter
    (fun c ->
      let top =
        List.fold_left (fun acc p -> Float.max acc p.sample.Measure.time_s) 0. c.points
      in
      match c.fit with
      | Fit.Fitted f ->
          Format.fprintf ppf "%-10s %-10s %-12s %9.3f %7.3f %6d %11.4fs@."
            c.family.Grid.family_name c.algo_name (Fit.model_name f.Fit.model) f.Fit.exponent
            f.Fit.r2 (List.length c.points) top
      | Fit.Inconclusive why ->
          Format.fprintf ppf "%-10s %-10s %-12s (%s)@." c.family.Grid.family_name c.algo_name
            "inconclusive" (Fit.inconclusive_reason why))
    cells
