(** Glue between the driver and the independent certificate layer
    ([lib/check]): packages a {!Driver.report} outcome as raw
    {!Check.artifacts} and maps a failed certificate to the typed
    {!Nova_error.Certification_failed} (exit code 6). The checking itself
    lives entirely in [Check] — this module only moves data. *)

(** [artifacts_of outcome impl] is the raw material the certificate
    re-verifies: the code array (copied out of the validated encoding),
    the declared length, the minimized cover, and the producing rung's
    claims. *)
val artifacts_of : Driver.outcome -> Encoded.result -> Check.artifacts

(** [run ?seed m outcome impl] certifies the report. Sampling parameters
    follow {!Check.certify}'s defaults. *)
val run : ?seed:int -> Fsm.t -> Driver.outcome -> Encoded.result -> Check.t

(** [error_of ~machine cert] is [Some (Certification_failed ...)] naming
    the failed checks, or [None] for a clean certificate. *)
val error_of : machine:string -> Check.t -> Nova_error.t option
