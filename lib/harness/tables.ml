let heavy name =
  match List.find_opt (fun e -> e.Benchmarks.Suite.name = name) Benchmarks.Suite.all with
  | Some e -> e.Benchmarks.Suite.heavy
  | None -> false

let names ~quick =
  List.filter (fun n -> (not quick) || not (heavy n)) Benchmarks.Suite.table1

let paper field name =
  match Benchmarks.Paper_data.find name with None -> None | Some row -> field row

let soi = string_of_int

(* Measured-vs-paper total summary line. *)
let totals ppf label pairs =
  let ours = List.fold_left (fun a (o, _) -> a + o) 0 pairs in
  let theirs = List.fold_left (fun a (_, p) -> a + Option.value ~default:0 p) 0 pairs in
  let have_paper = List.for_all (fun (_, p) -> p <> None) pairs in
  if have_paper && theirs > 0 then
    Format.fprintf ppf "%s: measured total %d, paper total %d (measured/paper %.2f)@." label
      ours theirs
      (float_of_int ours /. float_of_int theirs)
  else Format.fprintf ppf "%s: measured total %d@." label ours

let table1 ?(quick = false) ppf () =
  let rows =
    List.map
      (fun name ->
        let m = Benchmarks.Suite.find name in
        let s = Fsm.stats m in
        [
          name;
          soi s.Fsm.stat_inputs;
          soi s.Fsm.stat_outputs;
          soi s.Fsm.stat_states;
          soi s.Fsm.stat_products;
        ])
      (names ~quick)
  in
  Report.print_table ppf ~title:"Table I: statistics of benchmark examples"
    ~header:[ "example"; "#inputs"; "#outputs"; "#states"; "#products" ]
    rows

let table2 ?(quick = false) ppf () =
  let rows = ref [] and area_pairs = ref [] in
  List.iter
    (fun name ->
      let f = Flow.get name in
      let iex =
        if heavy name then Iexact.Exhausted else Stage.force f.Flow.iexact
      in
      let iex_cells =
        match iex with
        | Iexact.Sat { k; codes; proven } ->
            let e = Encoding.make ~nbits:k codes in
            let r = Flow.implement f e in
            (* Unproven minimality is starred, like the paper's donfile
               entry. *)
            [ (soi k ^ if proven then "" else "*"); soi r.Encoded.num_cubes; soi r.Encoded.area ]
        | Iexact.Exhausted -> [ "-"; "-"; "-" ]
      in
      let eh = (Stage.force f.Flow.ihybrid).Ihybrid.encoding in
      let rh = Flow.implement f eh in
      let eg = (Stage.force f.Flow.igreedy).Igreedy.encoding in
      let rg = Flow.implement f eg in
      (* 1-hot codes only fit the int-based encoding up to 60 states. *)
      let oh_cubes =
        if Fsm.num_states ~m:f.Flow.machine > 60 then "-"
        else soi (Flow.implement f (Stage.force f.Flow.one_hot)).Encoded.num_cubes
      in
      area_pairs :=
        (min rh.Encoded.area rg.Encoded.area,
         paper (fun r -> r.Benchmarks.Paper_data.best_ig_ih_area) name)
        :: !area_pairs;
      rows :=
        ([ name ] @ iex_cells
        @ [
            soi eh.Encoding.nbits; soi rh.Encoded.num_cubes; soi rh.Encoded.area;
            soi eg.Encoding.nbits; soi rg.Encoded.num_cubes; soi rg.Encoded.area;
            oh_cubes;
          ])
        :: !rows)
    (names ~quick);
  Report.print_table ppf ~title:"Table II: comparisons of iexact, ihybrid, igreedy"
    ~header:
      [
        "example"; "ex:#bits"; "ex:#cubes"; "ex:area"; "ih:#bits"; "ih:#cubes"; "ih:area";
        "ig:#bits"; "ig:#cubes"; "ig:area"; "1hot:#cubes";
      ]
    (List.rev !rows);
  totals ppf "best of ihybrid/igreedy area" !area_pairs

let table3 ?(quick = false) ppf () =
  let rows = ref [] in
  let best_pairs = ref [] and rnd_pairs = ref [] in
  List.iter
    (fun name ->
      let f = Flow.get name in
      let eb = Flow.best_ih_ig f in
      let rb = Flow.implement f eb in
      let ek = Stage.force f.Flow.kiss in
      let rk = Flow.implement f ek in
      let rnd_best, rnd_avg = Flow.random_best_avg f in
      best_pairs := (rb.Encoded.area, paper (fun r -> r.Benchmarks.Paper_data.best_ig_ih_area) name) :: !best_pairs;
      rnd_pairs := (rnd_best, paper (fun r -> r.Benchmarks.Paper_data.random_best_area) name) :: !rnd_pairs;
      rows :=
        [
          name;
          soi eb.Encoding.nbits; soi rb.Encoded.num_cubes; soi rb.Encoded.area;
          soi ek.Encoding.nbits; soi rk.Encoded.num_cubes; soi rk.Encoded.area;
          soi rnd_best; soi rnd_avg;
        ]
        :: !rows)
    (names ~quick);
  Report.print_table ppf ~title:"Table III: ihybrid/igreedy best vs KISS vs random"
    ~header:
      [
        "example"; "nova:#bits"; "nova:#cubes"; "nova:area"; "kiss:#bits"; "kiss:#cubes";
        "kiss:area"; "rnd:best"; "rnd:avg";
      ]
    (List.rev !rows);
  totals ppf "best of ihybrid/igreedy area" !best_pairs;
  totals ppf "random best area" !rnd_pairs;
  let ours_best = List.fold_left (fun a (o, _) -> a + o) 0 !best_pairs in
  let ours_rnd = List.fold_left (fun a (o, _) -> a + o) 0 !rnd_pairs in
  if ours_rnd > 0 then
    Format.fprintf ppf "nova/random-best ratio: %.2f (paper: 84/100 = 0.84)@."
      (float_of_int ours_best /. float_of_int ours_rnd)

let table4 ?(quick = false) ppf () =
  let rows = ref [] in
  let io_pairs = ref [] and nova_pairs = ref [] in
  List.iter
    (fun name ->
      let f = Flow.get name in
      let eio = (Stage.force f.Flow.iohybrid).Iohybrid.encoding in
      let rio = Flow.implement f eio in
      let eb = Flow.best_ih_ig f in
      let rb = Flow.implement f eb in
      let en = Flow.nova_best f in
      let rn = Flow.implement f en in
      let rnd_best, rnd_avg = Flow.random_best_avg f in
      io_pairs := (rio.Encoded.area, paper (fun r -> r.Benchmarks.Paper_data.iohybrid_area) name) :: !io_pairs;
      nova_pairs := (rn.Encoded.area, paper (fun r -> r.Benchmarks.Paper_data.nova_best_area) name) :: !nova_pairs;
      rows :=
        [
          name;
          soi eio.Encoding.nbits; soi rio.Encoded.num_cubes; soi rio.Encoded.area;
          soi eb.Encoding.nbits; soi rb.Encoded.num_cubes; soi rb.Encoded.area;
          soi en.Encoding.nbits; soi rn.Encoded.num_cubes; soi rn.Encoded.area;
          soi rnd_best; soi rnd_avg;
        ]
        :: !rows)
    (names ~quick);
  Report.print_table ppf
    ~title:"Table IV: iohybrid, ihybrid/igreedy, best of NOVA, random"
    ~header:
      [
        "example"; "io:#bits"; "io:#cubes"; "io:area"; "ih/ig:#bits"; "ih/ig:#cubes";
        "ih/ig:area"; "nova:#bits"; "nova:#cubes"; "nova:area"; "rnd:best"; "rnd:avg";
      ]
    (List.rev !rows);
  totals ppf "iohybrid area" !io_pairs;
  totals ppf "best of NOVA area" !nova_pairs

let table5 ?(quick = false) ppf () =
  let rows = ref [] and pairs = ref [] in
  List.iter
    (fun name ->
      if (not quick) || not (heavy name) then begin
        let f = Flow.get name in
        let eio = (Stage.force f.Flow.iohybrid).Iohybrid.encoding in
        let rio = Flow.implement f eio in
        let capp = paper (fun r -> r.Benchmarks.Paper_data.cappuccino_area) name in
        pairs := (rio.Encoded.area, capp) :: !pairs;
        rows :=
          [
            name;
            soi eio.Encoding.nbits; soi rio.Encoded.num_cubes; soi rio.Encoded.area;
            Report.opt_int capp;
          ]
          :: !rows
      end)
    Benchmarks.Suite.table5;
  Report.print_table ppf
    ~title:"Table V: iohybrid vs Cappuccino/Cream (published areas)"
    ~header:[ "example"; "io:#bits"; "io:#cubes"; "io:area"; "cappuccino:area" ]
    (List.rev !rows);
  totals ppf "iohybrid area vs Cappuccino" !pairs;
  Format.fprintf ppf "(paper reports the iohybrid/Cappuccino total ratio as 71/100)@."

let table6 ?(quick = false) ppf () =
  let rows = ref [] in
  List.iter
    (fun name ->
      let f = Flow.get name in
      let ih = Stage.force f.Flow.ihybrid in
      let time = Stage.elapsed f.Flow.ihybrid in
      let wsat =
        List.fold_left (fun a (ic : Constraints.input_constraint) -> a + ic.Constraints.weight) 0 ih.Ihybrid.satisfied
      in
      let wunsat =
        List.fold_left (fun a (ic : Constraints.input_constraint) -> a + ic.Constraints.weight) 0 ih.Ihybrid.unsatisfied
      in
      let clength = (Stage.force f.Flow.kiss).Encoding.nbits in
      let ex_clength =
        if heavy name then "?"
        else
          match Stage.force f.Flow.iexact with
          | Iexact.Sat { k; proven; _ } -> if proven then soi k else "<=" ^ soi k
          | Iexact.Exhausted -> "?"
      in
      rows :=
        [ name; soi wsat; soi wunsat; soi clength; ex_clength; Printf.sprintf "%.2f" time ]
        :: !rows)
    (names ~quick);
  Report.print_table ppf ~title:"Table VI: statistics of ihybrid"
    ~header:[ "example"; "wsat"; "wunsat"; "clength"; "ex-clength"; "time(s)" ]
    (List.rev !rows)

let table7_names ~quick =
  List.filter (fun n -> (not quick) || not (heavy n)) Benchmarks.Suite.table7

(* NOVA's best minimum-code-length two-level result (Table VII protocol). *)
let nova_best_minlen f =
  let n = Fsm.num_states ~m:f.Flow.machine in
  let min_len = Ihybrid.min_code_length n in
  let candidates =
    List.filter
      (fun (e : Encoding.t) -> e.Encoding.nbits = min_len)
      [
        (Stage.force f.Flow.ihybrid).Ihybrid.encoding;
        (Stage.force f.Flow.igreedy).Igreedy.encoding;
        (Stage.force f.Flow.iohybrid).Iohybrid.encoding;
      ]
  in
  match candidates with
  | [] -> (Stage.force f.Flow.igreedy).Igreedy.encoding
  | e :: rest ->
      List.fold_left
        (fun best c ->
          if (Flow.implement f c).Encoded.num_cubes < (Flow.implement f best).Encoded.num_cubes
          then c
          else best)
        e rest

let table7 ?(quick = false) ppf () =
  let rows = ref [] in
  let mc = ref [] and nc = ref [] and ml = ref [] and nl = ref [] and rl = ref [] in
  List.iter
    (fun name ->
      let f = Flow.get name in
      let emu, flavor = Flow.mustang_best_cubes f in
      let rmu = Flow.implement f emu in
      let en = nova_best_minlen f in
      let rn = Flow.implement f en in
      let mu_lits = Flow.factored_literals f emu in
      let nova_lits = Flow.factored_literals f en in
      let rnd_lits =
        let randoms = Stage.force f.Flow.randoms in
        let best =
          List.fold_left
            (fun best e -> if Flow.area_of f e < Flow.area_of f best then e else best)
            (List.hd randoms) (List.tl randoms)
        in
        Flow.factored_literals f best
      in
      let p field = paper field name in
      mc := (rmu.Encoded.num_cubes, p (fun r -> r.Benchmarks.Paper_data.mustang_cubes)) :: !mc;
      nc := (rn.Encoded.num_cubes, p (fun r -> r.Benchmarks.Paper_data.nova_cubes)) :: !nc;
      ml := (mu_lits, p (fun r -> r.Benchmarks.Paper_data.mustang_lits)) :: !ml;
      nl := (nova_lits, p (fun r -> r.Benchmarks.Paper_data.nova_lits)) :: !nl;
      rl := (rnd_lits, p (fun r -> r.Benchmarks.Paper_data.random_lits)) :: !rl;
      rows :=
        [
          name; flavor;
          soi rmu.Encoded.num_cubes; soi rn.Encoded.num_cubes;
          soi mu_lits; soi nova_lits; soi rnd_lits;
        ]
        :: !rows)
    (table7_names ~quick);
  Report.print_table ppf
    ~title:"Table VII: two-level and multilevel, MUSTANG vs NOVA vs random"
    ~header:
      [ "example"; "mu:flavor"; "mu:#cubes"; "nova:#cubes"; "mu:#lit"; "nova:#lit"; "rnd:#lit" ]
    (List.rev !rows);
  totals ppf "MUSTANG cubes" !mc;
  totals ppf "NOVA cubes" !nc;
  totals ppf "MUSTANG literals" !ml;
  totals ppf "NOVA literals" !nl;
  totals ppf "random literals" !rl;
  let t l = List.fold_left (fun a (o, _) -> a + o) 0 l in
  if t !nc > 0 && t !nl > 0 then
    Format.fprintf ppf
      "cube ratio MUSTANG/NOVA: %.2f (paper 1.24); literal ratio MUSTANG/NOVA: %.2f (paper 1.08); random/NOVA literals: %.2f (paper 1.30)@."
      (float_of_int (t !mc) /. float_of_int (t !nc))
      (float_of_int (t !ml) /. float_of_int (t !nl))
      (float_of_int (t !rl) /. float_of_int (t !nl))

(* --- Figures: ratio series over machines ordered by #states ------------ *)

let figure ?(quick = false) ppf ~title ~series () =
  let ns = names ~quick in
  let columns = List.map fst series in
  let data =
    List.map
      (fun name ->
        let f = Flow.get name in
        (name, List.map (fun (_, fn) -> fn f) series))
      ns
  in
  let rows =
    List.map
      (fun (name, values) ->
        name
        :: List.map
             (function Some v -> Printf.sprintf "%.2f" v | None -> "-")
             values)
      data
  in
  Report.print_table ppf ~title ~header:("example (by #states)" :: columns) rows;
  List.iteri
    (fun i (label, _) ->
      let vals = List.map (fun (_, values) -> List.nth values i) data in
      Format.fprintf ppf "%-18s %s@." label (Report.spark vals))
    series;
  Format.fprintf ppf "@."

let area_ratio f num den =
  let a = num f and b = den f in
  if b = 0 then None else Some (float_of_int a /. float_of_int b)

let nova_area f = Flow.area_of f (Flow.nova_best f)

let fig8 ?quick ppf () =
  figure ?quick ppf ~title:"Table VIII (figure): area ratios over best of NOVA"
    ~series:
      [
        ("KISS/NOVA", fun f -> area_ratio f (fun f -> Flow.area_of f (Stage.force f.Flow.kiss)) nova_area);
        ("rnd-best/NOVA", fun f -> area_ratio f (fun f -> fst (Flow.random_best_avg f)) nova_area);
        ("rnd-avg/NOVA", fun f -> area_ratio f (fun f -> snd (Flow.random_best_avg f)) nova_area);
      ]
    ()

let fig9 ?quick ppf () =
  figure ?quick ppf ~title:"Table IX (figure): NOVA algorithm area ratios"
    ~series:
      [
        ( "ihybrid/NOVA",
          fun f ->
            area_ratio f (fun f -> Flow.area_of f (Stage.force f.Flow.ihybrid).Ihybrid.encoding) nova_area );
        ( "iohybrid/NOVA",
          fun f ->
            area_ratio f (fun f -> Flow.area_of f (Stage.force f.Flow.iohybrid).Iohybrid.encoding) nova_area );
      ]
    ()

let fig10 ?(quick = false) ppf () =
  let ns = List.filter (fun n -> List.mem n (table7_names ~quick)) (names ~quick) in
  let data =
    List.map
      (fun name ->
        let f = Flow.get name in
        let emu, _ = Flow.mustang_best_cubes f in
        let en = nova_best_minlen f in
        let cube_ratio =
          let nc = (Flow.implement f en).Encoded.num_cubes in
          if nc = 0 then None
          else Some (float_of_int (Flow.implement f emu).Encoded.num_cubes /. float_of_int nc)
        in
        let lit_ratio =
          let nl = Flow.factored_literals f en in
          if nl = 0 then None else Some (float_of_int (Flow.factored_literals f emu) /. float_of_int nl)
        in
        (name, [ cube_ratio; lit_ratio ]))
      ns
  in
  let rows =
    List.map
      (fun (name, values) ->
        name :: List.map (function Some v -> Printf.sprintf "%.2f" v | None -> "-") values)
      data
  in
  Report.print_table ppf ~title:"Table X (figure): MUSTANG/NOVA ratios"
    ~header:[ "example (by #states)"; "cubes MU/NOVA"; "lits MU/NOVA" ]
    rows;
  List.iteri
    (fun i label ->
      let vals = List.map (fun (_, values) -> List.nth values i) data in
      Format.fprintf ppf "%-18s %s@." label (Report.spark vals))
    [ "cubes MU/NOVA"; "lits MU/NOVA" ];
  Format.fprintf ppf "@."

let all ?(quick = false) ppf () =
  table1 ~quick ppf ();
  table2 ~quick ppf ();
  table3 ~quick ppf ();
  table4 ~quick ppf ();
  table5 ~quick ppf ();
  table6 ~quick ppf ();
  table7 ~quick ppf ();
  fig8 ~quick ppf ();
  fig9 ~quick ppf ();
  fig10 ~quick ppf ()
