let artifacts_of (o : Driver.outcome) (impl : Encoded.result) =
  {
    Check.nbits = o.Driver.encoding.Encoding.nbits;
    codes = Array.copy o.Driver.encoding.Encoding.codes;
    cover = impl.Encoded.cover;
    claims = o.Driver.claims;
  }

let run ?seed m (o : Driver.outcome) impl = Check.certify ?seed m (artifacts_of o impl)

let error_of ~machine (cert : Check.t) =
  if cert.Check.ok then None
  else
    Some
      (Nova_error.Certification_failed
         {
           machine;
           failed = List.map (fun (o : Check.outcome) -> Check.check_name o.Check.id) (Check.failures cert);
         })
