type t = {
  name : string;
  machine : Fsm.t;
  sym : Symbolic.t Stage.t;
  ics : Constraints.input_constraint list Stage.t;
  symbolic_min : Symbmin.t Stage.t;
  ihybrid : Ihybrid.result Stage.t;
  igreedy : Igreedy.result Stage.t;
  iohybrid : Iohybrid.result Stage.t;
  iexact : Iexact.outcome Stage.t;
  kiss : Encoding.t Stage.t;
  one_hot : Encoding.t Stage.t;
  randoms : Encoding.t list Stage.t;
}

let num_random_runs = 8

(* iexact work budget: generous on small machines, the paper itself gives
   up on the big ones. *)
let iexact_budget = 400_000

let make name =
  let machine = Benchmarks.Suite.find name in
  let n = Fsm.num_states ~m:machine in
  let sym = Stage.make ~name:"symbolic-cover" (fun () -> Symbolic.of_fsm machine) in
  let ics =
    Stage.make ~name:"constraints" (fun () -> Constraints.of_symbolic (Stage.force sym))
  in
  let symbolic_min = Stage.make ~name:"symbolic-min" (fun () -> Symbmin.run (Stage.force sym)) in
  {
    name;
    machine;
    sym;
    ics;
    symbolic_min;
    ihybrid =
      Stage.make ~name:"ihybrid" (fun () -> Ihybrid.ihybrid_code ~num_states:n (Stage.force ics));
    igreedy =
      Stage.make ~name:"igreedy" (fun () -> Igreedy.igreedy_code ~num_states:n (Stage.force ics));
    iohybrid =
      Stage.make ~name:"iohybrid" (fun () ->
          Iohybrid.iohybrid_code (Stage.force symbolic_min).Symbmin.problem);
    iexact =
      Stage.make ~name:"iexact" (fun () ->
          Iexact.iexact_code ~num_states:n ~max_work:iexact_budget
            (List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) (Stage.force ics)));
    kiss = Stage.make ~name:"kiss" (fun () -> Baselines.kiss_encode ~num_states:n (Stage.force ics));
    one_hot = Stage.make ~name:"one-hot" (fun () -> Encoding.one_hot n);
    randoms =
      Stage.make ~name:"randoms" (fun () ->
          let nbits = Ihybrid.min_code_length n in
          List.init num_random_runs (fun i ->
              let rng = Random.State.make [| 77; i; n |] in
              Encoding.random rng ~num_states:n ~nbits));
  }

(* All the memo tables below are process-global and may be consulted
   from several domains at once when an [Exec] pool shares a flow;
   [tables_lock] guards every lookup-or-insert. A computation that
   races (two domains missing the same key) runs twice — both compute
   the same value, so the duplicate insert is benign — but the table
   mutation itself is always serialized. The heavy per-stage work is
   additionally single-flighted by [Stage]'s own per-cell lock. *)
let tables_lock = Mutex.create ()

let locked f =
  Mutex.lock tables_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock tables_lock) f

let memo tbl key compute =
  match locked (fun () -> Hashtbl.find_opt tbl key) with
  | Some v -> v
  | None ->
      let v = compute () in
      locked (fun () -> if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v);
      v

let flows : (string, t) Hashtbl.t = Hashtbl.create 41

let get name = memo flows name (fun () -> make name)

let impls : (string * int * int array, Encoded.result) Hashtbl.t = Hashtbl.create 127

let implement flow (e : Encoding.t) =
  let key = (flow.name, e.Encoding.nbits, e.Encoding.codes) in
  memo impls key (fun () -> Encoded.implement flow.machine e)

let area_of flow e = (implement flow e).Encoded.area

let random_best_avg flow =
  let areas = List.map (area_of flow) (Stage.force flow.randoms) in
  let best = List.fold_left min max_int areas in
  let avg = List.fold_left ( + ) 0 areas / List.length areas in
  (best, avg)

let best_ih_ig flow =
  let eh = (Stage.force flow.ihybrid).Ihybrid.encoding in
  let eg = (Stage.force flow.igreedy).Igreedy.encoding in
  if area_of flow eh <= area_of flow eg then eh else eg

(* "Best of NOVA": the minimum area over the program's algorithms,
   including a few multi-start ihybrid runs with shuffled equal-weight
   accretion orders (the paper's tables likewise report the program's
   best solution). Memoized: several tables and all three figures ask
   for it repeatedly. *)
let nova_candidates flow =
  let n = Fsm.num_states ~m:flow.machine in
  let multi =
    List.map
      (fun os ->
        (Ihybrid.ihybrid_code ~num_states:n ~order_seed:os (Stage.force flow.ics)).Ihybrid.encoding)
      [ 1; 2; 3 ]
  in
  [
    (Stage.force flow.ihybrid).Ihybrid.encoding;
    (Stage.force flow.igreedy).Igreedy.encoding;
    (Stage.force flow.iohybrid).Iohybrid.encoding;
  ]
  @ multi

let nova_best_cache : (string, Encoding.t) Hashtbl.t = Hashtbl.create 41

let nova_best flow =
  memo nova_best_cache flow.name @@ fun () ->
  match nova_candidates flow with
  | [] -> assert false
  | e :: rest ->
      List.fold_left
        (fun best c -> if area_of flow c < area_of flow best then c else best)
        e rest

let mustang_flavors =
  [
    ("-n", Baselines.Fanout, false);
    ("-nt", Baselines.Fanout, true);
    ("-p", Baselines.Fanin, false);
    ("-pt", Baselines.Fanin, true);
  ]

let mustang_cache : (string, Encoding.t * string) Hashtbl.t = Hashtbl.create 41

let mustang_best_cubes flow =
  memo mustang_cache flow.name @@ fun () ->
  let n = Fsm.num_states ~m:flow.machine in
  let nbits = Ihybrid.min_code_length n in
  let candidates =
    List.map
      (fun (label, flavor, include_outputs) ->
        (Baselines.mustang_encode flow.machine ~flavor ~include_outputs ~nbits, label))
      mustang_flavors
  in
  List.fold_left
    (fun (be, bl) (e, l) ->
      if (implement flow e).Encoded.num_cubes < (implement flow be).Encoded.num_cubes
      then (e, l)
      else (be, bl))
    (List.hd candidates) (List.tl candidates)

let lits_cache : (string * int * int array, int) Hashtbl.t = Hashtbl.create 127

let factored_literals flow (e : Encoding.t) =
  let key = (flow.name, e.Encoding.nbits, e.Encoding.codes) in
  memo lits_cache key @@ fun () ->
  let r = implement flow e in
  let net =
    Multilevel.of_cover r.Encoded.cover
      ~num_binary_vars:(flow.machine.Fsm.num_inputs + e.Encoding.nbits)
  in
  Multilevel.factored_literals (Multilevel.optimize net)

let clear_cache () =
  locked @@ fun () ->
  Hashtbl.reset flows;
  Hashtbl.reset impls;
  Hashtbl.reset nova_best_cache;
  Hashtbl.reset mustang_cache;
  Hashtbl.reset lits_cache
