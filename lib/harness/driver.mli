(** One-call driver: run any of the paper's encoding algorithms (or a
    baseline) on a machine, under a unified {!Budget.t} and with a
    graceful-degradation fallback ladder. This is the programmatic face
    of [nova encode]. *)

type algorithm =
  | Ihybrid
  | Igreedy
  | Iohybrid
  | Iovariant
  | Iexact
  | Kiss
  | Mustang of Baselines.mustang_flavor * bool  (** flavor, include outputs *)
  | One_hot
  | Random of int  (** seed *)

(** [name algo] is the CLI spelling of [algo]. *)
val name : algorithm -> string

(** [all_algorithms] is every algorithm with default options, in a
    sensible reporting order. *)
val all_algorithms : algorithm list

(** [algorithm_of_name s] inverts {!name} ([random] seeds included:
    ["random[7]"]). [None] on an unknown spelling. *)
val algorithm_of_name : string -> algorithm option

(** A rung of the fallback ladder: the concrete encoder that produced
    (or failed to produce) an encoding. Each algorithm degrades through
    progressively cheaper rungs of its family:
    - [Iexact]: iexact → semiexact → project → igreedy
    - [Ihybrid]: ihybrid → igreedy
    - [Iohybrid]/[Iovariant]: iohybrid/iovariant → ihybrid → igreedy
    - everything else is its own single rung.

    [igreedy] never fails (an exhausted budget degrades it to sequential
    codes), so with fallback enabled the constraint-driven ladders always
    produce an encoding. *)
type rung =
  | Rung_iexact
  | Rung_semiexact
  | Rung_project
  | Rung_ihybrid
  | Rung_igreedy
  | Rung_iohybrid
  | Rung_iovariant
  | Rung_kiss
  | Rung_mustang
  | Rung_one_hot
  | Rung_random

val rung_name : rung -> string

(** [rung_of_name s] inverts {!rung_name} (used by the on-disk result
    cache to round-trip [produced_by]). *)
val rung_of_name : string -> rung option

(** [ladder ~fallback algo] is the rung sequence [encode] tries, in
    order; with [fallback = false], just the first rung. *)
val ladder : fallback:bool -> algorithm -> rung list

type outcome = {
  encoding : Encoding.t;
  algorithm : algorithm;  (** the algorithm that was requested *)
  produced_by : rung;  (** the rung that actually produced [encoding] *)
  degradations : (rung * Nova_error.t) list;
      (** rungs tried before [produced_by], in order, each with why it
          failed; empty when the primary rung succeeded *)
  claims : Check.claims;
      (** what the producing rung reports satisfied — input-constraint
          groups and covering pairs the certificate layer re-verifies;
          baselines claim nothing *)
}

(** When [false] (the default), {!encode} prints a one-line warning to
    stderr every time the fallback ladder degrades past the primary rung,
    so silent quality loss is loud by default. The CLI's [--quiet] flag
    sets it. *)
val quiet : bool ref

(** [degradation_warning o] is the warning line {!encode} prints for a
    degraded outcome ([None] when the primary rung succeeded). Exposed so
    tests can assert on the exact text without scraping stderr. *)
val degradation_warning : outcome -> string option

(** [encode ?bits ?budget ?fallback machine algo] runs the algorithm.
    [bits] overrides the code length where the algorithm accepts one.
    [budget] (default {!Budget.unlimited}) bounds the whole call — work,
    wall-clock deadline and cancellation included; under an unlimited
    budget the encodings are identical to the pre-pipeline driver's.
    [fallback] (default [true]) enables the degradation ladder; with
    [~fallback:false] a failing primary rung is reported as an error
    instead — e.g. [Iexact] out of budget returns
    [Error (Budget_exhausted { stage = Iexact; _ })] rather than falling
    through to [semiexact]. No exception escapes: failures are
    [Nova_error.t] values. *)
val encode :
  ?bits:int ->
  ?budget:Budget.t ->
  ?fallback:bool ->
  Fsm.t ->
  algorithm ->
  (outcome, Nova_error.t) result

(** [report ?bits ?budget ?fallback machine algo] is [encode] plus the
    minimized implementation (the final ESPRESSO run also draws on
    [budget] — an exhausted budget yields a valid but less-minimized
    cover). *)
val report :
  ?bits:int ->
  ?budget:Budget.t ->
  ?fallback:bool ->
  Fsm.t ->
  algorithm ->
  (outcome * Encoded.result, Nova_error.t) result
