(** Per-machine experiment flow with caching. Domain-safe: the memo
    tables are mutex-guarded and each {!Stage.t} single-flights its
    computation, so flows may be shared by an [Exec] worker pool.

    Every paper table needs some subset of: the multiple-valued
    minimization (input constraints), symbolic minimization (mixed
    constraints), the four NOVA encodings, the baselines, random
    assignments, and an ESPRESSO run per encoding. Each is a memoized
    {!Stage.t} computed once per machine: forcing a stage records its
    wall-clock time ({!Stage.elapsed}) and an [Instrument] span under
    ["pipeline.<stage>"]. *)

type t = {
  name : string;
  machine : Fsm.t;
  sym : Symbolic.t Stage.t;
  ics : Constraints.input_constraint list Stage.t;
  symbolic_min : Symbmin.t Stage.t;
  ihybrid : Ihybrid.result Stage.t;
  igreedy : Igreedy.result Stage.t;
  iohybrid : Iohybrid.result Stage.t;
  iexact : Iexact.outcome Stage.t;
  kiss : Encoding.t Stage.t;
  one_hot : Encoding.t Stage.t;
  randoms : Encoding.t list Stage.t;  (** the paper's random-assignment pool *)
}

(** [get name] is the cached flow of benchmark machine [name]. *)
val get : string -> t

(** [implement flow encoding] minimizes the encoded PLA (cached per
    distinct encoding). *)
val implement : t -> Encoding.t -> Encoded.result

(** [area_of flow encoding] is [ (implement flow encoding).area ]. *)
val area_of : t -> Encoding.t -> int

(** [random_best_avg flow] is the best and average area over the random
    pool. *)
val random_best_avg : t -> int * int

(** [nova_best flow] is the minimum-area encoding among ihybrid, igreedy
    and iohybrid — the paper's "best of NOVA". *)
val nova_best : t -> Encoding.t

(** [best_ih_ig flow] is the smaller-area of ihybrid and igreedy. *)
val best_ih_ig : t -> Encoding.t

(** [mustang_best_cubes flow] is the best MUSTANG encoding over the
    [-p]/[-n]/[-pt]/[-nt] flavors at minimum code length, by cube count
    (paper's Table VII protocol), together with its flavor label. *)
val mustang_best_cubes : t -> Encoding.t * string

(** [factored_literals flow encoding] runs the multilevel optimizer on
    the minimized encoded cover and counts factored literals. *)
val factored_literals : t -> Encoding.t -> int

(** [num_random_runs] is the size of the random pool per machine (the
    paper used one per state; we cap it — see DESIGN.md). *)
val num_random_runs : int

(** [clear_cache ()] empties all caches (used by benchmarks to measure
    cold runs). *)
val clear_cache : unit -> unit
