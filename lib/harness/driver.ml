(* Instrumentation probes: no-ops unless Instrument.enable (). *)
let t_encode = Instrument.timer "driver.encode"
let t_implement = Instrument.timer "driver.implement"

type algorithm =
  | Ihybrid
  | Igreedy
  | Iohybrid
  | Iovariant
  | Iexact
  | Kiss
  | Mustang of Baselines.mustang_flavor * bool
  | One_hot
  | Random of int

let name = function
  | Ihybrid -> "ihybrid"
  | Igreedy -> "igreedy"
  | Iohybrid -> "iohybrid"
  | Iovariant -> "iovariant"
  | Iexact -> "iexact"
  | Kiss -> "kiss"
  | Mustang (Baselines.Fanout, false) -> "mustang-n"
  | Mustang (Baselines.Fanout, true) -> "mustang-nt"
  | Mustang (Baselines.Fanin, false) -> "mustang-p"
  | Mustang (Baselines.Fanin, true) -> "mustang-pt"
  | One_hot -> "onehot"
  | Random seed -> Printf.sprintf "random[%d]" seed

let all_algorithms =
  [
    Ihybrid; Igreedy; Iohybrid; Iovariant; Iexact; Kiss;
    Mustang (Baselines.Fanout, true); Mustang (Baselines.Fanin, true);
    One_hot; Random 0;
  ]

let encode ?bits (m : Fsm.t) algo =
  Instrument.time t_encode @@ fun () ->
  let n = Fsm.num_states ~m in
  let ics () = Constraints.of_symbolic (Symbolic.of_fsm m) in
  let problem () = (Symbmin.run (Symbolic.of_fsm m)).Symbmin.problem in
  match algo with
  | Ihybrid -> (Ihybrid.ihybrid_code ~num_states:n ?nbits:bits (ics ())).Ihybrid.encoding
  | Igreedy -> (Igreedy.igreedy_code ~num_states:n ?nbits:bits (ics ())).Igreedy.encoding
  | Iohybrid -> (Iohybrid.iohybrid_code ?nbits:bits (problem ())).Iohybrid.encoding
  | Iovariant -> (Iohybrid.iovariant_code ?nbits:bits (problem ())).Iohybrid.encoding
  | Iexact -> (
      let groups =
        List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) (ics ())
      in
      match Iexact.iexact_code ~num_states:n groups with
      | Iexact.Sat { k; codes; _ } -> Encoding.make ~nbits:k codes
      | Iexact.Exhausted -> failwith "iexact: work budget exhausted")
  | Kiss -> Baselines.kiss_encode ~num_states:n (ics ())
  | Mustang (flavor, include_outputs) ->
      let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
      Baselines.mustang_encode m ~flavor ~include_outputs ~nbits
  | One_hot -> Encoding.one_hot n
  | Random seed ->
      let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
      Encoding.random (Random.State.make [| seed |]) ~num_states:n ~nbits

let report ?bits m algo =
  let e = encode ?bits m algo in
  (e, Instrument.time t_implement (fun () -> Encoded.implement m e))
