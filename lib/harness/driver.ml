(* Instrumentation probes: no-ops unless Instrument.enable (). *)
let t_encode = Instrument.timer "driver.encode"
let t_implement = Instrument.timer "driver.implement"
let t_constraints = Instrument.timer "pipeline.constraints"
let t_symbolic_min = Instrument.timer "pipeline.symbolic-min"

type algorithm =
  | Ihybrid
  | Igreedy
  | Iohybrid
  | Iovariant
  | Iexact
  | Kiss
  | Mustang of Baselines.mustang_flavor * bool
  | One_hot
  | Random of int

let name = function
  | Ihybrid -> "ihybrid"
  | Igreedy -> "igreedy"
  | Iohybrid -> "iohybrid"
  | Iovariant -> "iovariant"
  | Iexact -> "iexact"
  | Kiss -> "kiss"
  | Mustang (Baselines.Fanout, false) -> "mustang-n"
  | Mustang (Baselines.Fanout, true) -> "mustang-nt"
  | Mustang (Baselines.Fanin, false) -> "mustang-p"
  | Mustang (Baselines.Fanin, true) -> "mustang-pt"
  | One_hot -> "onehot"
  | Random seed -> Printf.sprintf "random[%d]" seed

let all_algorithms =
  [
    Ihybrid; Igreedy; Iohybrid; Iovariant; Iexact; Kiss;
    Mustang (Baselines.Fanout, true); Mustang (Baselines.Fanin, true);
    One_hot; Random 0;
  ]

let algorithm_of_name s =
  match s with
  | "ihybrid" -> Some Ihybrid
  | "igreedy" -> Some Igreedy
  | "iohybrid" -> Some Iohybrid
  | "iovariant" -> Some Iovariant
  | "iexact" -> Some Iexact
  | "kiss" -> Some Kiss
  | "mustang-n" -> Some (Mustang (Baselines.Fanout, false))
  | "mustang-nt" -> Some (Mustang (Baselines.Fanout, true))
  | "mustang-p" -> Some (Mustang (Baselines.Fanin, false))
  | "mustang-pt" -> Some (Mustang (Baselines.Fanin, true))
  | "onehot" -> Some One_hot
  | _ ->
      (* random[SEED] *)
      (try Some (Random (Scanf.sscanf s "random[%d]" (fun n -> n))) with _ -> None)

type rung =
  | Rung_iexact
  | Rung_semiexact
  | Rung_project
  | Rung_ihybrid
  | Rung_igreedy
  | Rung_iohybrid
  | Rung_iovariant
  | Rung_kiss
  | Rung_mustang
  | Rung_one_hot
  | Rung_random

let all_rungs =
  [
    Rung_iexact; Rung_semiexact; Rung_project; Rung_ihybrid; Rung_igreedy; Rung_iohybrid;
    Rung_iovariant; Rung_kiss; Rung_mustang; Rung_one_hot; Rung_random;
  ]

let rung_name = function
  | Rung_iexact -> "iexact"
  | Rung_semiexact -> "semiexact"
  | Rung_project -> "project"
  | Rung_ihybrid -> "ihybrid"
  | Rung_igreedy -> "igreedy"
  | Rung_iohybrid -> "iohybrid"
  | Rung_iovariant -> "iovariant"
  | Rung_kiss -> "kiss"
  | Rung_mustang -> "mustang"
  | Rung_one_hot -> "onehot"
  | Rung_random -> "random"

let rung_of_name s = List.find_opt (fun r -> rung_name r = s) all_rungs

let stage_of = function
  | Rung_iexact -> Nova_error.Iexact
  | Rung_semiexact -> Nova_error.Semiexact
  | Rung_project -> Nova_error.Project
  | Rung_ihybrid -> Nova_error.Ihybrid
  | Rung_igreedy -> Nova_error.Igreedy
  | Rung_iohybrid -> Nova_error.Iohybrid
  | Rung_iovariant -> Nova_error.Iovariant
  | Rung_kiss | Rung_mustang | Rung_one_hot | Rung_random -> Nova_error.Baseline

(* The fallback ladder of each algorithm: progressively cheaper rungs
   of the same family. [igreedy] never fails, so every constraint-driven
   ladder terminates; the baselines cannot run out of budget at all. *)
let ladder ~fallback algo =
  let rungs =
    match algo with
    | Iexact -> [ Rung_iexact; Rung_semiexact; Rung_project; Rung_igreedy ]
    | Ihybrid -> [ Rung_ihybrid; Rung_igreedy ]
    | Igreedy -> [ Rung_igreedy ]
    | Iohybrid -> [ Rung_iohybrid; Rung_ihybrid; Rung_igreedy ]
    | Iovariant -> [ Rung_iovariant; Rung_ihybrid; Rung_igreedy ]
    | Kiss -> [ Rung_kiss ]
    | Mustang _ -> [ Rung_mustang ]
    | One_hot -> [ Rung_one_hot ]
    | Random _ -> [ Rung_random ]
  in
  if fallback then rungs else [ List.hd rungs ]

type outcome = {
  encoding : Encoding.t;
  algorithm : algorithm;
  produced_by : rung;
  degradations : (rung * Nova_error.t) list;
  claims : Check.claims;
}

let quiet = ref false

let degradation_warning o =
  match o.degradations with
  | [] -> None
  | ds ->
      let why =
        match List.rev ds with (_, first_error) :: _ -> Nova_error.to_string first_error | [] -> ""
      in
      let attempts = List.length ds + 1 in
      Some
        (Printf.sprintf
           "nova: warning: %s degraded to %s after %d rung attempt%s (%s)"
           (name o.algorithm) (rung_name o.produced_by) attempts
           (if attempts = 1 then "" else "s")
           why)

let why budget = Option.value (Budget.reason budget) ~default:Budget.Work

let groups_of ics =
  List.map (fun (ic : Constraints.input_constraint) -> ic.Constraints.states) ics

(* What each rung may claim to the certificate layer: only the
   constraints it actually reports satisfied, never "everything". *)
let ic_claims ics = { Check.claimed_ics = groups_of ics; claimed_ocs = [] }

(* The [project] rung: last resort of the iexact ladder. Start from the
   identity encoding at the minimum length and project into extra
   dimensions (Prop 4.2.1) until every constraint is satisfied. Each
   projection satisfies at least one more constraint, so the loop
   terminates; the 60-bit cap guards against degenerate constraint
   sets. *)
let project_rung ~budget ~num_states ics =
  let min_len = Ihybrid.min_code_length num_states in
  let nbits = ref min_len in
  let codes = ref (Array.init num_states (fun i -> i)) in
  let encoding () = Encoding.make ~nbits:!nbits !codes in
  let sic0, ric0 =
    List.partition
      (fun (ic : Constraints.input_constraint) ->
        Constraints.satisfied (encoding ()) ic.Constraints.states)
      ics
  in
  let sic = ref sic0 and ric = ref ric0 in
  while !ric <> [] && !nbits < 60 && not (Budget.exhausted budget) do
    let codes', newly, still = Project.project ~codes:!codes ~nbits:!nbits ~sic:!sic ~ric:!ric in
    codes := codes';
    sic := newly @ !sic;
    ric := still;
    incr nbits
  done;
  if !ric = [] then Ok (encoding (), ic_claims !sic)
  else if Budget.exhausted budget then
    Error (Nova_error.Budget_exhausted { stage = Nova_error.Project; reason = why budget })
  else
    Error
      (Nova_error.Infeasible
         {
           stage = Nova_error.Project;
           msg =
             Printf.sprintf "%d constraints still unsatisfied at the 60-bit cap"
               (List.length !ric);
         })

let run_rung ~budget ~bits ~num_states ~ics ~problem (m : Fsm.t) algo rung =
  let stage = stage_of rung in
  let exhausted reason = Error (Nova_error.Budget_exhausted { stage; reason }) in
  try
    match rung with
    | Rung_iexact -> (
        match Iexact.iexact_code ~num_states ~budget (groups_of (Lazy.force ics)) with
        | Iexact.Sat { k; codes; _ } ->
            Ok (Encoding.make ~nbits:k codes, ic_claims (Lazy.force ics))
        | Iexact.Exhausted -> exhausted (why budget))
    | Rung_semiexact -> (
        let k = max (Fsm.min_code_length m) (Option.value bits ~default:0) in
        match Iexact.semiexact_code ~num_states ~k ~budget (groups_of (Lazy.force ics)) with
        | Some codes -> Ok (Encoding.make ~nbits:k codes, ic_claims (Lazy.force ics))
        | None ->
            if Budget.exhausted budget then exhausted (why budget)
            else
              Error
                (Nova_error.Infeasible
                   {
                     stage;
                     msg =
                       Printf.sprintf "no embedding at %d bits within the bounded backtracking" k;
                   }))
    | Rung_project -> project_rung ~budget ~num_states (Lazy.force ics)
    | Rung_ihybrid ->
        let r = Ihybrid.ihybrid_code ~num_states ?nbits:bits ~budget (Lazy.force ics) in
        if r.Ihybrid.random_start && Budget.exhausted budget then exhausted (why budget)
        else Ok (r.Ihybrid.encoding, ic_claims r.Ihybrid.satisfied)
    | Rung_igreedy ->
        let r = Igreedy.igreedy_code ~num_states ?nbits:bits ~budget (Lazy.force ics) in
        Ok (r.Igreedy.encoding, ic_claims r.Igreedy.satisfied)
    | Rung_iohybrid | Rung_iovariant ->
        let code = if rung = Rung_iohybrid then Iohybrid.iohybrid_code else Iohybrid.iovariant_code in
        let r = code ?nbits:bits ~budget (Lazy.force problem) in
        if r.Iohybrid.random_start && Budget.exhausted budget then exhausted (why budget)
        else
          Ok
            ( r.Iohybrid.encoding,
              {
                Check.claimed_ics = groups_of r.Iohybrid.sat_inputs;
                claimed_ocs =
                  List.concat_map
                    (fun (cl : Constraints.oc_cluster) ->
                      List.map
                        (fun (oc : Constraints.output_constraint) ->
                          (oc.Constraints.covering, oc.Constraints.covered))
                        cl.Constraints.edges)
                    r.Iohybrid.sat_clusters;
              } )
    | Rung_kiss -> Ok (Baselines.kiss_encode ~num_states (Lazy.force ics), Check.no_claims)
    | Rung_mustang ->
        let flavor, include_outputs =
          match algo with Mustang (f, o) -> (f, o) | _ -> (Baselines.Fanout, true)
        in
        let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
        Ok (Baselines.mustang_encode m ~flavor ~include_outputs ~nbits, Check.no_claims)
    | Rung_one_hot -> Ok (Encoding.one_hot num_states, Check.no_claims)
    | Rung_random ->
        let seed = match algo with Random s -> s | _ -> 0 in
        let nbits = Option.value bits ~default:(Fsm.min_code_length m) in
        Ok
          ( Encoding.random (Random.State.make [| seed |]) ~num_states ~nbits,
            Check.no_claims )
  with
  | Invalid_argument msg -> Error (Nova_error.Infeasible { stage; msg })
  | Budget.Out_of_budget reason -> Error (Nova_error.Budget_exhausted { stage; reason })

(* The root span of one encoding run. Its machine/algorithm attributes
   flow down by inheritance to every rung, stage, espresso-phase and
   check span opened below it on the same track, which is how every span
   in an exported trace ends up self-describing. *)
let traced_encode (m : Fsm.t) algo f =
  if not (Trace.enabled ()) then f ()
  else
    Trace.with_span_result "driver.encode"
      ~attrs:
        [ ("machine", Trace.String m.Fsm.name); ("algorithm", Trace.String (name algo)) ]
      (fun () ->
        let r = f () in
        let end_attrs =
          match r with
          | Ok o ->
              [
                ("produced_by", Trace.String (rung_name o.produced_by));
                ("nbits", Trace.Int o.encoding.Encoding.nbits);
                ("degradations", Trace.Int (List.length o.degradations));
              ]
          | Error err -> [ ("error", Trace.String (Nova_error.to_string err)) ]
        in
        (r, end_attrs))

let encode ?bits ?(budget = Budget.unlimited) ?(fallback = true) (m : Fsm.t) algo =
  Instrument.time t_encode @@ fun () ->
  traced_encode m algo @@ fun () ->
  let num_states = Fsm.num_states ~m in
  (* Shared upstream artifacts, computed at most once per call whatever
     rung (or rungs) the ladder visits. *)
  let sym = lazy (Symbolic.of_fsm m) in
  let ics =
    lazy (Instrument.time t_constraints (fun () -> Constraints.of_symbolic ~budget (Lazy.force sym)))
  in
  let problem =
    lazy
      (Instrument.time t_symbolic_min (fun () ->
           (Symbmin.run ~budget (Lazy.force sym)).Symbmin.problem))
  in
  let rec descend degraded = function
    | [] -> (
        (* Every rung failed (only possible without the igreedy terminal
           rung, i.e. with [fallback = false]): report the primary
           algorithm's own failure. *)
        match List.rev degraded with
        | (_, first_error) :: _ -> Error first_error
        | [] -> Error (Nova_error.Invalid_request "empty fallback ladder"))
    | rung :: rest -> (
        let timer = Instrument.timer ("pipeline.rung." ^ rung_name rung) in
        let run () =
          Instrument.time timer (fun () ->
              run_rung ~budget ~bits ~num_states ~ics ~problem m algo rung)
        in
        let result =
          if not (Trace.enabled ()) then run ()
          else
            Trace.with_span_result ("rung." ^ rung_name rung)
              ~attrs:[ ("rung", Trace.String (rung_name rung)) ]
              (fun () ->
                let r = run () in
                let end_attrs =
                  ("spent", Trace.Int (Budget.spent budget))
                  ::
                  (match r with
                  | Ok (e, _) ->
                      [ ("ok", Trace.Bool true); ("nbits", Trace.Int e.Encoding.nbits) ]
                  | Error err ->
                      [ ("ok", Trace.Bool false);
                        ("error", Trace.String (Nova_error.to_string err)) ])
                in
                (r, end_attrs))
        in
        match result with
        | Ok (encoding, claims) ->
            let o =
              { encoding; algorithm = algo; produced_by = rung; degradations = List.rev degraded;
                claims }
            in
            (if not !quiet then
               match degradation_warning o with Some w -> prerr_endline w | None -> ());
            Ok o
        | Error err ->
            if Trace.enabled () then
              Trace.instant "driver.degradation"
                ~attrs:
                  [ ("rung", Trace.String (rung_name rung));
                    ("error", Trace.String (Nova_error.to_string err)) ];
            descend ((rung, err) :: degraded) rest)
  in
  descend [] (ladder ~fallback algo)

let report ?bits ?budget ?fallback m algo =
  match encode ?bits ?budget ?fallback m algo with
  | Error err -> Error err
  | Ok outcome ->
      let impl =
        Instrument.time t_implement @@ fun () ->
        if not (Trace.enabled ()) then Encoded.implement ?budget m outcome.encoding
        else
          Trace.with_span_result "driver.implement"
            ~attrs:
              [ ("machine", Trace.String m.Fsm.name);
                ("algorithm", Trace.String (name algo)) ]
            (fun () ->
              let impl = Encoded.implement ?budget m outcome.encoding in
              (impl, [ ("num_cubes", Trace.Int impl.Encoded.num_cubes) ]))
      in
      Ok (outcome, impl)
