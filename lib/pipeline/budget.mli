(** A unified work/deadline/cancellation budget for the encoding
    pipeline.

    A budget carries a monotone work counter (one unit per attempted face
    assignment, expanded cube, or similar elementary step), an optional
    wall-clock deadline, and an optional cancellation callback. Budgets
    form a tree: {!sub} creates a child whose work also counts against
    every ancestor, so an algorithm can impose its intrinsic per-call cap
    (the historical [?max_work] defaults) while still respecting a global
    budget threaded from the driver or the CLI.

    Two checks mirror the two historical idioms exactly:
    - {!tick} increments and reports failure once the counter {e exceeds}
      a cap (the [Embed] tick semantics), and
    - {!exhausted} pre-checks whether the counter has {e reached} a cap
      (the [iexact_code] loop-guard semantics),

    so running under an unconstrained budget reproduces the pre-pipeline
    behavior bit for bit. Deadlines are polled every few hundred ticks
    (and on every {!exhausted} call), keeping the overhead of an
    unconstrained budget to a counter increment.

    Cross-domain cancellation: the tripped flag is an [Atomic.t], so
    {!cancel} may be called from any domain (the [Exec] racing pool uses
    it to trip losing portfolio members) and is observed by the ticking
    domain within one {!tick}. The work counters themselves are not
    atomic — a budget tree must be ticked by a single domain; only the
    cancellation signal is cross-domain sound. *)

type reason =
  | Work  (** a work cap was reached *)
  | Deadline  (** the wall-clock deadline passed *)
  | Cancelled  (** the cancellation callback returned [true] *)

type t

(** [unlimited] never exhausts: no caps, no deadline, no cancellation.
    It is the default of every [?budget] parameter. *)
val unlimited : t

(** [create ?max_work ?deadline_ms ?cancel ()] is a fresh root budget.
    [deadline_ms] is relative to now; [cancel] is polled periodically. *)
val create : ?max_work:int -> ?deadline_ms:float -> ?cancel:(unit -> bool) -> unit -> t

(** [sub ?max_work parent] is a child budget: its ticks also count
    against [parent], and it is exhausted as soon as [parent] is. *)
val sub : ?max_work:int -> t -> t

(** Server-side admission ceilings: the most deadline / work a single
    request may consume, regardless of what it asked for. *)
type caps = { cap_deadline_ms : float option; cap_work : int option }

(** No ceilings: {!derive} then builds the budget the request asked
    for. *)
val no_caps : caps

(** [derive ?deadline_ms ?max_work caps] is the per-request budget a
    serving layer admits the request under: on each axis the minimum of
    the request's ask and the cap (an axis neither side bounds stays
    unlimited). Always a {e fresh} root — never the shared {!unlimited}
    value — because derived budgets are ticked concurrently by request
    handlers; with {!no_caps} and no request limits it is behaviorally
    the one-shot CLI's default. *)
val derive : ?deadline_ms:float -> ?max_work:int -> caps -> t

(** [tick b] charges one unit of work. Returns [false] when the budget
    (or an ancestor) is exhausted — the caller should stop. *)
val tick : t -> bool

(** [cancel b] trips [b] with reason [Cancelled], immediately and from
    any domain. The domain ticking [b] (or any budget below it) observes
    the trip on its next {!tick} or {!exhausted} check. Idempotent; a
    budget that already tripped for another reason keeps that reason. *)
val cancel : t -> unit

(** [exhausted b] pre-checks the budget without charging work, polling
    the deadline and cancellation callback. *)
val exhausted : t -> bool

(** [reason b] is why the budget ran out, if it did. *)
val reason : t -> reason option

(** [spent b] is the work charged to [b] (including by sub-budgets). *)
val spent : t -> int

(** Raised by pipeline stages that cannot return a degraded result when
    their budget runs out mid-flight (e.g. {!Out_encoder}); the driver
    converts it into [Nova_error.Budget_exhausted]. *)
exception Out_of_budget of reason
