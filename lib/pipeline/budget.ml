type reason = Work | Deadline | Cancelled

(* [tripped] is Atomic so that another domain (a racing winner) can trip
   this budget mid-[tick] without torn reads: every [tick] reads it on
   its way out, so a cross-domain [cancel] is observed within one tick.
   [work]/[until_poll] stay plain mutable fields — a budget tree is
   owned by the single domain that ticks it; only the cancellation
   signal crosses domains. *)
type t = {
  parent : t option;
  max_work : int option;
  deadline : float option;  (* absolute, Unix.gettimeofday clock *)
  cancel : (unit -> bool) option;
  mutable work : int;
  tripped : reason option Atomic.t;
  mutable until_poll : int;
}

exception Out_of_budget of reason

(* Deadline/cancellation are polled every [poll_interval] ticks, so a
   tick on an unconstrained budget is just a couple of increments. *)
let poll_interval = 256

let make ?parent ?max_work ?deadline ?cancel () =
  { parent; max_work; deadline; cancel; work = 0; tripped = Atomic.make None;
    until_poll = poll_interval }

let unlimited = make ()

let create ?max_work ?deadline_ms ?cancel () =
  let deadline = Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) deadline_ms in
  make ?max_work ?deadline ?cancel ()

let sub ?max_work parent = make ~parent ?max_work ()

type caps = { cap_deadline_ms : float option; cap_work : int option }

let no_caps = { cap_deadline_ms = None; cap_work = None }

(* Admission-control budget derivation: a serving layer imposes its own
   per-request ceilings on top of whatever the request asked for. The
   effective limit on each axis is the minimum of the two — a request
   can always ask for less than the cap, never for more, and an axis
   neither side bounds stays unlimited. *)
let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> Some (min x y)

(* Always a fresh root, even when unconstrained: derived budgets are
   ticked by concurrent request handlers, and sharing the global
   [unlimited] value across them would share its counters. *)
let derive ?deadline_ms ?max_work caps =
  match
    (min_opt caps.cap_deadline_ms deadline_ms, min_opt caps.cap_work max_work)
  with
  | None, None -> create ()
  | deadline_ms, max_work -> create ?deadline_ms ?max_work ()

let reason_name = function Work -> "work" | Deadline -> "deadline" | Cancelled -> "cancelled"

(* Trip [b] with [r] unless already tripped: the first reason wins, even
   against a concurrent trip from another domain. The winning trip emits
   a trace instant on the tripping domain's track and counts into the
   metrics registry by reason (a trip fires at most once per budget
   node, so the registration lookup is off the tick path). *)
let trip b r =
  if Atomic.compare_and_set b.tripped None (Some r) then begin
    Metrics.Registry.inc
      (Metrics.Registry.counter ~help:"Budget trips by reason."
         ~labels:[ ("reason", reason_name r) ]
         "nova_budget_trips_total");
    if Trace.enabled () then
      Trace.instant "budget.trip"
        ~attrs:[ ("reason", Trace.String (reason_name r)); ("spent", Trace.Int b.work) ]
  end

let cancel b = trip b Cancelled

let rec poll b =
  (if Atomic.get b.tripped = None then
     match b.deadline with
     | Some d when Unix.gettimeofday () >= d -> trip b Deadline
     | Some _ | None -> (
         match b.cancel with
         | Some f when f () -> trip b Cancelled
         | Some _ | None -> ()));
  match b.parent with Some p -> poll p | None -> ()

let rec first_tripped b =
  match Atomic.get b.tripped with
  | Some r -> Some r
  | None -> ( match b.parent with Some p -> first_tripped p | None -> None)

(* Charge one unit to [b] and every ancestor; a counter that moves past
   its cap trips its node ([work > cap]: the historical Embed tick). *)
let rec bump b =
  b.work <- b.work + 1;
  (match b.max_work with
  | Some cap when b.work > cap -> trip b Work
  | Some _ | None -> ());
  match b.parent with Some p -> bump p | None -> ()

let tick b =
  bump b;
  b.until_poll <- b.until_poll - 1;
  if b.until_poll <= 0 then begin
    b.until_poll <- poll_interval;
    poll b
  end;
  first_tripped b = None

(* [work >= cap]: the historical iexact loop-guard pre-check. *)
let rec at_cap b =
  (match b.max_work with Some cap -> b.work >= cap | None -> false)
  || match b.parent with Some p -> at_cap p | None -> false

let exhausted b =
  poll b;
  first_tripped b <> None || at_cap b

let reason b =
  match first_tripped b with
  | Some r -> Some r
  | None -> if at_cap b then Some Work else None

let spent b = b.work
