type stage =
  | Parse
  | Constraints
  | Symbolic_min
  | Iexact
  | Semiexact
  | Project
  | Ihybrid
  | Igreedy
  | Iohybrid
  | Iovariant
  | Out_encoder
  | Baseline
  | Minimize

type t =
  | Budget_exhausted of { stage : stage; reason : Budget.reason }
  | Parse_error of { file : string; line : int; col : int; msg : string }
  | Infeasible of { stage : stage; msg : string }
  | Invalid_request of string
  | Certification_failed of { machine : string; failed : string list }
  | Job_crashed of { job : string; attempts : int; detail : string }

let stage_name = function
  | Parse -> "parse"
  | Constraints -> "constraints"
  | Symbolic_min -> "symbolic-min"
  | Iexact -> "iexact"
  | Semiexact -> "semiexact"
  | Project -> "project"
  | Ihybrid -> "ihybrid"
  | Igreedy -> "igreedy"
  | Iohybrid -> "iohybrid"
  | Iovariant -> "iovariant"
  | Out_encoder -> "out-encoder"
  | Baseline -> "baseline"
  | Minimize -> "minimize"

let reason_name = function
  | Budget.Work -> "work"
  | Budget.Deadline -> "deadline"
  | Budget.Cancelled -> "cancelled"

let to_string = function
  | Budget_exhausted { stage; reason } ->
      Printf.sprintf "%s: budget exhausted (%s)" (stage_name stage) (reason_name reason)
  | Parse_error { file; line; col; msg } -> Printf.sprintf "%s:%d:%d: %s" file line col msg
  | Infeasible { stage; msg } -> Printf.sprintf "%s: infeasible: %s" (stage_name stage) msg
  | Invalid_request msg -> Printf.sprintf "invalid request: %s" msg
  | Certification_failed { machine; failed } ->
      Printf.sprintf "certification failed on %s: %s" machine (String.concat ", " failed)
  | Job_crashed { job; attempts; detail } ->
      Printf.sprintf "%s: crashed after %d attempt%s: %s" job attempts
        (if attempts = 1 then "" else "s")
        detail

(* One exit code per constructor, so scripts can tell failure modes
   apart. 1 is cmdliner's own; 124/125 are reserved by it too. *)
let exit_code = function
  | Parse_error _ -> 2
  | Budget_exhausted _ -> 3
  | Infeasible _ -> 4
  | Invalid_request _ -> 5
  | Certification_failed _ -> 6
  | Job_crashed _ -> 7

(* The supervisor's retry taxonomy. Crashes are transient: they come
   from runtime faults (a dying domain, injected chaos, an I/O error
   surfacing as an exception) that a retry can genuinely outrun. Every
   other constructor is a deterministic verdict about the input or the
   budget — retrying replays the same computation to the same end, so
   the supervisor must not burn attempts on them. *)
let is_transient = function
  | Job_crashed _ -> true
  | Budget_exhausted _ | Parse_error _ | Infeasible _ | Invalid_request _
  | Certification_failed _ ->
      false
