(** A memoized, timed pipeline stage.

    A stage is a named thunk computed at most once. Forcing it measures
    wall-clock time unconditionally (the harness tables report stage
    times even without instrumentation) and records an [Instrument] span
    under ["pipeline.<name>"] when probes are enabled. This replaces the
    [Lazy.t]-plus-[float ref] pattern the harness flow used to carry. *)

type 'a t

(** [make ~name f] is a pending stage; [f] runs on first {!force}. *)
val make : name:string -> (unit -> 'a) -> 'a t

(** [force t] computes (once) and returns the stage's artifact. *)
val force : 'a t -> 'a

val name : 'a t -> string

(** [forced t] is whether the artifact has been computed. *)
val forced : 'a t -> bool

(** [elapsed t] is the wall-clock seconds the computation took, [0.]
    while the stage is still pending. *)
val elapsed : 'a t -> float
