(** The typed error taxonomy of the encoding pipeline.

    Every stage entry point of the pipeline returns
    [('a, Nova_error.t) result] instead of raising, so the driver can
    degrade gracefully (fall down the ladder) and the CLI can map each
    failure mode to a distinct exit code. *)

(** The pipeline stage an error originated in. *)
type stage =
  | Parse
  | Constraints  (** multiple-valued minimization for input constraints *)
  | Symbolic_min  (** symbolic minimization (Section 6.1) *)
  | Iexact
  | Semiexact
  | Project
  | Ihybrid
  | Igreedy
  | Iohybrid
  | Iovariant
  | Out_encoder
  | Baseline  (** kiss / mustang / one-hot / random baseline encoders *)
  | Minimize  (** final ESPRESSO minimization of the encoded cover *)

type t =
  | Budget_exhausted of { stage : stage; reason : Budget.reason }
      (** the stage's work/deadline budget ran out before it produced a
          usable result *)
  | Parse_error of { file : string; line : int; col : int; msg : string }
      (** malformed input; [line]/[col] are 1-based, 0 when unknown *)
  | Infeasible of { stage : stage; msg : string }
      (** the stage cannot succeed regardless of budget (unsatisfiable
          constraints at the requested length, cyclic covering
          relations, ...) *)
  | Invalid_request of string  (** the request itself is malformed *)
  | Certification_failed of { machine : string; failed : string list }
      (** the independent certificate layer ([Check]) rejected a pipeline
          result: [failed] names the checks that did not pass *)
  | Job_crashed of { job : string; attempts : int; detail : string }
      (** a supervised job raised instead of returning: [job] identifies
          the work (machine/algorithm), [attempts] how many times the
          supervisor ran it before giving up (or [0] when it was
          quarantined without running), [detail] the exception and a
          backtrace head *)

val stage_name : stage -> string
val reason_name : Budget.reason -> string

(** [to_string e] is a one-line human-readable rendering. *)
val to_string : t -> string

(** [exit_code e] is the CLI exit code for [e]: 2 parse, 3 budget,
    4 infeasible, 5 invalid request, 6 certification failure, 7 job
    crash (distinct per constructor). *)
val exit_code : t -> int

(** [is_transient e] is the supervisor's retry taxonomy: [true] only for
    {!Job_crashed} (runtime faults a retry can outrun). Deterministic
    verdicts — [Parse_error], [Certification_failed], [Infeasible],
    [Invalid_request], [Budget_exhausted] — are permanent: retrying
    replays the same computation to the same end. *)
val is_transient : t -> bool
