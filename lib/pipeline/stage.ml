type 'a state = Pending of (unit -> 'a) | Done of 'a

(* [lock] makes [force] domain-safe: concurrent forcing from the [Exec]
   pool computes the thunk exactly once, and the second domain blocks
   until the value is ready (stage thunks never force themselves, so the
   per-cell lock cannot self-deadlock). *)
type 'a t = {
  name : string;
  timer : Instrument.timer;
  lock : Mutex.t;
  mutable state : 'a state;
  mutable elapsed : float;
}

let make ~name f =
  { name; timer = Instrument.timer ("pipeline." ^ name); lock = Mutex.create ();
    state = Pending f; elapsed = 0. }

let name t = t.name
let forced t = match t.state with Done _ -> true | Pending _ -> false
let elapsed t = t.elapsed

let force t =
  match t.state with
  | Done v -> v
  | Pending _ ->
      Mutex.lock t.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
      (match t.state with
      | Done v -> v
      | Pending f ->
          (* The wall-clock figure is always measured (tables print it even
             without instrumentation); the Instrument span only records when
             probes are enabled. *)
          let t0 = Unix.gettimeofday () in
          let v =
            Trace.with_span ("stage." ^ t.name) (fun () -> Instrument.time t.timer f)
          in
          t.elapsed <- Unix.gettimeofday () -. t0;
          t.state <- Done v;
          v)
