type 'a state = Pending of (unit -> 'a) | Done of 'a

type 'a t = {
  name : string;
  timer : Instrument.timer;
  mutable state : 'a state;
  mutable elapsed : float;
}

let make ~name f =
  { name; timer = Instrument.timer ("pipeline." ^ name); state = Pending f; elapsed = 0. }

let name t = t.name
let forced t = match t.state with Done _ -> true | Pending _ -> false
let elapsed t = t.elapsed

let force t =
  match t.state with
  | Done v -> v
  | Pending f ->
      (* The wall-clock figure is always measured (tables print it even
         without instrumentation); the Instrument span only records when
         probes are enabled. *)
      let t0 = Unix.gettimeofday () in
      let v = Instrument.time t.timer f in
      t.elapsed <- Unix.gettimeofday () -. t0;
      t.state <- Done v;
      v
