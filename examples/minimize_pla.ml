(* Standalone two-level minimization: the ESPRESSO substrate on its own.

   Run with:  dune exec examples/minimize_pla.exe [-- file.pla]

   Reads an espresso-format PLA (a built-in 7-segment decoder fragment by
   default), minimizes it against its don't-care set, verifies the result
   implements the same function, and prints both personalities. *)

let default_pla =
  {|
# BCD to 7-segment, segments a and g, codes 10-15 are don't cares
.i 4
.o 2
0000 10
0001 00
0010 11
0011 11
0100 01
0101 11
0110 11
0111 10
1000 11
1001 11
1010 --
1011 --
1100 --
1101 --
1110 --
1111 --
.e
|}

let () =
  let text =
    if Array.length Sys.argv > 1 then begin
      let ic = open_in Sys.argv.(1) in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    end
    else default_pla
  in
  let pla = Pla.parse text in
  Printf.printf "parsed: %d inputs, %d outputs, %d on-cubes, %d dc-cubes\n\n" pla.Pla.num_inputs
    pla.Pla.num_outputs
    (Logic.Cover.size pla.Pla.on)
    (Logic.Cover.size pla.Pla.dc);
  let minimized = Espresso.minimize ~dc:pla.Pla.dc pla.Pla.on in
  Printf.printf "minimized to %d cubes (%d literals):\n\n"
    (Logic.Cover.size minimized)
    (Logic.Cover.literal_cost minimized);
  Pla.print Format.std_formatter minimized ~num_binary_vars:pla.Pla.num_inputs;
  (* Verification: the minimized cover must cover the on-set and stay
     inside on ∪ dc. *)
  let care_ok = Logic.Cover.covers (Logic.Cover.union minimized pla.Pla.dc) pla.Pla.on in
  let bound_ok = Logic.Cover.covers (Logic.Cover.union pla.Pla.on pla.Pla.dc) minimized in
  Printf.printf "\nverified: covers on-set %b, within on+dc %b\n" care_ok bound_ok;
  if not (care_ok && bound_ok) then exit 1
