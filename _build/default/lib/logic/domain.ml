type t = { sizes : int array; offsets : int array; width : int }

let create sizes =
  if Array.exists (fun s -> s < 1) sizes then
    invalid_arg "Domain.create: every variable needs at least one part";
  let n = Array.length sizes in
  let offsets = Array.make n 0 in
  let w = ref 0 in
  for v = 0 to n - 1 do
    offsets.(v) <- !w;
    w := !w + sizes.(v)
  done;
  { sizes = Array.copy sizes; offsets; width = !w }

let num_vars d = Array.length d.sizes
let size d v = d.sizes.(v)
let offset d v = d.offsets.(v)
let width d = d.width
let equal a b = a.sizes = b.sizes

let num_minterms d =
  Array.fold_left
    (fun acc s ->
      let m = acc * s in
      if acc <> 0 && m / acc <> s then invalid_arg "Domain.num_minterms: overflow";
      m)
    1 d.sizes

let pp ppf d =
  Format.fprintf ppf "domain(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list d.sizes)
