(** Domains of multiple-valued logic functions.

    A domain is an ordered list of multiple-valued variables; variable [v]
    has [size v] parts (possible values). Binary variables are
    two-part variables. In positional cube notation every cube is a bit
    vector of [width] bits, where variable [v] owns the bit range
    [offset v .. offset v + size v - 1]. *)

type t

(** [create sizes] is the domain with [Array.length sizes] variables,
    variable [v] having [sizes.(v)] parts. Every size must be >= 1. *)
val create : int array -> t

(** [num_vars d] is the number of variables. *)
val num_vars : t -> int

(** [size d v] is the number of parts of variable [v]. *)
val size : t -> int -> int

(** [offset d v] is the first bit of variable [v] in the positional
    representation. *)
val offset : t -> int -> int

(** [width d] is the total number of bits of a cube over [d]. *)
val width : t -> int

(** [equal a b] holds iff the two domains have identical variable sizes. *)
val equal : t -> t -> bool

(** [num_minterms d] is the number of points of the product space,
    [prod_v size d v]. Raises [Invalid_argument] on overflow. *)
val num_minterms : t -> int

val pp : Format.formatter -> t -> unit
