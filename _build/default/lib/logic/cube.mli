(** Multiple-valued cubes in positional notation.

    A cube over a domain is a bit vector with one bit per (variable, part)
    pair. A minterm [m] (one value per variable) belongs to the cube iff
    for every variable [v] the bit of [m]'s value of [v] is set. A cube
    with an empty variable field therefore contains no minterms.

    All functions taking a domain assume the cube was built over that
    domain (the bit width must match). *)

type t = Bitvec.t

(** [full d] contains every minterm: all bits set. *)
val full : Domain.t -> t

(** [empty_cube d] is the all-zero vector (contains no minterm). *)
val empty_cube : Domain.t -> t

(** [is_empty d c] holds iff [c] contains no minterm, i.e. some variable
    field of [c] is empty. *)
val is_empty : Domain.t -> t -> bool

(** [is_full d c] holds iff all bits are set. *)
val is_full : Domain.t -> t -> bool

(** [var_bits d c v] is the part set of variable [v] as a list of parts. *)
val var_bits : Domain.t -> t -> int -> int list

(** [var_full d c v] holds iff the field of [v] is all ones. *)
val var_full : Domain.t -> t -> int -> bool

(** [var_empty d c v] holds iff the field of [v] is all zeros. *)
val var_empty : Domain.t -> t -> int -> bool

(** [var_cardinal d c v] is the number of parts asserted for [v]. *)
val var_cardinal : Domain.t -> t -> int -> int

(** [set_var d c v parts] returns a copy of [c] whose field of [v]
    contains exactly [parts]. *)
val set_var : Domain.t -> t -> int -> int list -> t

(** [restrict_var d c v parts] returns a copy of [c] whose field of [v]
    is intersected with [parts]. *)
val restrict_var : Domain.t -> t -> int -> int list -> t

(** [literal d v parts] is the cube full everywhere except variable [v],
    whose field is exactly [parts]. *)
val literal : Domain.t -> int -> int list -> t

(** [of_minterm d values] is the single-minterm cube asserting
    [values.(v)] for each variable [v]. *)
val of_minterm : Domain.t -> int array -> t

(** [inter d a b] is the cube intersection, [None] when it is empty. *)
val inter : Domain.t -> t -> t -> t option

(** [intersects d a b] holds iff [a] and [b] share a minterm. *)
val intersects : Domain.t -> t -> t -> bool

(** [contains a b] holds iff cube [b]'s minterms are all in [a]
    (bitwise subset, valid when neither is empty). *)
val contains : t -> t -> bool

(** [supercube a b] is the smallest cube containing both (bitwise OR). *)
val supercube : t -> t -> t

(** [cofactor d c ~wrt] is the cofactor of [c] against cube [wrt]:
    [None] when the cubes do not intersect, otherwise the cube
    [c OR complement wrt]. The cofactor relativizes [c] to the subspace
    of [wrt]. *)
val cofactor : Domain.t -> t -> wrt:t -> t option

(** [distance d a b] is the number of variables whose fields of [a] and
    [b] are disjoint. *)
val distance : Domain.t -> t -> t -> int

(** [num_minterms d c] is the number of minterms of [c]. *)
val num_minterms : Domain.t -> t -> int

(** [num_literal_bits d c] counts the asserted bits in non-full fields —
    the PLA literal cost of the cube. *)
val num_literal_bits : Domain.t -> t -> int

(** [pp d ppf c] prints the cube field by field, e.g. [10|111|01]. *)
val pp : Domain.t -> Format.formatter -> t -> unit

val equal : t -> t -> bool
val compare : t -> t -> int
