type t = Bitvec.t

let full d = Bitvec.full (Domain.width d)
let empty_cube d = Bitvec.create (Domain.width d)

let is_empty d c =
  let n = Domain.num_vars d in
  let rec loop v =
    v < n && (Bitvec.range_empty c (Domain.offset d v) (Domain.size d v) || loop (v + 1))
  in
  loop 0

let is_full _d c = Bitvec.is_full c

let var_bits d c v =
  let off = Domain.offset d v in
  let sz = Domain.size d v in
  let rec loop p acc = if p < 0 then acc else loop (p - 1) (if Bitvec.get c (off + p) then p :: acc else acc) in
  loop (sz - 1) []

let var_full d c v = Bitvec.range_full c (Domain.offset d v) (Domain.size d v)
let var_empty d c v = Bitvec.range_empty c (Domain.offset d v) (Domain.size d v)
let var_cardinal d c v = Bitvec.range_cardinal c (Domain.offset d v) (Domain.size d v)

let set_var d c v parts =
  let c' = Bitvec.copy c in
  let off = Domain.offset d v in
  Bitvec.clear_range c' off (Domain.size d v);
  List.iter (fun p -> Bitvec.set c' (off + p)) parts;
  c'

let restrict_var d c v parts =
  let keep = List.filter (fun p -> Bitvec.get c (Domain.offset d v + p)) parts in
  set_var d c v keep

let literal d v parts = set_var d (full d) v parts

let of_minterm d values =
  let c = empty_cube d in
  Array.iteri (fun v value -> Bitvec.set c (Domain.offset d v + value)) values;
  c

let intersects d a b =
  let i = Bitvec.inter a b in
  not (is_empty d i)

let inter d a b =
  let i = Bitvec.inter a b in
  if is_empty d i then None else Some i

let contains a b = Bitvec.subset b a
let supercube a b = Bitvec.union a b

let cofactor d c ~wrt =
  if intersects d c wrt then Some (Bitvec.union c (Bitvec.complement wrt)) else None

let distance d a b =
  let i = Bitvec.inter a b in
  let n = Domain.num_vars d in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if Bitvec.range_empty i (Domain.offset d v) (Domain.size d v) then incr count
  done;
  !count

let num_minterms d c =
  let n = Domain.num_vars d in
  let total = ref 1 in
  for v = 0 to n - 1 do
    total := !total * var_cardinal d c v
  done;
  !total

let num_literal_bits d c =
  let n = Domain.num_vars d in
  let total = ref 0 in
  for v = 0 to n - 1 do
    if not (var_full d c v) then total := !total + var_cardinal d c v
  done;
  !total

let pp d ppf c =
  let n = Domain.num_vars d in
  for v = 0 to n - 1 do
    if v > 0 then Format.pp_print_char ppf '|';
    let off = Domain.offset d v in
    for p = 0 to Domain.size d v - 1 do
      Format.pp_print_char ppf (if Bitvec.get c (off + p) then '1' else '0')
    done
  done

let equal = Bitvec.equal
let compare = Bitvec.compare
