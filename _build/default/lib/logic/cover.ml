type t = { dom : Domain.t; cubes : Cube.t list }

let make dom cubes = { dom; cubes = List.filter (fun c -> not (Cube.is_empty dom c)) cubes }
let empty dom = { dom; cubes = [] }
let universe dom = { dom; cubes = [ Cube.full dom ] }
let size t = List.length t.cubes
let literal_cost t = List.fold_left (fun acc c -> acc + Cube.num_literal_bits t.dom c) 0 t.cubes

let union a b =
  assert (Domain.equal a.dom b.dom);
  { a with cubes = a.cubes @ b.cubes }

let intersect a b =
  assert (Domain.equal a.dom b.dom);
  let cubes =
    List.concat_map
      (fun ca -> List.filter_map (fun cb -> Cube.inter a.dom ca cb) b.cubes)
      a.cubes
  in
  { a with cubes }

let cofactor t ~wrt =
  let not_wrt = Bitvec.complement wrt in
  let cubes =
    List.filter_map
      (fun c -> if Cube.intersects t.dom c wrt then Some (Bitvec.union c not_wrt) else None)
      t.cubes
  in
  { t with cubes }

let single_cube_containment t =
  (* Keep a cube only if no *other* kept-or-later cube contains it; on
     equal cubes keep the first occurrence. *)
  let rec loop kept = function
    | [] -> List.rev kept
    | c :: rest ->
        let covered =
          List.exists (fun k -> Cube.contains k c) kept
          || List.exists (fun r -> Cube.contains r c && not (Cube.equal r c)) rest
        in
        if covered then loop kept rest else loop (c :: kept) rest
  in
  { t with cubes = loop [] t.cubes }

(* --- Unate-recursive kernel ------------------------------------------- *)

(* A variable is active in a cube list if some cube has a non-full field
   for it. The most binate variable (active in the most cubes) drives the
   Shannon-style splitting. *)
let most_binate_var dom cubes =
  let n = Domain.num_vars dom in
  let best = ref (-1) and best_count = ref 0 in
  for v = 0 to n - 1 do
    let count =
      List.fold_left (fun acc c -> if Cube.var_full dom c v then acc else acc + 1) 0 cubes
    in
    if count > !best_count then begin
      best := v;
      best_count := count
    end
  done;
  if !best_count = 0 then None else Some !best

(* Cofactor a cube list against the literal (var v = part p), keeping only
   the cubes asserting part p and raising their field of v to full. *)
let cofactor_literal dom cubes v p =
  let off = Domain.offset dom v in
  let sz = Domain.size dom v in
  List.filter_map
    (fun c ->
      if Bitvec.get c (off + p) then begin
        let c' = Bitvec.copy c in
        Bitvec.set_range c' off sz;
        Some c'
      end
      else None)
    cubes

let rec taut_rec dom cubes =
  match cubes with
  | [] -> false
  | _ when List.exists Bitvec.is_full cubes -> true
  | _ -> (
      match most_binate_var dom cubes with
      | None -> false (* all cubes full in every var, but no full cube: impossible *)
      | Some v ->
          let sz = Domain.size dom v in
          let rec parts p = p = sz || (taut_rec dom (cofactor_literal dom cubes v p) && parts (p + 1)) in
          parts 0)

let tautology t = taut_rec t.dom t.cubes

let covers_cube t c =
  if Cube.is_empty t.dom c then true
  else taut_rec t.dom (cofactor t ~wrt:c).cubes

let covers a b = List.for_all (fun c -> covers_cube a c) b.cubes

let equivalent a b = covers a b && covers b a

(* Complement of a single cube: one cube per variable with a non-full
   field, full everywhere else and the field negated. *)
let complement_cube dom c =
  let n = Domain.num_vars dom in
  let acc = ref [] in
  for v = 0 to n - 1 do
    if not (Cube.var_full dom c v) then begin
      let off = Domain.offset dom v in
      let sz = Domain.size dom v in
      let r = Bitvec.full (Domain.width dom) in
      for p = 0 to sz - 1 do
        if Bitvec.get c (off + p) then Bitvec.clear r (off + p)
      done;
      if not (Bitvec.range_empty r off sz) then acc := r :: !acc
    end
  done;
  !acc

(* Merge cubes that are identical outside variable [v] by unioning their
   [v] fields; cubes whose union becomes a full field stay as such. *)
let merge_on_var dom cubes v =
  let off = Domain.offset dom v in
  let sz = Domain.size dom v in
  let tbl = Hashtbl.create 31 in
  List.iter
    (fun c ->
      let key = Bitvec.copy c in
      Bitvec.clear_range key off sz;
      let key = Bitvec.to_string key in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key (Bitvec.copy c)
      | Some existing -> Bitvec.union_into existing c)
    cubes;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

let rec compl_rec dom cubes =
  match cubes with
  | [] -> [ Bitvec.full (Domain.width dom) ]
  | _ when List.exists Bitvec.is_full cubes -> []
  | [ c ] -> complement_cube dom c
  | _ -> (
      match most_binate_var dom cubes with
      | None -> [] (* some cube is full: handled above; defensive *)
      | Some v ->
          let sz = Domain.size dom v in
          let off = Domain.offset dom v in
          let branches = ref [] in
          for p = 0 to sz - 1 do
            let sub = compl_rec dom (cofactor_literal dom cubes v p) in
            (* AND each result cube with the literal (v = p). *)
            List.iter
              (fun c ->
                let c' = Bitvec.copy c in
                Bitvec.clear_range c' off sz;
                Bitvec.set c' (off + p);
                branches := c' :: !branches)
              sub
          done;
          merge_on_var dom !branches v)

let complement t =
  single_cube_containment { t with cubes = compl_rec t.dom t.cubes }

let complement_within t ~space =
  let relative = cofactor t ~wrt:space in
  let comp = compl_rec t.dom relative.cubes in
  let cubes = List.filter_map (fun c -> Cube.inter t.dom c space) comp in
  single_cube_containment { t with cubes }

let supercube t =
  match t.cubes with
  | [] -> None
  | c :: rest -> Some (List.fold_left Cube.supercube c rest)

let contains_minterm t values =
  let m = Cube.of_minterm t.dom values in
  List.exists (fun c -> Cube.contains c m) t.cubes

let rec count_rec dom cubes space_size =
  match cubes with
  | [] -> 0
  | _ when List.exists Bitvec.is_full cubes -> space_size
  | _ -> (
      match most_binate_var dom cubes with
      | None -> space_size
      | Some v ->
          let sz = Domain.size dom v in
          let total = ref 0 in
          for p = 0 to sz - 1 do
            total := !total + count_rec dom (cofactor_literal dom cubes v p) (space_size / sz)
          done;
          !total)

let num_minterms t = count_rec t.dom t.cubes (Domain.num_minterms t.dom)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun c -> Format.fprintf ppf "%a@," (Cube.pp t.dom) c) t.cubes;
  Format.fprintf ppf "@]"
