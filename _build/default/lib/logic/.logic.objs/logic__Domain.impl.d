lib/logic/domain.ml: Array Format
