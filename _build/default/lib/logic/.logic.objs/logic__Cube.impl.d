lib/logic/cube.ml: Array Bitvec Domain Format List
