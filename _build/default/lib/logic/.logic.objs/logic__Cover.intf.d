lib/logic/cover.mli: Cube Domain Format
