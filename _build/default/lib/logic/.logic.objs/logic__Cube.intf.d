lib/logic/cube.mli: Bitvec Domain Format
