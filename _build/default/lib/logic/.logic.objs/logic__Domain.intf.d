lib/logic/domain.mli: Format
