lib/logic/cover.ml: Bitvec Cube Domain Format Hashtbl List
