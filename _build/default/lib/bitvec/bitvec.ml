(* Dense bit vectors over int-array words.

   Invariant: unused bits of the last word are always zero, so [equal],
   [compare], [is_empty] and [hash] can work word-wise without masking. *)

let bits_per_word = Sys.int_size

type t = { len : int; words : int array }

let nwords len = if len = 0 then 0 else (len - 1) / bits_per_word + 1

let create len =
  if len < 0 then invalid_arg "Bitvec.create";
  { len; words = Array.make (nwords len) 0 }

let length t = t.len

let copy t = { len = t.len; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of range"

let get t i =
  check_index t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check_index t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check_index t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

(* Mask selecting the valid bits of the last word. *)
let last_mask len =
  let r = len mod bits_per_word in
  if r = 0 then -1 else (1 lsl r) - 1

let full len =
  let t = create len in
  let n = Array.length t.words in
  for w = 0 to n - 1 do
    t.words.(w) <- -1
  done;
  if n > 0 then t.words.(n - 1) <- t.words.(n - 1) land last_mask len;
  t

let check_same a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.len, t.words)

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let is_full t =
  let n = Array.length t.words in
  if n = 0 then true
  else
    let rec loop w =
      if w = n - 1 then t.words.(w) = last_mask t.len
      else t.words.(w) = -1 && loop (w + 1)
    in
    loop 0

let map2 f a b =
  check_same a b;
  { len = a.len; words = Array.init (Array.length a.words) (fun w -> f a.words.(w) b.words.(w)) }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement t =
  let n = Array.length t.words in
  let words = Array.init n (fun w -> lnot t.words.(w)) in
  if n > 0 then words.(n - 1) <- words.(n - 1) land last_mask t.len;
  { len = t.len; words }

let subset a b =
  check_same a b;
  let n = Array.length a.words in
  let rec loop w = w = n || (a.words.(w) land lnot b.words.(w) = 0 && loop (w + 1)) in
  loop 0

let disjoint a b =
  check_same a b;
  let n = Array.length a.words in
  let rec loop w = w = n || (a.words.(w) land b.words.(w) = 0 && loop (w + 1)) in
  loop 0

let popcount_word w0 =
  let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
  loop w0 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let inter_into dst src =
  check_same dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) land src.words.(w)
  done

let union_into dst src =
  check_same dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f acc t =
  let r = ref acc in
  iter (fun i -> r := f !r i) t;
  !r

let to_list t = List.rev (fold (fun acc i -> i :: acc) [] t)

let of_list len l =
  let t = create len in
  List.iter (fun i -> set t i) l;
  t

let first_set t =
  let n = Array.length t.words in
  let rec loop w =
    if w = n then None
    else if t.words.(w) = 0 then loop (w + 1)
    else
      let word = t.words.(w) in
      let rec bit b = if word land (1 lsl b) <> 0 then Some ((w * bits_per_word) + b) else bit (b + 1) in
      bit 0
  in
  loop 0

let range_check t lo len =
  if lo < 0 || len < 0 || lo + len > t.len then invalid_arg "Bitvec: range out of bounds"

let range_fold t lo len ~f ~init =
  range_check t lo len;
  let acc = ref init in
  for i = lo to lo + len - 1 do
    acc := f !acc (t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0)
  done;
  !acc

let range_full t lo len = range_fold t lo len ~f:(fun acc b -> acc && b) ~init:true
let range_empty t lo len = range_fold t lo len ~f:(fun acc b -> acc && not b) ~init:true
let range_cardinal t lo len = range_fold t lo len ~f:(fun acc b -> if b then acc + 1 else acc) ~init:0

let set_range t lo len =
  range_check t lo len;
  for i = lo to lo + len - 1 do
    set t i
  done

let clear_range t lo len =
  range_check t lo len;
  for i = lo to lo + len - 1 do
    clear t i
  done

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done

let to_string t = Format.asprintf "%a" pp t

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> set t i
      | '0' -> ()
      | _ -> invalid_arg "Bitvec.of_string: expected only '0' and '1'")
    s;
  t
