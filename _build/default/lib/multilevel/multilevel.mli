(** A small multilevel logic optimizer: the stand-in for MIS-II's
    standard script in the paper's Table VII / Table X experiments.

    The network is a Boolean network in SOP form. Optimization extracts
    common cubes and common kernels greedily (accepting a rewrite only
    when it lowers the global factored literal count) and the final
    metric is the literal count of the network in factored form, computed
    by recursive most-frequent-literal factoring — the quantity MIS-II's
    [print_stats -f] style literal count measures.

    Literals are integers: [2*v] is variable [v], [2*v + 1] its
    complement. A product is a sorted literal list; an empty product is
    the constant 1. *)

type product = int list

type node = { name : string; products : product list }

type network = { nodes : node list; next_var : int }

(** [of_cover cover ~num_binary_vars] converts a minimized multiple-output
    cover (binary inputs first, the final domain variable being the
    multiple-valued output variable) into a network with one node per
    output part. *)
val of_cover : Logic.Cover.t -> num_binary_vars:int -> network

(** [sop_literals network] is the flat sum-of-products literal count. *)
val sop_literals : network -> int

(** [factored_literals network] is the literal count after factoring each
    node recursively. *)
val factored_literals : network -> int

(** [kernels products] enumerates the kernels (cube-free primary
    divisors, each a multi-cube SOP) of an SOP, paired with a witness
    co-kernel cube for each. *)
val kernels : product list -> (product list * product list) list

(** [divide f d] is algebraic (weak) division [f / d]: the quotient and
    remainder. *)
val divide : product list -> product list -> product list * product list

(** [optimize network] greedily extracts common cubes and kernels while
    the factored literal count decreases. *)
val optimize : network -> network
