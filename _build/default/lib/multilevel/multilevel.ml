type product = int list
type node = { name : string; products : product list }
type network = { nodes : node list; next_var : int }

(* --- products as sorted literal lists ---------------------------------- *)

let product_compare = Stdlib.compare
let product_equal a b = product_compare a b = 0

let rec subset a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> if x = y then subset xs ys else if x > y then subset a ys else false

let rec remove_lits a b =
  (* a \ b, both sorted; b ⊆ a assumed where it matters *)
  match (a, b) with
  | _, [] -> a
  | [], _ -> []
  | x :: xs, y :: ys ->
      if x = y then remove_lits xs ys else if x < y then x :: remove_lits xs b else remove_lits a ys

let rec inter_lits a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
      if x = y then x :: inter_lits xs ys else if x < y then inter_lits xs b else inter_lits a ys

let union_lits a b = List.sort_uniq compare (a @ b)

let sort_products ps = List.sort_uniq product_compare ps

(* --- conversion from a two-level cover --------------------------------- *)

let of_cover (cover : Logic.Cover.t) ~num_binary_vars =
  let open Logic in
  let dom = cover.Cover.dom in
  let out_var = Domain.num_vars dom - 1 in
  if out_var <> num_binary_vars then invalid_arg "Multilevel.of_cover: variable layout mismatch";
  let out_off = Domain.offset dom out_var in
  let out_sz = Domain.size dom out_var in
  let product_of_cube c =
    let lits = ref [] in
    for v = 0 to num_binary_vars - 1 do
      let off = Domain.offset dom v in
      match (Bitvec.get c off, Bitvec.get c (off + 1)) with
      | true, true -> ()
      | false, true -> lits := (2 * v) :: !lits (* part 1 = variable true *)
      | true, false -> lits := ((2 * v) + 1) :: !lits
      | false, false -> assert false
    done;
    List.sort compare !lits
  in
  let nodes =
    List.init out_sz (fun o ->
        let products =
          List.filter_map
            (fun c -> if Bitvec.get c (out_off + o) then Some (product_of_cube c) else None)
            cover.Cover.cubes
        in
        { name = Printf.sprintf "o%d" o; products = sort_products products })
  in
  { nodes; next_var = num_binary_vars }

(* --- literal counts ----------------------------------------------------- *)

let sop_literals net =
  List.fold_left
    (fun acc n -> acc + List.fold_left (fun a p -> a + List.length p) 0 n.products)
    0 net.nodes

(* Recursive most-frequent-literal factoring. *)
let rec factor_count products =
  match products with
  | [] -> 0
  | [ p ] -> List.length p
  | _ ->
      let freq = Hashtbl.create 17 in
      List.iter
        (fun p ->
          List.iter
            (fun l -> Hashtbl.replace freq l (1 + Option.value ~default:0 (Hashtbl.find_opt freq l)))
            p)
        products;
      let best = Hashtbl.fold (fun l c acc ->
          match acc with
          | Some (_, c') when c' >= c -> acc
          | _ when c >= 2 -> Some (l, c)
          | _ -> acc)
          freq None
      in
      (match best with
      | None -> List.fold_left (fun a p -> a + List.length p) 0 products
      | Some (l, _) ->
          let with_l, without_l = List.partition (fun p -> List.mem l p) products in
          let quotient = List.map (fun p -> List.filter (fun x -> x <> l) p) with_l in
          1 + factor_count quotient + factor_count without_l)

let factored_literals net =
  List.fold_left (fun acc n -> acc + factor_count n.products) 0 net.nodes

(* --- algebraic division and kernels ------------------------------------ *)

let cube_div c d = if subset d c then Some (remove_lits c d) else None

let divide f d =
  match d with
  | [] -> ([], f)
  | first :: rest ->
      let quotient_of di = List.filter_map (fun c -> cube_div c di) f in
      let q0 = quotient_of first in
      let q =
        List.fold_left
          (fun acc di ->
            let qi = quotient_of di in
            List.filter (fun p -> List.exists (product_equal p) qi) acc)
          q0 rest
      in
      let q = sort_products q in
      if q = [] then ([], f)
      else begin
        let covered =
          List.concat_map (fun qc -> List.map (fun dc -> union_lits qc dc) d) q
        in
        let r = List.filter (fun c -> not (List.exists (product_equal c) covered)) f in
        (q, r)
      end

let common_cube products =
  match products with
  | [] -> []
  | p :: rest -> List.fold_left inter_lits p rest

let is_cube_free products = List.length products >= 2 && common_cube products = []

let kernels f =
  let literals =
    List.sort_uniq compare (List.concat f)
  in
  let acc = ref [] in
  let seen = Hashtbl.create 31 in
  let add k co =
    let key = Marshal.to_string (sort_products k) [] in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      acc := (co, sort_products k) :: !acc
    end
  in
  let rec kern g j cokernel =
    List.iter
      (fun l ->
        if l >= j then begin
          let with_l = List.filter (fun p -> List.mem l p) g in
          if List.length with_l >= 2 then begin
            let co = common_cube with_l in
            (* Skip if a smaller literal of the co-cube would have found
               this kernel already. *)
            if not (List.exists (fun x -> x < l) co) then begin
              let k = sort_products (List.map (fun p -> remove_lits p co) with_l) in
              add k co;
              kern k (l + 1) (union_lits cokernel co)
            end
          end
        end)
      literals
  in
  kern f 0 [];
  if is_cube_free f then add f [];
  (* Return (kernel, [co-kernel]) pairs; co-kernel retained only as a
     witness — extraction value is recomputed by division. *)
  List.map (fun (co, k) -> (k, [ co ])) !acc

(* --- greedy extraction -------------------------------------------------- *)

(* Rewrite node [n] as y·Q + R when division by [d] (named [y]) helps. *)
let substitute d y n =
  let q, r = divide n.products d in
  if q = [] then n
  else
    let new_products = sort_products (List.map (fun p -> union_lits [ y ] p) q @ r) in
    let old_cost = List.fold_left (fun a p -> a + List.length p) 0 n.products in
    let new_cost = List.fold_left (fun a p -> a + List.length p) 0 new_products in
    if new_cost < old_cost then { n with products = new_products } else n

let divisor_value net d =
  (* Global SOP saving of extracting d as a fresh node. *)
  let d_lits = List.fold_left (fun a p -> a + List.length p) 0 d in
  let saving =
    List.fold_left
      (fun acc n ->
        let q, r = divide n.products d in
        if q = [] then acc
        else begin
          let old_cost = List.fold_left (fun a p -> a + List.length p) 0 n.products in
          let new_cost =
            List.fold_left (fun a p -> a + List.length p + 1) 0 q
            + List.fold_left (fun a p -> a + List.length p) 0 r
          in
          acc + max 0 (old_cost - new_cost)
        end)
      0 net.nodes
  in
  saving - d_lits

let candidate_divisors net =
  let cubes = Hashtbl.create 61 in
  let add_cube c =
    if List.length c >= 2 then begin
      let key = Marshal.to_string c [] in
      if not (Hashtbl.mem cubes key) then Hashtbl.add cubes key [ c ]
    end
  in
  let kernel_candidates =
    List.concat_map
      (fun n ->
        if List.length n.products > 40 then []
        else List.filter_map (fun (k, _) -> if List.length k >= 2 then Some k else None) (kernels n.products))
      net.nodes
  in
  (* Common-cube candidates: pairwise intersections within each node. *)
  List.iter
    (fun n ->
      let arr = Array.of_list n.products in
      let m = Array.length arr in
      for i = 0 to min (m - 1) 60 do
        for j = i + 1 to min (m - 1) 60 do
          add_cube (inter_lits arr.(i) arr.(j))
        done
      done)
    net.nodes;
  let cube_candidates = Hashtbl.fold (fun _ c acc -> c @ acc) cubes [] in
  List.map (fun c -> [ c ]) cube_candidates @ kernel_candidates

let apply_divisor net d =
  let y_var = net.next_var in
  let y = 2 * y_var in
  let new_node = { name = Printf.sprintf "k%d" y_var; products = d } in
  { nodes = new_node :: List.map (substitute d y) net.nodes; next_var = y_var + 1 }

let optimize net0 =
  let net = ref net0 in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < 30 do
    incr rounds;
    improved := false;
    (* Rank candidates by SOP saving, accept the first whose extraction
       actually lowers the factored literal count. *)
    let ranked =
      candidate_divisors !net
      |> List.map (fun d -> (divisor_value !net d, d))
      |> List.filter (fun (v, _) -> v > 0)
      |> List.sort (fun (v1, _) (v2, _) -> compare v2 v1)
    in
    let current_cost = factored_literals !net in
    let rec try_candidates tried = function
      | [] -> ()
      | _ when tried >= 20 -> ()
      | (_, d) :: rest ->
          let candidate = apply_divisor !net d in
          if factored_literals candidate < current_cost then begin
            net := candidate;
            improved := true
          end
          else try_candidates (tried + 1) rest
    in
    try_candidates 0 ranked
  done;
  !net
