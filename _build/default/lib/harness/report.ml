let print_table ppf ~title ~header rows =
  let ncols = List.length header in
  List.iter
    (fun row ->
      if List.length row <> ncols then invalid_arg "Report.print_table: ragged row")
    rows;
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let pad i s = Printf.sprintf "%*s" widths.(i) s in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@.== %s ==@." title;
  Format.fprintf ppf "%s@.%s@." (line header) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (line row)) rows;
  Format.fprintf ppf "@."

let opt_int = function Some n -> string_of_int n | None -> "-"

let ratio num den =
  match (num, den) with
  | Some n, Some d when d <> 0 -> Printf.sprintf "%.2f" (float_of_int n /. float_of_int d)
  | Some _, _ | None, _ -> "-"

let spark values =
  let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                  "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]
  in
  let present = List.filter_map (fun v -> v) values in
  match present with
  | [] -> ""
  | _ ->
      let lo = List.fold_left min infinity present in
      let hi = List.fold_left max neg_infinity present in
      let scale v =
        if hi -. lo < 1e-9 then 0
        else
          let i = int_of_float ((v -. lo) /. (hi -. lo) *. 7.99) in
          max 0 (min 7 i)
      in
      String.concat ""
        (List.map (function None -> " " | Some v -> glyphs.(scale v)) values)
