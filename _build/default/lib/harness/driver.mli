(** One-call driver: run any of the paper's encoding algorithms (or a
    baseline) on a machine. This is the programmatic face of
    [nova encode]. *)

type algorithm =
  | Ihybrid
  | Igreedy
  | Iohybrid
  | Iovariant
  | Iexact
  | Kiss
  | Mustang of Baselines.mustang_flavor * bool  (** flavor, include outputs *)
  | One_hot
  | Random of int  (** seed *)

(** [name algo] is the CLI spelling of [algo]. *)
val name : algorithm -> string

(** [all_algorithms] is every algorithm with default options, in a
    sensible reporting order. *)
val all_algorithms : algorithm list

(** [encode ?bits machine algo] runs the algorithm. [bits] overrides the
    code length where the algorithm accepts one. Raises [Failure] when
    [Iexact] exhausts its budget. *)
val encode : ?bits:int -> Fsm.t -> algorithm -> Encoding.t

(** [report ?bits machine algo] is [encode] plus the minimized
    implementation. *)
val report : ?bits:int -> Fsm.t -> algorithm -> Encoding.t * Encoded.result
