(** Ablation experiments for the design choices DESIGN.md calls out.

    - [symbmin_order]: Section VI leaves the symbol selection order of
      the symbolic minimization loop open ("we plan to analyze the
      variations of the basic scheme"); compares the (IC, OC) pairs and
      final iohybrid areas of three orders.
    - [max_work]: Section IV notes the bounded backtracking's magic
      number should adapt to the instance; sweeps it.
    - [code_length]: Section VII observes the best results usually, but
      not always, come from the minimum code length; sweeps ihybrid's
      code length over minimum .. minimum + 3. *)

val symbmin_order : ?quick:bool -> Format.formatter -> unit -> unit
val max_work : ?quick:bool -> Format.formatter -> unit -> unit
val code_length : ?quick:bool -> Format.formatter -> unit -> unit

(** [all ppf ()] runs the three ablations on a representative subset. *)
val all : ?quick:bool -> Format.formatter -> unit -> unit
