lib/harness/ablations.ml: Benchmarks Constraints Encoded Encoding Fsm Ihybrid Iohybrid List Printf Report Symbmin Symbolic Unix
