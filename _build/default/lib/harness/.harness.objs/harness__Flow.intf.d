lib/harness/flow.mli: Constraints Encoded Encoding Fsm Iexact Igreedy Ihybrid Iohybrid Lazy Symbmin Symbolic
