lib/harness/tables.ml: Benchmarks Constraints Encoded Encoding Flow Format Fsm Iexact Igreedy Ihybrid Iohybrid Lazy List Option Printf Report
