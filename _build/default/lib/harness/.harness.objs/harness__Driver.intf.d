lib/harness/driver.mli: Baselines Encoded Encoding Fsm
