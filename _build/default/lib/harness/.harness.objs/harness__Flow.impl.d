lib/harness/flow.ml: Baselines Benchmarks Constraints Encoded Encoding Fsm Hashtbl Iexact Igreedy Ihybrid Iohybrid Lazy List Multilevel Random Symbmin Symbolic Unix
