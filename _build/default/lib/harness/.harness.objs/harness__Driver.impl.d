lib/harness/driver.ml: Baselines Constraints Encoded Encoding Fsm Iexact Igreedy Ihybrid Iohybrid List Option Printf Random Symbmin Symbolic
