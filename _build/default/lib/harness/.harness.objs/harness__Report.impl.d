lib/harness/report.ml: Array Format List Printf String
