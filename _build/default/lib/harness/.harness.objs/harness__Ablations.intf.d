lib/harness/ablations.mli: Format
