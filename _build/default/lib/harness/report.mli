(** Text-table rendering helpers shared by the table drivers. *)

(** [print_table ppf ~title ~header rows] renders an aligned text table.
    Every row must have [List.length header] cells. *)
val print_table :
  Format.formatter -> title:string -> header:string list -> string list list -> unit

(** [opt_int] renders [Some n] as the number and [None] as ["-"]. *)
val opt_int : int option -> string

(** [ratio num den] renders [num/den] with two decimals, ["-"] when
    either side is missing or zero. *)
val ratio : int option -> int option -> string

(** [spark values] renders a one-line unicode sparkline of the ratio
    series (missing points as spaces), for the figure reproductions. *)
val spark : float option list -> string
