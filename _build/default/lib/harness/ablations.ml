(* A representative subset: small machines where every variant finishes
   quickly, mid-size ones where the choices matter. *)
let machines ~quick =
  if quick then [ "lion"; "bbtas"; "dk15"; "modulo12"; "dk17" ]
  else
    [
      "lion"; "bbtas"; "dk15"; "modulo12"; "dk17"; "beecount"; "ex5"; "ex3"; "train11";
      "dk512"; "bbara"; "donfile";
    ]

let soi = string_of_int

let symbmin_order ?(quick = false) ppf () =
  let orders =
    [ ("largest", Symbmin.Largest_first); ("smallest", Symbmin.Smallest_first); ("index", Symbmin.Index_order) ]
  in
  let rows =
    List.map
      (fun name ->
        let m = Benchmarks.Suite.find name in
        let sym = Symbolic.of_fsm m in
        name
        :: List.concat_map
             (fun (_, order) ->
               let sm = Symbmin.run ~order sym in
               let io = Iohybrid.iohybrid_code sm.Symbmin.problem in
               let r = Encoded.implement m io.Iohybrid.encoding in
               [ soi (Symbmin.upper_bound sm); soi (List.length sm.Symbmin.graph); soi r.Encoded.area ])
             orders)
      (machines ~quick)
  in
  Report.print_table ppf
    ~title:"Ablation: symbolic minimization symbol-selection order (upper bound / edges / iohybrid area)"
    ~header:
      ("example"
      :: List.concat_map (fun (label, _) -> [ label ^ ":ub"; label ^ ":edges"; label ^ ":area" ]) orders)
    rows

let max_work ?(quick = false) ppf () =
  let budgets = [ 3_000; 30_000; 300_000 ] in
  let rows =
    List.map
      (fun name ->
        let m = Benchmarks.Suite.find name in
        let n = Fsm.num_states ~m in
        let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
        name
        :: List.concat_map
             (fun budget ->
               let t0 = Unix.gettimeofday () in
               let r = Ihybrid.ihybrid_code ~num_states:n ~max_work:budget ics in
               let dt = Unix.gettimeofday () -. t0 in
               let area = (Encoded.implement m r.Ihybrid.encoding).Encoded.area in
               [ soi (List.length r.Ihybrid.satisfied); soi area; Printf.sprintf "%.2f" dt ])
             budgets)
      (machines ~quick)
  in
  Report.print_table ppf
    ~title:"Ablation: semiexact work budget (satisfied / area / seconds) at 3k, 30k, 300k"
    ~header:
      ("example"
      :: List.concat_map
           (fun b -> let l = soi (b / 1000) ^ "k" in [ l ^ ":sat"; l ^ ":area"; l ^ ":time" ])
           budgets)
    rows

let code_length ?(quick = false) ppf () =
  let rows =
    List.map
      (fun name ->
        let m = Benchmarks.Suite.find name in
        let n = Fsm.num_states ~m in
        let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
        let min_len = Fsm.min_code_length m in
        name
        :: List.concat_map
             (fun extra ->
               let r = Ihybrid.ihybrid_code ~num_states:n ~nbits:(min_len + extra) ics in
               let impl = Encoded.implement m r.Ihybrid.encoding in
               [ soi r.Ihybrid.encoding.Encoding.nbits; soi impl.Encoded.area ])
             [ 0; 1; 2; 3 ])
      (machines ~quick)
  in
  Report.print_table ppf
    ~title:"Ablation: ihybrid code length, minimum .. minimum+3 (#bits used / area)"
    ~header:
      ("example"
      :: List.concat_map (fun e -> [ Printf.sprintf "+%d:bits" e; Printf.sprintf "+%d:area" e ]) [ 0; 1; 2; 3 ])
    rows

let all ?(quick = false) ppf () =
  symbmin_order ~quick ppf ();
  max_work ~quick ppf ();
  code_length ~quick ppf ()
