(** Reproduction drivers: one entry point per table and figure of the
    paper's evaluation section (Section VII). Each [tableN]/[figN]
    computes its rows over the benchmark suite and prints the same
    columns the paper reports, followed by the paper-vs-measured summary
    ratios. [quick] skips the machines marked heavy in the suite. *)

(** Table I: benchmark statistics. *)
val table1 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table II: iexact vs ihybrid vs igreedy vs 1-hot. *)
val table2 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table III: best of ihybrid/igreedy vs KISS vs random. *)
val table3 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table IV: iohybrid vs ihybrid/igreedy vs best-of-NOVA vs random. *)
val table4 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table V: iohybrid vs the published Cappuccino/Cream results. *)
val table5 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table VI: ihybrid statistics (weights satisfied, code lengths, time). *)
val table6 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table VII: two-level and multilevel comparison with MUSTANG. *)
val table7 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table VIII (figure): area ratios KISS/NOVA and random/NOVA by
    increasing number of states. *)
val fig8 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table IX (figure): area ratios ihybrid/NOVA and iohybrid/NOVA. *)
val fig9 : ?quick:bool -> Format.formatter -> unit -> unit

(** Table X (figure): MUSTANG/NOVA cube and literal ratios. *)
val fig10 : ?quick:bool -> Format.formatter -> unit -> unit

(** [all ?quick ppf ()] prints every table and figure. *)
val all : ?quick:bool -> Format.formatter -> unit -> unit

(** The machines included at the given effort level, in Table I order. *)
val names : quick:bool -> string list
