type transition = {
  input : string;
  src : int option;
  dst : int option;
  output : string;
}

type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  states : string array;
  transitions : transition list;
  reset : int option;
}

let check_pattern what width s =
  if String.length s <> width then
    invalid_arg (Printf.sprintf "Fsm.create: %s pattern %S must have width %d" what s width);
  String.iter
    (fun c ->
      match c with
      | '0' | '1' | '-' -> ()
      | _ -> invalid_arg (Printf.sprintf "Fsm.create: bad character %C in %s pattern %S" c what s))
    s

let create ~name ~num_inputs ~num_outputs ~states ~transitions ?reset () =
  if num_inputs < 0 || num_outputs < 0 then invalid_arg "Fsm.create: negative field width";
  if Array.length states = 0 then invalid_arg "Fsm.create: a machine needs at least one state";
  let n = Array.length states in
  let check_state what = function
    | None -> ()
    | Some s ->
        if s < 0 || s >= n then
          invalid_arg (Printf.sprintf "Fsm.create: %s state index %d out of range" what s)
  in
  List.iter
    (fun tr ->
      check_pattern "input" num_inputs tr.input;
      check_pattern "output" num_outputs tr.output;
      check_state "present" tr.src;
      check_state "next" tr.dst)
    transitions;
  check_state "reset" reset;
  let seen = Hashtbl.create n in
  Array.iter
    (fun s ->
      if Hashtbl.mem seen s then invalid_arg (Printf.sprintf "Fsm.create: duplicate state name %S" s);
      Hashtbl.add seen s ())
    states;
  { name; num_inputs; num_outputs; states = Array.copy states; transitions; reset }

let num_states ~m = Array.length m.states

let state_index m name =
  let n = Array.length m.states in
  let rec loop i = if i = n then None else if m.states.(i) = name then Some i else loop (i + 1) in
  loop 0

let min_code_length m =
  let n = Array.length m.states in
  let rec bits k acc = if acc >= n then k else bits (k + 1) (acc * 2) in
  bits 1 2

type stats = {
  stat_name : string;
  stat_inputs : int;
  stat_outputs : int;
  stat_states : int;
  stat_products : int;
}

let stats m =
  {
    stat_name = m.name;
    stat_inputs = m.num_inputs;
    stat_outputs = m.num_outputs;
    stat_states = Array.length m.states;
    stat_products = List.length m.transitions;
  }

let input_matches pattern input =
  String.length pattern = String.length input
  &&
  let ok = ref true in
  String.iteri
    (fun i c -> match c with '-' -> () | _ -> if c <> input.[i] then ok := false)
    pattern;
  !ok

let next m ~input ~src =
  if String.length input <> m.num_inputs then invalid_arg "Fsm.next: input width mismatch";
  let matches tr =
    (match tr.src with None -> true | Some s -> s = src) && input_matches tr.input input
  in
  match List.find_opt matches m.transitions with
  | None -> None
  | Some tr -> Some (tr.dst, tr.output)

let pp ppf m =
  Format.fprintf ppf "@[<v>fsm %s: %d inputs, %d outputs, %d states, %d rows@]" m.name
    m.num_inputs m.num_outputs (Array.length m.states) (List.length m.transitions)
