lib/fsm/encoding.ml: Array Format Hashtbl List Random String Sys
