lib/fsm/encoded.mli: Cover Domain Encoding Fsm Logic
