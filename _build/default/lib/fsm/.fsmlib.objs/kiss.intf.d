lib/fsm/kiss.mli: Format Fsm
