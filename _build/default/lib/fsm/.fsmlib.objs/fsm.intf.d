lib/fsm/fsm.mli: Format
