lib/fsm/export.mli: Format Fsm Multilevel
