lib/fsm/kiss.ml: Array Format Fsm Hashtbl List Printf String
