lib/fsm/symbolic.ml: Array Bitvec Cover Domain Espresso Fsm List Logic String
