lib/fsm/pla.ml: Array Bitvec Cover Domain Format List Logic Printf String
