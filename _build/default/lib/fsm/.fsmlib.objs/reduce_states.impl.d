lib/fsm/reduce_states.ml: Array Fsm Hashtbl List Marshal Option String
