lib/fsm/simulate.mli: Encoding Fsm Random
