lib/fsm/export.ml: Array Format Fsm List Multilevel Printf String
