lib/fsm/pla.mli: Cover Format Logic
