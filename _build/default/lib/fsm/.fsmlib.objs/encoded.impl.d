lib/fsm/encoded.ml: Array Bitvec Cover Domain Encoding Espresso Fsm List Logic String
