lib/fsm/encoding.mli: Format Random
