lib/fsm/reduce_states.mli: Fsm
