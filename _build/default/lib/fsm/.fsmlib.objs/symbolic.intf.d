lib/fsm/symbolic.mli: Bitvec Cover Cube Domain Fsm Logic
