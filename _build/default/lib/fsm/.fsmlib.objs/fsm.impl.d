lib/fsm/fsm.ml: Array Format Hashtbl List Printf String
