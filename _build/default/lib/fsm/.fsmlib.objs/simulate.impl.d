lib/fsm/simulate.ml: Array Encoded Encoding Fsm List Option Printf Random String
