(** Export helpers: Graphviz for machines, BLIF for multilevel networks.

    These are convenience surfaces for inspecting results with standard
    tools; nothing in the flow depends on them. *)

(** [dot ppf m] writes [m] as a Graphviz digraph: one node per state
    (reset drawn doubled), one edge per row labelled [input/output]. *)
val dot : Format.formatter -> Fsm.t -> unit

(** [dot_string m] is [dot] to a string. *)
val dot_string : Fsm.t -> string

(** [blif ppf net ~name ~num_inputs] writes a {!Multilevel.network} in
    Berkeley BLIF: inputs [x0..], one [.names] block per node. Nodes
    named [oN] become outputs; extracted nodes ([kN]) become
    intermediate signals. *)
val blif : Format.formatter -> Multilevel.network -> name:string -> num_inputs:int -> unit

(** [blif_string net ~name ~num_inputs] is [blif] to a string. *)
val blif_string : Multilevel.network -> name:string -> num_inputs:int -> string
