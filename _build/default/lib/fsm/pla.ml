open Logic

let print ppf (cover : Cover.t) ~num_binary_vars =
  let dom = cover.Cover.dom in
  if Domain.num_vars dom <> num_binary_vars + 1 then
    invalid_arg "Pla.print: variable layout mismatch";
  let out_var = num_binary_vars in
  let out_off = Domain.offset dom out_var in
  let out_sz = Domain.size dom out_var in
  Format.fprintf ppf ".i %d@." num_binary_vars;
  Format.fprintf ppf ".o %d@." out_sz;
  Format.fprintf ppf ".p %d@." (Cover.size cover);
  List.iter
    (fun c ->
      for v = 0 to num_binary_vars - 1 do
        let off = Domain.offset dom v in
        let ch =
          match (Bitvec.get c off, Bitvec.get c (off + 1)) with
          | true, true -> '-'
          | false, true -> '1'
          | true, false -> '0'
          | false, false -> '~'
        in
        Format.pp_print_char ppf ch
      done;
      Format.pp_print_char ppf ' ';
      for o = 0 to out_sz - 1 do
        Format.pp_print_char ppf (if Bitvec.get c (out_off + o) then '1' else '0')
      done;
      Format.pp_print_newline ppf ())
    cover.Cover.cubes;
  Format.fprintf ppf ".e@."

let to_string cover ~num_binary_vars =
  Format.asprintf "%a" (fun ppf () -> print ppf cover ~num_binary_vars) ()

exception Parse_error of string

type parsed = { num_inputs : int; num_outputs : int; on : Cover.t; dc : Cover.t }

let parse text =
  let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt in
  let lines = String.split_on_char '\n' text in
  let ni = ref None and no = ref None in
  let rows = ref [] in
  List.iter
    (fun raw ->
      let line =
        match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | ".i" :: w :: _ -> ni := int_of_string_opt w
      | ".o" :: w :: _ -> no := int_of_string_opt w
      | ".p" :: _ | ".e" :: _ | ".end" :: _ | ".type" :: _ | ".ilb" :: _ | ".ob" :: _ -> ()
      | [ input; output ] -> rows := (input, output) :: !rows
      | [ word ] -> (
          (* inputs and outputs may be written without a separator *)
          match (!ni, !no) with
          | Some i, Some o when String.length word = i + o ->
              rows := (String.sub word 0 i, String.sub word i o) :: !rows
          | Some _, Some _ | None, _ | _, None -> fail "unparseable cube line %S" word)
      | w -> fail "unparseable line %S" (String.concat " " w))
    lines;
  let num_inputs = match !ni with Some i -> i | None -> fail "missing .i" in
  let num_outputs = match !no with Some o -> o | None -> fail "missing .o" in
  if num_outputs < 1 then fail "need at least one output";
  let dom = Domain.create (Array.append (Array.make num_inputs 2) [| num_outputs |]) in
  let out_off = Domain.offset dom num_inputs in
  let cube_of input chars =
    if String.length input <> num_inputs then fail "input width of %S" input;
    let c = Bitvec.full (Domain.width dom) in
    String.iteri
      (fun v ch ->
        match ch with
        | '0' -> Bitvec.clear c (Domain.offset dom v + 1)
        | '1' -> Bitvec.clear c (Domain.offset dom v + 0)
        | '-' | '2' -> ()
        | bad -> fail "bad input character %C" bad)
      input;
    Bitvec.clear_range c out_off num_outputs;
    let any = ref false in
    List.iter
      (fun o ->
        Bitvec.set c (out_off + o);
        any := true)
      chars;
    if !any then Some c else None
  in
  let on = ref [] and dc = ref [] in
  List.iter
    (fun (input, output) ->
      if String.length output <> num_outputs then fail "output width of %S" output;
      let ons = ref [] and dcs = ref [] in
      String.iteri
        (fun o ch ->
          match ch with
          | '1' | '4' -> ons := o :: !ons
          | '-' | '2' | '~' -> dcs := o :: !dcs
          | '0' -> ()
          | bad -> fail "bad output character %C" bad)
        output;
      (match cube_of input !ons with Some c -> on := c :: !on | None -> ());
      match cube_of input !dcs with Some c -> dc := c :: !dc | None -> ())
    (List.rev !rows);
  { num_inputs; num_outputs; on = Cover.make dom !on; dc = Cover.make dom !dc }
