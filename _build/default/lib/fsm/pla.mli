(** Printing encoded covers in Berkeley PLA (espresso) format. *)

open Logic

(** [print ppf cover ~num_binary_vars] writes the cover as a [.pla]
    personality: one line per cube, the binary input variables as
    [0/1/-], the parts of the final (output) variable as [0/1]. *)
val print : Format.formatter -> Cover.t -> num_binary_vars:int -> unit

(** [to_string cover ~num_binary_vars] is [print] to a string. *)
val to_string : Cover.t -> num_binary_vars:int -> string

exception Parse_error of string

type parsed = {
  num_inputs : int;
  num_outputs : int;
  on : Cover.t;  (** cubes asserting a ['1'] output column *)
  dc : Cover.t;  (** cubes asserting a ['-'] (or ['2']) output column *)
}

(** [parse text] reads an espresso-format PLA (fd type): [.i]/[.o]
    declarations then one line per cube, input part over [0/1/-], output
    part over [0/1/-/2] ([1] on-set, [-]/[2] don't-care, [0] nothing).
    Raises [Parse_error] on malformed input. *)
val parse : string -> parsed
