type t = { nbits : int; codes : int array }

let make ~nbits codes =
  if nbits < 1 || nbits > Sys.int_size - 2 then invalid_arg "Encoding.make: bad code length";
  let limit = 1 lsl nbits in
  Array.iter
    (fun c -> if c < 0 || c >= limit then invalid_arg "Encoding.make: code out of range")
    codes;
  let sorted = Array.copy codes in
  Array.sort compare sorted;
  for i = 1 to Array.length sorted - 1 do
    if sorted.(i) = sorted.(i - 1) then invalid_arg "Encoding.make: duplicate code"
  done;
  { nbits; codes = Array.copy codes }

let num_states e = Array.length e.codes
let code e s = e.codes.(s)

let one_hot n =
  if n < 1 then invalid_arg "Encoding.one_hot";
  make ~nbits:n (Array.init n (fun s -> 1 lsl s))

let random rng ~num_states ~nbits =
  if num_states > 1 lsl nbits then invalid_arg "Encoding.random: not enough codes";
  let limit = 1 lsl nbits in
  let taken = Hashtbl.create num_states in
  let codes =
    Array.init num_states (fun _ ->
        let rec draw () =
          let c = Random.State.int rng limit in
          if Hashtbl.mem taken c then draw ()
          else begin
            Hashtbl.add taken c ();
            c
          end
        in
        draw ())
  in
  make ~nbits codes

let bit e s b = (e.codes.(s) lsr b) land 1

let used_codes e = List.sort compare (Array.to_list e.codes)

let code_string e s =
  String.init e.nbits (fun i -> if bit e s (e.nbits - 1 - i) = 1 then '1' else '0')

let pp ppf e =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun s _ -> Format.fprintf ppf "state %d -> %s@," s (code_string e s)) e.codes;
  Format.fprintf ppf "@]"
