(** KISS2 state-transition-table format.

    The format read and written here is the MCNC benchmark format the
    paper's flow consumes:

    {v
    .i 2
    .o 1
    .s 4
    .p 8
    .r st0
    01 st0 st1 0
    ...
    .e
    v}

    Present state ['*'] (any state) and next state ['-'] (unspecified) are
    accepted. *)

exception Parse_error of string

(** [parse ~name text] parses the KISS2 [text]. State names are collected
    in order of first appearance when no [.s]-declared order is implied.
    Raises [Parse_error] on malformed input. *)
val parse : name:string -> string -> Fsm.t

(** [print ppf m] writes [m] back in KISS2 syntax. *)
val print : Format.formatter -> Fsm.t -> unit

(** [to_string m] is [print] to a string. *)
val to_string : Fsm.t -> string
