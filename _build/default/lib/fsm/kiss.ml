exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let split_words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse ~name text =
  let lines = String.split_on_char '\n' text in
  let num_inputs = ref None
  and num_outputs = ref None
  and declared_products = ref None
  and declared_states = ref None
  and reset_name = ref None in
  let states = ref [] (* reversed order of first appearance *)
  and state_ids = Hashtbl.create 17
  and rows = ref [] in
  let intern s =
    match Hashtbl.find_opt state_ids s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length state_ids in
        Hashtbl.add state_ids s i;
        states := s :: !states;
        i
  in
  let parse_int what w =
    match int_of_string_opt w with Some i -> i | None -> fail "bad %s count %S" what w
  in
  List.iter
    (fun raw ->
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match split_words line with
      | [] -> ()
      | ".i" :: w :: _ -> num_inputs := Some (parse_int "input" w)
      | ".o" :: w :: _ -> num_outputs := Some (parse_int "output" w)
      | ".p" :: w :: _ -> declared_products := Some (parse_int "product" w)
      | ".s" :: w :: _ -> declared_states := Some (parse_int "state" w)
      | ".r" :: w :: _ -> reset_name := Some w
      | ".e" :: _ | ".end" :: _ -> ()
      | [ input; present; next; output ] ->
          let src = if present = "*" then None else Some (intern present) in
          let dst = if next = "-" then None else Some (intern next) in
          rows := { Fsm.input; src; dst; output } :: !rows
      | ws -> fail "unparseable line %S" (String.concat " " ws))
    lines;
  let num_inputs =
    match !num_inputs with Some i -> i | None -> fail "missing .i declaration"
  in
  let num_outputs =
    match !num_outputs with Some o -> o | None -> fail "missing .o declaration"
  in
  let rows = List.rev !rows in
  (match !declared_products with
  | Some p when p <> List.length rows ->
      fail ".p declares %d rows but %d were given" p (List.length rows)
  | Some _ | None -> ());
  (match !declared_states with
  | Some s when s <> Hashtbl.length state_ids ->
      fail ".s declares %d states but %d distinct names appear" s (Hashtbl.length state_ids)
  | Some _ | None -> ());
  let states = Array.of_list (List.rev !states) in
  if Array.length states = 0 then fail "no states in table";
  let reset =
    match !reset_name with
    | None -> None
    | Some r -> (
        match Hashtbl.find_opt state_ids r with
        | Some i -> Some i
        | None -> fail "reset state %S does not appear in the table" r)
  in
  try
    match reset with
    | Some r -> Fsm.create ~name ~num_inputs ~num_outputs ~states ~transitions:rows ~reset:r ()
    | None -> Fsm.create ~name ~num_inputs ~num_outputs ~states ~transitions:rows ()
  with Invalid_argument msg -> fail "%s" msg

let print ppf (m : Fsm.t) =
  Format.fprintf ppf ".i %d@." m.Fsm.num_inputs;
  Format.fprintf ppf ".o %d@." m.Fsm.num_outputs;
  Format.fprintf ppf ".p %d@." (List.length m.Fsm.transitions);
  Format.fprintf ppf ".s %d@." (Array.length m.Fsm.states);
  (match m.Fsm.reset with
  | Some r -> Format.fprintf ppf ".r %s@." m.Fsm.states.(r)
  | None -> ());
  List.iter
    (fun tr ->
      let pres = match tr.Fsm.src with None -> "*" | Some s -> m.Fsm.states.(s) in
      let nxt = match tr.Fsm.dst with None -> "-" | Some s -> m.Fsm.states.(s) in
      Format.fprintf ppf "%s %s %s %s@." tr.Fsm.input pres nxt tr.Fsm.output)
    m.Fsm.transitions;
  Format.fprintf ppf ".e@."

let to_string m = Format.asprintf "%a" print m
