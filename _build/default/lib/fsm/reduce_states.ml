(* State minimization over explicit input minterms. The enumeration of
   the input space bounds this module to machines with a moderate number
   of inputs, which is what state minimization is used for in practice
   (controller tables). *)

let max_inputs = 12

let input_minterms (m : Fsm.t) =
  if m.Fsm.num_inputs > max_inputs then
    invalid_arg "Reduce_states: too many inputs to enumerate";
  List.init (1 lsl m.Fsm.num_inputs) (fun v ->
      String.init m.Fsm.num_inputs (fun i -> if v land (1 lsl i) <> 0 then '1' else '0'))

(* The behaviour of a state under one input: (next, output) with None for
   an unspecified transition. *)
let behaviour m s input = Fsm.next m ~input ~src:s

let remove_unreachable (m : Fsm.t) =
  let n = Array.length m.Fsm.states in
  let start = Option.value m.Fsm.reset ~default:0 in
  let reached = Array.make n false in
  let rec visit s =
    if not reached.(s) then begin
      reached.(s) <- true;
      List.iter
        (fun (tr : Fsm.transition) ->
          match (tr.Fsm.src, tr.Fsm.dst) with
          | (Some src, Some d) when src = s -> visit d
          | (None, Some d) -> visit d (* any-state rows fire everywhere *)
          | (Some _ | None), (Some _ | None) -> ())
        m.Fsm.transitions
    end
  in
  visit start;
  if Array.for_all (fun r -> r) reached then m
  else begin
    let keep = List.filter (fun s -> reached.(s)) (List.init n (fun s -> s)) in
    let remap = Hashtbl.create n in
    List.iteri (fun i s -> Hashtbl.add remap s i) keep;
    let states = Array.of_list (List.map (fun s -> m.Fsm.states.(s)) keep) in
    let transitions =
      List.filter_map
        (fun (tr : Fsm.transition) ->
          match tr.Fsm.src with
          | Some s when not reached.(s) -> None
          | src ->
              Some
                {
                  tr with
                  Fsm.src = Option.map (Hashtbl.find remap) src;
                  dst = Option.map (Hashtbl.find remap) tr.Fsm.dst;
                })
        m.Fsm.transitions
    in
    let reset = Hashtbl.find remap start in
    Fsm.create ~name:m.Fsm.name ~num_inputs:m.Fsm.num_inputs ~num_outputs:m.Fsm.num_outputs
      ~states ~transitions ~reset ()
  end

(* --- completely specified machines: partition refinement --------------- *)

let equivalent_states (m : Fsm.t) =
  let n = Array.length m.Fsm.states in
  let inputs = input_minterms m in
  (* class_of.(s) is s's current class id. Initial split: output signature. *)
  let signature class_of s =
    List.map
      (fun input ->
        match behaviour m s input with
        | None -> None
        | Some (dst, out) -> Some ((match dst with None -> -1 | Some d -> class_of.(d)), out))
      inputs
  in
  let class_of = ref (Array.make n 0) in
  let initial = Array.make n 0 in
  let tbl = Hashtbl.create 17 in
  for s = 0 to n - 1 do
    let key =
      List.map
        (fun input ->
          match behaviour m s input with None -> None | Some (_, out) -> Some out)
        inputs
    in
    let key = Marshal.to_string key [] in
    (match Hashtbl.find_opt tbl key with
    | Some c -> initial.(s) <- c
    | None ->
        let c = Hashtbl.length tbl in
        Hashtbl.add tbl key c;
        initial.(s) <- c)
  done;
  class_of := initial;
  let stable = ref false in
  while not !stable do
    let tbl = Hashtbl.create 17 in
    let next = Array.make n 0 in
    for s = 0 to n - 1 do
      let key = Marshal.to_string ((!class_of).(s), signature !class_of s) [] in
      match Hashtbl.find_opt tbl key with
      | Some c -> next.(s) <- c
      | None ->
          let c = Hashtbl.length tbl in
          Hashtbl.add tbl key c;
          next.(s) <- c
    done;
    stable := next = !class_of;
    class_of := next
  done;
  let classes = Hashtbl.create 17 in
  Array.iteri
    (fun s c ->
      Hashtbl.replace classes c (s :: Option.value ~default:[] (Hashtbl.find_opt classes c)))
    !class_of;
  Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc) classes []
  |> List.sort compare

let merge_by_classes (m : Fsm.t) classes =
  let n = Array.length m.Fsm.states in
  let rep_of = Array.make n 0 and class_id = Array.make n 0 in
  List.iteri
    (fun ci members ->
      let rep = List.fold_left min max_int members in
      List.iter
        (fun s ->
          rep_of.(s) <- rep;
          class_id.(s) <- ci)
        members)
    classes;
  let keep = List.map (fun members -> List.fold_left min max_int members) classes in
  let keep = List.sort compare keep in
  let new_index = Hashtbl.create 17 in
  List.iteri (fun i s -> Hashtbl.add new_index s i) keep;
  let remap s = Hashtbl.find new_index rep_of.(s) in
  let states = Array.of_list (List.map (fun s -> m.Fsm.states.(s)) keep) in
  (* One row per (kept class, row of its representative). Rows of merged
     non-representative states are dropped; for incompletely specified
     merging the caller builds rows differently. *)
  let transitions =
    List.filter_map
      (fun (tr : Fsm.transition) ->
        match tr.Fsm.src with
        | Some s when rep_of.(s) = s ->
            Some
              {
                tr with
                Fsm.src = Some (remap s);
                dst = Option.map remap tr.Fsm.dst;
              }
        | Some _ -> None
        | None -> Some { tr with Fsm.dst = Option.map remap tr.Fsm.dst })
      m.Fsm.transitions
  in
  let reset = Option.map remap m.Fsm.reset in
  match reset with
  | Some r ->
      Fsm.create ~name:m.Fsm.name ~num_inputs:m.Fsm.num_inputs ~num_outputs:m.Fsm.num_outputs
        ~states ~transitions ~reset:r ()
  | None ->
      Fsm.create ~name:m.Fsm.name ~num_inputs:m.Fsm.num_inputs ~num_outputs:m.Fsm.num_outputs
        ~states ~transitions ()

let reduce m = merge_by_classes m (equivalent_states m)

(* --- incompletely specified machines: pair chart + greedy cliques ------ *)

let outputs_clash a b =
  let clash = ref false in
  String.iteri
    (fun j ca ->
      let cb = b.[j] in
      if ca <> '-' && cb <> '-' && ca <> cb then clash := true)
    a;
  !clash

let compatible_matrix (m : Fsm.t) =
  let n = Array.length m.Fsm.states in
  let inputs = input_minterms m in
  let incompatible = Array.make_matrix n n false in
  (* Seed: specified outputs clash. *)
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      List.iter
        (fun input ->
          match (behaviour m s input, behaviour m t input) with
          | Some (_, oa), Some (_, ob) when outputs_clash oa ob ->
              incompatible.(s).(t) <- true;
              incompatible.(t).(s) <- true
          | Some _, Some _ | Some _, None | None, Some _ | None, None -> ())
        inputs
    done
  done;
  (* Propagate: incompatible successors poison the pair. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to n - 1 do
      for t = s + 1 to n - 1 do
        if not incompatible.(s).(t) then
          List.iter
            (fun input ->
              match (behaviour m s input, behaviour m t input) with
              | Some (Some ds, _), Some (Some dt, _)
                when ds <> dt && incompatible.(min ds dt).(max ds dt) ->
                  incompatible.(s).(t) <- true;
                  incompatible.(t).(s) <- true;
                  changed := true
              | Some _, Some _ | Some _, None | None, Some _ | None, None -> ())
            inputs
      done
    done
  done;
  incompatible

let compatible_pairs m =
  let n = Array.length m.Fsm.states in
  let incompatible = compatible_matrix m in
  let pairs = ref [] in
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      if not incompatible.(s).(t) then pairs := (s, t) :: !pairs
    done
  done;
  List.rev !pairs

let reduce_incompletely_specified (m : Fsm.t) =
  let n = Array.length m.Fsm.states in
  let inputs = input_minterms m in
  let incompatible = compatible_matrix m in
  (* Greedy cliques over the compatibility graph. *)
  let clique_of = Array.make n (-1) in
  let cliques = ref [] in
  for s = 0 to n - 1 do
    if clique_of.(s) < 0 then begin
      let members = ref [ s ] in
      for t = s + 1 to n - 1 do
        if clique_of.(t) < 0 && List.for_all (fun u -> not incompatible.(u).(t)) !members then
          members := t :: !members
      done;
      let ci = List.length !cliques in
      List.iter (fun u -> clique_of.(u) <- ci) !members;
      cliques := List.sort compare !members :: !cliques
    end
  done;
  let cliques = ref (Array.of_list (List.rev !cliques)) in
  (* Closure repair: a clique whose members' specified successors under
     some input fall into different cliques cannot be merged as-is; evict
     a member into its own clique and re-check. Cliques only shrink, so
     this terminates. *)
  let rebuild_clique_of () =
    Array.iteri
      (fun ci members -> List.iter (fun u -> clique_of.(u) <- ci) members)
      !cliques
  in
  let closed = ref false in
  while not !closed do
    closed := true;
    rebuild_clique_of ();
    Array.iteri
      (fun ci members ->
        if !closed && List.length members > 1 then
          List.iter
            (fun input ->
              if !closed then begin
                let dst_cliques =
                  List.filter_map
                    (fun s ->
                      match behaviour m s input with
                      | Some (Some d, _) -> Some clique_of.(d)
                      | Some (None, _) | None -> None)
                    members
                  |> List.sort_uniq compare
                in
                match dst_cliques with
                | _ :: _ :: _ ->
                    (* Split: evict the last member. *)
                    (match List.rev members with
                    | evicted :: rest ->
                        !cliques.(ci) <- List.rev rest;
                        cliques := Array.append !cliques [| [ evicted ] |];
                        closed := false
                    | [] -> ())
                | [] | [ _ ] -> ()
              end)
            inputs)
      !cliques
  done;
  rebuild_clique_of ();
  let cliques = !cliques in
  let num_cliques = Array.length cliques in
  (* Build the merged machine: one state per clique, rows combining the
     members' specified behaviour per input minterm. *)
  let states =
    Array.init num_cliques (fun ci -> m.Fsm.states.(List.hd cliques.(ci)))
  in
  let combine_outputs outs =
    String.init m.Fsm.num_outputs (fun j ->
        let specified =
          List.filter_map (fun o -> if o.[j] = '-' then None else Some o.[j]) outs
        in
        match specified with [] -> '-' | c :: _ -> c)
  in
  let transitions = ref [] in
  Array.iteri
    (fun ci members ->
      List.iter
        (fun input ->
          let specified =
            List.filter_map
              (fun s ->
                match behaviour m s input with
                | Some (dst, out) -> Some (dst, out)
                | None -> None)
              members
          in
          match specified with
          | [] -> ()
          | _ ->
              let dst =
                match List.filter_map fst specified with
                | [] -> None
                | d :: _ -> Some clique_of.(d)
              in
              let output = combine_outputs (List.map snd specified) in
              transitions :=
                { Fsm.input; src = Some ci; dst; output } :: !transitions)
        inputs)
    cliques;
  let reset = Option.map (fun r -> clique_of.(r)) m.Fsm.reset in
  match reset with
  | Some r ->
      Fsm.create ~name:m.Fsm.name ~num_inputs:m.Fsm.num_inputs ~num_outputs:m.Fsm.num_outputs
        ~states ~transitions:(List.rev !transitions) ~reset:r ()
  | None ->
      Fsm.create ~name:m.Fsm.name ~num_inputs:m.Fsm.num_inputs ~num_outputs:m.Fsm.num_outputs
        ~states ~transitions:(List.rev !transitions) ()
