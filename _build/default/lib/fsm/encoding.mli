(** State encodings: an assignment of distinct binary codes to the states
    of a machine. Bit [b] of a code is [(code lsr b) land 1]. *)

type t = private { nbits : int; codes : int array }

(** [make ~nbits codes] validates: every code fits in [nbits] bits and
    codes are pairwise distinct. Raises [Invalid_argument] otherwise. *)
val make : nbits:int -> int array -> t

(** [num_states e] is the number of encoded states. *)
val num_states : t -> int

(** [code e s] is the code of state [s]. *)
val code : t -> int -> int

(** [one_hot n] is the 1-hot encoding of [n] states ([n] bits). *)
val one_hot : int -> t

(** [random rng ~num_states ~nbits] draws distinct random codes. *)
val random : Random.State.t -> num_states:int -> nbits:int -> t

(** [bit e s b] is bit [b] of the code of state [s]. *)
val bit : t -> int -> int -> int

(** [used_codes e] is the sorted list of codes in use. *)
val used_codes : t -> int list

(** [pp ppf e] prints state codes as binary strings (bit 0 leftmost is
    NOT used: the most significant declared bit prints first). *)
val pp : Format.formatter -> t -> unit

(** [code_string e s] is the code of state [s] as an [nbits]-character
    binary string, most significant bit first. *)
val code_string : t -> int -> string
