let dot ppf (m : Fsm.t) =
  Format.fprintf ppf "digraph %s {@." m.Fsm.name;
  Format.fprintf ppf "  rankdir=LR;@.";
  Array.iteri
    (fun s name ->
      let shape = if m.Fsm.reset = Some s then "doublecircle" else "circle" in
      Format.fprintf ppf "  %s [shape=%s];@." name shape)
    m.Fsm.states;
  List.iter
    (fun (tr : Fsm.transition) ->
      let src = match tr.Fsm.src with Some s -> m.Fsm.states.(s) | None -> "ANY" in
      let dst = match tr.Fsm.dst with Some s -> m.Fsm.states.(s) | None -> "UNSPEC" in
      Format.fprintf ppf "  %s -> %s [label=\"%s/%s\"];@." src dst tr.Fsm.input tr.Fsm.output)
    m.Fsm.transitions;
  Format.fprintf ppf "}@."

let dot_string m = Format.asprintf "%a" dot m

let blif ppf (net : Multilevel.network) ~name ~num_inputs =
  let var_name v = if v < num_inputs then Printf.sprintf "x%d" v else Printf.sprintf "k%d" v in
  let outputs =
    List.filter
      (fun (n : Multilevel.node) -> String.length n.Multilevel.name > 0 && n.Multilevel.name.[0] = 'o')
      net.Multilevel.nodes
  in
  Format.fprintf ppf ".model %s@." name;
  Format.fprintf ppf ".inputs%t@." (fun ppf ->
      for v = 0 to num_inputs - 1 do
        Format.fprintf ppf " x%d" v
      done);
  Format.fprintf ppf ".outputs%t@." (fun ppf ->
      List.iter (fun (n : Multilevel.node) -> Format.fprintf ppf " %s" n.Multilevel.name) outputs);
  List.iter
    (fun (n : Multilevel.node) ->
      (* Support of the node, in ascending variable order. *)
      let support =
        List.concat_map (List.map (fun l -> l / 2)) n.Multilevel.products
        |> List.sort_uniq compare
      in
      Format.fprintf ppf ".names%t %s@."
        (fun ppf -> List.iter (fun v -> Format.fprintf ppf " %s" (var_name v)) support)
        n.Multilevel.name;
      List.iter
        (fun product ->
          let cell v =
            if List.mem (2 * v) product then '1'
            else if List.mem ((2 * v) + 1) product then '0'
            else '-'
          in
          let row = String.concat "" (List.map (fun v -> String.make 1 (cell v)) support) in
          Format.fprintf ppf "%s 1@." row)
        n.Multilevel.products)
    net.Multilevel.nodes;
  Format.fprintf ppf ".end@."

let blif_string net ~name ~num_inputs =
  Format.asprintf "%a" (fun ppf () -> blif ppf net ~name ~num_inputs) ()
