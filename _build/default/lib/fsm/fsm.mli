(** Finite state machines as state transition tables.

    A machine has [num_inputs] binary primary inputs, [num_outputs] binary
    primary outputs, and a set of named symbolic states. Each transition
    row maps an input cube and a present state to a next state and an
    output pattern, exactly like a row of a KISS2 file. *)

type transition = {
  input : string;  (** over ['0'], ['1'], ['-']; length [num_inputs] *)
  src : int option;  (** present state, [None] when the row applies to any state *)
  dst : int option;  (** next state, [None] when unspecified *)
  output : string;  (** over ['0'], ['1'], ['-']; length [num_outputs] *)
}

type t = private {
  name : string;
  num_inputs : int;
  num_outputs : int;
  states : string array;
  transitions : transition list;
  reset : int option;
}

(** [create ~name ~num_inputs ~num_outputs ~states ~transitions ?reset ()]
    validates and builds a machine. Raises [Invalid_argument] when a row
    has the wrong field width, an unknown state index, or a bad
    character. *)
val create :
  name:string ->
  num_inputs:int ->
  num_outputs:int ->
  states:string array ->
  transitions:transition list ->
  ?reset:int ->
  unit ->
  t

(** [num_states m] is the number of symbolic states. *)
val num_states : m:t -> int

(** [state_index m name] is the index of the state called [name]. *)
val state_index : t -> string -> int option

(** [min_code_length m] is [ceil (log2 (num_states m))], at least 1: the
    minimum number of encoding bits. *)
val min_code_length : t -> int

type stats = {
  stat_name : string;
  stat_inputs : int;
  stat_outputs : int;
  stat_states : int;
  stat_products : int;  (** number of transition rows *)
}

(** [stats m] is the Table-I style statistics record of [m]. *)
val stats : t -> stats

(** [next m ~input ~src] simulates one step: the first row matching the
    fully-specified [input] string in state [src]. [None] when the
    behaviour is unspecified. The output pattern keeps ['-'] for
    unspecified output bits. *)
val next : t -> input:string -> src:int -> (int option * string) option

val pp : Format.formatter -> t -> unit
