(** Simulation and equivalence checking.

    Drives a machine over input traces and cross-checks the symbolic
    machine against its encoded two-level implementation — the
    correctness oracle for a state assignment: whatever the codes, the
    minimized PLA must realize every specified transition and output. *)

(** One simulation step outcome. *)
type step = {
  input : string;
  state_before : int;
  state_after : int option;  (** [None] once behaviour became unspecified *)
  outputs : string;  (** as specified by the table, ['-'] kept *)
}

(** [run m ~from trace] drives [m] over the fully specified input strings
    of [trace], stopping early when behaviour becomes unspecified. *)
val run : Fsm.t -> from:int -> string list -> step list

(** [random_trace rng m ~length] draws a fully specified input trace. *)
val random_trace : Random.State.t -> Fsm.t -> length:int -> string list

(** Result of an equivalence check. *)
type verdict =
  | Equivalent
  | Mismatch of { state : int; input : string; detail : string }

(** [check_encoding m e] verifies exhaustively (over every state and
    every input minterm; requires [num_inputs <= 16]) that the ESPRESSO-
    minimized implementation of [m] under encoding [e] realizes every
    specified transition and output bit. *)
val check_encoding : Fsm.t -> Encoding.t -> verdict

(** [check_encoding_sampled rng m e ~traces ~length] is a randomized
    version for machines with wide inputs: drives [traces] random traces
    of [length] steps from the reset state (or state 0). *)
val check_encoding_sampled :
  Random.State.t -> Fsm.t -> Encoding.t -> traces:int -> length:int -> verdict
