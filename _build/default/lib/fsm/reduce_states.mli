(** State minimization — the SIS-flow step that precedes state
    assignment. NOVA's paper assumes minimized machines; this module
    supplies the substrate.

    For completely specified machines, classic partition refinement
    computes the unique minimum machine (equivalent states merged). For
    incompletely specified machines, exact minimization is NP-hard; a
    STAMINA-flavored heuristic builds the compatibility relation and
    greedily merges maximal sets of pairwise compatible states (not
    guaranteed minimum, always behavior-preserving on the specified
    part). *)

(** [remove_unreachable m] drops the states no input sequence can reach
    from the reset state (state 0 when no reset is declared), together
    with their rows. Rows applying to any state (['*']) are kept. *)
val remove_unreachable : Fsm.t -> Fsm.t

(** [equivalent_states m] partitions the states of [m] into equivalence
    classes by partition refinement. Two states are equivalent iff no
    input sequence distinguishes their specified outputs and successors.
    Only meaningful for completely specified machines; unspecified
    entries are treated as distinct behaviours. *)
val equivalent_states : Fsm.t -> int list list

(** [reduce m] merges equivalent states, keeping the lowest-numbered
    representative of each class; the reset state is remapped. The result
    has the same inputs/outputs and at most as many states. *)
val reduce : Fsm.t -> Fsm.t

(** [compatible_pairs m] computes the compatibility relation of an
    incompletely specified machine: states [s], [t] are compatible iff
    for every input their specified outputs agree and their specified
    successors are (recursively) compatible. Returns the upper-triangle
    pairs [(s, t)], [s < t]. *)
val compatible_pairs : Fsm.t -> (int * int) list

(** [reduce_incompletely_specified m] greedily covers the states with
    cliques of the compatibility graph and merges each clique. The merged
    machine's rows combine the clique members' specified behaviour. *)
val reduce_incompletely_specified : Fsm.t -> Fsm.t
