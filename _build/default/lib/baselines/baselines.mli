(** Baseline state-assignment programs the paper compares against.

    - [kiss_encode]: KISS [9] guarantees satisfaction of {e all} input
      constraints with a heuristic that does not always achieve the
      minimum necessary code length. Re-implemented here as constraint
      accretion at the minimum length followed by projection into as many
      extra dimensions as satisfaction requires.
    - [mustang_encode]: MUSTANG [12] maximizes common-cube sharing in the
      encoded network by building a state-pair attraction graph (fan-out
      or fan-in oriented, optionally weighting output agreement) and
      embedding it greedily in the hypercube, minimizing weighted Hamming
      distance. Used for the two-level and multilevel comparisons of
      Table VII. *)

(** [kiss_encode ~num_states ics] returns an encoding satisfying every
    constraint in [ics] (possibly longer than the minimum length) and the
    number of bits used. *)
val kiss_encode :
  num_states:int -> ?max_work:int -> Constraints.input_constraint list -> Encoding.t

type mustang_flavor =
  | Fanout  (** [-n]: attraction between present states with common
                behaviour (same next state, same asserted outputs) *)
  | Fanin  (** [-p]: attraction between next states reached from common
               present states *)

(** [mustang_encode m ~flavor ~include_outputs ~nbits] builds the
    attraction graph and embeds it greedily. [include_outputs] adds the
    output-agreement term ([-pt]/[-nt] options of the paper). *)
val mustang_encode :
  Fsm.t -> flavor:mustang_flavor -> include_outputs:bool -> nbits:int -> Encoding.t

(** [mustang_attractions m ~flavor ~include_outputs] exposes the weight
    matrix for tests. *)
val mustang_attractions :
  Fsm.t -> flavor:mustang_flavor -> include_outputs:bool -> int array array
