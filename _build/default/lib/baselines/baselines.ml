let kiss_encode ~num_states ?max_work ics =
  (* Room for projection up to one dimension per constraint guarantees
     full satisfaction (Proposition 4.2.1). *)
  let nbits_cap =
    min 60 (Ihybrid.min_code_length num_states + max 1 (List.length ics))
  in
  let r =
    match max_work with
    | Some w -> Ihybrid.ihybrid_code ~num_states ~nbits:nbits_cap ~max_work:w ics
    | None -> Ihybrid.ihybrid_code ~num_states ~nbits:nbits_cap ics
  in
  r.Ihybrid.encoding

type mustang_flavor = Fanout | Fanin

(* Number of shared fully-specified input patterns of two input cubes:
   the product over positions of the overlap. *)
let input_overlap a b =
  let n = String.length a in
  let rec loop i acc =
    if i = n then acc
    else
      match (a.[i], b.[i]) with
      | '-', '-' -> loop (i + 1) (acc * 2)
      | '-', _ | _, '-' -> loop (i + 1) acc
      | ca, cb -> if ca = cb then loop (i + 1) acc else 0
  in
  loop 0 1

let mustang_attractions (m : Fsm.t) ~flavor ~include_outputs =
  let ns = Array.length m.Fsm.states in
  let w = Array.make_matrix ns ns 0 in
  let add u v x =
    if u <> v && x > 0 then begin
      w.(u).(v) <- w.(u).(v) + x;
      w.(v).(u) <- w.(v).(u) + x
    end
  in
  let rows = Array.of_list m.Fsm.transitions in
  let nrows = Array.length rows in
  let nb = Ihybrid.min_code_length ns in
  for i = 0 to nrows - 1 do
    for j = i + 1 to nrows - 1 do
      let a = rows.(i) and b = rows.(j) in
      match (a.Fsm.src, b.Fsm.src, a.Fsm.dst, b.Fsm.dst) with
      | Some sa, Some sb, Some da, Some db ->
          (match flavor with
          | Fanout ->
              (* Present states behaving alike want close codes. *)
              if sa <> sb then begin
                let overlap = input_overlap a.Fsm.input b.Fsm.input in
                if overlap > 0 then begin
                  if da = db then add sa sb nb;
                  if include_outputs then begin
                    let common = ref 0 in
                    String.iteri
                      (fun o ch -> if ch = '1' && b.Fsm.output.[o] = '1' then incr common)
                      a.Fsm.output;
                    add sa sb !common
                  end
                end
              end
          | Fanin ->
              (* Next states reached from a common present state (or on
                 agreeing outputs) want close codes. *)
              if da <> db then begin
                if sa = sb then add da db nb;
                if include_outputs then begin
                  let common = ref 0 in
                  String.iteri
                    (fun o ch -> if ch = '1' && b.Fsm.output.[o] = '1' then incr common)
                    a.Fsm.output;
                  add da db !common
                end
              end)
      | _, _, _, _ -> ()
    done
  done;
  w

let popcount n0 =
  let rec loop n acc = if n = 0 then acc else loop (n land (n - 1)) (acc + 1) in
  loop n0 0

let mustang_encode (m : Fsm.t) ~flavor ~include_outputs ~nbits =
  let ns = Array.length m.Fsm.states in
  if ns > 1 lsl nbits then invalid_arg "Baselines.mustang_encode: code length too small";
  let w = mustang_attractions m ~flavor ~include_outputs in
  let codes = Array.make ns (-1) in
  let used = Hashtbl.create ns in
  let assigned = ref [] in
  (* Seed: the state with the largest total attraction gets code 0. *)
  let total s = Array.fold_left ( + ) 0 w.(s) in
  let first = ref 0 in
  for s = 1 to ns - 1 do
    if total s > total !first then first := s
  done;
  codes.(!first) <- 0;
  Hashtbl.replace used 0 ();
  assigned := [ !first ];
  for _ = 2 to ns do
    (* Next: unassigned state with the strongest tie to the assigned set. *)
    let best_s = ref (-1) and best_w = ref (-1) in
    for s = 0 to ns - 1 do
      if codes.(s) < 0 then begin
        let tie = List.fold_left (fun acc t -> acc + w.(s).(t)) 0 !assigned in
        if tie > !best_w then begin
          best_w := tie;
          best_s := s
        end
      end
    done;
    let s = !best_s in
    (* Choose the free code minimizing the weighted Hamming distance. *)
    let best_c = ref (-1) and best_cost = ref max_int in
    for c = 0 to (1 lsl nbits) - 1 do
      if not (Hashtbl.mem used c) then begin
        let cost =
          List.fold_left (fun acc t -> acc + (w.(s).(t) * popcount (c lxor codes.(t)))) 0 !assigned
        in
        if cost < !best_cost then begin
          best_cost := cost;
          best_c := c
        end
      end
    done;
    codes.(s) <- !best_c;
    Hashtbl.replace used !best_c ();
    assigned := s :: !assigned
  done;
  Encoding.make ~nbits codes
