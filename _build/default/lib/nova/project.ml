let by_weight_desc (a : Constraints.input_constraint) (b : Constraints.input_constraint) =
  let c = compare b.Constraints.weight a.Constraints.weight in
  if c <> 0 then c else Bitvec.compare a.Constraints.states b.Constraints.states

let raise_codes codes nbits group =
  Array.mapi
    (fun s c -> if Bitvec.get group s then c lor (1 lsl nbits) else c)
    codes

let all_satisfied encoding ics =
  List.for_all (fun (ic : Constraints.input_constraint) -> Constraints.satisfied encoding ic.Constraints.states) ics

let project ~codes ~nbits ~sic ~ric =
  match List.sort by_weight_desc ric with
  | [] -> invalid_arg "Project.project: no unsatisfied constraint"
  | target :: rest ->
      let n = Array.length codes in
      let encoding_of group = Encoding.make ~nbits:(nbits + 1) (raise_codes codes nbits group) in
      (* The guaranteed raise set (Proposition 4.2.1). *)
      let best = ref target.Constraints.states in
      let accepted = ref [ target ] in
      (* Greedily absorb more unsatisfied constraints when direct
         verification confirms nothing breaks. *)
      List.iter
        (fun (ic : Constraints.input_constraint) ->
          let candidate = Bitvec.union !best ic.Constraints.states in
          let e = encoding_of candidate in
          if all_satisfied e sic && all_satisfied e (ic :: !accepted) then begin
            best := candidate;
            accepted := ic :: !accepted
          end)
        rest;
      let codes' = raise_codes codes nbits !best in
      let e = Encoding.make ~nbits:(nbits + 1) codes' in
      assert (n = Encoding.num_states e);
      let newly, still =
        List.partition (fun (ic : Constraints.input_constraint) -> Constraints.satisfied e ic.Constraints.states) ric
      in
      (codes', newly, still)
