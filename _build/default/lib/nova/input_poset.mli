(** The input poset of a face hypercube embedding instance (Section 3.2).

    Given the set [IC] of input constraints over [n] states, the input
    poset is the intersection closure of [IC], augmented with the
    universe and all singletons, ordered by set inclusion. The input
    graph [IG] records for every element its {e fathers} (minimal strict
    supersets) and {e children} (maximal strict subsets).

    Element categories (Section 3.3.1):
    - category 1 ({e primary}): single father, the universe;
    - category 2: more than one father — its face is forced to the
      intersection of its fathers' faces;
    - category 3: single father, not the universe — its face lies
      strictly inside its father's face. *)

type element = {
  id : int;
  states : Bitvec.t;
  card : int;
  fathers : int list;
  children : int list;
  category : int;  (** 0 for the universe, otherwise 1, 2 or 3 *)
}

type t = {
  num_states : int;
  elements : element array;  (** universe first, then decreasing cardinality *)
  universe : int;  (** id of the universe element *)
}

(** [build ~num_states ics] computes the closed input poset. Empty and
    duplicate groups are ignored. *)
val build : num_states:int -> Bitvec.t list -> t

(** [find t states] is the id of the element equal to [states], if any. *)
val find : t -> Bitvec.t -> int option

(** [min_level e] is [ceil (log2 (card e))]: the smallest face level that
    can hold the element. *)
val min_level : element -> int

(** [singleton_ids t] maps each state [s] to the id of its singleton
    element. *)
val singleton_ids : t -> int array

(** [share_children a b] holds iff the two elements have a common child. *)
val share_children : element -> element -> bool

(** [mincube_dim t] is the lower bound on the embedding dimension from
    the paper's three counting arguments (Section 3.3.2): face supply per
    level, father counts, and virtual states of uneven constraints. *)
val mincube_dim : t -> int

val pp : Format.formatter -> t -> unit
