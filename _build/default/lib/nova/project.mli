(** [project_code] (Section 4.2): the projection coding step.

    Proposition 4.2.1: an encoding of length [l] satisfying a constraint
    set [C] extends to length [l + 1] satisfying [C] plus any one more
    constraint, by padding the codes of the new constraint's states with
    1 and all others with 0. The implementation additionally tries to
    absorb further unsatisfied constraints into the raised set, accepting
    an extension only after verifying every satisfied constraint
    directly. *)

(** [project ~codes ~nbits ~sic ~ric] adds one dimension (bit [nbits])
    and returns [(codes', newly_satisfied, still_unsatisfied)]. [ric]
    must be non-empty; its highest-weight constraint is guaranteed to
    move to the satisfied side. *)
val project :
  codes:int array ->
  nbits:int ->
  sic:Constraints.input_constraint list ->
  ric:Constraints.input_constraint list ->
  int array * Constraints.input_constraint list * Constraints.input_constraint list
