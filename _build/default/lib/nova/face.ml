type t = { mask : int; bits : int }

let all_bits k =
  if k < 0 || k > 62 then invalid_arg "Face: dimension must be within 0..62";
  (1 lsl k) - 1

let full k =
  ignore (all_bits k);
  { mask = 0; bits = 0 }

let vertex k code =
  let all = all_bits k in
  if code land lnot all <> 0 then invalid_arg "Face.vertex: code out of range";
  { mask = all; bits = code }

let make k ~mask ~bits =
  let all = all_bits k in
  if mask land lnot all <> 0 then invalid_arg "Face.make: mask out of range";
  { mask; bits = bits land mask }

let popcount n0 =
  let rec loop n acc = if n = 0 then acc else loop (n land (n - 1)) (acc + 1) in
  loop n0 0

let level k f = k - popcount f.mask
let cardinality k f = 1 lsl level k f

let inter a b =
  if a.mask land b.mask land (a.bits lxor b.bits) <> 0 then None
  else Some { mask = a.mask lor b.mask; bits = a.bits lor b.bits }

let contains a b = a.mask land lnot b.mask = 0 && (a.bits lxor b.bits) land a.mask = 0

let supercube a b =
  let mask = a.mask land b.mask land lnot (a.bits lxor b.bits) in
  { mask; bits = a.bits land mask }

let contains_code f code = (code lxor f.bits) land f.mask = 0

let vertices k f =
  let free = lnot f.mask land all_bits k in
  (* Positions of the unspecified dimensions, ascending. *)
  let xs =
    List.filter (fun d -> free land (1 lsl d) <> 0) (List.init k (fun d -> d))
  in
  let nx = List.length xs in
  List.init (1 lsl nx) (fun v ->
      let code = ref f.bits in
      List.iteri (fun i d -> if v land (1 lsl i) <> 0 then code := !code lor (1 lsl d)) xs;
      !code)
  |> List.sort compare

(* All subsets of the set bits of [from] with exactly [m] elements, as a
   sequence of masks in lexicographic order of positions. *)
let rec choose_bits from m : int Seq.t =
  if m = 0 then Seq.return 0
  else if popcount from < m then Seq.empty
  else
    match
      let rec lowest d = if from land (1 lsl d) <> 0 then d else lowest (d + 1) in
      lowest 0
    with
    | low ->
        let rest = from land lnot (1 lsl low) in
        Seq.append
          (Seq.map (fun s -> s lor (1 lsl low)) (choose_bits rest (m - 1)))
          (choose_bits rest m)

(* All assignments of the set bits of [mask]: 2^popcount values. *)
let assignments mask : int Seq.t =
  let positions = List.filter (fun d -> mask land (1 lsl d) <> 0) (List.init 62 (fun d -> d)) in
  let n = List.length positions in
  Seq.init (1 lsl n) (fun v ->
      List.fold_left
        (fun (acc, i) d -> ((if v land (1 lsl i) <> 0 then acc lor (1 lsl d) else acc), i + 1))
        (0, 0) positions
      |> fst)

let faces_at_level k l =
  if l < 0 || l > k then Seq.empty
  else
    let all = all_bits k in
    Seq.concat_map
      (fun xmask ->
        let mask = all land lnot xmask in
        Seq.map (fun bits -> { mask; bits }) (assignments mask))
      (choose_bits all l)

let subfaces_at_level k f l =
  let lf = level k f in
  if l < 0 || l > lf then Seq.empty
  else
    let free = lnot f.mask land all_bits k in
    Seq.concat_map
      (fun keep_x ->
        let newly_specified = free land lnot keep_x in
        Seq.map
          (fun bits -> { mask = f.mask lor newly_specified; bits = f.bits lor bits })
          (assignments newly_specified))
      (choose_bits free l)

let superfaces_at_level k f l =
  let lf = level k f in
  if l < lf || l > k then Seq.empty
  else
    Seq.map
      (fun keep -> { mask = keep; bits = f.bits land keep })
      (choose_bits f.mask (k - l))

let equal a b = a.mask = b.mask && a.bits = b.bits
let compare a b = Stdlib.compare (a.mask, a.bits) (b.mask, b.bits)

let pp k ppf f =
  for d = 0 to k - 1 do
    let c =
      if f.mask land (1 lsl d) = 0 then 'x'
      else if f.bits land (1 lsl d) <> 0 then '1'
      else '0'
    in
    Format.pp_print_char ppf c
  done

let to_string k f = Format.asprintf "%a" (pp k) f
