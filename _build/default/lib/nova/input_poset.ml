type element = {
  id : int;
  states : Bitvec.t;
  card : int;
  fathers : int list;
  children : int list;
  category : int;
}

type t = { num_states : int; elements : element array; universe : int }

let build ~num_states ics =
  let tbl = Hashtbl.create 61 in
  let add b = if not (Bitvec.is_empty b) then Hashtbl.replace tbl (Bitvec.to_string b) b in
  add (Bitvec.full num_states);
  for s = 0 to num_states - 1 do
    add (Bitvec.of_list num_states [ s ])
  done;
  List.iter add ics;
  (* Close under pairwise intersection (fixpoint). *)
  let changed = ref true in
  while !changed do
    changed := false;
    let current = Hashtbl.fold (fun _ b acc -> b :: acc) tbl [] in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let i = Bitvec.inter a b in
            if not (Bitvec.is_empty i) then begin
              let key = Bitvec.to_string i in
              if not (Hashtbl.mem tbl key) then begin
                Hashtbl.add tbl key i;
                changed := true
              end
            end)
          current)
      current
  done;
  let sets =
    Hashtbl.fold (fun _ b acc -> b :: acc) tbl []
    |> List.sort (fun a b ->
           let c = compare (Bitvec.cardinal b) (Bitvec.cardinal a) in
           if c <> 0 then c else Bitvec.compare a b)
    |> Array.of_list
  in
  let m = Array.length sets in
  let strictly_contains a b = Bitvec.subset b a && not (Bitvec.equal a b) in
  let fathers = Array.make m [] and children = Array.make m [] in
  for i = 0 to m - 1 do
    (* Supersets come before i in the cardinality-sorted array. *)
    let supers = ref [] in
    for j = 0 to i - 1 do
      if strictly_contains sets.(j) sets.(i) then supers := j :: !supers
    done;
    let minimal j =
      not (List.exists (fun j' -> j' <> j && strictly_contains sets.(j) sets.(j')) !supers)
    in
    let fs = List.filter minimal !supers in
    fathers.(i) <- fs;
    List.iter (fun j -> children.(j) <- i :: children.(j)) fs
  done;
  let universe = 0 in
  assert (Bitvec.is_full sets.(universe));
  let elements =
    Array.init m (fun i ->
        let category =
          if i = universe then 0
          else
            match fathers.(i) with
            | [ f ] -> if f = universe then 1 else 3
            | _ :: _ :: _ -> 2
            | [] -> assert false (* every non-universe set is below the universe *)
        in
        {
          id = i;
          states = sets.(i);
          card = Bitvec.cardinal sets.(i);
          fathers = fathers.(i);
          children = children.(i);
          category;
        })
  in
  { num_states; elements; universe }

let find t states =
  let m = Array.length t.elements in
  let rec loop i =
    if i = m then None
    else if Bitvec.equal t.elements.(i).states states then Some i
    else loop (i + 1)
  in
  loop 0

let min_level e =
  let rec bits k acc = if acc >= e.card then k else bits (k + 1) (acc * 2) in
  bits 0 1

let singleton_ids t =
  let ids = Array.make t.num_states (-1) in
  Array.iter
    (fun e ->
      if e.card = 1 then
        match Bitvec.first_set e.states with
        | Some s -> ids.(s) <- e.id
        | None -> assert false)
    t.elements;
  ids

let share_children a b = List.exists (fun c -> List.mem c b.children) a.children

(* --- Lower bounds on the embedding dimension (Section 3.3.2) ---------- *)

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let ceil_log2 n =
  let rec bits k acc = if acc >= n then k else bits (k + 1) (acc * 2) in
  bits 0 1

(* Condition 1: enough faces of each cardinality class. *)
let count_cond1 t k0 =
  let max_level = Hashtbl.create 7 in
  Array.iter
    (fun e ->
      if e.id <> t.universe then
        let l = min_level e in
        Hashtbl.replace max_level l (1 + Option.value ~default:0 (Hashtbl.find_opt max_level l)))
    t.elements;
  let fits k =
    Hashtbl.fold
      (fun l need ok ->
        ok && k >= l && need <= binomial k l * (1 lsl (k - l)))
      max_level true
  in
  let rec grow k = if fits k then k else grow (k + 1) in
  grow k0

(* Condition 2: a face of level l has k - l minimal including faces; a
   constraint at its minimum level needs one per father. *)
let count_cond2 t k0 =
  Array.fold_left
    (fun k e ->
      if e.id = t.universe then k else max k (min_level e + List.length e.fathers))
    k0 t.elements

(* Condition 3: virtual states of uneven constraints must fit in the
   unused vertices, assuming the densest packing (at most [k] uneven
   constraints can share one virtual state). *)
let count_cond3 t k0 =
  let n = t.num_states in
  let uneven =
    Array.to_list t.elements
    |> List.filter_map (fun e ->
           if e.id = t.universe || e.card < 2 then None
           else
             let v = (1 lsl min_level e) - e.card in
             if v > 0 then Some v else None)
  in
  if uneven = [] then k0
  else begin
    let rec try_dim k =
      if k >= n then k
      else begin
        (* Rounds of the densest packing: each round identifies one fresh
           virtual state shared by up to [k] uneven constraints. *)
        let vrt = List.sort compare uneven in
        let rec rounds vrt count =
          if List.for_all (fun v -> v = 0) vrt then count
          else
            let vrt = List.sort compare vrt in
            let remaining = ref k in
            let vrt =
              List.map
                (fun v ->
                  if v > 0 && !remaining > 0 then begin
                    decr remaining;
                    v - 1
                  end
                  else v)
                vrt
            in
            rounds vrt (count + 1)
        in
        let iter_count = rounds vrt 0 in
        if (1 lsl k) - n >= iter_count then k else try_dim (k + 1)
      end
    in
    try_dim k0
  end

let mincube_dim t =
  let k0 = ceil_log2 t.num_states in
  let k0 = max k0 1 in
  count_cond3 t (count_cond2 t (count_cond1 t k0))

let pp ppf t =
  Format.fprintf ppf "@[<v>input poset over %d states:@," t.num_states;
  Array.iter
    (fun e ->
      Format.fprintf ppf "  [%d] %a card=%d cat=%d fathers=%a@," e.id Bitvec.pp e.states e.card
        e.category
        (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_int)
        e.fathers)
    t.elements;
  Format.fprintf ppf "@]"
