lib/nova/out_encoder.ml: Array Constraints Encoding Hashtbl List Option
