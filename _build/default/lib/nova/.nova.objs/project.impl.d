lib/nova/project.ml: Array Bitvec Constraints Encoding List
