lib/nova/out_encoder.mli: Constraints Encoding
