lib/nova/iexact.ml: Array Bitvec Constraints Embed Encoding Input_poset List Project
