lib/nova/iohybrid.mli: Constraints Encoding
