lib/nova/input_poset.ml: Array Bitvec Format Hashtbl List Option
