lib/nova/igreedy.mli: Constraints Encoding
