lib/nova/igreedy.ml: Array Bitvec Constraints Encoding Face Hashtbl Ihybrid Input_poset List Seq
