lib/nova/face.mli: Format Seq
