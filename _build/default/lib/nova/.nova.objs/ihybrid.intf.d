lib/nova/ihybrid.mli: Constraints Encoding
