lib/nova/iohybrid.ml: Bitvec Constraints Encoding Iexact Ihybrid List Out_encoder Project Random
