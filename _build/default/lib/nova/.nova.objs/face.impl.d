lib/nova/face.ml: Format List Seq Stdlib
