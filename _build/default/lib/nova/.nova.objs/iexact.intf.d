lib/nova/iexact.mli: Bitvec Constraints
