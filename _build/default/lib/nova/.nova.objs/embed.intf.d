lib/nova/embed.mli: Constraints Face Input_poset
