lib/nova/ihybrid.ml: Bitvec Constraints Encoding Iexact List Project Random
