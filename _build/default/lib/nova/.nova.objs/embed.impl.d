lib/nova/embed.ml: Array Bitvec Constraints Face Hashtbl Input_poset List Option Seq
