lib/nova/project.mli: Constraints
