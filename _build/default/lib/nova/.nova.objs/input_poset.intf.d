lib/nova/input_poset.mli: Bitvec Format
