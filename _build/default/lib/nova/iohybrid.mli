(** [iohybrid_code] and [iovariant_code] (Section 6.2): heuristic
    satisfaction of the mixed input/output constraints produced by
    symbolic minimization — the ordered face hypercube embedding problem.

    [iohybrid_code] (Section 6.2.1) gives priority to input constraints:
    it first accretes input constraints like [ihybrid_code], then tries
    to add clusters of output covering constraints in decreasing weight
    order through [io_semiexact_code], and finally projects into extra
    dimensions to satisfy remaining input constraints.

    [iovariant_code] (Section 6.2.2) accepts a cluster only when both its
    output constraints and its companion input constraints are satisfied
    together. The paper found [iohybrid_code] performs better. *)

type problem = {
  num_states : int;
  ics : Constraints.input_constraint list;
      (** companion input constraints, including [IC_o] *)
  clusters : Constraints.oc_cluster list;
}

type result = {
  encoding : Encoding.t;
  sat_inputs : Constraints.input_constraint list;
  unsat_inputs : Constraints.input_constraint list;
  sat_clusters : Constraints.oc_cluster list;
}

val iohybrid_code : ?nbits:int -> ?max_work:int -> ?seed:int -> problem -> result
val iovariant_code : ?nbits:int -> ?max_work:int -> ?seed:int -> problem -> result
