(** Faces (subcubes) of the Boolean k-cube, k <= 62.

    A face is a string over [{0, 1, x}]: dimension [d] is specified when
    bit [d] of [mask] is set, with value bit [d] of [bits]; unspecified
    ([x]) otherwise. The {e level} of a face is its number of [x]s; its
    cardinality is [2^level] (Section 3.1 of the paper). *)

type t = { mask : int; bits : int }

(** [full k] is the all-[x] face (the whole k-cube). *)
val full : int -> t

(** [vertex k code] is the fully specified face of [code]. *)
val vertex : int -> int -> t

(** [make k ~mask ~bits] normalizes [bits] onto [mask]; raises
    [Invalid_argument] when [mask] exceeds the k-cube. *)
val make : int -> mask:int -> bits:int -> t

(** [level k f] is the number of unspecified dimensions. *)
val level : int -> t -> int

(** [cardinality k f] is [2 ^ level k f]. *)
val cardinality : int -> t -> int

(** [inter a b] is the face intersection, [None] when some dimension is
    specified with opposite values. *)
val inter : t -> t -> t option

(** [contains a b] holds iff face [a] includes face [b]. *)
val contains : t -> t -> bool

(** [supercube k a b] is the smallest face containing both. *)
val supercube : t -> t -> t

(** [contains_code f code] holds iff vertex [code] lies on [f]. *)
val contains_code : t -> int -> bool

(** [vertices k f] enumerates the codes on [f], in increasing order. *)
val vertices : int -> t -> int list

(** [faces_at_level k l] is the sequence of all faces of the k-cube with
    exactly [l] unspecified dimensions, in the lexicographic order of
    x-position patterns and then of specified bits — the paper's
    [genface] generation order. *)
val faces_at_level : int -> int -> t Seq.t

(** [subfaces_at_level k f l] is the sequence of level-[l] subfaces of
    [f]: the faces obtained by specifying [level k f - l] of [f]'s
    unspecified dimensions. *)
val subfaces_at_level : int -> t -> int -> t Seq.t

(** [superfaces_at_level k f l] is the sequence of level-[l] faces
    containing [f]: the faces obtained by unspecifying all but
    [k - l] of [f]'s specified dimensions. *)
val superfaces_at_level : int -> t -> int -> t Seq.t

val equal : t -> t -> bool
val compare : t -> t -> int

(** [pp k ppf f] prints e.g. [x0x1] with dimension 0 leftmost. *)
val pp : int -> Format.formatter -> t -> unit

val to_string : int -> t -> string
