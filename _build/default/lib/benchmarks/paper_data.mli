(** Published results transcribed from the paper's tables, used by the
    harness to print paper-vs-measured comparisons. [None] marks entries
    the paper reports as "-" (algorithm failed or not run) or that are
    illegible in the source scan. *)

type row = {
  name : string;
  (* Table II *)
  iexact_area : int option;
  ihybrid_area2 : int option;  (** ihybrid columns of Table II *)
  igreedy_area2 : int option;
  onehot_cubes : int option;
  (* Table III *)
  best_ig_ih_area : int option;  (** best of ihybrid/igreedy *)
  kiss_area : int option;
  random_best_area : int option;
  random_avg_area : int option;
  (* Table IV *)
  iohybrid_area : int option;
  nova_best_area : int option;
  (* Table V *)
  cappuccino_area : int option;
  (* Table VII *)
  mustang_cubes : int option;
  nova_cubes : int option;
  mustang_lits : int option;
  nova_lits : int option;
  random_lits : int option;
}

(** [find name] is the published row for [name], if the machine appears
    in any of the paper's tables. *)
val find : string -> row option

(** Paper-reported grand totals used in the summary lines: best-of-NOVA,
    random-best and random-average areas over Table IV's 30 machines. *)
val total_nova_best_area : int
val total_random_best_area : int
val total_random_avg_area : int
