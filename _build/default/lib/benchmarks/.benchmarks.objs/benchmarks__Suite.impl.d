lib/benchmarks/suite.ml: Fsm Generator Handwritten Lazy List
