lib/benchmarks/handwritten.ml: Array Fsm List Printf
