lib/benchmarks/paper_data.ml: Hashtbl List Option
