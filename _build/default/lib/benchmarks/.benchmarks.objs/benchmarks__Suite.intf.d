lib/benchmarks/suite.mli: Fsm Lazy
