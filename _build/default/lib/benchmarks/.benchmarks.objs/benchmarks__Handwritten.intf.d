lib/benchmarks/handwritten.mli: Fsm
