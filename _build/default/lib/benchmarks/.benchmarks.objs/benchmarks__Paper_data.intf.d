lib/benchmarks/paper_data.mli:
