lib/benchmarks/generator.mli: Fsm
