lib/benchmarks/generator.ml: Array Fsm List Printf Random String
