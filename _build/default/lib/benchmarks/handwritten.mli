(** Hand-written semantic machines: benchmarks whose function is public
    knowledge are reconstructed from their meaning rather than generated
    randomly. *)

(** 3-bit serial shift register: 8 states (the register contents), the
    input bit shifts in, the evicted bit is the output. 1 input, 1
    output, 8 states, 16 rows — the paper's [shiftreg]. *)
val shiftreg : Fsm.t

(** Modulo-12 counter with enable: advances when the input is 1, asserts
    the output in the last state. 1 input, 1 output, 12 states, 24 rows —
    the paper's [modulo12]. *)
val modulo12 : Fsm.t

(** A 4-state, 2-sensor occupancy counter in the style of the classic
    [lion] benchmark: 2 inputs, 1 output, 4 states. *)
val lion : Fsm.t

(** An up/down/hold/reset counter over 6 states with limit outputs,
    matching [bbtas]'s statistics: 2 inputs, 2 outputs, 6 states,
    24 rows. *)
val bbtas : Fsm.t
