(** Deterministic synthetic FSM generator.

    The MCNC benchmark `.kiss2` files are not distributable inside this
    repository, so the machines of the paper's Table I are regenerated
    with matching statistics (#inputs, #outputs, #states, #rows). The
    generator builds transition tables in which disjoint input cubes map
    groups of present states to shared next states asserting shared
    outputs — the combinatorial structure (state clustering under
    multiple-valued minimization) that drives NOVA's input constraints,
    and chained next-state reuse that gives symbolic minimization output
    covering opportunities. *)

(** [generate ~name ~num_inputs ~num_outputs ~num_states ~num_rows ~seed]
    builds a deterministic machine with exactly the requested statistics
    (rows are sampled when the full cube/state product exceeds
    [num_rows]). *)
val generate :
  name:string ->
  num_inputs:int ->
  num_outputs:int ->
  num_states:int ->
  num_rows:int ->
  seed:int ->
  Fsm.t
