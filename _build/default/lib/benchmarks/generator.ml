let state_name s = Printf.sprintf "st%d" s

(* ceil (log2 n), at least 0 *)
let ceil_log2 n =
  let rec bits k acc = if acc >= n then k else bits (k + 1) (acc * 2) in
  bits 0 1

(* The generator models what real control FSMs look like: states share
   *behaviors*. A behavior tests a small subset of the inputs and reacts
   to each tested pattern by moving to a next state (mostly a "hub"
   drawn from a small pool) and asserting an output pattern drawn from a
   shared pool. States assigned the same behavior produce rows that
   multiple-valued minimization merges, which is exactly the state
   clustering NOVA's input constraints (and, through shared hub next
   states, symbolic minimization's covering relations) come from. *)
let generate ~name ~num_inputs ~num_outputs ~num_states ~num_rows ~seed =
  if num_states < 1 || num_rows < 1 then invalid_arg "Generator.generate";
  let rng = Random.State.make [| seed; num_inputs; num_outputs; num_states; num_rows |] in
  let ns = num_states in
  let avg_rows = max 1 (num_rows / ns) in
  let t_base = min (min 4 num_inputs) (ceil_log2 avg_rows) in
  let pick_distinct k bound =
    let rec draw acc =
      if List.length acc = k then acc
      else
        let v = Random.State.int rng bound in
        if List.mem v acc then draw acc else draw (v :: acc)
    in
    List.sort compare (draw [])
  in
  (* A pool of hub next states and a pool of output patterns, shared by
     all behaviors so that distinct states react identically often. *)
  let num_hubs = max 2 (ns / 4) in
  let hubs = Array.of_list (pick_distinct (min num_hubs ns) ns) in
  let num_out_patterns = max 2 (min 8 ((ns / 2) + 1)) in
  let out_pool =
    Array.init num_out_patterns (fun _ ->
        String.init num_outputs (fun _ ->
            match Random.State.int rng 20 with
            | 0 -> '-'
            | x when x < 14 -> '0'
            | _ -> '1'))
  in
  let num_behaviors = max 3 (2 * ns / 5) in
  let behaviors =
    Array.init num_behaviors (fun _ ->
        let t =
          let delta = Random.State.int rng 3 - 1 in
          max 0 (min (min 4 num_inputs) (t_base + delta))
        in
        let vars = if num_inputs = 0 then [] else pick_distinct t num_inputs in
        let reactions =
          Array.init (1 lsl t) (fun _ ->
              let dst =
                if Random.State.int rng 10 < 7 then hubs.(Random.State.int rng (Array.length hubs))
                else Random.State.int rng ns
              in
              (dst, out_pool.(Random.State.int rng num_out_patterns)))
        in
        (vars, reactions))
  in
  let behavior_of_state = Array.init ns (fun _ -> Random.State.int rng num_behaviors) in
  let rows_of_state s =
    let vars, reactions = behaviors.(behavior_of_state.(s)) in
    let t = List.length vars in
    List.init (1 lsl t) (fun v ->
        let input =
          String.init num_inputs (fun i ->
              match List.find_index (fun x -> x = i) vars with
              | Some pos -> if v land (1 lsl pos) <> 0 then '1' else '0'
              | None -> '-')
        in
        let dst, output = reactions.(v) in
        { Fsm.input; src = Some s; dst = Some dst; output })
  in
  let all_rows = List.concat_map rows_of_state (List.init ns (fun s -> s)) in
  (* Trim a deterministic random subset when over target; the dropped
     (input, state) pairs become don't-cares. *)
  let total = List.length all_rows in
  let transitions =
    if total <= num_rows then all_rows
    else begin
      let arr = Array.of_list all_rows in
      let keep = Array.make total true in
      let dropped = ref 0 in
      while !dropped < total - num_rows do
        let i = Random.State.int rng total in
        if keep.(i) then begin
          keep.(i) <- false;
          incr dropped
        end
      done;
      List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)
    end
  in
  Fsm.create ~name ~num_inputs ~num_outputs
    ~states:(Array.init ns state_name)
    ~transitions ~reset:0 ()
