type row = {
  name : string;
  iexact_area : int option;
  ihybrid_area2 : int option;
  igreedy_area2 : int option;
  onehot_cubes : int option;
  best_ig_ih_area : int option;
  kiss_area : int option;
  random_best_area : int option;
  random_avg_area : int option;
  iohybrid_area : int option;
  nova_best_area : int option;
  cappuccino_area : int option;
  mustang_cubes : int option;
  nova_cubes : int option;
  mustang_lits : int option;
  nova_lits : int option;
  random_lits : int option;
}

let blank name =
  {
    name;
    iexact_area = None;
    ihybrid_area2 = None;
    igreedy_area2 = None;
    onehot_cubes = None;
    best_ig_ih_area = None;
    kiss_area = None;
    random_best_area = None;
    random_avg_area = None;
    iohybrid_area = None;
    nova_best_area = None;
    cappuccino_area = None;
    mustang_cubes = None;
    nova_cubes = None;
    mustang_lits = None;
    nova_lits = None;
    random_lits = None;
  }

(* name, iexact, ihybrid(II), igreedy(II), 1hot cubes, best III, kiss,
   rnd best, rnd avg, iohybrid(IV), nova best(IV) *)
let core =
  [
    ("dk14", Some 550, Some 520, Some 520, Some 24, Some 520, Some 550, Some 720, Some 809, Some 500, Some 500);
    ("dk15", Some 320, Some 289, Some 340, Some 17, Some 289, Some 391, Some 357, Some 376, Some 289, Some 289);
    ("dk16", Some 1372, Some 1188, Some 1496, Some 55, Some 1188, Some 2035, Some 1826, Some 1994, Some 1254, Some 1188);
    ("dk17", Some 323, Some 272, Some 288, Some 20, Some 272, Some 361, Some 320, Some 368, Some 304, Some 272);
    ("dk27", Some 104, Some 104, Some 91, Some 10, Some 91, Some 117, Some 143, Some 143, Some 104, Some 91);
    ("dk512", Some 340, Some 306, Some 289, Some 21, Some 289, Some 414, Some 374, Some 418, Some 340, Some 289);
    ("ex1", Some 2320, Some 2200, Some 2392, Some 44, Some 2200, Some 2436, Some 3120, Some 3317, Some 2035, Some 2035);
    ("ex2", Some 372, Some 567, Some 651, Some 38, Some 567, Some 744, Some 798, Some 912, Some 735, Some 567);
    ("ex3", Some 357, Some 324, Some 306, Some 21, Some 306, Some 432, Some 342, Some 387, Some 324, Some 306);
    ("ex5", Some 315, Some 252, Some 306, Some 19, Some 252, Some 315, Some 324, Some 358, Some 270, Some 252);
    ("ex6", Some 690, Some 675, Some 675, Some 23, Some 675, Some 792, Some 810, Some 850, Some 675, Some 675);
    ("bbara", Some 600, Some 528, Some 550, Some 34, Some 528, Some 650, Some 616, Some 649, Some 572, Some 528);
    ("bbsse", Some 1053, Some 972, Some 957, Some 30, Some 957, Some 1053, Some 1089, Some 1144, Some 1008, Some 957);
    ("bbtas", Some 120, Some 120, Some 150, Some 16, Some 120, Some 195, Some 165, Some 215, Some 150, Some 120);
    ("beecount", Some 242, Some 228, Some 190, Some 12, Some 190, Some 242, Some 285, Some 293, Some 209, Some 190);
    ("cse", Some 1584, Some 1518, Some 1485, Some 55, Some 1485, Some 1756, Some 1947, Some 2087, Some 1485, Some 1485);
    ("donfile", Some 874, Some 560, Some 820, Some 24, Some 560, Some 984, Some 1200, Some 1360, Some 840, Some 560);
    ("iofsm", Some 448, Some 448, Some 448, Some 19, Some 448, Some 448, Some 560, Some 579, Some 420, Some 420);
    ("keyb", Some 1739, Some 1488, Some 1705, Some 77, Some 1488, Some 1880, Some 3069, Some 3416, Some 1488, Some 1488);
    ("mark1", Some 738, Some 684, Some 646, Some 19, Some 646, Some 779, Some 760, Some 782, Some 722, Some 646);
    ("physrec", Some 1419, Some 1419, Some 1462, Some 38, Some 1419, Some 1564, Some 1677, Some 1741, Some 1462, Some 1419);
    ("planet", Some 4437, Some 4437, Some 4386, Some 92, Some 4386, Some 4539, Some 4896, Some 5249, Some 4794, Some 4386);
    ("s1", Some 2960, Some 2960, Some 2997, Some 92, Some 2960, Some 2997, Some 3441, Some 3733, Some 2331, Some 2331);
    ("sand", Some 4361, Some 4462, Some 4554, Some 114, Some 4361, Some 4655, Some 4278, Some 4933, Some 4416, Some 4361);
    ("scf", None, Some 18492, Some 18733, Some 151, Some 18492, Some 18760, Some 19650, Some 21278, Some 17947, Some 17947);
    ("scud", Some 2698, Some 2059, Some 1984, Some 86, Some 1984, Some 2698, Some 2262, Some 2533, Some 1798, Some 1798);
    ("shiftreg", Some 48, Some 48, Some 96, Some 9, Some 48, Some 72, Some 132, Some 132, Some 48, Some 48);
    ("styr", Some 4094, Some 4042, Some 4171, Some 111, Some 4042, Some 4186, Some 5031, Some 5591, Some 4058, Some 4042);
    ("tbk", None, Some 4410, Some 5190, Some 173, Some 4410, None, Some 5040, Some 6114, Some 1710, Some 1710);
    ("train11", Some 180, Some 153, Some 187, Some 11, Some 153, Some 230, Some 221, Some 241, Some 170, Some 153);
  ]

(* Table V: iohybrid vs Cappuccino/Cream areas; a few entries are hard to
   read in the source scan and are reconstructed from the column total. *)
let cappuccino =
  [
    ("bbtas", 198); ("cse", 2205); ("lion", 66); ("lion9", 200); ("modulo12", 408);
    ("planet", 5607); ("s1", 2924); ("sand", 6206); ("shiftreg", 210); ("styr", 6592);
    ("tav", 231); ("train11", 230); ("dol", 136); ("dk14", 598); ("dk15", 341);
    ("dk16", 1961); ("dk17", 321); ("dk27", 120); ("dk512", 572);
  ]

(* Table VII: MUSTANG cubes, NOVA cubes, MUSTANG literals, NOVA literals,
   RANDOM literals. *)
let table7 =
  [
    ("dk14", 32, 26, 117, 98, 164);
    ("dk15", 19, 17, 69, 65, 73);
    ("dk16", 71, 52, 259, 246, 402);
    ("ex1", 55, 44, 280, 215, 313);
    ("ex2", 36, 27, 119, 96, 162);
    ("ex3", 19, 17, 71, 76, 83);
    ("bbara", 25, 24, 64, 61, 84);
    ("bbsse", 31, 29, 106, 132, 149);
    ("bbtas", 10, 8, 25, 21, 31);
    ("beecount", 12, 10, 45, 40, 59);
    ("cse", 48, 45, 206, 190, 274);
    ("donfile", 49, 28, 160, 88, 193);
    ("keyb", 58, 48, 167, 200, 256);
    ("mark1", 19, 17, 76, 86, 116);
    ("physrec", 37, 33, 159, 150, 178);
    ("planet", 97, 86, 544, 560, 576);
    ("s1", 69, 63, 183, 265, 444);
    ("sand", 108, 96, 535, 533, 462);
    ("scf", 148, 137, 791, 839, 890);
    ("scud", 83, 62, 286, 182, 222);
    ("shiftreg", 4, 4, 2, 0, 16);
    ("styr", 112, 94, 546, 511, 591);
    ("tbk", 136, 57, 547, 289, 625);
    ("train11", 10, 9, 37, 43, 44);
  ]

let rows =
  let base = Hashtbl.create 61 in
  List.iter
    (fun (name, iex, ihy, igr, oh, best, kiss, rb, ra, io, nova) ->
      Hashtbl.replace base name
        {
          (blank name) with
          iexact_area = iex;
          ihybrid_area2 = ihy;
          igreedy_area2 = igr;
          onehot_cubes = oh;
          best_ig_ih_area = best;
          kiss_area = kiss;
          random_best_area = rb;
          random_avg_area = ra;
          iohybrid_area = io;
          nova_best_area = nova;
        })
    core;
  List.iter
    (fun (name, area) ->
      let r = Option.value ~default:(blank name) (Hashtbl.find_opt base name) in
      Hashtbl.replace base name { r with cappuccino_area = Some area })
    cappuccino;
  List.iter
    (fun (name, mc, nc, ml, nl, rl) ->
      let r = Option.value ~default:(blank name) (Hashtbl.find_opt base name) in
      Hashtbl.replace base name
        {
          r with
          mustang_cubes = Some mc;
          nova_cubes = Some nc;
          mustang_lits = Some ml;
          nova_lits = Some nl;
          random_lits = Some rl;
        })
    table7;
  base

let find name = Hashtbl.find_opt rows name

let total_nova_best_area = 51053
let total_random_best_area = 65453
let total_random_avg_area = 72002
