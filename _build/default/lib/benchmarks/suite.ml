type entry = { name : string; machine : Fsm.t Lazy.t; heavy : bool }

let gen ?(heavy = false) name i o s rows seed =
  {
    name;
    machine =
      lazy
        (Generator.generate ~name ~num_inputs:i ~num_outputs:o ~num_states:s ~num_rows:rows
           ~seed);
    heavy;
  }

let hand name m = { name; machine = lazy m; heavy = false }

(* Statistics matched to the paper's Table I; tbk is downscaled from 1569
   to 512 rows to keep the two-level minimizations tractable (see
   DESIGN.md). *)
let all =
  [
    hand "lion" Handwritten.lion;
    gen "dk15" 3 5 4 32 1015;
    gen "tav" 4 4 4 49 1033;
    hand "bbtas" Handwritten.bbtas;
    gen "beecount" 3 4 7 28 1003;
    gen "dk14" 3 5 7 56 3014;
    gen "dk27" 1 2 7 14 1017;
    gen "dk17" 2 3 8 32 1016;
    gen "dol" 2 1 8 20 1034;
    gen "ex6" 5 8 8 34 1026;
    gen "scud" 7 6 8 85 1030;
    hand "shiftreg" Handwritten.shiftreg;
    gen "ex5" 2 2 9 32 1025;
    gen "lion9" 2 1 9 25 1035;
    gen "bbara" 4 2 10 60 1001;
    gen "ex3" 2 2 10 36 1024;
    gen "iofsm" 2 4 10 30 1027;
    gen "physrec" 5 7 11 40 1029;
    gen "train11" 2 1 11 25 1032;
    hand "modulo12" Handwritten.modulo12;
    gen "dk512" 1 3 15 30 1018;
    gen "mark1" 5 16 15 22 1028;
    gen "bbsse" 7 7 16 56 1002;
    gen "cse" 7 7 16 91 1005;
    gen "ex2" 2 2 19 72 1023;
    gen "keyb" 7 2 19 170 1007;
    gen "ex1" 9 19 20 138 1022;
    gen "s1" 8 6 20 107 1008;
    gen "donfile" 2 1 24 96 1019;
    gen "dk16" 2 3 27 108 1013;
    gen "styr" 9 10 30 166 1011;
    gen "sand" 11 9 32 184 1009;
    gen ~heavy:true "tbk" 6 3 32 512 1012;
    gen ~heavy:true "planet" 7 19 48 115 1010;
    gen ~heavy:true "scf" 27 56 121 166 1031;
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> Lazy.force e.machine
  | None -> raise Not_found

let table1 =
  [
    "dk15"; "bbtas"; "beecount"; "dk14"; "dk27"; "dk17"; "ex6"; "scud"; "shiftreg"; "ex5";
    "bbara"; "ex3"; "iofsm"; "physrec"; "train11"; "dk512"; "mark1"; "bbsse"; "cse"; "ex2";
    "keyb"; "ex1"; "s1"; "donfile"; "dk16"; "styr"; "sand"; "tbk"; "planet"; "scf";
  ]

let table5 =
  [
    "bbtas"; "cse"; "lion"; "lion9"; "modulo12"; "planet"; "s1"; "sand"; "shiftreg"; "styr";
    "tav"; "train11"; "dol"; "dk14"; "dk15"; "dk16"; "dk17"; "dk27"; "dk512";
  ]

let table7 =
  [
    "dk14"; "dk15"; "dk16"; "ex1"; "ex2"; "ex3"; "bbara"; "bbsse"; "bbtas"; "beecount";
    "cse"; "donfile"; "keyb"; "mark1"; "physrec"; "planet"; "s1"; "sand"; "scf"; "scud";
    "shiftreg"; "styr"; "tbk"; "train11";
  ]
