(** The benchmark suite: the 30 machines of the paper's Table I plus the
    extra machines of Table V, with matching statistics. Machines whose
    function is public knowledge are hand-written ({!Handwritten}); the
    rest are regenerated deterministically ({!Generator}) — see DESIGN.md
    for the substitution rationale. *)

type entry = {
  name : string;
  machine : Fsm.t Lazy.t;
  heavy : bool;
      (** machines whose minimizations are expensive (scf, tbk, planet);
          harness drivers may skip them in quick runs *)
}

(** Every machine, in the paper's increasing-number-of-states order. *)
val all : entry list

(** [find name] is the machine called [name]. Raises [Not_found]. *)
val find : string -> Fsm.t

(** The 30 names of Table I, ordered by increasing number of states (the
    x-axis order of the paper's Tables VIII-X plots). *)
val table1 : string list

(** The 19 names of Table V (comparison with Cappuccino/Cream). *)
val table5 : string list

(** The 24 names of Table VII (comparison with MUSTANG). *)
val table7 : string list
