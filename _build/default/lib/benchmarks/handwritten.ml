let state_name s = Printf.sprintf "st%d" s

let shiftreg =
  (* State = register contents b2 b1 b0; shifting in i evicts b2. *)
  let transitions =
    List.concat_map
      (fun s ->
        List.map
          (fun i ->
            let dst = ((s lsl 1) land 0b111) lor i in
            let out = (s lsr 2) land 1 in
            {
              Fsm.input = (if i = 1 then "1" else "0");
              src = Some s;
              dst = Some dst;
              output = (if out = 1 then "1" else "0");
            })
          [ 0; 1 ])
      (List.init 8 (fun s -> s))
  in
  Fsm.create ~name:"shiftreg" ~num_inputs:1 ~num_outputs:1
    ~states:(Array.init 8 state_name) ~transitions ~reset:0 ()

let modulo12 =
  let transitions =
    List.concat_map
      (fun s ->
        List.map
          (fun e ->
            let dst = if e = 1 then (s + 1) mod 12 else s in
            let out = if s = 11 && e = 1 then "1" else "0" in
            { Fsm.input = (if e = 1 then "1" else "0"); src = Some s; dst = Some dst; output = out })
          [ 0; 1 ])
      (List.init 12 (fun s -> s))
  in
  Fsm.create ~name:"modulo12" ~num_inputs:1 ~num_outputs:1
    ~states:(Array.init 12 state_name) ~transitions ~reset:0 ()

let lion =
  (* Two sensors; the state tracks how far an object has advanced; the
     output asserts while the object is inside. Sensor patterns that can
     occur drive the transitions; impossible patterns are unspecified. *)
  let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output } in
  let transitions =
    [
      t "00" 0 0 "0";
      t "10" 0 1 "1";
      t "10" 1 1 "1";
      t "11" 1 2 "1";
      t "01" 2 2 "1";
      t "11" 2 1 "1";
      t "00" 2 3 "1";
      t "00" 3 0 "0";
      t "01" 3 3 "1";
    ]
  in
  Fsm.create ~name:"lion" ~num_inputs:2 ~num_outputs:1
    ~states:(Array.init 4 state_name) ~transitions ~reset:0 ()

let bbtas =
  (* Input 00: hold; 01: increment; 10: decrement; 11: reset.
     Outputs: (at top, at bottom). *)
  let transitions =
    List.concat_map
      (fun s ->
        List.map
          (fun (pattern, dst) ->
            let out = Printf.sprintf "%d%d" (if s = 5 then 1 else 0) (if s = 0 then 1 else 0) in
            { Fsm.input = pattern; src = Some s; dst = Some dst; output = out })
          [
            ("00", s);
            ("01", min 5 (s + 1));
            ("10", max 0 (s - 1));
            ("11", 0);
          ])
      (List.init 6 (fun s -> s))
  in
  Fsm.create ~name:"bbtas" ~num_inputs:2 ~num_outputs:2
    ~states:(Array.init 6 state_name) ~transitions ~reset:0 ()
