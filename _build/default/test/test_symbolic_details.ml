(* Fine-grained tests of the symbolic cover construction: exactly which
   cubes land in the on-set and the don't-care set. *)

open Logic

let check = Alcotest.(check bool)

(* m: 1 input, 2 outputs, 2 states.
   row1: 0 a b 1-   (output 1 asserted, output 2 unknown)
   row2: 1 a a 00
   (state b entirely unspecified)                                     *)
let m =
  Fsm.create ~name:"detail" ~num_inputs:1 ~num_outputs:2
    ~states:[| "a"; "b" |]
    ~transitions:
      [
        { Fsm.input = "0"; src = Some 0; dst = Some 1; output = "1-" };
        { Fsm.input = "1"; src = Some 0; dst = Some 0; output = "00" };
      ]
    ()

let sym = Symbolic.of_fsm m
let dom = sym.Symbolic.dom

(* Domain: input var (2), state var (2), output var (2 next + 2 outs). *)
let out_off = Domain.offset dom sym.Symbolic.output_var

let minterm ~input ~state ~col =
  let c = Cube.full dom in
  let c = Cube.set_var dom c 0 [ input ] in
  let c = Cube.set_var dom c sym.Symbolic.state_var [ state ] in
  let c' = Bitvec.copy c in
  Bitvec.clear_range c' out_off 4;
  Bitvec.set c' (out_off + col);
  c'

let covered cover pt = Cover.covers_cube cover pt

let test_on_set_columns () =
  (* Row 1 asserts next state b (col 1) and output 1 (col 2). *)
  check "next-state column asserted" true (covered sym.Symbolic.on (minterm ~input:0 ~state:0 ~col:1));
  check "output-1 column asserted" true (covered sym.Symbolic.on (minterm ~input:0 ~state:0 ~col:2));
  (* Row 2 asserts next state a (col 0) and no outputs. *)
  check "row2 next-state" true (covered sym.Symbolic.on (minterm ~input:1 ~state:0 ~col:0));
  check "row2 outputs off" false (covered sym.Symbolic.on (minterm ~input:1 ~state:0 ~col:2));
  check "row2 output2 off" false (covered sym.Symbolic.on (minterm ~input:1 ~state:0 ~col:3))

let test_dc_set_columns () =
  (* Output 2 of row 1 is '-'. *)
  check "dash output in dc" true (covered sym.Symbolic.dc (minterm ~input:0 ~state:0 ~col:3));
  check "dash output not in on" false (covered sym.Symbolic.on (minterm ~input:0 ~state:0 ~col:3));
  (* State b is never specified: everything about it is dc. *)
  List.iter
    (fun col ->
      check
        (Printf.sprintf "state b col %d in dc" col)
        true
        (covered sym.Symbolic.dc (minterm ~input:0 ~state:1 ~col)))
    [ 0; 1; 2; 3 ];
  check "state b not in on" false (covered sym.Symbolic.on (minterm ~input:0 ~state:1 ~col:0))

let test_specified_behaviour_not_dc () =
  (* Row 1's asserted next state must not be a don't care. *)
  check "row1 next not dc" false (covered sym.Symbolic.dc (minterm ~input:0 ~state:0 ~col:1));
  check "row2 next not dc" false (covered sym.Symbolic.dc (minterm ~input:1 ~state:0 ~col:0))

let test_constraint_extraction_none () =
  (* With 2 states there is no non-trivial group. *)
  Alcotest.(check int) "no constraints" 0 (List.length (Constraints.of_symbolic sym))

(* A 4-state machine engineered so exactly one group appears. *)
let m4 =
  let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output } in
  Fsm.create ~name:"grp" ~num_inputs:1 ~num_outputs:1
    ~states:[| "a"; "b"; "c"; "d" |]
    ~transitions:
      [
        (* a, b, c behave identically under 0 *)
        t "0" 0 3 "1"; t "0" 1 3 "1"; t "0" 2 3 "1";
        (* but differ under 1 *)
        t "1" 0 0 "0"; t "1" 1 2 "0"; t "1" 2 1 "1";
        t "0" 3 0 "0"; t "1" 3 3 "0";
      ]
    ()

let test_group_found () =
  let ics = Constraints.of_symbolic (Symbolic.of_fsm m4) in
  check "found {a,b,c}" true
    (List.exists
       (fun (ic : Constraints.input_constraint) ->
         Bitvec.equal ic.Constraints.states (Bitvec.of_string "1110"))
       ics)

let suite =
  [
    Alcotest.test_case "on-set columns" `Quick test_on_set_columns;
    Alcotest.test_case "dc-set columns" `Quick test_dc_set_columns;
    Alcotest.test_case "specified behaviour not dc" `Quick test_specified_behaviour_not_dc;
    Alcotest.test_case "no trivial constraints" `Quick test_constraint_extraction_none;
    Alcotest.test_case "group extraction" `Quick test_group_found;
  ]
