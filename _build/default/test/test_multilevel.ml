(* Tests for the multilevel (MIS-II stand-in) substrate. *)

let check = Alcotest.(check bool)

(* Literal ids: variable v -> 2v, complement -> 2v+1. *)
let a = 0
let a' = 1
let b = 2
let c = 4
let d = 6
let e = 8

let sort = List.map (List.sort compare)

let test_divide_textbook () =
  (* F = abc + abd + e ; divide by D = c + d: Q = ab, R = e. *)
  let f = sort [ [ a; b; c ]; [ a; b; d ]; [ e ] ] in
  let q, r = Multilevel.divide f (sort [ [ c ]; [ d ] ]) in
  Alcotest.(check (list (list int))) "quotient" [ [ a; b ] ] q;
  Alcotest.(check (list (list int))) "remainder" [ [ e ] ] r

let test_divide_single_cube () =
  (* F = abc + abd + bd ; divide by cube ab: Q = c + d, R = bd *)
  let f = sort [ [ a; b; c ]; [ a; b; d ]; [ b; d ] ] in
  let q, r = Multilevel.divide f [ [ a; b ] ] in
  Alcotest.(check (list (list int))) "quotient" (sort [ [ c ]; [ d ] ]) (sort q);
  Alcotest.(check (list (list int))) "remainder" [ [ b; d ] ] r

let test_divide_no_quotient () =
  let f = sort [ [ a; b ] ] in
  let q, r = Multilevel.divide f [ [ c ] ] in
  check "empty quotient" true (q = []);
  Alcotest.(check (list (list int))) "remainder is f" f r

let test_kernels_textbook () =
  (* F = adf + aef + bdf + bef + cdf + cef + g (classic example):
     kernel (a+b+c) with co-kernel df, ef; kernel (d+e) with co-kernels
     af, bf, cf; kernel of the whole thing... just check the two famous
     ones appear. *)
  let f_var = 10 and g_var = 12 in
  let adf = [ a; d; f_var ] and aef = [ a; e; f_var ] in
  let bdf = [ b; d; f_var ] and bef = [ b; e; f_var ] in
  let cdf = [ c; d; f_var ] and cef = [ c; e; f_var ] in
  let f = sort [ adf; aef; bdf; bef; cdf; cef; [ g_var ] ] in
  let ks = List.map fst (Multilevel.kernels f) in
  let mem k = List.exists (fun k' -> sort k' = sort k) ks in
  check "kernel d+e" true (mem [ [ d ]; [ e ] ]);
  check "kernel a+b+c" true (mem [ [ a ]; [ b ]; [ c ] ])

let test_factored_literals () =
  (* F = ab + ac: factored a(b+c) = 3 literals; SOP = 4. *)
  let products = sort [ [ a; b ]; [ a; c ] ] in
  let net = { Multilevel.nodes = [ { Multilevel.name = "f"; products } ]; next_var = 5 } in
  Alcotest.(check int) "sop" 4 (Multilevel.sop_literals net);
  Alcotest.(check int) "factored" 3 (Multilevel.factored_literals net);
  (* single product *)
  let net1 = { Multilevel.nodes = [ { Multilevel.name = "f"; products = [ [ a; b; c ] ] } ]; next_var = 5 } in
  Alcotest.(check int) "cube" 3 (Multilevel.factored_literals net1);
  (* constant 1: empty product *)
  let net2 = { Multilevel.nodes = [ { Multilevel.name = "f"; products = [ [] ] } ]; next_var = 5 } in
  Alcotest.(check int) "constant" 0 (Multilevel.factored_literals net2)

(* Semantics of a network: evaluate with an assignment, resolving
   extracted nodes recursively by name/variable index. *)
let eval_network (net : Multilevel.network) ~num_inputs assignment =
  let node_of_var = Hashtbl.create 7 in
  List.iter
    (fun (n : Multilevel.node) ->
      if String.length n.Multilevel.name > 1 && n.Multilevel.name.[0] = 'k' then
        Hashtbl.replace node_of_var
          (int_of_string (String.sub n.Multilevel.name 1 (String.length n.Multilevel.name - 1)))
          n)
    net.Multilevel.nodes;
  let rec var_value v =
    if v < num_inputs then assignment.(v)
    else
      match Hashtbl.find_opt node_of_var v with
      | Some n -> eval_node n
      | None -> false
  and lit_value l =
    let v = l / 2 in
    if l mod 2 = 0 then var_value v else not (var_value v)
  and eval_node (n : Multilevel.node) =
    List.exists (fun p -> List.for_all lit_value p) n.Multilevel.products
  in
  List.filter_map
    (fun (n : Multilevel.node) ->
      if String.length n.Multilevel.name > 0 && n.Multilevel.name.[0] = 'o' then
        Some (eval_node n)
      else None)
    net.Multilevel.nodes

let gen_network =
  QCheck.make
    ~print:(fun (seed, nv) -> Printf.sprintf "seed=%d nv=%d" seed nv)
    QCheck.Gen.(pair (int_bound 100_000) (int_range 3 6))

let random_network seed nv =
  let rng = Random.State.make [| seed |] in
  let gen_product () =
    List.init nv (fun v ->
        match Random.State.int rng 4 with 0 -> [ 2 * v ] | 1 -> [ (2 * v) + 1 ] | _ -> [])
    |> List.concat
  in
  let gen_node i =
    {
      Multilevel.name = Printf.sprintf "o%d" i;
      products = List.init (1 + Random.State.int rng 6) (fun _ -> gen_product ());
    }
  in
  { Multilevel.nodes = List.init 3 gen_node; next_var = nv }

let prop_optimize_preserves_function =
  QCheck.Test.make ~name:"optimize preserves network semantics" ~count:100 gen_network
    (fun (seed, nv) ->
      let net = random_network seed nv in
      let opt = Multilevel.optimize net in
      let ok = ref true in
      for v = 0 to (1 lsl nv) - 1 do
        let assignment = Array.init nv (fun i -> v land (1 lsl i) <> 0) in
        if eval_network net ~num_inputs:nv assignment
           <> eval_network opt ~num_inputs:nv assignment
        then ok := false
      done;
      !ok)

let prop_optimize_never_worse =
  QCheck.Test.make ~name:"optimize never increases factored literals" ~count:100 gen_network
    (fun (seed, nv) ->
      let net = random_network seed nv in
      Multilevel.factored_literals (Multilevel.optimize net)
      <= Multilevel.factored_literals net)

let prop_factored_le_sop =
  QCheck.Test.make ~name:"factored literals <= SOP literals" ~count:100 gen_network
    (fun (seed, nv) ->
      let net = random_network seed nv in
      Multilevel.factored_literals net <= Multilevel.sop_literals net)

let test_of_cover () =
  (* Build a tiny cover: 2 binary vars + 2-part output. *)
  let open Logic in
  let dom = Domain.create [| 2; 2; 2 |] in
  let cube fields =
    List.fold_left
      (fun c (v, parts) -> if parts = [] then c else Cube.set_var dom c v parts)
      (Cube.full dom)
      (List.mapi (fun v parts -> (v, parts)) fields)
  in
  (* f0 = x0 x1', f1 = x0' *)
  let cover =
    Cover.make dom [ cube [ [ 1 ]; [ 0 ]; [ 0 ] ]; cube [ [ 0 ]; []; [ 1 ] ] ]
  in
  let net = Multilevel.of_cover cover ~num_binary_vars:2 in
  Alcotest.(check int) "two nodes" 2 (List.length net.Multilevel.nodes);
  Alcotest.(check int) "literals" 3 (Multilevel.sop_literals net)

let suite =
  [
    Alcotest.test_case "divide textbook" `Quick test_divide_textbook;
    Alcotest.test_case "divide by cube" `Quick test_divide_single_cube;
    Alcotest.test_case "divide no quotient" `Quick test_divide_no_quotient;
    Alcotest.test_case "kernels textbook" `Quick test_kernels_textbook;
    Alcotest.test_case "factored literals" `Quick test_factored_literals;
    Alcotest.test_case "of_cover" `Quick test_of_cover;
    QCheck_alcotest.to_alcotest prop_optimize_preserves_function;
    QCheck_alcotest.to_alcotest prop_optimize_never_worse;
    QCheck_alcotest.to_alcotest prop_factored_le_sop;
  ]
