(* Tests for symbolic minimization (Section 6.1). *)

let check = Alcotest.(check bool)

let run name = Symbmin.run (Symbolic.of_fsm (Benchmarks.Suite.find name))

let test_acyclic () =
  List.iter
    (fun name ->
      let sm = run name in
      let n = Symbolic.num_states sm.Symbmin.symbolic in
      (* Kahn's check: the covering edges must form a DAG. *)
      let adj = Array.make n [] in
      List.iter (fun (u, v, _) -> adj.(u) <- v :: adj.(u)) sm.Symbmin.graph;
      let mark = Array.make n 0 in
      let cyclic = ref false in
      let rec dfs s =
        if mark.(s) = 1 then cyclic := true
        else if mark.(s) = 0 then begin
          mark.(s) <- 1;
          List.iter dfs adj.(s);
          mark.(s) <- 2
        end
      in
      for s = 0 to n - 1 do
        dfs s
      done;
      check (name ^ " graph acyclic") false !cyclic)
    [ "lion"; "shiftreg"; "modulo12"; "bbtas"; "dk15" ]

let test_upper_bound_improves () =
  (* The final symbolic cover must be no bigger than the disjoint
     minimization it starts from. *)
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      let sym = Symbolic.of_fsm m in
      let disjoint = Logic.Cover.size (Symbolic.minimize sym) in
      let sm = Symbmin.run sym in
      check
        (Printf.sprintf "%s: %d <= %d" name (Symbmin.upper_bound sm) disjoint)
        true
        (Symbmin.upper_bound sm <= disjoint))
    [ "lion"; "shiftreg"; "modulo12"; "bbtas"; "dk15"; "dk27" ]

let test_weights_positive () =
  List.iter
    (fun name ->
      let sm = run name in
      check (name ^ " edge weights positive") true
        (List.for_all (fun (_, _, w) -> w > 0) sm.Symbmin.graph);
      check (name ^ " cluster weights positive") true
        (List.for_all
           (fun (cl : Constraints.oc_cluster) -> cl.Constraints.oc_weight > 0)
           sm.Symbmin.problem.Iohybrid.clusters))
    [ "modulo12"; "lion"; "dk17" ]

let test_cluster_structure () =
  List.iter
    (fun name ->
      let sm = run name in
      let n = Symbolic.num_states sm.Symbmin.symbolic in
      List.iter
        (fun (cl : Constraints.oc_cluster) ->
          check "cluster edges point into next_state" true
            (List.for_all
               (fun (oc : Constraints.output_constraint) ->
                 oc.Constraints.covered = cl.Constraints.next_state)
               cl.Constraints.edges);
          check "edge endpoints in range" true
            (List.for_all
               (fun (oc : Constraints.output_constraint) ->
                 oc.Constraints.covering >= 0 && oc.Constraints.covering < n
                 && oc.Constraints.covered >= 0 && oc.Constraints.covered < n)
               cl.Constraints.edges))
        sm.Symbmin.problem.Iohybrid.clusters)
    [ "modulo12"; "lion"; "dk17"; "bbtas" ]

let test_companion_groups_nontrivial () =
  List.iter
    (fun name ->
      let sm = run name in
      let n = Symbolic.num_states sm.Symbmin.symbolic in
      List.iter
        (fun (ic : Constraints.input_constraint) ->
          let card = Bitvec.cardinal ic.Constraints.states in
          check "group cardinality" true (card >= 2 && card < n);
          check "positive weight" true (ic.Constraints.weight > 0))
        sm.Symbmin.problem.Iohybrid.ics)
    [ "modulo12"; "dk17"; "bbtas"; "dk15" ]

let test_modulo12_finds_covering () =
  (* A counter's next-state functions overlap heavily: symbolic
     minimization should find covering opportunities. *)
  let sm = run "modulo12" in
  check "some covering edges" true (List.length sm.Symbmin.graph > 0)

let suite =
  [
    Alcotest.test_case "covering graph acyclic" `Quick test_acyclic;
    Alcotest.test_case "upper bound no worse than disjoint" `Quick test_upper_bound_improves;
    Alcotest.test_case "weights positive" `Quick test_weights_positive;
    Alcotest.test_case "cluster structure" `Quick test_cluster_structure;
    Alcotest.test_case "companion groups nontrivial" `Quick test_companion_groups_nontrivial;
    Alcotest.test_case "modulo12 finds covering edges" `Quick test_modulo12_finds_covering;
  ]
