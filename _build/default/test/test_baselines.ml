(* Tests for the KISS and MUSTANG baselines. *)

let check = Alcotest.(check bool)

let test_kiss_satisfies_everything () =
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      let ics = Constraints.of_symbolic (Symbolic.of_fsm m) in
      let e = Baselines.kiss_encode ~num_states:(Fsm.num_states ~m) ics in
      check (name ^ ": all input constraints satisfied") true
        (List.for_all
           (fun (ic : Constraints.input_constraint) -> Constraints.satisfied e ic.Constraints.states)
           ics))
    [ "lion"; "shiftreg"; "bbtas"; "dk15"; "dk27"; "beecount" ]

let prop_kiss_random_instances =
  QCheck.Test.make ~name:"kiss satisfies arbitrary constraint sets" ~count:50
    QCheck.(pair (int_bound 10_000) (int_range 4 8))
    (fun (seed, n) ->
      let groups =
        List.init 6 (fun i ->
            let g = Bitvec.create n in
            let r = Random.State.make [| seed; i |] in
            for s = 0 to n - 1 do
              if Random.State.int r 3 = 0 then Bitvec.set g s
            done;
            g)
        |> List.filter (fun g -> Bitvec.cardinal g >= 2 && Bitvec.cardinal g < n)
      in
      let ics = List.map (fun g -> { Constraints.states = g; weight = 1 }) groups in
      let e = Baselines.kiss_encode ~num_states:n ics in
      List.for_all (fun g -> Constraints.satisfied e g) groups)

let test_mustang_attractions_symmetric () =
  let m = Benchmarks.Suite.find "dk15" in
  List.iter
    (fun flavor ->
      let w = Baselines.mustang_attractions m ~flavor ~include_outputs:true in
      let n = Array.length w in
      for i = 0 to n - 1 do
        check "diagonal zero" true (w.(i).(i) = 0);
        for j = 0 to n - 1 do
          check "symmetric" true (w.(i).(j) = w.(j).(i))
        done
      done)
    [ Baselines.Fanout; Baselines.Fanin ]

let test_mustang_valid_encodings () =
  List.iter
    (fun name ->
      let m = Benchmarks.Suite.find name in
      let n = Fsm.num_states ~m in
      let nbits = Fsm.min_code_length m in
      List.iter
        (fun (flavor, t) ->
          let e = Baselines.mustang_encode m ~flavor ~include_outputs:t ~nbits in
          check
            (Printf.sprintf "%s distinct codes" name)
            true
            (List.length (Encoding.used_codes e) = n);
          (* determinism *)
          let e2 = Baselines.mustang_encode m ~flavor ~include_outputs:t ~nbits in
          check "deterministic" true (e.Encoding.codes = e2.Encoding.codes))
        [ (Baselines.Fanout, true); (Baselines.Fanout, false); (Baselines.Fanin, true) ])
    [ "lion"; "dk15"; "bbtas" ]

let test_mustang_too_few_bits () =
  let m = Benchmarks.Suite.find "bbtas" in
  Alcotest.check_raises "code length too small"
    (Invalid_argument "Baselines.mustang_encode: code length too small") (fun () ->
      ignore (Baselines.mustang_encode m ~flavor:Baselines.Fanout ~include_outputs:true ~nbits:2))

let test_mustang_attracts_shared_behaviour () =
  (* Two states with identical next state under the same input must
     attract each other more than unrelated states do. *)
  let t input src dst output = { Fsm.input; src = Some src; dst = Some dst; output } in
  let m =
    Fsm.create ~name:"attract" ~num_inputs:1 ~num_outputs:1
      ~states:[| "a"; "b"; "c"; "d" |]
      ~transitions:
        [
          t "0" 0 3 "1"; t "0" 1 3 "1";  (* a and b behave identically *)
          t "0" 2 0 "0"; t "1" 0 0 "0"; t "1" 1 2 "0"; t "1" 2 1 "1";
          t "0" 3 3 "0"; t "1" 3 0 "0";
        ]
      ()
  in
  let w = Baselines.mustang_attractions m ~flavor:Baselines.Fanout ~include_outputs:true in
  check "a-b attraction dominates a-c" true (w.(0).(1) > w.(0).(2))

let suite =
  [
    Alcotest.test_case "kiss satisfies benchmark constraints" `Slow test_kiss_satisfies_everything;
    QCheck_alcotest.to_alcotest prop_kiss_random_instances;
    Alcotest.test_case "mustang attractions symmetric" `Quick test_mustang_attractions_symmetric;
    Alcotest.test_case "mustang valid encodings" `Quick test_mustang_valid_encodings;
    Alcotest.test_case "mustang too few bits" `Quick test_mustang_too_few_bits;
    Alcotest.test_case "mustang attraction semantics" `Quick test_mustang_attracts_shared_behaviour;
  ]
