(* Round-trip and algebraic-law tests across the whole suite. *)

open Logic

let check = Alcotest.(check bool)

let test_kiss_roundtrip_all_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Suite.entry) ->
      let m = Lazy.force e.Benchmarks.Suite.machine in
      let text = Kiss.to_string m in
      let m' = Kiss.parse ~name:e.Benchmarks.Suite.name text in
      Alcotest.(check string)
        (e.Benchmarks.Suite.name ^ " roundtrip")
        text (Kiss.to_string m'))
    Benchmarks.Suite.all

let gen_cover_pair =
  QCheck.make
    ~print:(fun (sizes, s1, s2) ->
      Printf.sprintf "sizes=[%s] %d %d" (String.concat ";" (List.map string_of_int sizes)) s1 s2)
    QCheck.Gen.(
      list_size (int_range 1 3) (int_range 2 3) >>= fun sizes ->
      int_bound 100_000 >>= fun s1 ->
      int_bound 100_000 >>= fun s2 -> return (sizes, s1, s2))

let build sizes seed =
  let dom = Domain.create (Array.of_list sizes) in
  let rng = Random.State.make [| seed |] in
  let cube () =
    List.fold_left
      (fun c v ->
        let sz = Domain.size dom v in
        let parts = List.filter (fun _ -> Random.State.bool rng) (List.init sz (fun p -> p)) in
        let parts = if parts = [] then [ Random.State.int rng sz ] else parts in
        Cube.set_var dom c v parts)
      (Cube.full dom)
      (List.init (Domain.num_vars dom) (fun v -> v))
  in
  (dom, Cover.make dom (List.init (Random.State.int rng 5) (fun _ -> cube ())))

let prop_de_morgan_covers =
  QCheck.Test.make ~name:"cover De Morgan: ¬(F∪G) ≡ ¬F∩¬G" ~count:100 gen_cover_pair
    (fun (sizes, s1, s2) ->
      let dom, f = build sizes s1 in
      let _, g = build sizes s2 in
      ignore dom;
      let lhs = Cover.complement (Cover.union f g) in
      let rhs = Cover.intersect (Cover.complement f) (Cover.complement g) in
      Cover.equivalent lhs rhs)

let prop_intersect_semantics =
  QCheck.Test.make ~name:"intersect is conjunction" ~count:100 gen_cover_pair
    (fun (sizes, s1, s2) ->
      let _, f = build sizes s1 in
      let _, g = build sizes s2 in
      let i = Cover.intersect f g in
      Cover.covers f i && Cover.covers g i
      &&
      (* every minterm in both is in the intersection: check via
         complement: f ∩ g ∩ ¬i must be empty *)
      Cover.size (Cover.intersect (Cover.intersect f g) (Cover.complement i)) = 0)

let prop_union_is_disjunction =
  QCheck.Test.make ~name:"union covers both operands" ~count:100 gen_cover_pair
    (fun (sizes, s1, s2) ->
      let _, f = build sizes s1 in
      let _, g = build sizes s2 in
      let u = Cover.union f g in
      Cover.covers u f && Cover.covers u g && Cover.covers (Cover.union f g) u)

let test_encoding_wide () =
  (* 60-bit codes are the supported ceiling. *)
  let e = Encoding.make ~nbits:60 [| 0; 1 lsl 59 |] in
  Alcotest.(check int) "60 bits" 60 e.Encoding.nbits;
  Alcotest.(check string) "msb renders" ("1" ^ String.make 59 '0') (Encoding.code_string e 1);
  Alcotest.check_raises "61 bits rejected" (Invalid_argument "Encoding.make: bad code length")
    (fun () -> ignore (Encoding.make ~nbits:64 [| 0 |]))

let test_face_dimension_limits () =
  check "62 dims ok" true (Face.level 62 (Face.full 62) = 62);
  Alcotest.check_raises "63 dims rejected" (Invalid_argument "Face: dimension must be within 0..62")
    (fun () -> ignore (Face.full 63))

let suite =
  [
    Alcotest.test_case "kiss roundtrip over the whole suite" `Slow test_kiss_roundtrip_all_benchmarks;
    QCheck_alcotest.to_alcotest prop_de_morgan_covers;
    QCheck_alcotest.to_alcotest prop_intersect_semantics;
    QCheck_alcotest.to_alcotest prop_union_is_disjunction;
    Alcotest.test_case "wide encodings" `Quick test_encoding_wide;
    Alcotest.test_case "face dimension limits" `Quick test_face_dimension_limits;
  ]
