(* Tests for the face algebra, input poset and embedding engine against
   the paper's worked examples. *)

let check = Alcotest.(check bool)

(* --- Face algebra ------------------------------------------------------ *)

let face k s =
  (* parse e.g. "x0x1": dimension 0 leftmost *)
  let mask = ref 0 and bits = ref 0 in
  String.iteri
    (fun d c ->
      match c with
      | 'x' -> ()
      | '0' -> mask := !mask lor (1 lsl d)
      | '1' ->
          mask := !mask lor (1 lsl d);
          bits := !bits lor (1 lsl d)
      | _ -> invalid_arg "face")
    s;
  ignore k;
  Face.make (String.length s) ~mask:!mask ~bits:!bits

let test_face_basics () =
  let f = face 4 "x0x1" in
  Alcotest.(check int) "level" 2 (Face.level 4 f);
  Alcotest.(check int) "cardinality" 4 (Face.cardinality 4 f);
  Alcotest.(check string) "roundtrip" "x0x1" (Face.to_string 4 f);
  check "contains vertex 1001" true (Face.contains_code f 0b1001);
  (* dimension 0 is bit 0: "x0x1" means d1=0, d3=1 *)
  check "contains code with d1=0,d3=1" true (Face.contains_code f (1 lsl 3));
  check "excludes d1=1" false (Face.contains_code f (1 lsl 1))

let test_face_inter () =
  let a = face 3 "x0x" and b = face 3 "10x" in
  (match Face.inter a b with
  | None -> Alcotest.fail "expected intersection"
  | Some h -> Alcotest.(check string) "inter" "10x" (Face.to_string 3 h));
  let c = face 3 "x1x" in
  check "disjoint" true (Face.inter b c = None);
  check "a contains b" true (Face.contains a b);
  check "b not contains a" false (Face.contains b a);
  let sc = Face.supercube b c in
  (* d0 specified only in b, d1 differs: nothing survives *)
  Alcotest.(check string) "supercube" "xxx" (Face.to_string 3 sc);
  let sc2 = Face.supercube (face 3 "10x") (face 3 "11x") in
  Alcotest.(check string) "supercube keeps agreeing dims" "1xx" (Face.to_string 3 sc2)

let test_face_enumeration () =
  let count s = Seq.fold_left (fun n _ -> n + 1) 0 s in
  Alcotest.(check int) "vertices of 3-cube" 8 (count (Face.faces_at_level 3 0));
  Alcotest.(check int) "level-1 faces of 3-cube" 12 (count (Face.faces_at_level 3 1));
  Alcotest.(check int) "level-2 faces of 3-cube" 6 (count (Face.faces_at_level 3 2));
  Alcotest.(check int) "whole cube" 1 (count (Face.faces_at_level 3 3));
  let g = face 4 "x0xx" in
  Alcotest.(check int) "level-1 subfaces of level-3 face" 12 (count (Face.subfaces_at_level 4 g 1));
  Alcotest.(check int) "vertices of face" 8 (List.length (Face.vertices 4 g))

let test_face_vertices () =
  let f = face 3 "1x0" in
  Alcotest.(check (list int)) "two vertices" [ 0b001; 0b011 ] (Face.vertices 3 f)

(* --- Input poset over the paper's running example ---------------------- *)

(* IC = {1110000, 0111000, 0000111, 1000110, 0000011, 0011000} where a 1
   in position i means state i belongs to the constraint (Example 3.1.1,
   state 1 of the paper = our state 0). *)
let paper_ics =
  List.map Bitvec.of_string
    [ "1110000"; "0111000"; "0000111"; "1000110"; "0000011"; "0011000" ]

let poset = Input_poset.build ~num_states:7 paper_ics

let elem states_str =
  match Input_poset.find poset (Bitvec.of_string states_str) with
  | Some id -> poset.Input_poset.elements.(id)
  | None -> Alcotest.failf "element %s missing from closure" states_str

let test_closure_elements () =
  (* Example 3.1.2's 15 sets plus the universe: 16 elements. *)
  Alcotest.(check int) "closure size" 16 (Array.length poset.Input_poset.elements);
  List.iter
    (fun s -> ignore (elem s))
    [
      "1111111"; "1110000"; "0111000"; "0000111"; "1000110"; "0000011"; "0011000";
      "0110000"; "0000110"; "1000000"; "0100000"; "0010000"; "0001000"; "0000100";
      "0000010"; "0000001";
    ]

let test_categories () =
  (* Example 3.3.1.1 *)
  List.iter
    (fun (s, cat) ->
      Alcotest.(check int) (Printf.sprintf "cat %s" s) cat (elem s).Input_poset.category)
    [
      ("1110000", 1); ("0111000", 1); ("0000111", 1); ("1000110", 1);
      ("0000110", 2); ("0110000", 2); ("0010000", 2); ("0000010", 2); ("1000000", 2);
      ("0011000", 3); ("0000011", 3); ("0001000", 3); ("0100000", 3); ("0000001", 3);
      ("0000100", 3);
    ]

let test_fathers_example_321 () =
  (* The paper's printed F(0000100) is garbled; the minimal superset of
     state 5 in the closure is 0000110 = 0000111 ∩ 1000110, consistent
     with cat(0000100) = 3 in Example 3.3.1.1. Also check a category-2
     element: F(0000010) = (0000011, 0000110). *)
  let fathers_of s =
    List.map
      (fun id -> Bitvec.to_string poset.Input_poset.elements.(id).Input_poset.states)
      (elem s).Input_poset.fathers
  in
  Alcotest.(check (list string)) "father of 0000100" [ "0000110" ] (fathers_of "0000100");
  let f6 = List.sort compare (fathers_of "0000010") in
  Alcotest.(check (list string)) "fathers of 0000010" [ "0000011"; "0000110" ] f6

let test_mincube_dim () =
  (* Example 3.3.2.2.1: counting conditions give 4. *)
  Alcotest.(check int) "mincube" 4 (Input_poset.mincube_dim poset)

(* --- The embedding engine on the paper's instance ---------------------- *)

let test_iexact_paper_example () =
  match Iexact.iexact_code ~num_states:7 paper_ics with
  | Iexact.Exhausted -> Alcotest.fail "iexact exhausted on the paper example"
  | Iexact.Sat { k; codes; _ } ->
      Alcotest.(check int) "minimum dimension 4" 4 k;
      let enc = Encoding.make ~nbits:k codes in
      List.iter
        (fun ic ->
          check
            (Printf.sprintf "constraint %s satisfied" (Bitvec.to_string ic))
            true (Constraints.satisfied enc ic))
        paper_ics

let test_semiexact_paper_example () =
  (* At k = 4 the minimum-level restriction still finds a full solution. *)
  match Iexact.semiexact_code ~num_states:7 ~k:4 paper_ics with
  | None -> Alcotest.fail "semiexact failed at k=4"
  | Some codes ->
      let enc = Encoding.make ~nbits:4 codes in
      List.iter
        (fun ic -> check "satisfied" true (Constraints.satisfied enc ic))
        paper_ics

let test_semiexact_infeasible_dim () =
  (* k = 2 cannot even hold 7 distinct codes. *)
  check "k=2 infeasible" true (Iexact.semiexact_code ~num_states:7 ~k:2 paper_ics = None)

let suite =
  [
    Alcotest.test_case "face basics" `Quick test_face_basics;
    Alcotest.test_case "face intersection/supercube" `Quick test_face_inter;
    Alcotest.test_case "face enumeration counts" `Quick test_face_enumeration;
    Alcotest.test_case "face vertices" `Quick test_face_vertices;
    Alcotest.test_case "closure of paper example" `Quick test_closure_elements;
    Alcotest.test_case "categories of paper example" `Quick test_categories;
    Alcotest.test_case "fathers of 0000100" `Quick test_fathers_example_321;
    Alcotest.test_case "mincube_dim = 4" `Quick test_mincube_dim;
    Alcotest.test_case "iexact on paper example" `Quick test_iexact_paper_example;
    Alcotest.test_case "semiexact on paper example" `Quick test_semiexact_paper_example;
    Alcotest.test_case "semiexact at infeasible dimension" `Quick test_semiexact_infeasible_dim;
  ]
